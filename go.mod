module semitri

go 1.24
