package semitri_test

import (
	"fmt"
	"log"

	"semitri"
	"semitri/internal/workload"
)

// Example_streaming shows the online ingestion path: records are fed one at
// a time and each episode is annotated the moment it becomes final, instead
// of waiting for the whole stream as ProcessRecords does. (No fixed output:
// the synthetic workload is seed-dependent.)
func Example_streaming() {
	city, err := workload.NewCity(workload.DefaultCityConfig(1, 4000))
	if err != nil {
		log.Fatal(err)
	}
	pipeline, err := semitri.New(semitri.Sources{
		Landuse: city.Landuse, Roads: city.Roads, POIs: city.POIs,
	}, semitri.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	stream := pipeline.NewStream()

	day, err := workload.GeneratePeople(city, workload.DefaultPeopleConfig(1, 1, 7))
	if err != nil {
		log.Fatal(err)
	}
	for _, record := range day.Records() {
		events, err := stream.Add(record) // one GPS fix at a time
		if err != nil {
			log.Fatal(err)
		}
		for _, ev := range events {
			if ev.Episode != nil {
				fmt.Printf("%s: %s episode closed, annotations: %s\n",
					ev.ObjectID, ev.Episode.Kind, ev.Tuple.Annotations.String())
			}
			if ev.TrajectoryClosed {
				fmt.Printf("%s: trajectory %s fully annotated\n", ev.ObjectID, ev.TrajectoryID)
			}
		}
	}
	result, err := stream.Close() // flush tails; same Result as ProcessRecords
	if err != nil {
		log.Fatal(err)
	}
	st, _ := pipeline.Store().Structured(result.TrajectoryIDs[0], semitri.InterpretationMerged)
	fmt.Println(st)
}
