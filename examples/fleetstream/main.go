// Fleetstream: ingest an interleaved multi-object GPS feed concurrently.
//
// Where examples/streaming replays one user's day record by record, this
// example plays back a whole fleet of users at once: their records arrive
// interleaved on a single feed — the shape of a real middleware ingest — and
// StreamProcessor.FanIn shards that feed by object id across worker
// goroutines. Each object's records keep their order (so the batch/stream
// parity guarantee still holds), while different objects run the full
// clean → segment → episode → annotate → append chain in parallel on the
// per-object streaming engine and the lock-striped store.
//
// Run with:
//
//	go run ./examples/fleetstream
package main

import (
	"fmt"
	"log"
	"sync/atomic"

	"semitri"
	"semitri/internal/gps"
	"semitri/internal/workload"
)

func main() {
	// 1. Build the 3rd-party sources and a day of records for several users.
	city, err := workload.NewCity(workload.DefaultCityConfig(42, 4000))
	if err != nil {
		log.Fatal(err)
	}
	const users = 6
	day, err := workload.GeneratePeople(city, workload.DefaultPeopleConfig(users, 1, 7))
	if err != nil {
		log.Fatal(err)
	}
	records := day.Records() // interleaved across objects, per-object time order
	fmt.Printf("replaying %d GPS records of %d users as one interleaved feed\n\n",
		len(records), len(day.Objects))

	// 2. Build the pipeline and open a stream over it.
	pipeline, err := semitri.New(semitri.Sources{
		Landuse: city.Landuse,
		Roads:   city.Roads,
		POIs:    city.POIs,
	}, semitri.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	stream := pipeline.NewStream()

	// 3. Fan the feed across 4 ingestion workers. The onEvents callback runs
	//    on worker goroutines, so it only touches atomics.
	var episodes, trajectories atomic.Int64
	feed := make(chan gps.Record, 128)
	done := make(chan error, 1)
	go func() {
		done <- stream.FanIn(feed, 4, func(events []semitri.StreamEvent) {
			for _, ev := range events {
				if ev.Episode != nil {
					episodes.Add(1)
				}
				if ev.TrajectoryClosed {
					trajectories.Add(1)
				}
			}
		})
	}()
	for _, r := range records {
		feed <- r
	}
	close(feed)
	if err := <-done; err != nil {
		log.Fatal(err)
	}

	// 4. Close the stream and print each user's day in semantic form.
	result, err := stream.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d records into %d trajectories (%d stops, %d moves); "+
		"%d episodes were annotated mid-stream\n\n",
		result.Records, len(result.TrajectoryIDs), result.Stops, result.Moves, episodes.Load())
	for _, object := range day.Objects {
		for _, id := range pipeline.Store().TrajectoryIDs(object) {
			if merged, ok := pipeline.Store().Structured(id, semitri.InterpretationMerged); ok {
				fmt.Printf("%s\n  %s\n\n", id, merged.String())
			}
		}
	}
}
