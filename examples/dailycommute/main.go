// Dailycommute: map matching and transportation-mode inference for
// home-office commutes (the Fig. 15/16 scenario).
//
// The example generates a metro commuter and a cyclist, runs the pipeline
// and prints, for each move, the sequence of matched roads with the inferred
// transportation mode — the walk -> metro -> walk decomposition the paper
// illustrates — together with the aggregate share of move time per mode.
//
// Run with:
//
//	go run ./examples/dailycommute
package main

import (
	"fmt"
	"log"

	"semitri"
	"semitri/internal/analytics"
	"semitri/internal/core"
	"semitri/internal/workload"
)

func main() {
	city, err := workload.NewCity(workload.DefaultCityConfig(5, 4000))
	if err != nil {
		log.Fatal(err)
	}
	// Four users cycle through the preferred modes walk/bicycle/bus/metro;
	// two days of data keep the example fast.
	people, err := workload.GeneratePeople(city, workload.DefaultPeopleConfig(4, 2, 13))
	if err != nil {
		log.Fatal(err)
	}
	pipeline, err := semitri.New(semitri.Sources{
		Landuse: city.Landuse, Roads: city.Roads, POIs: city.POIs,
	}, semitri.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	result, err := pipeline.ProcessRecords(people.Records())
	if err != nil {
		log.Fatal(err)
	}
	st := pipeline.Store()
	fmt.Printf("processed %d trajectories\n\n", len(result.TrajectoryIDs))

	// Detailed mode sequence for the metro user's first day (Fig. 15).
	metroUser := "user-004"
	ids := st.TrajectoryIDs(metroUser)
	if len(ids) > 0 {
		if lineTraj, ok := st.Structured(ids[0], semitri.InterpretationLine); ok {
			fmt.Printf("move annotation for %s (%s):\n", ids[0], metroUser)
			fmt.Printf("  %-28s %-12s %-8s\n", "road", "class", "mode")
			var lastMode, lastRoad string
			for _, tp := range lineTraj.Tuples {
				mode := tp.Annotations.Value(core.AnnTransportMode)
				road := tp.Annotations.Value(core.AnnRoadName)
				if mode == lastMode && road == lastRoad {
					continue
				}
				fmt.Printf("  %-28s %-12s %-8s %s -> %s\n",
					road, tp.Annotations.Value(core.AnnRoadClass), mode,
					tp.TimeIn.Format("15:04:05"), tp.TimeOut.Format("15:04:05"))
				lastMode, lastRoad = mode, road
			}
			fmt.Println()
		}
	}

	// Aggregate mode split across all users (Figs. 15/16 combined view).
	modeDist := analytics.ModeDistribution(st, semitri.InterpretationLine)
	fmt.Println("share of move time per transportation mode:")
	for _, mode := range modeDist.Categories() {
		fmt.Printf("  %-10s %6.1f%%\n", mode, modeDist.Share(mode)*100)
	}
}
