// Streaming: annotate a GPS feed online, episode by episode.
//
// Where examples/quickstart processes a finished day of records in one
// batch, this example plays the same day back as a live feed: records enter
// the pipeline one at a time through a semitri.StreamProcessor, and the
// program prints each stop/move episode the moment the pipeline decides it
// is final — with its land-use and road/transport-mode annotations already
// attached — rather than waiting for the day to end. The POI-category
// annotations (the HMM decodes a trajectory's whole stop sequence jointly)
// arrive when the trajectory closes; the example prints the fully annotated
// trajectory at that point.
//
// Run with:
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	"semitri"
	"semitri/internal/workload"
)

func main() {
	// 1. Build the 3rd-party sources and one user-day of raw GPS records.
	city, err := workload.NewCity(workload.DefaultCityConfig(42, 4000))
	if err != nil {
		log.Fatal(err)
	}
	day, err := workload.GeneratePeople(city, workload.DefaultPeopleConfig(1, 1, 7))
	if err != nil {
		log.Fatal(err)
	}
	records := day.Records()
	fmt.Printf("replaying %d GPS records for %s as a live feed\n\n", len(records), day.Objects[0])

	// 2. Build the pipeline and open a stream over it.
	pipeline, err := semitri.New(semitri.Sources{
		Landuse: city.Landuse,
		Roads:   city.Roads,
		POIs:    city.POIs,
	}, semitri.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	stream := pipeline.NewStream()

	// 3. Feed the records one at a time. Each event is an episode that just
	//    became final (annotated online) or a trajectory that just closed.
	for _, record := range records {
		events, err := stream.Add(record)
		if err != nil {
			log.Fatal(err)
		}
		for _, ev := range events {
			switch {
			case ev.Episode != nil:
				fmt.Printf("  [%s] %-4s %s -> %s  %s\n",
					record.Time.Format("15:04"), ev.Episode.Kind,
					ev.Episode.Start.Format("15:04"), ev.Episode.End.Format("15:04"),
					ev.Tuple.Annotations.String())
			case ev.TrajectoryClosed:
				printClosed(pipeline, ev.TrajectoryID)
			}
		}
	}

	// 4. Close the stream: open trajectories are flushed and annotated.
	result, err := stream.Close()
	if err != nil {
		log.Fatal(err)
	}
	for _, id := range result.TrajectoryIDs {
		printClosed(pipeline, id)
	}
	fmt.Printf("\ningested %d records into %d trajectories (%d stops, %d moves)\n",
		result.Records, len(result.TrajectoryIDs), result.Stops, result.Moves)
}

var printed = map[string]bool{}

// printClosed prints a trajectory's final semantic form once.
func printClosed(pipeline *semitri.Pipeline, id string) {
	if printed[id] {
		return
	}
	printed[id] = true
	if merged, ok := pipeline.Store().Structured(id, semitri.InterpretationMerged); ok {
		fmt.Printf("\nclosed trajectory %s\n  %s\n\n", id, merged.String())
	}
}
