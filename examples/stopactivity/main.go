// Stopactivity: infer the activity behind stops in a dense urban area with
// the HMM point-annotation layer (the Fig. 11 scenario), and compare against
// the nearest-POI baseline using the generator's ground truth.
//
// The example generates Milan-like private-car trajectories whose parked
// stops happen at known POIs, runs the pipeline, prints the distribution of
// inferred stop categories and trajectory categories (Eq. 8), and reports
// the accuracy of the HMM inference versus the naive nearest-POI match.
//
// Run with:
//
//	go run ./examples/stopactivity
package main

import (
	"fmt"
	"log"
	"math/rand"

	"semitri"
	"semitri/internal/analytics"
	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/geo"
	"semitri/internal/point"
	"semitri/internal/workload"
)

func main() {
	city, err := workload.NewCity(workload.DefaultCityConfig(21, 12000))
	if err != nil {
		log.Fatal(err)
	}
	carsCfg := workload.DefaultPrivateCarConfig(9)
	carsCfg.NumVehicles = 40
	cars, err := workload.GenerateVehicles(city, carsCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("private cars: %d vehicles, %d GPS records, %d POIs in the city\n\n",
		len(cars.Objects), cars.RecordCount(), city.POIs.Len())

	cfg := semitri.VehicleConfig()
	cfg.DailySplit = false
	pipeline, err := semitri.New(semitri.Sources{
		Landuse: city.Landuse, Roads: city.Roads, POIs: city.POIs,
	}, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := pipeline.ProcessRecords(cars.Records()); err != nil {
		log.Fatal(err)
	}
	st := pipeline.Store()

	fmt.Println("inferred stop categories (share of stops, cf. Fig. 11):")
	stopDist := analytics.StopCountDistribution(st, semitri.InterpretationMerged, core.AnnPOICategory)
	for _, cat := range stopDist.Categories() {
		fmt.Printf("  %-12s %6.1f%%\n", cat, stopDist.Share(cat)*100)
	}
	fmt.Println("\ntrajectory categories (Eq. 8):")
	trajDist := analytics.TrajectoryCategoryDistribution(st, semitri.InterpretationMerged, core.AnnPOICategory)
	for _, cat := range trajDist.Categories() {
		fmt.Printf("  %-12s %6.1f%%\n", cat, trajDist.Share(cat)*100)
	}

	// Accuracy against the generator's ground truth: the observed stop
	// centres are perturbed by a realistic 50 m location error (urban GPS
	// noise and stop-centroid drift), then annotated with the HMM layer and
	// with the nearest-POI baseline. With imprecise locations in a dense POI
	// field the one-to-one nearest match loses its exactness advantage and
	// the category-level HMM becomes competitive (§4.3); the full sweep over
	// error levels is ablation A2 in cmd/semitri-bench.
	const locationError = 50.0
	rng := rand.New(rand.NewSource(99))
	annotator, err := point.NewAnnotator(city.POIs, point.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	var hmmCorrect, nearestCorrect, total int
	for _, obj := range cars.Objects {
		truth := cars.Truth[obj]
		if len(truth.StopCategories) == 0 {
			continue
		}
		stops := make([]*episode.Episode, len(truth.StopCenters))
		for i, c := range truth.StopCenters {
			observed := geo.Pt(c.X+rng.NormFloat64()*locationError, c.Y+rng.NormFloat64()*locationError)
			stops[i] = &episode.Episode{
				TrajectoryID: obj, ObjectID: obj, Kind: episode.Stop,
				Center: observed, Bounds: geo.RectAround(observed, 40), RecordCount: 10,
			}
		}
		_, anns, err := annotator.AnnotateStops(stops)
		if err != nil {
			log.Fatal(err)
		}
		baseline, err := annotator.AnnotateStopsNearest(stops)
		if err != nil {
			log.Fatal(err)
		}
		for i, want := range truth.StopCategories {
			total++
			if anns[i].Category == want {
				hmmCorrect++
			}
			if baseline[i].Category == want {
				nearestCorrect++
			}
		}
	}
	fmt.Printf("\nstop-category accuracy over %d ground-truth stops (%.0f m location error):\n", total, locationError)
	fmt.Printf("  HMM point layer     %5.1f%%\n", 100*float64(hmmCorrect)/float64(total))
	fmt.Printf("  nearest-POI baseline %4.1f%%\n", 100*float64(nearestCorrect)/float64(total))
}
