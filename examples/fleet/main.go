// Fleet: annotate taxi trajectories with land-use regions and report the
// Fig. 9 style distribution.
//
// The example mirrors the paper's vehicle experiment (§5.2): a small taxi
// fleet is tracked at high rate, the pipeline structures the streams into
// stop/move episodes, the Semantic Region Annotation Layer joins them with
// the land-use grid, and the analytics layer reports which land-use
// categories the fleet spends its time in, split by trajectories, moves and
// stops, plus the storage compression achieved by the region representation.
//
// Run with:
//
//	go run ./examples/fleet
package main

import (
	"fmt"
	"log"

	"semitri"
	"semitri/internal/analytics"
	"semitri/internal/episode"
	"semitri/internal/landuse"
	"semitri/internal/workload"
)

func main() {
	city, err := workload.NewCity(workload.DefaultCityConfig(11, 6000))
	if err != nil {
		log.Fatal(err)
	}
	fleetCfg := workload.DefaultTaxiConfig(3)
	fleetCfg.NumVehicles = 3
	fleetCfg.TripsPerVehicle = 8
	fleet, err := workload.GenerateVehicles(city, fleetCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("taxi fleet: %d vehicles, %d GPS records\n\n", len(fleet.Objects), fleet.RecordCount())

	cfg := semitri.VehicleConfig()
	cfg.DailySplit = false
	pipeline, err := semitri.New(semitri.Sources{Landuse: city.Landuse, Roads: city.Roads}, cfg)
	if err != nil {
		log.Fatal(err)
	}
	result, err := pipeline.ProcessRecords(fleet.Records())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("structured into %d trajectories (%d stops, %d moves)\n\n",
		len(result.TrajectoryIDs), result.Stops, result.Moves)

	st := pipeline.Store()
	whole := analytics.LanduseDistribution(st, nil, nil)
	moveKind, stopKind := episode.Move, episode.Stop
	moves := analytics.LanduseDistribution(st, nil, &moveKind)
	stops := analytics.LanduseDistribution(st, nil, &stopKind)

	fmt.Println("land-use category distribution (cf. Fig. 9):")
	fmt.Printf("  %-42s %10s %10s %10s\n", "category", "trajectory", "move", "stop")
	for _, cat := range whole.Categories() {
		label := landuse.Category(cat).Label()
		fmt.Printf("  %-4s %-37s %9.1f%% %9.1f%% %9.1f%%\n",
			cat, label, whole.Share(cat)*100, moves.Share(cat)*100, stops.Share(cat)*100)
	}

	c := analytics.Compression(st)
	fmt.Printf("\nregion-level representation: %d GPS records described by %d annotated cells (%.2f%% compression, cf. §5.2)\n",
		c.GPSRecords, c.DistinctCells, c.Ratio*100)
}
