// Queryserve: ask semantic questions of a live store, then serve them.
//
// The earlier examples end when ingestion ends; this one is about the read
// side. It streams two user-days into the pipeline, then uses the query
// engine to ask the paper's motivating kind of question — "who stopped at
// an item-sale place around lunchtime inside this part of town?" — showing
// the plan the engine picked for each query. Finally it mounts the same
// engine behind the HTTP serving layer and issues a few requests against
// it, which is exactly what `go run ./cmd/semitri-serve` serves standalone.
//
// Run with:
//
//	go run ./examples/queryserve
package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/url"
	"time"

	"semitri"
	"semitri/internal/core"
	"semitri/internal/geo"
	"semitri/internal/query"
	"semitri/internal/serve"
	"semitri/internal/workload"
)

func main() {
	// 1. Sources, pipeline, and — before ingestion — the query engine, so
	//    its indexes build incrementally from the stream's append path.
	city, err := workload.NewCity(workload.DefaultCityConfig(42, 4000))
	if err != nil {
		log.Fatal(err)
	}
	pipeline, err := semitri.New(semitri.Sources{
		Landuse: city.Landuse, Roads: city.Roads, POIs: city.POIs,
	}, semitri.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	engine := pipeline.QueryEngine()

	// 2. Stream two user-days in.
	ds, err := workload.GeneratePeople(city, workload.DefaultPeopleConfig(2, 1, 7))
	if err != nil {
		log.Fatal(err)
	}
	stream := pipeline.NewStream()
	for _, r := range ds.Records() {
		if _, err := stream.Add(r); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := stream.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d records for %d users\n\n", len(ds.Records()), len(ds.Objects))

	// 3. Typed queries, each built with the query package's validating
	//    builder; the engine plans every one by picking the most selective
	//    index and verifies every candidate against the store.
	day := ds.Records()[0].Time.Truncate(24 * time.Hour)
	queries := []struct {
		label string
		q     query.Query
	}{
		{"stops at item-sale places", query.MustBuild(
			query.OnlyStops(),
			query.WithAnnotation(core.AnnPOICategory, "item sale"),
		)},
		{"...around lunchtime, in the city centre", query.MustBuild(
			query.OnlyStops(),
			query.WithAnnotation(core.AnnPOICategory, "item sale"),
			query.Between(day.Add(11*time.Hour), day.Add(15*time.Hour)),
			query.InWindow(geo.RectAround(geo.Pt(5000, 5000), 3000)),
		)},
		{"everything user-001 did today", query.MustBuild(
			query.ForObject(ds.Objects[0]),
			query.Between(day, day.Add(24*time.Hour)),
		)},
		{"episodes near the map origin", query.MustBuild(
			query.NearPoint(geo.Pt(2000, 2000), 1500),
		)},
	}
	for _, c := range queries {
		matches, plan, err := engine.ExecuteExplained(c.q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n  plan: %s\n  matches: %d\n", c.label, plan, len(matches))
		for i, m := range matches {
			if i == 3 {
				fmt.Printf("    ... %d more\n", len(matches)-i)
				break
			}
			fmt.Printf("    %s %s %s-%s  %s\n", m.Ref.TrajectoryID, m.Tuple.Kind,
				m.Tuple.TimeIn.Format("15:04"), m.Tuple.TimeOut.Format("15:04"),
				m.Tuple.Annotations.String())
		}
		fmt.Println()
	}

	// 4. A relational query: which objects had stop episodes within 200 m
	//    and one hour of another object's stop? The join planner builds the
	//    smaller side and probes the indexes for the other.
	pairs, jp, err := engine.ExecuteJoinExplained(query.Join{
		Left:  query.MustBuild(query.OnlyStops()),
		Right: query.MustBuild(query.OnlyStops()),
		On:    query.JoinOn{Within: time.Hour, MaxDistance: 200, DistinctObjects: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("co-location join\n  plan: %s\n  pairs: %d\n\n", jp, len(pairs))

	// 5. The same engine behind HTTP: what cmd/semitri-serve runs. The last
	//    request is the join above, written in the relational language.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: serve.New(engine).Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	params := url.Values{}
	params.Set("kind", "stop")
	params.Set("ann", core.AnnPOICategory+"=item sale")
	params.Set("limit", "2")
	relational := url.Values{}
	relational.Set("q", "stops join stops on distance <= 200 and within 1h"+
		" and distinct objects group by object distinct objects top 5")
	for _, path := range []string{
		"/healthz",
		"/query/episodes?" + params.Encode(),
		"/stats",
		"/query/relational?" + relational.Encode(),
	} {
		resp, err := http.Get(base + path)
		if err != nil {
			log.Fatal(err)
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, 400))
		resp.Body.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("GET %s -> %s\n%s...\n\n", path, resp.Status, body)
	}
}
