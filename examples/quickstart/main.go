// Quickstart: annotate one day of a person's movement end to end.
//
// The example builds a small synthetic city (land-use grid, road network and
// POI set), generates a single user-day of smartphone-style GPS data, runs
// the full SeMiTri pipeline and prints the resulting structured semantic
// trajectory — the (place, time interval, annotation) triple sequence of the
// paper's §1.1 — together with the episode-level annotations.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"semitri"
	"semitri/internal/core"
	"semitri/internal/workload"
)

func main() {
	// 1. Build the 3rd-party sources: a 10 km x 10 km synthetic city.
	city, err := workload.NewCity(workload.DefaultCityConfig(42, 4000))
	if err != nil {
		log.Fatal(err)
	}

	// 2. Generate one user-day of raw GPS records (home -> office -> errands
	//    -> home, with indoor signal loss and GPS noise).
	day, err := workload.GeneratePeople(city, workload.DefaultPeopleConfig(1, 1, 7))
	if err != nil {
		log.Fatal(err)
	}
	records := day.Records()
	fmt.Printf("raw input: %d GPS records for %s\n\n", len(records), day.Objects[0])

	// 3. Build the pipeline over the city's sources and process the stream.
	pipeline, err := semitri.New(semitri.Sources{
		Landuse: city.Landuse,
		Roads:   city.Roads,
		POIs:    city.POIs,
	}, semitri.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	result, err := pipeline.ProcessRecords(records)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("identified %d daily trajectories with %d stops and %d moves\n\n",
		len(result.TrajectoryIDs), result.Stops, result.Moves)

	// 4. Read the structured semantic trajectory back from the store.
	store := pipeline.Store()
	for _, id := range result.TrajectoryIDs {
		merged, ok := store.Structured(id, semitri.InterpretationMerged)
		if !ok {
			continue
		}
		fmt.Println("semantic trajectory", id)
		fmt.Println(" ", merged.String())
		for i, tuple := range merged.Tuples {
			fmt.Printf("  episode %02d [%s] %s -> %s\n", i+1, tuple.Kind,
				tuple.TimeIn.Format("15:04"), tuple.TimeOut.Format("15:04"))
			for _, ann := range tuple.Annotations.All() {
				fmt.Printf("      %-15s = %-22s (%.2f, %s)\n", ann.Key, ann.Value, ann.Confidence, ann.Source)
			}
		}
		if cat, ok := merged.Category(core.AnnPOICategory); ok {
			fmt.Println("  trajectory category (Eq. 8):", cat)
		}
		fmt.Println()
	}
}
