package semitri_test

import (
	"testing"

	"semitri"
	"semitri/internal/core"
	"semitri/internal/workload"
)

// TestQuickstartSmoke runs the examples/quickstart flow as a test so CI
// exercises the documented end-to-end path: build a city, generate a
// user-day, process it and read the structured trajectory back.
func TestQuickstartSmoke(t *testing.T) {
	city := newTestCity(t, 42, 4000)
	day, err := workload.GeneratePeople(city, workload.DefaultPeopleConfig(1, 1, 7))
	if err != nil {
		t.Fatal(err)
	}
	records := day.Records()
	if len(records) == 0 {
		t.Fatal("no records generated")
	}
	pipeline := newTestPipeline(t, city, semitri.DefaultConfig())
	result, err := pipeline.ProcessRecords(records)
	if err != nil {
		t.Fatal(err)
	}
	if len(result.TrajectoryIDs) == 0 || result.Stops == 0 {
		t.Fatalf("quickstart produced no structured output: %+v", result)
	}
	store := pipeline.Store()
	for _, id := range result.TrajectoryIDs {
		merged, ok := store.Structured(id, semitri.InterpretationMerged)
		if !ok {
			t.Fatalf("trajectory %s has no merged interpretation", id)
		}
		if err := merged.Validate(); err != nil {
			t.Fatalf("trajectory %s: %v", id, err)
		}
		if len(merged.Tuples) == 0 {
			t.Fatalf("trajectory %s has no tuples", id)
		}
	}
	// The quickstart prints the trajectory category; make sure at least one
	// trajectory yields one.
	found := false
	for _, id := range result.TrajectoryIDs {
		if merged, ok := store.Structured(id, semitri.InterpretationMerged); ok {
			if _, ok := merged.Category(core.AnnPOICategory); ok {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no trajectory category inferred (point layer produced nothing)")
	}
}

// TestStreamQuickstartSmoke is the streaming twin: same dataset, fed one
// record at a time.
func TestStreamQuickstartSmoke(t *testing.T) {
	city := newTestCity(t, 42, 4000)
	day, err := workload.GeneratePeople(city, workload.DefaultPeopleConfig(1, 1, 7))
	if err != nil {
		t.Fatal(err)
	}
	pipeline := newTestPipeline(t, city, semitri.DefaultConfig())
	sp := pipeline.NewStream()
	for _, r := range day.Records() {
		if _, err := sp.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	result, err := sp.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(result.TrajectoryIDs) == 0 || result.Stops == 0 {
		t.Fatalf("streaming quickstart produced no structured output: %+v", result)
	}
}
