package semitri_test

import (
	"reflect"
	"testing"

	"semitri"
	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/gps"
	"semitri/internal/store"
	"semitri/internal/workload"
)

func newTestCity(t testing.TB, seed int64, pois int) *workload.City {
	t.Helper()
	city, err := workload.NewCity(workload.DefaultCityConfig(seed, pois))
	if err != nil {
		t.Fatal(err)
	}
	return city
}

func newTestPipeline(t testing.TB, city *workload.City, cfg semitri.Config) *semitri.Pipeline {
	t.Helper()
	p, err := semitri.New(semitri.Sources{
		Landuse: city.Landuse, Roads: city.Roads, POIs: city.POIs,
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func peopleRecords(t testing.TB, city *workload.City, users, days int, seed int64) []gps.Record {
	t.Helper()
	ds, err := workload.GeneratePeople(city, workload.DefaultPeopleConfig(users, days, seed))
	if err != nil {
		t.Fatal(err)
	}
	return ds.Records()
}

// annotationsEqual compares tuple slices field by field (pointer identities
// naturally differ between the two pipelines).
func tuplesEqual(t *testing.T, label string, batch, stream []*core.EpisodeTuple) {
	t.Helper()
	if len(batch) != len(stream) {
		t.Fatalf("%s: tuple count: batch %d, stream %d", label, len(batch), len(stream))
	}
	for i := range batch {
		b, s := batch[i], stream[i]
		if b.Kind != s.Kind || !b.TimeIn.Equal(s.TimeIn) || !b.TimeOut.Equal(s.TimeOut) {
			t.Fatalf("%s tuple %d: kind/time differ:\n batch  %v %v-%v\n stream %v %v-%v",
				label, i, b.Kind, b.TimeIn, b.TimeOut, s.Kind, s.TimeIn, s.TimeOut)
		}
		if !reflect.DeepEqual(b.Place, s.Place) {
			t.Fatalf("%s tuple %d: place differs:\n batch  %+v\n stream %+v", label, i, b.Place, s.Place)
		}
		if !reflect.DeepEqual(b.Annotations.All(), s.Annotations.All()) {
			t.Fatalf("%s tuple %d: annotations differ:\n batch  %s\n stream %s",
				label, i, b.Annotations.String(), s.Annotations.String())
		}
	}
}

// TestBatchStreamParity feeds the same person-days of records through
// ProcessRecords and through a StreamProcessor record by record, and asserts
// that both leave identical structured trajectories in their stores: same
// trajectory ids, same episode sequences, same tuples under every
// interpretation.
func TestBatchStreamParity(t *testing.T) {
	city := newTestCity(t, 1, 3000)
	records := peopleRecords(t, city, 2, 2, 5)

	batch := newTestPipeline(t, city, semitri.DefaultConfig())
	batchResult, err := batch.ProcessRecords(records)
	if err != nil {
		t.Fatal(err)
	}

	stream := newTestPipeline(t, city, semitri.DefaultConfig())
	sp := stream.NewStream()
	var episodeEvents, trajectoryEvents int
	for _, r := range records {
		events, err := sp.Add(r)
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range events {
			if ev.Episode != nil {
				episodeEvents++
				if ev.Tuple == nil {
					t.Fatal("episode event without merged tuple")
				}
			}
			if ev.TrajectoryClosed {
				trajectoryEvents++
			}
		}
	}
	streamResult, err := sp.Close()
	if err != nil {
		t.Fatal(err)
	}
	if episodeEvents == 0 {
		t.Fatal("stream never emitted an episode event")
	}

	// Result summaries must agree (trajectory sets: order may differ between
	// interleaved objects).
	if batchResult.Records != streamResult.Records {
		t.Fatalf("cleaned records: batch %d, stream %d", batchResult.Records, streamResult.Records)
	}
	if batchResult.Stops != streamResult.Stops || batchResult.Moves != streamResult.Moves {
		t.Fatalf("episode counts: batch %d/%d, stream %d/%d",
			batchResult.Stops, batchResult.Moves, streamResult.Stops, streamResult.Moves)
	}
	if len(batchResult.TrajectoryIDs) != len(streamResult.TrajectoryIDs) {
		t.Fatalf("trajectory count: batch %d, stream %d",
			len(batchResult.TrajectoryIDs), len(streamResult.TrajectoryIDs))
	}
	_ = trajectoryEvents // day-boundary closes may or may not fire mid-stream

	assertStoreParity(t, batchResult.TrajectoryIDs, batch.Store(), stream.Store())
}

// assertStoreParity compares two pipeline stores tuple-for-tuple over the
// given trajectories: raw records, episode sequences and every stored
// interpretation must be identical.
func assertStoreParity(t *testing.T, trajectoryIDs []string, bst, sst *store.Store) {
	t.Helper()
	if bst.RecordCount() != sst.RecordCount() {
		t.Fatalf("stored records: batch %d, stream %d", bst.RecordCount(), sst.RecordCount())
	}
	for _, id := range trajectoryIDs {
		// Raw trajectories.
		bt, ok := bst.Trajectory(id)
		if !ok {
			t.Fatalf("batch store missing %s", id)
		}
		st, ok := sst.Trajectory(id)
		if !ok {
			t.Fatalf("stream store missing trajectory %s", id)
		}
		if !reflect.DeepEqual(bt.Records, st.Records) {
			t.Fatalf("trajectory %s records differ", id)
		}
		// Episodes.
		beps, seps := bst.Episodes(id), sst.Episodes(id)
		if len(beps) != len(seps) {
			t.Fatalf("trajectory %s: %d batch episodes, %d stream episodes", id, len(beps), len(seps))
		}
		for i := range beps {
			if !reflect.DeepEqual(*beps[i], *seps[i]) {
				t.Fatalf("trajectory %s episode %d differs:\n batch  %+v\n stream %+v",
					id, i, *beps[i], *seps[i])
			}
		}
		// Every stored interpretation.
		binterps := bst.Interpretations(id)
		if !reflect.DeepEqual(binterps, sst.Interpretations(id)) {
			t.Fatalf("trajectory %s interpretations: batch %v, stream %v",
				id, binterps, sst.Interpretations(id))
		}
		for _, interp := range binterps {
			b, _ := bst.Structured(id, interp)
			s, _ := sst.Structured(id, interp)
			if b.ObjectID != s.ObjectID {
				t.Fatalf("trajectory %s/%s: object id differs", id, interp)
			}
			tuplesEqual(t, id+"/"+interp, b.Tuples, s.Tuples)
		}
	}
}

// TestBatchStreamParityVehicle runs the parity check under the vehicle
// profile (no daily split, vehicle episode thresholds, forced car mode).
func TestBatchStreamParityVehicle(t *testing.T) {
	city := newTestCity(t, 3, 2000)
	cfg := workload.DefaultTaxiConfig(11)
	cfg.NumVehicles = 2
	cfg.TripsPerVehicle = 3
	ds, err := workload.GenerateVehicles(city, cfg)
	if err != nil {
		t.Fatal(err)
	}
	records := ds.Records()

	pipelineCfg := semitri.VehicleConfig()
	pipelineCfg.DailySplit = false

	batch := newTestPipeline(t, city, pipelineCfg)
	batchResult, err := batch.ProcessRecords(records)
	if err != nil {
		t.Fatal(err)
	}

	stream := newTestPipeline(t, city, pipelineCfg)
	sp := stream.NewStream()
	if _, err := sp.AddBatch(records); err != nil {
		t.Fatal(err)
	}
	streamResult, err := sp.Close()
	if err != nil {
		t.Fatal(err)
	}
	if batchResult.Stops != streamResult.Stops || batchResult.Moves != streamResult.Moves ||
		len(batchResult.TrajectoryIDs) != len(streamResult.TrajectoryIDs) {
		t.Fatalf("vehicle parity: batch %d/%d over %d trajectories, stream %d/%d over %d",
			batchResult.Stops, batchResult.Moves, len(batchResult.TrajectoryIDs),
			streamResult.Stops, streamResult.Moves, len(streamResult.TrajectoryIDs))
	}
	bst, sst := batch.Store(), stream.Store()
	for _, id := range batchResult.TrajectoryIDs {
		for _, interp := range bst.Interpretations(id) {
			b, _ := bst.Structured(id, interp)
			s, ok := sst.Structured(id, interp)
			if !ok {
				t.Fatalf("stream store missing %s/%s", id, interp)
			}
			tuplesEqual(t, id+"/"+interp, b.Tuples, s.Tuples)
		}
	}
}

// TestStreamTailAndFlush exercises the open-tail view and per-object flush.
func TestStreamTailAndFlush(t *testing.T) {
	city := newTestCity(t, 2, 2000)
	records := peopleRecords(t, city, 1, 1, 9)
	p := newTestPipeline(t, city, semitri.DefaultConfig())
	sp := p.NewStream()

	half := len(records) / 2
	if _, err := sp.AddBatch(records[:half]); err != nil {
		t.Fatal(err)
	}
	object := records[0].ObjectID
	tail := sp.Tail(object)
	if len(tail) == 0 {
		t.Fatal("expected a provisional tail for the open trajectory")
	}
	for _, ep := range tail {
		if ep.Kind != episode.Stop && ep.Kind != episode.Move {
			t.Fatalf("tail episode with invalid kind %v", ep.Kind)
		}
	}
	events, err := sp.Flush(object)
	if err != nil {
		t.Fatal(err)
	}
	closed := false
	for _, ev := range events {
		if ev.TrajectoryClosed {
			closed = true
		}
	}
	if !closed {
		t.Fatal("flush did not close the open trajectory")
	}
	if tail = sp.Tail(object); tail != nil {
		t.Fatalf("tail should be empty after flush, got %d episodes", len(tail))
	}
	if _, err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Add(records[0]); err == nil {
		t.Fatal("Add after Close should fail")
	}
}

// TestStreamCloseErrorsMirrorBatch asserts that Close fails the way
// ProcessRecords does on degenerate input, instead of returning an empty
// Result.
func TestStreamCloseErrorsMirrorBatch(t *testing.T) {
	city := newTestCity(t, 2, 1000)
	p := newTestPipeline(t, city, semitri.DefaultConfig())
	sp := p.NewStream()
	if _, err := sp.Close(); err == nil {
		t.Fatal("Close with no records should fail like ProcessRecords(nil)")
	}

	// A handful of records too short for any trajectory: batch fails with
	// "no trajectories identified"; stream must too.
	p2 := newTestPipeline(t, city, semitri.DefaultConfig())
	records := peopleRecords(t, city, 1, 1, 9)[:5]
	if _, err := p2.ProcessRecords(records); err == nil {
		t.Fatal("batch should fail on 5 records with MinRecords=10")
	}
	sp2 := p2.NewStream()
	if _, err := sp2.AddBatch(records); err != nil {
		t.Fatal(err)
	}
	if _, err := sp2.Close(); err == nil {
		t.Fatal("stream Close should fail on 5 records with MinRecords=10")
	}
}
