package semitri_test

import (
	"sync"
	"testing"
	"time"

	"semitri"
	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/gps"
	"semitri/internal/query"
	"semitri/internal/query/lang"
	"semitri/internal/store"
)

// colocStatement is the canonical cross-object question of the relational
// layer: objects with stop episodes within 200 m and 1 h of each other.
const colocStatement = "stops join stops on distance <= 200 and within 1h and distinct objects"

// colocPairOK re-implements the co-location pair predicate for the post-hoc
// verification, independent of the engine's own matcher.
func colocPairOK(l, r *query.Match) bool {
	if l.Ref.ObjectID == r.Ref.ObjectID {
		return false
	}
	if l.Tuple.Kind != episode.Stop || r.Tuple.Kind != episode.Stop {
		return false
	}
	if l.Tuple.Episode == nil || r.Tuple.Episode == nil ||
		l.Tuple.Episode.Center.DistanceTo(r.Tuple.Episode.Center) > 200 {
		return false
	}
	gap := time.Hour
	return !l.Tuple.TimeIn.After(r.Tuple.TimeOut.Add(gap)) &&
		!r.Tuple.TimeIn.After(l.Tuple.TimeOut.Add(gap))
}

// TestConcurrentRelationalIngest is the relational counterpart of
// TestConcurrentQueryIngest: joins and aggregations expressed in the query
// language run concurrently with streaming ingestion (one feeding goroutine
// per object, two goroutines issuing relational statements). Every pair any
// join ever returned is verified post hoc — both sides resolve in the final
// store un-torn, satisfy the side predicates and the pair predicate — and
// after quiescence the language-level join must agree exactly with a
// brute-force nested loop over the final store. Run under -race via the
// Makefile's race target.
func TestConcurrentRelationalIngest(t *testing.T) {
	city := newTestCity(t, 1, 3000)
	records := peopleRecords(t, city, 8, 1, 5)
	byObject := objectOrder(records)
	if len(byObject) < 8 {
		t.Fatalf("workload produced %d objects, want >= 8", len(byObject))
	}

	cfg := semitri.DefaultConfig()
	cfg.QueryParallelism = 4 // race the parallel executor against live ingestion
	pipeline := newTestPipeline(t, city, cfg)
	engine := pipeline.QueryEngine() // attach before ingestion: purely incremental build
	engine.SetSerialThreshold(1)     // force the parallel paths even on small candidate sets
	sp := pipeline.NewStream()

	stmts := []string{
		colocStatement,
		colocStatement + " group by object distinct objects top 5",
		`stops where ann.poi_category = "item sale" group by place count top 10`,
		"moves join moves on overlaps and same object limit 50",
	}

	var (
		pairsMu   sync.Mutex
		colocSeen []query.JoinMatch
	)
	done := make(chan struct{})
	var writers sync.WaitGroup
	for _, recs := range byObject {
		writers.Add(1)
		go func(recs []gps.Record) {
			defer writers.Done()
			for _, r := range recs {
				if _, err := sp.Add(r); err != nil {
					t.Error(err)
					return
				}
			}
		}(recs)
	}
	var readers sync.WaitGroup
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			for i := 0; ; i++ {
				// As in TestConcurrentQueryIngest: exit once ingestion
				// finished, but never before one full pass over the mix.
				if i >= len(stmts) {
					select {
					case <-done:
						return
					default:
					}
				}
				stmt := stmts[(i+g)%len(stmts)]
				res, err := lang.Run(engine, stmt)
				if err != nil {
					t.Error(err)
					return
				}
				if stmt == colocStatement {
					pairsMu.Lock()
					colocSeen = append(colocSeen, res.Pairs...)
					pairsMu.Unlock()
				}
			}
		}(g)
	}
	writers.Wait()
	close(done)
	readers.Wait()
	if _, err := sp.Close(); err != nil {
		t.Fatal(err)
	}

	// Every pair any concurrent join returned holds against the quiesced
	// store: both sides are stop matches (no phantoms, no torn tuples) and
	// the pair predicate held on the returned copies.
	st := pipeline.Store()
	side := query.MustBuild(query.OnlyStops())
	for i := range colocSeen {
		p := &colocSeen[i]
		verifyMatch(t, st, side, p.Left)
		verifyMatch(t, st, side, p.Right)
		if !colocPairOK(&p.Left, &p.Right) {
			t.Fatalf("concurrent join returned a pair violating the predicate: %+v / %+v", p.Left.Ref, p.Right.Ref)
		}
	}

	// Quiescent completeness: the language-level join equals a brute-force
	// nested loop over the final store.
	res, err := lang.Run(engine, colocStatement)
	if err != nil {
		t.Fatal(err)
	}
	type refPair struct{ l, r store.TupleRef }
	got := map[refPair]bool{}
	for _, p := range res.Pairs {
		rp := refPair{p.Left.Ref, p.Right.Ref}
		if got[rp] {
			t.Fatalf("duplicate pair %+v", rp)
		}
		got[rp] = true
	}
	var stops []query.Match
	st.VisitStructuredTuples("merged", func(ref store.TupleRef, tp core.EpisodeTuple) bool {
		if tp.Kind == episode.Stop {
			stops = append(stops, query.Match{Ref: ref, Tuple: tp})
		}
		return true
	})
	want := 0
	for i := range stops {
		for j := range stops {
			if !colocPairOK(&stops[i], &stops[j]) {
				continue
			}
			want++
			if !got[refPair{stops[i].Ref, stops[j].Ref}] {
				t.Fatalf("join missed pair %+v / %+v after quiescence", stops[i].Ref, stops[j].Ref)
			}
		}
	}
	if want != len(got) {
		t.Fatalf("join returned %d pairs, brute force %d", len(got), want)
	}
	// The workload is deterministic and known to co-locate stops; an empty
	// join would make the completeness check vacuous.
	if want == 0 {
		t.Fatal("workload produced no co-located stops; completeness check was vacuous")
	}
}
