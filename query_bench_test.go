package semitri_test

import (
	"sync"
	"testing"
	"time"

	"semitri"
	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/geo"
	"semitri/internal/poi"
	"semitri/internal/query"
	"semitri/internal/store"
	"semitri/internal/workload"
)

// The query benchmarks measure the serving-layer read path: typed queries
// through the engine's incrementally maintained indexes, each against the
// pre-index full-scan baseline (a brute pass over the stored tuples — the
// only read path the store had before the engine existed). The shared
// fixture is a 6-user x 5-day people workload, the same shape the `query`
// experiment of cmd/semitri-bench runs at full scale.
var (
	queryBenchOnce   sync.Once
	queryBenchEngine *query.Engine
	queryBenchStore  *store.Store
	queryBenchObjs   []string
	queryBenchDay    time.Time
	queryBenchErr    error
)

func queryBenchSetup(b *testing.B) (*query.Engine, *store.Store) {
	b.Helper()
	queryBenchOnce.Do(func() {
		city, err := workload.NewCity(workload.DefaultCityConfig(1, 8000))
		if err != nil {
			queryBenchErr = err
			return
		}
		ds, err := workload.GeneratePeople(city, workload.DefaultPeopleConfig(6, 5, 17))
		if err != nil {
			queryBenchErr = err
			return
		}
		p, err := semitri.New(semitri.Sources{
			Landuse: city.Landuse, Roads: city.Roads, POIs: city.POIs,
		}, semitri.DefaultConfig())
		if err != nil {
			queryBenchErr = err
			return
		}
		if _, err := p.ProcessRecords(ds.Records()); err != nil {
			queryBenchErr = err
			return
		}
		queryBenchEngine = p.QueryEngine()
		queryBenchStore = p.Store()
		queryBenchObjs = ds.Objects
		queryBenchDay = ds.Records()[0].Time.Truncate(24 * time.Hour)
	})
	if queryBenchErr != nil {
		b.Fatal(queryBenchErr)
	}
	return queryBenchEngine, queryBenchStore
}

// scanBaseline is the pre-index execution: visit every stored tuple of the
// interpretation and filter (bruteMatchesQuery re-implements the predicate
// semantics independently of the engine).
func scanBaseline(st *store.Store, q query.Query) int {
	if q.Interpretation == "" {
		q.Interpretation = query.DefaultInterpretation
	}
	n := 0
	st.VisitStructuredTuples(q.Interpretation, func(ref store.TupleRef, tp core.EpisodeTuple) bool {
		if bruteMatchesQuery(q, ref, tp) {
			n++
		}
		return true
	})
	return n
}

// runQueryBench measures one query shape indexed and scanned, asserting
// both executions agree on the result count.
func runQueryBench(b *testing.B, queries []query.Query) {
	engine, st := queryBenchSetup(b)
	indexedHits, scanHits := 0, 0
	for _, q := range queries {
		ms, err := engine.Execute(q)
		if err != nil {
			b.Fatal(err)
		}
		indexedHits += len(ms)
		scanHits += scanBaseline(st, q)
	}
	if indexedHits != scanHits {
		b.Fatalf("indexed found %d results, scan %d", indexedHits, scanHits)
	}
	b.Run("indexed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := engine.Execute(queries[i%len(queries)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			scanBaseline(st, queries[i%len(queries)])
		}
	})
}

// BenchmarkQueryByAnnotation: stops by POI category across the whole store
// (the paper's "who stopped at a restaurant" shape).
func BenchmarkQueryByAnnotation(b *testing.B) {
	queryBenchSetup(b)
	stop := episode.Stop
	var queries []query.Query
	for _, cat := range poi.AllCategories {
		queries = append(queries, query.Query{
			Kind: &stop, AnnKey: core.AnnPOICategory, AnnValue: cat.String(),
		})
	}
	runQueryBench(b, queries)
}

// BenchmarkQueryTimeWindow: one object's episodes in a 4-hour window.
func BenchmarkQueryTimeWindow(b *testing.B) {
	queryBenchSetup(b)
	var queries []query.Query
	for i, obj := range queryBenchObjs {
		from := queryBenchDay.Add(time.Duration(6+2*i) * time.Hour)
		queries = append(queries, query.Query{
			ObjectID: obj, From: from, To: from.Add(4 * time.Hour),
		})
	}
	runQueryBench(b, queries)
}

// BenchmarkQuerySpatial: stops inside a 1.6km neighbourhood window (the
// paper's "who stopped inside this region" shape; the grid's kind-tagged
// postings prefilter the move episodes, whose kilometre-wide bounding boxes
// would otherwise intersect every window).
func BenchmarkQuerySpatial(b *testing.B) {
	queryBenchSetup(b)
	stop := episode.Stop
	var queries []query.Query
	for i := 0; i < 8; i++ {
		w := geo.RectAround(geo.Pt(float64(1500+i*1000), float64(8500-i*1000)), 800)
		queries = append(queries, query.Query{Kind: &stop, Window: &w})
	}
	runQueryBench(b, queries)
}

// BenchmarkQueryServing regenerates the `query` experiment row of
// cmd/semitri-bench (indexed vs scan ns/query at a reduced scale).
func BenchmarkQueryServing(b *testing.B) { runExperiment(b, "query") }
