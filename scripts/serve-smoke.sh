#!/usr/bin/env bash
# Serve smoke test: builds semitri-serve, ingests a small generated
# workload, starts the server and probes every endpoint, asserting HTTP 200
# and a non-empty JSON body that contains the key the endpoint is defined
# by. CI runs this as the serve-smoke job; `make serve-smoke` runs it
# locally.
set -euo pipefail
cd "$(dirname "$0")/.."

addr="127.0.0.1:${SEMITRI_SMOKE_PORT:-18080}"
tmp=$(mktemp -d)
server_pid=""
cleanup() {
	[ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/semitri-gen" ./cmd/semitri-gen
go build -o "$tmp/semitri-serve" ./cmd/semitri-serve

"$tmp/semitri-gen" -kind people -users 2 -days 1 -pois 3000 -out "$tmp/people.csv"
# -wait: only start listening once ingestion finished, so every probe sees
# the fully annotated store. -pprof + -query-parallelism cover the profiling
# endpoints and the parallel executor in the same pass.
"$tmp/semitri-serve" -addr "$addr" -in "$tmp/people.csv" -pois 3000 -wait -progress 0 -pprof -query-parallelism 4 &
server_pid=$!

for _ in $(seq 1 100); do
	if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then
		break
	fi
	kill -0 "$server_pid" 2>/dev/null || { echo "server exited early" >&2; exit 1; }
	sleep 0.2
done

probe() {
	local path=$1 want=$2
	local body
	body=$(curl -fsS "http://$addr$path")
	if [ -z "$body" ]; then
		echo "FAIL $path: empty body" >&2
		exit 1
	fi
	if ! printf '%s' "$body" | grep -q "\"$want\""; then
		echo "FAIL $path: body lacks \"$want\": $body" >&2
		exit 1
	fi
	echo "ok GET $path"
}

probe "/healthz" "status"
probe "/query/episodes?kind=stop&limit=3" "matches"
probe "/query/episodes?annkey=poi_category&annvalue=item%20sale" "plan"
probe "/query/episodes?minx=0&miny=0&maxx=10000&maxy=10000&kind=stop" "matches"
probe "/query/episodes?kind=stop&limit=3&trace=1" "trace"
probe "/query/trajectories" "trajectories"
probe "/query/objects" "objects"
probe "/stats" "index"
probe "/stats" "metrics"
probe "/debug/queries" "queries"

# /metrics: Prometheus text exposition — non-empty, well-formed (every
# non-comment line is "name value"), and the key families of each subsystem
# present, with the ingest counter moved by the smoke ingest.
metrics=$(curl -fsS "http://$addr/metrics")
if [ -z "$metrics" ]; then
	echo "FAIL /metrics: empty body" >&2
	exit 1
fi
for family in semitri_ingest_records_total semitri_ingest_stage_ns \
	semitri_store_mutations_total semitri_query_total \
	semitri_wal_frames_total semitri_segment_freezes_total go_goroutines; do
	if ! printf '%s\n' "$metrics" | grep -q "^# TYPE $family "; then
		echo "FAIL /metrics: family $family missing" >&2
		exit 1
	fi
done
if ! printf '%s\n' "$metrics" | grep -q '^semitri_ingest_records_total [1-9]'; then
	echo "FAIL /metrics: ingest counter did not move" >&2
	exit 1
fi
if printf '%s\n' "$metrics" | grep -v '^#' | grep -v '^$' | awk 'NF != 2 { exit 1 }'; then
	echo "ok GET /metrics"
else
	echo "FAIL /metrics: malformed sample line" >&2
	exit 1
fi

# -pprof must expose the standard profiling index (plain HTML, not JSON —
# just assert it answers 200 with a recognisable body).
pprof_body=$(curl -fsS "http://$addr/debug/pprof/")
if ! printf '%s' "$pprof_body" | grep -qi "profile"; then
	echo "FAIL /debug/pprof/: unexpected body" >&2
	exit 1
fi
echo "ok GET /debug/pprof/"

# The relational endpoint: a declarative statement must come back with its
# plan echoed, and a join+aggregate statement must return the group shape.
probe_rel() {
	local stmt=$1 want=$2
	local body
	body=$(curl -fsS -G --data-urlencode "q=$stmt" "http://$addr/query/relational")
	if [ -z "$body" ]; then
		echo "FAIL /query/relational [$stmt]: empty body" >&2
		exit 1
	fi
	if ! printf '%s' "$body" | grep -q "\"$want\""; then
		echo "FAIL /query/relational [$stmt]: body lacks \"$want\": $body" >&2
		exit 1
	fi
	echo "ok GET /query/relational [$stmt]"
}

probe_rel 'stops where ann.poi_category = "item sale" limit 5' "matches"
probe_rel 'stops join stops on distance <= 200 and within 1h and distinct objects' "pairs"
probe_rel 'stops join stops on distance <= 200 and within 1h and distinct objects group by object distinct objects top 5' "groups"

# A malformed query must answer 400 with an error body, not 200 or a crash.
status=$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/query/episodes?kind=hover")
if [ "$status" != "400" ]; then
	echo "FAIL bad query: status $status, want 400" >&2
	exit 1
fi
echo "ok GET /query/episodes?kind=hover -> 400"

# Same for a malformed relational statement: 400 plus a structured
# {"error": ...} body.
bad=$(curl -s -G --data-urlencode 'q=stops join stops on gravity' \
	-w '\n%{http_code}' "http://$addr/query/relational")
status=${bad##*$'\n'}
body=${bad%$'\n'*}
if [ "$status" != "400" ]; then
	echo "FAIL bad relational statement: status $status, want 400" >&2
	exit 1
fi
if ! printf '%s' "$body" | grep -q '"error"'; then
	echo "FAIL bad relational statement: body lacks \"error\": $body" >&2
	exit 1
fi
echo "ok GET /query/relational [bad statement] -> 400 with error body"

echo "serve smoke passed"
