#!/usr/bin/env bash
# Cold-store smoke test: exercises the tiered storage engine end to end.
# Ingests a generated workload under a tight GOMEMLIMIT with -storage
# segments and an aggressive checkpoint interval (so the heap tail is
# forcibly frozen into binary segments while ingestion runs), kills the
# server with SIGKILL, restarts it from segments + WAL alone, and asserts
# the recovered server reports exactly the pre-kill counts and answers a
# query byte-for-byte identically. CI runs this as the coldstore-smoke job;
# `make coldstore-smoke` runs it locally.
set -euo pipefail
cd "$(dirname "$0")/.."

addr="127.0.0.1:${SEMITRI_COLDSTORE_PORT:-18091}"
tmp=$(mktemp -d)
server_pid=""
cleanup() {
	# SIGKILL, not SIGTERM: a graceful shutdown would start a final
	# checkpoint into the data dir this trap is about to delete.
	[ -n "$server_pid" ] && kill -9 "$server_pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/semitri-gen" ./cmd/semitri-gen
go build -o "$tmp/semitri-serve" ./cmd/semitri-serve

"$tmp/semitri-gen" -kind people -users 3 -days 2 -pois 3000 -out "$tmp/people.csv"

wait_healthy() {
	for _ in $(seq 1 150); do
		if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then
			return 0
		fi
		kill -0 "$server_pid" 2>/dev/null || { echo "server exited early" >&2; exit 1; }
		sleep 0.2
	done
	echo "server never became healthy" >&2
	exit 1
}

query="/query/episodes?annkey=poi_category&annvalue=item%20sale&kind=stop"

# First run: segment storage, a 200ms checkpoint interval so freezes fire
# repeatedly during ingestion, and a tight GOMEMLIMIT to keep the GC honest
# about the cold tier living off-heap. -wait means the server only listens
# once ingestion finished; a 2s sleep after gives the auto-checkpoint loop
# time to freeze the final tail so the restart genuinely reads segments.
GOMEMLIMIT=128MiB "$tmp/semitri-serve" -addr "$addr" -in "$tmp/people.csv" -pois 3000 \
	-data-dir "$tmp/data" -storage segments -checkpoint-interval 200ms \
	-wait -progress 0 &
server_pid=$!
wait_healthy
sleep 2
before_counts=$(curl -fsS "http://$addr/healthz")
before_answer=$(curl -fsS "http://$addr$query")

records=$(printf '%s' "$before_counts" | grep -o '"records": *[0-9]*' | grep -o '[0-9]*')
if [ -z "$records" ] || [ "$records" -eq 0 ]; then
	echo "FAIL: server reports no records before the kill: $before_counts" >&2
	exit 1
fi
segments=$(ls "$tmp/data"/seg-*.seg 2>/dev/null | wc -l)
if [ "$segments" -eq 0 ]; then
	echo "FAIL: no segment files were frozen before the kill" >&2
	ls -la "$tmp/data" >&2
	exit 1
fi
echo "pre-kill: $records records ingested, $segments cold segment(s) frozen"

# The crash: SIGKILL, no shutdown handler, no final checkpoint. Recovery
# must come from the segments plus the WAL tail alone.
kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""

# Restart from the data directory alone (no -in: a recovered non-empty
# store is served as is, nothing is re-ingested).
GOMEMLIMIT=128MiB "$tmp/semitri-serve" -addr "$addr" -data-dir "$tmp/data" \
	-storage segments -wait -progress 0 &
server_pid=$!
wait_healthy
after_counts=$(curl -fsS "http://$addr/healthz")
after_answer=$(curl -fsS "http://$addr$query")

if [ "$before_counts" != "$after_counts" ]; then
	echo "FAIL: store counts changed across kill -9 + segment recovery" >&2
	echo "  before: $before_counts" >&2
	echo "  after:  $after_counts" >&2
	exit 1
fi
echo "ok: record/trajectory/episode/structured counts identical after segment recovery"

if [ "$before_answer" != "$after_answer" ]; then
	echo "FAIL: query answer changed across kill -9 + segment recovery" >&2
	echo "  before: $before_answer" >&2
	echo "  after:  $after_answer" >&2
	exit 1
fi
echo "ok: query answer byte-identical after segment recovery ($query)"

echo "coldstore smoke passed"
