#!/usr/bin/env bash
# Recovery smoke test: builds semitri-serve, ingests a generated workload
# with the write-ahead log enabled, kills the server with SIGKILL (no
# cleanup, no final checkpoint — the crash case), restarts it from the data
# directory alone, and asserts the recovered server reports exactly the
# pre-kill record/episode/structured counts and answers a query
# byte-for-byte identically. CI runs this as the recovery-smoke job;
# `make recovery-smoke` runs it locally.
set -euo pipefail
cd "$(dirname "$0")/.."

addr="127.0.0.1:${SEMITRI_RECOVERY_PORT:-18090}"
tmp=$(mktemp -d)
server_pid=""
cleanup() {
	# SIGKILL, not SIGTERM: a graceful shutdown would start a final
	# checkpoint into the data dir this trap is about to delete.
	[ -n "$server_pid" ] && kill -9 "$server_pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/semitri-gen" ./cmd/semitri-gen
go build -o "$tmp/semitri-serve" ./cmd/semitri-serve

"$tmp/semitri-gen" -kind people -users 2 -days 1 -pois 3000 -out "$tmp/people.csv"

wait_healthy() {
	for _ in $(seq 1 150); do
		if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then
			return 0
		fi
		kill -0 "$server_pid" 2>/dev/null || { echo "server exited early" >&2; exit 1; }
		sleep 0.2
	done
	echo "server never became healthy" >&2
	exit 1
}

query="/query/episodes?annkey=poi_category&annvalue=item%20sale&kind=stop"

# First run: ingest with the WAL on. -wait means the server only listens
# once ingestion finished and the stream closed — and a closed stream is a
# durability boundary (the WAL is synced), so everything we observe below
# is on disk before the kill.
"$tmp/semitri-serve" -addr "$addr" -in "$tmp/people.csv" -pois 3000 \
	-data-dir "$tmp/data" -wait -progress 0 &
server_pid=$!
wait_healthy
before_counts=$(curl -fsS "http://$addr/healthz")
before_answer=$(curl -fsS "http://$addr$query")

records=$(printf '%s' "$before_counts" | grep -o '"records": *[0-9]*' | grep -o '[0-9]*')
if [ -z "$records" ] || [ "$records" -eq 0 ]; then
	echo "FAIL: server reports no records before the kill: $before_counts" >&2
	exit 1
fi
echo "pre-kill: $records records ingested"

# The crash: SIGKILL, no shutdown handler, no final checkpoint. Recovery
# must come from the log alone.
kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""

# Restart from the data directory alone (no -in: a recovered non-empty
# store is served as is, nothing is re-ingested).
"$tmp/semitri-serve" -addr "$addr" -data-dir "$tmp/data" -wait -progress 0 &
server_pid=$!
wait_healthy
after_counts=$(curl -fsS "http://$addr/healthz")
after_answer=$(curl -fsS "http://$addr$query")

if [ "$before_counts" != "$after_counts" ]; then
	echo "FAIL: store counts changed across kill -9 + recovery" >&2
	echo "  before: $before_counts" >&2
	echo "  after:  $after_counts" >&2
	exit 1
fi
echo "ok: record/trajectory/episode/structured counts identical after recovery"

if [ "$before_answer" != "$after_answer" ]; then
	echo "FAIL: query answer changed across kill -9 + recovery" >&2
	echo "  before: $before_answer" >&2
	echo "  after:  $after_answer" >&2
	exit 1
fi
echo "ok: query answer byte-identical after recovery ($query)"

echo "recovery smoke passed"
