#!/usr/bin/env bash
# Subscribe smoke test: starts semitri-serve with live subscriptions on and
# throttled ingestion, opens two SSE streams before the first episode closes
# — a full-extent geofence standing query and the metrics stream — lets the
# whole workload ingest, then asserts both streams carried well-formed
# events and that the standing query's folded match count agrees with a
# post-hoc /query/episodes answer over the quiescent store. CI runs this as
# the subscribe-smoke job; `make subscribe-smoke` runs it locally.
set -euo pipefail
cd "$(dirname "$0")/.."

addr="127.0.0.1:${SEMITRI_SMOKE_PORT:-18081}"
tmp=$(mktemp -d)
server_pid=""
sub_pid=""
stream_pid=""
cleanup() {
	for pid in "$sub_pid" "$stream_pid" "$server_pid"; do
		[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	done
	rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/semitri-gen" ./cmd/semitri-gen
go build -o "$tmp/semitri-serve" ./cmd/semitri-serve

"$tmp/semitri-gen" -kind people -users 1 -days 1 -pois 3000 -out "$tmp/people.csv"

# -ingest-delay throttles the producer so the subscriptions below are
# standing before the first stop episode closes (stop detection needs many
# records, each now costing 2ms): a standing query only sees events from
# registration on, and the post-hoc comparison needs all of them.
"$tmp/semitri-serve" -addr "$addr" -in "$tmp/people.csv" -pois 3000 \
	-progress 0 -ingest-delay 2ms -sse-heartbeat 500ms \
	>"$tmp/server.log" 2>&1 &
server_pid=$!

for _ in $(seq 1 100); do
	if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then
		break
	fi
	kill -0 "$server_pid" 2>/dev/null || { echo "server exited early" >&2; cat "$tmp/server.log" >&2; exit 1; }
	sleep 0.1
done

# Geofence standing query over the whole city: its folded match count must
# equal the engine's stop count inside the same window once quiescent. The
# big ?buffer keeps delivery drop-free, so the fold is exact.
curl -fsSN -G --data-urlencode 'q=stops where window(0, 0, 10000, 10000)' \
	"http://$addr/subscribe?buffer=65536" >"$tmp/sub.sse" &
sub_pid=$!
curl -fsSN "http://$addr/metrics/stream" >"$tmp/stream.sse" &
stream_pid=$!

# Both subscriptions must be standing before episodes start closing.
sleep 0.5
if ! grep -q '^event: subscribed' "$tmp/sub.sse"; then
	echo "FAIL /subscribe: no subscribed frame" >&2
	cat "$tmp/sub.sse" >&2
	exit 1
fi
echo "ok GET /subscribe [subscribed frame]"

for _ in $(seq 1 600); do
	if grep -q "ingestion complete" "$tmp/server.log"; then
		break
	fi
	kill -0 "$server_pid" 2>/dev/null || { echo "server exited early" >&2; cat "$tmp/server.log" >&2; exit 1; }
	sleep 0.2
done
if ! grep -q "ingestion complete" "$tmp/server.log"; then
	echo "FAIL: ingestion did not finish in time" >&2
	exit 1
fi
# Let the dispatcher drain and a heartbeat carry the final accounting.
sleep 2
kill "$sub_pid" "$stream_pid" 2>/dev/null || true
wait "$sub_pid" "$stream_pid" 2>/dev/null || true
sub_pid=""
stream_pid=""

# Well-formedness: every frame is an "event:" line paired with a "data:"
# JSON line (the SSE contract the dashboard consumes).
events=$(grep -c '^event: ' "$tmp/sub.sse")
datas=$(grep -c '^data: {' "$tmp/sub.sse")
if [ "$events" -ne "$datas" ] || [ "$events" -lt 2 ]; then
	echo "FAIL /subscribe: $events event lines vs $datas data lines" >&2
	exit 1
fi
echo "ok GET /subscribe [$events well-formed frames]"

# Drop-free delivery: the last heartbeat's accounting must report zero
# drops, otherwise the fold below would undercount by construction.
last_hb=$(grep -A1 '^event: heartbeat' "$tmp/sub.sse" | grep '^data: ' | tail -1)
if [ -z "$last_hb" ]; then
	echo "FAIL /subscribe: no heartbeat frame" >&2
	exit 1
fi
if ! printf '%s' "$last_hb" | grep -q '"drops":0'; then
	echo "FAIL /subscribe: heartbeat reports drops: $last_hb" >&2
	exit 1
fi

# Fold the stream: net matches (match minus unmatch) must equal the
# post-hoc engine answer for the same predicate over the now-quiescent
# store. This is the live/engine parity property, end to end over HTTP.
matches=$(grep -c '^event: match' "$tmp/sub.sse" || true)
unmatches=$(grep -c '^event: unmatch' "$tmp/sub.sse" || true)
net=$((matches - unmatches))
engine=$(curl -fsS "http://$addr/query/episodes?kind=stop&minx=0&miny=0&maxx=10000&maxy=10000" \
	| grep -o '"count": *[0-9]*' | head -1 | grep -o '[0-9]*')
if [ -z "$engine" ]; then
	echo "FAIL /query/episodes: no count in answer" >&2
	exit 1
fi
if [ "$net" -ne "$engine" ]; then
	echo "FAIL parity: stream folded to $net stops ($matches match - $unmatches unmatch), engine says $engine" >&2
	exit 1
fi
if [ "$net" -lt 1 ]; then
	echo "FAIL parity: workload produced no stops to stream" >&2
	exit 1
fi
echo "ok live/engine parity: $net stops ($matches match - $unmatches unmatch)"

# The metrics stream: at least two tick frames (the connect-time sample plus
# the sampler), each carrying the live subsystem's own gauges — the bus
# instruments itself.
ticks=$(grep -c '^event: tick' "$tmp/stream.sse")
if [ "$ticks" -lt 2 ]; then
	echo "FAIL /metrics/stream: only $ticks tick frames" >&2
	exit 1
fi
if ! grep -q 'semitri_live_standing_queries' "$tmp/stream.sse"; then
	echo "FAIL /metrics/stream: ticks lack the live subsystem gauges" >&2
	exit 1
fi
if ! grep -q 'semitri_ingest_records_total' "$tmp/stream.sse"; then
	echo "FAIL /metrics/stream: ticks lack the ingest counters" >&2
	exit 1
fi
echo "ok GET /metrics/stream [$ticks ticks]"

# The history endpoint answers for a metric the stream carried.
history=$(curl -fsS "http://$addr/metrics/history?name=semitri_ingest_records_total&window=10m")
if ! printf '%s' "$history" | grep -q '"samples"'; then
	echo "FAIL /metrics/history: $history" >&2
	exit 1
fi
echo "ok GET /metrics/history"

# The dashboard serves and is self-contained.
dash=$(curl -fsS "http://$addr/debug/dash")
if ! printf '%s' "$dash" | grep -q 'EventSource'; then
	echo "FAIL /debug/dash: unexpected body" >&2
	exit 1
fi
echo "ok GET /debug/dash"

# A malformed statement answers 400 with a structured error, not a hung
# stream.
bad=$(curl -s -G --data-urlencode 'q=stops join stops on gravity' \
	-w '\n%{http_code}' "http://$addr/subscribe")
status=${bad##*$'\n'}
body=${bad%$'\n'*}
if [ "$status" != "400" ] || ! printf '%s' "$body" | grep -q '"error"'; then
	echo "FAIL bad subscribe statement: status $status body $body" >&2
	exit 1
fi
echo "ok GET /subscribe [bad statement] -> 400 with error body"

echo "subscribe smoke passed"
