// Package semitri is a Go implementation of SeMiTri (Yan et al., EDBT 2011):
// a middleware that progressively turns raw GPS streams into structured
// semantic trajectories by annotating stop/move episodes with semantic
// regions (land-use), semantic lines (road segments + transportation modes)
// and semantic points (POI categories inferred with a hidden Markov model).
//
// The package exposes the end-to-end Pipeline used by the command-line
// tools, the examples and the benchmark harness. The individual layers live
// in internal packages: internal/region, internal/line and internal/point
// implement Algorithms 1-3 of the paper, internal/spatial the shared
// spatial-index layer all three annotators query (bulk-loaded STR R-tree
// and uniform grid behind one interface, plus per-object locality caches),
// internal/episode the stop/move computation, internal/store the semantic
// trajectory store and internal/workload the synthetic stand-ins for the
// paper's datasets.
//
// A minimal batch use looks like:
//
//	city, _ := workload.NewCity(workload.DefaultCityConfig(1, 5000))
//	pipeline, _ := semitri.New(semitri.Sources{
//	    Landuse: city.Landuse, Roads: city.Roads, POIs: city.POIs,
//	}, semitri.DefaultConfig())
//	result, _ := pipeline.ProcessRecords(records)
//	st, _ := pipeline.Store().Structured(result.TrajectoryIDs[0], semitri.InterpretationMerged)
//	fmt.Println(st)
//
// For online ingestion — the middleware setting of the paper — use a
// StreamProcessor instead of ProcessRecords. It accepts records one at a
// time, emits every stop/move episode as soon as it is final (with its
// region and line annotations already attached), and produces exactly the
// same stored trajectories as the batch path:
//
//	stream := pipeline.NewStream()
//	for record := range source {             // e.g. a GPS feed
//	    events, _ := stream.Add(record)
//	    for _, ev := range events {
//	        if ev.Episode != nil {
//	            fmt.Println("episode closed:", ev.Episode.Kind, ev.Tuple.Annotations)
//	        }
//	    }
//	}
//	result, _ := stream.Close()              // flush open trajectories
package semitri

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/gps"
	"semitri/internal/landuse"
	"semitri/internal/line"
	"semitri/internal/obs"
	"semitri/internal/poi"
	"semitri/internal/point"
	"semitri/internal/query"
	"semitri/internal/region"
	"semitri/internal/roadnet"
	"semitri/internal/segment"
	"semitri/internal/stats"
	"semitri/internal/store"
	"semitri/internal/wal"
)

// Interpretation names under which the pipeline stores structured semantic
// trajectories in the semantic trajectory store.
const (
	// InterpretationRegion is the record-level region annotation (Alg. 1),
	// with consecutive same-category tuples merged.
	InterpretationRegion = "region"
	// InterpretationRegionEpisodes is the episode-level region annotation.
	InterpretationRegionEpisodes = "region-episodes"
	// InterpretationLine is the per-segment line annotation of move episodes
	// (Alg. 2) with transportation modes.
	InterpretationLine = "line"
	// InterpretationPoint is the stop annotation with POI categories (Alg. 3).
	InterpretationPoint = "point"
	// InterpretationMerged is the episode-level combination of all layers:
	// one tuple per stop/move episode carrying region, line and point
	// annotations (the semantic trajectory of §1.1).
	InterpretationMerged = "merged"
)

// Pipeline latency stage names (the x axis of Fig. 17).
const (
	StageComputeEpisode = "compute episode"
	StageStoreEpisode   = "store episode"
	StageMapMatch       = "map match"
	StageStoreMatch     = "store match result"
	StageLanduseJoin    = "landuse (join)"
	StagePointAnnotate  = "poi annotation"
)

// Sources bundles the 3rd-party geographic data the annotation layers use.
// Each source is optional: a missing source simply disables the
// corresponding layer (SeMiTri produces partial annotations, §5.1).
type Sources struct {
	Landuse *landuse.Map
	Roads   *roadnet.Network
	POIs    *poi.Set
}

// Config controls the full pipeline.
type Config struct {
	// Cleaning configures outlier removal and smoothing.
	Cleaning gps.CleaningConfig
	// Segmentation configures raw-trajectory identification.
	Segmentation gps.SegmentationConfig
	// DailySplit additionally splits trajectories at UTC day boundaries
	// (the "daily trajectory" unit of the paper's people experiments).
	DailySplit bool
	// Episode configures stop/move detection.
	Episode episode.Config
	// Line configures the global map-matching layer.
	Line line.Config
	// Point configures the HMM POI-category layer.
	Point point.Config
	// Workers bounds the number of trajectories annotated concurrently
	// (values below 1 mean sequential processing).
	Workers int
	// StoreShards is the number of lock stripes of the semantic trajectory
	// store (values below 1 mean store.DefaultShards). More stripes lower
	// contention between concurrently ingested objects; one stripe
	// degenerates to a single global store lock.
	StoreShards int
	// QueryParallelism caps the query engine's worker pool (parallel join
	// probing, sharded scans, concurrent candidate resolution). Values below
	// 1 mean runtime.GOMAXPROCS(0); 1 forces serial execution. Results are
	// byte-identical at any setting.
	QueryParallelism int
	// Durability configures the write-ahead-log durability subsystem. The
	// zero value keeps the pipeline purely in-memory.
	Durability Durability
}

// Durability configures the pipeline's write-ahead log (internal/wal): with
// a Dir set, New recovers the store from the directory's snapshot + log
// tail, attaches the WAL to the store's mutation path and (optionally)
// checkpoints on a schedule. After an ingest, a kill -9 and a restart with
// the same Dir, the recovered pipeline answers queries exactly as the dead
// one did at its last durable point.
type Durability struct {
	// Dir is the data directory holding the log segments and the checkpoint
	// base. Empty disables durability entirely.
	Dir string
	// Storage selects the checkpoint base format: "json" (or empty) writes a
	// whole-store JSON snapshot per checkpoint; "segments" runs the tiered
	// storage engine (internal/segment) — checkpoints freeze only the heap
	// tail written since the last one into an immutable binary segment, cold
	// data is served from mmap-backed segment files instead of the Go heap,
	// and recovery folds segment footers instead of re-parsing a snapshot.
	Storage string
	// FlushInterval is the group-commit window: the WAL batches frames and
	// pays one write+fsync per interval (default wal.DefaultFlushInterval).
	// It bounds the data-loss window of a hard crash.
	FlushInterval time.Duration
	// Fsync selects the sync policy: "" or "interval" (group commit),
	// "always" (sync every mutation) or "never" (leave syncing to the OS).
	Fsync string
	// SegmentSize is the log-segment rotation threshold in bytes (default
	// wal.DefaultSegmentSize).
	SegmentSize int64
	// CheckpointInterval, when positive, snapshots the store and truncates
	// obsolete log segments on this schedule. Checkpoints also run on
	// Pipeline.Close and on demand via Pipeline.Checkpoint.
	CheckpointInterval time.Duration
}

// fsyncPolicy maps the config string onto the WAL policy.
func fsyncPolicy(s string) (wal.FsyncPolicy, error) {
	switch s {
	case "", "interval":
		return wal.FsyncInterval, nil
	case "always":
		return wal.FsyncAlways, nil
	case "never":
		return wal.FsyncNever, nil
	}
	return 0, fmt.Errorf("unknown fsync policy %q (want interval, always or never)", s)
}

// RecoveryStats summarises what New recovered from a durability directory.
type RecoveryStats struct {
	// SnapshotLoaded reports whether a checkpoint snapshot seeded the store.
	SnapshotLoaded bool
	// ColdSegments counts the binary segments folded into the store's frozen
	// base (segment storage only).
	ColdSegments int
	// Segments and FramesApplied count the replayed log tail.
	Segments      int
	FramesApplied int
	// Torn reports that the log ended in a torn or corrupt frame (the
	// expected shape after a hard crash mid-flush); the committed prefix
	// before it was kept and the tail repaired.
	Torn bool
	// Quarantined counts intact log segments stranded behind a mid-log
	// tear (disk corruption, which a crash cannot produce); recovery
	// renames them aside as *.quarantined instead of replaying or deleting
	// them. Zero for the ordinary torn-final-frame case.
	Quarantined int
}

// DefaultConfig returns the configuration used throughout the experiments.
func DefaultConfig() Config {
	return Config{
		Cleaning:     gps.DefaultCleaningConfig(),
		Segmentation: gps.DefaultSegmentationConfig(),
		DailySplit:   true,
		Episode:      episode.DefaultConfig(),
		Line:         line.DefaultConfig(),
		Point:        point.DefaultConfig(),
		Workers:      4,
	}
}

// VehicleConfig returns a configuration tuned for car/taxi trajectories:
// vehicle episode thresholds and the trivial "car" transportation mode.
func VehicleConfig() Config {
	cfg := DefaultConfig()
	cfg.Episode = episode.VehicleConfig()
	cfg.Line.VehicleMode = line.ModeCar
	return cfg
}

// Pipeline wires preprocessing, episode computation, the three annotation
// layers and the semantic trajectory store (Fig. 2). A Pipeline is safe for
// concurrent use.
type Pipeline struct {
	cfg     Config
	sources Sources

	regionAnnotator *region.Annotator
	lineAnnotator   *line.Annotator
	pointAnnotator  *point.Annotator

	st *store.Store

	// wal is the attached durability log (nil without Config.Durability.Dir);
	// tier the segment cold tier (nil unless Storage is "segments"); recovery
	// holds what New replayed from its directory.
	wal      *wal.Log
	tier     *segment.Tier
	recovery RecoveryStats

	mu      sync.Mutex
	latency *stats.LatencyBreakdown
	engine  *query.Engine
	live    *query.Live
	closed  bool
}

// New builds a pipeline over the given sources. At least one source must be
// provided.
func New(sources Sources, cfg Config) (*Pipeline, error) {
	if sources.Landuse == nil && sources.Roads == nil && sources.POIs == nil {
		return nil, errors.New("semitri: at least one 3rd-party source is required")
	}
	if err := cfg.Episode.Validate(); err != nil {
		return nil, fmt.Errorf("semitri: %w", err)
	}
	p := &Pipeline{
		cfg:     cfg,
		sources: sources,
		latency: stats.NewLatencyBreakdown(),
	}
	if cfg.Durability.Dir == "" {
		p.st = store.NewSharded(cfg.StoreShards)
	} else {
		// Durable pipeline: recover the store from the data directory's
		// checkpoint base + log tail, then attach a fresh WAL so every
		// mutation from here on is logged.
		policy, err := fsyncPolicy(cfg.Durability.Fsync)
		if err != nil {
			return nil, fmt.Errorf("semitri: durability: %w", err)
		}
		var (
			st     *store.Store
			rstats wal.RecoverStats
		)
		switch cfg.Durability.Storage {
		case "", "json":
			if segment.HasSegments(cfg.Durability.Dir) {
				return nil, fmt.Errorf("semitri: durability: %s holds binary segments; set Durability.Storage to %q",
					cfg.Durability.Dir, "segments")
			}
			st, rstats, err = wal.Recover(cfg.Durability.Dir, cfg.StoreShards)
			if err != nil {
				return nil, fmt.Errorf("semitri: recover: %w", err)
			}
		case "segments":
			var sstats segment.RecoverStats
			st, p.tier, sstats, err = segment.Recover(cfg.Durability.Dir, cfg.StoreShards)
			if err != nil {
				return nil, fmt.Errorf("semitri: recover: %w", err)
			}
			rstats = sstats.WAL
			rstats.SnapshotLoaded = sstats.SnapshotLoaded
			p.recovery.ColdSegments = sstats.Segments
		default:
			return nil, fmt.Errorf("semitri: durability: unknown storage %q (want json or segments)",
				cfg.Durability.Storage)
		}
		l, err := wal.Open(wal.Options{
			Dir:           cfg.Durability.Dir,
			FlushInterval: cfg.Durability.FlushInterval,
			SegmentSize:   cfg.Durability.SegmentSize,
			Fsync:         policy,
		})
		if err != nil {
			if p.tier != nil {
				p.tier.Close()
			}
			return nil, fmt.Errorf("semitri: %w", err)
		}
		st.AttachLog(l)
		if p.tier != nil {
			tier := p.tier
			l.StartAutoCheckpointFunc(func() error { return tier.Checkpoint(l, st) },
				cfg.Durability.CheckpointInterval)
		} else {
			l.StartAutoCheckpoint(st, cfg.Durability.CheckpointInterval)
		}
		p.st = st
		p.wal = l
		p.recovery.SnapshotLoaded = rstats.SnapshotLoaded
		p.recovery.Segments = rstats.Segments
		p.recovery.FramesApplied = rstats.FramesApplied
		p.recovery.Torn = rstats.Torn
		p.recovery.Quarantined = rstats.QuarantinedSegments
	}
	// fail releases the WAL and segment tier (stopping background
	// goroutines) when a later construction step errors out.
	fail := func(err error) (*Pipeline, error) {
		if p.wal != nil {
			p.st.AttachLog(nil)
			_ = p.wal.Close()
		}
		if p.tier != nil {
			_ = p.tier.Close()
		}
		return nil, err
	}
	var err error
	if sources.Landuse != nil {
		if p.regionAnnotator, err = region.NewAnnotator(sources.Landuse); err != nil {
			return fail(fmt.Errorf("semitri: region layer: %w", err))
		}
	}
	if sources.Roads != nil {
		if p.lineAnnotator, err = line.NewAnnotator(sources.Roads, cfg.Line); err != nil {
			return fail(fmt.Errorf("semitri: line layer: %w", err))
		}
	}
	if sources.POIs != nil {
		if p.pointAnnotator, err = point.NewAnnotator(sources.POIs, cfg.Point); err != nil {
			return fail(fmt.Errorf("semitri: point layer: %w", err))
		}
	}
	return p, nil
}

// Durable reports whether the pipeline persists its store through a
// write-ahead log (Config.Durability.Dir was set).
func (p *Pipeline) Durable() bool { return p.wal != nil }

// Recovery returns what New recovered from the durability directory (the
// zero value for non-durable pipelines or fresh directories).
func (p *Pipeline) Recovery() RecoveryStats { return p.recovery }

// SyncDurability forces the WAL's pending frames to stable storage: after
// it returns nil, every store mutation committed before the call survives a
// crash. A no-op without durability.
func (p *Pipeline) SyncDurability() error {
	if p.wal == nil {
		return nil
	}
	return p.wal.Sync()
}

// Checkpoint persists the store's committed state into the durability
// directory and truncates the log segments that made obsolete: a full JSON
// snapshot under json storage, an incremental freeze of the heap tail into a
// new binary segment under segment storage (cost proportional to the data
// written since the last checkpoint, not the total). Safe to call while
// ingestion is running. A no-op without durability.
func (p *Pipeline) Checkpoint() error {
	if p.wal == nil {
		return nil
	}
	if p.tier != nil {
		return p.tier.Checkpoint(p.wal, p.st)
	}
	return p.wal.Checkpoint(p.st)
}

// Close shuts the durability subsystem down cleanly: a final checkpoint
// (snapshot + log truncation) followed by closing the WAL. Close any
// StreamProcessors first so their tail artefacts are in the store. Safe to
// call more than once and a no-op for non-durable pipelines.
func (p *Pipeline) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	live := p.live
	p.mu.Unlock()
	if live != nil {
		live.Close() // stop the standing-query dispatcher goroutine
	}
	if p.wal == nil {
		return nil
	}
	cpErr := p.Checkpoint()
	p.st.AttachLog(nil)
	if err := p.wal.Close(); err != nil && cpErr == nil {
		cpErr = err
	}
	if p.tier != nil {
		if err := p.tier.Close(); err != nil && cpErr == nil {
			cpErr = err
		}
	}
	return cpErr
}

// Health reports the pipeline's current degradations as human-readable
// reasons; an empty slice means healthy. It is the probe the serving layer
// wires into GET /healthz (serve.WithHealth): a sticky WAL write/sync error,
// a WAL flusher that has stopped making progress, or a failed last
// checkpoint/freeze each contribute a reason. Non-durable pipelines are
// always healthy. Safe to poll.
func (p *Pipeline) Health() []string {
	var reasons []string
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if p.wal != nil && !closed {
		if err := p.wal.Err(); err != nil {
			reasons = append(reasons, fmt.Sprintf("wal: %v", err))
		}
		// The flusher wakes every FlushInterval even when idle, so a last
		// flush far older than the interval means it has stalled. The floor
		// keeps scheduling jitter on tiny intervals from flapping the probe.
		if last := p.wal.LastFlush(); !last.IsZero() {
			stall := 10 * p.wal.FlushInterval()
			if stall < 2*time.Second {
				stall = 2 * time.Second
			}
			if age := time.Since(last); age > stall {
				reasons = append(reasons, fmt.Sprintf("wal: flusher stalled (last flush %s ago)",
					age.Round(time.Millisecond)))
			}
		}
	}
	if obs.CheckpointErrored.Value() != 0 {
		reasons = append(reasons, "checkpoint: the last checkpoint or freeze failed")
	}
	return reasons
}

// Store returns the semantic trajectory store populated by the pipeline.
func (p *Pipeline) Store() *store.Store { return p.st }

// QueryEngine returns the pipeline's query engine, creating it on first use:
// the engine attaches to the store's append path and backfills from its
// current content, so it may be requested before ingestion starts (the
// cheapest point — indexes then build purely incrementally) or afterwards.
// Queries are safe concurrently with live StreamProcessor ingestion; a
// result is always consistent with some store state the ingest actually
// passed through.
func (p *Pipeline) QueryEngine() *query.Engine {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.engineLocked()
}

// engineLocked creates the engine on first use. Caller holds p.mu. When the
// live dispatcher already exists, the engine's self-attachment is replaced
// with the tee so both keep receiving store notifications.
func (p *Pipeline) engineLocked() *query.Engine {
	if p.engine == nil {
		p.engine = query.NewEngineWith(p.st, query.Options{Parallelism: p.cfg.QueryParallelism})
		if p.live != nil {
			p.st.AttachIndex(store.Tee(p.engine, p.live.Tap()))
		}
	}
	return p.engine
}

// Live returns the pipeline's standing-query dispatcher, creating it (and
// the query engine, whose index maintenance shares the store hook through
// store.Tee) on first use. Like QueryEngine, request it before ingestion
// starts so standing queries observe every event; subscriptions registered
// mid-ingestion converge as tuples are next touched. The dispatcher is shut
// down by Pipeline.Close.
func (p *Pipeline) Live() *query.Live {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.live == nil {
		engine := p.engineLocked()
		p.live = query.NewLive(p.st, 0)
		p.st.AttachIndex(store.Tee(engine, p.live.Tap()))
	}
	return p.live
}

// Latency returns the accumulated per-stage latency breakdown (Fig. 17).
func (p *Pipeline) Latency() *stats.LatencyBreakdown {
	p.mu.Lock()
	defer p.mu.Unlock()
	merged := stats.NewLatencyBreakdown()
	merged.Merge(p.latency)
	return merged
}

// Result summarises a ProcessRecords run.
type Result struct {
	// TrajectoryIDs lists the identified raw trajectories in processing order.
	TrajectoryIDs []string
	// Records is the number of records after cleaning.
	Records int
	// Stops and Moves count the detected episodes.
	Stops int
	Moves int
}

// ProcessRecords runs the whole pipeline on a raw GPS stream: cleaning,
// trajectory identification, stop/move computation, the three annotation
// layers and storage. Trajectories are annotated concurrently (bounded by
// Config.Workers) and every artefact ends up in the pipeline's store.
func (p *Pipeline) ProcessRecords(records []gps.Record) (*Result, error) {
	if len(records) == 0 {
		return nil, errors.New("semitri: no records")
	}
	sorted := append([]gps.Record(nil), records...)
	gps.SortRecords(sorted)
	cleaned := gps.Clean(sorted, p.cfg.Cleaning)
	p.st.PutRecords(cleaned)
	var trajectories []*gps.RawTrajectory
	if p.cfg.DailySplit {
		trajectories = gps.SplitDaily(cleaned, p.cfg.Segmentation)
	} else {
		trajectories = gps.IdentifyTrajectories(cleaned, p.cfg.Segmentation)
	}
	if len(trajectories) == 0 {
		return nil, errors.New("semitri: no trajectories identified (check segmentation config)")
	}
	result := &Result{Records: len(cleaned)}
	workers := p.cfg.Workers
	if workers < 1 {
		workers = 1
	}
	type trajOutcome struct {
		id    string
		stops int
		moves int
		err   error
	}
	outcomes := make([]trajOutcome, len(trajectories))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, t := range trajectories {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, t *gps.RawTrajectory) {
			defer wg.Done()
			defer func() { <-sem }()
			stops, moves, err := p.processTrajectory(t)
			outcomes[i] = trajOutcome{id: t.ID, stops: stops, moves: moves, err: err}
		}(i, t)
	}
	wg.Wait()
	for _, o := range outcomes {
		if o.err != nil {
			return nil, fmt.Errorf("semitri: trajectory %s: %w", o.id, o.err)
		}
		result.TrajectoryIDs = append(result.TrajectoryIDs, o.id)
		result.Stops += o.stops
		result.Moves += o.moves
	}
	return result, nil
}

// ProcessTrajectory runs episode computation and the annotation layers on a
// single, already identified raw trajectory and stores the results.
func (p *Pipeline) ProcessTrajectory(t *gps.RawTrajectory) error {
	if t == nil || len(t.Records) == 0 {
		return errors.New("semitri: empty trajectory")
	}
	_, _, err := p.processTrajectory(t)
	return err
}

// annCursors bundles the per-object spatial locality caches of the three
// annotation layers (last land-use cell, last road-candidate set, last POI
// neighbourhood). Cursors are single-goroutine: the batch path creates one
// set per trajectory (each trajectory is annotated by one worker), the
// streaming path keeps one set per moving object for the object's lifetime.
type annCursors struct {
	region *region.Cursor
	line   *line.Cursor
	point  *point.Cursor
}

// newCursors returns fresh locality cursors for the configured layers.
func (p *Pipeline) newCursors() *annCursors {
	c := &annCursors{}
	if p.regionAnnotator != nil {
		c.region = p.regionAnnotator.NewCursor()
	}
	if p.lineAnnotator != nil {
		c.line = p.lineAnnotator.NewCursor()
	}
	if p.pointAnnotator != nil {
		c.point = p.pointAnnotator.NewCursor()
	}
	return c
}

func (p *Pipeline) processTrajectory(t *gps.RawTrajectory) (stops, moves int, err error) {
	local := stats.NewLatencyBreakdown()
	cur := p.newCursors()
	defer func() {
		p.mu.Lock()
		p.latency.Merge(local)
		p.mu.Unlock()
	}()
	if err := p.st.PutTrajectory(t); err != nil {
		return 0, 0, err
	}
	// Stop/move computation.
	start := time.Now()
	eps, err := episode.Detect(t, p.cfg.Episode)
	if err != nil {
		return 0, 0, err
	}
	local.Record(StageComputeEpisode, time.Since(start))
	start = time.Now()
	if err := p.st.PutEpisodes(t.ID, eps); err != nil {
		return 0, 0, err
	}
	local.Record(StageStoreEpisode, time.Since(start))
	stopEps := episode.Stops(eps)
	moveEps := episode.Moves(eps)

	// Region + line layers, episode by episode. The streaming path runs the
	// same annotateEpisode on each episode the moment it closes.
	merged := &core.StructuredTrajectory{ID: t.ID, ObjectID: t.ObjectID, Interpretation: InterpretationMerged}
	var regionTuples, lineTuples []*core.EpisodeTuple
	var mergedStops []*core.EpisodeTuple
	for _, ep := range eps {
		ann, err := p.annotateEpisode(t, ep, local, cur)
		if err != nil {
			return 0, 0, err
		}
		merged.Tuples = append(merged.Tuples, ann.merged)
		if ep.Kind == episode.Stop {
			mergedStops = append(mergedStops, ann.merged)
		}
		if ann.region != nil {
			regionTuples = append(regionTuples, ann.region)
		}
		lineTuples = append(lineTuples, ann.line...)
	}

	// Region layer, record level: Tregion with consecutive tuples merged.
	if p.regionAnnotator != nil {
		start = time.Now()
		recordLevel, err := p.regionAnnotator.AnnotateTrajectoryCursor(t, cur.region)
		if err != nil {
			return 0, 0, err
		}
		regionMerged := recordLevel.MergeConsecutive(core.AnnLanduse)
		local.Record(StageLanduseJoin, time.Since(start))
		if err := p.st.PutStructured(regionMerged); err != nil {
			return 0, 0, err
		}
		epInterp := &core.StructuredTrajectory{
			ID: t.ID, ObjectID: t.ObjectID, Interpretation: InterpretationRegionEpisodes, Tuples: regionTuples,
		}
		if err := p.st.PutStructured(epInterp); err != nil {
			return 0, 0, err
		}
	}

	if p.lineAnnotator != nil && len(moveEps) > 0 {
		lineTraj := &core.StructuredTrajectory{
			ID: t.ID, ObjectID: t.ObjectID, Interpretation: InterpretationLine, Tuples: lineTuples,
		}
		start = time.Now()
		if err := p.st.PutStructured(lineTraj); err != nil {
			return 0, 0, err
		}
		local.Record(StageStoreMatch, time.Since(start))
	}

	// Point layer: POI category inference over the trajectory's stop sequence.
	if err := p.annotateStopSequence(t.ID, t.ObjectID, stopEps, mergedStops, local, cur); err != nil {
		return 0, 0, err
	}

	if err := p.st.PutStructured(merged); err != nil {
		return 0, 0, err
	}
	return len(stopEps), len(moveEps), nil
}

// episodeAnnotation bundles the artefacts the region and line layers produce
// for one episode: the episode's tuple in the merged interpretation (with
// layer annotations already merged in), its region-episodes tuple and its
// line tuples (one per matched segment run; moves only).
type episodeAnnotation struct {
	merged *core.EpisodeTuple
	region *core.EpisodeTuple
	line   []*core.EpisodeTuple
}

// annotateEpisode runs the region and line layers on one episode. t may be a
// still-open trajectory as long as its records cover the episode's index
// range (the streaming path calls it with the records seen so far). cur
// carries the caller's per-object locality cursors.
func (p *Pipeline) annotateEpisode(t *gps.RawTrajectory, ep *episode.Episode, local *stats.LatencyBreakdown, cur *annCursors) (episodeAnnotation, error) {
	out := episodeAnnotation{
		merged: &core.EpisodeTuple{Kind: ep.Kind, TimeIn: ep.Start, TimeOut: ep.End, Episode: ep},
	}
	if p.regionAnnotator != nil {
		start := time.Now()
		epTuples, err := p.regionAnnotator.AnnotateEpisodesCursor([]*episode.Episode{ep}, cur.region)
		if err != nil {
			return out, err
		}
		local.Record(StageLanduseJoin, time.Since(start))
		out.region = epTuples[0]
		out.merged.Annotations.Merge(&out.region.Annotations)
		if out.merged.Place == nil {
			out.merged.Place = out.region.Place
		}
	}
	if p.lineAnnotator != nil && ep.Kind == episode.Move {
		start := time.Now()
		tuples, runs, err := p.lineAnnotator.AnnotateMoveCursor(t, ep, cur.line)
		if err != nil {
			return out, err
		}
		local.Record(StageMapMatch, time.Since(start))
		out.line = tuples
		// Episode-level summary: dominant mode and road of the move.
		if len(runs) > 0 {
			out.merged.Annotations.Add(core.Annotation{
				Key: core.AnnTransportMode, Value: string(dominantMode(runs)), Confidence: 0.9, Source: "line"})
			if out.merged.Place == nil {
				if seg := longestRunPlace(runs, tuples); seg != nil {
					out.merged.Place = seg
				}
			}
		}
	}
	return out, nil
}

// pointAnnotateStops runs the point layer (HMM over the trajectory's whole
// stop sequence) and stores the point interpretation, returning the point
// tuples (parallel to stopEps; nil when the layer is disabled or there are
// no stops). The HMM decodes the full sequence jointly, which is why both
// the batch and the streaming path run it once per trajectory rather than
// per episode.
func (p *Pipeline) pointAnnotateStops(id, objectID string, stopEps []*episode.Episode, local *stats.LatencyBreakdown, cur *annCursors) ([]*core.EpisodeTuple, error) {
	if p.pointAnnotator == nil || len(stopEps) == 0 {
		return nil, nil
	}
	start := time.Now()
	tuples, _, err := p.pointAnnotator.AnnotateStopsCursor(stopEps, cur.point)
	if err != nil {
		return nil, err
	}
	local.Record(StagePointAnnotate, time.Since(start))
	pointTraj := &core.StructuredTrajectory{
		ID: id, ObjectID: objectID, Interpretation: InterpretationPoint, Tuples: tuples,
	}
	if err := p.st.PutStructured(pointTraj); err != nil {
		return nil, err
	}
	return tuples, nil
}

// annotateStopSequence is the batch path's wrapper over pointAnnotateStops:
// the merged tuples are still local to the worker at this point, so the
// inferred categories merge straight into them before the trajectory is
// stored. mergedStops must parallel stopEps. (The streaming path stores
// merged tuples as episodes close, long before the point layer runs, so it
// merges through Store.MergeTupleAnnotations instead — see closeTrajectory.)
func (p *Pipeline) annotateStopSequence(id, objectID string, stopEps []*episode.Episode, mergedStops []*core.EpisodeTuple, local *stats.LatencyBreakdown, cur *annCursors) error {
	tuples, err := p.pointAnnotateStops(id, objectID, stopEps, local, cur)
	if err != nil || tuples == nil {
		return err
	}
	for i := range stopEps {
		mergedStops[i].Annotations.Merge(&tuples[i].Annotations)
		if tuples[i].Place != nil {
			mergedStops[i].Place = tuples[i].Place
		}
	}
	return nil
}

// dominantMode returns the transportation mode covering the most records
// across the runs of one move episode.
func dominantMode(runs []line.SegmentRun) line.Mode {
	weights := map[line.Mode]int{}
	for _, r := range runs {
		weights[r.Mode] += r.EndIdx - r.StartIdx + 1
	}
	modes := make([]line.Mode, 0, len(weights))
	for m := range weights {
		modes = append(modes, m)
	}
	sort.Slice(modes, func(i, j int) bool {
		if weights[modes[i]] != weights[modes[j]] {
			return weights[modes[i]] > weights[modes[j]]
		}
		return modes[i] < modes[j]
	})
	if len(modes) == 0 {
		return ""
	}
	return modes[0]
}

// longestRunPlace returns the place of the tuple whose run covers the most
// records, used as the representative road of a move episode.
func longestRunPlace(runs []line.SegmentRun, tuples []*core.EpisodeTuple) *core.Place {
	best := -1
	bestLen := -1
	for i, r := range runs {
		if l := r.EndIdx - r.StartIdx; l > bestLen {
			bestLen = l
			best = i
		}
	}
	if best < 0 || best >= len(tuples) {
		return nil
	}
	return tuples[best].Place
}
