package semitri

import (
	"sync"
	"sync/atomic"

	"semitri/internal/gps"
	"semitri/internal/store"
)

// This file implements the concurrent fan-in drivers over StreamProcessor:
// they spread a single interleaved record feed across worker goroutines,
// sharding by object id so each object's records keep arriving in order (the
// invariant Add's parity guarantee depends on) while different objects'
// records are cleaned, segmented and annotated in parallel.

// workerFor routes an object id to one of n workers, with the same hash the
// store stripes its tables by.
func workerFor(objectID string, n int) int {
	return int(store.KeyHash(objectID) % uint32(n))
}

// FanIn drains the records channel through Add using `workers` goroutines.
// Records are sharded by object id: one object's records are always fed by
// the same worker, preserving their order, while different objects proceed
// in parallel. FanIn returns when the channel is closed and every routed
// record has been ingested — or on the first Add error, without waiting for
// the channel to close. On the error path a background goroutine keeps
// draining the channel so a producer blocked on a send is never stuck; the
// producer should notice the early return, stop sending and close the
// channel, at which point the drainer exits.
//
// onEvents, if non-nil, is called with each Add call's events from the
// worker goroutine that produced them; it must be safe for concurrent use.
// FanIn does not Close the processor — call Close after it returns.
func (sp *StreamProcessor) FanIn(records <-chan gps.Record, workers int, onEvents func([]StreamEvent)) error {
	if workers < 1 {
		workers = 1
	}
	if workers == 1 {
		// No fan-out: ingest inline, skipping the channel hop per record.
		for r := range records {
			events, err := sp.Add(r)
			if len(events) > 0 && onEvents != nil {
				onEvents(events)
			}
			if err != nil {
				go drain(records)
				return err
			}
		}
		return nil
	}
	lanes := make([]chan gps.Record, workers)
	errs := make([]error, workers)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for i := range lanes {
		lanes[i] = make(chan gps.Record, 128)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := range lanes[i] {
				events, err := sp.Add(r)
				if len(events) > 0 && onEvents != nil {
					onEvents(events)
				}
				if err != nil {
					errs[i] = err
					failed.Store(true)
					// Keep draining so the router never blocks on this lane.
					drain(lanes[i])
					return
				}
			}
		}(i)
	}
	routed := true
	for r := range records {
		if failed.Load() {
			routed = false
			break
		}
		lanes[workerFor(r.ObjectID, workers)] <- r
	}
	if !routed {
		go drain(records)
	}
	for _, lane := range lanes {
		close(lane)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// drain consumes a record channel until it is closed.
func drain(records <-chan gps.Record) {
	for range records {
	}
}

// AddBatchConcurrent ingests a micro-batch through `workers` concurrent
// Add pipelines, sharding by object id (per-object record order is
// preserved; see FanIn). It returns the triggered events; their order across
// objects is unspecified, as episode closes race between workers. With
// workers <= 1 it behaves like AddBatch.
func (sp *StreamProcessor) AddBatchConcurrent(records []gps.Record, workers int) ([]StreamEvent, error) {
	if workers <= 1 {
		return sp.AddBatch(records)
	}
	feed := make(chan gps.Record, 128)
	var mu sync.Mutex
	var events []StreamEvent
	collect := func(evs []StreamEvent) {
		mu.Lock()
		events = append(events, evs...)
		mu.Unlock()
	}
	done := make(chan error, 1)
	go func() {
		done <- sp.FanIn(feed, workers, collect)
	}()
	for _, r := range records {
		feed <- r
	}
	close(feed)
	err := <-done
	return events, err
}
