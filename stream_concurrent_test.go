package semitri_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"semitri"
	"semitri/internal/gps"
)

// objectOrder partitions records by object, preserving each object's order.
func objectOrder(records []gps.Record) map[string][]gps.Record {
	byObject := map[string][]gps.Record{}
	for _, r := range records {
		byObject[r.ObjectID] = append(byObject[r.ObjectID], r)
	}
	return byObject
}

// TestBatchStreamParityConcurrent is the concurrent variant of
// TestBatchStreamParity: records of 8 objects are interleaved from multiple
// goroutines (one per object, so per-object order is preserved while objects
// race freely through clean → segment → episode → annotate → append), and
// the resulting store must still match the batch pipeline tuple for tuple.
// Run under -race this is the end-to-end data-race test for the per-object
// streaming engine and the lock-striped store.
func TestBatchStreamParityConcurrent(t *testing.T) {
	city := newTestCity(t, 1, 3000)
	records := peopleRecords(t, city, 8, 1, 5)
	byObject := objectOrder(records)
	if len(byObject) < 8 {
		t.Fatalf("workload produced %d objects, want >= 8", len(byObject))
	}

	batch := newTestPipeline(t, city, semitri.DefaultConfig())
	batchResult, err := batch.ProcessRecords(records)
	if err != nil {
		t.Fatal(err)
	}

	stream := newTestPipeline(t, city, semitri.DefaultConfig())
	sp := stream.NewStream()
	var episodeEvents atomic.Int64
	var wg sync.WaitGroup
	for _, recs := range byObject {
		wg.Add(1)
		go func(recs []gps.Record) {
			defer wg.Done()
			for _, r := range recs {
				events, err := sp.Add(r)
				if err != nil {
					t.Error(err)
					return
				}
				for _, ev := range events {
					if ev.Episode != nil {
						episodeEvents.Add(1)
					}
				}
			}
		}(recs)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	streamResult, err := sp.Close()
	if err != nil {
		t.Fatal(err)
	}
	if episodeEvents.Load() == 0 {
		t.Fatal("concurrent stream never emitted an episode event")
	}

	if batchResult.Records != streamResult.Records {
		t.Fatalf("cleaned records: batch %d, stream %d", batchResult.Records, streamResult.Records)
	}
	if batchResult.Stops != streamResult.Stops || batchResult.Moves != streamResult.Moves {
		t.Fatalf("episode counts: batch %d/%d, stream %d/%d",
			batchResult.Stops, batchResult.Moves, streamResult.Stops, streamResult.Moves)
	}
	if len(batchResult.TrajectoryIDs) != len(streamResult.TrajectoryIDs) {
		t.Fatalf("trajectory count: batch %d, stream %d",
			len(batchResult.TrajectoryIDs), len(streamResult.TrajectoryIDs))
	}
	assertStoreParity(t, batchResult.TrajectoryIDs, batch.Store(), stream.Store())
}

// TestAddBatchConcurrentParity drives the same workload through the
// AddBatchConcurrent fan-in driver (which shards the interleaved feed by
// object across 4 workers) and checks store parity with the batch pipeline.
func TestAddBatchConcurrentParity(t *testing.T) {
	city := newTestCity(t, 4, 3000)
	records := peopleRecords(t, city, 8, 1, 7)

	batch := newTestPipeline(t, city, semitri.DefaultConfig())
	batchResult, err := batch.ProcessRecords(records)
	if err != nil {
		t.Fatal(err)
	}

	stream := newTestPipeline(t, city, semitri.DefaultConfig())
	sp := stream.NewStream()
	events, err := sp.AddBatchConcurrent(records, 4)
	if err != nil {
		t.Fatal(err)
	}
	episodeEvents := 0
	for _, ev := range events {
		if ev.Episode != nil {
			episodeEvents++
			if ev.Tuple == nil {
				t.Fatal("episode event without merged tuple")
			}
		}
	}
	if episodeEvents == 0 {
		t.Fatal("fan-in never emitted an episode event")
	}
	streamResult, err := sp.Close()
	if err != nil {
		t.Fatal(err)
	}
	if batchResult.Stops != streamResult.Stops || batchResult.Moves != streamResult.Moves ||
		len(batchResult.TrajectoryIDs) != len(streamResult.TrajectoryIDs) {
		t.Fatalf("fan-in parity: batch %d/%d over %d trajectories, stream %d/%d over %d",
			batchResult.Stops, batchResult.Moves, len(batchResult.TrajectoryIDs),
			streamResult.Stops, streamResult.Moves, len(streamResult.TrajectoryIDs))
	}
	assertStoreParity(t, batchResult.TrajectoryIDs, batch.Store(), stream.Store())
}

// TestConcurrentAddAfterClose asserts the close handshake: Adds racing with
// Close either complete fully or fail with the closed error — they must
// never ingest into a drained object.
func TestConcurrentAddAfterClose(t *testing.T) {
	city := newTestCity(t, 2, 2000)
	records := peopleRecords(t, city, 2, 1, 9)
	p := newTestPipeline(t, city, semitri.DefaultConfig())
	sp := p.NewStream()
	if _, err := sp.AddBatch(records); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var closedErrs atomic.Int64
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := sp.Add(records[0])
			if err != nil {
				closedErrs.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := closedErrs.Load(); got != 4 {
		t.Fatalf("%d of 4 post-Close Adds failed, want all", got)
	}
	if _, err := sp.Close(); err == nil {
		t.Fatal("second Close should fail")
	}
}
