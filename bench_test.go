// Package semitri_test hosts the benchmark harness that regenerates every
// table and figure of the paper's evaluation (§5). Each benchmark runs the
// corresponding experiment from internal/experiments at a reduced scale and
// reports wall-clock cost per regeneration; `go test -bench=. -benchmem`
// therefore both exercises the full pipeline and produces the rows recorded
// in EXPERIMENTS.md (printed once per benchmark under -v).
package semitri_test

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"testing"

	"semitri"
	"semitri/internal/experiments"
	"semitri/internal/gps"
	"semitri/internal/workload"
)

// benchEnv is shared across benchmarks; building the synthetic city is
// expensive and identical for every experiment.
var (
	benchEnvOnce sync.Once
	benchEnvVal  *experiments.Env
	benchEnvErr  error
)

func benchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		benchEnvVal, benchEnvErr = experiments.NewEnv(2026, 0.25)
	})
	if benchEnvErr != nil {
		b.Fatal(benchEnvErr)
	}
	return benchEnvVal
}

// runExperiment benchmarks one experiment id and logs its table once.
func runExperiment(b *testing.B, id string) {
	env := benchEnv(b)
	fn := experiments.Registry[id]
	if fn == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	var logged bool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl, err := fn(env)
		if err != nil {
			b.Fatal(err)
		}
		if !logged {
			b.Log("\n" + tbl.Format())
			logged = true
		}
	}
}

// BenchmarkTable1VehicleDatasets regenerates Table 1 (vehicle dataset inventory).
func BenchmarkTable1VehicleDatasets(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2PeopleDatasets regenerates Table 2 (people dataset inventory).
func BenchmarkTable2PeopleDatasets(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkFig9LanduseDistribution regenerates Fig. 9 (taxi land-use shares).
func BenchmarkFig9LanduseDistribution(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10MapMatchingSensitivity regenerates Fig. 10 (accuracy vs R, sigma).
func BenchmarkFig10MapMatchingSensitivity(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11StopCategories regenerates Fig. 11 (POI/stop/trajectory categories).
func BenchmarkFig11StopCategories(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFig12EpisodeDistribution regenerates Fig. 12 (log-log episode sizes).
func BenchmarkFig12EpisodeDistribution(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkFig13PerUserCounts regenerates Fig. 13 (per-user counts).
func BenchmarkFig13PerUserCounts(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkFig14PerUserLanduse regenerates Fig. 14 (per-user land-use profiles).
func BenchmarkFig14PerUserLanduse(b *testing.B) { runExperiment(b, "fig14") }

// BenchmarkFig15TransportModes regenerates Figs. 15/16 (commute mode annotation).
func BenchmarkFig15TransportModes(b *testing.B) { runExperiment(b, "fig15") }

// BenchmarkFig17LatencyBreakdown regenerates Fig. 17 (per-stage latency).
func BenchmarkFig17LatencyBreakdown(b *testing.B) { runExperiment(b, "fig17") }

// BenchmarkCompressionRatio regenerates the §5.2 storage-compression claim.
func BenchmarkCompressionRatio(b *testing.B) { runExperiment(b, "compression") }

// BenchmarkAblationMapMatching regenerates ablation A1 (global vs nearest matching).
func BenchmarkAblationMapMatching(b *testing.B) { runExperiment(b, "ablation-mapmatch") }

// BenchmarkAblationHMMvsNearest regenerates ablation A2 (HMM vs nearest-POI).
func BenchmarkAblationHMMvsNearest(b *testing.B) { runExperiment(b, "ablation-hmm") }

// BenchmarkPipelinePeopleDay measures the end-to-end pipeline cost for one
// person-day of data (the unit the paper's Fig. 17 latencies refer to).
func BenchmarkPipelinePeopleDay(b *testing.B) {
	env := benchEnv(b)
	ds, err := workload.GeneratePeople(env.City, workload.DefaultPeopleConfig(1, 1, 99))
	if err != nil {
		b.Fatal(err)
	}
	records := ds.Records()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := semitri.New(semitri.Sources{
			Landuse: env.City.Landuse, Roads: env.City.Roads, POIs: env.City.POIs,
		}, semitri.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.ProcessRecords(records); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamPeopleDay measures the streaming ingestion path on one
// person-day of data fed record by record, reporting amortised per-record
// latency (ns/record) — the figure that matters for online serving.
func BenchmarkStreamPeopleDay(b *testing.B) {
	env := benchEnv(b)
	ds, err := workload.GeneratePeople(env.City, workload.DefaultPeopleConfig(1, 1, 99))
	if err != nil {
		b.Fatal(err)
	}
	records := ds.Records()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Pipeline construction (spatial index building) is not part of the
		// per-record serving cost; keep it off the clock.
		b.StopTimer()
		p, err := semitri.New(semitri.Sources{
			Landuse: env.City.Landuse, Roads: env.City.Roads, POIs: env.City.POIs,
		}, semitri.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		sp := p.NewStream()
		b.StartTimer()
		for _, r := range records {
			if _, err := sp.Add(r); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := sp.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perRecord := float64(b.Elapsed().Nanoseconds()) / float64(b.N*len(records))
	b.ReportMetric(perRecord, "ns/record")
}

// BenchmarkStreamPeopleDayDurable is BenchmarkStreamPeopleDay with the
// write-ahead log enabled under the default group-commit policy: the same
// person-day streamed record by record, but every store mutation is framed,
// CRC'd and batch-fsynced to a WAL. The per-record delta against
// BenchmarkStreamPeopleDay is the durability overhead (the acceptance
// budget is ~25%; the `durability` experiment row reports the same figure
// on a larger workload).
func BenchmarkStreamPeopleDayDurable(b *testing.B) {
	env := benchEnv(b)
	ds, err := workload.GeneratePeople(env.City, workload.DefaultPeopleConfig(1, 1, 99))
	if err != nil {
		b.Fatal(err)
	}
	records := ds.Records()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir, err := os.MkdirTemp("", "semitri-bench-wal-*")
		if err != nil {
			b.Fatal(err)
		}
		cfg := semitri.DefaultConfig()
		cfg.Durability = semitri.Durability{Dir: dir}
		p, err := semitri.New(semitri.Sources{
			Landuse: env.City.Landuse, Roads: env.City.Roads, POIs: env.City.POIs,
		}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		sp := p.NewStream()
		b.StartTimer()
		for _, r := range records {
			if _, err := sp.Add(r); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := sp.Close(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := p.Close(); err != nil {
			b.Fatal(err)
		}
		os.RemoveAll(dir)
		b.StartTimer()
	}
	b.StopTimer()
	perRecord := float64(b.Elapsed().Nanoseconds()) / float64(b.N*len(records))
	b.ReportMetric(perRecord, "ns/record")
}

// BenchmarkDurabilityOverhead regenerates the `durability` experiment row
// (WAL-on vs WAL-off ns/record plus recovery timings), so the durability
// subsystem runs end to end — ingest, replay, checkpoint, snapshot
// recovery — on every bench pass.
func BenchmarkDurabilityOverhead(b *testing.B) { runExperiment(b, "durability") }

// BenchmarkStreamConcurrentObjects measures multi-object streaming
// ingestion: 8 objects' day-long feeds are pushed through one
// StreamProcessor from a varying number of goroutines (objects distributed
// round-robin, so per-object order is preserved). With the per-object
// streaming engine and the lock-striped store, ns/record should drop as
// goroutines are added instead of flatlining on a global lock.
func BenchmarkStreamConcurrentObjects(b *testing.B) {
	env := benchEnv(b)
	const objects = 8
	ds, err := workload.GeneratePeople(env.City, workload.DefaultPeopleConfig(objects, 1, 123))
	if err != nil {
		b.Fatal(err)
	}
	records := ds.Records()
	perObject := map[string][]gps.Record{}
	for _, r := range records {
		perObject[r.ObjectID] = append(perObject[r.ObjectID], r)
	}
	feeds := make([][]gps.Record, 0, len(perObject))
	ids := make([]string, 0, len(perObject))
	for id := range perObject {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		feeds = append(feeds, perObject[id])
	}
	for _, goroutines := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("goroutines=%d", goroutines), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				p, err := semitri.New(semitri.Sources{
					Landuse: env.City.Landuse, Roads: env.City.Roads, POIs: env.City.POIs,
				}, semitri.DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				sp := p.NewStream()
				b.StartTimer()
				var wg sync.WaitGroup
				for w := 0; w < goroutines; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						// Round-robin: worker w feeds objects w, w+G, ...
						for f := w; f < len(feeds); f += goroutines {
							for _, r := range feeds[f] {
								if _, err := sp.Add(r); err != nil {
									b.Error(err)
									return
								}
							}
						}
					}(w)
				}
				wg.Wait()
				if _, err := sp.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			perRecord := float64(b.Elapsed().Nanoseconds()) / float64(b.N*len(records))
			b.ReportMetric(perRecord, "ns/record")
		})
	}
}

// BenchmarkPipelineTaxiTrip measures the end-to-end pipeline cost for a
// single taxi's day of trips with the vehicle configuration.
func BenchmarkPipelineTaxiTrip(b *testing.B) {
	env := benchEnv(b)
	cfg := workload.DefaultTaxiConfig(7)
	cfg.NumVehicles = 1
	cfg.TripsPerVehicle = 4
	ds, err := workload.GenerateVehicles(env.City, cfg)
	if err != nil {
		b.Fatal(err)
	}
	records := ds.Records()
	pipelineCfg := semitri.VehicleConfig()
	pipelineCfg.DailySplit = false
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := semitri.New(semitri.Sources{
			Landuse: env.City.Landuse, Roads: env.City.Roads, POIs: env.City.POIs,
		}, pipelineCfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.ProcessRecords(records); err != nil {
			b.Fatal(err)
		}
	}
}
