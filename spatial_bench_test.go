package semitri_test

import (
	"sort"
	"testing"

	"semitri/internal/episode"
	"semitri/internal/geo"
	"semitri/internal/gps"
	"semitri/internal/line"
	"semitri/internal/poi"
	"semitri/internal/point"
	"semitri/internal/region"
	"semitri/internal/spatial"
	"semitri/internal/workload"
)

// The spatial-layer micro-benchmarks isolate the per-record candidate
// lookups the three annotation layers issue against the shared spatial
// indexes (internal/spatial), each with the per-object locality cursor on
// and off. They run over a real person-day query stream so cursor hit rates
// match what the pipeline sees. `-bench 'Lookup|Candidates'` runs them all;
// the "lookup" experiment in cmd/semitri-bench prints the combined
// ns/record number.

// benchQueries generates one person-day of cleaned GPS positions and the
// day's stop centres.
func benchQueries(b *testing.B) (positions []geo.Point, stops []geo.Point) {
	b.Helper()
	env := benchEnv(b)
	ds, err := workload.GeneratePeople(env.City, workload.DefaultPeopleConfig(1, 1, 99))
	if err != nil {
		b.Fatal(err)
	}
	records := append([]gps.Record(nil), ds.Records()...)
	gps.SortRecords(records)
	records = gps.Clean(records, gps.DefaultCleaningConfig())
	for _, r := range records {
		positions = append(positions, r.Position)
	}
	for _, t := range gps.SplitDaily(records, gps.DefaultSegmentationConfig()) {
		eps, err := episode.Detect(t, episode.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, ep := range eps {
			if ep.Kind == episode.Stop {
				stops = append(stops, ep.Center)
			}
		}
	}
	if len(positions) == 0 {
		b.Fatal("empty query stream")
	}
	return positions, stops
}

// BenchmarkRegionLookup measures the region layer's per-record land-use
// cell lookup (Alg. 1's spatial join per GPS record).
func BenchmarkRegionLookup(b *testing.B) {
	env := benchEnv(b)
	positions, _ := benchQueries(b)
	a, err := region.NewAnnotator(env.City.Landuse)
	if err != nil {
		b.Fatal(err)
	}
	t := &gps.RawTrajectory{ID: "bench", ObjectID: "bench"}
	for _, p := range positions {
		t.Records = append(t.Records, gps.Record{ObjectID: "bench", Position: p})
	}
	run := func(b *testing.B, cur *region.Cursor) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := a.AnnotateTrajectoryCursor(t, cur); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(positions)), "ns/record")
	}
	b.Run("uncached", func(b *testing.B) { run(b, nil) })
	b.Run("cached", func(b *testing.B) { run(b, a.NewCursor()) })
}

// BenchmarkLineCandidates measures the line layer's per-record
// candidate-segment query (candidateSegs(Q) of Alg. 2).
func BenchmarkLineCandidates(b *testing.B) {
	env := benchEnv(b)
	positions, _ := benchQueries(b)
	a, err := line.NewAnnotator(env.City.Roads, line.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	radius := a.Config().CandidateRadius
	run := func(b *testing.B, cur *line.Cursor) {
		b.ReportAllocs()
		n := 0
		for i := 0; i < b.N; i++ {
			for _, p := range positions {
				n += len(a.Candidates(p, radius, cur))
			}
		}
		if n < 0 {
			b.Fatal("impossible")
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(positions)), "ns/record")
	}
	b.Run("uncached", func(b *testing.B) { run(b, nil) })
	b.Run("cached", func(b *testing.B) { run(b, a.NewCursor()) })
}

// BenchmarkPointCandidates measures the point layer's HMM candidate
// generation — the POIs inside the influence neighbourhood of a query point
// (Lemma 1's observation model) — over the row-major cell sweep of the
// emission discretization (Figs. 7-8). The sweep is the point layer's
// dominant spatial cost (one query per grid cell at every annotator
// construction) and steps one cell at a time, the locality the cursor
// exploits; per-stop queries at run time are answered from the precomputed
// cells and rarely touch the index at all.
func BenchmarkPointCandidates(b *testing.B) {
	env := benchEnv(b)
	a, err := point.NewAnnotator(env.City.POIs, point.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	g := env.City.POIs.Grid()
	queries := make([]geo.Point, 0, g.NumCells())
	for id := 0; id < g.NumCells(); id++ {
		queries = append(queries, g.CellRectByID(id).Center())
	}
	run := func(b *testing.B, cur *point.Cursor) {
		b.ReportAllocs()
		n := 0
		for i := 0; i < b.N; i++ {
			for _, p := range queries {
				n += len(a.Candidates(p, cur))
			}
		}
		if n < 0 {
			b.Fatal("impossible")
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(queries)), "ns/query")
	}
	b.Run("uncached", func(b *testing.B) { run(b, nil) })
	b.Run("cached", func(b *testing.B) { run(b, a.NewCursor()) })
	// The pre-refactor lookup: buckets fixed to the 100 m emission cells
	// (instead of density-sized by the heuristic) and a sort on every query.
	b.Run("prerefactor-100m-grid", func(b *testing.B) {
		items := make([]spatial.Item, 0, env.City.POIs.Len())
		for _, p := range env.City.POIs.All() {
			items = append(items, spatial.Item{Rect: geo.Rect{Min: p.Position, Max: p.Position}, Value: p})
		}
		old := spatial.NewGridIndex(g, items)
		radius := float64(point.DefaultConfig().NeighborhoodCells) * g.CellSize
		b.ReportAllocs()
		b.ResetTimer()
		n := 0
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				cands := spatial.WithinDistance(old, q, radius)
				sort.Slice(cands, func(x, y int) bool {
					return cands[x].Value.(*poi.POI).ID < cands[y].Value.(*poi.POI).ID
				})
				n += len(cands)
			}
		}
		if n < 0 {
			b.Fatal("impossible")
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(queries)), "ns/query")
	})
}

// BenchmarkLookupBreakdown regenerates the "lookup" experiment table: the
// combined per-record spatial cost, cached vs uncached.
func BenchmarkLookupBreakdown(b *testing.B) { runExperiment(b, "lookup") }
