// Command semitri runs the full SeMiTri annotation pipeline on a GPS dataset
// (a CSV produced by cmd/semitri-gen or in the same "object,x,y,time"
// format) against a synthetic city's 3rd-party sources, and prints the
// resulting structured semantic trajectories. It can also persist the
// semantic trajectory store as JSON.
//
// Usage:
//
//	semitri -in people.csv [-profile people|vehicle] [-seed 1] [-pois 8000]
//	        [-store out/store.json] [-max-trajectories 10] [-summary]
//	        [-workers 4] [-stream] [-stream-workers 4] [-progress 5000]
//	        [-data-dir dir] [-trace "episodes kind=stop"]
//	        [-log-level info] [-log-format text|json]
//
// With -trace a relational statement (the internal/query/lang grammar) runs
// against the freshly ingested store and its EXPLAIN ANALYZE trace is
// printed: the chosen access path, per-stage wall times, rows in/out,
// candidates examined and any segment-prune decisions.
//
// With -data-dir the run is durable: every store mutation is written ahead
// to a group-committed log in the directory while the pipeline runs, and a
// final checkpoint (snapshot + log truncation) is written on exit. The
// resulting directory can be served directly with
// `semitri-serve -data-dir dir` — including after a mid-run crash, which
// recovers everything up to the last group commit. Use a fresh directory
// per dataset: re-ingesting input into an already-populated directory
// appends duplicate records.
//
// With -in omitted the command generates a small demonstration dataset on
// the fly so it can be run with no arguments.
//
// With -stream the input is ingested through the online pipeline instead of
// the batch one: the CSV is read line by line (never fully in memory), each
// record goes through semitri.StreamProcessor.Add, episodes are annotated
// as they close, and ingestion progress is reported every -progress records.
// For input whose records are time-ordered per object (what semitri-gen
// writes, and what a live feed delivers) the resulting store is identical to
// a batch run on the same input; records arriving out of order are dropped
// by the streaming cleaner, where batch mode would sort them first.
//
// -workers bounds the trajectories annotated concurrently in batch mode;
// -stream-workers fans the streaming feed across that many concurrent
// ingestion goroutines, sharded by object id so each object's records keep
// their order while different objects are annotated in parallel.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sync/atomic"
	"time"

	"semitri"
	"semitri/internal/analytics"
	"semitri/internal/core"
	"semitri/internal/geojson"
	"semitri/internal/gps"
	"semitri/internal/obs"
	"semitri/internal/query/lang"
	"semitri/internal/workload"
)

func main() {
	in := flag.String("in", "", "input CSV of GPS records (object,x,y,time); generated when empty")
	profile := flag.String("profile", "people", "annotation profile: people | vehicle")
	seed := flag.Int64("seed", 1, "seed for the synthetic city sources")
	pois := flag.Int("pois", 8000, "number of POIs in the synthetic city")
	storePath := flag.String("store", "", "write the semantic trajectory store as JSON to this path")
	geojsonPath := flag.String("geojson", "", "write the merged semantic trajectories as a GeoJSON FeatureCollection to this path")
	maxTrajectories := flag.Int("max-trajectories", 5, "maximum number of trajectories to print (0 = all)")
	summary := flag.Bool("summary", false, "print aggregate analytics instead of per-trajectory output")
	workers := flag.Int("workers", 0, "trajectories annotated concurrently in batch mode (0 = profile default)")
	stream := flag.Bool("stream", false, "ingest through the online streaming pipeline instead of the batch one")
	streamWorkers := flag.Int("stream-workers", 1, "with -stream, concurrent ingestion goroutines (records sharded by object)")
	progress := flag.Int("progress", 5000, "with -stream, report ingestion progress every N records")
	dataDir := flag.String("data-dir", "", "durability directory (WAL + final checkpoint); use a fresh directory per dataset")
	traceQ := flag.String("trace", "", "relational statement to run after ingestion with its EXPLAIN ANALYZE trace printed")
	logLevel := flag.String("log-level", "info", "log level: debug | info | warn | error")
	logFormat := flag.String("log-format", "text", "log format: text | json")
	flag.Parse()

	if _, err := obs.InitLogger(os.Stderr, *logLevel, *logFormat); err != nil {
		fail(err)
	}
	logger := obs.Component("semitri")

	city, err := workload.NewCity(workload.DefaultCityConfig(*seed, *pois))
	if err != nil {
		fail(err)
	}

	cfg := semitri.DefaultConfig()
	if *profile == "vehicle" {
		cfg = semitri.VehicleConfig()
		cfg.DailySplit = false
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}
	if *dataDir != "" {
		cfg.Durability = semitri.Durability{Dir: *dataDir}
	}
	pipeline, err := semitri.New(semitri.Sources{
		Landuse: city.Landuse, Roads: city.Roads, POIs: city.POIs,
	}, cfg)
	if err != nil {
		fail(err)
	}
	if pipeline.Durable() && pipeline.Store().RecordCount() > 0 {
		logger.Warn("data dir already holds records; this run appends to the recovered store",
			"dir", *dataDir, "records", pipeline.Store().RecordCount())
	}

	start := time.Now()
	var result *semitri.Result
	if *stream {
		result = runStream(pipeline, *in, city, *seed, *progress, *streamWorkers)
	} else {
		var records []gps.Record
		if *in == "" {
			records = demoRecords(city, *seed)
		} else {
			f, err := os.Open(*in)
			if err != nil {
				fail(err)
			}
			records, err = gps.ReadCSV(f)
			f.Close()
			if err != nil {
				fail(err)
			}
		}
		result, err = pipeline.ProcessRecords(records)
		if err != nil {
			fail(err)
		}
	}
	fmt.Printf("processed %d records into %d trajectories (%d stops, %d moves) in %v\n\n",
		result.Records, len(result.TrajectoryIDs), result.Stops, result.Moves,
		time.Since(start).Round(time.Millisecond))

	st := pipeline.Store()
	if *summary {
		fmt.Println("stop activity distribution (share of stop time):")
		fmt.Println("  " + analytics.AnnotationDistribution(st, semitri.InterpretationMerged, core.AnnPOICategory).String())
		fmt.Println("transport mode distribution (share of move time):")
		fmt.Println("  " + analytics.ModeDistribution(st, semitri.InterpretationLine).String())
		fmt.Println("land-use distribution (record-weighted):")
		fmt.Println("  " + analytics.LanduseDistribution(st, nil, nil).String())
		c := analytics.Compression(st)
		fmt.Printf("region-level compression: %d records -> %d distinct cells (%.1f%% saving)\n",
			c.GPSRecords, c.DistinctCells, c.Ratio*100)
	} else {
		limit := *maxTrajectories
		if limit <= 0 || limit > len(result.TrajectoryIDs) {
			limit = len(result.TrajectoryIDs)
		}
		for _, id := range result.TrajectoryIDs[:limit] {
			merged, ok := st.Structured(id, semitri.InterpretationMerged)
			if !ok {
				continue
			}
			fmt.Printf("%s\n  %s\n", id, merged.String())
			if cat, ok := merged.Category(core.AnnPOICategory); ok {
				fmt.Printf("  trajectory category (Eq. 8): %s\n", cat)
			}
			fmt.Println()
		}
	}
	if *storePath != "" {
		if err := st.Save(*storePath); err != nil {
			fail(err)
		}
		fmt.Printf("semantic trajectory store written to %s\n", *storePath)
	}
	if *geojsonPath != "" {
		fc := geojson.NewFeatureCollection()
		for _, id := range result.TrajectoryIDs {
			if merged, ok := st.Structured(id, semitri.InterpretationMerged); ok {
				for _, f := range geojson.Structured(merged, nil).Features {
					fc.Add(f)
				}
			}
		}
		data, err := fc.MarshalIndent()
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*geojsonPath, data, 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("GeoJSON with %d features written to %s\n", fc.Len(), *geojsonPath)
	}
	// EXPLAIN ANALYZE: run the -trace statement against the ingested store
	// and print its execution trace.
	if *traceQ != "" {
		res, tr, err := lang.RunTraced(pipeline.QueryEngine(), *traceQ)
		if err != nil {
			fail(err)
		}
		rows := len(res.Matches)
		if res.Pairs != nil {
			rows = len(res.Pairs)
		}
		if res.Groups != nil {
			rows = len(res.Groups)
		}
		data, err := json.MarshalIndent(tr, "", "  ")
		if err != nil {
			fail(err)
		}
		fmt.Printf("trace for %q (%d rows, plan %s):\n%s\n\n", *traceQ, rows, res.Plan, data)
	}
	// Latency breakdown mirrors Fig. 17.
	lat := pipeline.Latency()
	fmt.Println("latency per trajectory (avg):")
	for _, stage := range lat.Stages() {
		fmt.Printf("  %-22s %8.3f ms over %d trajectories\n",
			stage, float64(lat.Average(stage).Microseconds())/1000.0, lat.Count(stage))
	}
	// Durable runs end with a checkpoint, leaving the data dir ready for
	// `semitri-serve -data-dir`.
	if err := pipeline.Close(); err != nil {
		fail(err)
	}
	if pipeline.Durable() {
		fmt.Printf("durable store checkpointed in %s (serve it with: semitri-serve -data-dir %s)\n", *dataDir, *dataDir)
	}
}

// runStream ingests the input through the online pipeline, reading the CSV
// line by line, and reports progress (records, episodes, trajectories and
// per-record throughput) every `every` records. With workers > 1 the feed is
// fanned across that many concurrent ingestion goroutines, sharded by object
// id (per-object record order is preserved).
func runStream(pipeline *semitri.Pipeline, in string, city *workload.City, seed int64, every, workers int) *semitri.Result {
	sp := pipeline.NewStream()
	var ingested, episodes, trajectories atomic.Int64
	startedAt := time.Now()
	logger := obs.Component("stream")
	report := func() {
		elapsed := time.Since(startedAt)
		rate := float64(ingested.Load()) / elapsed.Seconds()
		logger.Info("ingest progress",
			"records", ingested.Load(), "episodes", episodes.Load(),
			"trajectories", trajectories.Load(), "rec_per_s", int64(rate))
	}
	onEvents := func(events []semitri.StreamEvent) {
		for _, ev := range events {
			if ev.Episode != nil {
				episodes.Add(1)
			}
			if ev.TrajectoryClosed {
				trajectories.Add(1)
			}
		}
	}
	feed := make(chan gps.Record, 256)
	done := make(chan struct{})
	var fanErr error
	go func() {
		fanErr = sp.FanIn(feed, workers, onEvents)
		close(done)
	}()
	// offer reports false when ingestion failed: FanIn returns early on the
	// first Add error, so the producer stops reading the input instead of
	// pumping (and progress-reporting) records nobody will process.
	offer := func(r gps.Record) bool {
		select {
		case feed <- r:
		case <-done:
			return false
		}
		if n := ingested.Add(1); every > 0 && n%int64(every) == 0 {
			report()
		}
		return true
	}
	if in == "" {
		for _, r := range demoRecords(city, seed) {
			if !offer(r) {
				break
			}
		}
	} else {
		f, err := os.Open(in)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		cr := gps.NewCSVReader(bufio.NewReader(f))
		for {
			r, err := cr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				fail(err)
			}
			if !offer(r) {
				break
			}
		}
	}
	close(feed)
	<-done
	if fanErr != nil {
		fail(fanErr)
	}
	result, err := sp.Close()
	if err != nil {
		fail(err)
	}
	report()
	return result
}

// demoRecords generates the small demonstration people dataset used when no
// -in file is given, for both the batch and the streaming mode.
func demoRecords(city *workload.City, seed int64) []gps.Record {
	slog.Info("no -in file given; generating a small demonstration people dataset")
	ds, err := workload.GeneratePeople(city, workload.DefaultPeopleConfig(2, 2, seed+1))
	if err != nil {
		fail(err)
	}
	return ds.Records()
}

func fail(err error) {
	slog.Error("fatal", "err", err)
	os.Exit(1)
}
