// Command semitri-gen generates the synthetic GPS datasets used as stand-ins
// for the paper's proprietary traces and writes them as CSV files that
// cmd/semitri can ingest.
//
// Usage:
//
//	semitri-gen -kind people -out people.csv [-seed 1] [-users 6] [-days 5]
//	semitri-gen -kind taxi   -out taxi.csv
//	semitri-gen -kind cars   -out cars.csv   [-vehicles 60]
//	semitri-gen -kind drive  -out drive.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"semitri/internal/gps"
	"semitri/internal/workload"
)

func main() {
	kind := flag.String("kind", "people", "dataset kind: people | taxi | cars | drive")
	out := flag.String("out", "", "output CSV path (stdout when empty)")
	seed := flag.Int64("seed", 1, "random seed")
	users := flag.Int("users", 6, "number of users (people datasets)")
	days := flag.Int("days", 5, "number of days per user (people datasets)")
	vehicles := flag.Int("vehicles", 60, "number of vehicles (cars dataset)")
	pois := flag.Int("pois", 8000, "number of POIs in the synthetic city")
	flag.Parse()

	city, err := workload.NewCity(workload.DefaultCityConfig(*seed, *pois))
	if err != nil {
		fail(err)
	}
	var ds *workload.Dataset
	switch *kind {
	case "people":
		ds, err = workload.GeneratePeople(city, workload.DefaultPeopleConfig(*users, *days, *seed+1))
	case "taxi":
		ds, err = workload.GenerateVehicles(city, workload.DefaultTaxiConfig(*seed+1))
	case "cars":
		cfg := workload.DefaultPrivateCarConfig(*seed + 1)
		cfg.NumVehicles = *vehicles
		ds, err = workload.GenerateVehicles(city, cfg)
	case "drive":
		ds, err = workload.GenerateDrive(city, workload.DefaultDriveConfig(*seed+1))
	default:
		fail(fmt.Errorf("unknown dataset kind %q", *kind))
	}
	if err != nil {
		fail(err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	records := ds.Records()
	if err := gps.WriteCSV(w, records); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d records for %d objects (%s)\n", len(records), len(ds.Objects), ds.Name)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
