// Command semitri-serve is the online face of the reproduction: it ingests
// a GPS dataset through the streaming pipeline and serves the semantic
// trajectory store over an HTTP JSON API — episode queries planned and
// executed by the query engine (internal/query), trajectory and per-object
// summaries, and an analytics snapshot. Ingestion runs in the background by
// default, so the API answers queries while records are still streaming in,
// the serving setting the paper's middleware is built for.
//
// Usage:
//
//	semitri-serve [-addr :8080] [-in people.csv] [-profile people|vehicle]
//	              [-seed 1] [-pois 8000] [-users 2] [-days 2]
//	              [-stream-workers 4] [-wait] [-progress 20000]
//	              [-data-dir dir] [-flush-interval 50ms]
//	              [-fsync interval|always|never] [-checkpoint-interval 1m]
//	              [-query-parallelism 0] [-pprof]
//	              [-live] [-sse-heartbeat 10s] [-ingest-delay 0]
//	              [-history-interval 2s] [-history-samples 512]
//	              [-log-level info] [-log-format text|json]
//
// With -in omitted a small people dataset is generated, sized by -users and
// -days. With -wait the server only starts listening once ingestion has
// finished (useful for scripted probing). -ingest-delay throttles the
// producer (one pause per record) so live subscriptions have an ongoing
// stream to watch instead of ingestion finishing in milliseconds.
//
// With -data-dir the store is durable: every mutation is written ahead to a
// group-committed log in the directory and the store checkpoints on the
// -checkpoint-interval schedule. On startup the server recovers whatever
// the directory holds (snapshot + log tail, tolerating a torn tail from a
// crash), so ingest → kill -9 → restart serves exactly the state the dead
// process had made durable. A restart with a non-empty data dir and no -in
// skips ingestion and serves the recovered store as is. On SIGINT/SIGTERM
// the server shuts down gracefully: ingestion stops, the stream processor
// closes, a final checkpoint is written, then the process exits.
//
// Endpoints (see internal/serve for the full parameter list):
//
//	GET /healthz             (503 + reasons when the WAL or checkpointing degrades)
//	GET /query/episodes?object=&kind=stop&ann=poi_category=item sale&from=&to=&minx=&...&trace=1
//	GET /query/relational?q=...&trace=1
//	GET /query/trajectories?object=
//	GET /query/objects?object=
//	GET /stats
//	GET /metrics             Prometheus text exposition
//	GET /metrics/history?name=...&window=10m   in-process ring time-series
//	GET /metrics/stream      sampled metric ticks over SSE
//	GET /subscribe?q=...     standing-query subscription over SSE (with -live)
//	GET /debug/dash          embedded live dashboard (sparklines, health, slow queries)
//	GET /debug/queries       slowest queries served so far
//	GET /debug/pprof/...     (with -pprof)
//	GET /debug/trace?seconds=N  runtime/trace capture (with -pprof)
package main

import (
	"bufio"
	"context"
	"flag"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"semitri"
	"semitri/internal/gps"
	"semitri/internal/obs"
	"semitri/internal/serve"
	"semitri/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	in := flag.String("in", "", "input CSV of GPS records (object,x,y,time); generated when empty")
	profile := flag.String("profile", "people", "annotation profile: people | vehicle")
	seed := flag.Int64("seed", 1, "seed for the synthetic city sources (and the generated dataset)")
	pois := flag.Int("pois", 8000, "number of POIs in the synthetic city")
	users := flag.Int("users", 2, "users in the generated dataset (with -in empty)")
	days := flag.Int("days", 2, "days per user in the generated dataset (with -in empty)")
	streamWorkers := flag.Int("stream-workers", 4, "concurrent ingestion goroutines (records sharded by object)")
	wait := flag.Bool("wait", false, "finish ingestion before the server starts listening")
	progress := flag.Int("progress", 20000, "report ingestion progress every N records (0 = silent)")
	dataDir := flag.String("data-dir", "", "durability directory (WAL + checkpoints); empty = in-memory only")
	storage := flag.String("storage", "json", "checkpoint base format: json (whole-store snapshot) | segments (tiered storage engine, incremental freezes, mmap cold reads) (with -data-dir)")
	flushInterval := flag.Duration("flush-interval", 50*time.Millisecond, "WAL group-commit window (with -data-dir)")
	fsync := flag.String("fsync", "interval", "WAL fsync policy: interval | always | never (with -data-dir)")
	checkpointInterval := flag.Duration("checkpoint-interval", time.Minute, "checkpoint schedule, 0 disables (with -data-dir)")
	queryParallelism := flag.Int("query-parallelism", 0, "query engine worker cap (0 = GOMAXPROCS, 1 = serial)")
	liveOn := flag.Bool("live", true, "enable /subscribe standing-query subscriptions over SSE")
	sseHeartbeat := flag.Duration("sse-heartbeat", serve.DefaultSSEHeartbeat, "heartbeat cadence of idle SSE connections")
	ingestDelay := flag.Duration("ingest-delay", 0, "pause between ingested records (throttles the producer for live demos)")
	historyInterval := flag.Duration("history-interval", obs.DefaultHistoryInterval, "metrics history sampling interval")
	historySamples := flag.Int("history-samples", 512, "samples retained per metric in the history ring")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof and /debug/trace runtime-trace capture under /debug/ on the serving mux")
	logLevel := flag.String("log-level", "info", "log level: debug | info | warn | error")
	logFormat := flag.String("log-format", "text", "log format: text | json")
	flag.Parse()

	if _, err := obs.InitLogger(os.Stderr, *logLevel, *logFormat); err != nil {
		fail(err)
	}
	logger := obs.Component("serve")

	city, err := workload.NewCity(workload.DefaultCityConfig(*seed, *pois))
	if err != nil {
		fail(err)
	}
	cfg := semitri.DefaultConfig()
	if *profile == "vehicle" {
		cfg = semitri.VehicleConfig()
		cfg.DailySplit = false
	}
	cfg.QueryParallelism = *queryParallelism
	if *dataDir != "" {
		cfg.Durability = semitri.Durability{
			Dir:                *dataDir,
			Storage:            *storage,
			FlushInterval:      *flushInterval,
			Fsync:              *fsync,
			CheckpointInterval: *checkpointInterval,
		}
	}
	pipeline, err := semitri.New(semitri.Sources{
		Landuse: city.Landuse, Roads: city.Roads, POIs: city.POIs,
	}, cfg)
	if err != nil {
		fail(err)
	}
	if pipeline.Durable() {
		rs := pipeline.Recovery()
		st := pipeline.Store()
		logger.Info("recovered durable store",
			"dir", *dataDir,
			"records", st.RecordCount(), "trajectories", st.TrajectoryCount(),
			"structured", st.StructuredCount(),
			"snapshot", rs.SnapshotLoaded, "cold_segments", rs.ColdSegments,
			"wal_segments", rs.Segments, "frames", rs.FramesApplied)
		if rs.Torn && rs.Quarantined == 0 {
			logger.Warn("wal tail was torn (crash mid-flush); kept the committed prefix and repaired the log")
		} else if rs.Torn {
			logger.Warn("wal was torn mid-log (disk corruption, not a crash); kept the prefix before the tear and quarantined later segments as *.quarantined",
				"quarantined", rs.Quarantined)
		}
	}
	// Request the engine before ingestion starts: the indexes then build
	// purely incrementally from the stream's append path (they backfill
	// from recovered content first).
	engine := pipeline.QueryEngine()
	opts := []serve.Option{serve.WithHealth(pipeline.Health), serve.WithSSEHeartbeat(*sseHeartbeat)}
	if *liveOn {
		// The dispatcher must attach before ingestion starts so standing
		// queries see every event (registered later they see only the tail).
		opts = append(opts, serve.WithLive(pipeline.Live()))
		logger.Info("live subscriptions enabled", "endpoint", "/subscribe", "heartbeat", *sseHeartbeat)
	}
	history := obs.NewHistory(obs.Default(), *historySamples, *historyInterval)
	history.Start()
	defer history.Close()
	opts = append(opts, serve.WithHistory(history))
	if *pprofOn {
		opts = append(opts, serve.WithProfiling())
	}
	server := serve.New(engine, opts...)

	// Graceful shutdown: a signal stops the producer, the ingest goroutine
	// drains and closes the stream, then a final checkpoint runs.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	ingestStop := make(chan struct{})

	ingested := make(chan struct{})
	if *in == "" && pipeline.Durable() && pipeline.Store().RecordCount() > 0 {
		logger.Info("recovered store is non-empty and no -in given; serving recovered data without new ingestion")
		close(ingested)
	} else {
		go func() {
			defer close(ingested)
			start := time.Now()
			result := ingest(pipeline, *in, city, *seed, *users, *days, *streamWorkers, *progress, *ingestDelay, ingestStop)
			logger.Info("ingestion complete",
				"records", result.Records, "trajectories", len(result.TrajectoryIDs),
				"stops", result.Stops, "moves", result.Moves,
				"elapsed", time.Since(start).Round(time.Millisecond))
		}()
	}
	// finish drains ingestion and writes the final checkpoint; it is the
	// tail of both shutdown paths (signal before the server started under
	// -wait, and signal while serving).
	finish := func() {
		close(ingestStop)
		<-ingested
		if err := pipeline.Close(); err != nil {
			logger.Error("shutdown: final flush/checkpoint failed", "err", err)
			os.Exit(1)
		}
		if pipeline.Durable() {
			logger.Info("shutdown complete: final flush and checkpoint written", "dir", *dataDir)
		}
	}
	if *wait {
		// A signal during ingestion must still shut down gracefully — the
		// ingest producer watches ingestStop, so the stream drains, closes
		// and checkpoints instead of the process dying with the signal
		// queued (or worse, ignored).
		select {
		case <-ingested:
		case sig := <-stop:
			logger.Info("signal received during ingestion; shutting down", "signal", sig.String())
			finish()
			return
		}
	}

	handler := server.Handler()
	if *pprofOn {
		logger.Info("profiling endpoints mounted", "pprof", "/debug/pprof/", "trace", "/debug/trace")
	}
	srv := &http.Server{Addr: *addr, Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()
	logger.Info("serving", "addr", *addr)

	select {
	case err := <-serveErr:
		fail(err)
	case sig := <-stop:
		logger.Info("signal received; shutting down", "signal", sig.String())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
	finish()
}

// ingest streams the input (a CSV read line by line, or a generated people
// dataset) into the pipeline with the concurrent object-sharded fan-in and
// closes the stream. A close of stopCh makes the producer stop early; the
// records already offered still drain through the fan-in before the stream
// closes, so shutdown never abandons in-flight work.
func ingest(pipeline *semitri.Pipeline, in string, city *workload.City, seed int64, users, days, workers, every int, delay time.Duration, stopCh <-chan struct{}) *semitri.Result {
	logger := obs.Component("ingest")
	sp := pipeline.NewStream()
	var n atomic.Int64
	feed := make(chan gps.Record, 256)
	done := make(chan struct{})
	var fanErr error
	go func() {
		fanErr = sp.FanIn(feed, workers, nil)
		close(done)
	}()
	offer := func(r gps.Record) bool {
		select {
		case feed <- r:
		case <-done:
			return false
		case <-stopCh:
			return false
		}
		if c := n.Add(1); every > 0 && c%int64(every) == 0 {
			logger.Info("ingest progress", "records", c)
		}
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-stopCh:
				return false
			}
		}
		return true
	}
	if in == "" {
		logger.Info("no -in file given; generating a people dataset", "users", users, "days", days)
		ds, err := workload.GeneratePeople(city, workload.DefaultPeopleConfig(users, days, seed+1))
		if err != nil {
			fail(err)
		}
		for _, r := range ds.Records() {
			if !offer(r) {
				break
			}
		}
	} else {
		f, err := os.Open(in)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		cr := gps.NewCSVReader(bufio.NewReader(f))
		for {
			r, err := cr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				fail(err)
			}
			if !offer(r) {
				break
			}
		}
	}
	close(feed)
	<-done
	if fanErr != nil {
		fail(fanErr)
	}
	result, err := sp.Close()
	if err != nil {
		select {
		case <-stopCh:
			// Shutdown raced an early or empty ingest; a partial stream is
			// expected here, not fatal.
			logger.Warn("stream close during shutdown", "err", err)
			return &semitri.Result{}
		default:
			fail(err)
		}
	}
	return result
}

func fail(err error) {
	slog.Error("fatal", "err", err)
	os.Exit(1)
}
