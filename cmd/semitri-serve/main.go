// Command semitri-serve is the online face of the reproduction: it ingests
// a GPS dataset through the streaming pipeline and serves the semantic
// trajectory store over an HTTP JSON API — episode queries planned and
// executed by the query engine (internal/query), trajectory and per-object
// summaries, and an analytics snapshot. Ingestion runs in the background by
// default, so the API answers queries while records are still streaming in,
// the serving setting the paper's middleware is built for.
//
// Usage:
//
//	semitri-serve [-addr :8080] [-in people.csv] [-profile people|vehicle]
//	              [-seed 1] [-pois 8000] [-users 2] [-days 2]
//	              [-stream-workers 4] [-wait] [-progress 20000]
//
// With -in omitted a small people dataset is generated, sized by -users and
// -days. With -wait the server only starts listening once ingestion has
// finished (useful for scripted probing).
//
// Endpoints (see internal/serve for the full parameter list):
//
//	GET /healthz
//	GET /query/episodes?object=&kind=stop&ann=poi_category=item sale&from=&to=&minx=&...
//	GET /query/trajectories?object=
//	GET /query/objects?object=
//	GET /stats
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"semitri"
	"semitri/internal/gps"
	"semitri/internal/serve"
	"semitri/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	in := flag.String("in", "", "input CSV of GPS records (object,x,y,time); generated when empty")
	profile := flag.String("profile", "people", "annotation profile: people | vehicle")
	seed := flag.Int64("seed", 1, "seed for the synthetic city sources (and the generated dataset)")
	pois := flag.Int("pois", 8000, "number of POIs in the synthetic city")
	users := flag.Int("users", 2, "users in the generated dataset (with -in empty)")
	days := flag.Int("days", 2, "days per user in the generated dataset (with -in empty)")
	streamWorkers := flag.Int("stream-workers", 4, "concurrent ingestion goroutines (records sharded by object)")
	wait := flag.Bool("wait", false, "finish ingestion before the server starts listening")
	progress := flag.Int("progress", 20000, "report ingestion progress every N records (0 = silent)")
	flag.Parse()

	city, err := workload.NewCity(workload.DefaultCityConfig(*seed, *pois))
	if err != nil {
		fail(err)
	}
	cfg := semitri.DefaultConfig()
	if *profile == "vehicle" {
		cfg = semitri.VehicleConfig()
		cfg.DailySplit = false
	}
	pipeline, err := semitri.New(semitri.Sources{
		Landuse: city.Landuse, Roads: city.Roads, POIs: city.POIs,
	}, cfg)
	if err != nil {
		fail(err)
	}
	// Request the engine before ingestion starts: the indexes then build
	// purely incrementally from the stream's append path.
	engine := pipeline.QueryEngine()
	server := serve.New(engine)

	ingested := make(chan struct{})
	go func() {
		defer close(ingested)
		start := time.Now()
		result := ingest(pipeline, *in, city, *seed, *users, *days, *streamWorkers, *progress)
		fmt.Fprintf(os.Stderr, "ingestion complete: %d records, %d trajectories (%d stops, %d moves) in %v\n",
			result.Records, len(result.TrajectoryIDs), result.Stops, result.Moves,
			time.Since(start).Round(time.Millisecond))
	}()
	if *wait {
		<-ingested
	}

	fmt.Fprintf(os.Stderr, "serving on %s\n", *addr)
	if err := http.ListenAndServe(*addr, server.Handler()); err != nil {
		fail(err)
	}
}

// ingest streams the input (a CSV read line by line, or a generated people
// dataset) into the pipeline with the concurrent object-sharded fan-in and
// closes the stream.
func ingest(pipeline *semitri.Pipeline, in string, city *workload.City, seed int64, users, days, workers, every int) *semitri.Result {
	sp := pipeline.NewStream()
	var n atomic.Int64
	feed := make(chan gps.Record, 256)
	done := make(chan struct{})
	var fanErr error
	go func() {
		fanErr = sp.FanIn(feed, workers, nil)
		close(done)
	}()
	offer := func(r gps.Record) bool {
		select {
		case feed <- r:
		case <-done:
			return false
		}
		if c := n.Add(1); every > 0 && c%int64(every) == 0 {
			fmt.Fprintf(os.Stderr, "ingested %d records\n", c)
		}
		return true
	}
	if in == "" {
		fmt.Fprintf(os.Stderr, "no -in file given; generating %d user(s) x %d day(s)\n", users, days)
		ds, err := workload.GeneratePeople(city, workload.DefaultPeopleConfig(users, days, seed+1))
		if err != nil {
			fail(err)
		}
		for _, r := range ds.Records() {
			if !offer(r) {
				break
			}
		}
	} else {
		f, err := os.Open(in)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		cr := gps.NewCSVReader(bufio.NewReader(f))
		for {
			r, err := cr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				fail(err)
			}
			if !offer(r) {
				break
			}
		}
	}
	close(feed)
	<-done
	if fanErr != nil {
		fail(fanErr)
	}
	result, err := sp.Close()
	if err != nil {
		fail(err)
	}
	return result
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
