// Command semitri-serve is the online face of the reproduction: it ingests
// a GPS dataset through the streaming pipeline and serves the semantic
// trajectory store over an HTTP JSON API — episode queries planned and
// executed by the query engine (internal/query), trajectory and per-object
// summaries, and an analytics snapshot. Ingestion runs in the background by
// default, so the API answers queries while records are still streaming in,
// the serving setting the paper's middleware is built for.
//
// Usage:
//
//	semitri-serve [-addr :8080] [-in people.csv] [-profile people|vehicle]
//	              [-seed 1] [-pois 8000] [-users 2] [-days 2]
//	              [-stream-workers 4] [-wait] [-progress 20000]
//	              [-data-dir dir] [-flush-interval 50ms]
//	              [-fsync interval|always|never] [-checkpoint-interval 1m]
//	              [-query-parallelism 0] [-pprof]
//
// With -in omitted a small people dataset is generated, sized by -users and
// -days. With -wait the server only starts listening once ingestion has
// finished (useful for scripted probing).
//
// With -data-dir the store is durable: every mutation is written ahead to a
// group-committed log in the directory and the store checkpoints on the
// -checkpoint-interval schedule. On startup the server recovers whatever
// the directory holds (snapshot + log tail, tolerating a torn tail from a
// crash), so ingest → kill -9 → restart serves exactly the state the dead
// process had made durable. A restart with a non-empty data dir and no -in
// skips ingestion and serves the recovered store as is. On SIGINT/SIGTERM
// the server shuts down gracefully: ingestion stops, the stream processor
// closes, a final checkpoint is written, then the process exits.
//
// Endpoints (see internal/serve for the full parameter list):
//
//	GET /healthz
//	GET /query/episodes?object=&kind=stop&ann=poi_category=item sale&from=&to=&minx=&...
//	GET /query/trajectories?object=
//	GET /query/objects?object=
//	GET /stats
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"semitri"
	"semitri/internal/gps"
	"semitri/internal/serve"
	"semitri/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	in := flag.String("in", "", "input CSV of GPS records (object,x,y,time); generated when empty")
	profile := flag.String("profile", "people", "annotation profile: people | vehicle")
	seed := flag.Int64("seed", 1, "seed for the synthetic city sources (and the generated dataset)")
	pois := flag.Int("pois", 8000, "number of POIs in the synthetic city")
	users := flag.Int("users", 2, "users in the generated dataset (with -in empty)")
	days := flag.Int("days", 2, "days per user in the generated dataset (with -in empty)")
	streamWorkers := flag.Int("stream-workers", 4, "concurrent ingestion goroutines (records sharded by object)")
	wait := flag.Bool("wait", false, "finish ingestion before the server starts listening")
	progress := flag.Int("progress", 20000, "report ingestion progress every N records (0 = silent)")
	dataDir := flag.String("data-dir", "", "durability directory (WAL + checkpoints); empty = in-memory only")
	storage := flag.String("storage", "json", "checkpoint base format: json (whole-store snapshot) | segments (tiered storage engine, incremental freezes, mmap cold reads) (with -data-dir)")
	flushInterval := flag.Duration("flush-interval", 50*time.Millisecond, "WAL group-commit window (with -data-dir)")
	fsync := flag.String("fsync", "interval", "WAL fsync policy: interval | always | never (with -data-dir)")
	checkpointInterval := flag.Duration("checkpoint-interval", time.Minute, "checkpoint schedule, 0 disables (with -data-dir)")
	queryParallelism := flag.Int("query-parallelism", 0, "query engine worker cap (0 = GOMAXPROCS, 1 = serial)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the serving mux")
	flag.Parse()

	city, err := workload.NewCity(workload.DefaultCityConfig(*seed, *pois))
	if err != nil {
		fail(err)
	}
	cfg := semitri.DefaultConfig()
	if *profile == "vehicle" {
		cfg = semitri.VehicleConfig()
		cfg.DailySplit = false
	}
	cfg.QueryParallelism = *queryParallelism
	if *dataDir != "" {
		cfg.Durability = semitri.Durability{
			Dir:                *dataDir,
			Storage:            *storage,
			FlushInterval:      *flushInterval,
			Fsync:              *fsync,
			CheckpointInterval: *checkpointInterval,
		}
	}
	pipeline, err := semitri.New(semitri.Sources{
		Landuse: city.Landuse, Roads: city.Roads, POIs: city.POIs,
	}, cfg)
	if err != nil {
		fail(err)
	}
	if pipeline.Durable() {
		rs := pipeline.Recovery()
		st := pipeline.Store()
		fmt.Fprintf(os.Stderr,
			"data dir %s: recovered %d records, %d trajectories, %d structured (snapshot=%v, cold-segments=%d, wal-segments=%d, frames=%d)\n",
			*dataDir, st.RecordCount(), st.TrajectoryCount(), st.StructuredCount(),
			rs.SnapshotLoaded, rs.ColdSegments, rs.Segments, rs.FramesApplied)
		if rs.Torn && rs.Quarantined == 0 {
			fmt.Fprintln(os.Stderr, "wal tail was torn (crash mid-flush); kept the committed prefix and repaired the log")
		} else if rs.Torn {
			fmt.Fprintf(os.Stderr,
				"WARNING: wal was torn mid-log (disk corruption, not a crash); kept the prefix before the tear and quarantined %d later segment(s) as *.quarantined for inspection\n",
				rs.Quarantined)
		}
	}
	// Request the engine before ingestion starts: the indexes then build
	// purely incrementally from the stream's append path (they backfill
	// from recovered content first).
	engine := pipeline.QueryEngine()
	server := serve.New(engine)

	// Graceful shutdown: a signal stops the producer, the ingest goroutine
	// drains and closes the stream, then a final checkpoint runs.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	ingestStop := make(chan struct{})

	ingested := make(chan struct{})
	if *in == "" && pipeline.Durable() && pipeline.Store().RecordCount() > 0 {
		fmt.Fprintln(os.Stderr, "recovered store is non-empty and no -in given; serving recovered data without new ingestion")
		close(ingested)
	} else {
		go func() {
			defer close(ingested)
			start := time.Now()
			result := ingest(pipeline, *in, city, *seed, *users, *days, *streamWorkers, *progress, ingestStop)
			fmt.Fprintf(os.Stderr, "ingestion complete: %d records, %d trajectories (%d stops, %d moves) in %v\n",
				result.Records, len(result.TrajectoryIDs), result.Stops, result.Moves,
				time.Since(start).Round(time.Millisecond))
		}()
	}
	// finish drains ingestion and writes the final checkpoint; it is the
	// tail of both shutdown paths (signal before the server started under
	// -wait, and signal while serving).
	finish := func() {
		close(ingestStop)
		<-ingested
		if err := pipeline.Close(); err != nil {
			fail(err)
		}
		if pipeline.Durable() {
			fmt.Fprintf(os.Stderr, "final checkpoint written to %s\n", *dataDir)
		}
	}
	if *wait {
		// A signal during ingestion must still shut down gracefully — the
		// ingest producer watches ingestStop, so the stream drains, closes
		// and checkpoints instead of the process dying with the signal
		// queued (or worse, ignored).
		select {
		case <-ingested:
		case sig := <-stop:
			fmt.Fprintf(os.Stderr, "received %s during ingestion; shutting down\n", sig)
			finish()
			return
		}
	}

	handler := server.Handler()
	if *pprofOn {
		// Wrap the API mux in an outer one that also mounts the pprof
		// handlers, so profiles of the live parallel executor are one curl
		// away without exposing them by default.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		fmt.Fprintf(os.Stderr, "pprof mounted at %s/debug/pprof/\n", *addr)
	}
	srv := &http.Server{Addr: *addr, Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "serving on %s\n", *addr)

	select {
	case err := <-serveErr:
		fail(err)
	case sig := <-stop:
		fmt.Fprintf(os.Stderr, "received %s; shutting down\n", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
	finish()
}

// ingest streams the input (a CSV read line by line, or a generated people
// dataset) into the pipeline with the concurrent object-sharded fan-in and
// closes the stream. A close of stopCh makes the producer stop early; the
// records already offered still drain through the fan-in before the stream
// closes, so shutdown never abandons in-flight work.
func ingest(pipeline *semitri.Pipeline, in string, city *workload.City, seed int64, users, days, workers, every int, stopCh <-chan struct{}) *semitri.Result {
	sp := pipeline.NewStream()
	var n atomic.Int64
	feed := make(chan gps.Record, 256)
	done := make(chan struct{})
	var fanErr error
	go func() {
		fanErr = sp.FanIn(feed, workers, nil)
		close(done)
	}()
	offer := func(r gps.Record) bool {
		select {
		case feed <- r:
		case <-done:
			return false
		case <-stopCh:
			return false
		}
		if c := n.Add(1); every > 0 && c%int64(every) == 0 {
			fmt.Fprintf(os.Stderr, "ingested %d records\n", c)
		}
		return true
	}
	if in == "" {
		fmt.Fprintf(os.Stderr, "no -in file given; generating %d user(s) x %d day(s)\n", users, days)
		ds, err := workload.GeneratePeople(city, workload.DefaultPeopleConfig(users, days, seed+1))
		if err != nil {
			fail(err)
		}
		for _, r := range ds.Records() {
			if !offer(r) {
				break
			}
		}
	} else {
		f, err := os.Open(in)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		cr := gps.NewCSVReader(bufio.NewReader(f))
		for {
			r, err := cr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				fail(err)
			}
			if !offer(r) {
				break
			}
		}
	}
	close(feed)
	<-done
	if fanErr != nil {
		fail(fanErr)
	}
	result, err := sp.Close()
	if err != nil {
		select {
		case <-stopCh:
			// Shutdown raced an early or empty ingest; a partial stream is
			// expected here, not fatal.
			fmt.Fprintf(os.Stderr, "stream close during shutdown: %v\n", err)
			return &semitri.Result{}
		default:
			fail(err)
		}
	}
	return result
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
