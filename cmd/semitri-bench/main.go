// Command semitri-bench regenerates the tables and figures of the SeMiTri
// paper's evaluation (§5) on synthetic stand-in datasets and prints the
// resulting rows. Use -exp with one id, a comma-separated list of ids, or
// "all" (default) to run the full suite in the order of the paper.
//
// Usage:
//
//	semitri-bench [-exp all|table1|table2|fig9|fig10|fig11|fig12|fig13|fig14|fig15|fig17|compression|ablation-mapmatch|ablation-hmm|stream|lookup|query|relational|durability|parallel|storage|obs]
//	              [-seed 2026] [-scale 1.0] [-json FILE]
//
// Eight experiments are not paper figures: "stream" reports streaming
// ingestion itself (serial ns/record vs the object-sharded concurrent
// fan-in), "lookup" reports the spatial-layer hot path (the per-record
// candidate lookups of the three annotation layers, cached vs uncached)
// including a combined ns/record number, "query" reports the read path
// (typed queries through the query engine's indexes versus the full-scan
// baseline, ns/query), "relational" reports the cross-object layer (ingest
// ns/record, ns/query per access path, the ns/join of the build/probe
// co-location join and the parsed query language end to end), "durability"
// reports what the write-ahead log costs streaming ingestion (WAL-on vs
// WAL-off ns/record, group-commit fsync) plus crash-recovery timings (log
// replay and snapshot+tail), verified exact against the live store, and
// "parallel" reports the parallel query executor (ns/join and ns/query at
// workers=1 vs workers=N, byte-identical results asserted, plus allocs/op
// of the probe hot path), and "storage" reports the tiered storage engine —
// incremental checkpoint cost (asserted to track the tail written, not the
// total store), segment-pruned vs all-heap query latency (answers verified
// identical), restart-from-segments recovery time and peak process RSS, and
// "obs" reports what the observability layer costs the ingest hot path
// (instrumented vs uninstrumented ns/record; the overhead percentage is
// CI-asserted below 3%).
//
// -json additionally writes every regenerated table to FILE as one JSON
// document ({seed, scale, tables: [...]}) — what the bench-smoke CI job
// uploads as its artifact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"semitri/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids to run, or 'all'")
	seed := flag.Int64("seed", 2026, "random seed for the synthetic environment and workloads")
	scale := flag.Float64("scale", 1.0, "workload scale factor (smaller is faster)")
	list := flag.Bool("list", false, "list available experiment ids and exit")
	jsonPath := flag.String("json", "", "also write the results to this file as JSON")
	flag.Parse()

	if *list {
		fmt.Println("available experiments:")
		for _, id := range experiments.Order {
			fmt.Println("  " + id)
		}
		return
	}
	ids := experiments.Order
	if *exp != "all" {
		ids = nil
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			if _, ok := experiments.Registry[id]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; known ids: %s\n", id, strings.Join(experiments.Order, ", "))
				os.Exit(2)
			}
			ids = append(ids, id)
		}
		if len(ids) == 0 {
			fmt.Fprintf(os.Stderr, "no experiment ids given; known ids: %s\n", strings.Join(experiments.Order, ", "))
			os.Exit(2)
		}
	}
	fmt.Printf("building synthetic environment (seed=%d, scale=%.2f)...\n", *seed, *scale)
	start := time.Now()
	env, err := experiments.NewEnv(*seed, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Printf("environment ready in %v: %d landuse cells, %d road segments, %d POIs\n\n",
		time.Since(start).Round(time.Millisecond),
		env.City.Landuse.NumCells(), env.City.Roads.NumSegments(), env.City.POIs.Len())
	var tables []*experiments.Table
	for _, id := range ids {
		fn := experiments.Registry[id]
		t0 := time.Now()
		tbl, err := fn(env)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Print(tbl.Format())
		fmt.Printf("(%s regenerated in %v)\n\n", id, time.Since(t0).Round(time.Millisecond))
		tables = append(tables, tbl)
	}
	if *jsonPath != "" {
		doc := struct {
			Seed   int64                `json:"seed"`
			Scale  float64              `json:"scale"`
			Tables []*experiments.Table `json:"tables"`
		}{*seed, *scale, tables}
		data, err := json.MarshalIndent(doc, "", " ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}
