// Command semitri-bench regenerates the tables and figures of the SeMiTri
// paper's evaluation (§5) on synthetic stand-in datasets and prints the
// resulting rows. Use -exp to run a single experiment or "all" (default) to
// run the full suite in the order of the paper.
//
// Usage:
//
//	semitri-bench [-exp all|table1|table2|fig9|fig10|fig11|fig12|fig13|fig14|fig15|fig17|compression|ablation-mapmatch|ablation-hmm|lookup|query|relational|durability]
//	              [-seed 2026] [-scale 1.0] [-json FILE]
//
// Four experiments are not paper figures: "lookup" reports the
// spatial-layer hot path (the per-record candidate lookups of the three
// annotation layers, cached vs uncached) including a combined ns/record
// number, "query" reports the read path (typed queries through the query
// engine's indexes versus the full-scan baseline, ns/query), "relational"
// reports the cross-object layer (ingest ns/record, ns/query per access
// path, the ns/join of the build/probe co-location join and the parsed
// query language end to end), and "durability" reports what the write-ahead
// log costs streaming ingestion (WAL-on vs WAL-off ns/record, group-commit
// fsync) plus crash-recovery timings (log replay and snapshot+tail),
// verified exact against the live store.
//
// -json additionally writes every regenerated table to FILE as one JSON
// document ({seed, scale, tables: [...]}) — what the bench-smoke CI job
// uploads as its artifact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"semitri/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id to run, or 'all'")
	seed := flag.Int64("seed", 2026, "random seed for the synthetic environment and workloads")
	scale := flag.Float64("scale", 1.0, "workload scale factor (smaller is faster)")
	list := flag.Bool("list", false, "list available experiment ids and exit")
	jsonPath := flag.String("json", "", "also write the results to this file as JSON")
	flag.Parse()

	if *list {
		fmt.Println("available experiments:")
		for _, id := range experiments.Order {
			fmt.Println("  " + id)
		}
		return
	}
	ids := experiments.Order
	if *exp != "all" {
		if _, ok := experiments.Registry[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; known ids: %s\n", *exp, strings.Join(experiments.Order, ", "))
			os.Exit(2)
		}
		ids = []string{*exp}
	}
	fmt.Printf("building synthetic environment (seed=%d, scale=%.2f)...\n", *seed, *scale)
	start := time.Now()
	env, err := experiments.NewEnv(*seed, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Printf("environment ready in %v: %d landuse cells, %d road segments, %d POIs\n\n",
		time.Since(start).Round(time.Millisecond),
		env.City.Landuse.NumCells(), env.City.Roads.NumSegments(), env.City.POIs.Len())
	var tables []*experiments.Table
	for _, id := range ids {
		fn := experiments.Registry[id]
		t0 := time.Now()
		tbl, err := fn(env)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Print(tbl.Format())
		fmt.Printf("(%s regenerated in %v)\n\n", id, time.Since(t0).Round(time.Millisecond))
		tables = append(tables, tbl)
	}
	if *jsonPath != "" {
		doc := struct {
			Seed   int64                `json:"seed"`
			Scale  float64              `json:"scale"`
			Tables []*experiments.Table `json:"tables"`
		}{*seed, *scale, tables}
		data, err := json.MarshalIndent(doc, "", " ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}
