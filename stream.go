package semitri

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/gps"
	"semitri/internal/obs"
	"semitri/internal/stats"
)

// StreamProcessor is the online entry point of the pipeline: it accepts raw
// GPS records one at a time (or in micro-batches) per moving object and runs
// the same chain as ProcessRecords — cleaning, trajectory identification,
// stop/move computation and the three annotation layers — incrementally.
// Episodes are emitted (and their region/line annotations computed and
// appended to the store) as soon as they are final; the point layer, whose
// HMM decodes a trajectory's whole stop sequence jointly, runs when the
// trajectory closes, as does the record-level region interpretation.
//
// Parity guarantee: feeding a record stream through Add and then calling
// Close leaves the store with exactly the same trajectories, episodes and
// structured interpretations as one ProcessRecords call on the same records
// (assuming each object's records arrive in time order; late records are
// dropped, as batch sorting would have moved them anyway).
//
// # Concurrency
//
// A StreamProcessor is safe for concurrent use and is internally sharded by
// object: every moving object owns its full streaming state (cleaner,
// segmenter, episode tracker, staged artefacts) behind its own lock, and the
// processor-wide lock only guards the object registry and the running
// Result. Add calls for different objects therefore run concurrently
// end-to-end — clean → segment → episode → annotate → append — contending
// only on the store's lock stripes. Calls for the same object serialise on
// that object's lock; feed one object's records from a single goroutine (or
// use AddBatchConcurrent / FanIn, which shard by object) to keep their order
// deterministic. Use one StreamProcessor (or one ProcessRecords run) per
// Pipeline store lifetime to keep trajectory ids unique.
type StreamProcessor struct {
	p *Pipeline

	// reg guards the object registry and the closed flag; per-object state
	// is guarded by each objectStream's own mutex.
	reg     sync.RWMutex
	objects map[string]*objectStream
	closed  bool

	// Running totals shared by all objects. The counters are atomics so the
	// per-record hot path never takes a processor-wide lock; only the
	// trajectory-close path (rare) takes resMu for the id list.
	records atomic.Int64
	stops   atomic.Int64
	moves   atomic.Int64
	resMu   sync.Mutex // guards trajectoryIDs
	trajIDs []string
}

// objectStream is the per-object streaming state: the object's own cleaning
// window and segmenter, the episode tracker of the open trajectory and the
// artefacts staged until the trajectory is committed (guaranteed to be
// kept). All fields are guarded by mu; the cleaner and segmenter see exactly
// one object each, so their ids and split points match the processor-wide
// instances the previous single-lock implementation used.
type objectStream struct {
	mu sync.Mutex

	objectID  string
	cleaner   *gps.StreamCleaner
	segmenter *gps.StreamSegmenter
	tracker   *episode.Tracker
	id        string // trajectory id, "" until committed
	closed    bool   // set by Close: the object accepts no further records

	// cur holds the object's spatial locality cursors (last land-use cell,
	// last road candidates, last POI neighbourhood). The per-object state of
	// the streaming engine makes them lock-free, and they survive trajectory
	// resets: spatial locality belongs to the object, not the trajectory.
	cur *annCursors

	// Closed episodes of the open trajectory, kept for the point layer at
	// close time (each episode's position here is also its merged-tuple
	// index in the store, the append order).
	episodes []*episode.Episode

	// Artefacts staged while the trajectory may still be dropped: the
	// closed episodes with their annotations (replayed through the normal
	// store-append path at commit time) and the held-back events.
	staged       []stagedEpisode
	stagedEvents []StreamEvent

	latency *stats.LatencyBreakdown

	// sample drives the 1-in-16 stage-latency sampling of the record hot
	// path (see sampleTimed). Guarded by mu like the rest of the state, so
	// the counter costs one non-atomic increment per record.
	sample uint32
}

// sampleTimed reports whether this record's per-stage latency should be
// measured: every 16th record of the object, and only while instrumentation
// is enabled. The stage histograms keep their shape (they see an unbiased
// sample) while the hot path pays a time.Now pair only on sampled records.
// Caller holds mu. One in 64 records is timed: clock reads are ~70ns on
// cloud VMs without a fast vDSO path, so sampling sparser than the stage
// histograms need keeps the obs overhead budget (bench-asserted < 3%) safe.
func (os *objectStream) sampleTimed() bool {
	os.sample++
	return os.sample&63 == 0 && obs.Enabled()
}

type stagedEpisode struct {
	ep  *episode.Episode
	ann episodeAnnotation
}

// StreamEvent reports something that became final inside Add, Flush or
// Close: an episode closing and/or a trajectory closing.
type StreamEvent struct {
	ObjectID string
	// TrajectoryID is the id of the trajectory the event belongs to.
	// Episode events are only delivered once their trajectory is committed
	// (guaranteed to be kept), so the id is always set; episodes of
	// segments that end up dropped as too short produce no events at all.
	TrajectoryID string
	// Episode is the episode that just became final (nil for
	// trajectory-close events).
	Episode *episode.Episode
	// Tuple is the episode's merged-interpretation tuple carrying the
	// region/line annotations computed so far (the point layer adds its
	// annotations when the trajectory closes).
	Tuple *core.EpisodeTuple
	// TrajectoryClosed reports that the trajectory TrajectoryID closed and
	// every interpretation (point layer included) is now stored.
	TrajectoryClosed bool
}

var errStreamClosed = errors.New("semitri: stream already closed")

// NewStream returns a streaming processor over the pipeline's sources,
// configuration and store.
func (p *Pipeline) NewStream() *StreamProcessor {
	return &StreamProcessor{
		p:       p,
		objects: map[string]*objectStream{},
	}
}

// object returns the stream state for objectID, creating it on first use.
// The fast path holds only a read lock on the registry.
func (sp *StreamProcessor) object(objectID string) (*objectStream, error) {
	sp.reg.RLock()
	if sp.closed {
		sp.reg.RUnlock()
		return nil, errStreamClosed
	}
	os := sp.objects[objectID]
	sp.reg.RUnlock()
	if os != nil {
		return os, nil
	}
	sp.reg.Lock()
	defer sp.reg.Unlock()
	if sp.closed {
		return nil, errStreamClosed
	}
	if os = sp.objects[objectID]; os == nil {
		os = &objectStream{
			objectID:  objectID,
			cleaner:   gps.NewStreamCleaner(sp.p.cfg.Cleaning),
			segmenter: gps.NewStreamSegmenter(sp.p.cfg.Segmentation, sp.p.cfg.DailySplit),
			cur:       sp.p.newCursors(),
			latency:   stats.NewLatencyBreakdown(),
		}
		sp.objects[objectID] = os
	}
	return os, nil
}

// Add ingests one raw GPS record and returns the events it triggered. The
// cleaning window delays a record's effects by SmoothingWindow records of
// its object. Adds for different objects run concurrently; adds for the same
// object serialise on the object's lock.
func (sp *StreamProcessor) Add(r gps.Record) ([]StreamEvent, error) {
	os, err := sp.object(r.ObjectID)
	if err != nil {
		return nil, err
	}
	os.mu.Lock()
	defer os.mu.Unlock()
	if os.closed {
		return nil, errStreamClosed
	}
	var t0 time.Time
	timed := os.sampleTimed()
	if timed {
		t0 = time.Now()
	}
	cleaned := os.cleaner.Add(r)
	if timed {
		obs.IngestStageCleanNs.ObserveNs(time.Since(t0).Nanoseconds())
	}
	var events []StreamEvent
	for _, cr := range cleaned {
		evs, err := sp.ingestCleaned(os, cr)
		events = append(events, evs...)
		if err != nil {
			return events, err
		}
	}
	return events, nil
}

// AddBatch ingests a micro-batch of records in order.
func (sp *StreamProcessor) AddBatch(records []gps.Record) ([]StreamEvent, error) {
	var events []StreamEvent
	for _, r := range records {
		evs, err := sp.Add(r)
		events = append(events, evs...)
		if err != nil {
			return events, err
		}
	}
	return events, nil
}

// ingestCleaned routes one finalised cleaned record through segmentation,
// episode tracking and annotation. Caller holds os.mu.
func (sp *StreamProcessor) ingestCleaned(os *objectStream, cr gps.Record) ([]StreamEvent, error) {
	sp.p.st.PutRecords([]gps.Record{cr})
	sp.records.Add(1)
	obs.IngestRecords.Inc()
	var t0 time.Time
	timed := os.sampleTimed()
	if timed {
		t0 = time.Now()
	}
	ev := os.segmenter.Add(cr)
	if timed {
		obs.IngestStageSegmentNs.ObserveNs(time.Since(t0).Nanoseconds())
	}
	var events []StreamEvent
	if ev.Closed != nil {
		evs, err := sp.closeTrajectory(os, ev.Closed)
		events = append(events, evs...)
		if err != nil {
			return events, err
		}
	} else if ev.ClosedDropped {
		os.reset()
	}
	if ev.Opened {
		tk, err := episode.NewTracker("", os.objectID, sp.p.cfg.Episode)
		if err != nil {
			return events, fmt.Errorf("semitri: %w", err)
		}
		os.tracker = tk
	}
	start := time.Now()
	eps, err := os.tracker.Add(cr)
	if err != nil {
		return events, fmt.Errorf("semitri: %w", err)
	}
	trackNs := time.Since(start)
	os.latency.Record(StageComputeEpisode, trackNs)
	// The latency breakdown already paid for the clock reads; the histogram
	// observe is still sampled like the other stages to keep the per-record
	// obs cost down to the counters.
	if timed {
		obs.IngestStageTrackNs.ObserveNs(trackNs.Nanoseconds())
	}
	openRecords, _, _ := os.segmenter.OpenRecords(os.objectID)
	for _, closedEp := range eps {
		e, err := sp.closeEpisodeRecords(os, closedEp, openRecords)
		if err != nil {
			return events, err
		}
		if os.id == "" {
			// Uncommitted: the segment may still be dropped, in which case
			// this episode must never have been announced. Hold the event
			// back until commit.
			os.stagedEvents = append(os.stagedEvents, e)
		} else {
			events = append(events, e)
		}
	}
	if ev.Committed {
		flushed, err := sp.commit(os, ev.SegmentID)
		events = append(events, flushed...)
		if err != nil {
			return events, err
		}
	}
	return events, nil
}

// closeEpisodeRecords annotates a final episode with the region and line
// layers and appends the results to the store (or stages them when the
// trajectory is not yet committed). records must cover the episode's index
// range: the open segment's records so far, or the full trajectory at close
// time. Caller holds os.mu.
func (sp *StreamProcessor) closeEpisodeRecords(os *objectStream, ep *episode.Episode, records []gps.Record) (StreamEvent, error) {
	view := &gps.RawTrajectory{ID: os.id, ObjectID: os.objectID, Records: records}
	start := time.Now()
	ann, err := sp.p.annotateEpisode(view, ep, os.latency, os.cur)
	if err != nil {
		return StreamEvent{}, fmt.Errorf("semitri: %w", err)
	}
	// Episode closes are rare relative to records, so annotation is timed on
	// every call rather than sampled.
	obs.IngestStageAnnotateNs.ObserveNs(time.Since(start).Nanoseconds())
	os.episodes = append(os.episodes, ep)
	if os.id == "" {
		// Not committed yet: stage until the trajectory is guaranteed kept.
		os.staged = append(os.staged, stagedEpisode{ep: ep, ann: ann})
	} else {
		if err := sp.appendEpisodeArtifacts(os, ep, ann); err != nil {
			return StreamEvent{}, err
		}
	}
	return StreamEvent{ObjectID: os.objectID, TrajectoryID: os.id, Episode: ep, Tuple: ann.merged}, nil
}

// appendEpisodeArtifacts writes one closed episode's artefacts to the store.
func (sp *StreamProcessor) appendEpisodeArtifacts(os *objectStream, ep *episode.Episode, ann episodeAnnotation) error {
	start := time.Now()
	if err := sp.p.st.AppendEpisodes(os.id, ep); err != nil {
		return err
	}
	os.latency.Record(StageStoreEpisode, time.Since(start))
	if err := sp.p.st.AppendStructuredTuples(os.id, os.objectID, InterpretationMerged, ann.merged); err != nil {
		return err
	}
	if ann.region != nil {
		if err := sp.p.st.AppendStructuredTuples(os.id, os.objectID, InterpretationRegionEpisodes, ann.region); err != nil {
			return err
		}
	}
	if ep.Kind == episode.Move && sp.p.lineAnnotator != nil {
		// Appending zero tuples still creates the interpretation, matching
		// the batch path which stores it whenever move episodes exist.
		start = time.Now()
		if err := sp.p.st.AppendStructuredTuples(os.id, os.objectID, InterpretationLine, ann.line...); err != nil {
			return err
		}
		os.latency.Record(StageStoreMatch, time.Since(start))
	}
	return nil
}

// commit fires when the open trajectory reaches MinRecords: the trajectory
// id is now final, the staged artefacts catch up into the store and the
// held-back episode events are released (with the id filled in). Caller
// holds os.mu.
func (sp *StreamProcessor) commit(os *objectStream, id string) ([]StreamEvent, error) {
	os.id = id
	os.tracker.SetIDs(id, os.objectID)
	released := os.stagedEvents
	os.stagedEvents = nil
	for i := range released {
		released[i].TrajectoryID = id
	}
	records, _, _ := os.segmenter.OpenRecords(os.objectID)
	partial := &gps.RawTrajectory{
		ID: id, ObjectID: os.objectID, Records: append([]gps.Record(nil), records...),
	}
	if err := sp.p.st.PutTrajectory(partial); err != nil {
		return released, err
	}
	// Replay the staged episodes through the normal append path, so the
	// pre-commit and post-commit writes stay a single code path.
	for _, s := range os.staged {
		s.ep.TrajectoryID = id
		if err := sp.appendEpisodeArtifacts(os, s.ep, s.ann); err != nil {
			return released, err
		}
	}
	os.staged = nil
	return released, nil
}

// closeTrajectory finishes a kept trajectory: drains the tracker's tail
// episodes, runs the record-level region interpretation and the point layer,
// and finalises the stored trajectory. Caller holds os.mu.
func (sp *StreamProcessor) closeTrajectory(os *objectStream, t *gps.RawTrajectory) ([]StreamEvent, error) {
	defer func() {
		sp.p.mu.Lock()
		sp.p.latency.Merge(os.latency)
		sp.p.mu.Unlock()
		os.reset()
	}()
	if os.tracker == nil {
		return nil, fmt.Errorf("semitri: trajectory %s closed without a tracker", t.ID)
	}
	os.id = t.ID // committed by construction: the segmenter kept it
	start := time.Now()
	tail, err := os.tracker.Finish()
	if err != nil {
		return nil, fmt.Errorf("semitri: %w", err)
	}
	os.latency.Record(StageComputeEpisode, time.Since(start))
	var events []StreamEvent
	for _, ep := range tail {
		ep.TrajectoryID = t.ID
		e, err := sp.closeEpisodeRecords(os, ep, t.Records)
		if err != nil {
			return events, err
		}
		events = append(events, e)
	}
	// The segmenter commits any kept trajectory before closing it, so the
	// staged buffers were flushed in commit(); episodes closed after that
	// were appended directly.
	if len(os.staged) > 0 {
		return events, fmt.Errorf("semitri: trajectory %s closed with staged episodes", t.ID)
	}
	// Record-level region interpretation over the full trajectory.
	if sp.p.regionAnnotator != nil {
		start = time.Now()
		recordLevel, err := sp.p.regionAnnotator.AnnotateTrajectoryCursor(t, os.cur.region)
		if err != nil {
			return events, fmt.Errorf("semitri: %w", err)
		}
		regionMerged := recordLevel.MergeConsecutive(core.AnnLanduse)
		os.latency.Record(StageLanduseJoin, time.Since(start))
		if err := sp.p.st.PutStructured(regionMerged); err != nil {
			return events, err
		}
	}
	// Point layer over the trajectory's whole stop sequence. This is the one
	// per-trajectory step that stays monolithic even under concurrent
	// ingestion: the HMM decodes the full stop sequence jointly. The merged
	// tuples it annotates were appended to the store as their episodes
	// closed, so the inferred categories merge through the store — under the
	// stripe lock, with the attached query index notified — rather than by
	// mutating the stored tuples in place, which would race with concurrent
	// readers (Save, the query engine).
	var stopEps []*episode.Episode
	var stopIdx []int // position of each stop in the merged interpretation
	for i, ep := range os.episodes {
		if ep.Kind == episode.Stop {
			stopEps = append(stopEps, ep)
			stopIdx = append(stopIdx, i)
		}
	}
	pointTuples, err := sp.p.pointAnnotateStops(t.ID, t.ObjectID, stopEps, os.latency, os.cur)
	if err != nil {
		return events, fmt.Errorf("semitri: %w", err)
	}
	for i, tp := range pointTuples {
		if err := sp.p.st.MergeTupleAnnotations(t.ID, InterpretationMerged, stopIdx[i], tp.Place, tp.Annotations.All()); err != nil {
			return events, fmt.Errorf("semitri: trajectory %s stop %d: %w", t.ID, i, err)
		}
	}
	// Replace the partial trajectory stored at commit time with the final one.
	if err := sp.p.st.PutTrajectory(t); err != nil {
		return events, err
	}
	// Stops/moves count only kept trajectories, as the batch Result does.
	for _, ep := range os.episodes {
		if ep.Kind == episode.Stop {
			sp.stops.Add(1)
		} else {
			sp.moves.Add(1)
		}
	}
	sp.resMu.Lock()
	sp.trajIDs = append(sp.trajIDs, t.ID)
	sp.resMu.Unlock()
	events = append(events, StreamEvent{ObjectID: t.ObjectID, TrajectoryID: t.ID, TrajectoryClosed: true})
	return events, nil
}

// reset clears the per-trajectory state after a close or drop, keeping the
// object's cleaner/segmenter (their history spans trajectories) and its
// closed flag.
func (os *objectStream) reset() {
	os.tracker = nil
	os.id = ""
	os.episodes = nil
	os.staged = nil
	os.stagedEvents = nil
	os.latency = stats.NewLatencyBreakdown()
}

// lookup returns the object's stream state without creating it.
func (sp *StreamProcessor) lookup(objectID string) (*objectStream, bool) {
	sp.reg.RLock()
	defer sp.reg.RUnlock()
	os, ok := sp.objects[objectID]
	return os, ok
}

// Tail returns a provisional view of the object's open trajectory: the
// episodes that would close if its stream ended now. The returned episodes
// may still change (and records inside the cleaner's smoothing window are
// not part of them yet).
func (sp *StreamProcessor) Tail(objectID string) []*episode.Episode {
	os, ok := sp.lookup(objectID)
	if !ok {
		return nil
	}
	os.mu.Lock()
	defer os.mu.Unlock()
	if os.tracker == nil {
		return nil
	}
	return os.tracker.Tail()
}

// Flush force-closes the object's open trajectory (drains the cleaner's
// smoothing window first). Use it when an object's session ends mid-stream;
// note that flushing resets the object's smoothing history, so batch/stream
// parity holds for streams flushed only by Close.
func (sp *StreamProcessor) Flush(objectID string) ([]StreamEvent, error) {
	sp.reg.RLock()
	closed := sp.closed
	os := sp.objects[objectID]
	sp.reg.RUnlock()
	if closed {
		return nil, errStreamClosed
	}
	if os == nil {
		return nil, nil
	}
	os.mu.Lock()
	defer os.mu.Unlock()
	if os.closed {
		return nil, errStreamClosed
	}
	return sp.flushObject(os)
}

// flushObject drains and closes one object's open state. Caller holds os.mu.
func (sp *StreamProcessor) flushObject(os *objectStream) ([]StreamEvent, error) {
	var events []StreamEvent
	for _, cr := range os.cleaner.Flush(os.objectID) {
		evs, err := sp.ingestCleaned(os, cr)
		events = append(events, evs...)
		if err != nil {
			return events, err
		}
	}
	if t := os.segmenter.Flush(os.objectID); t != nil {
		evs, err := sp.closeTrajectory(os, t)
		events = append(events, evs...)
		if err != nil {
			return events, err
		}
	} else {
		os.reset() // open segment dropped (too short) or absent
	}
	return events, nil
}

// Close ends the stream: every object's pending records are drained, every
// open trajectory is closed and annotated, and the accumulated Result — the
// same summary ProcessRecords returns — is produced. The processor accepts
// no further records. Close waits for in-flight Adds to finish; Adds issued
// after Close fail.
func (sp *StreamProcessor) Close() (*Result, error) {
	sp.reg.Lock()
	if sp.closed {
		sp.reg.Unlock()
		return nil, errStreamClosed
	}
	sp.closed = true
	ids := make([]string, 0, len(sp.objects))
	for id := range sp.objects {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	objects := make([]*objectStream, len(ids))
	for i, id := range ids {
		objects[i] = sp.objects[id]
	}
	sp.reg.Unlock()
	// Flush object by object in sorted order — the order the single-lock
	// implementation used. Locking os.mu waits out any Add that was already
	// past the closed check; once flushed, the object's own closed flag
	// rejects stragglers.
	for _, os := range objects {
		os.mu.Lock()
		var err error
		if !os.closed {
			_, err = sp.flushObject(os)
			os.closed = true
		}
		os.mu.Unlock()
		if err != nil {
			return nil, err
		}
	}
	// A closed stream is a durability boundary: force the WAL's pending
	// frames to stable storage so everything this stream ingested survives
	// a crash from here on (no-op for non-durable pipelines).
	if err := sp.p.SyncDurability(); err != nil {
		return nil, err
	}
	// Mirror the batch path's errors so callers porting from ProcessRecords
	// keep their misconfiguration detection.
	result := sp.Result()
	if result.Records == 0 {
		return nil, errors.New("semitri: no records")
	}
	if len(result.TrajectoryIDs) == 0 {
		return nil, errors.New("semitri: no trajectories identified (check segmentation config)")
	}
	return &result, nil
}

// Result returns a snapshot of the running totals (records cleaned, episodes
// and trajectories closed so far).
func (sp *StreamProcessor) Result() Result {
	sp.resMu.Lock()
	ids := append([]string(nil), sp.trajIDs...)
	sp.resMu.Unlock()
	return Result{
		TrajectoryIDs: ids,
		Records:       int(sp.records.Load()),
		Stops:         int(sp.stops.Load()),
		Moves:         int(sp.moves.Load()),
	}
}
