# Mirrors .github/workflows/ci.yml so contributors can run CI locally:
# `make ci` runs exactly what the workflow runs.

GO ?= go

.PHONY: build test race bench lint ci fmt

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Race-detector pass focused on the concurrency surface: the batch/stream
# parity suite (sequential + concurrent-interleaving variants), the fan-in
# driver and the lock-striped store.
race:
	$(GO) test -race -count=1 -run 'TestBatchStreamParity|TestAddBatchConcurrent|TestConcurrent|TestStream' .
	$(GO) test -race -count=1 ./internal/store/

# Full benchmark run (the paper's tables/figures print under -v).
bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# Formatting + vet; fails when any file needs gofmt.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi
	$(GO) vet ./...

fmt:
	gofmt -w .

# What CI runs: build, lint, tests, and a one-iteration bench smoke pass.
ci: build lint test
	$(GO) test -bench=. -benchtime=1x -run='^$$' .
