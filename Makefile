# Mirrors .github/workflows/ci.yml so contributors can run CI locally:
# `make ci` runs exactly what the workflow runs.

GO ?= go

# PR number stamped into the benchmark artifact name (BENCH_$(PR).json).
PR ?= 10

.PHONY: build test race bench bench-smoke lint serve-smoke recovery-smoke coldstore-smoke subscribe-smoke ci fmt

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Race-detector pass focused on the concurrency surface: the batch/stream
# parity suite (sequential + concurrent-interleaving variants), the fan-in
# driver, the lock-striped store, the query engine's concurrent read path
# (queries racing live ingestion — including the parallel executor, forced
# on via QueryParallelism in the relational ingest test), the parallel
# determinism property tests and the durability parity suite (checkpoints
# racing concurrent WAL-logged ingestion).
race:
	$(GO) test -race -count=1 -run 'TestBatchStreamParity|TestAddBatchConcurrent|TestConcurrent|TestStream|TestQuery|TestDurable' .
	$(GO) test -race -count=1 ./internal/store/ ./internal/query/ ./internal/wal/

# Full benchmark run (the paper's tables/figures print under -v). Includes
# the spatial-layer lookup micro-benchmarks (BenchmarkRegionLookup,
# BenchmarkLineCandidates, BenchmarkPointCandidates, BenchmarkLookupBreakdown).
bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# What CI's bench-smoke job runs: every benchmark once, then the whole
# experiment suite at CI scale into the committed perf-trajectory artifact
# (BENCH_$(PR).json in the repo root; override PR= for a different slot).
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .
	$(GO) run ./cmd/semitri-bench -exp all -scale 0.2 -json BENCH_$(PR).json

# Formatting + vet + staticcheck; fails when any file needs gofmt.
# staticcheck is skipped with a notice when the binary is not installed
# (CI installs it, so the lint job always runs the full set).
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

fmt:
	gofmt -w .

# End-to-end probe of the HTTP serving layer (what CI's serve-smoke job runs).
serve-smoke:
	./scripts/serve-smoke.sh

# End-to-end crash-recovery probe: ingest with the WAL on, kill -9 the
# server, restart from the data dir and assert identical counts and query
# answers (what CI's recovery-smoke job runs).
recovery-smoke:
	./scripts/recovery-smoke.sh

# End-to-end tiered-storage probe: ingest under a tight GOMEMLIMIT with
# -storage segments and forced freezes, kill -9, restart from segments+WAL
# alone and assert identical counts and query answers (what CI's
# coldstore-smoke job runs).
coldstore-smoke:
	./scripts/coldstore-smoke.sh

# End-to-end live-subscription probe: serve with throttled ingestion, two
# SSE streams (a geofence standing query + the metrics stream), then assert
# well-formed frames and live/engine parity over HTTP (what CI's
# subscribe-smoke job runs).
subscribe-smoke:
	./scripts/subscribe-smoke.sh

# What CI runs: build, lint, tests, a one-iteration bench smoke pass and
# the serving-layer + crash-recovery + cold-store + live-subscription smokes.
ci: build lint test serve-smoke recovery-smoke coldstore-smoke subscribe-smoke
	$(GO) test -bench=. -benchtime=1x -run='^$$' .
