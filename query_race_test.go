package semitri_test

import (
	"sync"
	"testing"
	"time"

	"semitri"
	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/geo"
	"semitri/internal/gps"
	"semitri/internal/query"
	"semitri/internal/store"
)

// raceQueries is the query mix the concurrent read path is exercised with:
// every access path of the planner (annotation, object-time, spatial,
// trajectory-direct via the store wrapper, full scan) against a live store.
func raceQueries(objects []string, base time.Time) []query.Query {
	stop := episode.Stop
	window := geo.RectAround(geo.Pt(5000, 5000), 2500)
	near := geo.Pt(3000, 3000)
	qs := []query.Query{
		{}, // full scan
		{Kind: &stop},
		{AnnKey: core.AnnPOICategory, AnnValue: "item sale"},
		{AnnKey: core.AnnPOICategory, AnnValue: "feedings", Kind: &stop},
		{AnnKey: core.AnnTransportMode, AnnValue: "walk"},
		{Window: &window},
		{Near: &near, Radius: 2000},
	}
	for _, obj := range objects {
		qs = append(qs,
			query.Query{ObjectID: obj},
			query.Query{ObjectID: obj, From: base, To: base.Add(12 * time.Hour)},
		)
	}
	return qs
}

// verifyMatch asserts one concurrent query result against the quiesced
// store: the ref must resolve (no phantoms), the immutable tuple fields must
// agree with what the query returned (no torn reads), and the predicates the
// query asked for must have held on the returned copy.
func verifyMatch(t *testing.T, st *store.Store, q query.Query, m query.Match) {
	t.Helper()
	final, ok := st.TupleAt(m.Ref.TrajectoryID, m.Ref.Interpretation, m.Ref.Index)
	if !ok {
		t.Fatalf("phantom result: ref %+v not in post-hoc store", m.Ref)
	}
	if final.Kind != m.Tuple.Kind || !final.TimeIn.Equal(m.Tuple.TimeIn) || !final.TimeOut.Equal(m.Tuple.TimeOut) {
		t.Fatalf("torn result at %+v: returned (%v %v %v), store holds (%v %v %v)",
			m.Ref, m.Tuple.Kind, m.Tuple.TimeIn, m.Tuple.TimeOut, final.Kind, final.TimeIn, final.TimeOut)
	}
	if q.Kind != nil && m.Tuple.Kind != *q.Kind {
		t.Fatalf("result at %+v violates kind predicate", m.Ref)
	}
	if q.AnnKey != "" && m.Tuple.Annotations.Value(q.AnnKey) != q.AnnValue {
		t.Fatalf("result at %+v violates annotation predicate %s=%s (got %q)",
			m.Ref, q.AnnKey, q.AnnValue, m.Tuple.Annotations.Value(q.AnnKey))
	}
	if !q.From.IsZero() && m.Tuple.TimeOut.Before(q.From) {
		t.Fatalf("result at %+v violates From", m.Ref)
	}
	if !q.To.IsZero() && m.Tuple.TimeIn.After(q.To) {
		t.Fatalf("result at %+v violates To", m.Ref)
	}
	if q.ObjectID != "" && m.Ref.ObjectID != q.ObjectID {
		t.Fatalf("result at %+v violates object predicate", m.Ref)
	}
	if q.Window != nil && (m.Tuple.Episode == nil || !m.Tuple.Episode.Bounds.Intersects(*q.Window)) {
		t.Fatalf("result at %+v violates window predicate", m.Ref)
	}
	if q.Near != nil && (m.Tuple.Episode == nil || m.Tuple.Episode.Center.DistanceTo(*q.Near) > q.Radius) {
		t.Fatalf("result at %+v violates radius predicate", m.Ref)
	}
}

// TestConcurrentQueryIngest runs the query engine concurrently with
// streaming ingestion of 8 objects (one feeding goroutine per object, two
// querying goroutines hammering every access path) and then verifies every
// result any query ever returned against a brute-force post-hoc scan: no
// phantom refs, no torn tuples, no predicate violations. After quiescence
// the engine must also agree exactly with a brute-force filter of the final
// store. Run under -race this is the read-path counterpart of
// TestBatchStreamParityConcurrent.
func TestConcurrentQueryIngest(t *testing.T) {
	city := newTestCity(t, 1, 3000)
	records := peopleRecords(t, city, 8, 1, 5)
	byObject := objectOrder(records)
	if len(byObject) < 8 {
		t.Fatalf("workload produced %d objects, want >= 8", len(byObject))
	}
	objects := make([]string, 0, len(byObject))
	var base time.Time
	for obj, recs := range byObject {
		objects = append(objects, obj)
		if base.IsZero() || recs[0].Time.Before(base) {
			base = recs[0].Time
		}
	}

	pipeline := newTestPipeline(t, city, semitri.DefaultConfig())
	engine := pipeline.QueryEngine() // attach before ingestion: purely incremental build
	sp := pipeline.NewStream()

	type hit struct {
		q query.Query
		m query.Match
	}
	var (
		hitsMu sync.Mutex
		hits   []hit
	)
	done := make(chan struct{})
	var writers sync.WaitGroup
	for _, recs := range byObject {
		writers.Add(1)
		go func(recs []gps.Record) {
			defer writers.Done()
			for _, r := range recs {
				if _, err := sp.Add(r); err != nil {
					t.Error(err)
					return
				}
			}
		}(recs)
	}
	var readers sync.WaitGroup
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			qs := raceQueries(objects, base)
			saleStops := query.MustBuild(
				query.OnlyStops(),
				query.WithAnnotation(core.AnnPOICategory, "item sale"),
			)
			for i := 0; ; i++ {
				// Exit once ingestion finished — but never before completing
				// one full pass over the query mix: on a slow machine the
				// writers can outrun the readers entirely, and a race test
				// that issued no queries exercised nothing. The ingested
				// episodes are already in the store by then, so the pass
				// still races the engine against the closing trajectories.
				if i >= len(qs) {
					select {
					case <-done:
						return
					default:
					}
				}
				q := qs[(i+g)%len(qs)]
				ms, err := engine.Execute(q)
				if err != nil {
					t.Error(err)
					return
				}
				// Interleave a builder-built query too (the typed
				// replacement of the deprecated store wrapper).
				if _, err := engine.Execute(saleStops); err != nil {
					t.Error(err)
					return
				}
				hitsMu.Lock()
				for _, m := range ms {
					hits = append(hits, hit{q: q, m: m})
				}
				hitsMu.Unlock()
			}
		}(g)
	}
	writers.Wait()
	close(done)
	readers.Wait()
	if _, err := sp.Close(); err != nil {
		t.Fatal(err)
	}

	st := pipeline.Store()
	if len(hits) == 0 {
		t.Fatal("the query goroutines never returned a result; the race test exercised nothing")
	}
	for _, h := range hits {
		verifyMatch(t, st, h.q, h.m)
	}

	// Quiescent completeness: for every query in the mix, the engine's
	// results must now equal a brute-force scan of the final store.
	for _, q := range raceQueries(objects, base) {
		ms, err := engine.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		got := map[store.TupleRef]bool{}
		for _, m := range ms {
			if got[m.Ref] {
				t.Fatalf("duplicate result %+v", m.Ref)
			}
			got[m.Ref] = true
		}
		norm := q
		if norm.Interpretation == "" {
			norm.Interpretation = query.DefaultInterpretation
		}
		want := 0
		st.VisitStructuredTuples(norm.Interpretation, func(ref store.TupleRef, tp core.EpisodeTuple) bool {
			if bruteMatchesQuery(norm, ref, tp) {
				want++
				if !got[ref] {
					t.Fatalf("query %+v: engine missed %+v after quiescence", q, ref)
				}
			}
			return true
		})
		if want != len(got) {
			t.Fatalf("query %+v: engine returned %d results, brute force %d", q, len(got), want)
		}
	}
}

// bruteMatchesQuery re-implements the predicate semantics for the
// completeness check (independent of the engine's own matcher).
func bruteMatchesQuery(q query.Query, ref store.TupleRef, tp core.EpisodeTuple) bool {
	if ref.Interpretation != q.Interpretation {
		return false
	}
	if q.ObjectID != "" && ref.ObjectID != q.ObjectID {
		return false
	}
	if q.TrajectoryID != "" && ref.TrajectoryID != q.TrajectoryID {
		return false
	}
	if q.Kind != nil && tp.Kind != *q.Kind {
		return false
	}
	if !q.From.IsZero() && tp.TimeOut.Before(q.From) {
		return false
	}
	if !q.To.IsZero() && tp.TimeIn.After(q.To) {
		return false
	}
	if q.AnnKey != "" && tp.Annotations.Value(q.AnnKey) != q.AnnValue {
		return false
	}
	if q.Window != nil && (tp.Episode == nil || !tp.Episode.Bounds.Intersects(*q.Window)) {
		return false
	}
	if q.Near != nil && (tp.Episode == nil || tp.Episode.Center.DistanceTo(*q.Near) > q.Radius) {
		return false
	}
	return true
}

// TestQueryEngineLazyAttach checks the other construction order: batch
// ingest first, engine second (backfill), and that the backfilled engine
// answers exactly what the engine-less store's scan path answered.
func TestQueryEngineLazyAttach(t *testing.T) {
	city := newTestCity(t, 1, 3000)
	records := peopleRecords(t, city, 2, 1, 5)
	pipeline := newTestPipeline(t, city, semitri.DefaultConfig())
	if _, err := pipeline.ProcessRecords(records); err != nil {
		t.Fatal(err)
	}
	// Pre-engine there is no engine surface yet; a raw store scan is the
	// baseline the backfill is checked against.
	var before []*core.EpisodeTuple
	pipeline.Store().VisitStructuredTuples("merged", func(_ store.TupleRef, tp core.EpisodeTuple) bool {
		if tp.Kind == episode.Stop && tp.Annotations.Value(core.AnnPOICategory) == "item sale" {
			cp := tp
			before = append(before, &cp)
		}
		return true
	})
	engine := pipeline.QueryEngine()
	if engine != pipeline.QueryEngine() {
		t.Fatal("QueryEngine must be a singleton per pipeline")
	}
	stats := engine.IndexStats()
	if stats.IndexedTuples == 0 || stats.Objects == 0 {
		t.Fatalf("backfill indexed nothing: %+v", stats)
	}
	// The backfilled engine answers the typed equivalent identically.
	ms, err := engine.Execute(query.MustBuild(
		query.OnlyStops(),
		query.InInterpretation("merged"),
		query.WithAnnotation(core.AnnPOICategory, "item sale"),
	))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(before) {
		t.Fatalf("typed query found %d, pre-engine scan %d", len(ms), len(before))
	}
	want := map[string]int{}
	for _, tp := range before {
		want[tp.TimeIn.String()+"|"+tp.Annotations.String()]++
	}
	for _, m := range ms {
		k := m.Tuple.TimeIn.String() + "|" + m.Tuple.Annotations.String()
		if want[k] == 0 {
			t.Fatalf("engine hit %v not in pre-engine scan", m.Tuple)
		}
		want[k]--
	}
}
