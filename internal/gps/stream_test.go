package gps_test

import (
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"semitri/internal/geo"
	"semitri/internal/gps"
)

// syntheticStream builds a messy multi-object stream: random walks with
// stationary phases, implausible outlier jumps, duplicate timestamps,
// signal-loss gaps and a UTC day crossing.
func syntheticStream(seed int64) []gps.Record {
	rng := rand.New(rand.NewSource(seed))
	var out []gps.Record
	base := time.Date(2026, 3, 14, 21, 0, 0, 0, time.UTC)
	for _, obj := range []string{"u1", "u2", "u3"} {
		t := base.Add(time.Duration(rng.Intn(600)) * time.Second)
		pos := geo.Pt(rng.Float64()*5000, rng.Float64()*5000)
		for i := 0; i < 400; i++ {
			switch {
			case rng.Float64() < 0.02:
				// Signal loss: jump far ahead in time.
				t = t.Add(45 * time.Minute)
			case rng.Float64() < 0.02:
				// Outlier: implausible position for this instant.
				out = append(out, gps.Record{
					ObjectID: obj,
					Position: geo.Pt(pos.X+50000, pos.Y+50000),
					Time:     t.Add(10 * time.Second),
				})
			case rng.Float64() < 0.02:
				// Duplicate timestamp.
				out = append(out, gps.Record{ObjectID: obj, Position: pos, Time: t})
			}
			if rng.Float64() < 0.3 {
				// Stationary phase: barely move for a while.
				pos = geo.Pt(pos.X+rng.Float64()*2, pos.Y+rng.Float64()*2)
			} else {
				pos = geo.Pt(pos.X+rng.Float64()*300-100, pos.Y+rng.Float64()*300-100)
			}
			t = t.Add(time.Duration(20+rng.Intn(40)) * time.Second)
			out = append(out, gps.Record{ObjectID: obj, Position: pos, Time: t})
		}
	}
	gps.SortRecords(out)
	return out
}

func streamClean(records []gps.Record, cfg gps.CleaningConfig) []gps.Record {
	sc := gps.NewStreamCleaner(cfg)
	var out []gps.Record
	for _, r := range records {
		out = append(out, sc.Add(r)...)
	}
	out = append(out, sc.FlushAll()...)
	// Emission interleaves objects differently from the sorted batch output
	// (each object's tail drains at flush time); per-object order is what
	// parity guarantees, so normalise before comparing.
	gps.SortRecords(out)
	return out
}

func TestStreamCleanerMatchesBatchClean(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		records := syntheticStream(seed)
		batch := gps.Clean(records, gps.DefaultCleaningConfig())
		stream := streamClean(records, gps.DefaultCleaningConfig())
		if !reflect.DeepEqual(batch, stream) {
			t.Fatalf("seed %d: stream cleaning diverged from batch: %d vs %d records",
				seed, len(batch), len(stream))
		}
	}
}

func TestStreamCleanerNoSmoothing(t *testing.T) {
	cfg := gps.CleaningConfig{MaxSpeed: 70, SmoothingWindow: 0}
	records := syntheticStream(7)
	if got, want := streamClean(records, cfg), gps.Clean(records, cfg); !reflect.DeepEqual(got, want) {
		t.Fatalf("stream cleaning without smoothing diverged: %d vs %d records", len(got), len(want))
	}
}

func TestStreamCleanerOutlierGateDisabled(t *testing.T) {
	// With MaxSpeed <= 0 the batch path keeps every sorted record, duplicate
	// timestamps included; the stream cleaner must match.
	cfg := gps.CleaningConfig{MaxSpeed: 0, SmoothingWindow: 2}
	records := syntheticStream(7)
	if got, want := streamClean(records, cfg), gps.Clean(records, cfg); !reflect.DeepEqual(got, want) {
		t.Fatalf("stream cleaning with disabled outlier gate diverged: %d vs %d records", len(got), len(want))
	}
}

func streamSegment(records []gps.Record, cfg gps.SegmentationConfig, daily bool) []*gps.RawTrajectory {
	ss := gps.NewStreamSegmenter(cfg, daily)
	var out []*gps.RawTrajectory
	for _, r := range records {
		if ev := ss.Add(r); ev.Closed != nil {
			out = append(out, ev.Closed)
		}
	}
	return append(out, ss.FlushAll()...)
}

func trajectoriesEqual(t *testing.T, batch, stream []*gps.RawTrajectory) {
	t.Helper()
	if len(batch) != len(stream) {
		t.Fatalf("trajectory count: batch %d, stream %d", len(batch), len(stream))
	}
	byID := map[string]*gps.RawTrajectory{}
	for _, tr := range stream {
		byID[tr.ID] = tr
	}
	for _, want := range batch {
		got, ok := byID[want.ID]
		if !ok {
			t.Fatalf("stream missing trajectory %s", want.ID)
		}
		if got.ObjectID != want.ObjectID || !reflect.DeepEqual(got.Records, want.Records) {
			t.Fatalf("trajectory %s differs between batch and stream", want.ID)
		}
	}
}

func TestStreamSegmenterMatchesIdentifyTrajectories(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		cleaned := gps.Clean(syntheticStream(seed), gps.DefaultCleaningConfig())
		cfg := gps.DefaultSegmentationConfig()
		trajectoriesEqual(t, gps.IdentifyTrajectories(cleaned, cfg), streamSegment(cleaned, cfg, false))
	}
}

func TestStreamSegmenterMatchesSplitDaily(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		cleaned := gps.Clean(syntheticStream(seed), gps.DefaultCleaningConfig())
		cfg := gps.DefaultSegmentationConfig()
		trajectoriesEqual(t, gps.SplitDaily(cleaned, cfg), streamSegment(cleaned, cfg, true))
	}
}

func TestStreamSegmenterCommitEvent(t *testing.T) {
	cfg := gps.SegmentationConfig{MaxTimeGap: time.Hour, MinRecords: 3}
	ss := gps.NewStreamSegmenter(cfg, false)
	base := time.Date(2026, 3, 14, 12, 0, 0, 0, time.UTC)
	rec := func(i int) gps.Record {
		return gps.Record{ObjectID: "u1", Position: geo.Pt(float64(i), 0), Time: base.Add(time.Duration(i) * time.Minute)}
	}
	if ev := ss.Add(rec(0)); !ev.Opened || ev.Committed || ev.SegmentID != "" {
		t.Fatalf("first record: unexpected event %+v", ev)
	}
	ss.Add(rec(1))
	ev := ss.Add(rec(2))
	if !ev.Committed || ev.SegmentID != "u1-T0000" {
		t.Fatalf("third record should commit the segment, got %+v", ev)
	}
	if _, id, ok := ss.OpenRecords("u1"); !ok || id != "u1-T0000" {
		t.Fatalf("OpenRecords after commit: id %q ok %v", id, ok)
	}
	// A short second segment (2 records) must be dropped without consuming
	// an id, so the third segment is u1-T0001.
	ss.Add(rec(100))
	ss.Add(rec(101))
	ev = ss.Add(rec(300))
	if !ev.ClosedDropped || ev.Closed != nil {
		t.Fatalf("short segment should be dropped, got %+v", ev)
	}
	ss.Add(rec(301))
	if ev := ss.Add(rec(302)); ev.SegmentID != "u1-T0001" {
		t.Fatalf("dropped segment consumed an id: %+v", ev)
	}
}

func TestCSVReaderRoundTrip(t *testing.T) {
	records := gps.Clean(syntheticStream(3), gps.DefaultCleaningConfig())
	var sb strings.Builder
	if err := gps.WriteCSV(&sb, records); err != nil {
		t.Fatal(err)
	}
	cr := gps.NewCSVReader(strings.NewReader(sb.String()))
	var got []gps.Record
	for {
		r, err := cr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, r)
	}
	if len(got) != len(records) {
		t.Fatalf("round trip: %d records, want %d", len(got), len(records))
	}
	for i := range got {
		if got[i].ObjectID != records[i].ObjectID || !got[i].Time.Equal(records[i].Time) {
			t.Fatalf("record %d differs after round trip", i)
		}
	}
}
