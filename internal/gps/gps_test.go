package gps

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"time"

	"semitri/internal/geo"
)

var t0 = time.Date(2010, 3, 15, 8, 0, 0, 0, time.UTC)

func rec(obj string, x, y float64, offsetSec int) Record {
	return Record{ObjectID: obj, Position: geo.Pt(x, y), Time: t0.Add(time.Duration(offsetSec) * time.Second)}
}

func TestTrajectoryBasics(t *testing.T) {
	tr := &RawTrajectory{
		ID:       "u1-T0000",
		ObjectID: "u1",
		Records:  []Record{rec("u1", 0, 0, 0), rec("u1", 30, 40, 10), rec("u1", 30, 40, 20)},
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if tr.Duration() != 20*time.Second {
		t.Fatalf("Duration = %v", tr.Duration())
	}
	if tr.Length() != 50 {
		t.Fatalf("Length = %v", tr.Length())
	}
	b := tr.Bounds()
	if b.Min != geo.Pt(0, 0) || b.Max != geo.Pt(30, 40) {
		t.Fatalf("Bounds = %+v", b)
	}
	if len(tr.Polyline()) != 3 {
		t.Fatalf("Polyline len = %d", len(tr.Polyline()))
	}
	sp := tr.Speeds()
	if len(sp) != 2 || sp[0] != 5 || sp[1] != 0 {
		t.Fatalf("Speeds = %v", sp)
	}
}

func TestTrajectoryValidateErrors(t *testing.T) {
	empty := &RawTrajectory{ID: "x", ObjectID: "u1"}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty trajectory should fail validation")
	}
	wrongObject := &RawTrajectory{ID: "x", ObjectID: "u1", Records: []Record{rec("u2", 0, 0, 0)}}
	if err := wrongObject.Validate(); err == nil {
		t.Fatal("mismatched object id should fail validation")
	}
	backwards := &RawTrajectory{ID: "x", ObjectID: "u1", Records: []Record{rec("u1", 0, 0, 10), rec("u1", 0, 0, 5)}}
	if err := backwards.Validate(); err == nil {
		t.Fatal("backwards timestamps should fail validation")
	}
}

func TestTrajectoryEdgeCases(t *testing.T) {
	single := &RawTrajectory{ID: "s", ObjectID: "u", Records: []Record{rec("u", 1, 1, 0)}}
	if single.Duration() != 0 || single.Length() != 0 || single.Speeds() != nil {
		t.Fatal("single-record trajectory should have zero duration/length and nil speeds")
	}
	if single.Validate() != nil {
		t.Fatal("single record should validate")
	}
}

func TestSortRecords(t *testing.T) {
	records := []Record{rec("b", 0, 0, 5), rec("a", 0, 0, 10), rec("a", 0, 0, 1), rec("b", 0, 0, 0)}
	SortRecords(records)
	if records[0].ObjectID != "a" || records[0].Time != t0.Add(time.Second) {
		t.Fatalf("first record = %+v", records[0])
	}
	if records[3].ObjectID != "b" || records[3].Time != t0.Add(5*time.Second) {
		t.Fatalf("last record = %+v", records[3])
	}
}

func TestRemoveOutliers(t *testing.T) {
	records := []Record{
		rec("u1", 0, 0, 0),
		rec("u1", 10, 0, 1),    // 10 m/s, fine
		rec("u1", 5000, 0, 2),  // ~5 km/s jump, outlier
		rec("u1", 20, 0, 3),    // consistent with last accepted (10,0)
		rec("u1", 20, 0, 3),    // duplicate timestamp, co-located: dropped silently
		rec("u2", 1000, 0, 0),  // different object, always kept first
		rec("u2", 1010, 0, 10), // 1 m/s
	}
	out := RemoveOutliers(records, 70)
	if len(out) != 5 {
		t.Fatalf("RemoveOutliers kept %d records, want 5: %+v", len(out), out)
	}
	for _, r := range out {
		if r.Position.X == 5000 {
			t.Fatal("outlier survived")
		}
	}
	// Disabled gate returns input unchanged.
	if got := RemoveOutliers(records, 0); len(got) != len(records) {
		t.Fatal("maxSpeed<=0 should disable filtering")
	}
	if got := RemoveOutliers(nil, 70); len(got) != 0 {
		t.Fatal("nil input should return empty")
	}
}

func TestSmooth(t *testing.T) {
	records := []Record{
		rec("u1", 0, 0, 0), rec("u1", 10, 0, 1), rec("u1", 100, 0, 2), rec("u1", 30, 0, 3), rec("u1", 40, 0, 4),
	}
	out := Smooth(records, 1)
	if len(out) != len(records) {
		t.Fatalf("Smooth changed record count")
	}
	// Middle record should be pulled toward neighbours: (10+100+30)/3.
	want := (10.0 + 100.0 + 30.0) / 3.0
	if out[2].Position.X != want {
		t.Fatalf("smoothed x = %v want %v", out[2].Position.X, want)
	}
	// Timestamps untouched.
	if !out[2].Time.Equal(records[2].Time) {
		t.Fatal("smoothing must not change timestamps")
	}
	// w=0 is a no-op returning the same values.
	same := Smooth(records, 0)
	if same[2].Position.X != 100 {
		t.Fatal("w=0 should not smooth")
	}
	// Smoothing must not leak across objects.
	mixed := []Record{rec("a", 0, 0, 0), rec("a", 10, 0, 1), rec("b", 1000, 0, 0), rec("b", 1010, 0, 1)}
	sm := Smooth(mixed, 2)
	if sm[0].Position.X > 10 || sm[2].Position.X < 900 {
		t.Fatalf("smoothing leaked across objects: %+v", sm)
	}
}

func TestCleanChain(t *testing.T) {
	records := []Record{
		rec("u1", 0, 0, 0), rec("u1", 5, 0, 1), rec("u1", 9000, 0, 2), rec("u1", 10, 0, 3),
	}
	out := Clean(records, DefaultCleaningConfig())
	for _, r := range out {
		if r.Position.X > 100 {
			t.Fatalf("outlier survived Clean: %+v", r)
		}
	}
	if len(out) != 3 {
		t.Fatalf("Clean kept %d records", len(out))
	}
}

func TestIdentifyTrajectoriesGapSplitting(t *testing.T) {
	cfg := SegmentationConfig{MaxTimeGap: 10 * time.Minute, MaxDistanceGap: 1000, MinRecords: 2}
	var records []Record
	// First bout: 5 records 1s apart.
	for i := 0; i < 5; i++ {
		records = append(records, rec("u1", float64(i)*10, 0, i))
	}
	// Gap of 20 minutes, second bout of 3 records.
	for i := 0; i < 3; i++ {
		records = append(records, rec("u1", 100+float64(i)*10, 0, 1200+i))
	}
	// Spatial jump of 5 km within short time, third bout.
	for i := 0; i < 4; i++ {
		records = append(records, rec("u1", 6000+float64(i)*10, 0, 1210+i))
	}
	trajs := IdentifyTrajectories(records, cfg)
	if len(trajs) != 3 {
		t.Fatalf("got %d trajectories, want 3", len(trajs))
	}
	if len(trajs[0].Records) != 5 || len(trajs[1].Records) != 3 || len(trajs[2].Records) != 4 {
		t.Fatalf("unexpected split sizes: %d %d %d", len(trajs[0].Records), len(trajs[1].Records), len(trajs[2].Records))
	}
	for _, tr := range trajs {
		if err := tr.Validate(); err != nil {
			t.Fatalf("trajectory %s invalid: %v", tr.ID, err)
		}
	}
	// IDs should be unique.
	if trajs[0].ID == trajs[1].ID || trajs[1].ID == trajs[2].ID {
		t.Fatal("trajectory ids are not unique")
	}
}

func TestIdentifyTrajectoriesMinRecordsAndObjects(t *testing.T) {
	cfg := SegmentationConfig{MaxTimeGap: time.Minute, MinRecords: 5}
	var records []Record
	for i := 0; i < 3; i++ { // too short, dropped
		records = append(records, rec("u1", float64(i), 0, i))
	}
	for i := 0; i < 6; i++ {
		records = append(records, rec("u2", float64(i), 0, i))
	}
	trajs := IdentifyTrajectories(records, cfg)
	if len(trajs) != 1 || trajs[0].ObjectID != "u2" {
		t.Fatalf("trajectories = %+v", trajs)
	}
	if got := IdentifyTrajectories(nil, cfg); got != nil {
		t.Fatal("nil input should produce nil")
	}
}

func TestSplitDaily(t *testing.T) {
	cfg := SegmentationConfig{MaxTimeGap: 6 * time.Hour, MinRecords: 2}
	var records []Record
	day1 := time.Date(2010, 3, 15, 9, 0, 0, 0, time.UTC)
	day2 := time.Date(2010, 3, 16, 9, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		records = append(records, Record{ObjectID: "u1", Position: geo.Pt(float64(i), 0), Time: day1.Add(time.Duration(i) * time.Minute)})
	}
	for i := 0; i < 10; i++ {
		records = append(records, Record{ObjectID: "u1", Position: geo.Pt(float64(i), 0), Time: day2.Add(time.Duration(i) * time.Minute)})
	}
	trajs := SplitDaily(records, cfg)
	if len(trajs) != 2 {
		t.Fatalf("SplitDaily produced %d trajectories, want 2", len(trajs))
	}
	if !strings.Contains(trajs[0].ID, "2010-03-15") || !strings.Contains(trajs[1].ID, "2010-03-16") {
		t.Fatalf("daily ids = %q, %q", trajs[0].ID, trajs[1].ID)
	}
	if SplitDaily(nil, cfg) != nil {
		t.Fatal("nil input should produce nil")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var records []Record
	for i := 0; i < 100; i++ {
		records = append(records, Record{
			ObjectID: "taxi-1",
			Position: geo.Pt(rng.Float64()*1000, rng.Float64()*1000),
			Time:     t0.Add(time.Duration(i) * time.Second),
		})
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, records); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if len(back) != len(records) {
		t.Fatalf("round trip length %d != %d", len(back), len(records))
	}
	for i := range back {
		if back[i].ObjectID != records[i].ObjectID || !back[i].Time.Equal(records[i].Time) {
			t.Fatalf("record %d mismatch", i)
		}
		if !back[i].Position.Equal(records[i].Position, 1e-9) {
			t.Fatalf("record %d position mismatch", i)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("empty csv should error")
	}
	if _, err := ReadCSV(strings.NewReader("object,x,y,time\nu1,notanumber,2,2010-01-01T00:00:00Z")); err == nil {
		t.Fatal("bad x should error")
	}
	if _, err := ReadCSV(strings.NewReader("object,x,y,time\nu1,1,bad,2010-01-01T00:00:00Z")); err == nil {
		t.Fatal("bad y should error")
	}
	if _, err := ReadCSV(strings.NewReader("object,x,y,time\nu1,1,2,notatime")); err == nil {
		t.Fatal("bad time should error")
	}
	if _, err := ReadCSV(strings.NewReader("object,x,y,time\nu1,1,2")); err == nil {
		t.Fatal("short row should error")
	}
	// Header only: no records, no error.
	recs, err := ReadCSV(strings.NewReader("object,x,y,time\n"))
	if err != nil || len(recs) != 0 {
		t.Fatalf("header-only csv: %v, %d records", err, len(recs))
	}
}

func TestDefaultConfigs(t *testing.T) {
	c := DefaultCleaningConfig()
	if c.MaxSpeed <= 0 || c.SmoothingWindow <= 0 {
		t.Fatalf("unexpected cleaning defaults: %+v", c)
	}
	s := DefaultSegmentationConfig()
	if s.MaxTimeGap <= 0 || s.MaxDistanceGap <= 0 || s.MinRecords <= 0 {
		t.Fatalf("unexpected segmentation defaults: %+v", s)
	}
}
