package gps

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"semitri/internal/geo"
)

// This file implements the streaming counterparts of the batch preprocessing
// chain: StreamCleaner mirrors Clean (outlier removal + smoothing) and
// StreamSegmenter mirrors IdentifyTrajectories / SplitDaily, one record at a
// time. Both are designed for exact parity with the batch functions: feeding
// the records of a sorted stream through StreamCleaner followed by
// StreamSegmenter (and flushing at the end) yields the same cleaned records
// and the same raw trajectories — same ids, same record contents — as the
// batch chain.

// StreamCleaner incrementally cleans a raw GPS stream: a causal per-object
// speed gate drops outliers (as RemoveOutliers does) and a centred moving
// average of half-width w smooths positions (as Smooth does). Because the
// smoothing window is centred, a record's cleaned form is only final once w
// further records of the same object have been accepted; Add therefore
// returns records with a lag of w, and Flush drains the tail.
//
// A StreamCleaner is not safe for concurrent use; wrap it in the caller's
// lock (the semitri.StreamProcessor does).
type StreamCleaner struct {
	cfg     CleaningConfig
	objects map[string]*cleanerState
}

type cleanerState struct {
	last    Record // last accepted record (outlier gate)
	hasLast bool
	// pending holds accepted records whose smoothed position is not yet
	// final. Raw (unsmoothed) positions are kept; a record is emitted once
	// cfg.SmoothingWindow records follow it in the window.
	pending []Record
	emitted int // records of this object already emitted
}

// NewStreamCleaner returns a cleaner with the given configuration.
func NewStreamCleaner(cfg CleaningConfig) *StreamCleaner {
	return &StreamCleaner{cfg: cfg, objects: map[string]*cleanerState{}}
}

// Add offers one raw record to the cleaner and returns the records (zero or
// one, in the common case) whose cleaned form became final. Records of one
// object must arrive in non-decreasing time order; a record older than the
// last accepted one of its object is dropped, as the batch chain sorts them
// away before cleaning.
func (c *StreamCleaner) Add(r Record) []Record {
	st, ok := c.objects[r.ObjectID]
	if !ok {
		st = &cleanerState{}
		c.objects[r.ObjectID] = st
	}
	if st.hasLast {
		dt := r.Time.Sub(st.last.Time).Seconds()
		if dt < 0 {
			return nil // late record: batch sorting would have moved it earlier
		}
		if c.cfg.MaxSpeed > 0 {
			if dt == 0 {
				return nil // duplicate timestamp, dropped like RemoveOutliers
			}
			if r.Position.DistanceTo(st.last.Position)/dt > c.cfg.MaxSpeed {
				return nil // implausible jump: outlier
			}
		}
	}
	st.last = r
	st.hasLast = true
	st.pending = append(st.pending, r)
	return c.drain(st, false)
}

// drain emits every pending record whose smoothing window is complete (or
// every pending record when final is true).
func (c *StreamCleaner) drain(st *cleanerState, final bool) []Record {
	w := c.cfg.SmoothingWindow
	if w <= 0 {
		out := append([]Record(nil), st.pending...)
		st.emitted += len(st.pending)
		st.pending = st.pending[:0]
		return out
	}
	var out []Record
	for {
		// The first min(emitted, w) pending entries are history kept for the
		// left half of the window; the head record follows them and is final
		// once w records follow it in turn.
		head := st.emitted
		if head > w {
			head = w
		}
		if head >= len(st.pending) {
			break // nothing unemitted
		}
		if !final && len(st.pending)-head-1 < w {
			break
		}
		out = append(out, c.smoothHead(st))
	}
	return out
}

// smoothHead emits pending[0] with its centred moving average applied. The
// left half of the window may reach into already-emitted records, so up to
// 2w+1 records are retained in pending (w emitted-but-still-needed on the
// left, the head, and up to w on the right).
func (c *StreamCleaner) smoothHead(st *cleanerState) Record {
	w := c.cfg.SmoothingWindow
	// Index of the head within pending: the first min(emitted, w) entries are
	// history kept only for the left half of the window.
	head := st.emitted
	if head > w {
		head = w
	}
	lo := head - w
	if lo < 0 {
		lo = 0
	}
	hi := head + w
	if hi >= len(st.pending) {
		hi = len(st.pending) - 1
	}
	var sx, sy float64
	for j := lo; j <= hi; j++ {
		sx += st.pending[j].Position.X
		sy += st.pending[j].Position.Y
	}
	n := float64(hi - lo + 1)
	out := st.pending[head]
	out.Position.X = sx / n
	out.Position.Y = sy / n
	st.emitted++
	// Drop history that the next head's window can no longer reach.
	if head == w {
		st.pending = st.pending[1:]
	}
	return out
}

// Flush finalises the pending records of one object and returns them
// cleaned. The object's smoothing history is reset: parity with one batch
// Clean call holds only when Flush is called once, after the object's stream
// ended.
func (c *StreamCleaner) Flush(objectID string) []Record {
	st, ok := c.objects[objectID]
	if !ok {
		return nil
	}
	out := c.drain(st, true)
	delete(c.objects, objectID)
	return out
}

// FlushAll finalises every object's pending records, in sorted object order.
func (c *StreamCleaner) FlushAll() []Record {
	ids := make([]string, 0, len(c.objects))
	for id := range c.objects {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var out []Record
	for _, id := range ids {
		out = append(out, c.Flush(id)...)
	}
	return out
}

// SegmentEvent describes what happened inside the StreamSegmenter when a
// cleaned record was added.
type SegmentEvent struct {
	// Closed is the previous open segment of the record's object when the
	// record (or a day boundary / time gap / distance gap) closed it and the
	// segment had enough records to be kept. Nil otherwise.
	Closed *RawTrajectory
	// ClosedDropped reports that the previous segment closed but was dropped
	// for having fewer than MinRecords records.
	ClosedDropped bool
	// Opened reports that the record started a new open segment.
	Opened bool
	// Committed reports that the open segment just reached MinRecords and
	// was assigned its final trajectory id: from now on the segment is
	// guaranteed to be kept, and SegmentID names it.
	Committed bool
	// SegmentID is the id of the open segment once committed ("" before).
	SegmentID string
}

// StreamSegmenter incrementally splits a cleaned record stream into raw
// trajectories, reproducing IdentifyTrajectories (daily == false) or
// SplitDaily (daily == true) exactly: same split points, same ids, same
// dropped segments. Records of one object must arrive in time order; objects
// may interleave freely.
type StreamSegmenter struct {
	cfg   SegmentationConfig
	daily bool
	open  map[string]*openSegment
	kept  map[string]int // id-numbering key -> kept trajectory count
}

type openSegment struct {
	records []Record
	day     string // UTC day of the records, when daily splitting
	id      string // assigned once the segment reaches MinRecords
}

// NewStreamSegmenter returns a segmenter. With daily true the stream is
// additionally split at UTC day boundaries and ids follow SplitDaily's
// "object-day-NN" scheme; otherwise ids follow IdentifyTrajectories'
// "object-TNNNN" scheme.
func NewStreamSegmenter(cfg SegmentationConfig, daily bool) *StreamSegmenter {
	return &StreamSegmenter{
		cfg:   cfg,
		daily: daily,
		open:  map[string]*openSegment{},
		kept:  map[string]int{},
	}
}

func (s *StreamSegmenter) idKey(objectID, day string) string {
	if s.daily {
		return objectID + "-" + day
	}
	return objectID
}

func (s *StreamSegmenter) newID(objectID, day string) string {
	key := s.idKey(objectID, day)
	n := s.kept[key]
	if s.daily {
		return fmt.Sprintf("%s-%s-%02d", objectID, day, n)
	}
	return fmt.Sprintf("%s-T%04d", objectID, n)
}

// Add routes one cleaned record. It may first close the object's previous
// segment (time gap, distance gap or day change) and then opens or extends
// the current one; the returned event describes both effects.
func (s *StreamSegmenter) Add(r Record) SegmentEvent {
	var ev SegmentEvent
	day := ""
	if s.daily {
		day = r.Time.UTC().Format("2006-01-02")
	}
	seg, ok := s.open[r.ObjectID]
	if ok {
		prev := seg.records[len(seg.records)-1]
		timeGap := s.cfg.MaxTimeGap > 0 && r.Time.Sub(prev.Time) > s.cfg.MaxTimeGap
		distGap := s.cfg.MaxDistanceGap > 0 && r.Position.DistanceTo(prev.Position) > s.cfg.MaxDistanceGap
		dayGap := s.daily && day != seg.day
		if timeGap || distGap || dayGap {
			ev.Closed, ev.ClosedDropped = s.close(r.ObjectID)
			seg = nil
			ok = false
		}
	}
	if !ok {
		seg = &openSegment{day: day}
		s.open[r.ObjectID] = seg
		ev.Opened = true
	}
	seg.records = append(seg.records, r)
	if seg.id == "" && len(seg.records) >= s.cfg.MinRecords {
		seg.id = s.newID(r.ObjectID, seg.day)
		s.kept[s.idKey(r.ObjectID, seg.day)]++
		ev.Committed = true
	}
	ev.SegmentID = seg.id
	return ev
}

// close finishes the open segment of an object. It returns the kept
// trajectory, or (nil, true) when the segment was dropped for being too
// short, or (nil, false) when no segment was open.
func (s *StreamSegmenter) close(objectID string) (*RawTrajectory, bool) {
	seg, ok := s.open[objectID]
	if !ok {
		return nil, false
	}
	delete(s.open, objectID)
	if seg.id == "" {
		return nil, len(seg.records) > 0
	}
	return &RawTrajectory{ID: seg.id, ObjectID: objectID, Records: seg.records}, false
}

// OpenRecords returns the records of the object's open segment (the live
// slice: callers must not retain it across Add calls) and the segment id
// ("" while uncommitted). ok is false when no segment is open.
func (s *StreamSegmenter) OpenRecords(objectID string) (records []Record, id string, ok bool) {
	seg, found := s.open[objectID]
	if !found {
		return nil, "", false
	}
	return seg.records, seg.id, true
}

// Flush closes the object's open segment, returning the kept trajectory (or
// nil when nothing was open or the segment was dropped).
func (s *StreamSegmenter) Flush(objectID string) *RawTrajectory {
	t, _ := s.close(objectID)
	return t
}

// FlushAll closes every open segment in sorted object order and returns the
// kept trajectories.
func (s *StreamSegmenter) FlushAll() []*RawTrajectory {
	ids := make([]string, 0, len(s.open))
	for id := range s.open {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var out []*RawTrajectory
	for _, id := range ids {
		if t := s.Flush(id); t != nil {
			out = append(out, t)
		}
	}
	return out
}

// CSVReader reads GPS records from the CSV format of WriteCSV one row at a
// time, for streaming ingestion of files larger than memory.
type CSVReader struct {
	cr     *csv.Reader
	header bool
	row    int
}

// NewCSVReader wraps r. The first row must be the "object,x,y,time" header.
func NewCSVReader(r io.Reader) *CSVReader {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	return &CSVReader{cr: cr}
}

// Next returns the next record, or io.EOF when the input is exhausted.
func (r *CSVReader) Next() (Record, error) {
	for {
		row, err := r.cr.Read()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return Record{}, io.EOF
			}
			return Record{}, fmt.Errorf("gps: row %d: %w", r.row+1, err)
		}
		r.row++
		if !r.header {
			r.header = true
			continue // skip the header row
		}
		x, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return Record{}, fmt.Errorf("gps: row %d x: %w", r.row, err)
		}
		y, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			return Record{}, fmt.Errorf("gps: row %d y: %w", r.row, err)
		}
		ts, err := time.Parse(csvTimeLayout, row[3])
		if err != nil {
			return Record{}, fmt.Errorf("gps: row %d time: %w", r.row, err)
		}
		return Record{ObjectID: row[0], Position: geo.Pt(x, y), Time: ts}, nil
	}
}
