// Package gps models raw GPS streams and implements the preprocessing part
// of SeMiTri's Trajectory Computation Layer: outlier removal, smoothing of
// random errors and identification of raw trajectories (finite, meaningful
// subsequences of the stream), as described in §3.3 of the paper and in the
// companion work [30].
package gps

import (
	"bufio"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"semitri/internal/geo"
)

// Record is one spatio-temporal point (x, y, t) of a moving object's stream
// (Definition 1 in the paper uses (longitude, latitude, t); the synthetic
// workloads use a planar metric frame, and the geo.Projection bridges both).
type Record struct {
	ObjectID string    // identifier of the moving object (taxi id, user id ...)
	Position geo.Point // location in the working frame (metres) or lon/lat
	Time     time.Time // timestamp of the fix
}

// RawTrajectory is a finite sequence of records of a single moving object,
// the unit on which the annotation layers operate (Definition 1).
type RawTrajectory struct {
	ID       string
	ObjectID string
	Records  []Record
}

// Duration returns the time spanned by the trajectory.
func (t *RawTrajectory) Duration() time.Duration {
	if len(t.Records) < 2 {
		return 0
	}
	return t.Records[len(t.Records)-1].Time.Sub(t.Records[0].Time)
}

// Length returns the travelled path length in the planar frame.
func (t *RawTrajectory) Length() float64 {
	var total float64
	for i := 1; i < len(t.Records); i++ {
		total += t.Records[i-1].Position.DistanceTo(t.Records[i].Position)
	}
	return total
}

// Bounds returns the spatial bounding rectangle of the trajectory.
func (t *RawTrajectory) Bounds() geo.Rect {
	r := geo.EmptyRect()
	for _, rec := range t.Records {
		r = r.Union(geo.Rect{Min: rec.Position, Max: rec.Position})
	}
	return r
}

// Polyline returns the geometric shape of the trajectory.
func (t *RawTrajectory) Polyline() geo.Polyline {
	pl := make(geo.Polyline, len(t.Records))
	for i, rec := range t.Records {
		pl[i] = rec.Position
	}
	return pl
}

// Speeds returns the instantaneous speed (m/s) between consecutive records;
// the result has len(Records)-1 elements (empty for fewer than two records).
func (t *RawTrajectory) Speeds() []float64 {
	if len(t.Records) < 2 {
		return nil
	}
	out := make([]float64, len(t.Records)-1)
	for i := 1; i < len(t.Records); i++ {
		dt := t.Records[i].Time.Sub(t.Records[i-1].Time).Seconds()
		if dt <= 0 {
			out[i-1] = 0
			continue
		}
		out[i-1] = t.Records[i].Position.DistanceTo(t.Records[i-1].Position) / dt
	}
	return out
}

// Validate checks the structural invariants of a raw trajectory: at least
// one record, a single object id and non-decreasing timestamps.
func (t *RawTrajectory) Validate() error {
	if len(t.Records) == 0 {
		return errors.New("gps: trajectory has no records")
	}
	for i, rec := range t.Records {
		if rec.ObjectID != t.ObjectID {
			return fmt.Errorf("gps: record %d belongs to object %q, trajectory to %q", i, rec.ObjectID, t.ObjectID)
		}
		if i > 0 && rec.Time.Before(t.Records[i-1].Time) {
			return fmt.Errorf("gps: record %d timestamp goes backwards", i)
		}
	}
	return nil
}

// SortRecords orders records by object id and then by time; preprocessing
// assumes this ordering.
func SortRecords(records []Record) {
	sort.SliceStable(records, func(i, j int) bool {
		if records[i].ObjectID != records[j].ObjectID {
			return records[i].ObjectID < records[j].ObjectID
		}
		return records[i].Time.Before(records[j].Time)
	})
}

// CleaningConfig controls outlier removal and smoothing.
type CleaningConfig struct {
	// MaxSpeed is the physically plausible maximum speed in m/s. A record
	// requiring a faster jump from its predecessor is dropped as an outlier.
	MaxSpeed float64
	// SmoothingWindow is the half-width of the moving-average window applied
	// to positions (0 disables smoothing). The window is in number of records.
	SmoothingWindow int
}

// DefaultCleaningConfig returns the configuration used by the experiments:
// 70 m/s (252 km/h) speed gate and a +-2 record moving average.
func DefaultCleaningConfig() CleaningConfig {
	return CleaningConfig{MaxSpeed: 70, SmoothingWindow: 2}
}

// RemoveOutliers drops records that imply an implausible speed relative to
// the last accepted record of the same object. Records must be sorted.
func RemoveOutliers(records []Record, maxSpeed float64) []Record {
	if maxSpeed <= 0 || len(records) == 0 {
		return records
	}
	out := make([]Record, 0, len(records))
	var lastByObject = map[string]Record{}
	for _, r := range records {
		last, seen := lastByObject[r.ObjectID]
		if !seen {
			out = append(out, r)
			lastByObject[r.ObjectID] = r
			continue
		}
		dt := r.Time.Sub(last.Time).Seconds()
		if dt <= 0 {
			// Duplicate or out-of-order timestamp: keep only if co-located.
			if r.Position.DistanceTo(last.Position) < 1 {
				continue
			}
			continue
		}
		speed := r.Position.DistanceTo(last.Position) / dt
		if speed > maxSpeed {
			continue
		}
		out = append(out, r)
		lastByObject[r.ObjectID] = r
	}
	return out
}

// Smooth applies a centred moving average of half-width w to the positions
// of each object's records (timestamps are untouched). Records must be
// sorted by object and time.
func Smooth(records []Record, w int) []Record {
	if w <= 0 || len(records) == 0 {
		return records
	}
	out := make([]Record, len(records))
	copy(out, records)
	// Process runs of the same object.
	start := 0
	for start < len(records) {
		end := start
		for end < len(records) && records[end].ObjectID == records[start].ObjectID {
			end++
		}
		run := records[start:end]
		for i := range run {
			lo := i - w
			if lo < 0 {
				lo = 0
			}
			hi := i + w
			if hi >= len(run) {
				hi = len(run) - 1
			}
			var sx, sy float64
			for j := lo; j <= hi; j++ {
				sx += run[j].Position.X
				sy += run[j].Position.Y
			}
			n := float64(hi - lo + 1)
			out[start+i].Position = geo.Pt(sx/n, sy/n)
		}
		start = end
	}
	return out
}

// Clean runs the full preprocessing chain (outlier removal then smoothing).
func Clean(records []Record, cfg CleaningConfig) []Record {
	cleaned := RemoveOutliers(records, cfg.MaxSpeed)
	return Smooth(cleaned, cfg.SmoothingWindow)
}

// SegmentationConfig controls how the record stream of one object is split
// into raw trajectories (the "trajectory identification step" of §3.1).
type SegmentationConfig struct {
	// MaxTimeGap splits the stream whenever two consecutive records are
	// further apart in time (signal loss, battery outage, device off).
	MaxTimeGap time.Duration
	// MaxDistanceGap splits whenever two consecutive records are further
	// apart in space than this many metres (teleport due to data gaps).
	MaxDistanceGap float64
	// MinRecords drops trajectories with fewer records than this.
	MinRecords int
}

// DefaultSegmentationConfig mirrors the daily-trajectory segmentation used
// in the paper's experiments: split on gaps of more than 30 minutes or 5 km,
// keep trajectories with at least 10 records.
func DefaultSegmentationConfig() SegmentationConfig {
	return SegmentationConfig{
		MaxTimeGap:     30 * time.Minute,
		MaxDistanceGap: 5000,
		MinRecords:     10,
	}
}

// IdentifyTrajectories splits a cleaned, sorted record stream into raw
// trajectories per object according to the segmentation configuration.
func IdentifyTrajectories(records []Record, cfg SegmentationConfig) []*RawTrajectory {
	if len(records) == 0 {
		return nil
	}
	var out []*RawTrajectory
	flush := func(objectID string, recs []Record) {
		if len(recs) < cfg.MinRecords || len(recs) == 0 {
			return
		}
		id := fmt.Sprintf("%s-T%04d", objectID, countFor(out, objectID))
		tr := &RawTrajectory{ID: id, ObjectID: objectID, Records: append([]Record(nil), recs...)}
		out = append(out, tr)
	}
	var cur []Record
	for i, r := range records {
		if len(cur) == 0 {
			cur = append(cur, r)
			continue
		}
		prev := cur[len(cur)-1]
		newObject := r.ObjectID != prev.ObjectID
		timeGap := cfg.MaxTimeGap > 0 && r.Time.Sub(prev.Time) > cfg.MaxTimeGap
		distGap := cfg.MaxDistanceGap > 0 && r.Position.DistanceTo(prev.Position) > cfg.MaxDistanceGap
		if newObject || timeGap || distGap {
			flush(prev.ObjectID, cur)
			cur = cur[:0]
		}
		cur = append(cur, r)
		_ = i
	}
	if len(cur) > 0 {
		flush(cur[0].ObjectID, cur)
	}
	return out
}

func countFor(trajectories []*RawTrajectory, objectID string) int {
	n := 0
	for _, t := range trajectories {
		if t.ObjectID == objectID {
			n++
		}
	}
	return n
}

// SplitDaily splits a record stream into per-day trajectories (the "daily
// trajectory" unit used by Table 2 and Figs. 12-14) in the UTC day of the
// record timestamps, after the usual gap-based segmentation.
func SplitDaily(records []Record, cfg SegmentationConfig) []*RawTrajectory {
	if len(records) == 0 {
		return nil
	}
	// Group by (object, day) first, then segment within the group.
	type key struct {
		object string
		day    string
	}
	groups := map[key][]Record{}
	var order []key
	for _, r := range records {
		k := key{r.ObjectID, r.Time.UTC().Format("2006-01-02")}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], r)
	}
	var out []*RawTrajectory
	for _, k := range order {
		for _, t := range IdentifyTrajectories(groups[k], cfg) {
			t.ID = fmt.Sprintf("%s-%s-%02d", k.object, k.day, countDayTrajectories(out, k.object, k.day))
			out = append(out, t)
		}
	}
	return out
}

func countDayTrajectories(trajectories []*RawTrajectory, object, day string) int {
	n := 0
	prefix := object + "-" + day
	for _, t := range trajectories {
		if len(t.ID) >= len(prefix) && t.ID[:len(prefix)] == prefix {
			n++
		}
	}
	return n
}

// csvTimeLayout is the timestamp format used by the CSV codec.
const csvTimeLayout = time.RFC3339

// WriteCSV writes records as CSV rows "object,x,y,timestamp".
func WriteCSV(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	if err := cw.Write([]string{"object", "x", "y", "time"}); err != nil {
		return err
	}
	for _, r := range records {
		row := []string{
			r.ObjectID,
			strconv.FormatFloat(r.Position.X, 'f', -1, 64),
			strconv.FormatFloat(r.Position.Y, 'f', -1, 64),
			r.Time.UTC().Format(csvTimeLayout),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCSV parses records written by WriteCSV (header required).
func ReadCSV(r io.Reader) ([]Record, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("gps: reading csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, errors.New("gps: empty csv")
	}
	out := make([]Record, 0, len(rows)-1)
	for i, row := range rows {
		if i == 0 {
			continue // header
		}
		if len(row) != 4 {
			return nil, fmt.Errorf("gps: row %d has %d columns, want 4", i, len(row))
		}
		x, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("gps: row %d x: %w", i, err)
		}
		y, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			return nil, fmt.Errorf("gps: row %d y: %w", i, err)
		}
		ts, err := time.Parse(csvTimeLayout, row[3])
		if err != nil {
			return nil, fmt.Errorf("gps: row %d time: %w", i, err)
		}
		out = append(out, Record{ObjectID: row[0], Position: geo.Pt(x, y), Time: ts})
	}
	return out, nil
}
