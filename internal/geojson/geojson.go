// Package geojson exports trajectories, episodes and structured semantic
// trajectories as GeoJSON FeatureCollections. It replaces the paper's web
// visualisation interface ([31], Apache/Tomcat + Google Earth KML) with a
// dependency-free exporter whose output can be dropped into any modern map
// viewer; cmd/semitri uses it when asked to dump visualisable output.
//
// The encoder works in the planar frame by default; pass a *geo.Projection
// to emit real WGS-84 coordinates for data that was ingested from lon/lat.
package geojson

import (
	"encoding/json"
	"fmt"

	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/geo"
	"semitri/internal/gps"
)

// Feature is a GeoJSON feature with a geometry and free-form properties.
type Feature struct {
	Type       string                 `json:"type"`
	Geometry   Geometry               `json:"geometry"`
	Properties map[string]interface{} `json:"properties,omitempty"`
}

// Geometry is a GeoJSON geometry (Point or LineString or Polygon).
type Geometry struct {
	Type        string      `json:"type"`
	Coordinates interface{} `json:"coordinates"`
}

// FeatureCollection is a GeoJSON feature collection.
type FeatureCollection struct {
	Type     string    `json:"type"`
	Features []Feature `json:"features"`
}

// NewFeatureCollection returns an empty collection.
func NewFeatureCollection() *FeatureCollection {
	return &FeatureCollection{Type: "FeatureCollection"}
}

// Add appends a feature to the collection.
func (fc *FeatureCollection) Add(f Feature) { fc.Features = append(fc.Features, f) }

// Len returns the number of features.
func (fc *FeatureCollection) Len() int { return len(fc.Features) }

// MarshalIndent renders the collection as pretty-printed JSON.
func (fc *FeatureCollection) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(fc, "", " ")
}

// coordinate converts a planar point to a GeoJSON coordinate pair, applying
// the optional projection back to (lon, lat).
func coordinate(p geo.Point, proj *geo.Projection) []float64 {
	if proj != nil {
		ll := proj.ToGeographic(p)
		return []float64{ll.X, ll.Y}
	}
	return []float64{p.X, p.Y}
}

// PointFeature builds a Point feature.
func PointFeature(p geo.Point, proj *geo.Projection, props map[string]interface{}) Feature {
	return Feature{
		Type:       "Feature",
		Geometry:   Geometry{Type: "Point", Coordinates: coordinate(p, proj)},
		Properties: props,
	}
}

// LineFeature builds a LineString feature from a polyline.
func LineFeature(pl geo.Polyline, proj *geo.Projection, props map[string]interface{}) Feature {
	coords := make([][]float64, len(pl))
	for i, p := range pl {
		coords[i] = coordinate(p, proj)
	}
	return Feature{
		Type:       "Feature",
		Geometry:   Geometry{Type: "LineString", Coordinates: coords},
		Properties: props,
	}
}

// RectFeature builds a Polygon feature from a rectangle.
func RectFeature(r geo.Rect, proj *geo.Projection, props map[string]interface{}) Feature {
	ring := [][]float64{
		coordinate(r.Min, proj),
		coordinate(geo.Pt(r.Max.X, r.Min.Y), proj),
		coordinate(r.Max, proj),
		coordinate(geo.Pt(r.Min.X, r.Max.Y), proj),
		coordinate(r.Min, proj),
	}
	return Feature{
		Type:       "Feature",
		Geometry:   Geometry{Type: "Polygon", Coordinates: [][][]float64{ring}},
		Properties: props,
	}
}

// Trajectory exports a raw trajectory as a LineString feature.
func Trajectory(t *gps.RawTrajectory, proj *geo.Projection) Feature {
	return LineFeature(t.Polyline(), proj, map[string]interface{}{
		"kind":      "raw-trajectory",
		"id":        t.ID,
		"object":    t.ObjectID,
		"records":   len(t.Records),
		"length_m":  t.Length(),
		"starts_at": t.Records[0].Time,
		"ends_at":   t.Records[len(t.Records)-1].Time,
	})
}

// Episodes exports the stop/move episodes of a trajectory: stops become
// Point features at the episode centre, moves become LineString features
// over the covered records.
func Episodes(t *gps.RawTrajectory, eps []*episode.Episode, proj *geo.Projection) *FeatureCollection {
	fc := NewFeatureCollection()
	for i, ep := range eps {
		props := map[string]interface{}{
			"kind":     ep.Kind.String(),
			"index":    i,
			"start":    ep.Start,
			"end":      ep.End,
			"records":  ep.RecordCount,
			"avgSpeed": ep.AvgSpeed,
		}
		if ep.Kind == episode.Stop {
			fc.Add(PointFeature(ep.Center, proj, props))
			continue
		}
		recs := ep.Records(t)
		pl := make(geo.Polyline, len(recs))
		for j, r := range recs {
			pl[j] = r.Position
		}
		fc.Add(LineFeature(pl, proj, props))
	}
	return fc
}

// Structured exports a structured semantic trajectory: every tuple becomes a
// feature (a Point at the place centre for stops, the place extent outline
// for moves) carrying the tuple's annotations as properties.
func Structured(st *core.StructuredTrajectory, proj *geo.Projection) *FeatureCollection {
	fc := NewFeatureCollection()
	for i, tp := range st.Tuples {
		props := map[string]interface{}{
			"kind":           tp.Kind.String(),
			"index":          i,
			"trajectory":     st.ID,
			"interpretation": st.Interpretation,
			"time_in":        tp.TimeIn,
			"time_out":       tp.TimeOut,
		}
		if tp.Place != nil {
			props["place_id"] = tp.Place.ID
			props["place_name"] = tp.Place.Name
			props["place_category"] = tp.Place.Category
		}
		for _, a := range tp.Annotations.All() {
			props["ann_"+a.Key] = a.Value
		}
		var extent geo.Rect
		if tp.Place != nil {
			extent = tp.Place.Extent
		}
		switch {
		case tp.Kind == episode.Stop && tp.Place != nil:
			fc.Add(PointFeature(extent.Center(), proj, props))
		case tp.Kind == episode.Stop && tp.Episode != nil:
			fc.Add(PointFeature(tp.Episode.Center, proj, props))
		case tp.Place != nil && !extent.IsEmpty():
			fc.Add(RectFeature(extent, proj, props))
		case tp.Episode != nil:
			fc.Add(PointFeature(tp.Episode.Center, proj, props))
		default:
			// A tuple with neither a place nor an episode has no geometry;
			// it is still exported as a null-island point so no information
			// silently disappears from the export.
			props["no_geometry"] = true
			fc.Add(PointFeature(geo.Pt(0, 0), proj, props))
		}
	}
	return fc
}

// Validate performs a light structural check on a collection (useful in
// tests and before writing files): types are set and coordinates are finite.
func (fc *FeatureCollection) Validate() error {
	if fc.Type != "FeatureCollection" {
		return fmt.Errorf("geojson: collection type %q", fc.Type)
	}
	for i, f := range fc.Features {
		if f.Type != "Feature" {
			return fmt.Errorf("geojson: feature %d type %q", i, f.Type)
		}
		switch f.Geometry.Type {
		case "Point", "LineString", "Polygon":
		default:
			return fmt.Errorf("geojson: feature %d geometry type %q", i, f.Geometry.Type)
		}
		if f.Geometry.Coordinates == nil {
			return fmt.Errorf("geojson: feature %d has no coordinates", i)
		}
	}
	return nil
}
