package geojson

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/geo"
	"semitri/internal/gps"
)

var t0 = time.Date(2010, 3, 15, 8, 0, 0, 0, time.UTC)

func sampleTrajectory() *gps.RawTrajectory {
	recs := make([]gps.Record, 10)
	for i := range recs {
		recs[i] = gps.Record{ObjectID: "u1", Position: geo.Pt(float64(i)*10, 5), Time: t0.Add(time.Duration(i) * time.Second)}
	}
	return &gps.RawTrajectory{ID: "u1-T0", ObjectID: "u1", Records: recs}
}

func TestPointLineRectFeatures(t *testing.T) {
	p := PointFeature(geo.Pt(3, 4), nil, map[string]interface{}{"name": "stop"})
	if p.Geometry.Type != "Point" {
		t.Fatalf("point geometry = %q", p.Geometry.Type)
	}
	coords := p.Geometry.Coordinates.([]float64)
	if coords[0] != 3 || coords[1] != 4 {
		t.Fatalf("point coords = %v", coords)
	}
	l := LineFeature(geo.Polyline{geo.Pt(0, 0), geo.Pt(1, 1)}, nil, nil)
	if l.Geometry.Type != "LineString" || len(l.Geometry.Coordinates.([][]float64)) != 2 {
		t.Fatalf("line feature = %+v", l)
	}
	r := RectFeature(geo.NewRect(geo.Pt(0, 0), geo.Pt(2, 2)), nil, nil)
	ring := r.Geometry.Coordinates.([][][]float64)
	if r.Geometry.Type != "Polygon" || len(ring[0]) != 5 {
		t.Fatalf("rect feature = %+v", r)
	}
	if ring[0][0][0] != ring[0][4][0] || ring[0][0][1] != ring[0][4][1] {
		t.Fatal("polygon ring must be closed")
	}
}

func TestProjectionApplied(t *testing.T) {
	proj := geo.NewProjection(6.63, 46.52)
	plane := proj.ToPlane(geo.Pt(6.64, 46.53))
	f := PointFeature(plane, proj, nil)
	coords := f.Geometry.Coordinates.([]float64)
	if coords[0] < 6.639 || coords[0] > 6.641 || coords[1] < 46.529 || coords[1] > 46.531 {
		t.Fatalf("projected coords = %v, want ~ (6.64, 46.53)", coords)
	}
}

func TestTrajectoryExport(t *testing.T) {
	tr := sampleTrajectory()
	f := Trajectory(tr, nil)
	if f.Geometry.Type != "LineString" {
		t.Fatalf("geometry = %q", f.Geometry.Type)
	}
	if f.Properties["id"] != "u1-T0" || f.Properties["records"].(int) != 10 {
		t.Fatalf("properties = %+v", f.Properties)
	}
}

func TestEpisodesExport(t *testing.T) {
	tr := sampleTrajectory()
	eps := []*episode.Episode{
		{TrajectoryID: tr.ID, Kind: episode.Stop, StartIdx: 0, EndIdx: 2, Start: t0, End: t0.Add(2 * time.Second),
			Center: geo.Pt(10, 5), RecordCount: 3},
		{TrajectoryID: tr.ID, Kind: episode.Move, StartIdx: 3, EndIdx: 9, Start: t0.Add(3 * time.Second), End: t0.Add(9 * time.Second),
			RecordCount: 7},
	}
	fc := Episodes(tr, eps, nil)
	if fc.Len() != 2 {
		t.Fatalf("features = %d", fc.Len())
	}
	if fc.Features[0].Geometry.Type != "Point" || fc.Features[1].Geometry.Type != "LineString" {
		t.Fatalf("geometry types = %q, %q", fc.Features[0].Geometry.Type, fc.Features[1].Geometry.Type)
	}
	if err := fc.Validate(); err != nil {
		t.Fatal(err)
	}
	if fc.Features[0].Properties["kind"] != "stop" {
		t.Fatalf("stop properties = %+v", fc.Features[0].Properties)
	}
	line := fc.Features[1].Geometry.Coordinates.([][]float64)
	if len(line) != 7 {
		t.Fatalf("move line has %d points", len(line))
	}
}

func TestStructuredExport(t *testing.T) {
	st := &core.StructuredTrajectory{ID: "u1-T0", ObjectID: "u1", Interpretation: "merged"}
	stop := &core.EpisodeTuple{
		Kind:    episode.Stop,
		Place:   &core.Place{ID: "poi-9", Kind: core.PointPlace, Name: "mall", Extent: geo.RectAround(geo.Pt(50, 50), 10)},
		TimeIn:  t0,
		TimeOut: t0.Add(time.Hour),
	}
	stop.Annotations.Add(core.Annotation{Key: core.AnnPOICategory, Value: "item sale", Confidence: 0.9})
	move := &core.EpisodeTuple{
		Kind:    episode.Move,
		Place:   &core.Place{ID: "seg-3", Kind: core.LinePlace, Name: "main", Extent: geo.NewRect(geo.Pt(0, 0), geo.Pt(100, 10))},
		TimeIn:  t0.Add(time.Hour),
		TimeOut: t0.Add(2 * time.Hour),
	}
	bare := &core.EpisodeTuple{Kind: episode.Move, TimeIn: t0.Add(2 * time.Hour), TimeOut: t0.Add(3 * time.Hour)}
	stopNoPlace := &core.EpisodeTuple{
		Kind:    episode.Stop,
		Episode: &episode.Episode{Center: geo.Pt(7, 7)},
		TimeIn:  t0.Add(3 * time.Hour),
		TimeOut: t0.Add(4 * time.Hour),
	}
	st.Tuples = []*core.EpisodeTuple{stop, move, bare, stopNoPlace}
	fc := Structured(st, nil)
	if fc.Len() != 4 {
		t.Fatalf("features = %d", fc.Len())
	}
	if err := fc.Validate(); err != nil {
		t.Fatal(err)
	}
	if fc.Features[0].Geometry.Type != "Point" || fc.Features[1].Geometry.Type != "Polygon" {
		t.Fatalf("types = %q, %q", fc.Features[0].Geometry.Type, fc.Features[1].Geometry.Type)
	}
	if fc.Features[0].Properties["ann_poi_category"] != "item sale" {
		t.Fatalf("annotation property missing: %+v", fc.Features[0].Properties)
	}
	if fc.Features[2].Properties["no_geometry"] != true {
		t.Fatal("bare tuple should be flagged as having no geometry")
	}
	if fc.Features[3].Geometry.Type != "Point" {
		t.Fatal("stop without place should fall back to the episode centre")
	}
	// Output must be valid JSON and mention the place name.
	data, err := fc.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(data) {
		t.Fatal("output is not valid JSON")
	}
	if !strings.Contains(string(data), `"mall"`) {
		t.Fatal("place name missing from output")
	}
}

func TestValidateErrors(t *testing.T) {
	fc := &FeatureCollection{Type: "wrong"}
	if fc.Validate() == nil {
		t.Fatal("wrong collection type should fail")
	}
	fc = NewFeatureCollection()
	fc.Add(Feature{Type: "bogus", Geometry: Geometry{Type: "Point", Coordinates: []float64{0, 0}}})
	if fc.Validate() == nil {
		t.Fatal("wrong feature type should fail")
	}
	fc = NewFeatureCollection()
	fc.Add(Feature{Type: "Feature", Geometry: Geometry{Type: "Circle", Coordinates: []float64{0, 0}}})
	if fc.Validate() == nil {
		t.Fatal("unknown geometry type should fail")
	}
	fc = NewFeatureCollection()
	fc.Add(Feature{Type: "Feature", Geometry: Geometry{Type: "Point"}})
	if fc.Validate() == nil {
		t.Fatal("missing coordinates should fail")
	}
	if NewFeatureCollection().Validate() != nil {
		t.Fatal("empty collection should be valid")
	}
}
