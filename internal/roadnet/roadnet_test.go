package roadnet

import (
	"math"
	"strings"
	"testing"

	"semitri/internal/geo"
)

func TestClassStringsAndSpeeds(t *testing.T) {
	classes := []Class{Footpath, Residential, Arterial, Highway, MetroRail}
	names := map[Class]string{
		Footpath: "footpath", Residential: "residential", Arterial: "arterial",
		Highway: "highway", MetroRail: "metro",
	}
	for _, c := range classes {
		if c.String() != names[c] {
			t.Fatalf("String(%d) = %q", c, c.String())
		}
		if c.TypicalSpeed() <= 0 {
			t.Fatalf("TypicalSpeed(%v) = %v", c, c.TypicalSpeed())
		}
	}
	if Footpath.TypicalSpeed() >= Highway.TypicalSpeed() {
		t.Fatal("footpath should be slower than highway")
	}
	if !strings.HasPrefix(Class(99).String(), "class(") {
		t.Fatalf("unknown class string = %q", Class(99).String())
	}
	if Class(99).TypicalSpeed() <= 0 {
		t.Fatal("unknown class should still have a positive speed")
	}
}

// smallNetwork builds a 2x2 square: nodes 0..3 and four residential edges.
func smallNetwork(t *testing.T) *Network {
	t.Helper()
	n := NewNetwork()
	a := n.AddNode(geo.Pt(0, 0))
	b := n.AddNode(geo.Pt(100, 0))
	c := n.AddNode(geo.Pt(100, 100))
	d := n.AddNode(geo.Pt(0, 100))
	for _, e := range [][2]int{{a, b}, {b, c}, {c, d}, {d, a}} {
		if _, err := n.AddSegment(e[0], e[1], Residential, "s"); err != nil {
			t.Fatal(err)
		}
	}
	return n
}

func TestAddNodeSegmentValidation(t *testing.T) {
	n := NewNetwork()
	if n.NumNodes() != 0 || n.NumSegments() != 0 {
		t.Fatal("new network should be empty")
	}
	a := n.AddNode(geo.Pt(0, 0))
	b := n.AddNode(geo.Pt(10, 0))
	if _, err := n.AddSegment(a, 99, Residential, "x"); err == nil {
		t.Fatal("invalid node id should error")
	}
	if _, err := n.AddSegment(a, a, Residential, "x"); err == nil {
		t.Fatal("self loop should error")
	}
	seg, err := n.AddSegment(a, b, Arterial, "main")
	if err != nil {
		t.Fatal(err)
	}
	if seg.ID != 0 || seg.Length() != 10 || seg.Class != Arterial {
		t.Fatalf("segment = %+v", seg)
	}
	got, err := n.Segment(0)
	if err != nil || got != seg {
		t.Fatalf("Segment(0) = %v, %v", got, err)
	}
	if _, err := n.Segment(5); err == nil {
		t.Fatal("out of range segment should error")
	}
	if p, err := n.Node(a); err != nil || p != geo.Pt(0, 0) {
		t.Fatalf("Node = %v, %v", p, err)
	}
	if _, err := n.Node(-1); err == nil {
		t.Fatal("invalid node should error")
	}
	if len(n.Segments()) != 1 {
		t.Fatal("Segments() should return 1")
	}
}

func TestCandidateAndNearestSegments(t *testing.T) {
	n := smallNetwork(t)
	cands := n.CandidateSegments(geo.Pt(50, -5), 20)
	if len(cands) != 1 || cands[0].Geom.A.Y != 0 {
		t.Fatalf("CandidateSegments = %+v", cands)
	}
	// Larger radius picks up more.
	cands = n.CandidateSegments(geo.Pt(50, 50), 200)
	if len(cands) != 4 {
		t.Fatalf("wide CandidateSegments = %d", len(cands))
	}
	// Results sorted by id.
	for i := 1; i < len(cands); i++ {
		if cands[i].ID < cands[i-1].ID {
			t.Fatal("candidates not sorted by id")
		}
	}
	seg, d, ok := n.NearestSegment(geo.Pt(50, 10))
	if !ok || d != 10 {
		t.Fatalf("NearestSegment = %v, %v, %v", seg, d, ok)
	}
	if seg.Geom.A.Y != 0 && seg.Geom.B.Y != 0 {
		t.Fatalf("nearest segment should be the bottom edge, got %+v", seg)
	}
	// Far point still resolves through radius expansion.
	_, d, ok = n.NearestSegment(geo.Pt(10000, 10000))
	if !ok || d <= 0 {
		t.Fatalf("far NearestSegment = %v, %v", d, ok)
	}
	// Empty network.
	empty := NewNetwork()
	if _, _, ok := empty.NearestSegment(geo.Pt(0, 0)); ok {
		t.Fatal("nearest on empty network should be !ok")
	}
	if _, ok := empty.NearestNode(geo.Pt(0, 0)); ok {
		t.Fatal("nearest node on empty network should be !ok")
	}
	id, ok := n.NearestNode(geo.Pt(95, 8))
	if !ok || id != 1 {
		t.Fatalf("NearestNode = %d, %v", id, ok)
	}
}

// TestNearestSegmentTinyNetworks is the regression test for the removed
// full-scan fallback: the bulk-loaded spatial index must answer nearest and
// candidate queries exactly on 0- and 1-segment networks.
func TestNearestSegmentTinyNetworks(t *testing.T) {
	// 0 edges: every query is a clean miss, never a panic or a scan.
	empty := NewNetwork()
	if _, _, ok := empty.NearestSegment(geo.Pt(123, 456)); ok {
		t.Fatal("0-edge network: NearestSegment should be !ok")
	}
	if cands := empty.CandidateSegments(geo.Pt(0, 0), 1e9); len(cands) != 0 {
		t.Fatalf("0-edge network: CandidateSegments = %d", len(cands))
	}
	if !empty.Bounds().IsEmpty() {
		t.Fatalf("0-edge network bounds = %+v", empty.Bounds())
	}

	// 1 edge: the only segment is the nearest from anywhere, with the exact
	// point-segment distance, even from very far away (the old radius-
	// doubling search needed its full scan exactly here).
	one := NewNetwork()
	a := one.AddNode(geo.Pt(0, 0))
	b := one.AddNode(geo.Pt(100, 0))
	seg, err := one.AddSegment(a, b, Residential, "only")
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []geo.Point{
		geo.Pt(50, 10), geo.Pt(-40, -30), geo.Pt(1e7, 1e7), geo.Pt(50, 0),
	} {
		got, d, ok := one.NearestSegment(q)
		if !ok || got != seg {
			t.Fatalf("1-edge network: NearestSegment(%v) = %v, %v", q, got, ok)
		}
		if want := seg.Geom.DistanceToPoint(q); d != want {
			t.Fatalf("1-edge network: dist(%v) = %v want %v", q, d, want)
		}
	}
	// Candidate radius smaller than the distance: empty set, no fallback.
	if cands := one.CandidateSegments(geo.Pt(500, 500), 10); len(cands) != 0 {
		t.Fatalf("out-of-radius candidates = %d", len(cands))
	}
}

// TestSpatialIndexInvalidation checks that mutating the network after a
// query rebuilds the index.
func TestSpatialIndexInvalidation(t *testing.T) {
	n := NewNetwork()
	a := n.AddNode(geo.Pt(0, 0))
	b := n.AddNode(geo.Pt(100, 0))
	if _, err := n.AddSegment(a, b, Residential, "first"); err != nil {
		t.Fatal(err)
	}
	if got := len(n.CandidateSegments(geo.Pt(50, 0), 10)); got != 1 {
		t.Fatalf("candidates before mutation = %d", got)
	}
	c := n.AddNode(geo.Pt(100, 5))
	d := n.AddNode(geo.Pt(0, 5))
	if _, err := n.AddSegment(c, d, Residential, "second"); err != nil {
		t.Fatal(err)
	}
	if got := len(n.CandidateSegments(geo.Pt(50, 2), 10)); got != 2 {
		t.Fatalf("candidates after mutation = %d", got)
	}
}

func TestShortestPathSquare(t *testing.T) {
	n := smallNetwork(t)
	r, err := n.ShortestPath(0, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Length-200) > 1e-9 {
		t.Fatalf("route length = %v, want 200", r.Length)
	}
	if len(r.Nodes) != 3 || len(r.Segments) != 2 {
		t.Fatalf("route = %+v", r)
	}
	if r.Nodes[0] != 0 || r.Nodes[len(r.Nodes)-1] != 2 {
		t.Fatalf("route endpoints = %v", r.Nodes)
	}
	pl := n.Polyline(r)
	if len(pl) != 3 || pl[0] != geo.Pt(0, 0) {
		t.Fatalf("Polyline = %v", pl)
	}
	// Same node.
	same, err := n.ShortestPath(1, 1, nil)
	if err != nil || len(same.Nodes) != 1 || same.Length != 0 {
		t.Fatalf("same-node route = %+v, %v", same, err)
	}
	if _, err := n.ShortestPath(-1, 2, nil); err == nil {
		t.Fatal("invalid endpoint should error")
	}
	if n.Polyline(nil) != nil {
		t.Fatal("Polyline(nil) should be nil")
	}
}

func TestShortestPathClassFilter(t *testing.T) {
	n := NewNetwork()
	a := n.AddNode(geo.Pt(0, 0))
	b := n.AddNode(geo.Pt(100, 0))
	c := n.AddNode(geo.Pt(200, 0))
	// Direct highway a->c plus a residential detour a->b->c.
	if _, err := n.AddSegment(a, c, Highway, "hw"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddSegment(a, b, Residential, "r1"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddSegment(b, c, Residential, "r2"); err != nil {
		t.Fatal(err)
	}
	// Unrestricted: takes the highway (single segment).
	r, err := n.ShortestPath(a, c, nil)
	if err != nil || len(r.Segments) != 1 {
		t.Fatalf("unrestricted route = %+v, %v", r, err)
	}
	// Restricted to non-highway: takes the detour.
	r, err = n.ShortestPath(a, c, func(cl Class) bool { return cl != Highway })
	if err != nil || len(r.Segments) != 2 {
		t.Fatalf("restricted route = %+v, %v", r, err)
	}
	// Impossible restriction.
	if _, err := n.ShortestPath(a, c, func(cl Class) bool { return cl == MetroRail }); err == nil {
		t.Fatal("unreachable route should error")
	}
}

func TestGenerateNetworkStructure(t *testing.T) {
	cfg := DefaultGeneratorConfig(7)
	n, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 21x21 lattice plus 21 metro nodes.
	if n.NumNodes() != 21*21+21 {
		t.Fatalf("NumNodes = %d", n.NumNodes())
	}
	if n.NumSegments() < 800 {
		t.Fatalf("NumSegments = %d, expected a dense grid", n.NumSegments())
	}
	// Class inventory: all five classes present.
	byClass := map[Class]int{}
	for _, s := range n.Segments() {
		byClass[s.Class]++
	}
	for _, c := range []Class{Footpath, Residential, Arterial, Highway, MetroRail} {
		if byClass[c] == 0 {
			t.Fatalf("generated network has no %v segments", c)
		}
	}
	if byClass[MetroRail] != 20 {
		t.Fatalf("metro segments = %d, want 20", byClass[MetroRail])
	}
	// Network is connected (street grid part): route between opposite corners.
	from, _ := n.NearestNode(geo.Pt(0, 0))
	to, _ := n.NearestNode(geo.Pt(10000, 10000))
	r, err := n.ShortestPath(from, to, func(c Class) bool { return c != MetroRail })
	if err != nil {
		t.Fatalf("corner-to-corner route: %v", err)
	}
	if r.Length < 10000 {
		t.Fatalf("route length = %v, too short for a 10km x 10km grid", r.Length)
	}
	// Determinism.
	n2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n2.NumSegments() != n.NumSegments() || n2.NumNodes() != n.NumNodes() {
		t.Fatal("generation not deterministic in size")
	}
	for i, s := range n.Segments() {
		if !n2.Segments()[i].Geom.A.Equal(s.Geom.A, 1e-12) {
			t.Fatal("generation not deterministic in geometry")
		}
	}
}

func TestGenerateOptionsAndErrors(t *testing.T) {
	cfg := DefaultGeneratorConfig(1)
	cfg.WithMetro = false
	cfg.WithHighway = false
	cfg.Extent = geo.NewRect(geo.Pt(0, 0), geo.Pt(2000, 2000))
	n, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range n.Segments() {
		if s.Class == MetroRail || s.Class == Highway {
			t.Fatalf("disabled class %v present", s.Class)
		}
	}
	bad := cfg
	bad.BlockSize = 0
	if _, err := Generate(bad); err == nil {
		t.Fatal("zero block size should error")
	}
	bad = cfg
	bad.Extent = geo.EmptyRect()
	if _, err := Generate(bad); err == nil {
		t.Fatal("empty extent should error")
	}
	bad = cfg
	bad.Extent = geo.NewRect(geo.Pt(0, 0), geo.Pt(100, 100))
	bad.BlockSize = 500
	if _, err := Generate(bad); err == nil {
		t.Fatal("extent smaller than one block should error")
	}
}

func TestBoundsCoverExtent(t *testing.T) {
	cfg := DefaultGeneratorConfig(3)
	n, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := n.Bounds()
	if b.Width() < 9000 || b.Height() < 9000 {
		t.Fatalf("network bounds too small: %+v", b)
	}
}
