// Package roadnet models the semantic-line data source of SeMiTri: a road
// network made of segments (Pline) with road classes, indexed through the
// shared spatial layer (internal/spatial) for candidate-segment selection,
// plus a connectivity graph with shortest-path routing that the synthetic
// workload generator uses to produce road-constrained vehicle and people
// movement with exact ground-truth segment sequences (the role of Krumm's
// Seattle benchmark in the paper's Fig. 10 experiment).
//
// The spatial index is bulk-loaded lazily: AddSegment only buffers, and the
// first query builds an immutable index over all segment bounding boxes
// (the density heuristic of spatial.NewIndex picks the STR tree here, since
// road segments are elongated rectangles). The index answers every query
// exactly — including NearestSegment on one-segment networks — so there is
// no full-scan fallback anywhere.
package roadnet

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"semitri/internal/geo"
	"semitri/internal/spatial"
)

// Class describes the kind of road a segment belongs to. The class feeds
// SeMiTri's transportation-mode inference (§4.2): metro rails imply the
// metro mode, footpaths imply walking or cycling, and ordinary roads allow
// bus or car movement.
type Class int

const (
	// Footpath is a pedestrian/cycle path not open to motorised traffic.
	Footpath Class = iota
	// Residential is a local street.
	Residential
	// Arterial is a main urban road carrying bus lines.
	Arterial
	// Highway is a motorway/high-speed road.
	Highway
	// MetroRail is a rail/metro track.
	MetroRail
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Footpath:
		return "footpath"
	case Residential:
		return "residential"
	case Arterial:
		return "arterial"
	case Highway:
		return "highway"
	case MetroRail:
		return "metro"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// TypicalSpeed returns a representative travel speed on the class in m/s,
// used by the synthetic workloads.
func (c Class) TypicalSpeed() float64 {
	switch c {
	case Footpath:
		return 1.4
	case Residential:
		return 8
	case Arterial:
		return 12
	case Highway:
		return 27
	case MetroRail:
		return 16
	}
	return 8
}

// Segment is one road segment between two crossings (a semantic line).
type Segment struct {
	ID    int
	Name  string
	Class Class
	Geom  geo.Segment
	// From and To are node ids in the network graph.
	From int
	To   int
}

// Length returns the geometric length of the segment.
func (s *Segment) Length() float64 { return s.Geom.Length() }

// Network is a road network: nodes (crossings), segments, a spatial index
// over segment bounding boxes and an adjacency list for routing. The
// network may be mutated while it is being built; once annotators are
// constructed over it, it must be treated as read-only (queries are then
// safe from any number of goroutines).
type Network struct {
	nodes    []geo.Point
	segments []*Segment
	adj      map[int][]adjEdge
	bounds   geo.Rect

	// mu guards the lazily bulk-loaded spatial index; AddSegment invalidates
	// it, the first query after a mutation rebuilds it.
	mu    sync.Mutex
	index spatial.Index
}

type adjEdge struct {
	segID int
	to    int
	cost  float64
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{adj: map[int][]adjEdge{}, bounds: geo.EmptyRect()}
}

// AddNode registers a crossing and returns its node id.
func (n *Network) AddNode(p geo.Point) int {
	n.nodes = append(n.nodes, p)
	return len(n.nodes) - 1
}

// Node returns the position of a node id.
func (n *Network) Node(id int) (geo.Point, error) {
	if id < 0 || id >= len(n.nodes) {
		return geo.Point{}, fmt.Errorf("roadnet: node %d out of range", id)
	}
	return n.nodes[id], nil
}

// NumNodes returns the number of crossings.
func (n *Network) NumNodes() int { return len(n.nodes) }

// NumSegments returns the number of road segments.
func (n *Network) NumSegments() int { return len(n.segments) }

// AddSegment connects two existing nodes with a bidirectional segment of the
// given class and returns the created segment.
func (n *Network) AddSegment(from, to int, class Class, name string) (*Segment, error) {
	if from < 0 || from >= len(n.nodes) || to < 0 || to >= len(n.nodes) {
		return nil, fmt.Errorf("roadnet: invalid node ids %d->%d", from, to)
	}
	if from == to {
		return nil, errors.New("roadnet: segment endpoints must differ")
	}
	seg := &Segment{
		ID:    len(n.segments),
		Name:  name,
		Class: class,
		Geom:  geo.Seg(n.nodes[from], n.nodes[to]),
		From:  from,
		To:    to,
	}
	n.segments = append(n.segments, seg)
	n.bounds = n.bounds.Union(seg.Geom.Bounds())
	n.mu.Lock()
	n.index = nil // rebuilt by the next query
	n.mu.Unlock()
	cost := seg.Length()
	n.adj[from] = append(n.adj[from], adjEdge{segID: seg.ID, to: to, cost: cost})
	n.adj[to] = append(n.adj[to], adjEdge{segID: seg.ID, to: from, cost: cost})
	return seg, nil
}

// Segment returns the segment with the given id.
func (n *Network) Segment(id int) (*Segment, error) {
	if id < 0 || id >= len(n.segments) {
		return nil, fmt.Errorf("roadnet: segment %d out of range", id)
	}
	return n.segments[id], nil
}

// Segments returns all segments (shared slice; callers must not mutate).
func (n *Network) Segments() []*Segment { return n.segments }

// Bounds returns the spatial extent of the network.
func (n *Network) Bounds() geo.Rect { return n.bounds }

// SpatialIndex returns the immutable bulk-loaded spatial index over the
// segment bounding boxes (items carry *Segment values), building it on
// first use. The annotation layers capture it once and issue all their
// candidate queries through the spatial.Index interface.
func (n *Network) SpatialIndex() spatial.Index {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.index == nil {
		items := make([]spatial.Item, len(n.segments))
		for i, s := range n.segments {
			items[i] = spatial.Item{Rect: s.Geom.Bounds(), Value: s}
		}
		n.index = spatial.NewIndex(items)
	}
	return n.index
}

// CandidateSegments returns the segments whose bounding box lies within
// radius of p — the candidateSegs(Q) of Alg. 2 — ordered by segment id.
func (n *Network) CandidateSegments(p geo.Point, radius float64) []*Segment {
	items := spatial.WithinDistance(n.SpatialIndex(), p, radius)
	out := make([]*Segment, 0, len(items))
	for _, it := range items {
		out = append(out, it.Value.(*Segment))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NearestSegment returns the segment geometrically closest to p (by the
// point–segment distance of Eq. 1) and that distance; used by the geometric
// map-matching baseline and when the candidate set of Alg. 2 is empty. The
// bulk-loaded index answers it exactly on any network size — a best-first
// walk refined by the true segment distance — with no scan fallback.
func (n *Network) NearestSegment(p geo.Point) (*Segment, float64, bool) {
	return NearestSegmentIn(n.SpatialIndex(), p)
}

// NearestSegmentIn is NearestSegment against an already captured spatial
// index whose items hold *Segment values.
func NearestSegmentIn(ix spatial.Index, p geo.Point) (*Segment, float64, bool) {
	it, d, ok := spatial.NearestBy(ix, p, func(it spatial.Item) float64 {
		return it.Value.(*Segment).Geom.DistanceToPoint(p)
	})
	if !ok {
		return nil, 0, false
	}
	return it.Value.(*Segment), d, true
}

// NearestNode returns the node id closest to p.
func (n *Network) NearestNode(p geo.Point) (int, bool) {
	if len(n.nodes) == 0 {
		return 0, false
	}
	best := 0
	bestD := math.Inf(1)
	for i, np := range n.nodes {
		if d := np.DistanceTo(p); d < bestD {
			best, bestD = i, d
		}
	}
	return best, true
}

// Route is a path through the network: an ordered list of segment ids with
// the corresponding node sequence.
type Route struct {
	Nodes    []int
	Segments []int
	Length   float64
}

// pqItem is a priority-queue item for Dijkstra.
type pqItem struct {
	node int
	dist float64
}
type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	it := old[len(old)-1]
	*q = old[:len(old)-1]
	return it
}

// ShortestPath computes the shortest route between two nodes using Dijkstra
// over segment lengths. allowed filters usable classes (nil allows all).
func (n *Network) ShortestPath(from, to int, allowed func(Class) bool) (*Route, error) {
	if from < 0 || from >= len(n.nodes) || to < 0 || to >= len(n.nodes) {
		return nil, fmt.Errorf("roadnet: invalid route endpoints %d->%d", from, to)
	}
	if from == to {
		return &Route{Nodes: []int{from}}, nil
	}
	dist := make(map[int]float64, len(n.nodes))
	prevNode := make(map[int]int)
	prevSeg := make(map[int]int)
	visited := make(map[int]bool)
	q := &pq{{node: from, dist: 0}}
	dist[from] = 0
	for q.Len() > 0 {
		cur := heap.Pop(q).(pqItem)
		if visited[cur.node] {
			continue
		}
		visited[cur.node] = true
		if cur.node == to {
			break
		}
		for _, e := range n.adj[cur.node] {
			if allowed != nil && !allowed(n.segments[e.segID].Class) {
				continue
			}
			nd := cur.dist + e.cost
			if old, seen := dist[e.to]; !seen || nd < old {
				dist[e.to] = nd
				prevNode[e.to] = cur.node
				prevSeg[e.to] = e.segID
				heap.Push(q, pqItem{node: e.to, dist: nd})
			}
		}
	}
	if !visited[to] {
		return nil, fmt.Errorf("roadnet: no path from %d to %d", from, to)
	}
	// Reconstruct.
	var nodes []int
	var segs []int
	for at := to; at != from; at = prevNode[at] {
		nodes = append(nodes, at)
		segs = append(segs, prevSeg[at])
	}
	nodes = append(nodes, from)
	reverseInts(nodes)
	reverseInts(segs)
	return &Route{Nodes: nodes, Segments: segs, Length: dist[to]}, nil
}

func reverseInts(v []int) {
	for i, j := 0, len(v)-1; i < j; i, j = i+1, j-1 {
		v[i], v[j] = v[j], v[i]
	}
}

// Polyline returns the geometric shape of a route.
func (n *Network) Polyline(r *Route) geo.Polyline {
	if r == nil || len(r.Nodes) == 0 {
		return nil
	}
	pl := make(geo.Polyline, len(r.Nodes))
	for i, id := range r.Nodes {
		pl[i] = n.nodes[id]
	}
	return pl
}

// GeneratorConfig controls the synthetic city network generator.
type GeneratorConfig struct {
	// Extent of the network.
	Extent geo.Rect
	// BlockSize is the spacing of the street grid in metres.
	BlockSize float64
	// Seed drives reproducible street irregularity.
	Seed int64
	// WithMetro adds a metro line crossing the extent horizontally.
	WithMetro bool
	// WithHighway adds a highway ring road along the extent border.
	WithHighway bool
	// FootpathFraction is the probability that a grid street is a footpath
	// instead of a residential street.
	FootpathFraction float64
}

// DefaultGeneratorConfig returns a Manhattan-style 10 km x 10 km network
// with 500 m blocks, a metro line and a highway ring.
func DefaultGeneratorConfig(seed int64) GeneratorConfig {
	return GeneratorConfig{
		Extent:           geo.NewRect(geo.Pt(0, 0), geo.Pt(10000, 10000)),
		BlockSize:        500,
		Seed:             seed,
		WithMetro:        true,
		WithHighway:      true,
		FootpathFraction: 0.15,
	}
}

// Generate builds a synthetic grid city network: a lattice of residential
// streets with some footpaths, arterials every few blocks, an optional metro
// line and an optional highway ring. The layout gives the heterogeneous
// road structure (parallel roads, dense crossings) that motivates the
// paper's global map-matching algorithm.
func Generate(cfg GeneratorConfig) (*Network, error) {
	if cfg.BlockSize <= 0 {
		return nil, errors.New("roadnet: BlockSize must be positive")
	}
	if cfg.Extent.IsEmpty() {
		return nil, errors.New("roadnet: empty extent")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := NewNetwork()
	cols := int(cfg.Extent.Width()/cfg.BlockSize) + 1
	rows := int(cfg.Extent.Height()/cfg.BlockSize) + 1
	if cols < 2 || rows < 2 {
		return nil, errors.New("roadnet: extent too small for the block size")
	}
	// Create lattice nodes with slight jitter so streets are not perfectly
	// axis-aligned (more realistic matching ambiguity).
	ids := make([][]int, rows)
	for r := 0; r < rows; r++ {
		ids[r] = make([]int, cols)
		for c := 0; c < cols; c++ {
			jx := (rng.Float64() - 0.5) * cfg.BlockSize * 0.1
			jy := (rng.Float64() - 0.5) * cfg.BlockSize * 0.1
			// Keep border nodes on the border so the highway ring is straight.
			if r == 0 || r == rows-1 {
				jy = 0
			}
			if c == 0 || c == cols-1 {
				jx = 0
			}
			p := geo.Pt(cfg.Extent.Min.X+float64(c)*cfg.BlockSize+jx,
				cfg.Extent.Min.Y+float64(r)*cfg.BlockSize+jy)
			ids[r][c] = n.AddNode(p)
		}
	}
	classFor := func(r, c int, horizontal bool) Class {
		// Arterials every 4 blocks.
		if horizontal && r%4 == 0 {
			return Arterial
		}
		if !horizontal && c%4 == 0 {
			return Arterial
		}
		if rng.Float64() < cfg.FootpathFraction {
			return Footpath
		}
		return Residential
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				cl := classFor(r, c, true)
				name := fmt.Sprintf("street-h-%d-%d", r, c)
				if _, err := n.AddSegment(ids[r][c], ids[r][c+1], cl, name); err != nil {
					return nil, err
				}
			}
			if r+1 < rows {
				cl := classFor(r, c, false)
				name := fmt.Sprintf("street-v-%d-%d", r, c)
				if _, err := n.AddSegment(ids[r][c], ids[r+1][c], cl, name); err != nil {
					return nil, err
				}
			}
		}
	}
	// Highway ring along the border.
	if cfg.WithHighway {
		for c := 0; c+1 < cols; c++ {
			if _, err := n.AddSegment(ids[0][c], ids[0][c+1], Highway, fmt.Sprintf("ring-s-%d", c)); err != nil {
				return nil, err
			}
			if _, err := n.AddSegment(ids[rows-1][c], ids[rows-1][c+1], Highway, fmt.Sprintf("ring-n-%d", c)); err != nil {
				return nil, err
			}
		}
		for r := 0; r+1 < rows; r++ {
			if _, err := n.AddSegment(ids[r][0], ids[r+1][0], Highway, fmt.Sprintf("ring-w-%d", r)); err != nil {
				return nil, err
			}
			if _, err := n.AddSegment(ids[r][cols-1], ids[r+1][cols-1], Highway, fmt.Sprintf("ring-e-%d", r)); err != nil {
				return nil, err
			}
		}
	}
	// Metro line: a dedicated horizontal line through the middle row with
	// its own nodes (offset slightly from the street grid, like the M1 line
	// of Fig. 15).
	if cfg.WithMetro {
		midRow := rows / 2
		y := cfg.Extent.Min.Y + float64(midRow)*cfg.BlockSize + cfg.BlockSize*0.25
		var prev int = -1
		for c := 0; c < cols; c++ {
			x := cfg.Extent.Min.X + float64(c)*cfg.BlockSize
			cur := n.AddNode(geo.Pt(x, y))
			if prev >= 0 {
				if _, err := n.AddSegment(prev, cur, MetroRail, fmt.Sprintf("metro-M1-%d", c)); err != nil {
					return nil, err
				}
			}
			prev = cur
		}
	}
	return n, nil
}
