package core

import (
	"strings"
	"testing"
	"time"

	"semitri/internal/episode"
	"semitri/internal/geo"
)

var t0 = time.Date(2010, 3, 15, 8, 0, 0, 0, time.UTC)

func TestPlaceKindString(t *testing.T) {
	if RegionPlace.String() != "region" || LinePlace.String() != "line" || PointPlace.String() != "point" {
		t.Fatal("kind strings wrong")
	}
	if !strings.HasPrefix(PlaceKind(9).String(), "kind(") {
		t.Fatal("unknown kind string wrong")
	}
}

func TestPlaceValidate(t *testing.T) {
	good := Place{ID: "r1", Kind: RegionPlace, Name: "campus"}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Place{Kind: RegionPlace}).Validate(); err == nil {
		t.Fatal("missing id should fail")
	}
	if err := (Place{ID: "x", Kind: PlaceKind(9)}).Validate(); err == nil {
		t.Fatal("bad kind should fail")
	}
}

func TestAnnotationSet(t *testing.T) {
	var s AnnotationSet
	if s.Len() != 0 || s.Value("x") != "" {
		t.Fatal("zero set should be empty")
	}
	s.Add(Annotation{Key: AnnLanduse, Value: "1.2", Confidence: 0.9, Source: "region"})
	s.Add(Annotation{Key: AnnTransportMode, Value: "bus", Confidence: 0.7, Source: "line"})
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	a, ok := s.Get(AnnLanduse)
	if !ok || a.Value != "1.2" {
		t.Fatalf("Get = %+v, %v", a, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("missing key should not be found")
	}
	// Lower-confidence duplicate does not replace.
	s.Add(Annotation{Key: AnnLanduse, Value: "2.7", Confidence: 0.2})
	if s.Value(AnnLanduse) != "1.2" {
		t.Fatal("lower confidence should not replace")
	}
	// Equal/higher confidence replaces.
	s.Add(Annotation{Key: AnnLanduse, Value: "1.3", Confidence: 0.95})
	if s.Value(AnnLanduse) != "1.3" {
		t.Fatal("higher confidence should replace")
	}
	if s.Len() != 2 {
		t.Fatalf("replacement should not grow the set, Len = %d", s.Len())
	}
	all := s.All()
	if len(all) != 2 || all[0].Key != AnnLanduse {
		t.Fatalf("All = %+v", all)
	}
	// Merge.
	var other AnnotationSet
	other.Add(Annotation{Key: AnnActivity, Value: "shopping", Confidence: 0.6})
	s.Merge(&other)
	if s.Len() != 3 || s.Value(AnnActivity) != "shopping" {
		t.Fatal("merge failed")
	}
	s.Merge(nil) // no-op
	if got := s.String(); !strings.Contains(got, "transport_mode=bus") {
		t.Fatalf("String = %q", got)
	}
}

func makeTuple(kind episode.Kind, placeID, placeName string, startMin, endMin int) *EpisodeTuple {
	var place *Place
	if placeID != "" {
		place = &Place{ID: placeID, Kind: RegionPlace, Name: placeName, Extent: geo.RectAround(geo.Pt(0, 0), 10)}
	}
	return &EpisodeTuple{
		Kind:    kind,
		Place:   place,
		TimeIn:  t0.Add(time.Duration(startMin) * time.Minute),
		TimeOut: t0.Add(time.Duration(endMin) * time.Minute),
	}
}

func TestEpisodeTupleBasics(t *testing.T) {
	tp := makeTuple(episode.Stop, "home", "home", 0, 60)
	if tp.Duration() != time.Hour {
		t.Fatalf("Duration = %v", tp.Duration())
	}
	if tp.PlaceID() != "home" {
		t.Fatalf("PlaceID = %q", tp.PlaceID())
	}
	unlinked := makeTuple(episode.Move, "", "", 0, 10)
	if unlinked.PlaceID() != "" {
		t.Fatal("unlinked tuple should have empty place id")
	}
}

func TestStructuredTrajectoryValidate(t *testing.T) {
	st := &StructuredTrajectory{ID: "u1-d1", ObjectID: "u1", Interpretation: "merged",
		Tuples: []*EpisodeTuple{
			makeTuple(episode.Stop, "home", "home", 0, 60),
			makeTuple(episode.Move, "road", "road", 60, 90),
			makeTuple(episode.Stop, "office", "office", 90, 480),
		}}
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
	if st.Duration() != 480*time.Minute {
		t.Fatalf("Duration = %v", st.Duration())
	}
	if len(st.Stops()) != 2 || len(st.Moves()) != 1 {
		t.Fatal("stop/move filters wrong")
	}
	if (&StructuredTrajectory{}).Validate() == nil {
		t.Fatal("missing id should fail")
	}
	if (&StructuredTrajectory{ID: "x"}).Duration() != 0 {
		t.Fatal("empty trajectory duration should be 0")
	}
	// Reversed tuple times.
	bad := &StructuredTrajectory{ID: "x", Tuples: []*EpisodeTuple{makeTuple(episode.Stop, "a", "a", 60, 0)}}
	if bad.Validate() == nil {
		t.Fatal("reversed times should fail")
	}
	// Out-of-order tuples.
	bad2 := &StructuredTrajectory{ID: "x", Tuples: []*EpisodeTuple{
		makeTuple(episode.Stop, "a", "a", 60, 70),
		makeTuple(episode.Stop, "b", "b", 0, 10),
	}}
	if bad2.Validate() == nil {
		t.Fatal("out-of-order tuples should fail")
	}
	// Invalid linked place.
	bad3 := &StructuredTrajectory{ID: "x", Tuples: []*EpisodeTuple{
		{Kind: episode.Stop, Place: &Place{}, TimeIn: t0, TimeOut: t0},
	}}
	if bad3.Validate() == nil {
		t.Fatal("invalid place should fail")
	}
}

func TestMergeConsecutive(t *testing.T) {
	mk := func(placeID, landuse string, startMin, endMin int) *EpisodeTuple {
		tp := makeTuple(episode.Move, placeID, placeID, startMin, endMin)
		if landuse != "" {
			tp.Annotations.Add(Annotation{Key: AnnLanduse, Value: landuse, Confidence: 1})
		}
		return tp
	}
	st := &StructuredTrajectory{ID: "t", ObjectID: "u", Interpretation: "region", Tuples: []*EpisodeTuple{
		mk("cell-1", "1.2", 0, 10),
		mk("cell-1", "1.2", 10, 20), // same place and value: merged
		mk("cell-2", "1.2", 20, 30), // different place: kept
		mk("cell-2", "1.3", 30, 40), // different value: kept
	}}
	merged := st.MergeConsecutive(AnnLanduse)
	if len(merged.Tuples) != 3 {
		t.Fatalf("merged to %d tuples, want 3", len(merged.Tuples))
	}
	if merged.Tuples[0].TimeOut != t0.Add(20*time.Minute) {
		t.Fatalf("merged tuple end = %v", merged.Tuples[0].TimeOut)
	}
	// Original untouched.
	if len(st.Tuples) != 4 {
		t.Fatal("MergeConsecutive must not mutate the original")
	}
	// Merging with empty key collapses only on place+kind.
	merged2 := st.MergeConsecutive("")
	if len(merged2.Tuples) != 2 {
		t.Fatalf("place-only merge = %d tuples, want 2", len(merged2.Tuples))
	}
	// Different kinds never merge.
	st2 := &StructuredTrajectory{ID: "t", Tuples: []*EpisodeTuple{
		makeTuple(episode.Stop, "p", "p", 0, 10),
		makeTuple(episode.Move, "p", "p", 10, 20),
	}}
	if got := st2.MergeConsecutive(""); len(got.Tuples) != 2 {
		t.Fatal("different kinds must not merge")
	}
}

func TestTrajectoryCategoryEquation8(t *testing.T) {
	mkStop := func(cat string, startMin, endMin int) *EpisodeTuple {
		tp := makeTuple(episode.Stop, "p"+cat, cat, startMin, endMin)
		tp.Annotations.Add(Annotation{Key: AnnPOICategory, Value: cat, Confidence: 1})
		return tp
	}
	st := &StructuredTrajectory{ID: "t", Tuples: []*EpisodeTuple{
		mkStop("item sale", 0, 30),
		makeTuple(episode.Move, "", "", 30, 40),
		mkStop("person life", 40, 160), // 120 min, dominates
		mkStop("item sale", 160, 200),  // 40+30=70 min total
	}}
	cat, ok := st.Category(AnnPOICategory)
	if !ok || cat != "person life" {
		t.Fatalf("Category = %q, %v", cat, ok)
	}
	// No annotated stops.
	none := &StructuredTrajectory{ID: "t", Tuples: []*EpisodeTuple{makeTuple(episode.Move, "", "", 0, 10)}}
	if _, ok := none.Category(AnnPOICategory); ok {
		t.Fatal("trajectory without annotated stops should have no category")
	}
	// Tie resolves deterministically (alphabetical).
	tie := &StructuredTrajectory{ID: "t", Tuples: []*EpisodeTuple{
		mkStop("b", 0, 10), mkStop("a", 10, 20),
	}}
	if cat, _ := tie.Category(AnnPOICategory); cat != "a" {
		t.Fatalf("tie category = %q", cat)
	}
}

func TestTrajectoryString(t *testing.T) {
	st := &StructuredTrajectory{ID: "t", Tuples: []*EpisodeTuple{
		makeTuple(episode.Stop, "home", "home", 0, 60),
		func() *EpisodeTuple {
			tp := makeTuple(episode.Move, "road", "road", 60, 90)
			tp.Annotations.Add(Annotation{Key: AnnTransportMode, Value: "metro", Confidence: 1})
			return tp
		}(),
		func() *EpisodeTuple {
			tp := makeTuple(episode.Stop, "office", "office", 90, 480)
			tp.Annotations.Add(Annotation{Key: AnnActivity, Value: "work", Confidence: 1})
			return tp
		}(),
	}}
	s := st.String()
	if !strings.Contains(s, "(home, 08:00-09:00, -)") {
		t.Fatalf("String = %q", s)
	}
	if !strings.Contains(s, "metro") || !strings.Contains(s, "work") {
		t.Fatalf("String missing annotations: %q", s)
	}
	// Unnamed place falls back to id; missing place renders "-".
	st2 := &StructuredTrajectory{ID: "t", Tuples: []*EpisodeTuple{
		{Kind: episode.Stop, Place: &Place{ID: "cell-7", Kind: RegionPlace}, TimeIn: t0, TimeOut: t0},
		{Kind: episode.Stop, TimeIn: t0, TimeOut: t0},
	}}
	s2 := st2.String()
	if !strings.Contains(s2, "cell-7") || !strings.Contains(s2, "(-,") {
		t.Fatalf("String fallback = %q", s2)
	}
	// A stop with only a POI category uses it as the extra element.
	st3 := &StructuredTrajectory{ID: "t", Tuples: []*EpisodeTuple{func() *EpisodeTuple {
		tp := makeTuple(episode.Stop, "shop", "shop", 0, 10)
		tp.Annotations.Add(Annotation{Key: AnnPOICategory, Value: "item sale", Confidence: 1})
		return tp
	}()}}
	if !strings.Contains(st3.String(), "item sale") {
		t.Fatalf("String = %q", st3.String())
	}
}
