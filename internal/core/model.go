// Package core defines SeMiTri's semantic trajectory model (§3.1 of the
// paper): semantic places with region/line/point extents (Definition 2),
// annotations, and structured semantic trajectories made of annotated
// episodes (Definition 4). The three annotation layers (internal/region,
// internal/line, internal/point) produce values of these types, and the
// pipeline in the root package merges them into the final structured
// semantic trajectory stored in the semantic trajectory store.
package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"semitri/internal/episode"
	"semitri/internal/geo"
)

// PlaceKind is the geometric kind of a semantic place's extent
// (Definition 2 partitions P into Pregion, Pline and Ppoint).
type PlaceKind int

const (
	// RegionPlace has a region extent (ROI: land-use cell, campus, park).
	RegionPlace PlaceKind = iota
	// LinePlace has a line extent (LOI: road segment, metro line).
	LinePlace
	// PointPlace has a point extent (POI: shop, restaurant).
	PointPlace
)

// String implements fmt.Stringer.
func (k PlaceKind) String() string {
	switch k {
	case RegionPlace:
		return "region"
	case LinePlace:
		return "line"
	case PointPlace:
		return "point"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Place is a semantic place: a meaningful geographic object used to annotate
// trajectory data (Definition 2). Category carries the source-specific
// classification (land-use sub-category, road class, POI category).
type Place struct {
	ID       string
	Kind     PlaceKind
	Name     string
	Category string
	Extent   geo.Rect
}

// Validate checks the structural invariants of a place.
func (p Place) Validate() error {
	if p.ID == "" {
		return errors.New("core: place needs an id")
	}
	if p.Kind != RegionPlace && p.Kind != LinePlace && p.Kind != PointPlace {
		return fmt.Errorf("core: invalid place kind %d", int(p.Kind))
	}
	return nil
}

// Standard annotation keys used by the SeMiTri layers. Applications may add
// their own keys; these are the ones produced by the built-in layers.
const (
	// AnnLanduse is the land-use sub-category of the episode area (region layer).
	AnnLanduse = "landuse"
	// AnnLanduseTop is the land-use top-level class (region layer).
	AnnLanduseTop = "landuse_top"
	// AnnNamedRegion is a free-form named region covering the episode (region layer).
	AnnNamedRegion = "named_region"
	// AnnRoadClass is the class of the matched road segment (line layer).
	AnnRoadClass = "road_class"
	// AnnRoadName is the name of the matched road segment (line layer).
	AnnRoadName = "road_name"
	// AnnTransportMode is the inferred transportation mode (line layer).
	AnnTransportMode = "transport_mode"
	// AnnPOICategory is the inferred POI category behind a stop (point layer).
	AnnPOICategory = "poi_category"
	// AnnPOIName is the most likely exact POI behind a stop (point layer).
	AnnPOIName = "poi_name"
	// AnnActivity is the activity derived from the POI category (point layer).
	AnnActivity = "activity"
)

// Annotation is one additional-value annotation attached to an episode or a
// record: a key, a value and the confidence the producing layer assigns.
type Annotation struct {
	Key        string
	Value      string
	Confidence float64
	// Source identifies the layer or data source that produced the annotation.
	Source string
}

// AnnotationSet is an ordered collection of annotations with convenient
// lookup by key. The zero value is ready to use.
type AnnotationSet struct {
	items []Annotation
}

// Add appends an annotation (replacing an existing one with the same key
// only if the new confidence is at least as high).
func (s *AnnotationSet) Add(a Annotation) {
	for i, old := range s.items {
		if old.Key == a.Key {
			if a.Confidence >= old.Confidence {
				s.items[i] = a
			}
			return
		}
	}
	s.items = append(s.items, a)
}

// Get returns the annotation for the key.
func (s *AnnotationSet) Get(key string) (Annotation, bool) {
	for _, a := range s.items {
		if a.Key == key {
			return a, true
		}
	}
	return Annotation{}, false
}

// Value returns the value for the key or "" when absent.
func (s *AnnotationSet) Value(key string) string {
	a, _ := s.Get(key)
	return a.Value
}

// Len returns the number of annotations.
func (s *AnnotationSet) Len() int { return len(s.items) }

// All returns a copy of the annotations in insertion order.
func (s *AnnotationSet) All() []Annotation { return append([]Annotation(nil), s.items...) }

// Clone returns an independent copy of the set: mutating either copy never
// affects the other. The store uses it to hand out stable tuple snapshots
// while writers keep annotating the stored original.
func (s *AnnotationSet) Clone() AnnotationSet {
	return AnnotationSet{items: append([]Annotation(nil), s.items...)}
}

// Merge adds every annotation of other into s.
func (s *AnnotationSet) Merge(other *AnnotationSet) {
	if other == nil {
		return
	}
	for _, a := range other.items {
		s.Add(a)
	}
}

// String renders "key=value" pairs in insertion order.
func (s *AnnotationSet) String() string {
	parts := make([]string, len(s.items))
	for i, a := range s.items {
		parts[i] = a.Key + "=" + a.Value
	}
	return strings.Join(parts, " ")
}

// EpisodeTuple is one episode of a structured semantic trajectory
// (Definition 4): a link to a semantic place, the enter/exit times and the
// set of annotations attached to the whole episode.
type EpisodeTuple struct {
	Kind        episode.Kind
	Place       *Place
	TimeIn      time.Time
	TimeOut     time.Time
	Annotations AnnotationSet
	// Episode points back to the underlying stop/move episode (may be nil
	// for tuples produced by merging).
	Episode *episode.Episode
}

// Duration returns the temporal extent of the tuple.
func (t *EpisodeTuple) Duration() time.Duration { return t.TimeOut.Sub(t.TimeIn) }

// PlaceID returns the id of the linked place, or "" when unlinked.
func (t *EpisodeTuple) PlaceID() string {
	if t.Place == nil {
		return ""
	}
	return t.Place.ID
}

// StructuredTrajectory is a structured semantic trajectory SST
// (Definition 4): the trajectory represented as a sequence of annotated
// episodes under one interpretation.
type StructuredTrajectory struct {
	ID       string
	ObjectID string
	// Interpretation names the episode list (e.g. "region", "line", "point",
	// "merged"); a trajectory may have several interpretations (§3.1).
	Interpretation string
	Tuples         []*EpisodeTuple
}

// Validate checks temporal ordering and per-tuple invariants.
func (st *StructuredTrajectory) Validate() error {
	if st.ID == "" {
		return errors.New("core: structured trajectory needs an id")
	}
	for i, tp := range st.Tuples {
		if tp.TimeOut.Before(tp.TimeIn) {
			return fmt.Errorf("core: tuple %d ends before it starts", i)
		}
		if i > 0 && tp.TimeIn.Before(st.Tuples[i-1].TimeIn) {
			return fmt.Errorf("core: tuple %d starts before tuple %d", i, i-1)
		}
		if tp.Place != nil {
			if err := tp.Place.Validate(); err != nil {
				return fmt.Errorf("core: tuple %d: %w", i, err)
			}
		}
	}
	return nil
}

// Duration returns the time spanned by the trajectory's tuples.
func (st *StructuredTrajectory) Duration() time.Duration {
	if len(st.Tuples) == 0 {
		return 0
	}
	return st.Tuples[len(st.Tuples)-1].TimeOut.Sub(st.Tuples[0].TimeIn)
}

// Stops returns the stop tuples.
func (st *StructuredTrajectory) Stops() []*EpisodeTuple { return st.filter(episode.Stop) }

// Moves returns the move tuples.
func (st *StructuredTrajectory) Moves() []*EpisodeTuple { return st.filter(episode.Move) }

func (st *StructuredTrajectory) filter(k episode.Kind) []*EpisodeTuple {
	var out []*EpisodeTuple
	for _, tp := range st.Tuples {
		if tp.Kind == k {
			out = append(out, tp)
		}
	}
	return out
}

// MergeConsecutive collapses consecutive tuples that link to the same place
// and carry the same value for the given annotation key (the tuple merging
// of Alg. 1 line 10-11). It returns a new trajectory.
func (st *StructuredTrajectory) MergeConsecutive(key string) *StructuredTrajectory {
	out := &StructuredTrajectory{ID: st.ID, ObjectID: st.ObjectID, Interpretation: st.Interpretation}
	for _, tp := range st.Tuples {
		if n := len(out.Tuples); n > 0 {
			last := out.Tuples[n-1]
			samePlace := last.PlaceID() == tp.PlaceID()
			sameValue := key == "" || last.Annotations.Value(key) == tp.Annotations.Value(key)
			sameKind := last.Kind == tp.Kind
			if samePlace && sameValue && sameKind {
				last.TimeOut = tp.TimeOut
				last.Annotations.Merge(&tp.Annotations)
				continue
			}
		}
		cp := *tp
		out.Tuples = append(out.Tuples, &cp)
	}
	return out
}

// Category returns the trajectory category as defined by Equation 8 of the
// paper: the annotation value (for the given key, typically AnnPOICategory)
// that accumulates the largest total stop time. The boolean is false when no
// stop tuple carries the annotation.
func (st *StructuredTrajectory) Category(key string) (string, bool) {
	totals := map[string]time.Duration{}
	for _, tp := range st.Tuples {
		if tp.Kind != episode.Stop {
			continue
		}
		v := tp.Annotations.Value(key)
		if v == "" {
			continue
		}
		totals[v] += tp.Duration()
	}
	if len(totals) == 0 {
		return "", false
	}
	keys := make([]string, 0, len(totals))
	for k := range totals {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if totals[keys[i]] != totals[keys[j]] {
			return totals[keys[i]] > totals[keys[j]]
		}
		return keys[i] < keys[j]
	})
	return keys[0], true
}

// String renders the trajectory as the triple sequence of §1.1, e.g.
// "(home, 08:00-09:00, -) -> (road, 09:00-10:00, on-bus)".
func (st *StructuredTrajectory) String() string {
	parts := make([]string, len(st.Tuples))
	for i, tp := range st.Tuples {
		placeName := "-"
		if tp.Place != nil {
			if tp.Place.Name != "" {
				placeName = tp.Place.Name
			} else {
				placeName = tp.Place.ID
			}
		}
		extra := "-"
		if tp.Kind == episode.Move {
			if m := tp.Annotations.Value(AnnTransportMode); m != "" {
				extra = m
			}
		} else if a := tp.Annotations.Value(AnnActivity); a != "" {
			extra = a
		} else if c := tp.Annotations.Value(AnnPOICategory); c != "" {
			extra = c
		}
		parts[i] = fmt.Sprintf("(%s, %s-%s, %s)",
			placeName, tp.TimeIn.Format("15:04"), tp.TimeOut.Format("15:04"), extra)
	}
	return strings.Join(parts, " -> ")
}
