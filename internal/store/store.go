// Package store implements SeMiTri's Semantic Trajectory Store: the
// repository that holds raw GPS records, stop/move episodes and the
// structured semantic trajectories produced by the annotation layers, and
// that the analytics layer and applications query (Fig. 2).
//
// The paper uses PostgreSQL/PostGIS; this implementation is an embedded
// in-memory store with optional JSON persistence, which keeps the repository
// dependency-free while preserving the behaviour that matters to the
// experiments: dedicated tables per artefact kind, query-by-object /
// time-window / annotation interfaces, and the fact that storing results is
// the slowest pipeline stage (it serialises and writes everything, Fig. 17).
//
// # Concurrency
//
// The store is lock-striped: its tables are hash-partitioned into shards,
// each guarded by its own RWMutex, so writes for unrelated moving objects
// proceed in parallel instead of serialising on one global lock (the paper's
// middleware annotates many objects' feeds concurrently). Object-keyed
// tables (raw records, the object→trajectory index) live in the shard of the
// object id; trajectory-keyed tables (raw trajectories, episodes, structured
// interpretations) live in the shard of the trajectory id, so even one
// object's trajectories spread across stripes. Aggregate counts are
// maintained as per-shard running totals, making RecordCount, EpisodeCounts,
// StructuredCount and TrajectoryCount O(shards) rather than full-table
// scans. Cross-shard queries (TrajectoryIDs, StructuredIDs, annotation
// queries, Save) merge per-shard snapshots and sort for deterministic
// output.
//
// Operations touching two stripes (PutTrajectory inserts the trajectory in
// one shard and indexes it under its object in another) lock them
// sequentially, never nested, so the store cannot deadlock; the only
// atomicity given up is that a trajectory may momentarily be visible via
// Trajectory before TrajectoryIDs lists it.
package store

import (
	"errors"
	"sort"
	"sync/atomic"
	"time"

	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/gps"
	"semitri/internal/obs"
)

// DefaultShards is the number of lock stripes New uses. It comfortably
// exceeds the core counts the experiments run on, keeping the probability of
// two hot objects sharing a stripe low without bloating the struct.
const DefaultShards = 32

// Store is the semantic trajectory store. The zero value is not usable; use
// New or NewSharded. All methods are safe for concurrent use.
type Store struct {
	shards []*shard
	// hooks holds the attached secondary index (see AttachIndex); nil until
	// one is attached, so unindexed stores pay one atomic load per mutation.
	hooks hooksPtr
	// mlog holds the attached mutation log (see AttachLog); nil until a
	// durability layer attaches, so non-durable stores pay one atomic load
	// per mutation.
	mlog mlogPtr
	// cold holds the attached cold tier (see InstallColdTier); nil for the
	// default all-heap store.
	cold coldPtr
	// overlayN counts live merge-overlay entries across all shards; zero
	// (the overwhelmingly common case) lets cold scans skip overlay lookups.
	overlayN atomic.Int64
}

// coldPtr is the atomic holder InstallColdTier writes.
type coldPtr = atomic.Pointer[coldHolder]

type structuredByInterp map[string]*core.StructuredTrajectory

// New returns an empty store with DefaultShards lock stripes.
func New() *Store { return NewSharded(DefaultShards) }

// NewSharded returns an empty store with n lock stripes (values below 1 mean
// DefaultShards). One stripe degenerates to the historical single-mutex
// store, which is occasionally useful to pin down striping bugs in tests.
func NewSharded(n int) *Store {
	if n < 1 {
		n = DefaultShards
	}
	s := &Store{shards: make([]*shard, n)}
	for i := range s.shards {
		s.shards[i] = newShard()
	}
	return s
}

// ShardCount reports the number of lock stripes.
func (s *Store) ShardCount() int { return len(s.shards) }

// KeyHash is the hash the store stripes its keys with: FNV-1a over the
// string, inlined so the per-record hot path allocates nothing. It is
// exported so callers partitioning work by the same keys (the streaming
// fan-in shards objects across workers) agree with the store's routing.
func KeyHash(key string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return h
}

// shardFor routes a key (an object id or a trajectory id, depending on the
// table) to its stripe.
func (s *Store) shardFor(key string) *shard {
	if len(s.shards) == 1 {
		return s.shards[0]
	}
	return s.shards[KeyHash(key)%uint32(len(s.shards))]
}

// lockTimed acquires sh.mu, timing actual waits into the stripe-wait metric.
// An uncontended acquisition succeeds the TryLock and costs exactly what a
// plain Lock's fast path costs — no extra atomics, no clock reads — so the
// record hot path pays nothing for this. Only when the stripe is already
// held (the event the histogram exists to see) do the two clock reads
// happen, and a wait is orders of magnitude longer than they are.
func lockTimed(sh *shard) {
	if sh.mu.TryLock() {
		return
	}
	if !obs.Enabled() {
		sh.mu.Lock()
		return
	}
	t0 := time.Now()
	sh.mu.Lock()
	obs.StoreStripeWaitNs.ObserveNs(time.Since(t0).Nanoseconds())
}

// PutRecords appends raw GPS records to the record table. Records are
// grouped by object first so a batch locks each object's stripe once and the
// attached mutation log receives one positional entry per object sub-batch.
func (s *Store) PutRecords(records []gps.Record) {
	if len(records) == 0 {
		return
	}
	obs.StoreMutRecords.Add(int64(len(records)))
	l := s.mutationLog()
	if len(records) == 1 { // the streaming path's per-record hot path
		r := records[0]
		sh := s.shardFor(r.ObjectID)
		lockTimed(sh)
		if l != nil {
			l.LogMutation(Mutation{Op: MutPutRecords, ObjectID: r.ObjectID,
				Start: sh.frozenRecs(r.ObjectID) + len(sh.records[r.ObjectID]), Records: records})
		}
		sh.records[r.ObjectID] = append(sh.records[r.ObjectID], r)
		sh.recordCount++
		sh.mu.Unlock()
		return
	}
	byObject := map[string][]gps.Record{}
	order := make([]string, 0, 8)
	for _, r := range records {
		if _, seen := byObject[r.ObjectID]; !seen {
			order = append(order, r.ObjectID)
		}
		byObject[r.ObjectID] = append(byObject[r.ObjectID], r)
	}
	for _, obj := range order {
		recs := byObject[obj]
		sh := s.shardFor(obj)
		lockTimed(sh)
		if l != nil {
			l.LogMutation(Mutation{Op: MutPutRecords, ObjectID: obj,
				Start: sh.frozenRecs(obj) + len(sh.records[obj]), Records: recs})
		}
		sh.records[obj] = append(sh.records[obj], recs...)
		sh.recordCount += len(recs)
		sh.mu.Unlock()
	}
}

// Records returns the raw records of an object (a copy): the frozen prefix
// read through the cold tier, then the heap tail.
func (s *Store) Records(objectID string) []gps.Record {
	sh := s.shardFor(objectID)
	sh.mu.RLock()
	base := sh.frozenRecs(objectID)
	tail := append([]gps.Record(nil), sh.records[objectID]...)
	sh.mu.RUnlock()
	if base == 0 {
		return tail
	}
	out := s.coldTier().ColdRecords(objectID, make([]gps.Record, 0, base+len(tail)))
	return append(out, tail...)
}

// RecordCount returns the total number of stored GPS records. The count is
// a running total per stripe, so the query is O(shards).
func (s *Store) RecordCount() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += sh.recordCount
		sh.mu.RUnlock()
	}
	return n
}

// PutTrajectory stores a raw trajectory.
func (s *Store) PutTrajectory(t *gps.RawTrajectory) error {
	if t == nil || t.ID == "" {
		return errors.New("store: trajectory must have an id")
	}
	obs.StoreMutTrajectories.Inc()
	ts := s.shardFor(t.ID)
	ts.mu.Lock()
	if l := s.mutationLog(); l != nil {
		l.LogMutation(Mutation{Op: MutPutTrajectory, ObjectID: t.ObjectID,
			TrajectoryID: t.ID, Trajectory: t})
	}
	_, exists := ts.trajectories[t.ID]
	if !exists && ts.frozen != nil {
		// A re-put of a frozen trajectory supersedes the cold copy: the heap
		// holds the content again and the next freeze re-emits it.
		if _, cold := ts.frozen.trajs[t.ID]; cold {
			delete(ts.frozen.trajs, t.ID)
			exists = true
		}
	}
	if s.Tiered() {
		ts.bumpGen(freezeKey{table: frzTrajectory, key: t.ID})
	}
	ts.trajectories[t.ID] = t
	ts.mu.Unlock()
	if !exists {
		// The object index lives in the object's stripe; lock it after the
		// trajectory stripe is released (sequential, never nested). The
		// existence check above is what keeps concurrent re-puts of the same
		// id from double-indexing it.
		os := s.shardFor(t.ObjectID)
		os.mu.Lock()
		os.trajByObject[t.ObjectID] = append(os.trajByObject[t.ObjectID], t.ID)
		os.mu.Unlock()
	}
	return nil
}

// Trajectory returns a stored raw trajectory by id, reading through the
// cold tier for frozen trajectories.
func (s *Store) Trajectory(id string) (*gps.RawTrajectory, bool) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	t, ok := sh.trajectories[id]
	cold := false
	if !ok && sh.frozen != nil {
		_, cold = sh.frozen.trajs[id]
	}
	sh.mu.RUnlock()
	if ok {
		return t, true
	}
	if cold {
		return s.coldTier().ColdTrajectory(id)
	}
	return nil, false
}

// TrajectoryIDs returns the ids of the stored trajectories of an object,
// in insertion order. With an empty objectID it returns all trajectory ids
// across every stripe, sorted lexicographically.
func (s *Store) TrajectoryIDs(objectID string) []string {
	if objectID != "" {
		sh := s.shardFor(objectID)
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		return append([]string(nil), sh.trajByObject[objectID]...)
	}
	var out []string
	for _, sh := range s.shards {
		sh.mu.RLock()
		for id := range sh.trajectories {
			out = append(out, id)
		}
		if sh.frozen != nil {
			for id := range sh.frozen.trajs {
				out = append(out, id)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// TrajectoryCount returns the number of stored raw trajectories (heap tail
// plus frozen; the two sets are disjoint — a re-put moves an id back to the
// heap).
func (s *Store) TrajectoryCount() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += len(sh.trajectories)
		if sh.frozen != nil {
			n += len(sh.frozen.trajs)
		}
		sh.mu.RUnlock()
	}
	return n
}

// PutEpisodes stores the stop/move episodes of a trajectory (replacing any
// previously stored episodes for that trajectory).
func (s *Store) PutEpisodes(trajectoryID string, eps []*episode.Episode) error {
	if trajectoryID == "" {
		return errors.New("store: empty trajectory id")
	}
	obs.StoreMutEpisodes.Inc()
	sh := s.shardFor(trajectoryID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if l := s.mutationLog(); l != nil {
		l.LogMutation(Mutation{Op: MutPutEpisodes, TrajectoryID: trajectoryID, Episodes: eps})
	}
	sh.uncountEpisodes(sh.episodes[trajectoryID])
	if sh.frozen != nil {
		// The replace supersedes the frozen prefix too: uncount it, drop the
		// base (reads become heap-only) and fail any freeze capture in
		// flight. The dead segment runs are shadowed by the full re-freeze
		// the next checkpoint writes.
		if base, ok := sh.frozen.eps[trajectoryID]; ok {
			stops := sh.frozen.epStops[trajectoryID]
			sh.stopCount -= stops
			sh.moveCount -= base - stops
			delete(sh.frozen.eps, trajectoryID)
			delete(sh.frozen.epStops, trajectoryID)
		}
	}
	if s.Tiered() {
		sh.bumpGen(freezeKey{table: frzEpisodes, key: trajectoryID})
	}
	sh.episodes[trajectoryID] = append([]*episode.Episode(nil), eps...)
	sh.countEpisodes(eps)
	return nil
}

// AppendEpisodes appends episodes to a trajectory's stored sequence without
// replacing what is already there — the streaming pipeline's write path,
// where episodes of one trajectory arrive one at a time.
func (s *Store) AppendEpisodes(trajectoryID string, eps ...*episode.Episode) error {
	if trajectoryID == "" {
		return errors.New("store: empty trajectory id")
	}
	obs.StoreMutEpisodes.Inc()
	sh := s.shardFor(trajectoryID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if l := s.mutationLog(); l != nil {
		l.LogMutation(Mutation{Op: MutAppendEpisodes, TrajectoryID: trajectoryID,
			Start: sh.frozenEps(trajectoryID) + len(sh.episodes[trajectoryID]), Episodes: eps})
	}
	sh.episodes[trajectoryID] = append(sh.episodes[trajectoryID], eps...)
	sh.countEpisodes(eps)
	return nil
}

// Episodes returns the episodes stored for a trajectory: the frozen prefix
// read through the cold tier, then the heap tail.
func (s *Store) Episodes(trajectoryID string) []*episode.Episode {
	sh := s.shardFor(trajectoryID)
	sh.mu.RLock()
	base := sh.frozenEps(trajectoryID)
	tail := append([]*episode.Episode(nil), sh.episodes[trajectoryID]...)
	sh.mu.RUnlock()
	if base == 0 {
		return tail
	}
	out := s.coldTier().ColdEpisodes(trajectoryID, make([]*episode.Episode, 0, base+len(tail)))
	return append(out, tail...)
}

// EpisodeCounts returns the total number of stop and move episodes stored.
// Like RecordCount it reads per-stripe running totals, O(shards).
func (s *Store) EpisodeCounts() (stops, moves int) {
	for _, sh := range s.shards {
		sh.mu.RLock()
		stops += sh.stopCount
		moves += sh.moveCount
		sh.mu.RUnlock()
	}
	return stops, moves
}

// PutStructured stores a structured semantic trajectory under its
// interpretation (region, line, point, merged ...).
func (s *Store) PutStructured(st *core.StructuredTrajectory) error {
	if st == nil || st.ID == "" {
		return errors.New("store: structured trajectory must have an id")
	}
	if st.Interpretation == "" {
		return errors.New("store: structured trajectory must name its interpretation")
	}
	obs.StoreMutStructured.Inc()
	sh := s.shardFor(st.ID)
	sh.mu.Lock()
	if l := s.mutationLog(); l != nil {
		l.LogMutation(Mutation{Op: MutPutStructured, ObjectID: st.ObjectID,
			TrajectoryID: st.ID, Interpretation: st.Interpretation, Tuples: st.Tuples})
	}
	byInterp, ok := sh.structured[st.ID]
	if !ok {
		byInterp = structuredByInterp{}
		sh.structured[st.ID] = byInterp
	}
	if _, exists := byInterp[st.Interpretation]; !exists {
		sh.structCount++
	}
	k := tupKey{st.ID, st.Interpretation}
	var invalidate ColdTier
	if sh.frozen != nil {
		// The replace supersedes the key's frozen tuples and their overlay;
		// the tier stops scanning the dead runs immediately, and the next
		// freeze re-emits the full sequence as a put run that shadows them
		// at recovery.
		if _, cold := sh.frozen.tups[k]; cold {
			delete(sh.frozen.tups, k)
			invalidate = s.coldTier()
		}
		if ov := sh.frozen.overlay[k]; ov != nil {
			s.overlayN.Add(int64(-len(ov)))
			delete(sh.frozen.overlay, k)
		}
	}
	if s.Tiered() {
		sh.bumpGen(freezeKey{table: frzTuples, key: st.ID, interp: st.Interpretation})
	}
	byInterp[st.Interpretation] = st
	var events []TupleEvent
	sink := s.sink()
	if sink != nil {
		events = tupleEvents(st, 0, 0)
	}
	if invalidate != nil {
		invalidate.InvalidateTuples(st.ID, st.Interpretation)
	}
	sh.mu.Unlock()
	if sink != nil {
		sink.StructuredReplaced(st.ID, st.ObjectID, st.Interpretation, events)
	}
	return nil
}

// AppendStructuredTuples appends tuples to the structured trajectory stored
// under (trajectoryID, interpretation), creating it when absent. It is the
// incremental counterpart of PutStructured: the streaming pipeline appends
// each episode's tuples as the episode closes, and concurrent appends to
// different trajectories are safe.
func (s *Store) AppendStructuredTuples(trajectoryID, objectID, interpretation string, tuples ...*core.EpisodeTuple) error {
	if trajectoryID == "" {
		return errors.New("store: structured trajectory must have an id")
	}
	if interpretation == "" {
		return errors.New("store: structured trajectory must name its interpretation")
	}
	obs.StoreMutStructured.Inc()
	sh := s.shardFor(trajectoryID)
	sh.mu.Lock()
	byInterp, ok := sh.structured[trajectoryID]
	if !ok {
		byInterp = structuredByInterp{}
		sh.structured[trajectoryID] = byInterp
	}
	st, ok := byInterp[interpretation]
	if !ok {
		st = &core.StructuredTrajectory{ID: trajectoryID, ObjectID: objectID, Interpretation: interpretation}
		byInterp[interpretation] = st
		sh.structCount++
	}
	base := sh.frozenTups(tupKey{trajectoryID, interpretation})
	start := len(st.Tuples)
	if l := s.mutationLog(); l != nil {
		l.LogMutation(Mutation{Op: MutAppendTuples, ObjectID: objectID,
			TrajectoryID: trajectoryID, Interpretation: interpretation,
			Start: base + start, Tuples: tuples})
	}
	st.Tuples = append(st.Tuples, tuples...)
	var events []TupleEvent
	sink := s.sink()
	if sink != nil && len(tuples) > 0 {
		events = tupleEvents(st, start, base)
	}
	sh.mu.Unlock()
	if len(events) > 0 {
		sink.TuplesAppended(events)
	}
	return nil
}

// Structured returns the stored structured trajectory for a trajectory id
// and interpretation. On an all-heap store (or a key with no frozen prefix)
// it returns the stored object; when part of the key froze, it materialises
// a combined view — frozen tuples read through the cold tier (overlay
// applied), then the heap tail.
func (s *Store) Structured(trajectoryID, interpretation string) (*core.StructuredTrajectory, bool) {
	sh := s.shardFor(trajectoryID)
	sh.mu.RLock()
	st, ok := sh.structured[trajectoryID][interpretation]
	if !ok {
		sh.mu.RUnlock()
		return nil, false
	}
	k := tupKey{trajectoryID, interpretation}
	base := sh.frozenTups(k)
	if base == 0 {
		sh.mu.RUnlock()
		return st, true
	}
	tail := append([]*core.EpisodeTuple(nil), st.Tuples...)
	obj := st.ObjectID
	var overlay map[int]core.EpisodeTuple
	if s.overlayN.Load() != 0 {
		overlay = sh.copyOverlay(k)
	}
	sh.mu.RUnlock()
	cold := s.coldTuplesFor(trajectoryID, interpretation, base, overlay, make([]core.EpisodeTuple, 0, base))
	full := make([]*core.EpisodeTuple, 0, len(cold)+len(tail))
	for i := range cold {
		full = append(full, &cold[i])
	}
	full = append(full, tail...)
	return &core.StructuredTrajectory{
		ID: trajectoryID, ObjectID: obj, Interpretation: interpretation, Tuples: full,
	}, true
}

// Interpretations lists the interpretations stored for a trajectory.
func (s *Store) Interpretations(trajectoryID string) []string {
	sh := s.shardFor(trajectoryID)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	byInterp := sh.structured[trajectoryID]
	out := make([]string, 0, len(byInterp))
	for k := range byInterp {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// StructuredIDs returns the ids of all trajectories that have at least one
// stored structured interpretation, sorted lexicographically.
func (s *Store) StructuredIDs() []string {
	var out []string
	for _, sh := range s.shards {
		sh.mu.RLock()
		for id := range sh.structured {
			out = append(out, id)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// StructuredCount returns the number of stored structured trajectories
// across all interpretations (an O(shards) running total).
func (s *Store) StructuredCount() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += sh.structCount
		sh.mu.RUnlock()
	}
	return n
}
