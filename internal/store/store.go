// Package store implements SeMiTri's Semantic Trajectory Store: the
// repository that holds raw GPS records, stop/move episodes and the
// structured semantic trajectories produced by the annotation layers, and
// that the analytics layer and applications query (Fig. 2).
//
// The paper uses PostgreSQL/PostGIS; this implementation is an embedded,
// mutex-guarded in-memory store with optional JSON persistence, which keeps
// the repository dependency-free while preserving the behaviour that matters
// to the experiments: dedicated tables per artefact kind, query-by-object /
// time-window / annotation interfaces, and the fact that storing results is
// the slowest pipeline stage (it serialises and writes everything, Fig. 17).
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/geo"
	"semitri/internal/gps"
)

// Store is the semantic trajectory store. The zero value is not usable; use
// New. All methods are safe for concurrent use.
type Store struct {
	mu sync.RWMutex
	// tables
	records      map[string][]gps.Record       // object id -> raw records
	trajectories map[string]*gps.RawTrajectory // trajectory id -> raw trajectory
	episodes     map[string][]*episode.Episode // trajectory id -> episodes
	structured   map[string]structuredByInterp // trajectory id -> interpretation -> SST
	trajByObject map[string][]string           // object id -> trajectory ids
}

type structuredByInterp map[string]*core.StructuredTrajectory

// New returns an empty store.
func New() *Store {
	return &Store{
		records:      map[string][]gps.Record{},
		trajectories: map[string]*gps.RawTrajectory{},
		episodes:     map[string][]*episode.Episode{},
		structured:   map[string]structuredByInterp{},
		trajByObject: map[string][]string{},
	}
}

// PutRecords appends raw GPS records to the record table.
func (s *Store) PutRecords(records []gps.Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range records {
		s.records[r.ObjectID] = append(s.records[r.ObjectID], r)
	}
}

// Records returns the raw records of an object (a copy).
func (s *Store) Records(objectID string) []gps.Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]gps.Record(nil), s.records[objectID]...)
}

// RecordCount returns the total number of stored GPS records.
func (s *Store) RecordCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, rs := range s.records {
		n += len(rs)
	}
	return n
}

// PutTrajectory stores a raw trajectory.
func (s *Store) PutTrajectory(t *gps.RawTrajectory) error {
	if t == nil || t.ID == "" {
		return errors.New("store: trajectory must have an id")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.trajectories[t.ID]; !exists {
		s.trajByObject[t.ObjectID] = append(s.trajByObject[t.ObjectID], t.ID)
	}
	s.trajectories[t.ID] = t
	return nil
}

// Trajectory returns a stored raw trajectory by id.
func (s *Store) Trajectory(id string) (*gps.RawTrajectory, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.trajectories[id]
	return t, ok
}

// TrajectoryIDs returns the ids of the stored trajectories of an object,
// in insertion order. With an empty objectID it returns all trajectory ids.
func (s *Store) TrajectoryIDs(objectID string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if objectID != "" {
		return append([]string(nil), s.trajByObject[objectID]...)
	}
	out := make([]string, 0, len(s.trajectories))
	for id := range s.trajectories {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// TrajectoryCount returns the number of stored raw trajectories.
func (s *Store) TrajectoryCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.trajectories)
}

// PutEpisodes stores the stop/move episodes of a trajectory (replacing any
// previously stored episodes for that trajectory).
func (s *Store) PutEpisodes(trajectoryID string, eps []*episode.Episode) error {
	if trajectoryID == "" {
		return errors.New("store: empty trajectory id")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.episodes[trajectoryID] = append([]*episode.Episode(nil), eps...)
	return nil
}

// AppendEpisodes appends episodes to a trajectory's stored sequence without
// replacing what is already there — the streaming pipeline's write path,
// where episodes of one trajectory arrive one at a time.
func (s *Store) AppendEpisodes(trajectoryID string, eps ...*episode.Episode) error {
	if trajectoryID == "" {
		return errors.New("store: empty trajectory id")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.episodes[trajectoryID] = append(s.episodes[trajectoryID], eps...)
	return nil
}

// Episodes returns the episodes stored for a trajectory.
func (s *Store) Episodes(trajectoryID string) []*episode.Episode {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]*episode.Episode(nil), s.episodes[trajectoryID]...)
}

// EpisodeCounts returns the total number of stop and move episodes stored.
func (s *Store) EpisodeCounts() (stops, moves int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, eps := range s.episodes {
		for _, e := range eps {
			if e.Kind == episode.Stop {
				stops++
			} else {
				moves++
			}
		}
	}
	return stops, moves
}

// PutStructured stores a structured semantic trajectory under its
// interpretation (region, line, point, merged ...).
func (s *Store) PutStructured(st *core.StructuredTrajectory) error {
	if st == nil || st.ID == "" {
		return errors.New("store: structured trajectory must have an id")
	}
	if st.Interpretation == "" {
		return errors.New("store: structured trajectory must name its interpretation")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	byInterp, ok := s.structured[st.ID]
	if !ok {
		byInterp = structuredByInterp{}
		s.structured[st.ID] = byInterp
	}
	byInterp[st.Interpretation] = st
	return nil
}

// AppendStructuredTuples appends tuples to the structured trajectory stored
// under (trajectoryID, interpretation), creating it when absent. It is the
// incremental counterpart of PutStructured: the streaming pipeline appends
// each episode's tuples as the episode closes, and concurrent appends to
// different trajectories are safe.
func (s *Store) AppendStructuredTuples(trajectoryID, objectID, interpretation string, tuples ...*core.EpisodeTuple) error {
	if trajectoryID == "" {
		return errors.New("store: structured trajectory must have an id")
	}
	if interpretation == "" {
		return errors.New("store: structured trajectory must name its interpretation")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	byInterp, ok := s.structured[trajectoryID]
	if !ok {
		byInterp = structuredByInterp{}
		s.structured[trajectoryID] = byInterp
	}
	st, ok := byInterp[interpretation]
	if !ok {
		st = &core.StructuredTrajectory{ID: trajectoryID, ObjectID: objectID, Interpretation: interpretation}
		byInterp[interpretation] = st
	}
	st.Tuples = append(st.Tuples, tuples...)
	return nil
}

// Structured returns the stored structured trajectory for a trajectory id
// and interpretation.
func (s *Store) Structured(trajectoryID, interpretation string) (*core.StructuredTrajectory, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	byInterp, ok := s.structured[trajectoryID]
	if !ok {
		return nil, false
	}
	st, ok := byInterp[interpretation]
	return st, ok
}

// Interpretations lists the interpretations stored for a trajectory.
func (s *Store) Interpretations(trajectoryID string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	byInterp := s.structured[trajectoryID]
	out := make([]string, 0, len(byInterp))
	for k := range byInterp {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// StructuredIDs returns the ids of all trajectories that have at least one
// stored structured interpretation, sorted lexicographically.
func (s *Store) StructuredIDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.structured))
	for id := range s.structured {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// StructuredCount returns the number of stored structured trajectories
// across all interpretations.
func (s *Store) StructuredCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, byInterp := range s.structured {
		n += len(byInterp)
	}
	return n
}

// QueryStopsByAnnotation returns, across all stored structured trajectories
// of the given interpretation, the stop tuples whose annotation `key` equals
// `value` (e.g. all stops annotated with the "item sale" POI category).
func (s *Store) QueryStopsByAnnotation(interpretation, key, value string) []*core.EpisodeTuple {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*core.EpisodeTuple
	ids := make([]string, 0, len(s.structured))
	for id := range s.structured {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		st, ok := s.structured[id][interpretation]
		if !ok {
			continue
		}
		for _, tp := range st.Tuples {
			if tp.Kind == episode.Stop && tp.Annotations.Value(key) == value {
				out = append(out, tp)
			}
		}
	}
	return out
}

// QueryTuplesInWindow returns the tuples of a trajectory's interpretation
// overlapping the [from, to] time window.
func (s *Store) QueryTuplesInWindow(trajectoryID, interpretation string, from, to time.Time) []*core.EpisodeTuple {
	st, ok := s.Structured(trajectoryID, interpretation)
	if !ok {
		return nil
	}
	var out []*core.EpisodeTuple
	for _, tp := range st.Tuples {
		if tp.TimeOut.Before(from) || tp.TimeIn.After(to) {
			continue
		}
		out = append(out, tp)
	}
	return out
}

// snapshot is the JSON persistence format of the store.
type snapshot struct {
	Records      map[string][]jsonRecord          `json:"records"`
	Trajectories []jsonTrajectory                 `json:"trajectories"`
	Episodes     map[string][]*episode.Episode    `json:"episodes"`
	Structured   map[string]map[string]jsonStruct `json:"structured"`
}

type jsonRecord struct {
	Object string    `json:"object"`
	X      float64   `json:"x"`
	Y      float64   `json:"y"`
	Time   time.Time `json:"time"`
}

type jsonTrajectory struct {
	ID       string       `json:"id"`
	ObjectID string       `json:"object_id"`
	Records  []jsonRecord `json:"records"`
}

type jsonStruct struct {
	ID             string      `json:"id"`
	ObjectID       string      `json:"object_id"`
	Interpretation string      `json:"interpretation"`
	Tuples         []jsonTuple `json:"tuples"`
}

type jsonTuple struct {
	Kind        string            `json:"kind"`
	Place       *core.Place       `json:"place,omitempty"`
	TimeIn      time.Time         `json:"time_in"`
	TimeOut     time.Time         `json:"time_out"`
	Annotations []core.Annotation `json:"annotations,omitempty"`
}

// Save writes the store contents as JSON to the given path, creating parent
// directories as needed.
func (s *Store) Save(path string) error {
	s.mu.RLock()
	snap := snapshot{
		Records:    map[string][]jsonRecord{},
		Episodes:   map[string][]*episode.Episode{},
		Structured: map[string]map[string]jsonStruct{},
	}
	for obj, recs := range s.records {
		rows := make([]jsonRecord, len(recs))
		for i, r := range recs {
			rows[i] = jsonRecord{Object: r.ObjectID, X: r.Position.X, Y: r.Position.Y, Time: r.Time}
		}
		snap.Records[obj] = rows
	}
	for _, t := range s.trajectories {
		rows := make([]jsonRecord, len(t.Records))
		for i, r := range t.Records {
			rows[i] = jsonRecord{Object: r.ObjectID, X: r.Position.X, Y: r.Position.Y, Time: r.Time}
		}
		snap.Trajectories = append(snap.Trajectories, jsonTrajectory{ID: t.ID, ObjectID: t.ObjectID, Records: rows})
	}
	for id, eps := range s.episodes {
		snap.Episodes[id] = eps
	}
	for id, byInterp := range s.structured {
		m := map[string]jsonStruct{}
		for interp, st := range byInterp {
			js := jsonStruct{ID: st.ID, ObjectID: st.ObjectID, Interpretation: st.Interpretation}
			for _, tp := range st.Tuples {
				js.Tuples = append(js.Tuples, jsonTuple{
					Kind:        tp.Kind.String(),
					Place:       tp.Place,
					TimeIn:      tp.TimeIn,
					TimeOut:     tp.TimeOut,
					Annotations: tp.Annotations.All(),
				})
			}
			m[interp] = js
		}
		snap.Structured[id] = m
	}
	s.mu.RUnlock()

	sort.Slice(snap.Trajectories, func(i, j int) bool { return snap.Trajectories[i].ID < snap.Trajectories[j].ID })
	data, err := json.MarshalIndent(&snap, "", " ")
	if err != nil {
		return fmt.Errorf("store: marshal: %w", err)
	}
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("store: mkdir: %w", err)
		}
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("store: write: %w", err)
	}
	return nil
}

// Load reads a snapshot produced by Save into a fresh store.
func Load(path string) (*Store, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: read: %w", err)
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("store: unmarshal: %w", err)
	}
	s := New()
	for _, rows := range snap.Records {
		recs := make([]gps.Record, len(rows))
		for i, r := range rows {
			recs[i] = gps.Record{ObjectID: r.Object, Position: geo.Pt(r.X, r.Y), Time: r.Time}
		}
		s.PutRecords(recs)
	}
	for _, jt := range snap.Trajectories {
		recs := make([]gps.Record, len(jt.Records))
		for i, r := range jt.Records {
			recs[i] = gps.Record{ObjectID: r.Object, Position: geo.Pt(r.X, r.Y), Time: r.Time}
		}
		if err := s.PutTrajectory(&gps.RawTrajectory{ID: jt.ID, ObjectID: jt.ObjectID, Records: recs}); err != nil {
			return nil, err
		}
	}
	for id, eps := range snap.Episodes {
		if err := s.PutEpisodes(id, eps); err != nil {
			return nil, err
		}
	}
	for _, byInterp := range snap.Structured {
		for _, js := range byInterp {
			st := &core.StructuredTrajectory{ID: js.ID, ObjectID: js.ObjectID, Interpretation: js.Interpretation}
			for _, jtp := range js.Tuples {
				kind := episode.Move
				if jtp.Kind == "stop" {
					kind = episode.Stop
				}
				tp := &core.EpisodeTuple{Kind: kind, Place: jtp.Place, TimeIn: jtp.TimeIn, TimeOut: jtp.TimeOut}
				for _, a := range jtp.Annotations {
					tp.Annotations.Add(a)
				}
				st.Tuples = append(st.Tuples, tp)
			}
			if err := s.PutStructured(st); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}
