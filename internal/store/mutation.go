package store

import (
	"errors"
	"sync/atomic"

	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/gps"
)

// MutationOp enumerates the store's committed write operations. Together
// with Mutation it is the currency between the store and a durability layer
// (internal/wal): every mutating method reports the mutation it just
// committed to the attached MutationLog, and Apply replays a logged mutation
// back into a store during recovery.
type MutationOp uint8

const (
	// MutPutRecords appends raw GPS records of one object (positional).
	MutPutRecords MutationOp = iota + 1
	// MutPutTrajectory stores (or replaces) a raw trajectory.
	MutPutTrajectory
	// MutPutEpisodes replaces a trajectory's episode sequence.
	MutPutEpisodes
	// MutAppendEpisodes appends to a trajectory's episode sequence (positional).
	MutAppendEpisodes
	// MutPutStructured replaces a structured trajectory's tuple sequence.
	MutPutStructured
	// MutAppendTuples appends tuples to a structured trajectory (positional).
	MutAppendTuples
	// MutMergeTuple merges annotations (and optionally a place link) into one
	// stored tuple; Start carries the tuple index.
	MutMergeTuple
)

// Mutation is one committed store mutation, in a form that can be
// serialised, shipped and replayed. Positional append ops carry in Start the
// table length observed immediately before the append (captured under the
// stripe lock), which is what makes replay over a later snapshot idempotent:
// Apply skips the prefix a snapshot already contains and appends only the
// missing suffix.
type Mutation struct {
	Op             MutationOp
	ObjectID       string
	TrajectoryID   string
	Interpretation string
	// Start is the pre-append table length for positional ops and the tuple
	// index for MutMergeTuple.
	Start int

	Records     []gps.Record         // MutPutRecords
	Trajectory  *gps.RawTrajectory   // MutPutTrajectory
	Episodes    []*episode.Episode   // MutPutEpisodes, MutAppendEpisodes
	Tuples      []*core.EpisodeTuple // MutPutStructured, MutAppendTuples
	Place       *core.Place          // MutMergeTuple
	Annotations []core.Annotation    // MutMergeTuple
}

// MutationLog receives every committed store mutation, in commit order per
// lock stripe. The store calls LogMutation while it still holds the stripe
// lock of the mutated table, so implementations must be fast and must not
// call back into the store; data reachable from the mutation (records,
// episodes, tuples) may be mutated by later writers under the same stripe
// lock, so anything retained past the call must be copied or serialised
// inside LogMutation.
type MutationLog interface {
	LogMutation(m Mutation)
}

// logHolder wraps the attached MutationLog so it fits an atomic pointer.
type logHolder struct{ log MutationLog }

// mlogPtr is the atomic holder AttachLog writes and every mutation path
// reads; nil (the common case) costs one atomic load per mutation.
type mlogPtr = atomic.Pointer[logHolder]

// AttachLog registers a mutation log (nil detaches). Attach it before
// writers start: mutations committed earlier are not re-delivered. At most
// one log is attached at a time; a later call replaces the earlier one.
func (s *Store) AttachLog(l MutationLog) {
	if l == nil {
		s.mlog.Store(nil)
		return
	}
	s.mlog.Store(&logHolder{log: l})
}

// mutationLog returns the attached mutation log, or nil.
func (s *Store) mutationLog() MutationLog {
	if h := s.mlog.Load(); h != nil {
		return h.log
	}
	return nil
}

// errBadMutation reports a mutation that cannot be applied (unknown op or a
// missing payload).
var errBadMutation = errors.New("store: malformed mutation")

// replaySuffix returns the index into an n-element positional batch from
// which elements are still missing from a table currently cur elements long,
// given the batch was appended when the table was start elements long. A
// batch fully contained in the current table replays as a no-op (n); a batch
// at or past the current end replays in full (0).
func replaySuffix(cur, start, n int) int {
	switch {
	case cur <= start:
		return 0
	case cur >= start+n:
		return n
	default:
		return cur - start
	}
}

// recordLen returns the current logical length of one object's record table
// (frozen prefix plus heap tail — mutation Starts are logical too).
func (s *Store) recordLen(objectID string) int {
	sh := s.shardFor(objectID)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.frozenRecs(objectID) + len(sh.records[objectID])
}

// episodeLen returns the current logical length of one trajectory's episode
// table.
func (s *Store) episodeLen(trajectoryID string) int {
	sh := s.shardFor(trajectoryID)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.frozenEps(trajectoryID) + len(sh.episodes[trajectoryID])
}

// Apply replays one logged mutation into the store. Replay is idempotent
// with respect to state the store already holds: positional appends skip the
// already-present prefix, replaces re-write the same content and annotation
// merges re-run the same confidence-max rule, so replaying a log tail over a
// snapshot that was taken mid-tail converges to the exact live state.
//
// Apply is meant for recovery into a store without concurrent writers (the
// per-op read-then-append is not atomic against other mutators of the same
// key) and before a WAL is attached (mutations applied here would otherwise
// be logged again).
func (s *Store) Apply(m Mutation) error {
	switch m.Op {
	case MutPutRecords:
		from := replaySuffix(s.recordLen(m.ObjectID), m.Start, len(m.Records))
		if from < len(m.Records) {
			s.PutRecords(m.Records[from:])
		}
		return nil
	case MutPutTrajectory:
		if m.Trajectory == nil {
			return errBadMutation
		}
		return s.PutTrajectory(m.Trajectory)
	case MutPutEpisodes:
		return s.PutEpisodes(m.TrajectoryID, m.Episodes)
	case MutAppendEpisodes:
		from := replaySuffix(s.episodeLen(m.TrajectoryID), m.Start, len(m.Episodes))
		if from < len(m.Episodes) {
			return s.AppendEpisodes(m.TrajectoryID, m.Episodes[from:]...)
		}
		return nil
	case MutPutStructured:
		return s.PutStructured(&core.StructuredTrajectory{
			ID:             m.TrajectoryID,
			ObjectID:       m.ObjectID,
			Interpretation: m.Interpretation,
			Tuples:         m.Tuples,
		})
	case MutAppendTuples:
		from := replaySuffix(s.TupleCount(m.TrajectoryID, m.Interpretation), m.Start, len(m.Tuples))
		// A zero-tuple append still creates the interpretation (the streaming
		// line layer relies on that), so it replays even when nothing is
		// missing.
		if from < len(m.Tuples) || len(m.Tuples) == 0 {
			return s.AppendStructuredTuples(m.TrajectoryID, m.ObjectID, m.Interpretation, m.Tuples[from:]...)
		}
		return nil
	case MutMergeTuple:
		return s.MergeTupleAnnotations(m.TrajectoryID, m.Interpretation, m.Start, m.Place, m.Annotations)
	}
	return errBadMutation
}
