package store

import (
	"sync"

	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/gps"
)

// shard is one lock stripe of the store: a full copy of the table set
// guarded by its own mutex, plus the stripe's share of the running totals.
// Which stripe holds a row is decided by Store.shardFor on the table's key
// (object id for records/trajByObject, trajectory id for the rest).
type shard struct {
	mu sync.RWMutex
	// tables — with a cold tier attached these hold only the mutable tail;
	// each key's frozen prefix length lives in frozen and resolves through
	// the tier. Evicted keys keep their (possibly empty) map entry, so key
	// listings never need to consult the tier.
	records      map[string][]gps.Record       // object id -> raw records
	trajectories map[string]*gps.RawTrajectory // trajectory id -> raw trajectory
	episodes     map[string][]*episode.Episode // trajectory id -> episodes
	structured   map[string]structuredByInterp // trajectory id -> interpretation -> SST
	trajByObject map[string][]string           // object id -> trajectory ids

	// running totals, so aggregate queries are O(shards) instead of
	// full-table scans. They are logical — frozen rows stay counted.
	// Guarded by mu like the tables they mirror.
	recordCount int
	stopCount   int
	moveCount   int
	structCount int // (trajectory, interpretation) pairs stored

	// frozen is the stripe's cold-tier bookkeeping; nil until the store is
	// tiered and something in this stripe froze (or merged), so untiered
	// stores pay one nil check. Guarded by mu.
	frozen *shardFrozen
}

// tupKey identifies one structured interpretation of one trajectory.
type tupKey struct{ traj, interp string }

// shardFrozen tracks, per key, how much of the key's content lives in the
// cold tier, plus the annotation-merge overlay for frozen tuples and the
// per-key generation counters a freeze uses to detect writes racing it.
type shardFrozen struct {
	recs    map[string]int // object -> frozen record count
	eps     map[string]int // trajectory -> frozen episode count
	epStops map[string]int // trajectory -> stop count within the frozen episodes
	tups    map[tupKey]int // (trajectory, interpretation) -> frozen tuple count;
	// entry presence (even at 0) means the tier persists the key's existence.
	trajs map[string]string // frozen trajectory id -> object id

	// overlay holds merged replacements for frozen tuples: reads consult it
	// before the tier, and the next freeze writes the dirty entries out as
	// merge frames. Entries stay for the life of the process (they are the
	// only heap residency frozen tuples can reacquire).
	overlay map[tupKey]map[int]*core.EpisodeTuple
	// overlayDirty queues overlay writes for the next freeze, in merge
	// order; CollectTail snapshots a prefix and CommitFreeze drops it.
	overlayDirty []overlayRef

	// gens counts content-invalidating writes per key: whole-sequence
	// replaces and in-place heap merges. A freeze captures the generation at
	// collect time and commits a key's eviction only if it is unchanged.
	gens map[freezeKey]uint64
}

// overlayRef queues one overlay entry for the next freeze.
type overlayRef struct {
	k   tupKey
	idx int
}

// freezeTable enumerates the freezable tables.
type freezeTable uint8

const (
	frzRecords freezeTable = iota + 1
	frzTrajectory
	frzEpisodes
	frzTuples
	frzOverlay
)

// freezeKey identifies one freezable unit: an object's record run, a
// trajectory, an episode sequence or a structured interpretation.
type freezeKey struct {
	table  freezeTable
	key    string // object id for frzRecords, trajectory id otherwise
	interp string // frzTuples/frzOverlay only
}

// frozenMeta returns the stripe's cold bookkeeping, creating it on first
// use. Caller holds mu (or is the single-threaded installer).
func (sh *shard) frozenMeta() *shardFrozen {
	if sh.frozen == nil {
		sh.frozen = &shardFrozen{
			recs:    map[string]int{},
			eps:     map[string]int{},
			epStops: map[string]int{},
			tups:    map[tupKey]int{},
			trajs:   map[string]string{},
			overlay: map[tupKey]map[int]*core.EpisodeTuple{},
			gens:    map[freezeKey]uint64{},
		}
	}
	return sh.frozen
}

// frozenRecs returns the frozen record count of an object. Caller holds mu.
func (sh *shard) frozenRecs(obj string) int {
	if sh.frozen == nil {
		return 0
	}
	return sh.frozen.recs[obj]
}

// frozenEps returns the frozen episode count of a trajectory. Caller holds mu.
func (sh *shard) frozenEps(id string) int {
	if sh.frozen == nil {
		return 0
	}
	return sh.frozen.eps[id]
}

// frozenTups returns the frozen tuple count of (trajectory, interpretation).
// Caller holds mu.
func (sh *shard) frozenTups(k tupKey) int {
	if sh.frozen == nil {
		return 0
	}
	return sh.frozen.tups[k]
}

// bumpGen records a content-invalidating write to a key, failing any freeze
// capture in flight for it. Caller holds mu; only tiered stores pay for it.
func (sh *shard) bumpGen(k freezeKey) {
	sh.frozenMeta().gens[k]++
}

// gen returns a key's current generation. Caller holds mu.
func (sh *shard) gen(k freezeKey) uint64 {
	if sh.frozen == nil {
		return 0
	}
	return sh.frozen.gens[k]
}

func newShard() *shard {
	return &shard{
		records:      map[string][]gps.Record{},
		trajectories: map[string]*gps.RawTrajectory{},
		episodes:     map[string][]*episode.Episode{},
		structured:   map[string]structuredByInterp{},
		trajByObject: map[string][]string{},
	}
}

// countEpisodes adds eps to the stripe's stop/move totals. Caller holds mu.
func (sh *shard) countEpisodes(eps []*episode.Episode) {
	for _, e := range eps {
		if e.Kind == episode.Stop {
			sh.stopCount++
		} else {
			sh.moveCount++
		}
	}
}

// uncountEpisodes removes eps from the stripe's stop/move totals (used when
// PutEpisodes replaces a trajectory's episodes). Caller holds mu.
func (sh *shard) uncountEpisodes(eps []*episode.Episode) {
	for _, e := range eps {
		if e.Kind == episode.Stop {
			sh.stopCount--
		} else {
			sh.moveCount--
		}
	}
}
