package store

import (
	"sync"

	"semitri/internal/episode"
	"semitri/internal/gps"
)

// shard is one lock stripe of the store: a full copy of the table set
// guarded by its own mutex, plus the stripe's share of the running totals.
// Which stripe holds a row is decided by Store.shardFor on the table's key
// (object id for records/trajByObject, trajectory id for the rest).
type shard struct {
	mu sync.RWMutex
	// tables
	records      map[string][]gps.Record       // object id -> raw records
	trajectories map[string]*gps.RawTrajectory // trajectory id -> raw trajectory
	episodes     map[string][]*episode.Episode // trajectory id -> episodes
	structured   map[string]structuredByInterp // trajectory id -> interpretation -> SST
	trajByObject map[string][]string           // object id -> trajectory ids

	// running totals, so aggregate queries are O(shards) instead of
	// full-table scans. Guarded by mu like the tables they mirror.
	recordCount int
	stopCount   int
	moveCount   int
	structCount int // (trajectory, interpretation) pairs stored
}

func newShard() *shard {
	return &shard{
		records:      map[string][]gps.Record{},
		trajectories: map[string]*gps.RawTrajectory{},
		episodes:     map[string][]*episode.Episode{},
		structured:   map[string]structuredByInterp{},
		trajByObject: map[string][]string{},
	}
}

// countEpisodes adds eps to the stripe's stop/move totals. Caller holds mu.
func (sh *shard) countEpisodes(eps []*episode.Episode) {
	for _, e := range eps {
		if e.Kind == episode.Stop {
			sh.stopCount++
		} else {
			sh.moveCount++
		}
	}
}

// uncountEpisodes removes eps from the stripe's stop/move totals (used when
// PutEpisodes replaces a trajectory's episodes). Caller holds mu.
func (sh *shard) uncountEpisodes(eps []*episode.Episode) {
	for _, e := range eps {
		if e.Kind == episode.Stop {
			sh.stopCount--
		} else {
			sh.moveCount--
		}
	}
}

// snapshotInto serialises one stripe's tables into snapshot rows while the
// stripe lock is held. Converting to the JSON row types under the lock is
// what makes Save safe against concurrent writers: stored tuple slices are
// appended to in place by AppendStructuredTuples, so they must not be read
// after the lock is released.
func (sh *shard) snapshotInto(snap *snapshot) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	for obj, recs := range sh.records {
		rows := make([]jsonRecord, len(recs))
		for i, r := range recs {
			rows[i] = jsonRecord{Object: r.ObjectID, X: r.Position.X, Y: r.Position.Y, Time: r.Time}
		}
		snap.Records[obj] = rows
	}
	for _, t := range sh.trajectories {
		rows := make([]jsonRecord, len(t.Records))
		for i, r := range t.Records {
			rows[i] = jsonRecord{Object: r.ObjectID, X: r.Position.X, Y: r.Position.Y, Time: r.Time}
		}
		snap.Trajectories = append(snap.Trajectories, jsonTrajectory{ID: t.ID, ObjectID: t.ObjectID, Records: rows})
	}
	for id, eps := range sh.episodes {
		snap.Episodes[id] = append([]*episode.Episode(nil), eps...)
	}
	for id, byInterp := range sh.structured {
		m := map[string]jsonStruct{}
		for interp, st := range byInterp {
			js := jsonStruct{ID: st.ID, ObjectID: st.ObjectID, Interpretation: st.Interpretation}
			for _, tp := range st.Tuples {
				js.Tuples = append(js.Tuples, jsonTuple{
					Kind:        tp.Kind.String(),
					Place:       tp.Place,
					TimeIn:      tp.TimeIn,
					TimeOut:     tp.TimeOut,
					Annotations: tp.Annotations.All(),
				})
			}
			m[interp] = js
		}
		snap.Structured[id] = m
	}
}
