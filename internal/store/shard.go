package store

import (
	"sync"

	"semitri/internal/episode"
	"semitri/internal/gps"
)

// shard is one lock stripe of the store: a full copy of the table set
// guarded by its own mutex, plus the stripe's share of the running totals.
// Which stripe holds a row is decided by Store.shardFor on the table's key
// (object id for records/trajByObject, trajectory id for the rest).
type shard struct {
	mu sync.RWMutex
	// tables
	records      map[string][]gps.Record       // object id -> raw records
	trajectories map[string]*gps.RawTrajectory // trajectory id -> raw trajectory
	episodes     map[string][]*episode.Episode // trajectory id -> episodes
	structured   map[string]structuredByInterp // trajectory id -> interpretation -> SST
	trajByObject map[string][]string           // object id -> trajectory ids

	// running totals, so aggregate queries are O(shards) instead of
	// full-table scans. Guarded by mu like the tables they mirror.
	recordCount int
	stopCount   int
	moveCount   int
	structCount int // (trajectory, interpretation) pairs stored
}

func newShard() *shard {
	return &shard{
		records:      map[string][]gps.Record{},
		trajectories: map[string]*gps.RawTrajectory{},
		episodes:     map[string][]*episode.Episode{},
		structured:   map[string]structuredByInterp{},
		trajByObject: map[string][]string{},
	}
}

// countEpisodes adds eps to the stripe's stop/move totals. Caller holds mu.
func (sh *shard) countEpisodes(eps []*episode.Episode) {
	for _, e := range eps {
		if e.Kind == episode.Stop {
			sh.stopCount++
		} else {
			sh.moveCount++
		}
	}
}

// uncountEpisodes removes eps from the stripe's stop/move totals (used when
// PutEpisodes replaces a trajectory's episodes). Caller holds mu.
func (sh *shard) uncountEpisodes(eps []*episode.Episode) {
	for _, e := range eps {
		if e.Kind == episode.Stop {
			sh.stopCount--
		} else {
			sh.moveCount--
		}
	}
}
