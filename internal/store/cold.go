package store

import (
	"errors"
	"sort"
	"time"

	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/geo"
	"semitri/internal/gps"
)

// The cold tier: the store's tables can be split LSM-style into a mutable
// heap-resident tail and an immutable frozen prefix that lives in on-disk
// segments (internal/segment). Each key's frozen prefix is tracked per shard
// as a count (records, episodes, tuples) or a membership set (trajectories);
// positions below the count resolve through the attached ColdTier, positions
// at or above it resolve against the heap tail. Indexes, mutation Start
// fields and TupleRefs all stay logical — base + heap offset — so the query
// engine and the WAL replay arithmetic are oblivious to where a tuple
// physically lives.
//
// Annotation merges that target a frozen tuple cannot mutate the immutable
// segment, so they land in a small per-shard overlay (position → merged
// tuple) consulted before the cold tier on every read. Overlay entries are
// written out as merge frames at the next freeze, so recovery rebuilds them.

// ColdTier is the read side of the frozen half of a tiered store,
// implemented by internal/segment. All methods must be safe for concurrent
// use. The store calls Invalidate* while holding the key's stripe lock, so
// implementations must not call back into the store from them; Visit
// methods must not hold tier-internal locks across fn callbacks (fn may
// take stripe locks).
type ColdTier interface {
	// ColdRecords appends the frozen records of an object, in position
	// order, to buf.
	ColdRecords(objectID string, buf []gps.Record) []gps.Record
	// ColdEpisodes appends the frozen episodes of a trajectory to buf.
	ColdEpisodes(trajectoryID string, buf []*episode.Episode) []*episode.Episode
	// ColdTrajectory returns a frozen raw trajectory.
	ColdTrajectory(id string) (*gps.RawTrajectory, bool)
	// ColdTuples appends the frozen tuples of (trajectory, interpretation),
	// in position order, to buf.
	ColdTuples(trajectoryID, interpretation string, buf []core.EpisodeTuple) []core.EpisodeTuple

	// InvalidateTuples drops the live runs of (trajectory, interpretation):
	// a whole-sequence replace superseded the frozen content, and segment
	// scans must stop emitting it.
	InvalidateTuples(trajectoryID, interpretation string)

	// ColdSegments reports the number of live segments; Summaries appends
	// one footer summary per segment (indexed like VisitSegmentTuples's seg).
	ColdSegments() int
	Summaries(buf []SegmentSummary) []SegmentSummary
	// VisitSegmentTuples calls fn for every live frozen tuple of one segment
	// (every interpretation when interpretation is empty), with its logical
	// ref. It reports false when fn stopped the visit early.
	VisitSegmentTuples(seg int, interpretation string, fn func(ref TupleRef, t core.EpisodeTuple) bool) bool
}

// SegmentSummary is the planner-facing digest a segment's footer carries:
// enough to decide, without touching the segment body, that no tuple inside
// can match a query.
type SegmentSummary struct {
	// TimeMin is the smallest tuple TimeIn and TimeMax the largest TimeOut
	// across the segment's tuples (zero times propagate into TimeMin, so a
	// segment holding untimed tuples is never pruned by an upper bound).
	TimeMin, TimeMax time.Time
	// Stops and Moves count the segment's tuples by kind.
	Stops, Moves int
	// Tuples counts tuples per interpretation.
	Tuples map[string]int
	// AnnKeys counts the tuples carrying each annotation key.
	AnnKeys map[string]int
	// GeomBounds is the union of the episode bounds of the GeomCount tuples
	// that carry geometry (a non-nil episode back-pointer); tuples without
	// geometry can never match a spatial predicate.
	GeomBounds geo.Rect
	GeomCount  int
	// Objects is a bloom filter over the object ids owning the segment's
	// tuples.
	Objects ObjectFilter
}

// ObjectFilter is a small bloom filter over string keys, used by segment
// footers to prune object-filtered scans. The zero value contains nothing.
type ObjectFilter struct {
	// Bits is the filter's bit array in 64-bit words; its length is a power
	// of two. Exposed for serialisation.
	Bits []uint64
}

// filterHashes derives the double-hashing pair from FNV-1a/64.
func filterHashes(key string) (h1, h2 uint64) {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h, (h >> 32) | 1
}

// NewObjectFilter sizes a filter for n keys at roughly 10 bits per key
// (about a 1% false-positive rate with the 4 probes used here).
func NewObjectFilter(n int) ObjectFilter {
	bits := 64
	for bits < n*10 {
		bits <<= 1
	}
	return ObjectFilter{Bits: make([]uint64, bits/64)}
}

const filterProbes = 4

// Add inserts a key.
func (f ObjectFilter) Add(key string) {
	if len(f.Bits) == 0 {
		return
	}
	mask := uint64(len(f.Bits)*64 - 1)
	h1, h2 := filterHashes(key)
	for i := uint64(0); i < filterProbes; i++ {
		bit := (h1 + i*h2) & mask
		f.Bits[bit/64] |= 1 << (bit % 64)
	}
}

// MayContain reports whether the key may have been added; false is exact.
func (f ObjectFilter) MayContain(key string) bool {
	if len(f.Bits) == 0 {
		return false
	}
	mask := uint64(len(f.Bits)*64 - 1)
	h1, h2 := filterHashes(key)
	for i := uint64(0); i < filterProbes; i++ {
		bit := (h1 + i*h2) & mask
		if f.Bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// ColdInstall is the recovered frozen state segment recovery hands to
// InstallColdTier: which prefix of each key the tier holds, plus the
// rebuilt merge overlay.
type ColdInstall struct {
	// Records maps object id → frozen record count.
	Records map[string]int
	// Episodes maps trajectory id → frozen episode count; EpisodeStops the
	// stop count within it (so replace-time uncounting stays exact without
	// decoding the segment).
	Episodes     map[string]int
	EpisodeStops map[string]int
	// Tuples lists the frozen (trajectory, interpretation) keys; zero-count
	// keys still install (an empty interpretation is observable state).
	Tuples []ColdTupleKey
	// Trajectories lists the frozen raw trajectories in their original put
	// order (it drives the per-object trajectory listing order).
	Trajectories []ColdTrajKey
	// Overlay holds the rebuilt annotation-merge overlay entries.
	Overlay []ColdOverlayEntry
}

// ColdTupleKey identifies one frozen structured interpretation.
type ColdTupleKey struct {
	TrajectoryID   string
	ObjectID       string
	Interpretation string
	Count          int
}

// ColdTrajKey identifies one frozen raw trajectory.
type ColdTrajKey struct {
	ID       string
	ObjectID string
}

// ColdOverlayEntry is one rebuilt overlay tuple: the fully merged content
// standing in for the frozen tuple at (TrajectoryID, Interpretation, Index).
type ColdOverlayEntry struct {
	TrajectoryID   string
	Interpretation string
	Index          int
	Tuple          core.EpisodeTuple
}

// coldHolder wraps the attached tier for the atomic pointer.
type coldHolder struct{ tier ColdTier }

// coldTier returns the attached cold tier, or nil.
func (s *Store) coldTier() ColdTier {
	if h := s.cold.Load(); h != nil {
		return h.tier
	}
	return nil
}

// Tiered reports whether a cold tier is attached.
func (s *Store) Tiered() bool { return s.coldTier() != nil }

// InstallColdTier attaches a cold tier and installs the frozen state it
// holds. It must run before concurrent writers start (segment recovery calls
// it before the WAL tail replays); a fresh tiered store installs an empty
// ColdInstall. Counts, listings and reads below each key's frozen base then
// resolve through the tier.
func (s *Store) InstallColdTier(ct ColdTier, inst ColdInstall) error {
	if ct == nil {
		return errors.New("store: nil cold tier")
	}
	if s.coldTier() != nil {
		return errors.New("store: cold tier already installed")
	}
	s.cold.Store(&coldHolder{tier: ct})
	for obj, n := range inst.Records {
		sh := s.shardFor(obj)
		fz := sh.frozenMeta()
		fz.recs[obj] = n
		if _, ok := sh.records[obj]; !ok {
			sh.records[obj] = nil
		}
		sh.recordCount += n
	}
	for id, n := range inst.Episodes {
		sh := s.shardFor(id)
		fz := sh.frozenMeta()
		fz.eps[id] = n
		stops := inst.EpisodeStops[id]
		fz.epStops[id] = stops
		if _, ok := sh.episodes[id]; !ok {
			sh.episodes[id] = nil
		}
		sh.stopCount += stops
		sh.moveCount += n - stops
	}
	for _, k := range inst.Tuples {
		sh := s.shardFor(k.TrajectoryID)
		fz := sh.frozenMeta()
		fz.tups[tupKey{k.TrajectoryID, k.Interpretation}] = k.Count
		byInterp, ok := sh.structured[k.TrajectoryID]
		if !ok {
			byInterp = structuredByInterp{}
			sh.structured[k.TrajectoryID] = byInterp
		}
		if _, exists := byInterp[k.Interpretation]; !exists {
			byInterp[k.Interpretation] = &core.StructuredTrajectory{
				ID: k.TrajectoryID, ObjectID: k.ObjectID, Interpretation: k.Interpretation,
			}
			sh.structCount++
		}
	}
	for _, k := range inst.Trajectories {
		sh := s.shardFor(k.ID)
		fz := sh.frozenMeta()
		if _, dup := fz.trajs[k.ID]; dup {
			continue
		}
		fz.trajs[k.ID] = k.ObjectID
		os := s.shardFor(k.ObjectID)
		os.trajByObject[k.ObjectID] = append(os.trajByObject[k.ObjectID], k.ID)
	}
	for _, e := range inst.Overlay {
		sh := s.shardFor(e.TrajectoryID)
		fz := sh.frozenMeta()
		k := tupKey{e.TrajectoryID, e.Interpretation}
		if fz.overlay[k] == nil {
			fz.overlay[k] = map[int]*core.EpisodeTuple{}
		}
		t := e.Tuple
		if _, dup := fz.overlay[k][e.Index]; !dup {
			s.overlayN.Add(1)
		}
		fz.overlay[k][e.Index] = &t
	}
	return nil
}

// OverlayCount reports how many overlay entries currently stand in for
// frozen tuples. Non-zero overlay weakens footer-based annotation pruning —
// a merge can add an annotation key the segment's footer never counted — so
// the query planner checks it before trusting AnnKeys cardinalities.
func (s *Store) OverlayCount() int { return int(s.overlayN.Load()) }

// ColdSegmentCount reports the attached tier's live segment count (0
// untiered) — the extra scan units a parallel full scan fans out over.
func (s *Store) ColdSegmentCount() int {
	ct := s.coldTier()
	if ct == nil {
		return 0
	}
	return ct.ColdSegments()
}

// ColdSummaries appends the attached tier's per-segment footer summaries to
// buf, indexed like VisitColdSegmentTuples's seg.
func (s *Store) ColdSummaries(buf []SegmentSummary) []SegmentSummary {
	ct := s.coldTier()
	if ct == nil {
		return buf
	}
	return ct.Summaries(buf)
}

// VisitColdSegmentTuples calls fn for every live frozen tuple of one cold
// segment, with the merge overlay applied — the cold counterpart of
// VisitShardTuples, and a parallel scan's per-segment work unit. It reports
// false when fn stopped the visit early.
func (s *Store) VisitColdSegmentTuples(seg int, interpretation string, fn func(ref TupleRef, t core.EpisodeTuple) bool) bool {
	ct := s.coldTier()
	if ct == nil {
		return true
	}
	if s.overlayN.Load() == 0 {
		return ct.VisitSegmentTuples(seg, interpretation, fn)
	}
	return ct.VisitSegmentTuples(seg, interpretation, func(ref TupleRef, t core.EpisodeTuple) bool {
		if ov, ok := s.overlayAt(ref); ok {
			t = ov
		}
		return fn(ref, t)
	})
}

// overlayAt returns the overlay tuple standing in for ref, if any.
func (s *Store) overlayAt(ref TupleRef) (core.EpisodeTuple, bool) {
	sh := s.shardFor(ref.TrajectoryID)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if sh.frozen == nil {
		return core.EpisodeTuple{}, false
	}
	byIdx := sh.frozen.overlay[tupKey{ref.TrajectoryID, ref.Interpretation}]
	tp, ok := byIdx[ref.Index]
	if !ok {
		return core.EpisodeTuple{}, false
	}
	return copyTuple(tp), true
}

// coldTuplesFor returns the frozen prefix of one structured interpretation
// with the overlay applied: base frozen tuples in position order. overlay is
// the copied overlay entries for the key (may be nil). Called with no stripe
// lock held.
func (s *Store) coldTuplesFor(trajectoryID, interpretation string, base int, overlay map[int]core.EpisodeTuple, buf []core.EpisodeTuple) []core.EpisodeTuple {
	if base == 0 {
		return buf
	}
	at := len(buf)
	buf = s.coldTier().ColdTuples(trajectoryID, interpretation, buf)
	for idx, tp := range overlay {
		if at+idx < len(buf) {
			buf[at+idx] = tp
		}
	}
	return buf
}

// copyOverlay snapshots the overlay entries of one key under the stripe
// lock (caller holds it); nil when the key has none.
func (sh *shard) copyOverlay(k tupKey) map[int]core.EpisodeTuple {
	if sh.frozen == nil {
		return nil
	}
	byIdx := sh.frozen.overlay[k]
	if len(byIdx) == 0 {
		return nil
	}
	out := make(map[int]core.EpisodeTuple, len(byIdx))
	for idx, tp := range byIdx {
		out[idx] = copyTuple(tp)
	}
	return out
}

// sortedTupleKeys returns a shard's structured keys in deterministic order.
// Caller holds the stripe lock.
func (sh *shard) sortedTupleKeys() []tupKey {
	keys := make([]tupKey, 0, len(sh.structured))
	for id, byInterp := range sh.structured {
		for interp := range byInterp {
			keys = append(keys, tupKey{id, interp})
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].traj != keys[j].traj {
			return keys[i].traj < keys[j].traj
		}
		return keys[i].interp < keys[j].interp
	})
	return keys
}
