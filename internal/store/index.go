package store

import (
	"errors"
	"sort"
	"sync/atomic"

	"semitri/internal/core"
	"semitri/internal/obs"
)

// errNoSuchTuple reports a MergeTupleAnnotations target that does not exist.
var errNoSuchTuple = errors.New("store: no such tuple")

// TupleRef locates one episode tuple inside the store: the structured
// trajectory it belongs to and its position in that trajectory's tuple
// sequence. Refs are the currency between the store and a secondary-index
// layer: an index stores refs, and resolves them back through TupleAt when a
// query needs the tuple's current content. Positions are logical — on a
// tiered store a ref below the key's frozen base resolves through the cold
// tier, at or above it through the heap tail — so indexes built before a
// freeze stay valid after it.
type TupleRef struct {
	TrajectoryID   string
	ObjectID       string
	Interpretation string
	Index          int
}

// TupleEvent is one index-maintenance notification: the ref of a tuple that
// was appended, replaced or updated, together with a stable copy of its
// content taken while the stripe lock was held. Indexes must read the copy,
// never the stored original (which concurrent writers keep mutating under
// the stripe lock).
type TupleEvent struct {
	Ref   TupleRef
	Tuple core.EpisodeTuple
	// Changed is set on TupleUpdated events only: the annotations the
	// update merged in, at their post-merge values. Indexes that already
	// hold the tuple only need postings for these, not for the whole set.
	Changed []core.Annotation
}

// Index is the contract between the store and an incrementally maintained
// secondary-index layer (internal/query.Engine implements it). The store
// calls the methods after the corresponding table mutation committed and the
// stripe lock was released, from the mutating goroutine; per structured
// trajectory the pipeline writes from a single goroutine, so notifications
// for one (trajectory, interpretation) arrive in mutation order.
type Index interface {
	// TuplesAppended reports tuples appended to a structured trajectory
	// (Ref.Index carries each tuple's final position).
	TuplesAppended(events []TupleEvent)
	// StructuredReplaced reports that PutStructured replaced the whole tuple
	// sequence of (trajectoryID, interpretation); events carries the full
	// new content (possibly empty).
	StructuredReplaced(trajectoryID, objectID, interpretation string, events []TupleEvent)
	// TupleUpdated reports that a stored tuple gained annotations in place
	// (the streaming close path merging the point layer's results).
	TupleUpdated(event TupleEvent)
}

// indexHooks wraps the attached index behind one atomic pointer, so the hot
// append path pays a single load when no index is attached.
type indexHooks struct {
	sink Index
}

// AttachIndex registers an incrementally maintained secondary index. At most
// one index is attached at a time (a later call replaces the earlier one).
// Attach the index before concurrent writers start, or backfill it from
// VisitStructuredTuples afterwards — TuplesAppended events and the backfill
// scan may overlap, so indexes must treat re-delivery of a ref as idempotent.
func (s *Store) AttachIndex(ix Index) {
	if ix == nil {
		s.hooks.Store(nil)
		return
	}
	s.hooks.Store(&indexHooks{sink: ix})
}

// sink returns the attached index, or nil.
func (s *Store) sink() Index {
	if h := s.hooks.Load(); h != nil {
		return h.sink
	}
	return nil
}

// copyTuple snapshots one stored tuple. Caller holds the stripe lock. The
// Place and Episode pointers are shared: both are immutable once the tuple
// reaches the store (places come from the 3rd-party sources, episodes are
// final when appended); only the annotation set keeps being written.
func copyTuple(tp *core.EpisodeTuple) core.EpisodeTuple {
	c := *tp
	c.Annotations = tp.Annotations.Clone()
	return c
}

// tupleEvents builds index notifications for tuples[start:] of a structured
// trajectory's heap tail; base is the key's frozen prefix length, so the
// event refs carry logical positions. Caller holds the stripe lock.
func tupleEvents(st *core.StructuredTrajectory, start, base int) []TupleEvent {
	if start >= len(st.Tuples) {
		return nil
	}
	events := make([]TupleEvent, 0, len(st.Tuples)-start)
	for i := start; i < len(st.Tuples); i++ {
		events = append(events, TupleEvent{
			Ref: TupleRef{
				TrajectoryID:   st.ID,
				ObjectID:       st.ObjectID,
				Interpretation: st.Interpretation,
				Index:          base + i,
			},
			Tuple: copyTuple(st.Tuples[i]),
		})
	}
	return events
}

// TupleAt returns a stable copy of the tuple stored at (trajectoryID,
// interpretation, index), or false when the position does not exist. This is
// the resolution step of indexed query execution: an index's ref is resolved
// against the store's current content under the stripe lock (heap positions)
// or against the immutable segment plus the merge overlay (frozen
// positions), so the result can never be a torn read of a tuple a writer is
// still annotating.
func (s *Store) TupleAt(trajectoryID, interpretation string, index int) (core.EpisodeTuple, bool) {
	if index < 0 {
		return core.EpisodeTuple{}, false
	}
	sh := s.shardFor(trajectoryID)
	sh.mu.RLock()
	st, ok := sh.structured[trajectoryID][interpretation]
	if !ok {
		sh.mu.RUnlock()
		return core.EpisodeTuple{}, false
	}
	k := tupKey{trajectoryID, interpretation}
	base := sh.frozenTups(k)
	if index >= base {
		h := index - base
		if h >= len(st.Tuples) {
			sh.mu.RUnlock()
			return core.EpisodeTuple{}, false
		}
		tp := copyTuple(st.Tuples[h])
		sh.mu.RUnlock()
		return tp, true
	}
	if s.overlayN.Load() != 0 && sh.frozen != nil {
		if tp, hit := sh.frozen.overlay[k][index]; hit {
			c := copyTuple(tp)
			sh.mu.RUnlock()
			return c, true
		}
	}
	sh.mu.RUnlock()
	cold := s.coldTier().ColdTuples(trajectoryID, interpretation, nil)
	if index < len(cold) {
		return cold[index], true
	}
	return core.EpisodeTuple{}, false
}

// TuplesAt resolves several positions of one structured trajectory under a
// single stripe lock: tuples[i] is a stable copy of the tuple at indexes[i]
// and ok[i] reports whether that position exists. Batch resolution is what
// keeps indexed query execution cheap — candidates cluster by trajectory,
// so the executor pays one lock per trajectory instead of one per tuple.
func (s *Store) TuplesAt(trajectoryID, interpretation string, indexes []int) (tuples []core.EpisodeTuple, ok []bool) {
	return s.AppendTuplesAt(trajectoryID, interpretation, indexes, nil, nil)
}

// AppendTuplesAt is TuplesAt with caller-owned result buffers: one resolved
// entry per index is appended to tuples and ok, reusing their capacity, so a
// query executor resolving many candidate batches can run the whole
// resolution loop without allocating per batch.
func (s *Store) AppendTuplesAt(trajectoryID, interpretation string, indexes []int, tuples []core.EpisodeTuple, ok []bool) ([]core.EpisodeTuple, []bool) {
	at := len(tuples)
	for range indexes {
		tuples = append(tuples, core.EpisodeTuple{})
		ok = append(ok, false)
	}
	sh := s.shardFor(trajectoryID)
	sh.mu.RLock()
	st, found := sh.structured[trajectoryID][interpretation]
	if !found {
		sh.mu.RUnlock()
		return tuples, ok
	}
	k := tupKey{trajectoryID, interpretation}
	base := sh.frozenTups(k)
	needCold := false
	for i, idx := range indexes {
		if idx < 0 {
			continue
		}
		if idx < base {
			needCold = true
			continue
		}
		if h := idx - base; h < len(st.Tuples) {
			tuples[at+i] = copyTuple(st.Tuples[h])
			ok[at+i] = true
		}
	}
	var overlay map[int]core.EpisodeTuple
	if needCold && s.overlayN.Load() != 0 {
		overlay = sh.copyOverlay(k)
	}
	sh.mu.RUnlock()
	if !needCold {
		return tuples, ok
	}
	// One tier read resolves every frozen position of the batch — candidates
	// cluster by trajectory, so the segment run decodes once per batch.
	cold := s.coldTuplesFor(trajectoryID, interpretation, base, overlay, nil)
	for i, idx := range indexes {
		if idx >= 0 && idx < base && idx < len(cold) {
			tuples[at+i] = cold[idx]
			ok[at+i] = true
		}
	}
	return tuples, ok
}

// TupleSnapshot returns stable copies of every tuple stored under
// (trajectoryID, interpretation), in stored order, plus the owning object
// id. One stripe lock, one pass — the resolution step of trajectory-direct
// query execution.
func (s *Store) TupleSnapshot(trajectoryID, interpretation string) (objectID string, tuples []core.EpisodeTuple, ok bool) {
	sh := s.shardFor(trajectoryID)
	sh.mu.RLock()
	st, ok := sh.structured[trajectoryID][interpretation]
	if !ok {
		sh.mu.RUnlock()
		return "", nil, false
	}
	k := tupKey{trajectoryID, interpretation}
	base := sh.frozenTups(k)
	objectID = st.ObjectID
	tail := make([]core.EpisodeTuple, len(st.Tuples))
	for i, tp := range st.Tuples {
		tail[i] = copyTuple(tp)
	}
	var overlay map[int]core.EpisodeTuple
	if base > 0 && s.overlayN.Load() != 0 {
		overlay = sh.copyOverlay(k)
	}
	sh.mu.RUnlock()
	if base == 0 {
		return objectID, tail, true
	}
	tuples = s.coldTuplesFor(trajectoryID, interpretation, base, overlay,
		make([]core.EpisodeTuple, 0, base+len(tail)))
	return objectID, append(tuples, tail...), true
}

// TupleCount returns the logical number of tuples stored under
// (trajectoryID, interpretation) — frozen prefix plus heap tail, the
// planner's cost estimate for the trajectory-direct access path.
func (s *Store) TupleCount(trajectoryID, interpretation string) int {
	sh := s.shardFor(trajectoryID)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	st, ok := sh.structured[trajectoryID][interpretation]
	if !ok {
		return 0
	}
	return sh.frozenTups(tupKey{trajectoryID, interpretation}) + len(st.Tuples)
}

// MergeTupleAnnotations merges annotations (and, when place is non-nil, the
// place link) into the tuple stored at (trajectoryID, interpretation,
// index), under the stripe lock. It is the streaming close path's
// counterpart of mutating a local tuple before storing it: the point layer's
// results land on already-stored merged tuples, and routing the write
// through the store keeps concurrent readers (Save, TupleAt, the query
// engine) race-free and notifies the attached index.
func (s *Store) MergeTupleAnnotations(trajectoryID, interpretation string, index int, place *core.Place, anns []core.Annotation) error {
	obs.StoreMutAnnotations.Inc()
	sh := s.shardFor(trajectoryID)
	sh.mu.Lock()
	st, ok := sh.structured[trajectoryID][interpretation]
	if !ok || index < 0 {
		sh.mu.Unlock()
		return errNoSuchTuple
	}
	k := tupKey{trajectoryID, interpretation}
	base := sh.frozenTups(k)
	if index < base {
		return s.mergeFrozenTuple(sh, st, k, index, place, anns)
	}
	if index-base >= len(st.Tuples) {
		sh.mu.Unlock()
		return errNoSuchTuple
	}
	if l := s.mutationLog(); l != nil {
		l.LogMutation(Mutation{Op: MutMergeTuple, TrajectoryID: trajectoryID,
			Interpretation: interpretation, Start: index, Place: place, Annotations: anns})
	}
	if s.Tiered() {
		// The in-place write may land inside a freeze's captured delta; the
		// bump makes the freeze re-collect the key instead of evicting a heap
		// tail whose segment copy predates this merge.
		sh.bumpGen(freezeKey{table: frzTuples, key: trajectoryID, interp: interpretation})
	}
	tp := st.Tuples[index-base]
	for _, a := range anns {
		tp.Annotations.Add(a)
	}
	if place != nil {
		tp.Place = place
	}
	var ev TupleEvent
	sink := s.sink()
	if sink != nil {
		ev = TupleEvent{
			Ref: TupleRef{
				TrajectoryID:   trajectoryID,
				ObjectID:       st.ObjectID,
				Interpretation: interpretation,
				Index:          index,
			},
			Tuple: copyTuple(tp),
		}
		// Report the post-merge values of the merged keys (Add keeps the old
		// annotation when its confidence wins, and an index must post what
		// the tuple now carries, not what the caller asked for).
		for _, a := range anns {
			if got, found := tp.Annotations.Get(a.Key); found {
				ev.Changed = append(ev.Changed, got)
			}
		}
	}
	sh.mu.Unlock()
	if sink != nil {
		sink.TupleUpdated(ev)
	}
	return nil
}

// mergeFrozenTuple continues MergeTupleAnnotations for a target below the
// key's frozen base: the segment bytes are immutable, so the merged result
// lands in the shard's overlay (consulted before the tier on every read) and
// is queued for the next freeze to write out as a merge frame. The caller
// holds the stripe write lock and this releases it; the first merge into a
// position reads the tier under that lock (shard→tier order), which keeps
// the check-then-materialise atomic against racing merges to the same spot.
func (s *Store) mergeFrozenTuple(sh *shard, st *core.StructuredTrajectory, k tupKey, index int, place *core.Place, anns []core.Annotation) error {
	fz := sh.frozenMeta()
	cur, ok := fz.overlay[k][index]
	if !ok {
		cold := s.coldTier().ColdTuples(k.traj, k.interp, nil)
		if index >= len(cold) {
			sh.mu.Unlock()
			return errNoSuchTuple
		}
		t := cold[index]
		cur = &t
		if fz.overlay[k] == nil {
			fz.overlay[k] = map[int]*core.EpisodeTuple{}
		}
		fz.overlay[k][index] = cur
		s.overlayN.Add(1)
	}
	if l := s.mutationLog(); l != nil {
		l.LogMutation(Mutation{Op: MutMergeTuple, TrajectoryID: k.traj,
			Interpretation: k.interp, Start: index, Place: place, Annotations: anns})
	}
	for _, a := range anns {
		cur.Annotations.Add(a)
	}
	if place != nil {
		cur.Place = place
	}
	fz.overlayDirty = append(fz.overlayDirty, overlayRef{k: k, idx: index})
	var ev TupleEvent
	sink := s.sink()
	if sink != nil {
		ev = TupleEvent{
			Ref: TupleRef{
				TrajectoryID:   k.traj,
				ObjectID:       st.ObjectID,
				Interpretation: k.interp,
				Index:          index,
			},
			Tuple: copyTuple(cur),
		}
		for _, a := range anns {
			if got, found := cur.Annotations.Get(a.Key); found {
				ev.Changed = append(ev.Changed, got)
			}
		}
	}
	sh.mu.Unlock()
	if sink != nil {
		sink.TupleUpdated(ev)
	}
	return nil
}

// VisitStructuredTuples calls fn for every stored tuple of the given
// interpretation (every interpretation when interpretation is empty), as a
// stable copy with its ref. It is the engine's backfill scan and the
// full-scan fallback of unindexable queries: on a tiered store the cold
// segments are visited first (overlay applied), then each stripe's heap
// tuples are copied under the stripe's read lock and fn runs with no lock
// held, so fn may query the store. Stripes are visited in order but
// trajectories within a stripe in map order; callers needing determinism
// sort their results. The visit stops early when fn returns false.
func (s *Store) VisitStructuredTuples(interpretation string, fn func(ref TupleRef, t core.EpisodeTuple) bool) {
	for seg, n := 0, s.ColdSegmentCount(); seg < n; seg++ {
		if !s.VisitColdSegmentTuples(seg, interpretation, fn) {
			return
		}
	}
	var buf []TupleEvent
	for _, sh := range s.shards {
		var more bool
		buf, more = visitShard(sh, buf, interpretation, fn)
		if !more {
			return
		}
	}
}

// VisitShardTuples is the single-stripe, heap-only slice of
// VisitStructuredTuples: it visits only the tuples resident in lock stripe
// `shard` (0 ≤ shard < ShardCount), with the same copy-then-call locking
// discipline. It reports false when fn stopped the visit early. Because the
// stripes partition the heap and VisitColdSegmentTuples partitions the
// frozen tuples by segment, visiting every shard index plus every segment
// index visits every tuple exactly once — the partitioning a parallel scan
// fans out over, one stripe lock (or segment) per worker at a time.
func (s *Store) VisitShardTuples(shard int, interpretation string, fn func(ref TupleRef, t core.EpisodeTuple) bool) bool {
	if shard < 0 || shard >= len(s.shards) {
		return true
	}
	_, more := visitShard(s.shards[shard], nil, interpretation, fn)
	return more
}

// visitShard copies one stripe's heap tuples of the interpretation into buf
// under the stripe's read lock (refs offset by each key's frozen base), then
// calls fn for each with no lock held. It returns the (possibly grown)
// buffer for reuse and whether the visit should continue.
func visitShard(sh *shard, buf []TupleEvent, interpretation string, fn func(ref TupleRef, t core.EpisodeTuple) bool) ([]TupleEvent, bool) {
	buf = buf[:0]
	sh.mu.RLock()
	for id, byInterp := range sh.structured {
		for interp, st := range byInterp {
			if interpretation != "" && interp != interpretation {
				continue
			}
			buf = append(buf, tupleEvents(st, 0, sh.frozenTups(tupKey{id, interp}))...)
		}
	}
	sh.mu.RUnlock()
	for _, ev := range buf {
		if !fn(ev.Ref, ev.Tuple) {
			return buf, false
		}
	}
	return buf, true
}

// Objects returns the ids of every moving object present in the store
// (owning raw records or trajectories), sorted lexicographically.
func (s *Store) Objects() []string {
	seen := map[string]bool{}
	for _, sh := range s.shards {
		sh.mu.RLock()
		for obj := range sh.records {
			seen[obj] = true
		}
		for obj := range sh.trajByObject {
			seen[obj] = true
		}
		sh.mu.RUnlock()
	}
	out := make([]string, 0, len(seen))
	for obj := range seen {
		out = append(out, obj)
	}
	sort.Strings(out)
	return out
}

// hooksPtr is the atomic holder AttachIndex writes and the mutation paths
// read. It lives here (not on Store directly) so store.go stays focused on
// the tables.
type hooksPtr = atomic.Pointer[indexHooks]
