package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"semitri/internal/core"
	"semitri/internal/episode"
)

// recordingIndex captures notifications for assertion.
type recordingIndex struct {
	appended []TupleEvent
	replaced []string // "traj/interp(n)"
	updated  []TupleEvent
}

func (r *recordingIndex) TuplesAppended(events []TupleEvent) {
	r.appended = append(r.appended, events...)
}
func (r *recordingIndex) StructuredReplaced(traj, obj, interp string, events []TupleEvent) {
	r.replaced = append(r.replaced, traj+"/"+interp)
}
func (r *recordingIndex) TupleUpdated(ev TupleEvent) { r.updated = append(r.updated, ev) }

func mkStopTuple(start, end time.Time, anns ...core.Annotation) *core.EpisodeTuple {
	tp := &core.EpisodeTuple{Kind: episode.Stop, TimeIn: start, TimeOut: end}
	for _, a := range anns {
		tp.Annotations.Add(a)
	}
	return tp
}

func TestIndexNotifications(t *testing.T) {
	s := New()
	rec := &recordingIndex{}
	s.AttachIndex(rec)

	tp := mkStopTuple(t0, t0.Add(time.Hour), core.Annotation{Key: "k", Value: "v", Confidence: 0.5})
	if err := s.AppendStructuredTuples("t1", "o1", "merged", tp); err != nil {
		t.Fatal(err)
	}
	if len(rec.appended) != 1 {
		t.Fatalf("appended events = %d", len(rec.appended))
	}
	ev := rec.appended[0]
	if ev.Ref != (TupleRef{TrajectoryID: "t1", ObjectID: "o1", Interpretation: "merged", Index: 0}) {
		t.Fatalf("ref = %+v", ev.Ref)
	}
	// The event carries a stable copy: later merges must not leak into it.
	if err := s.MergeTupleAnnotations("t1", "merged", 0, nil,
		[]core.Annotation{{Key: "k2", Value: "v2", Confidence: 0.9}}); err != nil {
		t.Fatal(err)
	}
	if ev.Tuple.Annotations.Len() != 1 {
		t.Fatal("append event snapshot was mutated by a later merge")
	}
	if len(rec.updated) != 1 || rec.updated[0].Tuple.Annotations.Value("k2") != "v2" {
		t.Fatalf("updated events = %+v", rec.updated)
	}
	if err := s.PutStructured(&core.StructuredTrajectory{ID: "t1", ObjectID: "o1", Interpretation: "region"}); err != nil {
		t.Fatal(err)
	}
	if len(rec.replaced) != 1 || rec.replaced[0] != "t1/region" {
		t.Fatalf("replaced events = %v", rec.replaced)
	}
	// Detach: no further events.
	s.AttachIndex(nil)
	if err := s.AppendStructuredTuples("t1", "o1", "merged", mkStopTuple(t0, t0)); err != nil {
		t.Fatal(err)
	}
	if len(rec.appended) != 1 {
		t.Fatal("detached index still received events")
	}
}

func TestTupleAccessors(t *testing.T) {
	s := New()
	a := mkStopTuple(t0, t0.Add(time.Hour), core.Annotation{Key: "k", Value: "v", Confidence: 0.5})
	b := mkStopTuple(t0.Add(time.Hour), t0.Add(2*time.Hour))
	if err := s.AppendStructuredTuples("t1", "o1", "merged", a, b); err != nil {
		t.Fatal(err)
	}
	got, ok := s.TupleAt("t1", "merged", 1)
	if !ok || !got.TimeIn.Equal(t0.Add(time.Hour)) {
		t.Fatalf("TupleAt = %+v, %v", got, ok)
	}
	// The returned copy is stable under concurrent-style mutation.
	got0, _ := s.TupleAt("t1", "merged", 0)
	if err := s.MergeTupleAnnotations("t1", "merged", 0, nil,
		[]core.Annotation{{Key: "x", Value: "y", Confidence: 1}}); err != nil {
		t.Fatal(err)
	}
	if got0.Annotations.Len() != 1 {
		t.Fatal("TupleAt copy aliased the stored annotation set")
	}
	for _, bad := range []int{-1, 2} {
		if _, ok := s.TupleAt("t1", "merged", bad); ok {
			t.Fatalf("TupleAt(%d) should miss", bad)
		}
	}
	if _, ok := s.TupleAt("t9", "merged", 0); ok {
		t.Fatal("missing trajectory should miss")
	}
	if n := s.TupleCount("t1", "merged"); n != 2 {
		t.Fatalf("TupleCount = %d", n)
	}
	if n := s.TupleCount("t9", "merged"); n != 0 {
		t.Fatalf("TupleCount missing = %d", n)
	}
	obj, tuples, ok := s.TupleSnapshot("t1", "merged")
	if !ok || obj != "o1" || len(tuples) != 2 {
		t.Fatalf("TupleSnapshot = %q, %d, %v", obj, len(tuples), ok)
	}

	seen := 0
	s.VisitStructuredTuples("merged", func(ref TupleRef, tp core.EpisodeTuple) bool {
		seen++
		return false // early stop
	})
	if seen != 1 {
		t.Fatalf("early stop visited %d", seen)
	}
	seen = 0
	s.VisitStructuredTuples("", func(ref TupleRef, tp core.EpisodeTuple) bool { seen++; return true })
	if seen != 2 {
		t.Fatalf("visit all = %d", seen)
	}
}

func TestObjects(t *testing.T) {
	s := New()
	s.PutRecords(sampleTrajectory("b-T0", "b", 1).Records)
	if err := s.PutTrajectory(sampleTrajectory("a-T0", "a", 3)); err != nil {
		t.Fatal(err)
	}
	got := s.Objects()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Objects = %v", got)
	}
}

// TestSaveAtomic checks the crash-safe write: saving over an existing file
// replaces it whole, and no temp files are left behind.
func TestSaveAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap", "store.json")

	s := New()
	s.PutRecords(sampleTrajectory("o1-T0", "o1", 5).Records)
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	s.PutRecords(sampleTrajectory("o2-T0", "o2", 3).Records)
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.RecordCount() != 8 {
		t.Fatalf("RecordCount after reload = %d", loaded.RecordCount())
	}
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatalf("snapshot dir should hold exactly the snapshot, got %d entries", len(entries))
	}
}

// TestVisitShardTuples asserts the per-shard visitor the parallel scan
// fan-out uses is an exact partition of VisitStructuredTuples: visiting every
// shard yields each tuple exactly once, out-of-range shards are inert, and an
// early stop propagates as false.
func TestVisitShardTuples(t *testing.T) {
	s := NewSharded(8)
	for i := 0; i < 40; i++ {
		traj := string(rune('a'+i%11)) + "-traj"
		obj := "o" + string(rune('0'+i%5))
		if err := s.AppendStructuredTuples(traj, obj, "merged",
			mkStopTuple(t0.Add(time.Duration(i)*time.Minute), t0.Add(time.Duration(i+1)*time.Minute))); err != nil {
			t.Fatal(err)
		}
	}
	whole := map[TupleRef]int{}
	s.VisitStructuredTuples("merged", func(ref TupleRef, _ core.EpisodeTuple) bool {
		whole[ref]++
		return true
	})
	if len(whole) == 0 {
		t.Fatal("workload produced no tuples")
	}
	sharded := map[TupleRef]int{}
	for sh := 0; sh < s.ShardCount(); sh++ {
		if !s.VisitShardTuples(sh, "merged", func(ref TupleRef, _ core.EpisodeTuple) bool {
			sharded[ref]++
			return true
		}) {
			t.Fatalf("shard %d visitor reported early stop without one", sh)
		}
	}
	if len(sharded) != len(whole) {
		t.Fatalf("shard visitors saw %d refs, whole-store visitor %d", len(sharded), len(whole))
	}
	for ref, n := range whole {
		if sharded[ref] != n {
			t.Fatalf("ref %+v seen %d times across shards, want %d", ref, sharded[ref], n)
		}
	}
	if s.VisitShardTuples(-1, "merged", func(TupleRef, core.EpisodeTuple) bool { return true }) != true {
		t.Fatal("out-of-range shard should be a complete (empty) visit")
	}
	stopped := 0
	if s.VisitShardTuples(0, "merged", func(TupleRef, core.EpisodeTuple) bool {
		stopped++
		return false
	}) {
		t.Fatal("early stop not propagated")
	}
	if stopped != 1 {
		t.Fatalf("visitor called %d times after stop, want 1", stopped)
	}
}
