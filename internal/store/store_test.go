package store

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/geo"
	"semitri/internal/gps"
)

var t0 = time.Date(2010, 3, 15, 8, 0, 0, 0, time.UTC)

func sampleTrajectory(id, object string, n int) *gps.RawTrajectory {
	recs := make([]gps.Record, n)
	for i := range recs {
		recs[i] = gps.Record{ObjectID: object, Position: geo.Pt(float64(i), 0), Time: t0.Add(time.Duration(i) * time.Second)}
	}
	return &gps.RawTrajectory{ID: id, ObjectID: object, Records: recs}
}

func sampleStructured(id, object, interp string) *core.StructuredTrajectory {
	st := &core.StructuredTrajectory{ID: id, ObjectID: object, Interpretation: interp}
	stop := &core.EpisodeTuple{
		Kind:    episode.Stop,
		Place:   &core.Place{ID: "poi-1", Kind: core.PointPlace, Name: "mall"},
		TimeIn:  t0,
		TimeOut: t0.Add(30 * time.Minute),
	}
	stop.Annotations.Add(core.Annotation{Key: core.AnnPOICategory, Value: "item sale", Confidence: 0.8, Source: "point"})
	move := &core.EpisodeTuple{
		Kind:    episode.Move,
		Place:   &core.Place{ID: "seg-4", Kind: core.LinePlace, Name: "main"},
		TimeIn:  t0.Add(30 * time.Minute),
		TimeOut: t0.Add(45 * time.Minute),
	}
	move.Annotations.Add(core.Annotation{Key: core.AnnTransportMode, Value: "bus", Confidence: 0.9, Source: "line"})
	st.Tuples = []*core.EpisodeTuple{stop, move}
	return st
}

func TestRecordsTable(t *testing.T) {
	s := New()
	if s.RecordCount() != 0 {
		t.Fatal("new store should be empty")
	}
	s.PutRecords([]gps.Record{
		{ObjectID: "u1", Position: geo.Pt(1, 1), Time: t0},
		{ObjectID: "u1", Position: geo.Pt(2, 2), Time: t0.Add(time.Second)},
		{ObjectID: "u2", Position: geo.Pt(3, 3), Time: t0},
	})
	if s.RecordCount() != 3 {
		t.Fatalf("RecordCount = %d", s.RecordCount())
	}
	if got := s.Records("u1"); len(got) != 2 {
		t.Fatalf("Records(u1) = %d", len(got))
	}
	if got := s.Records("missing"); len(got) != 0 {
		t.Fatal("missing object should have no records")
	}
	// Returned slice is a copy.
	recs := s.Records("u1")
	recs[0].ObjectID = "mutated"
	if s.Records("u1")[0].ObjectID != "u1" {
		t.Fatal("Records must return a copy")
	}
}

func TestTrajectoryTable(t *testing.T) {
	s := New()
	if err := s.PutTrajectory(nil); err == nil {
		t.Fatal("nil trajectory should error")
	}
	if err := s.PutTrajectory(&gps.RawTrajectory{}); err == nil {
		t.Fatal("missing id should error")
	}
	tr := sampleTrajectory("u1-T0", "u1", 10)
	if err := s.PutTrajectory(tr); err != nil {
		t.Fatal(err)
	}
	if err := s.PutTrajectory(sampleTrajectory("u1-T1", "u1", 5)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutTrajectory(sampleTrajectory("u2-T0", "u2", 5)); err != nil {
		t.Fatal(err)
	}
	if s.TrajectoryCount() != 3 {
		t.Fatalf("TrajectoryCount = %d", s.TrajectoryCount())
	}
	got, ok := s.Trajectory("u1-T0")
	if !ok || got != tr {
		t.Fatal("Trajectory lookup failed")
	}
	if _, ok := s.Trajectory("nope"); ok {
		t.Fatal("missing trajectory should not be found")
	}
	if ids := s.TrajectoryIDs("u1"); len(ids) != 2 || ids[0] != "u1-T0" {
		t.Fatalf("TrajectoryIDs(u1) = %v", ids)
	}
	if ids := s.TrajectoryIDs(""); len(ids) != 3 {
		t.Fatalf("TrajectoryIDs(all) = %v", ids)
	}
	// Re-putting the same id does not duplicate the object index.
	if err := s.PutTrajectory(tr); err != nil {
		t.Fatal(err)
	}
	if ids := s.TrajectoryIDs("u1"); len(ids) != 2 {
		t.Fatalf("duplicate put changed ids: %v", ids)
	}
}

func TestEpisodesTable(t *testing.T) {
	s := New()
	if err := s.PutEpisodes("", nil); err == nil {
		t.Fatal("empty trajectory id should error")
	}
	eps := []*episode.Episode{
		{TrajectoryID: "u1-T0", Kind: episode.Stop, Start: t0, End: t0.Add(time.Minute)},
		{TrajectoryID: "u1-T0", Kind: episode.Move, Start: t0.Add(time.Minute), End: t0.Add(2 * time.Minute)},
		{TrajectoryID: "u1-T0", Kind: episode.Stop, Start: t0.Add(2 * time.Minute), End: t0.Add(3 * time.Minute)},
	}
	if err := s.PutEpisodes("u1-T0", eps); err != nil {
		t.Fatal(err)
	}
	if got := s.Episodes("u1-T0"); len(got) != 3 {
		t.Fatalf("Episodes = %d", len(got))
	}
	if got := s.Episodes("missing"); len(got) != 0 {
		t.Fatal("missing trajectory should have no episodes")
	}
	stops, moves := s.EpisodeCounts()
	if stops != 2 || moves != 1 {
		t.Fatalf("EpisodeCounts = %d, %d", stops, moves)
	}
	// Replacement semantics.
	if err := s.PutEpisodes("u1-T0", eps[:1]); err != nil {
		t.Fatal(err)
	}
	if got := s.Episodes("u1-T0"); len(got) != 1 {
		t.Fatalf("episodes after replacement = %d", len(got))
	}
}

func TestStructuredTable(t *testing.T) {
	s := New()
	if err := s.PutStructured(nil); err == nil {
		t.Fatal("nil structured should error")
	}
	if err := s.PutStructured(&core.StructuredTrajectory{ID: "x"}); err == nil {
		t.Fatal("missing interpretation should error")
	}
	if err := s.PutStructured(&core.StructuredTrajectory{Interpretation: "region"}); err == nil {
		t.Fatal("missing id should error")
	}
	st := sampleStructured("u1-T0", "u1", "merged")
	if err := s.PutStructured(st); err != nil {
		t.Fatal(err)
	}
	if err := s.PutStructured(sampleStructured("u1-T0", "u1", "region")); err != nil {
		t.Fatal(err)
	}
	if s.StructuredCount() != 2 {
		t.Fatalf("StructuredCount = %d", s.StructuredCount())
	}
	got, ok := s.Structured("u1-T0", "merged")
	if !ok || got != st {
		t.Fatal("Structured lookup failed")
	}
	if _, ok := s.Structured("u1-T0", "point"); ok {
		t.Fatal("missing interpretation should not be found")
	}
	if _, ok := s.Structured("zzz", "merged"); ok {
		t.Fatal("missing trajectory should not be found")
	}
	if interps := s.Interpretations("u1-T0"); len(interps) != 2 || interps[0] != "merged" {
		t.Fatalf("Interpretations = %v", interps)
	}
	if ids := s.StructuredIDs(); len(ids) != 1 || ids[0] != "u1-T0" {
		t.Fatalf("StructuredIDs = %v", ids)
	}
	if err := s.PutStructured(sampleStructured("a-T0", "a", "merged")); err != nil {
		t.Fatal(err)
	}
	if ids := s.StructuredIDs(); len(ids) != 2 || ids[0] != "a-T0" {
		t.Fatalf("StructuredIDs after second put = %v", ids)
	}
	if ids := New().StructuredIDs(); len(ids) != 0 {
		t.Fatalf("empty store StructuredIDs = %v", ids)
	}
}

func TestQueries(t *testing.T) {
	s := New()
	s.PutStructured(sampleStructured("u1-T0", "u1", "merged"))
	s.PutStructured(sampleStructured("u2-T0", "u2", "merged"))
	annotatedStops := func(interp, value string) int {
		n := 0
		s.VisitStructuredTuples(interp, func(_ TupleRef, tp core.EpisodeTuple) bool {
			if tp.Kind == episode.Stop && tp.Annotations.Value(core.AnnPOICategory) == value {
				n++
			}
			return true
		})
		return n
	}
	if hits := annotatedStops("merged", "item sale"); hits != 2 {
		t.Fatalf("annotated stop scan = %d", hits)
	}
	if got := annotatedStops("merged", "feedings"); got != 0 {
		t.Fatal("no stops should match feedings")
	}
	if got := annotatedStops("region", "item sale"); got != 0 {
		t.Fatal("missing interpretation should match nothing")
	}
	window := func(traj, interp string, from, to time.Time) []*core.EpisodeTuple {
		st, ok := s.Structured(traj, interp)
		if !ok {
			return nil
		}
		var out []*core.EpisodeTuple
		for _, tp := range st.Tuples {
			if tp.TimeIn.Before(to) && tp.TimeOut.After(from) {
				out = append(out, tp)
			}
		}
		return out
	}
	got := window("u1-T0", "merged", t0.Add(10*time.Minute), t0.Add(20*time.Minute))
	if len(got) != 1 || got[0].Kind != episode.Stop {
		t.Fatalf("window query = %+v", got)
	}
	if all := window("u1-T0", "merged", t0, t0.Add(2*time.Hour)); len(all) != 2 {
		t.Fatalf("full window = %d", len(all))
	}
	if got := window("u1-T0", "merged", t0.Add(5*time.Hour), t0.Add(6*time.Hour)); len(got) != 0 {
		t.Fatal("disjoint window should match nothing")
	}
	if got := window("nope", "merged", t0, t0.Add(time.Hour)); got != nil {
		t.Fatal("missing trajectory window should be nil")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "nested", "store.json")
	s := New()
	s.PutRecords([]gps.Record{{ObjectID: "u1", Position: geo.Pt(1.5, 2.5), Time: t0}})
	s.PutTrajectory(sampleTrajectory("u1-T0", "u1", 5))
	s.PutEpisodes("u1-T0", []*episode.Episode{
		{TrajectoryID: "u1-T0", Kind: episode.Stop, Start: t0, End: t0.Add(time.Minute), RecordCount: 5},
	})
	s.PutStructured(sampleStructured("u1-T0", "u1", "merged"))
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.RecordCount() != 1 || loaded.TrajectoryCount() != 1 || loaded.StructuredCount() != 1 {
		t.Fatalf("loaded counts = %d records, %d trajectories, %d structured",
			loaded.RecordCount(), loaded.TrajectoryCount(), loaded.StructuredCount())
	}
	tr, ok := loaded.Trajectory("u1-T0")
	if !ok || len(tr.Records) != 5 || tr.ObjectID != "u1" {
		t.Fatalf("loaded trajectory = %+v", tr)
	}
	st, ok := loaded.Structured("u1-T0", "merged")
	if !ok || len(st.Tuples) != 2 {
		t.Fatalf("loaded structured = %+v", st)
	}
	if st.Tuples[0].Kind != episode.Stop || st.Tuples[0].Annotations.Value(core.AnnPOICategory) != "item sale" {
		t.Fatalf("loaded tuple = %+v", st.Tuples[0])
	}
	if st.Tuples[1].Kind != episode.Move || st.Tuples[1].Place.Name != "main" {
		t.Fatalf("loaded move tuple = %+v", st.Tuples[1])
	}
	if eps := loaded.Episodes("u1-T0"); len(eps) != 1 || eps[0].RecordCount != 5 {
		t.Fatalf("loaded episodes = %+v", eps)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load("/nonexistent/path/store.json"); err == nil {
		t.Fatal("missing file should error")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Fatal("corrupt file should error")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := sampleTrajectory("t", "obj", 1)
				id.ID = "tr-" + string(rune('a'+w)) + "-" + time.Duration(i).String()
				s.PutTrajectory(id)
				s.PutRecords([]gps.Record{{ObjectID: "obj", Position: geo.Pt(float64(i), 0), Time: t0}})
				s.TrajectoryIDs("obj")
				s.RecordCount()
			}
		}(w)
	}
	wg.Wait()
	if s.RecordCount() != 8*50 {
		t.Fatalf("RecordCount = %d", s.RecordCount())
	}
	if s.TrajectoryCount() != 8*50 {
		t.Fatalf("TrajectoryCount = %d", s.TrajectoryCount())
	}
}
