package store

import (
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/geo"
	"semitri/internal/gps"
)

// populate fills a store with a deterministic multi-object workload: objects
// u00..u<n-1>, two trajectories each, episodes and two interpretations per
// trajectory, plus a few raw records per object.
func populate(t *testing.T, s *Store, objects int) (trajIDs []string) {
	t.Helper()
	for o := 0; o < objects; o++ {
		obj := fmt.Sprintf("u%02d", o)
		s.PutRecords([]gps.Record{
			{ObjectID: obj, Position: geo.Pt(float64(o), 0), Time: t0},
			{ObjectID: obj, Position: geo.Pt(float64(o), 1), Time: t0.Add(time.Second)},
			{ObjectID: obj, Position: geo.Pt(float64(o), 2), Time: t0.Add(2 * time.Second)},
		})
		for k := 0; k < 2; k++ {
			id := fmt.Sprintf("%s-T%04d", obj, k)
			trajIDs = append(trajIDs, id)
			if err := s.PutTrajectory(sampleTrajectory(id, obj, 4)); err != nil {
				t.Fatal(err)
			}
			eps := []*episode.Episode{
				{TrajectoryID: id, Kind: episode.Stop, Start: t0, End: t0.Add(time.Minute)},
				{TrajectoryID: id, Kind: episode.Move, Start: t0.Add(time.Minute), End: t0.Add(2 * time.Minute)},
			}
			if err := s.PutEpisodes(id, eps); err != nil {
				t.Fatal(err)
			}
			if err := s.PutStructured(sampleStructured(id, obj, "merged")); err != nil {
				t.Fatal(err)
			}
			if err := s.AppendStructuredTuples(id, obj, "line",
				&core.EpisodeTuple{Kind: episode.Move, TimeIn: t0, TimeOut: t0.Add(time.Minute)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return trajIDs
}

// TestShardedMatchesSingleStripe runs the same workload against a 1-stripe
// store (the historical single-mutex layout) and a many-stripe store and
// asserts every query answers identically — the striping must be invisible
// through the public API.
func TestShardedMatchesSingleStripe(t *testing.T) {
	single := NewSharded(1)
	striped := NewSharded(7) // deliberately not a power of two
	idsA := populate(t, single, 9)
	idsB := populate(t, striped, 9)
	if !reflect.DeepEqual(idsA, idsB) {
		t.Fatal("populate not deterministic")
	}

	if a, b := single.RecordCount(), striped.RecordCount(); a != b {
		t.Fatalf("RecordCount: %d vs %d", a, b)
	}
	if a, b := single.TrajectoryCount(), striped.TrajectoryCount(); a != b {
		t.Fatalf("TrajectoryCount: %d vs %d", a, b)
	}
	as, am := single.EpisodeCounts()
	bs, bm := striped.EpisodeCounts()
	if as != bs || am != bm {
		t.Fatalf("EpisodeCounts: %d/%d vs %d/%d", as, am, bs, bm)
	}
	if a, b := single.StructuredCount(), striped.StructuredCount(); a != b {
		t.Fatalf("StructuredCount: %d vs %d", a, b)
	}
	if a, b := single.TrajectoryIDs(""), striped.TrajectoryIDs(""); !reflect.DeepEqual(a, b) {
		t.Fatalf("TrajectoryIDs(\"\"): %v vs %v", a, b)
	}
	if a, b := single.TrajectoryIDs("u03"), striped.TrajectoryIDs("u03"); !reflect.DeepEqual(a, b) {
		t.Fatalf("TrajectoryIDs(u03): %v vs %v", a, b)
	}
	if a, b := single.StructuredIDs(), striped.StructuredIDs(); !reflect.DeepEqual(a, b) {
		t.Fatalf("StructuredIDs: %v vs %v", a, b)
	}
	for _, id := range idsA {
		if a, b := single.Episodes(id), striped.Episodes(id); len(a) != len(b) {
			t.Fatalf("Episodes(%s): %d vs %d", id, len(a), len(b))
		}
		if a, b := single.Interpretations(id), striped.Interpretations(id); !reflect.DeepEqual(a, b) {
			t.Fatalf("Interpretations(%s): %v vs %v", id, a, b)
		}
	}
	annotatedStops := func(s *Store) int {
		n := 0
		s.VisitStructuredTuples("merged", func(_ TupleRef, tp core.EpisodeTuple) bool {
			if tp.Kind == episode.Stop && tp.Annotations.Value(core.AnnPOICategory) == "item sale" {
				n++
			}
			return true
		})
		return n
	}
	if qa, qb := annotatedStops(single), annotatedStops(striped); qa != qb || qa == 0 {
		t.Fatalf("annotated stop scan: %d vs %d hits", qa, qb)
	}
}

// TestRunningTotals exercises the counter maintenance paths that are easy to
// get wrong: PutEpisodes replacing a shorter/longer sequence, PutStructured
// overwriting an existing interpretation, appends creating interpretations.
func TestRunningTotals(t *testing.T) {
	s := New()
	eps := []*episode.Episode{
		{TrajectoryID: "t1", Kind: episode.Stop, Start: t0, End: t0.Add(time.Minute)},
		{TrajectoryID: "t1", Kind: episode.Move, Start: t0.Add(time.Minute), End: t0.Add(2 * time.Minute)},
		{TrajectoryID: "t1", Kind: episode.Stop, Start: t0.Add(2 * time.Minute), End: t0.Add(3 * time.Minute)},
	}
	if err := s.PutEpisodes("t1", eps); err != nil {
		t.Fatal(err)
	}
	if stops, moves := s.EpisodeCounts(); stops != 2 || moves != 1 {
		t.Fatalf("after put: stops=%d moves=%d", stops, moves)
	}
	// Replacement must not double-count.
	if err := s.PutEpisodes("t1", eps[:1]); err != nil {
		t.Fatal(err)
	}
	if stops, moves := s.EpisodeCounts(); stops != 1 || moves != 0 {
		t.Fatalf("after replace: stops=%d moves=%d", stops, moves)
	}
	if err := s.AppendEpisodes("t1", eps[1], eps[2]); err != nil {
		t.Fatal(err)
	}
	if stops, moves := s.EpisodeCounts(); stops != 2 || moves != 1 {
		t.Fatalf("after append: stops=%d moves=%d", stops, moves)
	}

	// Overwriting an interpretation keeps the count; new ones bump it.
	if err := s.PutStructured(sampleStructured("t1", "u1", "merged")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutStructured(sampleStructured("t1", "u1", "merged")); err != nil {
		t.Fatal(err)
	}
	if got := s.StructuredCount(); got != 1 {
		t.Fatalf("StructuredCount after overwrite = %d", got)
	}
	if err := s.AppendStructuredTuples("t1", "u1", "line"); err != nil {
		t.Fatal(err)
	}
	if got := s.StructuredCount(); got != 2 {
		t.Fatalf("StructuredCount after append-create = %d", got)
	}
}

// TestConcurrentObjectWrites hammers the store from one goroutine per object
// — the access pattern the lock striping exists for — and checks the running
// totals and per-object tables afterwards. Run under -race this doubles as
// the striping data-race test.
func TestConcurrentObjectWrites(t *testing.T) {
	s := New()
	const objects = 16
	const trajPerObject = 5
	var wg sync.WaitGroup
	for o := 0; o < objects; o++ {
		wg.Add(1)
		go func(o int) {
			defer wg.Done()
			obj := fmt.Sprintf("obj%02d", o)
			for k := 0; k < trajPerObject; k++ {
				id := fmt.Sprintf("%s-T%04d", obj, k)
				s.PutRecords([]gps.Record{{ObjectID: obj, Position: geo.Pt(float64(k), 0), Time: t0.Add(time.Duration(k) * time.Second)}})
				if err := s.PutTrajectory(sampleTrajectory(id, obj, 3)); err != nil {
					t.Error(err)
					return
				}
				if err := s.AppendEpisodes(id,
					&episode.Episode{TrajectoryID: id, Kind: episode.Stop, Start: t0, End: t0.Add(time.Minute)}); err != nil {
					t.Error(err)
					return
				}
				if err := s.AppendStructuredTuples(id, obj, "merged",
					&core.EpisodeTuple{Kind: episode.Stop, TimeIn: t0, TimeOut: t0.Add(time.Minute)}); err != nil {
					t.Error(err)
					return
				}
				// Interleave reads with the writes of other goroutines.
				_ = s.RecordCount()
				_ = s.TrajectoryIDs(obj)
			}
		}(o)
	}
	wg.Wait()

	if got := s.RecordCount(); got != objects*trajPerObject {
		t.Fatalf("RecordCount = %d, want %d", got, objects*trajPerObject)
	}
	if got := s.TrajectoryCount(); got != objects*trajPerObject {
		t.Fatalf("TrajectoryCount = %d, want %d", got, objects*trajPerObject)
	}
	if stops, moves := s.EpisodeCounts(); stops != objects*trajPerObject || moves != 0 {
		t.Fatalf("EpisodeCounts = %d/%d", stops, moves)
	}
	if got := s.StructuredCount(); got != objects*trajPerObject {
		t.Fatalf("StructuredCount = %d", got)
	}
	for o := 0; o < objects; o++ {
		obj := fmt.Sprintf("obj%02d", o)
		if got := len(s.TrajectoryIDs(obj)); got != trajPerObject {
			t.Fatalf("TrajectoryIDs(%s) = %d", obj, got)
		}
	}
}

// TestSaveDuringConcurrentAppends runs Save in a loop while writers append
// tuples to the same trajectories. Under -race this pins down that Save
// serialises stored tuples while holding the stripe lock (stored tuple
// slices are appended to in place, so reading them unlocked would race).
func TestSaveDuringConcurrentAppends(t *testing.T) {
	s := New()
	path := filepath.Join(t.TempDir(), "live.json")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			obj := fmt.Sprintf("u%d", w)
			id := fmt.Sprintf("%s-T0000", obj)
			for i := 0; i < 2000; i++ {
				if err := s.AppendStructuredTuples(id, obj, "merged",
					&core.EpisodeTuple{Kind: episode.Stop, TimeIn: t0, TimeOut: t0.Add(time.Minute)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 5; i++ {
		if err := s.Save(path); err != nil {
			t.Error(err)
			break
		}
	}
	wg.Wait()
	if _, err := Load(path); err != nil {
		t.Fatal(err)
	}
}

// TestSaveLoadAcrossShardCounts writes a snapshot from a striped store and
// loads it back, asserting the snapshot format is shard-layout independent.
func TestSaveLoadAcrossShardCounts(t *testing.T) {
	src := NewSharded(5)
	ids := populate(t, src, 6)
	path := filepath.Join(t.TempDir(), "snap.json")
	if err := src.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.ShardCount() != DefaultShards {
		t.Fatalf("loaded store has %d shards", got.ShardCount())
	}
	if a, b := src.RecordCount(), got.RecordCount(); a != b {
		t.Fatalf("RecordCount: %d vs %d", a, b)
	}
	as, am := src.EpisodeCounts()
	bs, bm := got.EpisodeCounts()
	if as != bs || am != bm {
		t.Fatalf("EpisodeCounts: %d/%d vs %d/%d", as, am, bs, bm)
	}
	if a, b := src.StructuredCount(), got.StructuredCount(); a != b {
		t.Fatalf("StructuredCount: %d vs %d", a, b)
	}
	for _, id := range ids {
		if _, ok := got.Trajectory(id); !ok {
			t.Fatalf("loaded store missing trajectory %s", id)
		}
		if a, b := src.Interpretations(id), got.Interpretations(id); !reflect.DeepEqual(a, b) {
			t.Fatalf("Interpretations(%s): %v vs %v", id, a, b)
		}
	}
}
