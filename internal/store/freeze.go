package store

import (
	"sort"

	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/gps"
)

// The freeze protocol: how a cold tier moves the store's heap tail into an
// immutable segment without stopping writers.
//
//  1. CollectTail walks every stripe under its read lock and emits, as
//     ordinary Mutations, the content that is heap-resident right now: full
//     sequences for keys the tier has never seen, positional deltas for keys
//     with a frozen prefix, and one merge frame per dirty overlay entry. The
//     tier serialises the emissions into a segment file.
//  2. Writers keep going in the meantime. Whole-sequence replaces and
//     in-place annotation merges bump the affected key's generation counter.
//  3. After the segment is durable, CommitFreeze re-locks each stripe and,
//     for every emitted run whose generation is unchanged, evicts the
//     captured heap prefix and advances the key's frozen count. Runs whose
//     key was written in between stay on the heap (the tier must not serve
//     them) and are re-emitted by the next freeze, which shadows the dead
//     run at recovery.
//
// The two-phase shape keeps the stripe locks held only for memory work —
// the segment I/O happens between them — at the cost of re-emitting the
// rare key that raced the freeze.

// FreezeMark records what one CollectTail captured, so CommitFreeze can
// evict exactly that. It is single-use and not safe for concurrent use;
// the tier serialises freezes.
type FreezeMark struct {
	entries []freezeEntry
	dirty   []dirtyMark
}

// Runs reports the number of emitted runs; CommitFreeze's result has this
// length, aligned with the emission order.
func (m *FreezeMark) Runs() int { return len(m.entries) }

// freezeEntry is one emitted run: which key, how much of it was captured
// (as a logical count) and the generation observed at collect time.
type freezeEntry struct {
	sh    *shard
	key   freezeKey
	obj   string // owning object id (frzTrajectory eviction records it)
	count int    // captured logical length (records/episodes/tuples)
	stops int    // captured logical stop count (episodes only)
	gen   uint64
}

// dirtyMark records how much of a stripe's overlayDirty queue was emitted.
type dirtyMark struct {
	sh    *shard
	taken int
}

// CollectTail emits the store's current heap tail as a sequence of
// Mutations — the segment writer's input. Emissions happen under stripe
// read locks (one stripe at a time), so emit must not call back into the
// store; content reachable from an emitted Mutation is only stable until
// emit returns. Stripes are walked in order and keys within a stripe in
// sorted order, so the emission sequence is deterministic. An emit error
// aborts the collection.
func (s *Store) CollectTail(emit func(Mutation) error) (*FreezeMark, error) {
	mark := &FreezeMark{}
	for _, sh := range s.shards {
		sh.mu.RLock()
		err := collectShard(sh, mark, emit)
		sh.mu.RUnlock()
		if err != nil {
			return nil, err
		}
	}
	return mark, nil
}

// collectShard emits one stripe's heap content. Caller holds sh.mu (read).
func collectShard(sh *shard, mark *FreezeMark, emit func(Mutation) error) error {
	// Raw records: append-only, so a captured prefix can never be
	// invalidated — the entries carry generation 0 and always commit.
	objs := make([]string, 0, len(sh.records))
	for obj, recs := range sh.records {
		if len(recs) > 0 {
			objs = append(objs, obj)
		}
	}
	sort.Strings(objs)
	for _, obj := range objs {
		heap := sh.records[obj]
		base := sh.frozenRecs(obj)
		if err := emit(Mutation{Op: MutPutRecords, ObjectID: obj, Start: base, Records: heap}); err != nil {
			return err
		}
		mark.entries = append(mark.entries, freezeEntry{sh: sh,
			key: freezeKey{table: frzRecords, key: obj}, count: base + len(heap)})
	}

	// Raw trajectories: whole objects; eviction moves the id into the
	// frozen membership set.
	tids := make([]string, 0, len(sh.trajectories))
	for id := range sh.trajectories {
		tids = append(tids, id)
	}
	sort.Strings(tids)
	for _, id := range tids {
		t := sh.trajectories[id]
		k := freezeKey{table: frzTrajectory, key: id}
		if err := emit(Mutation{Op: MutPutTrajectory, ObjectID: t.ObjectID,
			TrajectoryID: id, Trajectory: t}); err != nil {
			return err
		}
		mark.entries = append(mark.entries, freezeEntry{sh: sh, key: k,
			obj: t.ObjectID, gen: sh.gen(k)})
	}

	// Episodes: a key the tier has never seen emits its full sequence as a
	// put run; a key with a frozen prefix emits the tail as a positional
	// append.
	eids := make([]string, 0, len(sh.episodes))
	for id := range sh.episodes {
		eids = append(eids, id)
	}
	sort.Strings(eids)
	for _, id := range eids {
		heap := sh.episodes[id]
		if len(heap) == 0 {
			continue
		}
		base := sh.frozenEps(id)
		has := false
		stops := 0
		if sh.frozen != nil {
			_, has = sh.frozen.eps[id]
			stops = sh.frozen.epStops[id]
		}
		var m Mutation
		if has {
			m = Mutation{Op: MutAppendEpisodes, TrajectoryID: id, Start: base, Episodes: heap}
		} else {
			m = Mutation{Op: MutPutEpisodes, TrajectoryID: id, Episodes: heap}
		}
		if err := emit(m); err != nil {
			return err
		}
		for _, e := range heap {
			if e.Kind == episode.Stop {
				stops++
			}
		}
		k := freezeKey{table: frzEpisodes, key: id}
		mark.entries = append(mark.entries, freezeEntry{sh: sh, key: k,
			count: base + len(heap), stops: stops, gen: sh.gen(k)})
	}

	// Structured tuples: same put-vs-append rule, except a never-frozen key
	// emits even when empty — an empty interpretation is observable state
	// the segment must persist.
	for _, tk := range sh.sortedTupleKeys() {
		st := sh.structured[tk.traj][tk.interp]
		base := sh.frozenTups(tk)
		has := false
		if sh.frozen != nil {
			_, has = sh.frozen.tups[tk]
		}
		if has && len(st.Tuples) == 0 {
			continue
		}
		var m Mutation
		if has {
			m = Mutation{Op: MutAppendTuples, ObjectID: st.ObjectID, TrajectoryID: tk.traj,
				Interpretation: tk.interp, Start: base, Tuples: st.Tuples}
		} else {
			m = Mutation{Op: MutPutStructured, ObjectID: st.ObjectID, TrajectoryID: tk.traj,
				Interpretation: tk.interp, Tuples: st.Tuples}
		}
		if err := emit(m); err != nil {
			return err
		}
		k := freezeKey{table: frzTuples, key: tk.traj, interp: tk.interp}
		mark.entries = append(mark.entries, freezeEntry{sh: sh, key: k,
			obj: st.ObjectID, count: base + len(st.Tuples), gen: sh.gen(k)})
	}

	// Dirty overlay entries: one merge frame each, carrying the full
	// post-merge annotation set so replay is an idempotent fixed point.
	if sh.frozen == nil || len(sh.frozen.overlayDirty) == 0 {
		return nil
	}
	taken := len(sh.frozen.overlayDirty)
	seen := make(map[overlayRef]bool, taken)
	for _, ref := range sh.frozen.overlayDirty[:taken] {
		if seen[ref] {
			continue
		}
		seen[ref] = true
		tp, ok := sh.frozen.overlay[ref.k][ref.idx]
		if !ok {
			continue // the key was replaced since the merge was queued
		}
		if err := emit(Mutation{Op: MutMergeTuple, TrajectoryID: ref.k.traj,
			Interpretation: ref.k.interp, Start: ref.idx,
			Place: tp.Place, Annotations: tp.Annotations.All()}); err != nil {
			return err
		}
		mark.entries = append(mark.entries, freezeEntry{sh: sh,
			key: freezeKey{table: frzOverlay, key: ref.k.traj, interp: ref.k.interp}})
	}
	mark.dirty = append(mark.dirty, dirtyMark{sh: sh, taken: taken})
	return nil
}

// CommitFreeze evicts the heap prefixes CollectTail captured, after the
// tier has made the emitted segment durable. The result has one entry per
// emitted run, in emission order: true means the run's content was evicted
// and the tier now serves it; false means the key was written between
// collect and commit, the heap still holds its content and the tier must
// not serve the run (the next freeze re-emits the key, shadowing the dead
// run at recovery). Overlay merge runs are always live.
func (s *Store) CommitFreeze(mark *FreezeMark) []bool {
	live := make([]bool, len(mark.entries))
	for i, e := range mark.entries {
		e.sh.mu.Lock()
		live[i] = commitFreezeEntry(e.sh, e)
		e.sh.mu.Unlock()
	}
	for _, d := range mark.dirty {
		d.sh.mu.Lock()
		if fz := d.sh.frozen; fz != nil && d.taken <= len(fz.overlayDirty) {
			fz.overlayDirty = append([]overlayRef(nil), fz.overlayDirty[d.taken:]...)
		}
		d.sh.mu.Unlock()
	}
	return live
}

// commitFreezeEntry evicts one captured run if its key is unchanged.
// Caller holds sh.mu (write).
func commitFreezeEntry(sh *shard, e freezeEntry) bool {
	if e.key.table == frzOverlay {
		return true
	}
	if sh.gen(e.key) != e.gen {
		return false
	}
	fz := sh.frozenMeta()
	switch e.key.table {
	case frzRecords:
		obj := e.key.key
		heap := sh.records[obj]
		take := e.count - fz.recs[obj]
		if take < 0 || take > len(heap) {
			return false
		}
		// Clone the suffix so the evicted prefix's backing array is released.
		sh.records[obj] = append([]gps.Record(nil), heap[take:]...)
		fz.recs[obj] = e.count
	case frzTrajectory:
		id := e.key.key
		if _, ok := sh.trajectories[id]; !ok {
			return false
		}
		delete(sh.trajectories, id)
		fz.trajs[id] = e.obj
	case frzEpisodes:
		id := e.key.key
		heap := sh.episodes[id]
		take := e.count - fz.eps[id]
		if take < 0 || take > len(heap) {
			return false
		}
		sh.episodes[id] = append([]*episode.Episode(nil), heap[take:]...)
		fz.eps[id] = e.count
		fz.epStops[id] = e.stops
	case frzTuples:
		k := tupKey{e.key.key, e.key.interp}
		st := sh.structured[k.traj][k.interp]
		if st == nil {
			return false
		}
		take := e.count - fz.tups[k]
		if take < 0 || take > len(st.Tuples) {
			return false
		}
		st.Tuples = append([]*core.EpisodeTuple(nil), st.Tuples[take:]...)
		fz.tups[k] = e.count
	default:
		return false
	}
	return true
}
