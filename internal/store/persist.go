package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/geo"
	"semitri/internal/gps"
)

// snapshot is the JSON persistence format of the store. It is shard-layout
// independent: Save merges every stripe into one document (sorted where map
// iteration would leak ordering), and Load re-routes rows through the public
// Put API, so a snapshot written with one shard count loads into a store
// with any other.
type snapshot struct {
	Records      map[string][]jsonRecord          `json:"records"`
	Trajectories []jsonTrajectory                 `json:"trajectories"`
	Episodes     map[string][]*episode.Episode    `json:"episodes"`
	Structured   map[string]map[string]jsonStruct `json:"structured"`
}

type jsonRecord struct {
	Object string    `json:"object"`
	X      float64   `json:"x"`
	Y      float64   `json:"y"`
	Time   time.Time `json:"time"`
}

type jsonTrajectory struct {
	ID       string       `json:"id"`
	ObjectID string       `json:"object_id"`
	Records  []jsonRecord `json:"records"`
}

type jsonStruct struct {
	ID             string      `json:"id"`
	ObjectID       string      `json:"object_id"`
	Interpretation string      `json:"interpretation"`
	Tuples         []jsonTuple `json:"tuples"`
}

type jsonTuple struct {
	Kind        string            `json:"kind"`
	Place       *core.Place       `json:"place,omitempty"`
	TimeIn      time.Time         `json:"time_in"`
	TimeOut     time.Time         `json:"time_out"`
	Annotations []core.Annotation `json:"annotations,omitempty"`
}

// Save writes the store contents as JSON to the given path, creating parent
// directories as needed. Each stripe is serialised into snapshot rows while
// its lock is held (AppendStructuredTuples mutates stored tuple slices in
// place, so reading them outside the stripe lock would race); writers
// running concurrently with Save land entirely in or entirely out of the
// file per row, never half-serialised.
//
// The write is crash-safe: the snapshot lands in a temporary file in the
// target directory and is renamed into place, so a snapshot taken during
// live ingestion (or interrupted by a crash) can never be read torn — any
// existing file at path stays intact until the new one is complete.
func (s *Store) Save(path string) error {
	snap := snapshot{
		Records:    map[string][]jsonRecord{},
		Episodes:   map[string][]*episode.Episode{},
		Structured: map[string]map[string]jsonStruct{},
	}
	for _, sh := range s.shards {
		sh.snapshotInto(&snap)
	}

	sort.Slice(snap.Trajectories, func(i, j int) bool { return snap.Trajectories[i].ID < snap.Trajectories[j].ID })
	data, err := json.MarshalIndent(&snap, "", " ")
	if err != nil {
		return fmt.Errorf("store: marshal: %w", err)
	}
	dir := filepath.Dir(path)
	if dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("store: mkdir: %w", err)
		}
	}
	// The temp file must live in the target directory: os.Rename is only
	// atomic within one filesystem.
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: temp file: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: write: %w", err)
	}
	// Flush the data before the rename: without it a power failure after
	// the rename could surface an empty or partial destination file (rename
	// alone is only atomic against process crashes).
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: close: %w", err)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: chmod: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: rename: %w", err)
	}
	// Persist the rename itself: fsync the directory so the new entry
	// survives a crash (best-effort — not every platform allows it).
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// Load reads a snapshot produced by Save into a fresh store.
func Load(path string) (*Store, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: read: %w", err)
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("store: unmarshal: %w", err)
	}
	s := New()
	for _, rows := range snap.Records {
		recs := make([]gps.Record, len(rows))
		for i, r := range rows {
			recs[i] = gps.Record{ObjectID: r.Object, Position: geo.Pt(r.X, r.Y), Time: r.Time}
		}
		s.PutRecords(recs)
	}
	for _, jt := range snap.Trajectories {
		recs := make([]gps.Record, len(jt.Records))
		for i, r := range jt.Records {
			recs[i] = gps.Record{ObjectID: r.Object, Position: geo.Pt(r.X, r.Y), Time: r.Time}
		}
		if err := s.PutTrajectory(&gps.RawTrajectory{ID: jt.ID, ObjectID: jt.ObjectID, Records: recs}); err != nil {
			return nil, err
		}
	}
	for id, eps := range snap.Episodes {
		if err := s.PutEpisodes(id, eps); err != nil {
			return nil, err
		}
	}
	for _, byInterp := range snap.Structured {
		for _, js := range byInterp {
			st := &core.StructuredTrajectory{ID: js.ID, ObjectID: js.ObjectID, Interpretation: js.Interpretation}
			for _, jtp := range js.Tuples {
				kind := episode.Move
				if jtp.Kind == "stop" {
					kind = episode.Stop
				}
				tp := &core.EpisodeTuple{Kind: kind, Place: jtp.Place, TimeIn: jtp.TimeIn, TimeOut: jtp.TimeOut}
				for _, a := range jtp.Annotations {
					tp.Annotations.Add(a)
				}
				st.Tuples = append(st.Tuples, tp)
			}
			if err := s.PutStructured(st); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}
