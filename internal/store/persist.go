package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/geo"
	"semitri/internal/gps"
)

// snapshot is the JSON persistence format of the store. It is shard-layout
// independent: Save merges every stripe into one document (keys sorted, so a
// snapshot of given content is byte-identical regardless of stripe layout or
// insertion order), and Load re-routes rows through the public Put API, so a
// snapshot written with one shard count loads into a store with any other.
//
// Save streams the document row by row (see writeSnapshot); this struct is
// only unmarshalled into by Load.
type snapshot struct {
	Records      map[string][]jsonRecord          `json:"records"`
	Trajectories []jsonTrajectory                 `json:"trajectories"`
	Episodes     map[string][]*episode.Episode    `json:"episodes"`
	Structured   map[string]map[string]jsonStruct `json:"structured"`
}

type jsonRecord struct {
	Object string    `json:"object"`
	X      float64   `json:"x"`
	Y      float64   `json:"y"`
	Time   time.Time `json:"time"`
}

type jsonTrajectory struct {
	ID       string       `json:"id"`
	ObjectID string       `json:"object_id"`
	Records  []jsonRecord `json:"records"`
}

type jsonStruct struct {
	ID             string      `json:"id"`
	ObjectID       string      `json:"object_id"`
	Interpretation string      `json:"interpretation"`
	Tuples         []jsonTuple `json:"tuples"`
}

type jsonTuple struct {
	Kind        string            `json:"kind"`
	Place       *core.Place       `json:"place,omitempty"`
	TimeIn      time.Time         `json:"time_in"`
	TimeOut     time.Time         `json:"time_out"`
	Annotations []core.Annotation `json:"annotations,omitempty"`
	// Episode preserves the tuple's back-pointer to its stop/move episode,
	// which the query engine's spatial path reads (episode bounds/centre).
	// Absent in snapshots written before the field existed, which load as
	// before (nil back-pointers).
	Episode *episode.Episode `json:"episode,omitempty"`
}

// Save writes the store contents as JSON to the given path, creating parent
// directories as needed. The document is streamed row by row with a
// json.Encoder straight to the temporary file: each row (one object's
// records, one trajectory, one structured interpretation) is copied under
// its stripe lock and encoded immediately, so Save's memory footprint scales
// with the largest single row, not with the store. Writers running
// concurrently with Save land entirely in or entirely out of the file per
// row, never half-serialised.
//
// The write is crash-safe: the snapshot lands in a temporary file in the
// target directory and is renamed into place, so a snapshot taken during
// live ingestion (or interrupted by a crash) can never be read torn — any
// existing file at path stays intact until the new one is complete.
func (s *Store) Save(path string) error {
	dir := filepath.Dir(path)
	if dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("store: mkdir: %w", err)
		}
	}
	// The temp file must live in the target directory: os.Rename is only
	// atomic within one filesystem.
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: temp file: %w", err)
	}
	discard := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	bw := bufio.NewWriterSize(tmp, 64<<10)
	if err := s.writeSnapshot(bw); err != nil {
		return discard(fmt.Errorf("store: encode: %w", err))
	}
	if err := bw.Flush(); err != nil {
		return discard(fmt.Errorf("store: write: %w", err))
	}
	// Flush the data before the rename: without it a power failure after
	// the rename could surface an empty or partial destination file (rename
	// alone is only atomic against process crashes).
	if err := tmp.Sync(); err != nil {
		return discard(fmt.Errorf("store: sync: %w", err))
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: close: %w", err)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: chmod: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: rename: %w", err)
	}
	// Persist the rename itself: fsync the directory so the new entry
	// survives a crash (best-effort — not every platform allows it).
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// writeSnapshot streams the snapshot document to w. Keys are collected and
// sorted up front (ids only — O(keys) memory), then each row is copied out
// of its stripe under the stripe's lock and encoded immediately.
func (s *Store) writeSnapshot(w *bufio.Writer) error {
	// field emits one `"key":value` pair, comma-separated within its block.
	val := func(v any) error {
		data, err := json.Marshal(v)
		if err != nil {
			return err
		}
		_, err = w.Write(data)
		return err
	}
	key := func(first bool, k string) error {
		if !first {
			if err := w.WriteByte(','); err != nil {
				return err
			}
		}
		if err := val(k); err != nil {
			return err
		}
		return w.WriteByte(':')
	}

	if _, err := w.WriteString(`{"records":{`); err != nil {
		return err
	}
	for i, obj := range s.recordObjectIDs() {
		if err := key(i == 0, obj); err != nil {
			return err
		}
		recs := s.Records(obj)
		rows := make([]jsonRecord, len(recs))
		for j, r := range recs {
			rows[j] = jsonRecord{Object: r.ObjectID, X: r.Position.X, Y: r.Position.Y, Time: r.Time}
		}
		if err := val(rows); err != nil {
			return err
		}
	}
	if _, err := w.WriteString(`},"trajectories":[`); err != nil {
		return err
	}
	first := true
	for _, id := range s.TrajectoryIDs("") {
		t, ok := s.Trajectory(id)
		if !ok {
			continue
		}
		if !first {
			if err := w.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		rows := make([]jsonRecord, len(t.Records))
		for j, r := range t.Records {
			rows[j] = jsonRecord{Object: r.ObjectID, X: r.Position.X, Y: r.Position.Y, Time: r.Time}
		}
		if err := val(jsonTrajectory{ID: t.ID, ObjectID: t.ObjectID, Records: rows}); err != nil {
			return err
		}
	}
	if _, err := w.WriteString(`],"episodes":{`); err != nil {
		return err
	}
	for i, id := range s.episodeTrajectoryIDs() {
		if err := key(i == 0, id); err != nil {
			return err
		}
		if err := val(s.Episodes(id)); err != nil {
			return err
		}
	}
	if _, err := w.WriteString(`},"structured":{`); err != nil {
		return err
	}
	for i, id := range s.StructuredIDs() {
		if err := key(i == 0, id); err != nil {
			return err
		}
		if err := w.WriteByte('{'); err != nil {
			return err
		}
		firstInterp := true
		for _, interp := range s.Interpretations(id) {
			objectID, tuples, ok := s.TupleSnapshot(id, interp)
			if !ok {
				continue
			}
			if err := key(firstInterp, interp); err != nil {
				return err
			}
			firstInterp = false
			js := jsonStruct{ID: id, ObjectID: objectID, Interpretation: interp}
			for _, tp := range tuples {
				js.Tuples = append(js.Tuples, jsonTuple{
					Kind:        tp.Kind.String(),
					Place:       tp.Place,
					TimeIn:      tp.TimeIn,
					TimeOut:     tp.TimeOut,
					Annotations: tp.Annotations.All(),
					Episode:     tp.Episode,
				})
			}
			if err := val(js); err != nil {
				return err
			}
		}
		if err := w.WriteByte('}'); err != nil {
			return err
		}
	}
	_, err := w.WriteString(`}}`)
	return err
}

// recordObjectIDs returns the ids of every object owning raw records, sorted.
func (s *Store) recordObjectIDs() []string {
	var out []string
	for _, sh := range s.shards {
		sh.mu.RLock()
		for obj := range sh.records {
			out = append(out, obj)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// episodeTrajectoryIDs returns the ids of every trajectory with stored
// episodes, sorted.
func (s *Store) episodeTrajectoryIDs() []string {
	var out []string
	for _, sh := range s.shards {
		sh.mu.RLock()
		for id := range sh.episodes {
			out = append(out, id)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// Load reads a snapshot produced by Save into a fresh store with the
// default shard count. Use LoadSharded to keep a configured stripe count
// across a save/restore cycle.
func Load(path string) (*Store, error) {
	return LoadSharded(path, 0)
}

// LoadSharded reads a snapshot produced by Save into a fresh store with n
// lock stripes (values below 1 mean DefaultShards). The snapshot format is
// shard-layout independent, so any snapshot loads into any stripe count; a
// recovered server passes its configured StoreShards here to keep its
// striping.
func LoadSharded(path string, n int) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: read: %w", err)
	}
	defer f.Close()
	var snap snapshot
	if err := json.NewDecoder(bufio.NewReaderSize(f, 64<<10)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("store: unmarshal: %w", err)
	}
	s := NewSharded(n)
	for _, rows := range snap.Records {
		recs := make([]gps.Record, len(rows))
		for i, r := range rows {
			recs[i] = gps.Record{ObjectID: r.Object, Position: geo.Pt(r.X, r.Y), Time: r.Time}
		}
		s.PutRecords(recs)
	}
	for _, jt := range snap.Trajectories {
		recs := make([]gps.Record, len(jt.Records))
		for i, r := range jt.Records {
			recs[i] = gps.Record{ObjectID: r.Object, Position: geo.Pt(r.X, r.Y), Time: r.Time}
		}
		if err := s.PutTrajectory(&gps.RawTrajectory{ID: jt.ID, ObjectID: jt.ObjectID, Records: recs}); err != nil {
			return nil, err
		}
	}
	for id, eps := range snap.Episodes {
		if err := s.PutEpisodes(id, eps); err != nil {
			return nil, err
		}
	}
	for _, byInterp := range snap.Structured {
		for _, js := range byInterp {
			st := &core.StructuredTrajectory{ID: js.ID, ObjectID: js.ObjectID, Interpretation: js.Interpretation}
			for _, jtp := range js.Tuples {
				kind := episode.Move
				if jtp.Kind == "stop" {
					kind = episode.Stop
				}
				tp := &core.EpisodeTuple{Kind: kind, Place: jtp.Place, TimeIn: jtp.TimeIn, TimeOut: jtp.TimeOut, Episode: jtp.Episode}
				for _, a := range jtp.Annotations {
					tp.Annotations.Add(a)
				}
				st.Tuples = append(st.Tuples, tp)
			}
			if err := s.PutStructured(st); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}
