package store

import "testing"

// recIndex records which hooks fired, for asserting tee fan-out.
type recIndex struct {
	appended int
	replaced int
	updated  int
}

func (r *recIndex) TuplesAppended(events []TupleEvent) { r.appended += len(events) }
func (r *recIndex) StructuredReplaced(_, _, _ string, events []TupleEvent) {
	r.replaced += len(events)
}
func (r *recIndex) TupleUpdated(TupleEvent) { r.updated++ }

func TestTeeFansOutInOrder(t *testing.T) {
	a, b := &recIndex{}, &recIndex{}
	ix := Tee(a, nil, b) // nil entries must be skipped
	ix.TuplesAppended([]TupleEvent{{}, {}})
	ix.StructuredReplaced("t", "o", "merged", []TupleEvent{{}})
	ix.TupleUpdated(TupleEvent{})
	for i, r := range []*recIndex{a, b} {
		if r.appended != 2 || r.replaced != 1 || r.updated != 1 {
			t.Fatalf("index %d saw %+v, want appended=2 replaced=1 updated=1", i, *r)
		}
	}
}
