package store

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"semitri/internal/core"
	"semitri/internal/episode"
)

func TestAppendEpisodes(t *testing.T) {
	s := New()
	e1 := &episode.Episode{TrajectoryID: "t1", Kind: episode.Stop, Start: t0, End: t0.Add(time.Minute)}
	e2 := &episode.Episode{TrajectoryID: "t1", Kind: episode.Move, Start: t0.Add(time.Minute), End: t0.Add(2 * time.Minute)}
	if err := s.AppendEpisodes("t1", e1); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendEpisodes("t1", e2); err != nil {
		t.Fatal(err)
	}
	if got := s.Episodes("t1"); len(got) != 2 || got[0] != e1 || got[1] != e2 {
		t.Fatalf("appended episodes not preserved in order: %v", got)
	}
	if err := s.AppendEpisodes("", e1); err == nil {
		t.Fatal("empty trajectory id should be rejected")
	}
}

func TestAppendStructuredTuples(t *testing.T) {
	s := New()
	tp1 := &core.EpisodeTuple{Kind: episode.Stop, TimeIn: t0, TimeOut: t0.Add(time.Minute)}
	tp2 := &core.EpisodeTuple{Kind: episode.Move, TimeIn: t0.Add(time.Minute), TimeOut: t0.Add(2 * time.Minute)}
	if err := s.AppendStructuredTuples("t1", "u1", "merged", tp1); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendStructuredTuples("t1", "u1", "merged", tp2); err != nil {
		t.Fatal(err)
	}
	st, ok := s.Structured("t1", "merged")
	if !ok {
		t.Fatal("structured trajectory not created")
	}
	if st.ObjectID != "u1" || len(st.Tuples) != 2 || st.Tuples[0] != tp1 || st.Tuples[1] != tp2 {
		t.Fatalf("appended tuples not preserved: %+v", st)
	}
	if err := s.AppendStructuredTuples("", "u1", "merged", tp1); err == nil {
		t.Fatal("empty id should be rejected")
	}
	if err := s.AppendStructuredTuples("t1", "u1", "", tp1); err == nil {
		t.Fatal("empty interpretation should be rejected")
	}
}

// TestConcurrentAppends exercises the streaming write path: many goroutines
// appending episodes and tuples to their own trajectories while readers
// query counts. Run with -race in CI.
func TestConcurrentAppends(t *testing.T) {
	s := New()
	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("t%d", w)
			for i := 0; i < perWorker; i++ {
				ep := &episode.Episode{TrajectoryID: id, Kind: episode.Stop}
				if err := s.AppendEpisodes(id, ep); err != nil {
					t.Error(err)
					return
				}
				tp := &core.EpisodeTuple{Kind: episode.Stop, Episode: ep}
				if err := s.AppendStructuredTuples(id, "obj", "merged", tp); err != nil {
					t.Error(err)
					return
				}
				s.EpisodeCounts()
				s.StructuredCount()
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		id := fmt.Sprintf("t%d", w)
		if got := len(s.Episodes(id)); got != perWorker {
			t.Fatalf("trajectory %s: %d episodes, want %d", id, got, perWorker)
		}
		st, _ := s.Structured(id, "merged")
		if st == nil || len(st.Tuples) != perWorker {
			t.Fatalf("trajectory %s: structured tuples missing", id)
		}
	}
}
