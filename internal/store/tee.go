package store

// Tee fans index notifications out to several Index implementations, in
// argument order. The store attaches at most one index; Tee is how a second
// consumer (the live observability tap) rides along with the query engine
// without the store growing a subscriber list on its hot path. Nil entries
// are skipped, so callers can compose optional consumers unconditionally.
func Tee(indexes ...Index) Index {
	out := make(tee, 0, len(indexes))
	for _, ix := range indexes {
		if ix != nil {
			out = append(out, ix)
		}
	}
	return out
}

type tee []Index

func (t tee) TuplesAppended(events []TupleEvent) {
	for _, ix := range t {
		ix.TuplesAppended(events)
	}
}

func (t tee) StructuredReplaced(trajectoryID, objectID, interpretation string, events []TupleEvent) {
	for _, ix := range t {
		ix.StructuredReplaced(trajectoryID, objectID, interpretation, events)
	}
}

func (t tee) TupleUpdated(event TupleEvent) {
	for _, ix := range t {
		ix.TupleUpdated(event)
	}
}
