package obs

import (
	"io"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one `# HELP` / `# TYPE` header per metric family,
// followed by every sample of that family, with histograms expanded into
// cumulative `_bucket{le=...}`, `_sum` and `_count` series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	metrics := make([]metric, len(r.metrics))
	copy(metrics, r.metrics)
	r.mu.RUnlock()

	var b strings.Builder
	seen := map[string]bool{}
	for _, m := range metrics {
		if seen[m.family()] {
			continue
		}
		seen[m.family()] = true
		b.WriteString("# HELP ")
		b.WriteString(m.family())
		b.WriteByte(' ')
		b.WriteString(escapeHelp(m.help()))
		b.WriteByte('\n')
		b.WriteString("# TYPE ")
		b.WriteString(m.family())
		b.WriteByte(' ')
		b.WriteString(m.kind())
		b.WriteByte('\n')
		// Emit every sibling of the family together, in registration order,
		// as the format requires.
		for _, s := range metrics {
			if s.family() == m.family() {
				s.writeProm(&b)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
