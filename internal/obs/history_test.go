package obs

import (
	"sort"
	"testing"
	"time"
)

func TestRegistryNumeric(t *testing.T) {
	r := NewRegistry()
	c := NewCounterIn(r, "t_count", "h", "k", "v")
	g := NewGaugeIn(r, "t_gauge", "h")
	NewGaugeFuncIn(r, "t_fn", "h", func() float64 { return 2.5 })
	h := NewHistogramIn(r, "t_hist", "h", []float64{10, 100})
	c.Add(3)
	g.Set(-7)
	h.Observe(5)
	h.Observe(50)
	got := r.Numeric()
	want := map[string]float64{
		`t_count{k="v"}`: 3,
		"t_gauge":        -7,
		"t_fn":           2.5,
		"t_hist_count":   2,
		"t_hist_sum":     55,
	}
	for id, v := range want {
		if got[id] != v {
			t.Fatalf("Numeric[%q] = %v, want %v (full: %v)", id, got[id], v, got)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("Numeric has %d entries, want %d: %v", len(got), len(want), got)
	}
}

func TestHistoryWindowRingAndNames(t *testing.T) {
	r := NewRegistry()
	g := NewGaugeIn(r, "t_gauge", "h")
	h := NewHistory(r, 3, time.Hour)
	defer h.Close()
	for i := 1; i <= 5; i++ {
		g.Set(int64(i * 10))
		h.SampleNow()
	}
	// Capacity 3: only the last three samples survive, oldest first.
	samples, ok := h.Window("t_gauge", 0)
	if !ok {
		t.Fatal("series t_gauge missing")
	}
	if len(samples) != 3 {
		t.Fatalf("retained %d samples, want 3", len(samples))
	}
	for i, want := range []float64{30, 40, 50} {
		if samples[i].Value != want {
			t.Fatalf("sample %d = %v, want %v", i, samples[i].Value, want)
		}
		if i > 0 && samples[i].UnixNano < samples[i-1].UnixNano {
			t.Fatal("samples not in chronological order")
		}
	}
	if _, ok := h.Window("nope", 0); ok {
		t.Fatal("unknown series must report !ok")
	}
	// A tiny trailing window excludes everything but keeps the series known.
	old, ok := h.Window("t_gauge", time.Nanosecond)
	if !ok {
		t.Fatal("windowed lookup lost the series")
	}
	if len(old) > 3 {
		t.Fatalf("window returned %d samples", len(old))
	}
	names := h.Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names not sorted: %v", names)
	}
	found := false
	for _, n := range names {
		if n == "t_gauge" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Names missing t_gauge: %v", names)
	}
}

func TestHistoryTickBus(t *testing.T) {
	r := NewRegistry()
	g := NewGaugeIn(r, "t_gauge", "h")
	h := NewHistory(r, 8, time.Hour)
	sub := h.Subscribe(4)
	g.Set(42)
	h.SampleNow()
	tick, ok := sub.TryNext()
	if !ok {
		t.Fatal("no tick delivered")
	}
	if tick.Values["t_gauge"] != 42 {
		t.Fatalf("tick value = %v, want 42", tick.Values["t_gauge"])
	}
	if tick.UnixNano == 0 {
		t.Fatal("tick missing timestamp")
	}
	h.Close()
	select {
	case <-sub.Done():
	default:
		t.Fatal("history close must close tick subscriptions")
	}
	if h.Subscribe(1) != nil {
		t.Fatal("Subscribe after Close must return nil")
	}
}

func TestHistoryStartAndClose(t *testing.T) {
	r := NewRegistry()
	NewGaugeIn(r, "t_gauge", "h")
	h := NewHistory(r, 8, time.Millisecond)
	h.Start()
	h.Start() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s, ok := h.Window("t_gauge", 0); ok && len(s) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sampler never produced two samples")
		}
		time.Sleep(time.Millisecond)
	}
	h.Close()
	h.Close() // idempotent

	// Close without Start must not hang.
	h2 := NewHistory(r, 2, time.Hour)
	h2.Close()
}
