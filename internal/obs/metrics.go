package obs

import "strings"

// The process-wide metric catalogue. Every subsystem records into these
// package-level vars; keeping the catalogue in one file keeps naming
// consistent and makes the README table and the serve-smoke assertions easy
// to audit. Label "vecs" are deliberately small and fixed — one registered
// metric per label value — so the record path never touches a map.

// Ingest (stream.go).
var (
	IngestRecords = NewCounter("semitri_ingest_records_total",
		"GPS records accepted by the streaming pipeline.")
	IngestStageCleanNs = NewHistogram("semitri_ingest_stage_ns",
		"Sampled per-record latency of each streaming ingest stage, in nanoseconds.",
		nil, "stage", "clean")
	IngestStageSegmentNs = NewHistogram("semitri_ingest_stage_ns",
		"Sampled per-record latency of each streaming ingest stage, in nanoseconds.",
		nil, "stage", "segment")
	IngestStageTrackNs = NewHistogram("semitri_ingest_stage_ns",
		"Sampled per-record latency of each streaming ingest stage, in nanoseconds.",
		nil, "stage", "track")
	IngestStageAnnotateNs = NewHistogram("semitri_ingest_stage_ns",
		"Sampled per-record latency of each streaming ingest stage, in nanoseconds.",
		nil, "stage", "annotate")
)

// Store (internal/store).
var (
	StoreMutRecords = NewCounter("semitri_store_mutations_total",
		"Committed store mutations by table.", "table", "records")
	StoreMutEpisodes = NewCounter("semitri_store_mutations_total",
		"Committed store mutations by table.", "table", "episodes")
	StoreMutTrajectories = NewCounter("semitri_store_mutations_total",
		"Committed store mutations by table.", "table", "trajectories")
	StoreMutStructured = NewCounter("semitri_store_mutations_total",
		"Committed store mutations by table.", "table", "structured")
	StoreMutAnnotations = NewCounter("semitri_store_mutations_total",
		"Committed store mutations by table.", "table", "annotations")
	StoreStripeWaitNs = NewHistogram("semitri_store_stripe_wait_ns",
		"Contended stripe-lock acquisition wait, in nanoseconds (uncontended grabs are not timed).", nil)
)

// Query engine (internal/query). Per-path counters are indexed by the
// planner's path rank via QueryByPath.
var (
	QueryPathTrajectory = NewCounter("semitri_query_total",
		"Queries executed by chosen access path.", "path", "trajectory")
	QueryPathAnnotation = NewCounter("semitri_query_total",
		"Queries executed by chosen access path.", "path", "annotation")
	QueryPathObjectTime = NewCounter("semitri_query_total",
		"Queries executed by chosen access path.", "path", "object-time")
	QueryPathSpatial = NewCounter("semitri_query_total",
		"Queries executed by chosen access path.", "path", "spatial")
	QueryPathScan = NewCounter("semitri_query_total",
		"Queries executed by chosen access path.", "path", "scan")
	// QueryByPath is indexed by the planner's path rank (same order as the
	// path constants' pathRank).
	QueryByPath = [...]*Counter{
		QueryPathTrajectory, QueryPathAnnotation, QueryPathObjectTime,
		QueryPathSpatial, QueryPathScan,
	}
	QueryPlanNs = NewHistogram("semitri_query_plan_ns",
		"Query planning latency, in nanoseconds.", nil)
	QueryExecNs = NewHistogram("semitri_query_exec_ns",
		"Query execution latency, in nanoseconds.", nil)
	QueryCandidates = NewCounter("semitri_query_candidates_total",
		"Index candidates examined by query execution.")
	QueryReturned = NewCounter("semitri_query_returned_total",
		"Matches returned by query execution.")
	JoinQueries = NewCounter("semitri_join_total",
		"Relational joins executed.")
	JoinProbes = NewCounter("semitri_join_probes_total",
		"Per-row probe queries issued by join execution.")
	JoinWorkerProbes = NewHistogram("semitri_join_worker_probes",
		"Probe fan-out per join worker (probes handled by one worker in one join).",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536})
)

// WAL (internal/wal).
var (
	WALFrames = NewCounter("semitri_wal_frames_total",
		"Mutation frames appended to the write-ahead log.")
	WALBytes = NewCounter("semitri_wal_bytes_total",
		"Bytes written to write-ahead log segments.")
	WALFsyncs = NewCounter("semitri_wal_fsync_total",
		"fsync/fdatasync calls issued by the write-ahead log.")
	WALFlushNs = NewHistogram("semitri_wal_flush_ns",
		"Group-commit flush latency, in nanoseconds.", nil)
	WALCheckpointNs = NewHistogram("semitri_wal_checkpoint_ns",
		"Checkpoint duration, in nanoseconds.", nil)
	// WALLastFlushUnixNano and the error gauges carry health state: they
	// record even when instrumentation is disabled (gauges always do).
	WALLastFlushUnixNano = NewGauge("semitri_wal_last_flush_unix_nano",
		"Wall-clock time of the last successful WAL flush, in Unix nanoseconds.")
	WALErrored = NewGauge("semitri_wal_errored",
		"1 when the write-ahead log has a sticky write/sync error, else 0.")
	CheckpointErrored = NewGauge("semitri_checkpoint_errored",
		"1 when the last checkpoint or freeze returned an error, else 0.")
)

// Segment tier (internal/segment).
var (
	SegmentFreezes = NewCounter("semitri_segment_freezes_total",
		"Heap tails frozen into immutable segments.")
	SegmentColdReads = NewCounter("semitri_segment_cold_reads_total",
		"Tuples decoded from frozen segments (cold reads).")
	SegmentColdBytes = NewCounter("semitri_segment_cold_bytes_total",
		"Frame bytes decoded from frozen segments (mmap-touch proxy).")
	// Per-footer-rule prune counters, indexed by the rule names the pruner
	// reports in traces.
	SegmentPruned = map[string]*Counter{}
)

// Live observability pipeline (internal/obs event bus + internal/query
// standing queries). The two bus roles each get one metric set: "live" is
// the store tuple-event bus feeding standing queries and /subscribe, while
// "metrics" is the sampled-tick bus feeding /metrics/stream.
var (
	LiveBusMetrics    = NewBusMetrics("live")
	MetricsBusMetrics = NewBusMetrics("metrics")

	LiveStandingQueries = NewGauge("semitri_live_standing_queries",
		"Standing queries currently registered with the live dispatcher.")
	LiveEventsEvaluated = NewCounter("semitri_live_events_evaluated_total",
		"Tuple events evaluated against standing-query predicates.")
	LiveMatches = NewCounter("semitri_live_matches_total",
		"Standing-query match notifications produced by the live dispatcher.")
	LiveDispatchNs = NewHistogram("semitri_live_dispatch_ns",
		"Per-event dispatch latency across all standing queries, in nanoseconds.", nil)
)

// Health (served by /healthz; mirrored here so dashboards and scrapers can
// alert without parsing the JSON body). The gauge records even when
// instrumentation is disabled, like the other health-state gauges.
var (
	HealthDegraded = NewGauge("semitri_health_degraded",
		"1 when /healthz reports the pipeline degraded, else 0.")
	HealthReasonWALError = NewCounter("semitri_health_reasons_total",
		"Degraded /healthz evaluations by reason class.", "reason", "wal-error")
	HealthReasonWALStall = NewCounter("semitri_health_reasons_total",
		"Degraded /healthz evaluations by reason class.", "reason", "wal-stall")
	HealthReasonCheckpoint = NewCounter("semitri_health_reasons_total",
		"Degraded /healthz evaluations by reason class.", "reason", "checkpoint")
	HealthReasonOther = NewCounter("semitri_health_reasons_total",
		"Degraded /healthz evaluations by reason class.", "reason", "other")
)

// HealthReasonCounter maps a /healthz degraded-reason string onto its class
// counter, matching the reason formats Pipeline.Health emits.
func HealthReasonCounter(reason string) *Counter {
	switch {
	case strings.Contains(reason, "stalled"):
		return HealthReasonWALStall
	case strings.HasPrefix(reason, "wal:"):
		return HealthReasonWALError
	case strings.HasPrefix(reason, "checkpoint:"):
		return HealthReasonCheckpoint
	default:
		return HealthReasonOther
	}
}

// PruneRules lists the footer rules segmentCanMatch can refute on, in the
// order they are evaluated. Exported so traces and metrics agree on names.
var PruneRules = []string{
	"interpretation", "kind", "time-span", "object-bloom",
	"annotation-key", "no-geometry", "bbox",
}

func init() {
	for _, rule := range PruneRules {
		SegmentPruned[rule] = NewCounter("semitri_segment_pruned_total",
			"Whole segments pruned off footer summaries, by refuting rule.",
			"rule", rule)
	}
}

// SegmentPrunedBy bumps the prune counter for rule, tolerating unknown names.
func SegmentPrunedBy(rule string) {
	if c, ok := SegmentPruned[rule]; ok {
		c.Inc()
	}
}
