package obs

import (
	"sort"
	"sync"
	"time"
)

// Numeric flattens every registered metric into float64 samples keyed by the
// same ids /metrics exposes: counters and gauges map to one entry, histograms
// to their _count and _sum series. This is the scrape the history sampler and
// /metrics/stream run on — one flat map, no exposition-format parsing.
func (r *Registry) Numeric() map[string]float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]float64, len(r.metrics)+8)
	id := func(m metric, suffix string) string {
		s := m.family() + suffix
		if l := m.labels(); l != "" {
			s += "{" + l + "}"
		}
		return s
	}
	for _, m := range r.metrics {
		switch v := m.(type) {
		case *Counter:
			out[id(m, "")] = float64(v.Value())
		case *Gauge:
			out[id(m, "")] = float64(v.Value())
		case *GaugeFunc:
			out[id(m, "")] = v.fn()
		case *Histogram:
			out[id(m, "_count")] = float64(v.Count())
			out[id(m, "_sum")] = float64(v.Sum())
		}
	}
	return out
}

// Sample is one point of a metric time-series.
type Sample struct {
	UnixNano int64   `json:"unix_nano"`
	Value    float64 `json:"value"`
}

// MetricsTick is one sampler pass over the registry, published to the
// history's tick bus so /metrics/stream pushes instead of forcing clients to
// poll /metrics.
type MetricsTick struct {
	UnixNano int64              `json:"unix_nano"`
	Values   map[string]float64 `json:"values"`
}

// series is a fixed-capacity ring of samples for one metric id.
type series struct {
	buf  []Sample
	head int
	n    int
}

func (s *series) push(p Sample) {
	if s.n == len(s.buf) {
		s.buf[s.head] = p
		s.head = (s.head + 1) % len(s.buf)
		return
	}
	s.buf[(s.head+s.n)%len(s.buf)] = p
	s.n++
}

// History keeps a bounded in-process time-series per metric, fed by a
// background ticker, so "/metrics/history?name=...&window=10m" answers
// without an external Prometheus. Capacity bounds memory: at the default 2s
// interval, 1024 points cover ~34 minutes per series.
type History struct {
	reg      *Registry
	capacity int
	interval time.Duration

	mu     sync.RWMutex
	series map[string]*series

	bus *Bus[MetricsTick]

	startOnce sync.Once
	closeOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// DefaultHistoryInterval is the sampler period used when none is given.
const DefaultHistoryInterval = 2 * time.Second

// NewHistory builds a history over r (Default() when nil) keeping capacity
// samples per series (minimum 2) at the given interval
// (DefaultHistoryInterval when <= 0). Call Start to launch the sampler.
func NewHistory(r *Registry, capacity int, interval time.Duration) *History {
	if r == nil {
		r = Default()
	}
	if capacity < 2 {
		capacity = 2
	}
	if interval <= 0 {
		interval = DefaultHistoryInterval
	}
	return &History{
		reg:      r,
		capacity: capacity,
		interval: interval,
		series:   map[string]*series{},
		bus:      NewBus[MetricsTick](MetricsBusMetrics),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the background sampler ticker. Idempotent.
func (h *History) Start() {
	h.startOnce.Do(func() {
		go func() {
			defer close(h.done)
			t := time.NewTicker(h.interval)
			defer t.Stop()
			h.SampleNow() // seed the series so the first window query answers
			for {
				select {
				case <-t.C:
					h.SampleNow()
				case <-h.stop:
					return
				}
			}
		}()
	})
}

// Close stops the sampler (waiting for it to exit if started) and closes the
// tick bus. Idempotent.
func (h *History) Close() {
	h.closeOnce.Do(func() {
		close(h.stop)
		h.startOnce.Do(func() { close(h.done) }) // never started: release waiters
		<-h.done
		h.bus.Close()
	})
}

// SampleNow takes one sampler pass immediately: scrape the registry, append
// to every series, publish the tick. Exposed so tests and handlers can force
// a fresh point without waiting out the ticker.
func (h *History) SampleNow() MetricsTick {
	now := time.Now().UnixNano()
	vals := h.reg.Numeric()
	h.mu.Lock()
	for id, v := range vals {
		s := h.series[id]
		if s == nil {
			s = &series{buf: make([]Sample, h.capacity)}
			h.series[id] = s
		}
		s.push(Sample{UnixNano: now, Value: v})
	}
	h.mu.Unlock()
	tick := MetricsTick{UnixNano: now, Values: vals}
	h.bus.Publish(tick)
	return tick
}

// Window returns the samples recorded for the metric id within the trailing
// window (everything retained when window <= 0), oldest first. The boolean
// reports whether the series exists at all.
func (h *History) Window(id string, window time.Duration) ([]Sample, bool) {
	var cutoff int64
	if window > 0 {
		cutoff = time.Now().Add(-window).UnixNano()
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	s := h.series[id]
	if s == nil {
		return nil, false
	}
	out := make([]Sample, 0, s.n)
	for i := 0; i < s.n; i++ {
		p := s.buf[(s.head+i)%len(s.buf)]
		if p.UnixNano >= cutoff {
			out = append(out, p)
		}
	}
	return out, true
}

// Names returns every series id currently tracked, sorted.
func (h *History) Names() []string {
	h.mu.RLock()
	out := make([]string, 0, len(h.series))
	for id := range h.series {
		out = append(out, id)
	}
	h.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Interval returns the sampler period.
func (h *History) Interval() time.Duration { return h.interval }

// Subscribe attaches a tick subscriber (for /metrics/stream); buffer is the
// per-subscriber ring size. Returns nil after Close.
func (h *History) Subscribe(buffer int) *Sub[MetricsTick] {
	return h.bus.Subscribe(buffer)
}

// BusStats exposes the tick bus's self-instrumentation.
func (h *History) BusStats() BusStats { return h.bus.Stats() }
