// Package obs is semitri's zero-dependency observability layer: a lock-cheap
// metrics registry (atomic counters, gauges and fixed-bucket histograms with
// a sub-microsecond record path), Prometheus text exposition, Go runtime
// stats, a slowest-queries log and the shared structured logger every command
// configures. Subsystems register their metrics as package-level vars against
// the default registry at init time; recording is a handful of atomic
// operations, so instrumentation can sit on the ingest and query hot paths
// without regressing them (bench-asserted by the "obs" experiment).
//
// The whole layer is stdlib-only, matching the repo convention: the
// Prometheus surface is the text exposition format, written by hand, not a
// client library.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// enabled is the package-wide instrumentation gate. Recording checks it with
// one atomic load; scraping ignores it. It exists so the "obs" bench
// experiment can measure instrumented-vs-uninstrumented hot paths inside one
// process — production never turns it off.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled turns metric recording on or off process-wide. Registration and
// scraping are unaffected; disabled metrics simply stop moving.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether metric recording is on.
func Enabled() bool { return enabled.Load() }

// metric is the common surface of every registered metric.
type metric interface {
	family() string // metric name without labels
	labels() string // rendered label set, "" when unlabelled
	help() string
	kind() string // "counter" | "gauge" | "histogram"
	// writeProm appends the metric's sample lines (no HELP/TYPE headers).
	writeProm(b *strings.Builder)
	// snapshot returns the metric's value for the JSON form of /stats.
	snapshot() any
}

// Registry holds registered metrics in registration order. The zero value is
// not usable; use NewRegistry or the package Default.
type Registry struct {
	mu      sync.RWMutex
	metrics []metric
	ids     map[string]struct{}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{ids: map[string]struct{}{}}
}

// defaultRegistry is the process-wide registry the package-level constructors
// register into and /metrics scrapes.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// register adds m, panicking on a duplicate (name, labels) id — metric
// registration is init-time wiring, so a duplicate is a programming error.
func (r *Registry) register(m metric) {
	id := m.family() + m.labels()
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.ids[id]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %s", id))
	}
	r.ids[id] = struct{}{}
	r.metrics = append(r.metrics, m)
}

// Snapshot returns every metric's current value keyed by its full id
// (family plus rendered labels) — the JSON form served inside /stats.
func (r *Registry) Snapshot() map[string]any {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]any, len(r.metrics))
	for _, m := range r.metrics {
		id := m.family()
		if l := m.labels(); l != "" {
			id += "{" + l + "}"
		}
		out[id] = m.snapshot()
	}
	return out
}

// labelString renders "k1=v1 k2=v2 ..." pairs as a Prometheus label body,
// sorted by key. kv must alternate key, value.
func labelString(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("obs: labels must be key, value pairs")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	return b.String()
}

// meta is the registration metadata every metric embeds.
type meta struct {
	name  string
	label string
	hlp   string
}

func (m *meta) family() string { return m.name }
func (m *meta) labels() string { return m.label }
func (m *meta) help() string   { return m.hlp }

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	meta
	v atomic.Int64
}

// NewCounter registers a counter in the default registry. labels, if any,
// are constant key, value pairs baked into the metric's identity (the
// idiomatic way to build a small fixed "vec": one call per label value).
func NewCounter(name, help string, labels ...string) *Counter {
	return NewCounterIn(defaultRegistry, name, help, labels...)
}

// NewCounterIn is NewCounter against an explicit registry.
func NewCounterIn(r *Registry, name, help string, labels ...string) *Counter {
	c := &Counter{meta: meta{name: name, label: labelString(labels), hlp: help}}
	r.register(c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored — counters are monotone).
func (c *Counter) Add(n int64) {
	if n <= 0 || !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) kind() string { return "counter" }
func (c *Counter) writeProm(b *strings.Builder) {
	writeSample(b, c.name, c.label, "", float64(c.v.Load()))
}
func (c *Counter) snapshot() any { return c.v.Load() }

// Gauge is a settable atomic int64 value.
type Gauge struct {
	meta
	v atomic.Int64
}

// NewGauge registers a gauge in the default registry.
func NewGauge(name, help string, labels ...string) *Gauge {
	return NewGaugeIn(defaultRegistry, name, help, labels...)
}

// NewGaugeIn is NewGauge against an explicit registry.
func NewGaugeIn(r *Registry, name, help string, labels ...string) *Gauge {
	g := &Gauge{meta: meta{name: name, label: labelString(labels), hlp: help}}
	r.register(g)
	return g
}

// Set stores v. Unlike counters, gauges record even when instrumentation is
// disabled: they carry state (error flags, last-success timestamps) that
// health checks read, not hot-path traffic.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) kind() string { return "gauge" }
func (g *Gauge) writeProm(b *strings.Builder) {
	writeSample(b, g.name, g.label, "", float64(g.v.Load()))
}
func (g *Gauge) snapshot() any { return g.v.Load() }

// GaugeFunc is a gauge whose value is computed at scrape time (runtime
// stats, pool sizes — anything already maintained elsewhere).
type GaugeFunc struct {
	meta
	fn func() float64
}

// NewGaugeFunc registers a computed gauge in the default registry.
func NewGaugeFunc(name, help string, fn func() float64, labels ...string) *GaugeFunc {
	return NewGaugeFuncIn(defaultRegistry, name, help, fn, labels...)
}

// NewGaugeFuncIn is NewGaugeFunc against an explicit registry.
func NewGaugeFuncIn(r *Registry, name, help string, fn func() float64, labels ...string) *GaugeFunc {
	g := &GaugeFunc{meta: meta{name: name, label: labelString(labels), hlp: help}, fn: fn}
	r.register(g)
	return g
}

func (g *GaugeFunc) kind() string { return "gauge" }
func (g *GaugeFunc) writeProm(b *strings.Builder) {
	writeSample(b, g.name, g.label, "", g.fn())
}
func (g *GaugeFunc) snapshot() any { return g.fn() }

// DefBucketsNs is the default histogram bucket layout for nanosecond
// latencies: quarter-decade steps from 250 ns to 10 s, wide enough for both
// the sub-microsecond ingest stages and multi-second checkpoints.
var DefBucketsNs = []float64{
	250, 500, 1e3, 2.5e3, 5e3, 1e4, 2.5e4, 5e4, 1e5, 2.5e5, 5e5,
	1e6, 2.5e6, 5e6, 1e7, 2.5e7, 5e7, 1e8, 2.5e8, 5e8, 1e9, 2.5e9, 5e9, 1e10,
}

// Histogram is a fixed-bucket histogram with atomic per-bucket counters: the
// record path is one binary search over the (immutable) bounds plus three
// atomic adds — no locks, no allocation.
type Histogram struct {
	meta
	bounds []float64 // ascending upper bounds; +Inf is implicit
	counts []atomic.Int64
	sum    atomic.Int64 // sum of observations, truncated to int64
	count  atomic.Int64
}

// NewHistogram registers a histogram with the given bucket upper bounds
// (DefBucketsNs when nil) in the default registry.
func NewHistogram(name, help string, bounds []float64, labels ...string) *Histogram {
	return NewHistogramIn(defaultRegistry, name, help, bounds, labels...)
}

// NewHistogramIn is NewHistogram against an explicit registry.
func NewHistogramIn(r *Registry, name, help string, bounds []float64, labels ...string) *Histogram {
	if bounds == nil {
		bounds = DefBucketsNs
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not ascending", name))
		}
	}
	h := &Histogram{
		meta:   meta{name: name, label: labelString(labels), hlp: help},
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	r.register(h)
	return h
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if !enabled.Load() {
		return
	}
	// Binary search for the first bound >= v; the last slot is +Inf.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.sum.Add(int64(v))
	h.count.Add(1)
}

// ObserveNs records a duration observation given in nanoseconds.
func (h *Histogram) ObserveNs(ns int64) { h.Observe(float64(ns)) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations (truncated to int64 per observation).
func (h *Histogram) Sum() int64 { return h.sum.Load() }

func (h *Histogram) kind() string { return "histogram" }

func (h *Histogram) writeProm(b *strings.Builder) {
	// Cumulative buckets, then sum and count, per the exposition format.
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		lbl := h.label
		if lbl != "" {
			lbl += ","
		}
		lbl += fmt.Sprintf("le=%q", le)
		writeSample(b, h.name, lbl, "_bucket", float64(cum))
	}
	writeSample(b, h.name, h.label, "_sum", float64(h.sum.Load()))
	writeSample(b, h.name, h.label, "_count", float64(h.count.Load()))
}

func (h *Histogram) snapshot() any {
	n := h.count.Load()
	out := map[string]any{"count": n, "sum": h.sum.Load()}
	if n > 0 {
		out["avg"] = float64(h.sum.Load()) / float64(n)
	}
	return out
}

// writeSample appends one exposition line: name[suffix]{labels} value.
func writeSample(b *strings.Builder, name, labels, suffix string, v float64) {
	b.WriteString(name)
	b.WriteString(suffix)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

// formatFloat renders a sample value: integers without a decimal point,
// everything else in shortest-round-trip form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
