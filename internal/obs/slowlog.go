package obs

import (
	"sort"
	"sync"
	"time"
)

// SlowQuery is one retained entry of the slowest-queries log.
type SlowQuery struct {
	At     time.Time `json:"at"`
	Source string    `json:"source"` // endpoint or statement that ran it
	Query  string    `json:"query"`  // rendered query / statement text
	Ns     int64     `json:"ns"`
	Trace  any       `json:"trace,omitempty"` // *query.Trace, kept opaque here
}

// SlowLog retains the N slowest queries seen so far. It is cheap on the
// fast path: one mutex grab per recorded query, no allocation once full
// unless the query displaces an entry.
type SlowLog struct {
	mu      sync.Mutex
	cap     int
	entries []SlowQuery // unordered; min tracked on insert
	minNs   int64       // smallest Ns currently retained (valid when full)
}

// NewSlowLog returns a log retaining the capacity slowest queries.
func NewSlowLog(capacity int) *SlowLog {
	if capacity < 1 {
		capacity = 1
	}
	return &SlowLog{cap: capacity}
}

// Record offers one query to the log.
func (l *SlowLog) Record(q SlowQuery) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.entries) < l.cap {
		l.entries = append(l.entries, q)
		if len(l.entries) == l.cap {
			l.recomputeMin()
		}
		return
	}
	if q.Ns <= l.minNs {
		return
	}
	// Displace the current minimum.
	minIdx := 0
	for i := range l.entries {
		if l.entries[i].Ns < l.entries[minIdx].Ns {
			minIdx = i
		}
	}
	l.entries[minIdx] = q
	l.recomputeMin()
}

func (l *SlowLog) recomputeMin() {
	l.minNs = l.entries[0].Ns
	for _, e := range l.entries[1:] {
		if e.Ns < l.minNs {
			l.minNs = e.Ns
		}
	}
}

// Slowest returns the retained queries, slowest first.
func (l *SlowLog) Slowest() []SlowQuery {
	l.mu.Lock()
	out := make([]SlowQuery, len(l.entries))
	copy(out, l.entries)
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Ns > out[j].Ns })
	return out
}
