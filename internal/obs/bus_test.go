package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestBusFanOutInOrder(t *testing.T) {
	b := NewBus[int](nil)
	a := b.Subscribe(16)
	c := b.Subscribe(16)
	for i := 0; i < 10; i++ {
		b.Publish(i)
	}
	for _, s := range []*Sub[int]{a, c} {
		got := s.Drain(nil)
		if len(got) != 10 {
			t.Fatalf("drained %d events, want 10", len(got))
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("event %d = %d, want %d (order broken)", i, v, i)
			}
		}
		if s.Drops() != 0 {
			t.Fatalf("drops = %d, want 0", s.Drops())
		}
	}
	if st := b.Stats(); st.Published != 10 || st.Dropped != 0 || st.Subscribers != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBusDropOldest(t *testing.T) {
	r := NewRegistry()
	m := NewBusMetricsIn(r, "test")
	b := NewBus[int](m)
	s := b.Subscribe(4)
	for i := 0; i < 10; i++ {
		b.Publish(i)
	}
	got := s.Drain(nil)
	want := []int{6, 7, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("drained %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drained %v, want %v (oldest must go first)", got, want)
		}
	}
	if s.Drops() != 6 {
		t.Fatalf("sub drops = %d, want 6", s.Drops())
	}
	if st := b.Stats(); st.Dropped != 6 || st.MaxLag != 4 {
		t.Fatalf("stats = %+v, want dropped=6 maxLag=4", st)
	}
	if m.Dropped.Value() != 6 || m.Events.Value() != 10 {
		t.Fatalf("metrics dropped=%d events=%d", m.Dropped.Value(), m.Events.Value())
	}
}

func TestBusSubscriberLifecycle(t *testing.T) {
	r := NewRegistry()
	m := NewBusMetricsIn(r, "test")
	b := NewBus[int](m)
	s1 := b.Subscribe(2)
	s2 := b.Subscribe(2)
	if g := m.Subscribers.Value(); g != 2 {
		t.Fatalf("subscribers gauge = %d, want 2", g)
	}
	s1.Close()
	s1.Close() // idempotent
	if g := m.Subscribers.Value(); g != 1 {
		t.Fatalf("subscribers gauge after close = %d, want 1", g)
	}
	b.Publish(1)
	if _, ok := s1.TryNext(); ok {
		t.Fatal("closed subscription still receiving")
	}
	if v, ok := s2.TryNext(); !ok || v != 1 {
		t.Fatalf("live subscription got (%d,%v), want (1,true)", v, ok)
	}
	b.Close()
	select {
	case <-s2.Done():
	default:
		t.Fatal("bus close did not close subscription")
	}
	if g := m.Subscribers.Value(); g != 0 {
		t.Fatalf("subscribers gauge after bus close = %d, want 0", g)
	}
	if b.Subscribe(2) != nil {
		t.Fatal("Subscribe after Close must return nil")
	}
	if _, ok := s2.Next(context.Background()); ok {
		t.Fatal("Next on closed empty subscription must report !ok")
	}
}

func TestBusNextContextCancel(t *testing.T) {
	b := NewBus[int](nil)
	s := b.Subscribe(1)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan bool, 1)
	go func() {
		_, ok := s.Next(ctx)
		done <- ok
	}()
	cancel()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Next returned ok after context cancel")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next did not unblock on context cancel")
	}
}

// TestBusConcurrent races several publishers against consuming and
// late-joining/leaving subscribers. Accounting must balance per subscriber
// (delivered + dropped = offered) and per-publisher order must hold.
func TestBusConcurrent(t *testing.T) {
	type ev struct{ pub, seq int }
	b := NewBus[ev](nil)
	const pubs, perPub = 4, 2000

	consume := func(s *Sub[ev]) (delivered int64, lastSeq [pubs]int, err error) {
		for i := range lastSeq {
			lastSeq[i] = -1
		}
		buf := make([]ev, 0, 64)
		for {
			buf = s.Drain(buf[:0])
			if len(buf) == 0 {
				select {
				case <-s.C():
					continue
				case <-s.done:
					buf = s.Drain(buf[:0])
					if len(buf) == 0 {
						return delivered, lastSeq, nil
					}
				}
			}
			for _, e := range buf {
				if e.seq <= lastSeq[e.pub] {
					return delivered, lastSeq, fmt.Errorf(
						"publisher %d order broken: seq %d after %d", e.pub, e.seq, lastSeq[e.pub])
				}
				lastSeq[e.pub] = e.seq
				delivered++
			}
		}
	}

	subs := []*Sub[ev]{b.Subscribe(64), b.Subscribe(7)} // one roomy, one tight
	var wg sync.WaitGroup
	results := make([]int64, len(subs))
	errs := make([]error, len(subs))
	for i, s := range subs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], _, errs[i] = consume(s)
		}()
	}
	var pubWG sync.WaitGroup
	for p := 0; p < pubs; p++ {
		pubWG.Add(1)
		go func() {
			defer pubWG.Done()
			for i := 0; i < perPub; i++ {
				b.Publish(ev{pub: p, seq: i})
			}
		}()
	}
	// A subscriber that joins mid-flight and leaves again must not disturb
	// the others (and must not leak into the gauge accounting).
	churn := b.Subscribe(8)
	churn.Close()
	pubWG.Wait()
	for _, s := range subs {
		s.Close()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("subscriber %d: %v", i, err)
		}
		if got := results[i] + subs[i].Drops(); got != subs[i].Received() {
			t.Fatalf("subscriber %d: delivered %d + drops %d != offered %d",
				i, results[i], subs[i].Drops(), subs[i].Received())
		}
	}
	if st := b.Stats(); st.Published != pubs*perPub {
		t.Fatalf("published = %d, want %d", st.Published, pubs*perPub)
	}
}
