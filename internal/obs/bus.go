package obs

import (
	"context"
	"sync"
	"sync/atomic"
)

// Bus is a bounded, non-blocking fan-out event bus: publishers hand an event
// to every current subscriber and return immediately, whatever the
// subscribers are doing. Each subscriber owns a fixed-capacity ring buffer;
// when a subscriber falls behind, Publish overwrites that subscriber's
// oldest undelivered event (drop-oldest backpressure) rather than blocking
// the publisher or growing memory — the publisher is the ingest hot path,
// and a slow SSE client must never be able to push back on it. Drops lose
// delivery, never integrity: everything a subscriber does receive is a
// complete event in publish order.
//
// The bus instruments itself through an optional BusMetrics (events
// published, drops, live subscribers, max observed lag) so the
// observability pipeline's own health is visible in /metrics like any other
// subsystem's.
type Bus[T any] struct {
	mu     sync.RWMutex
	subs   map[*Sub[T]]struct{}
	closed bool

	published atomic.Int64
	dropped   atomic.Int64
	maxLag    atomic.Int64

	m *BusMetrics
}

// NewBus returns a bus reporting into metrics (nil disables instrumentation;
// share one BusMetrics between buses of the same role — the counters then
// aggregate across instances, which is what a process-wide metric wants).
func NewBus[T any](metrics *BusMetrics) *Bus[T] {
	return &Bus[T]{subs: map[*Sub[T]]struct{}{}, m: metrics}
}

// Sub is one subscription: a fixed-capacity ring of undelivered events plus
// a wake signal. Consume with Drain (batch) or Next (blocking); select on C
// to integrate with heartbeat tickers and request contexts.
type Sub[T any] struct {
	bus *Bus[T]

	mu     sync.Mutex
	buf    []T
	head   int // index of the oldest undelivered event
	n      int // undelivered events in the ring
	closed bool

	drops    atomic.Int64
	received atomic.Int64

	wake chan struct{} // cap 1: "the ring may be non-empty"
	done chan struct{} // closed by Close
}

// Subscribe registers a subscriber with a ring of the given capacity
// (minimum 1). It returns nil when the bus is closed.
func (b *Bus[T]) Subscribe(buffer int) *Sub[T] {
	if buffer < 1 {
		buffer = 1
	}
	s := &Sub[T]{
		bus:  b,
		buf:  make([]T, buffer),
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.subs[s] = struct{}{}
	if b.m != nil {
		b.m.Subscribers.Add(1)
	}
	return s
}

// Publish offers ev to every current subscriber and returns immediately.
// Safe for concurrent use; events from one goroutine reach each subscriber
// in publish order.
func (b *Bus[T]) Publish(ev T) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return
	}
	b.published.Add(1)
	if b.m != nil {
		b.m.Events.Inc()
	}
	for s := range b.subs {
		s.push(ev, b)
	}
}

// push appends ev to the subscriber's ring, evicting the oldest entry when
// full, and signals the consumer.
func (s *Sub[T]) push(ev T, b *Bus[T]) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if s.n == len(s.buf) {
		// Ring full: overwrite the oldest undelivered event.
		s.head = (s.head + 1) % len(s.buf)
		s.n--
		s.drops.Add(1)
		b.dropped.Add(1)
		if b.m != nil {
			b.m.Dropped.Inc()
		}
	}
	s.buf[(s.head+s.n)%len(s.buf)] = ev
	s.n++
	lag := int64(s.n)
	s.mu.Unlock()
	s.received.Add(1)
	// High-watermark lag: only ever raise it. The CAS loop keeps concurrent
	// publishers from regressing a higher observation.
	for {
		cur := b.maxLag.Load()
		if lag <= cur {
			break
		}
		if b.maxLag.CompareAndSwap(cur, lag) {
			if b.m != nil {
				b.m.MaxLag.Set(lag)
			}
			break
		}
	}
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// Drain appends every currently buffered event to buf (reusing its capacity)
// and returns it. An empty result means the ring was empty at the call.
func (s *Sub[T]) Drain(buf []T) []T {
	s.mu.Lock()
	defer s.mu.Unlock()
	var zero T
	for s.n > 0 {
		buf = append(buf, s.buf[s.head])
		s.buf[s.head] = zero // release references held by the slot
		s.head = (s.head + 1) % len(s.buf)
		s.n--
	}
	return buf
}

// TryNext pops the oldest buffered event without blocking.
func (s *Sub[T]) TryNext() (T, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var zero T
	if s.n == 0 {
		return zero, false
	}
	ev := s.buf[s.head]
	s.buf[s.head] = zero
	s.head = (s.head + 1) % len(s.buf)
	s.n--
	return ev, true
}

// Next blocks until an event is available, the subscription closes, or ctx
// is done. ok is false on close/cancellation.
func (s *Sub[T]) Next(ctx context.Context) (T, bool) {
	for {
		if ev, ok := s.TryNext(); ok {
			return ev, true
		}
		var zero T
		select {
		case <-s.wake:
		case <-s.done:
			// Drain what was buffered before the close raced us.
			if ev, ok := s.TryNext(); ok {
				return ev, true
			}
			return zero, false
		case <-ctx.Done():
			return zero, false
		}
	}
}

// C signals that the ring may hold events: receive, then Drain. The channel
// has capacity 1 and is never closed; select on Done for termination.
func (s *Sub[T]) C() <-chan struct{} { return s.wake }

// Done is closed when the subscription is closed (by either side).
func (s *Sub[T]) Done() <-chan struct{} { return s.done }

// Lag returns the number of buffered, undelivered events.
func (s *Sub[T]) Lag() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Drops returns how many events this subscription lost to backpressure.
func (s *Sub[T]) Drops() int64 { return s.drops.Load() }

// Received returns how many events were offered to this subscription
// (delivered or dropped) since Subscribe.
func (s *Sub[T]) Received() int64 { return s.received.Load() }

// Close removes the subscription from the bus and wakes any blocked Next.
// Safe to call more than once, from either side.
func (s *Sub[T]) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.done)
	b := s.bus
	b.mu.Lock()
	if _, ok := b.subs[s]; ok {
		delete(b.subs, s)
		if b.m != nil {
			b.m.Subscribers.Add(-1)
		}
	}
	b.mu.Unlock()
}

// Close shuts the bus down: every subscription is closed and later Publish
// and Subscribe calls become no-ops.
func (b *Bus[T]) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	subs := make([]*Sub[T], 0, len(b.subs))
	for s := range b.subs {
		subs = append(subs, s)
	}
	b.mu.Unlock()
	for _, s := range subs {
		s.Close()
	}
}

// BusStats is a point-in-time view of a bus's self-instrumentation.
type BusStats struct {
	Subscribers int   `json:"subscribers"`
	Published   int64 `json:"published"`
	Dropped     int64 `json:"dropped"`
	MaxLag      int64 `json:"max_lag"`
}

// Stats returns the bus's current counters (kept on the bus itself as well
// as in BusMetrics, so tests and JSON endpoints need no registry scrape).
func (b *Bus[T]) Stats() BusStats {
	b.mu.RLock()
	n := len(b.subs)
	b.mu.RUnlock()
	return BusStats{
		Subscribers: n,
		Published:   b.published.Load(),
		Dropped:     b.dropped.Load(),
		MaxLag:      b.maxLag.Load(),
	}
}

// BusMetrics is the registered metric set a Bus reports into. One BusMetrics
// per bus role (registered once at init time); buses sharing a role share
// the instance.
type BusMetrics struct {
	Events      *Counter
	Dropped     *Counter
	Subscribers *Gauge
	MaxLag      *Gauge
}

// NewBusMetrics registers a bus metric set labelled bus=name in the default
// registry.
func NewBusMetrics(name string) *BusMetrics {
	return NewBusMetricsIn(defaultRegistry, name)
}

// NewBusMetricsIn is NewBusMetrics against an explicit registry.
func NewBusMetricsIn(r *Registry, name string) *BusMetrics {
	return &BusMetrics{
		Events: NewCounterIn(r, "semitri_bus_events_total",
			"Events published to the fan-out event bus.", "bus", name),
		Dropped: NewCounterIn(r, "semitri_bus_dropped_total",
			"Events dropped by per-subscriber drop-oldest backpressure.", "bus", name),
		Subscribers: NewGaugeIn(r, "semitri_bus_subscribers",
			"Currently registered bus subscribers.", "bus", name),
		MaxLag: NewGaugeIn(r, "semitri_bus_max_lag",
			"High watermark of undelivered events buffered by one subscriber.", "bus", name),
	}
}
