package obs

import (
	"runtime"
	"sync"
	"time"
)

// memSampler caches runtime.ReadMemStats, which stops the world: scrapes at
// most once a second no matter how many runtime gauges are read.
var memSampler struct {
	mu   sync.Mutex
	at   time.Time
	stat runtime.MemStats
}

func memStat(pick func(*runtime.MemStats) float64) func() float64 {
	return func() float64 {
		memSampler.mu.Lock()
		defer memSampler.mu.Unlock()
		if time.Since(memSampler.at) > time.Second {
			runtime.ReadMemStats(&memSampler.stat)
			memSampler.at = time.Now()
		}
		return pick(&memSampler.stat)
	}
}

// Go runtime gauges, mirroring the core of what client_golang exposes.
var (
	_ = NewGaugeFunc("go_goroutines", "Number of goroutines that currently exist.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	_ = NewGaugeFunc("go_memstats_heap_alloc_bytes", "Number of heap bytes allocated and still in use.",
		memStat(func(m *runtime.MemStats) float64 { return float64(m.HeapAlloc) }))
	_ = NewGaugeFunc("go_memstats_heap_objects", "Number of allocated objects.",
		memStat(func(m *runtime.MemStats) float64 { return float64(m.HeapObjects) }))
	_ = NewGaugeFunc("go_memstats_sys_bytes", "Number of bytes obtained from the OS.",
		memStat(func(m *runtime.MemStats) float64 { return float64(m.Sys) }))
	_ = NewGaugeFunc("go_gc_cycles_total", "Number of completed GC cycles.",
		memStat(func(m *runtime.MemStats) float64 { return float64(m.NumGC) }))
	_ = NewGaugeFunc("go_gc_pause_total_seconds", "Cumulative GC stop-the-world pause time.",
		memStat(func(m *runtime.MemStats) float64 { return float64(m.PauseTotalNs) / 1e9 }))
)
