package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := NewCounterIn(r, "test_counter_total", "help")
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := NewHistogramIn(r, "test_hist_ns", "help", []float64{10, 100, 1000})
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w * 10))
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := NewHistogramIn(r, "test_bounds", "help", []float64{10, 100})
	// Boundary values land in the bucket whose bound they equal (le is
	// inclusive), one past lands in the next bucket, and anything above the
	// last bound lands in +Inf.
	for _, v := range []float64{5, 10, 10.5, 100, 101} {
		h.Observe(v)
	}
	want := []int64{2, 2, 1} // (-inf,10], (10,100], (100,+inf]
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Sum() != 5+10+10+100+101 {
		t.Errorf("sum = %d, want %d", h.Sum(), 5+10+10+100+101)
	}
}

func TestGaugeRecordsWhenDisabled(t *testing.T) {
	r := NewRegistry()
	g := NewGaugeIn(r, "test_gauge", "help")
	c := NewCounterIn(r, "test_gated_total", "help")
	SetEnabled(false)
	defer SetEnabled(true)
	g.Set(7)
	c.Inc()
	if g.Value() != 7 {
		t.Errorf("gauge should record while disabled, got %d", g.Value())
	}
	if c.Value() != 0 {
		t.Errorf("counter should be gated while disabled, got %d", c.Value())
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	NewCounterIn(r, "dup_total", "help", "a", "1")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate (name, labels)")
		}
	}()
	NewCounterIn(r, "dup_total", "help", "a", "1")
}

const goldenExposition = `# HELP requests_total Requests served.
# TYPE requests_total counter
requests_total{path="a"} 3
requests_total{path="b"} 1
# HELP temperature Current temperature.
# TYPE temperature gauge
temperature -2
# HELP latency_ns Request latency.
# TYPE latency_ns histogram
latency_ns_bucket{le="10"} 1
latency_ns_bucket{le="100"} 3
latency_ns_bucket{le="+Inf"} 4
latency_ns_sum 365
latency_ns_count 4
`

func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	a := NewCounterIn(r, "requests_total", "Requests served.", "path", "a")
	b := NewCounterIn(r, "requests_total", "Requests served.", "path", "b")
	g := NewGaugeIn(r, "temperature", "Current temperature.")
	h := NewHistogramIn(r, "latency_ns", "Request latency.", []float64{10, 100})
	a.Add(3)
	b.Inc()
	g.Set(-2)
	for _, v := range []float64{5, 30, 80, 250} {
		h.Observe(v)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != goldenExposition {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), goldenExposition)
	}
}

func TestLabelOrdering(t *testing.T) {
	if got := labelString([]string{"z", "1", "a", "2"}); got != `a="2",z="1"` {
		t.Errorf("labelString = %s", got)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	c := NewCounterIn(r, "snap_total", "help", "k", "v")
	c.Add(5)
	h := NewHistogramIn(r, "snap_ns", "help", []float64{10})
	h.Observe(4)
	snap := r.Snapshot()
	if snap[`snap_total{k="v"}`] != int64(5) {
		t.Errorf("snapshot counter = %v", snap[`snap_total{k="v"}`])
	}
	hv, ok := snap["snap_ns"].(map[string]any)
	if !ok || hv["count"] != int64(1) {
		t.Errorf("snapshot histogram = %v", snap["snap_ns"])
	}
}
