package obs

import (
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSlowLogKeepsSlowest(t *testing.T) {
	l := NewSlowLog(3)
	for _, ns := range []int64{5, 1, 9, 3, 7, 2} {
		l.Record(SlowQuery{Ns: ns})
	}
	got := l.Slowest()
	want := []int64{9, 7, 5}
	if len(got) != len(want) {
		t.Fatalf("retained %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Ns != want[i] {
			t.Fatalf("entry %d Ns = %d, want %d", i, got[i].Ns, want[i])
		}
	}
}

// TestSlowLogConcurrent hammers Record from many goroutines while snapshots
// run concurrently, relying on -race for synchronization bugs and on the
// Query field (which encodes Ns) to expose torn entries. At the end the log
// must retain exactly the capacity slowest recorded durations, slowest
// first.
func TestSlowLogConcurrent(t *testing.T) {
	const capacity = 16
	const writers = 8
	const perWriter = 2000
	l := NewSlowLog(capacity)

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Globally unique Ns values so the final expectation is exact.
				ns := next.Add(1)
				l.Record(SlowQuery{
					At:     time.Unix(0, ns),
					Source: "test",
					Query:  strconv.FormatInt(ns, 10),
					Ns:     ns,
				})
			}
		}()
	}

	stop := make(chan struct{})
	var snapErr atomic.Value
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, e := range l.Slowest() {
				// A torn entry would pair one record's Ns with another's Query.
				if e.Query != strconv.FormatInt(e.Ns, 10) {
					snapErr.Store("torn entry: Ns=" + strconv.FormatInt(e.Ns, 10) + " Query=" + e.Query)
					return
				}
			}
		}
	}()

	// Wait for the writers (tracked by the shared counter), then release the
	// snapshotter and join everything.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	total := int64(writers * perWriter)
	for next.Load() < total {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done
	if msg := snapErr.Load(); msg != nil {
		t.Fatal(msg)
	}

	got := l.Slowest()
	if len(got) != capacity {
		t.Fatalf("retained %d entries, want %d", len(got), capacity)
	}
	// Eviction order: exactly the top `capacity` values survive, sorted desc.
	for i, e := range got {
		want := total - int64(i)
		if e.Ns != want {
			t.Fatalf("entry %d Ns = %d, want %d (eviction kept a non-slowest entry)", i, e.Ns, want)
		}
	}
}
