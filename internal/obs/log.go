package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// InitLogger configures the process-wide slog default from the shared
// -log-level / -log-format flag values and returns it. level is one of
// debug|info|warn|error (case-insensitive); format is text|json.
func InitLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lvl = slog.LevelInfo
	case "debug":
		lvl = slog.LevelDebug
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("unknown log format %q (want text|json)", format)
	}
	l := slog.New(h)
	slog.SetDefault(l)
	return l, nil
}

// Component returns the default logger tagged with a component attribute —
// the repo-wide convention for subsystem loggers.
func Component(name string) *slog.Logger {
	return slog.Default().With("component", name)
}
