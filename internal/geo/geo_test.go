package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestPointVectorOps(t *testing.T) {
	p := Pt(3, 4)
	q := Pt(1, 2)
	if got := p.Add(q); got != Pt(4, 6) {
		t.Fatalf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(2, 2) {
		t.Fatalf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(6, 8) {
		t.Fatalf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 11 {
		t.Fatalf("Dot = %v", got)
	}
	if got := p.Cross(q); got != 2 {
		t.Fatalf("Cross = %v", got)
	}
	if got := p.Norm(); got != 5 {
		t.Fatalf("Norm = %v", got)
	}
}

func TestPointDistance(t *testing.T) {
	if d := Pt(0, 0).DistanceTo(Pt(3, 4)); d != 5 {
		t.Fatalf("distance = %v, want 5", d)
	}
	if !Pt(1, 1).Equal(Pt(1+1e-12, 1), 1e-9) {
		t.Fatal("Equal with eps should hold")
	}
	if Pt(1, 1).Equal(Pt(2, 1), 1e-9) {
		t.Fatal("Equal should fail for distinct points")
	}
}

func TestLerp(t *testing.T) {
	p := Pt(0, 0).Lerp(Pt(10, 20), 0.5)
	if p != Pt(5, 10) {
		t.Fatalf("Lerp midpoint = %v", p)
	}
	if got := Pt(1, 1).Lerp(Pt(3, 3), 0); got != Pt(1, 1) {
		t.Fatalf("Lerp t=0 = %v", got)
	}
	if got := Pt(1, 1).Lerp(Pt(3, 3), 1); got != Pt(3, 3) {
		t.Fatalf("Lerp t=1 = %v", got)
	}
}

func TestHaversineKnownDistance(t *testing.T) {
	// Lausanne (6.6323, 46.5197) to Geneva (6.1432, 46.2044) is about 51 km.
	d := Haversine(Pt(6.6323, 46.5197), Pt(6.1432, 46.2044))
	if d < 49000 || d > 54000 {
		t.Fatalf("Lausanne-Geneva haversine = %v, want ~51km", d)
	}
	if d := Haversine(Pt(8, 47), Pt(8, 47)); d != 0 {
		t.Fatalf("identical points haversine = %v", d)
	}
}

func TestHaversineSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a := Pt(math.Mod(ax, 180), math.Mod(ay, 85))
		b := Pt(math.Mod(bx, 180), math.Mod(by, 85))
		return almostEqual(Haversine(a, b), Haversine(b, a), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProjectionRoundTrip(t *testing.T) {
	pr := NewProjection(6.63, 46.52)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		lon := 6.63 + (rng.Float64()-0.5)*0.1
		lat := 46.52 + (rng.Float64()-0.5)*0.1
		plane := pr.ToPlane(Pt(lon, lat))
		back := pr.ToGeographic(plane)
		if !almostEqual(back.X, lon, 1e-9) || !almostEqual(back.Y, lat, 1e-9) {
			t.Fatalf("round trip (%v,%v) -> %v", lon, lat, back)
		}
	}
}

func TestProjectionDistancePreservation(t *testing.T) {
	pr := NewProjection(9.19, 45.46) // Milan
	a := Pt(9.19, 45.46)
	b := Pt(9.20, 45.47)
	planar := pr.ToPlane(a).DistanceTo(pr.ToPlane(b))
	sphere := Haversine(a, b)
	if math.Abs(planar-sphere) > sphere*0.01 {
		t.Fatalf("projection distance %v differs from haversine %v by more than 1%%", planar, sphere)
	}
}

func TestSegmentClosestPoint(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 0))
	cases := []struct {
		q      Point
		want   Point
		wantT  float64
		wantDP float64
	}{
		{Pt(5, 3), Pt(5, 0), 0.5, 3},
		{Pt(-4, 3), Pt(0, 0), 0, 5},
		{Pt(14, 3), Pt(10, 0), 1, 5},
		{Pt(0, 0), Pt(0, 0), 0, 0},
	}
	for _, c := range cases {
		cp, tt := s.ClosestPoint(c.q)
		if !cp.Equal(c.want, 1e-9) || !almostEqual(tt, c.wantT, 1e-9) {
			t.Errorf("ClosestPoint(%v) = %v,%v want %v,%v", c.q, cp, tt, c.want, c.wantT)
		}
		if d := s.DistanceToPoint(c.q); !almostEqual(d, c.wantDP, 1e-9) {
			t.Errorf("DistanceToPoint(%v) = %v want %v", c.q, d, c.wantDP)
		}
	}
}

func TestSegmentDegenerateAndHelpers(t *testing.T) {
	s := Seg(Pt(2, 2), Pt(2, 2))
	if d := s.DistanceToPoint(Pt(5, 6)); !almostEqual(d, 5, 1e-9) {
		t.Fatalf("degenerate segment distance = %v", d)
	}
	s2 := Seg(Pt(0, 0), Pt(4, 3))
	if !almostEqual(s2.Length(), 5, 1e-9) {
		t.Fatalf("Length = %v", s2.Length())
	}
	if !s2.Midpoint().Equal(Pt(2, 1.5), 1e-9) {
		t.Fatalf("Midpoint = %v", s2.Midpoint())
	}
	if h := Seg(Pt(0, 0), Pt(0, 5)).Heading(); !almostEqual(h, math.Pi/2, 1e-9) {
		t.Fatalf("Heading = %v", h)
	}
	b := s2.Bounds()
	if b.Min != Pt(0, 0) || b.Max != Pt(4, 3) {
		t.Fatalf("Bounds = %+v", b)
	}
}

// Property: Eq. 1 point-segment distance never exceeds the distance to
// either endpoint and is never negative.
func TestSegmentDistanceProperty(t *testing.T) {
	f := func(ax, ay, bx, by, qx, qy float64) bool {
		clamp := func(v float64) float64 { return math.Mod(v, 1000) }
		s := Seg(Pt(clamp(ax), clamp(ay)), Pt(clamp(bx), clamp(by)))
		q := Pt(clamp(qx), clamp(qy))
		d := s.DistanceToPoint(q)
		return d >= 0 && d <= q.DistanceTo(s.A)+1e-9 && d <= q.DistanceTo(s.B)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(Pt(4, 5), Pt(0, 1))
	if r.Min != Pt(0, 1) || r.Max != Pt(4, 5) {
		t.Fatalf("NewRect normalisation failed: %+v", r)
	}
	if r.Width() != 4 || r.Height() != 4 || r.Area() != 16 || r.Margin() != 8 {
		t.Fatalf("dimensions wrong: %+v", r)
	}
	if r.Center() != Pt(2, 3) {
		t.Fatalf("Center = %v", r.Center())
	}
	if !r.ContainsPoint(Pt(2, 3)) || r.ContainsPoint(Pt(5, 3)) {
		t.Fatal("ContainsPoint wrong")
	}
	if !r.ContainsPoint(Pt(0, 1)) {
		t.Fatal("boundary point should be contained")
	}
}

func TestRectEmpty(t *testing.T) {
	e := EmptyRect()
	if !e.IsEmpty() {
		t.Fatal("EmptyRect should be empty")
	}
	if e.Area() != 0 || e.Width() != 0 || e.Height() != 0 {
		t.Fatal("empty rect should have zero dimensions")
	}
	r := NewRect(Pt(0, 0), Pt(1, 1))
	if got := e.Union(r); got != r {
		t.Fatalf("empty union identity failed: %+v", got)
	}
	if got := r.Union(e); got != r {
		t.Fatalf("union with empty failed: %+v", got)
	}
	if e.Intersects(r) || r.Intersects(e) {
		t.Fatal("empty rect should intersect nothing")
	}
	if e.ContainsRect(r) || r.ContainsRect(e) {
		t.Fatal("containment with empty rect should be false")
	}
}

func TestRectIntersectionUnion(t *testing.T) {
	a := NewRect(Pt(0, 0), Pt(4, 4))
	b := NewRect(Pt(2, 2), Pt(6, 6))
	in := a.Intersection(b)
	if in.Min != Pt(2, 2) || in.Max != Pt(4, 4) {
		t.Fatalf("Intersection = %+v", in)
	}
	if a.OverlapArea(b) != 4 {
		t.Fatalf("OverlapArea = %v", a.OverlapArea(b))
	}
	u := a.Union(b)
	if u.Min != Pt(0, 0) || u.Max != Pt(6, 6) {
		t.Fatalf("Union = %+v", u)
	}
	c := NewRect(Pt(10, 10), Pt(11, 11))
	if !a.Intersection(c).IsEmpty() {
		t.Fatal("disjoint intersection should be empty")
	}
	if a.OverlapArea(c) != 0 {
		t.Fatal("disjoint overlap area should be 0")
	}
	if a.EnlargementNeeded(b) != 36-16 {
		t.Fatalf("EnlargementNeeded = %v", a.EnlargementNeeded(b))
	}
}

func TestRectContainsAndDistance(t *testing.T) {
	a := NewRect(Pt(0, 0), Pt(10, 10))
	b := NewRect(Pt(2, 2), Pt(3, 3))
	if !a.ContainsRect(b) || b.ContainsRect(a) {
		t.Fatal("ContainsRect wrong")
	}
	if d := a.DistanceToPoint(Pt(5, 5)); d != 0 {
		t.Fatalf("inside distance = %v", d)
	}
	if d := a.DistanceToPoint(Pt(13, 14)); !almostEqual(d, 5, 1e-9) {
		t.Fatalf("outside distance = %v", d)
	}
	exp := a.Expand(2)
	if exp.Min != Pt(-2, -2) || exp.Max != Pt(12, 12) {
		t.Fatalf("Expand = %+v", exp)
	}
	ra := RectAround(Pt(1, 1), 3)
	if ra.Min != Pt(-2, -2) || ra.Max != Pt(4, 4) {
		t.Fatalf("RectAround = %+v", ra)
	}
}

// Property: union is commutative and contains both operands.
func TestRectUnionProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		m := func(v float64) float64 { return math.Mod(v, 1e6) }
		r1 := NewRect(Pt(m(ax), m(ay)), Pt(m(bx), m(by)))
		r2 := NewRect(Pt(m(cx), m(cy)), Pt(m(dx), m(dy)))
		u := r1.Union(r2)
		return u == r2.Union(r1) && u.ContainsRect(r1) && u.ContainsRect(r2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundsOfAndCentroid(t *testing.T) {
	pts := []Point{Pt(1, 1), Pt(3, 5), Pt(-2, 0)}
	b := BoundsOf(pts)
	if b.Min != Pt(-2, 0) || b.Max != Pt(3, 5) {
		t.Fatalf("BoundsOf = %+v", b)
	}
	c := Centroid(pts)
	if !c.Equal(Pt(2.0/3.0, 2), 1e-9) {
		t.Fatalf("Centroid = %v", c)
	}
	if !BoundsOf(nil).IsEmpty() {
		t.Fatal("BoundsOf(nil) should be empty")
	}
	if Centroid(nil) != Pt(0, 0) {
		t.Fatal("Centroid(nil) should be origin")
	}
}

func TestPolylineLengthAndInterpolate(t *testing.T) {
	pl := Polyline{Pt(0, 0), Pt(3, 0), Pt(3, 4)}
	if pl.Length() != 7 {
		t.Fatalf("Length = %v", pl.Length())
	}
	if got := pl.Interpolate(0); got != Pt(0, 0) {
		t.Fatalf("Interpolate(0) = %v", got)
	}
	if got := pl.Interpolate(1); got != Pt(3, 4) {
		t.Fatalf("Interpolate(1) = %v", got)
	}
	mid := pl.Interpolate(0.5)
	if !mid.Equal(Pt(3, 0.5), 1e-9) {
		t.Fatalf("Interpolate(0.5) = %v", mid)
	}
	if len(pl.Segments()) != 2 {
		t.Fatalf("Segments = %d", len(pl.Segments()))
	}
	if (Polyline{Pt(1, 1)}).Length() != 0 {
		t.Fatal("single point length should be 0")
	}
}

func TestPolylineDistanceAndResample(t *testing.T) {
	pl := Polyline{Pt(0, 0), Pt(10, 0)}
	if d := pl.DistanceToPoint(Pt(5, 2)); !almostEqual(d, 2, 1e-9) {
		t.Fatalf("DistanceToPoint = %v", d)
	}
	if d := (Polyline{}).DistanceToPoint(Pt(0, 0)); !math.IsInf(d, 1) {
		t.Fatalf("empty polyline distance = %v", d)
	}
	if d := (Polyline{Pt(1, 1)}).DistanceToPoint(Pt(4, 5)); !almostEqual(d, 5, 1e-9) {
		t.Fatalf("one point polyline distance = %v", d)
	}
	rs := pl.Resample(5)
	if len(rs) != 5 {
		t.Fatalf("Resample length = %d", len(rs))
	}
	if !rs[2].Equal(Pt(5, 0), 1e-9) {
		t.Fatalf("Resample midpoint = %v", rs[2])
	}
	if pl.Resample(0) != nil {
		t.Fatal("Resample(0) should be nil")
	}
	if got := pl.Resample(1); len(got) != 1 || got[0] != Pt(0, 0) {
		t.Fatalf("Resample(1) = %v", got)
	}
}

func TestPolygonAreaAndContains(t *testing.T) {
	square := Polygon{Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4)}
	if square.Area() != 16 {
		t.Fatalf("Area = %v", square.Area())
	}
	if !square.ContainsPoint(Pt(2, 2)) {
		t.Fatal("interior point should be inside")
	}
	if square.ContainsPoint(Pt(5, 2)) {
		t.Fatal("exterior point should be outside")
	}
	if !square.ContainsPoint(Pt(0, 2)) {
		t.Fatal("boundary point should count as inside")
	}
	tri := Polygon{Pt(0, 0), Pt(6, 0), Pt(0, 6)}
	if tri.Area() != 18 {
		t.Fatalf("triangle area = %v", tri.Area())
	}
	if (Polygon{Pt(0, 0), Pt(1, 1)}).Area() != 0 {
		t.Fatal("degenerate polygon area should be 0")
	}
}

func TestPolygonIntersectsRect(t *testing.T) {
	square := Polygon{Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4)}
	if !square.IntersectsRect(NewRect(Pt(3, 3), Pt(6, 6))) {
		t.Fatal("overlapping rect should intersect")
	}
	if square.IntersectsRect(NewRect(Pt(10, 10), Pt(12, 12))) {
		t.Fatal("far rect should not intersect")
	}
	// Rect fully inside polygon.
	if !square.IntersectsRect(NewRect(Pt(1, 1), Pt(2, 2))) {
		t.Fatal("contained rect should intersect")
	}
	// Polygon fully inside rect.
	if !square.IntersectsRect(NewRect(Pt(-10, -10), Pt(10, 10))) {
		t.Fatal("containing rect should intersect")
	}
	// Edge crossing with no vertices inside.
	thin := Polygon{Pt(-1, 1), Pt(5, 1), Pt(5, 2), Pt(-1, 2)}
	if !thin.IntersectsRect(NewRect(Pt(1, -5), Pt(2, 5))) {
		t.Fatal("edge-crossing shapes should intersect")
	}
}

func TestSegmentsIntersect(t *testing.T) {
	if !SegmentsIntersect(Seg(Pt(0, 0), Pt(4, 4)), Seg(Pt(0, 4), Pt(4, 0))) {
		t.Fatal("crossing segments")
	}
	if SegmentsIntersect(Seg(Pt(0, 0), Pt(1, 0)), Seg(Pt(0, 1), Pt(1, 1))) {
		t.Fatal("parallel segments should not intersect")
	}
	if !SegmentsIntersect(Seg(Pt(0, 0), Pt(2, 0)), Seg(Pt(1, 0), Pt(1, 1))) {
		t.Fatal("touching segments should intersect")
	}
	if !SegmentsIntersect(Seg(Pt(0, 0), Pt(4, 0)), Seg(Pt(1, 0), Pt(3, 0))) {
		t.Fatal("collinear overlapping segments should intersect")
	}
}

func TestRegularPolygon(t *testing.T) {
	hex := RegularPolygon(Pt(10, 10), 5, 6)
	if len(hex) != 6 {
		t.Fatalf("len = %d", len(hex))
	}
	for _, v := range hex {
		if !almostEqual(v.DistanceTo(Pt(10, 10)), 5, 1e-9) {
			t.Fatalf("vertex %v not at radius 5", v)
		}
	}
	if !hex.ContainsPoint(Pt(10, 10)) {
		t.Fatal("centre should be inside")
	}
	if got := RegularPolygon(Pt(0, 0), 1, 2); len(got) != 3 {
		t.Fatalf("degenerate n should clamp to 3, got %d", len(got))
	}
	// Area of a regular hexagon with circumradius r is 3*sqrt(3)/2*r^2.
	want := 3 * math.Sqrt(3) / 2 * 25
	if !almostEqual(hex.Area(), want, 1e-6) {
		t.Fatalf("hexagon area = %v want %v", hex.Area(), want)
	}
}

func TestPolylineBoundsAndSegmentProject(t *testing.T) {
	pl := Polyline{Pt(0, 0), Pt(2, 3), Pt(-1, 5)}
	b := pl.Bounds()
	if b.Min != Pt(-1, 0) || b.Max != Pt(2, 5) {
		t.Fatalf("Bounds = %+v", b)
	}
	s := Seg(Pt(0, 0), Pt(10, 0))
	if got := s.Project(Pt(3, 7)); !got.Equal(Pt(3, 0), 1e-9) {
		t.Fatalf("Project = %v", got)
	}
	if got := s.Project(Pt(-5, 2)); !got.Equal(Pt(0, 0), 1e-9) {
		t.Fatalf("Project clamp = %v", got)
	}
}
