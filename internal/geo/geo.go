// Package geo provides the spatial primitives used throughout SeMiTri:
// points, segments, polylines, rectangles and polygons, together with the
// distance metrics and topological predicates required by the annotation
// layers (spatial join, point–segment distance of Eq. 1 in the paper, and
// the WGS-84 haversine metric used when ingesting real lon/lat data).
//
// All synthetic workloads operate in a local planar frame expressed in
// metres, which keeps the geometry exact and fast; the package also offers
// an equirectangular local projection so real GPS (lon, lat) records can be
// mapped into the same planar frame.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusMeters is the mean Earth radius used by the haversine formula.
const EarthRadiusMeters = 6371000.0

// Point is a position in the planar working frame (metres) or, when used
// with the geographic helpers, a (lon, lat) pair in degrees where X is the
// longitude and Y the latitude.
type Point struct {
	X float64
	Y float64
}

// Pt is a shorthand constructor for Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.3f, %.3f)", p.X, p.Y) }

// Add returns the vector sum p+q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector difference p-q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by the factor s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product of the vectors p and q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the cross product of p and q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of the vector p.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// DistanceTo returns the planar Euclidean distance between p and q.
func (p Point) DistanceTo(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Equal reports whether p and q are the same point up to eps.
func (p Point) Equal(q Point, eps float64) bool {
	return math.Abs(p.X-q.X) <= eps && math.Abs(p.Y-q.Y) <= eps
}

// Lerp returns the linear interpolation between p and q at parameter t in [0,1].
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Haversine returns the great-circle distance in metres between two
// geographic points given as (lon, lat) in degrees.
func Haversine(a, b Point) float64 {
	lat1 := a.Y * math.Pi / 180
	lat2 := b.Y * math.Pi / 180
	dLat := (b.Y - a.Y) * math.Pi / 180
	dLon := (b.X - a.X) * math.Pi / 180
	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * EarthRadiusMeters * math.Asin(math.Min(1, math.Sqrt(s)))
}

// Projection converts geographic (lon, lat) coordinates into a local planar
// frame (metres) using an equirectangular approximation around an origin.
// It is accurate to well under a metre for city-scale extents, which is the
// scale at which SeMiTri's annotation layers operate.
type Projection struct {
	originLon float64
	originLat float64
	cosLat    float64
}

// NewProjection creates a local projection centred at the given geographic
// origin expressed in degrees.
func NewProjection(originLon, originLat float64) *Projection {
	return &Projection{
		originLon: originLon,
		originLat: originLat,
		cosLat:    math.Cos(originLat * math.Pi / 180),
	}
}

// ToPlane converts a geographic (lon, lat) point into local metres.
func (pr *Projection) ToPlane(lonLat Point) Point {
	dx := (lonLat.X - pr.originLon) * math.Pi / 180 * EarthRadiusMeters * pr.cosLat
	dy := (lonLat.Y - pr.originLat) * math.Pi / 180 * EarthRadiusMeters
	return Point{dx, dy}
}

// ToGeographic converts a local planar point back to (lon, lat) degrees.
func (pr *Projection) ToGeographic(p Point) Point {
	lon := pr.originLon + p.X/(EarthRadiusMeters*pr.cosLat)*180/math.Pi
	lat := pr.originLat + p.Y/EarthRadiusMeters*180/math.Pi
	return Point{lon, lat}
}

// Segment is a straight line segment between two crossings A and B.
// It is the geometric shape of a semantic line (road segment).
type Segment struct {
	A Point
	B Point
}

// Seg is a shorthand constructor for Segment.
func Seg(a, b Point) Segment { return Segment{A: a, B: b} }

// Length returns the Euclidean length of the segment.
func (s Segment) Length() float64 { return s.A.DistanceTo(s.B) }

// Midpoint returns the midpoint of the segment.
func (s Segment) Midpoint() Point { return s.A.Lerp(s.B, 0.5) }

// Bounds returns the axis-aligned bounding rectangle of the segment.
func (s Segment) Bounds() Rect {
	return Rect{
		Min: Point{math.Min(s.A.X, s.B.X), math.Min(s.A.Y, s.B.Y)},
		Max: Point{math.Max(s.A.X, s.B.X), math.Max(s.A.Y, s.B.Y)},
	}
}

// ClosestPoint returns the point on the segment closest to q and the
// parameter t in [0,1] locating it along A->B.
func (s Segment) ClosestPoint(q Point) (Point, float64) {
	ab := s.B.Sub(s.A)
	denom := ab.Dot(ab)
	if denom == 0 {
		return s.A, 0
	}
	t := q.Sub(s.A).Dot(ab) / denom
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return s.A.Lerp(s.B, t), t
}

// DistanceToPoint implements the point–segment distance of Eq. 1 in the
// paper: the perpendicular distance if the projection of q falls on the
// segment, otherwise the distance to the nearer endpoint.
func (s Segment) DistanceToPoint(q Point) float64 {
	cp, _ := s.ClosestPoint(q)
	return cp.DistanceTo(q)
}

// Project returns the position of q projected onto the segment, clamped to
// the segment, which is the "corrected position" (x', y') of Alg. 2.
func (s Segment) Project(q Point) Point {
	cp, _ := s.ClosestPoint(q)
	return cp
}

// Heading returns the direction of the segment in radians in (-pi, pi].
func (s Segment) Heading() float64 {
	d := s.B.Sub(s.A)
	return math.Atan2(d.Y, d.X)
}

// Rect is an axis-aligned rectangle used both as a bounding box and as the
// spatial extent of grid-based regions (land-use cells).
type Rect struct {
	Min Point
	Max Point
}

// NewRect builds a rectangle from any two opposite corners.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// EmptyRect returns a rectangle that acts as the identity for Union: any
// rectangle unioned with it yields that rectangle.
func EmptyRect() Rect {
	return Rect{
		Min: Point{math.Inf(1), math.Inf(1)},
		Max: Point{math.Inf(-1), math.Inf(-1)},
	}
}

// IsEmpty reports whether r is the empty rectangle (or degenerate negative).
func (r Rect) IsEmpty() bool { return r.Min.X > r.Max.X || r.Min.Y > r.Max.Y }

// Width returns the horizontal extent of the rectangle.
func (r Rect) Width() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.Max.X - r.Min.X
}

// Height returns the vertical extent of the rectangle.
func (r Rect) Height() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.Max.Y - r.Min.Y
}

// Area returns the area of the rectangle.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Margin returns the half-perimeter of the rectangle (R*-tree split metric).
func (r Rect) Margin() float64 { return r.Width() + r.Height() }

// Center returns the centre point of the rectangle.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// ContainsPoint reports whether the point lies inside or on the boundary.
func (r Rect) ContainsPoint(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// ContainsRect reports whether r fully contains s (spatial subsumption,
// the predicate most used for stop episodes in §4.1).
func (r Rect) ContainsRect(s Rect) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return false
	}
	return s.Min.X >= r.Min.X && s.Max.X <= r.Max.X && s.Min.Y >= r.Min.Y && s.Max.Y <= r.Max.Y
}

// Intersects reports whether the two rectangles overlap (touching counts).
func (r Rect) Intersects(s Rect) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return false
	}
	return r.Min.X <= s.Max.X && r.Max.X >= s.Min.X && r.Min.Y <= s.Max.Y && r.Max.Y >= s.Min.Y
}

// Intersection returns the overlapping rectangle of r and s; the result is
// empty when they do not intersect.
func (r Rect) Intersection(s Rect) Rect {
	out := Rect{
		Min: Point{math.Max(r.Min.X, s.Min.X), math.Max(r.Min.Y, s.Min.Y)},
		Max: Point{math.Min(r.Max.X, s.Max.X), math.Min(r.Max.Y, s.Max.Y)},
	}
	if out.IsEmpty() {
		return EmptyRect()
	}
	return out
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// Expand returns the rectangle grown by d on every side.
func (r Rect) Expand(d float64) Rect {
	return Rect{
		Min: Point{r.Min.X - d, r.Min.Y - d},
		Max: Point{r.Max.X + d, r.Max.Y + d},
	}
}

// EnlargementNeeded returns the increase in area required for r to cover s.
func (r Rect) EnlargementNeeded(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// OverlapArea returns the area of the intersection of r and s.
func (r Rect) OverlapArea(s Rect) float64 {
	in := r.Intersection(s)
	if in.IsEmpty() {
		return 0
	}
	return in.Area()
}

// DistanceToPoint returns the minimum distance from the rectangle to the
// point (zero when the point is inside).
func (r Rect) DistanceToPoint(p Point) float64 {
	dx := math.Max(0, math.Max(r.Min.X-p.X, p.X-r.Max.X))
	dy := math.Max(0, math.Max(r.Min.Y-p.Y, p.Y-r.Max.Y))
	return math.Hypot(dx, dy)
}

// RectAround returns the square rectangle of half-width d centred at p.
func RectAround(p Point, d float64) Rect {
	return Rect{Min: Point{p.X - d, p.Y - d}, Max: Point{p.X + d, p.Y + d}}
}

// BoundsOf returns the bounding rectangle of a set of points. It returns
// the empty rectangle when pts is empty.
func BoundsOf(pts []Point) Rect {
	r := EmptyRect()
	for _, p := range pts {
		r = r.Union(Rect{Min: p, Max: p})
	}
	return r
}

// Centroid returns the arithmetic mean of a set of points. It returns the
// origin when pts is empty.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		return Point{}
	}
	var sx, sy float64
	for _, p := range pts {
		sx += p.X
		sy += p.Y
	}
	n := float64(len(pts))
	return Point{sx / n, sy / n}
}
