package geo

import "math"

// Polyline is an ordered sequence of points, used for trajectory geometry
// and for multi-segment road geometries.
type Polyline []Point

// Length returns the total length of the polyline.
func (pl Polyline) Length() float64 {
	var total float64
	for i := 1; i < len(pl); i++ {
		total += pl[i-1].DistanceTo(pl[i])
	}
	return total
}

// Bounds returns the bounding rectangle of the polyline.
func (pl Polyline) Bounds() Rect { return BoundsOf(pl) }

// Segments decomposes the polyline into its constituent segments.
func (pl Polyline) Segments() []Segment {
	if len(pl) < 2 {
		return nil
	}
	segs := make([]Segment, 0, len(pl)-1)
	for i := 1; i < len(pl); i++ {
		segs = append(segs, Segment{A: pl[i-1], B: pl[i]})
	}
	return segs
}

// DistanceToPoint returns the minimum distance from the polyline to q.
func (pl Polyline) DistanceToPoint(q Point) float64 {
	if len(pl) == 0 {
		return math.Inf(1)
	}
	if len(pl) == 1 {
		return pl[0].DistanceTo(q)
	}
	best := math.Inf(1)
	for i := 1; i < len(pl); i++ {
		d := (Segment{A: pl[i-1], B: pl[i]}).DistanceToPoint(q)
		if d < best {
			best = d
		}
	}
	return best
}

// Interpolate returns the point located at the given fraction (0..1) of the
// polyline's total length.
func (pl Polyline) Interpolate(frac float64) Point {
	if len(pl) == 0 {
		return Point{}
	}
	if len(pl) == 1 || frac <= 0 {
		return pl[0]
	}
	if frac >= 1 {
		return pl[len(pl)-1]
	}
	target := frac * pl.Length()
	var walked float64
	for i := 1; i < len(pl); i++ {
		segLen := pl[i-1].DistanceTo(pl[i])
		if walked+segLen >= target {
			if segLen == 0 {
				return pl[i]
			}
			t := (target - walked) / segLen
			return pl[i-1].Lerp(pl[i], t)
		}
		walked += segLen
	}
	return pl[len(pl)-1]
}

// Resample returns a polyline with n points spaced evenly along pl.
func (pl Polyline) Resample(n int) Polyline {
	if n <= 0 || len(pl) == 0 {
		return nil
	}
	if n == 1 {
		return Polyline{pl[0]}
	}
	out := make(Polyline, n)
	for i := 0; i < n; i++ {
		out[i] = pl.Interpolate(float64(i) / float64(n-1))
	}
	return out
}

// Polygon is a simple (non self-intersecting) polygon given by its ring of
// vertices; the ring does not need to repeat the first vertex at the end.
// It is the spatial extent of free-form semantic regions such as a campus.
type Polygon []Point

// Bounds returns the bounding rectangle of the polygon.
func (pg Polygon) Bounds() Rect { return BoundsOf(pg) }

// Area returns the absolute area of the polygon (shoelace formula).
func (pg Polygon) Area() float64 {
	if len(pg) < 3 {
		return 0
	}
	var sum float64
	for i := 0; i < len(pg); i++ {
		j := (i + 1) % len(pg)
		sum += pg[i].Cross(pg[j])
	}
	return math.Abs(sum) / 2
}

// ContainsPoint reports whether the point is inside the polygon using the
// ray-casting (even-odd) rule; boundary points count as inside.
func (pg Polygon) ContainsPoint(p Point) bool {
	n := len(pg)
	if n < 3 {
		return false
	}
	// Boundary check first so points exactly on an edge are included.
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		if (Segment{A: pg[i], B: pg[j]}).DistanceToPoint(p) < 1e-9 {
			return true
		}
	}
	inside := false
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		pi, pj := pg[i], pg[j]
		if (pi.Y > p.Y) != (pj.Y > p.Y) {
			xCross := (pj.X-pi.X)*(p.Y-pi.Y)/(pj.Y-pi.Y) + pi.X
			if p.X < xCross {
				inside = !inside
			}
		}
	}
	return inside
}

// IntersectsRect reports whether the polygon and rectangle overlap. The test
// is conservative and exact for the convex/rectangular shapes used by the
// synthetic sources: it checks containment in either direction and edge
// crossings.
func (pg Polygon) IntersectsRect(r Rect) bool {
	if len(pg) == 0 || r.IsEmpty() {
		return false
	}
	if !pg.Bounds().Intersects(r) {
		return false
	}
	// Any polygon vertex inside the rectangle.
	for _, v := range pg {
		if r.ContainsPoint(v) {
			return true
		}
	}
	// Any rectangle corner inside the polygon.
	corners := []Point{r.Min, {r.Max.X, r.Min.Y}, r.Max, {r.Min.X, r.Max.Y}}
	for _, c := range corners {
		if pg.ContainsPoint(c) {
			return true
		}
	}
	// Any edge crossing.
	rectEdges := []Segment{
		{A: corners[0], B: corners[1]}, {A: corners[1], B: corners[2]},
		{A: corners[2], B: corners[3]}, {A: corners[3], B: corners[0]},
	}
	for i := 0; i < len(pg); i++ {
		e := Segment{A: pg[i], B: pg[(i+1)%len(pg)]}
		for _, re := range rectEdges {
			if SegmentsIntersect(e, re) {
				return true
			}
		}
	}
	return false
}

// SegmentsIntersect reports whether the two segments share at least one point.
func SegmentsIntersect(s1, s2 Segment) bool {
	d1 := direction(s2.A, s2.B, s1.A)
	d2 := direction(s2.A, s2.B, s1.B)
	d3 := direction(s1.A, s1.B, s2.A)
	d4 := direction(s1.A, s1.B, s2.B)
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	switch {
	case d1 == 0 && onSegment(s2.A, s2.B, s1.A):
		return true
	case d2 == 0 && onSegment(s2.A, s2.B, s1.B):
		return true
	case d3 == 0 && onSegment(s1.A, s1.B, s2.A):
		return true
	case d4 == 0 && onSegment(s1.A, s1.B, s2.B):
		return true
	}
	return false
}

func direction(a, b, c Point) float64 { return c.Sub(a).Cross(b.Sub(a)) }

func onSegment(a, b, p Point) bool {
	return math.Min(a.X, b.X) <= p.X && p.X <= math.Max(a.X, b.X) &&
		math.Min(a.Y, b.Y) <= p.Y && p.Y <= math.Max(a.Y, b.Y)
}

// RegularPolygon returns an n-vertex regular polygon of the given radius
// centred at c; it is used by the synthetic region generators.
func RegularPolygon(c Point, radius float64, n int) Polygon {
	if n < 3 {
		n = 3
	}
	pg := make(Polygon, n)
	for i := 0; i < n; i++ {
		a := 2 * math.Pi * float64(i) / float64(n)
		pg[i] = Point{c.X + radius*math.Cos(a), c.Y + radius*math.Sin(a)}
	}
	return pg
}
