// Package wal is semitri's durability subsystem: a write-ahead log over the
// semantic trajectory store, plus snapshot checkpoints and crash recovery.
//
// The store reports every committed mutation — raw records, trajectories,
// episodes, structured tuples, annotation merges — through its
// store.MutationLog hook (the same observer path that feeds the query
// indexes). The log serialises each mutation into a binary frame
//
//	[u32 payload length][u32 CRC-32C (Castagnoli) of payload][payload]
//
// and appends it to the current segment file. Writes are group-committed:
// LogMutation only appends the frame to an in-memory buffer, and a
// background flusher writes and fsyncs the accumulated batch once per
// FlushInterval, so the streaming hot path pays one sync per batch rather
// than one per record. The durability window is therefore at most one flush
// interval wide under the default FsyncInterval policy; FsyncAlways narrows
// it to zero (a write+sync per mutation), FsyncNever leaves syncing to the
// OS page cache.
//
// Segments rotate at SegmentSize. A checkpoint rotates, writes the store's
// crash-safe JSON snapshot (store.Save: temp file + rename) into the same
// directory and deletes the segments older than the rotation point; because
// every mutation in those segments committed to the store before the
// rotation, the snapshot is guaranteed to contain them. Mutations racing the
// snapshot land in segments the checkpoint keeps and replay idempotently
// (positional appends skip what the snapshot already holds), so checkpoints
// never block ingestion.
//
// Recover loads the snapshot (if any) and replays the remaining segments in
// order. Replay stops cleanly at the first torn or corrupt frame — a crash
// mid-flush leaves at most one torn frame at the tail — keeping every fully
// committed frame before it and never panicking on damaged input.
package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"semitri/internal/gps"
	"semitri/internal/obs"
	"semitri/internal/store"
)

// FsyncPolicy selects when logged frames are fsynced to stable storage.
type FsyncPolicy int

const (
	// FsyncInterval is the group-commit default: the background flusher
	// writes and fsyncs the accumulated batch once per FlushInterval.
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways writes and fsyncs on every logged mutation (durable to the
	// last mutation, at a heavy per-record cost).
	FsyncAlways
	// FsyncNever writes batches on the flush interval but never fsyncs; the
	// OS page cache decides when bytes reach the disk.
	FsyncNever
)

// String implements fmt.Stringer.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	}
	return "interval"
}

// Defaults used when the corresponding Options field is zero.
const (
	DefaultFlushInterval = 50 * time.Millisecond
	DefaultSegmentSize   = 16 << 20
)

const (
	// SnapshotFile is the checkpoint snapshot's file name inside the log
	// directory.
	SnapshotFile  = "snapshot.json"
	segmentPrefix = "wal-"
	segmentSuffix = ".log"
	// segment header: magic + format version.
	headerSize = 8
	// frame header: payload length + CRC.
	frameHeaderSize = 8
	// maxFrame bounds a frame's payload; larger lengths are corruption.
	maxFrame = 1 << 28
	// maxRunRecords bounds how many hot-path records coalesce into one
	// frame before it seals (also the per-object bound on records that sit
	// outside buf between flushes).
	maxRunRecords = 64
	// softFlushBytes triggers an early flush when the pending buffer grows
	// past it, bounding memory between ticks under heavy ingestion and
	// keeping the recycled batch buffers small enough to stay cache-warm.
	softFlushBytes = 256 << 10
)

var segmentMagic = [4]byte{'S', 'T', 'W', 'L'}

const formatVersion = 1

// Options configures a Log.
type Options struct {
	// Dir is the log directory (created if absent). Segments and the
	// checkpoint snapshot live directly inside it.
	Dir string
	// FlushInterval is the group-commit window (default
	// DefaultFlushInterval). Shorter intervals narrow the durability window;
	// longer ones amortise the fsync over more records.
	FlushInterval time.Duration
	// SegmentSize is the rotation threshold in bytes (default
	// DefaultSegmentSize).
	SegmentSize int64
	// Fsync selects the sync policy (default FsyncInterval).
	Fsync FsyncPolicy
}

func (o Options) withDefaults() Options {
	if o.FlushInterval <= 0 {
		o.FlushInterval = DefaultFlushInterval
	}
	if o.SegmentSize <= 0 {
		o.SegmentSize = DefaultSegmentSize
	}
	return o
}

// Log is an open write-ahead log. It implements store.MutationLog; attach it
// with store.AttachLog before writers start. All methods are safe for
// concurrent use.
type Log struct {
	opts Options

	// mu guards the pending frame buffer and the record staging area.
	// LogMutation is called with a store stripe lock held, so this critical
	// section stays tiny (an append) and never does I/O. buf and spare
	// alternate (double buffering): a flush takes ownership of buf and
	// leaves spare behind, then recycles the written buffer as the next
	// spare, so steady-state logging allocates nothing.
	mu     sync.Mutex
	buf    []byte
	spare  []byte
	closed bool
	// staged coalesces the hot path's one-record MutPutRecords mutations
	// into multi-record frames per object: consecutive positional appends
	// extend the staged run, and runs seal into buf on any flush, on a
	// position gap or at maxRunRecords. This cuts both frame count (one
	// header+CRC per run instead of per record) and bytes (the in-batch
	// time-delta encoding only pays off across records). Replay sees plain
	// MutPutRecords frames — coalescing is invisible to the format.
	staged  map[string]*recRun
	sealEnc encoder

	// fmu guards the open segment file, its size and the sticky I/O error.
	fmu  sync.Mutex
	f    *os.File
	seq  uint64
	size int64
	err  error

	// cpMu serialises checkpoints.
	cpMu  sync.Mutex
	cpErr error

	// lastFlush is the Unix-nano time of the last successful flush — the
	// flusher's liveness signal, read by health checks via LastFlush.
	lastFlush atomic.Int64

	kick chan struct{}
	done chan struct{}
	wg   sync.WaitGroup
}

var encPool = sync.Pool{New: func() any { return &encoder{b: make([]byte, 0, 512)} }}

// Open creates or opens the log directory and starts a fresh segment after
// the highest existing one (never appending into a possibly-torn tail).
// The background flusher starts immediately.
func Open(opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, errors.New("wal: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: mkdir: %w", err)
	}
	segs, err := listSegments(opts.Dir)
	if err != nil {
		return nil, err
	}
	seq := uint64(0)
	if len(segs) > 0 {
		seq = segs[len(segs)-1].seq
	}
	l := &Log{
		opts: opts,
		seq:  seq,
		// Both batch buffers start at the kick threshold plus burst slack, so
		// steady-state logging never reallocates (growth churn feeds the GC,
		// whose marking cost would land on the ingest hot path).
		buf:    make([]byte, 0, softFlushBytes+(128<<10)),
		spare:  make([]byte, 0, softFlushBytes+(128<<10)),
		staged: map[string]*recRun{},
		kick:   make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	l.fmu.Lock()
	err = l.rotateLocked()
	l.fmu.Unlock()
	if err != nil {
		return nil, err
	}
	l.wg.Add(1)
	go l.flusher()
	return l, nil
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.opts.Dir }

// FlushInterval returns the effective group-commit window (defaults
// applied). Health checks scale their flusher-stall threshold off it.
func (l *Log) FlushInterval() time.Duration { return l.opts.FlushInterval }

// LogMutation implements store.MutationLog: it serialises the mutation into
// a frame and appends it to the pending buffer. Called under the store's
// stripe lock, so it must not block on I/O; actual writing and syncing
// happen on the flusher goroutine (or inline under FsyncAlways, which is
// the one policy that accepts paying the sync on the mutating goroutine).
func (l *Log) LogMutation(m store.Mutation) {
	if m.Op == store.MutPutRecords {
		l.stageRecords(m)
		return
	}
	e := encPool.Get().(*encoder)
	e.reset()
	// Reserve the frame header, encode the payload behind it, then fill the
	// header in place.
	e.b = append(e.b, make([]byte, frameHeaderSize)...)
	encodeMutation(e, m)
	payload := e.b[frameHeaderSize:]
	putU32(e.b[0:4], uint32(len(payload)))
	putU32(e.b[4:8], frameCRC(payload))

	l.mu.Lock()
	dropped := l.closed
	if !dropped {
		l.buf = append(l.buf, e.b...)
	}
	pending := len(l.buf)
	l.mu.Unlock()
	encPool.Put(e)
	if dropped {
		return
	}
	obs.WALFrames.Inc()
	if l.opts.Fsync == FsyncAlways {
		_ = l.Flush()
		return
	}
	// A full buffer wakes the flusher early for a plain write (no fsync):
	// the kick bounds memory, while the sync cadence — the group-commit
	// durability window — stays owned by the ticker.
	if pending >= softFlushBytes {
		select {
		case l.kick <- struct{}{}:
		default:
		}
	}
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

// recRun is one object's staged run of contiguous record appends.
type recRun struct {
	start int
	recs  []gps.Record
}

// stageRecords coalesces a MutPutRecords mutation into the object's staged
// run: contiguous appends (the streaming hot path delivers exactly those)
// extend the run; anything else seals the old run as a frame and starts a
// new one. Record-table ops are positional and object-local, so deferring
// their frames past other objects' (or other tables') frames cannot change
// what replay rebuilds — staged records are simply not yet durable, exactly
// like frames waiting in buf.
func (l *Log) stageRecords(m store.Mutation) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	run := l.staged[m.ObjectID]
	switch {
	case run != nil && run.start+len(run.recs) == m.Start:
		run.recs = append(run.recs, m.Records...)
	default:
		if run != nil {
			l.sealLocked(m.ObjectID, run)
		}
		run = &recRun{start: m.Start, recs: make([]gps.Record, 0, maxRunRecords)}
		run.recs = append(run.recs, m.Records...)
		l.staged[m.ObjectID] = run
	}
	if len(run.recs) >= maxRunRecords {
		l.sealLocked(m.ObjectID, run)
		delete(l.staged, m.ObjectID)
	}
	pending := len(l.buf)
	l.mu.Unlock()
	if l.opts.Fsync == FsyncAlways {
		_ = l.Flush()
		return
	}
	if pending >= softFlushBytes {
		select {
		case l.kick <- struct{}{}:
		default:
		}
	}
}

// sealLocked encodes one staged run as a MutPutRecords frame at the end of
// buf. Caller holds mu.
func (l *Log) sealLocked(obj string, run *recRun) {
	e := &l.sealEnc
	e.reset()
	e.b = append(e.b, make([]byte, frameHeaderSize)...)
	encodeMutation(e, store.Mutation{
		Op: store.MutPutRecords, ObjectID: obj, Start: run.start, Records: run.recs,
	})
	payload := e.b[frameHeaderSize:]
	putU32(e.b[0:4], uint32(len(payload)))
	putU32(e.b[4:8], frameCRC(payload))
	l.buf = append(l.buf, e.b...)
	obs.WALFrames.Inc()
}

// sealAllLocked seals every staged run. Caller holds mu.
func (l *Log) sealAllLocked() {
	for obj, run := range l.staged {
		l.sealLocked(obj, run)
		delete(l.staged, obj)
	}
}

// flusher is the group-commit goroutine: one write (+ sync, policy
// permitting) per FlushInterval or early kick.
func (l *Log) flusher() {
	defer l.wg.Done()
	ticker := time.NewTicker(l.opts.FlushInterval)
	defer ticker.Stop()
	for {
		select {
		case <-l.done:
			return
		case <-ticker.C:
			_ = l.Flush()
		case <-l.kick:
			_ = l.flushNoSync()
		}
	}
}

// flushNoSync writes the pending batch without fsyncing — the memory-bound
// path between group commits.
func (l *Log) flushNoSync() error {
	l.fmu.Lock()
	defer l.fmu.Unlock()
	return l.flushLocked(false)
}

// Flush writes the pending frame batch to the current segment and, unless
// the policy is FsyncNever, fsyncs it. It returns the log's sticky I/O
// error, if any: once a write fails the log stops accepting data and every
// durability call reports the failure.
func (l *Log) Flush() error {
	l.fmu.Lock()
	defer l.fmu.Unlock()
	return l.flushLocked(l.opts.Fsync != FsyncNever)
}

// flushLocked swaps the pending buffer out, writes it (fsyncing when sync
// is set) and recycles it as the next spare. Caller holds fmu (which also
// serialises flushers, so at most one batch is in flight and the spare
// handoff cannot race).
func (l *Log) flushLocked(sync bool) error {
	start := time.Now()
	l.mu.Lock()
	l.sealAllLocked()
	data := l.buf
	l.buf = l.spare[:0]
	l.spare = nil
	l.mu.Unlock()
	err := l.writeLocked(data, sync)
	l.mu.Lock()
	if l.spare == nil {
		l.spare = data[:0]
	}
	l.mu.Unlock()
	if err == nil {
		// Every successful pass is a liveness signal, but only non-empty
		// batches are latency observations.
		now := time.Now()
		l.lastFlush.Store(now.UnixNano())
		obs.WALLastFlushUnixNano.Set(now.UnixNano())
		if len(data) > 0 {
			obs.WALFlushNs.ObserveNs(now.Sub(start).Nanoseconds())
		}
	} else {
		obs.WALErrored.Set(1)
	}
	return err
}

// LastFlush returns the wall-clock time of the last successful flush pass
// (the zero time before the first one). A healthy log's flusher refreshes it
// every FlushInterval even when idle, so a stale value means the flusher has
// stalled or the log is failing its writes.
func (l *Log) LastFlush() time.Time {
	ns := l.lastFlush.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// writeLocked appends data to the segment, rotating first when the segment
// is full. Caller holds fmu.
func (l *Log) writeLocked(data []byte, sync bool) error {
	if l.err != nil {
		return l.err
	}
	if len(data) == 0 {
		return nil
	}
	if l.size > headerSize && l.size+int64(len(data)) > l.opts.SegmentSize {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := l.f.Write(data); err != nil {
		l.err = fmt.Errorf("wal: write: %w", err)
		return l.err
	}
	l.size += int64(len(data))
	obs.WALBytes.Add(int64(len(data)))
	if sync {
		if err := datasync(l.f); err != nil {
			l.err = fmt.Errorf("wal: sync: %w", err)
			return l.err
		}
		obs.WALFsyncs.Inc()
	}
	return nil
}

// rotateLocked closes the current segment (fully synced) and starts the
// next one. Caller holds fmu.
func (l *Log) rotateLocked() error {
	if l.err != nil {
		return l.err
	}
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			l.err = fmt.Errorf("wal: sync: %w", err)
			return l.err
		}
		if err := l.f.Close(); err != nil {
			l.err = fmt.Errorf("wal: close segment: %w", err)
			return l.err
		}
		l.f = nil
	}
	next := l.seq + 1
	f, err := os.OpenFile(segmentPath(l.opts.Dir, next), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		l.err = fmt.Errorf("wal: create segment: %w", err)
		return l.err
	}
	var hdr [headerSize]byte
	copy(hdr[0:4], segmentMagic[:])
	putU32(hdr[4:8], formatVersion)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		l.err = fmt.Errorf("wal: write header: %w", err)
		return l.err
	}
	l.f = f
	l.seq = next
	l.size = headerSize
	syncDir(l.opts.Dir)
	return nil
}

// Sync flushes the pending batch and forces an fsync regardless of policy:
// after Sync returns nil, every mutation logged before the call is on
// stable storage.
func (l *Log) Sync() error {
	l.fmu.Lock()
	defer l.fmu.Unlock()
	if err := l.flushLocked(false); err != nil {
		return err
	}
	// Sync the file unconditionally: kick-path flushes write without
	// fsyncing, so an empty pending buffer does not mean a synced file.
	// (Rotation syncs a segment before closing it, so unsynced bytes only
	// ever live in the current file.)
	if l.f != nil {
		if err := datasync(l.f); err != nil {
			l.err = fmt.Errorf("wal: sync: %w", err)
			obs.WALErrored.Set(1)
		} else {
			obs.WALFsyncs.Inc()
		}
	}
	return l.err
}

// Err returns the log's sticky I/O or checkpoint error, if any.
func (l *Log) Err() error {
	l.fmu.Lock()
	err := l.err
	l.fmu.Unlock()
	if err != nil {
		return err
	}
	l.cpMu.Lock()
	defer l.cpMu.Unlock()
	return l.cpErr
}

// Checkpoint makes the store's current state the log's new recovery base:
// it rotates to a fresh segment, writes the store's crash-safe snapshot
// into the log directory and deletes the segments the snapshot has made
// obsolete. Safe to run while writers keep logging — mutations racing the
// snapshot stay in retained segments and replay idempotently. A checkpoint
// that crashes between snapshot and truncation only leaves extra segments
// behind, which also replay idempotently.
func (l *Log) Checkpoint(st *store.Store) error {
	return l.CheckpointWith(func(dir string) error {
		return st.Save(filepath.Join(dir, SnapshotFile))
	})
}

// CheckpointWith is Checkpoint with a caller-supplied recovery-base writer:
// after the log rotates, save must persist everything committed before the
// rotation into dir (the log directory), and on success the log deletes the
// segments older than the rotation point. The tiered segment store plugs its
// incremental freeze in here instead of the JSON snapshot; the flush /
// rotate / save / truncate contract is identical.
func (l *Log) CheckpointWith(save func(dir string) error) error {
	start := time.Now()
	err := l.checkpointWith(save)
	if err != nil {
		obs.CheckpointErrored.Set(1)
		return err
	}
	obs.CheckpointErrored.Set(0)
	obs.WALCheckpointNs.ObserveNs(time.Since(start).Nanoseconds())
	return nil
}

func (l *Log) checkpointWith(save func(dir string) error) error {
	l.cpMu.Lock()
	defer l.cpMu.Unlock()
	if err := l.Flush(); err != nil {
		return err
	}
	l.fmu.Lock()
	err := l.rotateLocked()
	boundary := l.seq
	l.fmu.Unlock()
	if err != nil {
		return err
	}
	if err := save(l.opts.Dir); err != nil {
		l.cpErr = err
		return err
	}
	segs, err := listSegments(l.opts.Dir)
	if err != nil {
		l.cpErr = err
		return err
	}
	for _, seg := range segs {
		if seg.seq < boundary {
			if err := os.Remove(seg.path); err != nil {
				l.cpErr = err
				return err
			}
		}
	}
	syncDir(l.opts.Dir)
	l.cpErr = nil
	return nil
}

// StartAutoCheckpoint checkpoints the store every interval until Close.
// Checkpoint errors are sticky (see Err) but do not stop the log or the
// schedule. A non-positive interval disables the schedule.
func (l *Log) StartAutoCheckpoint(st *store.Store, interval time.Duration) {
	l.StartAutoCheckpointFunc(func() error { return l.Checkpoint(st) }, interval)
}

// StartAutoCheckpointFunc runs cp every interval until Close — the schedule
// StartAutoCheckpoint uses, with the checkpoint step replaced (the segment
// store schedules its incremental freeze this way). Errors from cp are the
// caller's to make sticky; the schedule itself never stops on them.
func (l *Log) StartAutoCheckpointFunc(cp func() error, interval time.Duration) {
	if interval <= 0 {
		return
	}
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-l.done:
				return
			case <-ticker.C:
				_ = cp()
			}
		}
	}()
}

// Close flushes and syncs the remaining frames, stops the background
// goroutines and closes the segment. Mutations logged after Close are
// dropped; quiesce writers (close the stream processor) first.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return l.Err()
	}
	l.closed = true
	l.mu.Unlock()
	close(l.done)
	l.wg.Wait()
	syncErr := l.Sync()
	l.fmu.Lock()
	if l.f != nil {
		if err := l.f.Close(); err != nil && l.err == nil {
			l.err = fmt.Errorf("wal: close segment: %w", err)
		}
		l.f = nil
	}
	err := l.err
	l.fmu.Unlock()
	if syncErr != nil {
		return syncErr
	}
	if err != nil {
		return err
	}
	l.cpMu.Lock()
	defer l.cpMu.Unlock()
	return l.cpErr
}

// segmentInfo is one on-disk segment.
type segmentInfo struct {
	seq  uint64
	path string
}

func segmentPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%08d%s", segmentPrefix, seq, segmentSuffix))
}

// listSegments returns the directory's segments sorted by sequence number.
func listSegments(dir string) ([]segmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: read dir: %w", err)
	}
	var segs []segmentInfo
	for _, ent := range entries {
		name := ent.Name()
		if !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		numeric := strings.TrimSuffix(strings.TrimPrefix(name, segmentPrefix), segmentSuffix)
		seq, err := strconv.ParseUint(numeric, 10, 64)
		if err != nil {
			continue // not a segment of ours
		}
		segs = append(segs, segmentInfo{seq: seq, path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	return segs, nil
}

// syncDir fsyncs a directory so created/removed entries survive a crash
// (best-effort — not every platform allows syncing directories).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}
