package wal

import (
	"errors"

	"semitri/internal/store"
)

// The segment store (internal/segment) persists frozen store tails in the
// WAL's wire format: the same varint mutation codec, the same
// [u32 length][u32 CRC-32C][payload] framing. This file is the exported
// surface it builds on, so the two on-disk formats cannot drift apart.

// FrameHeaderSize is the size of the [length][CRC] header preceding every
// frame payload.
const FrameHeaderSize = frameHeaderSize

// MaxFramePayload bounds a frame's payload length; anything larger in a
// header is corruption, not data.
const MaxFramePayload = maxFrame

// ErrFrame reports a frame whose header or checksum does not hold together.
var ErrFrame = errors.New("wal: invalid frame")

// AppendMutationFrame appends one framed mutation — header plus payload — to
// buf and returns the extended buffer. The encoding is byte-identical to
// what Log.LogMutation writes, so frames built here replay through the same
// decoder.
func AppendMutationFrame(buf []byte, m store.Mutation) []byte {
	e := encPool.Get().(*encoder)
	e.reset()
	e.b = append(e.b, make([]byte, frameHeaderSize)...)
	encodeMutation(e, m)
	payload := e.b[frameHeaderSize:]
	putU32(e.b[0:4], uint32(len(payload)))
	putU32(e.b[4:8], frameCRC(payload))
	buf = append(buf, e.b...)
	encPool.Put(e)
	return buf
}

// ParseFrame validates the frame at the start of b and returns its payload
// (aliasing b — callers must not retain it past the life of the backing
// buffer) together with the frame's total size in bytes. A truncated header,
// an impossible length or a checksum mismatch returns ErrFrame.
func ParseFrame(b []byte) (payload []byte, size int, err error) {
	if len(b) < frameHeaderSize {
		return nil, 0, ErrFrame
	}
	n := leU32(b[0:4])
	if n > maxFrame || int(n) > len(b)-frameHeaderSize {
		return nil, 0, ErrFrame
	}
	payload = b[frameHeaderSize : frameHeaderSize+int(n)]
	if frameCRC(payload) != leU32(b[4:8]) {
		return nil, 0, ErrFrame
	}
	return payload, frameHeaderSize + int(n), nil
}

// DecodeMutation decodes one frame payload (as returned by ParseFrame).
// interned, when non-nil, is a string table shared across calls; see
// decodeMutation. The decoder never panics on arbitrary input.
func DecodeMutation(payload []byte, interned map[string]string) (store.Mutation, error) {
	return decodeMutation(payload, interned)
}
