package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/geo"
	"semitri/internal/gps"
	"semitri/internal/store"
)

func ts(i int) time.Time {
	return time.Date(2026, 7, 1, 8, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Second)
}

func testEpisode(i int) *episode.Episode {
	return &episode.Episode{
		TrajectoryID: "t1",
		ObjectID:     "o1",
		Kind:         episode.Kind(i % 2),
		StartIdx:     i,
		EndIdx:       i + 5,
		Start:        ts(i),
		End:          ts(i + 60),
		Center:       geo.Pt(float64(i), float64(i)+0.5),
		Bounds:       geo.NewRect(geo.Pt(float64(i), float64(i)), geo.Pt(float64(i)+10, float64(i)+10)),
		AvgSpeed:     1.25,
		MaxSpeed:     3.5,
		Distance:     42.75,
		RecordCount:  6,
	}
}

func testTuple(i int) *core.EpisodeTuple {
	tp := &core.EpisodeTuple{
		Kind: episode.Kind(i % 2),
		Place: &core.Place{
			ID: "p1", Kind: core.PointPlace, Name: "café", Category: "food",
			Extent: geo.NewRect(geo.Pt(1, 2), geo.Pt(3, 4)),
		},
		TimeIn:  ts(i),
		TimeOut: ts(i + 30),
		Episode: testEpisode(i),
	}
	tp.Annotations.Add(core.Annotation{Key: "poi_category", Value: "food", Confidence: 0.8, Source: "point"})
	tp.Annotations.Add(core.Annotation{Key: "landuse", Value: "urban", Confidence: 0.6, Source: "region"})
	return tp
}

// testMutations covers every op with rich payloads.
func testMutations() []store.Mutation {
	return []store.Mutation{
		{Op: store.MutPutRecords, ObjectID: "o1", Start: 7, Records: []gps.Record{
			{ObjectID: "o1", Position: geo.Pt(1.5, -2.5), Time: ts(0)},
			{ObjectID: "o1", Position: geo.Pt(3, 4), Time: ts(1)},
		}},
		{Op: store.MutPutTrajectory, ObjectID: "o1", TrajectoryID: "t1", Trajectory: &gps.RawTrajectory{
			ID: "t1", ObjectID: "o1", Records: []gps.Record{{ObjectID: "o1", Position: geo.Pt(9, 9), Time: ts(2)}},
		}},
		{Op: store.MutPutEpisodes, TrajectoryID: "t1", Episodes: []*episode.Episode{testEpisode(0), testEpisode(1)}},
		{Op: store.MutAppendEpisodes, TrajectoryID: "t1", Start: 2, Episodes: []*episode.Episode{testEpisode(2)}},
		{Op: store.MutPutStructured, ObjectID: "o1", TrajectoryID: "t1", Interpretation: "merged",
			Tuples: []*core.EpisodeTuple{testTuple(0), testTuple(1)}},
		{Op: store.MutAppendTuples, ObjectID: "o1", TrajectoryID: "t1", Interpretation: "merged",
			Start: 2, Tuples: []*core.EpisodeTuple{testTuple(2)}},
		{Op: store.MutAppendTuples, ObjectID: "o1", TrajectoryID: "t1", Interpretation: "line"}, // zero tuples
		{Op: store.MutMergeTuple, TrajectoryID: "t1", Interpretation: "merged", Start: 1,
			Place:       &core.Place{ID: "p2", Kind: core.RegionPlace, Extent: geo.NewRect(geo.Pt(0, 0), geo.Pt(1, 1))},
			Annotations: []core.Annotation{{Key: "activity", Value: "eat", Confidence: 0.9, Source: "point"}}},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for i, m := range testMutations() {
		e := &encoder{}
		encodeMutation(e, m)
		got, err := decodeMutation(e.b, nil)
		if err != nil {
			t.Fatalf("mutation %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Fatalf("mutation %d round trip mismatch:\n in  %+v\n out %+v", i, m, got)
		}
	}
}

func TestCodecRejectsTrailingBytes(t *testing.T) {
	e := &encoder{}
	encodeMutation(e, testMutations()[0])
	if _, err := decodeMutation(append(e.b, 0), nil); err == nil {
		t.Fatal("decode accepted trailing bytes")
	}
	if _, err := decodeMutation(e.b[:len(e.b)-1], nil); err == nil {
		t.Fatal("decode accepted truncated payload")
	}
	if _, err := decodeMutation(nil, nil); err == nil {
		t.Fatal("decode accepted empty payload")
	}
}

// logAll writes every mutation through a store with the log attached and
// returns that live store.
func logAll(t *testing.T, l *Log, ms []store.Mutation) *store.Store {
	t.Helper()
	live := store.New()
	live.AttachLog(l)
	for _, m := range ms {
		if err := live.Apply(m); err != nil {
			t.Fatal(err)
		}
	}
	return live
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, FlushInterval: time.Hour}) // flush only on Sync
	if err != nil {
		t.Fatal(err)
	}
	live := logAll(t, l, testMutations())
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	rec, stats, err := Recover(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SnapshotLoaded || stats.Torn {
		t.Fatalf("unexpected stats %+v", stats)
	}
	if stats.FramesApplied == 0 {
		t.Fatal("no frames replayed")
	}
	assertSameContent(t, live, rec)
}

func TestCheckpointTruncatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ms := testMutations()
	live := logAll(t, l, ms[:4])
	if err := l.Checkpoint(live); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, SnapshotFile)); err != nil {
		t.Fatalf("snapshot missing after checkpoint: %v", err)
	}
	// Keep writing after the checkpoint, then recover from snapshot + tail.
	live.AttachLog(l)
	for _, m := range ms[4:] {
		if err := live.Apply(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	rec, stats, err := Recover(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.SnapshotLoaded {
		t.Fatal("recovery ignored the checkpoint snapshot")
	}
	if rec.ShardCount() != 4 {
		t.Fatalf("recovered shard count %d, want 4", rec.ShardCount())
	}
	assertSameContent(t, live, rec)
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, FlushInterval: time.Hour, SegmentSize: 512, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	live := store.New()
	live.AttachLog(l)
	for i := 0; i < 50; i++ {
		live.PutRecords([]gps.Record{{ObjectID: "o1", Position: geo.Pt(float64(i), 0), Time: ts(i)}})
		if err := l.Sync(); err != nil { // force per-record batches so segments fill
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected rotation to produce multiple segments, got %d", len(segs))
	}
	rec, _, err := Recover(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	assertSameContent(t, live, rec)
}

func TestRecoverMissingAndEmptyDir(t *testing.T) {
	st, stats, err := Recover(filepath.Join(t.TempDir(), "nope"), 0)
	if err != nil || st.RecordCount() != 0 || stats.Segments != 0 {
		t.Fatalf("missing dir: store=%v stats=%+v err=%v", st.RecordCount(), stats, err)
	}
	st, stats, err = Recover(t.TempDir(), 0)
	if err != nil || st.RecordCount() != 0 || stats.Segments != 0 {
		t.Fatalf("empty dir: store=%v stats=%+v err=%v", st.RecordCount(), stats, err)
	}
}

func TestReopenStartsFreshSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	live := store.New()
	live.AttachLog(l)
	live.PutRecords([]gps.Record{{ObjectID: "o1", Position: geo.Pt(1, 1), Time: ts(0)}})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	live.AttachLog(l2)
	live.PutRecords([]gps.Record{{ObjectID: "o1", Position: geo.Pt(2, 2), Time: ts(1)}})
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	rec, stats, err := Recover(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Segments < 2 {
		t.Fatalf("reopen reused a segment: %+v", stats)
	}
	assertSameContent(t, live, rec)
}

// assertSameContent compares two stores' visible content. Times are
// compared as instants (the WAL codec restores times in UTC).
func assertSameContent(t *testing.T, a, b *store.Store) {
	t.Helper()
	if a.RecordCount() != b.RecordCount() {
		t.Fatalf("record count: %d vs %d", a.RecordCount(), b.RecordCount())
	}
	as, am := a.EpisodeCounts()
	bs, bm := b.EpisodeCounts()
	if as != bs || am != bm {
		t.Fatalf("episode counts: %d/%d vs %d/%d", as, am, bs, bm)
	}
	if a.StructuredCount() != b.StructuredCount() {
		t.Fatalf("structured count: %d vs %d", a.StructuredCount(), b.StructuredCount())
	}
	if !reflect.DeepEqual(a.Objects(), b.Objects()) {
		t.Fatalf("objects: %v vs %v", a.Objects(), b.Objects())
	}
	for _, obj := range a.Objects() {
		ra, rb := a.Records(obj), b.Records(obj)
		if len(ra) != len(rb) {
			t.Fatalf("object %s: %d vs %d records", obj, len(ra), len(rb))
		}
		for i := range ra {
			if !recordsEqual(ra[i], rb[i]) {
				t.Fatalf("object %s record %d: %+v vs %+v", obj, i, ra[i], rb[i])
			}
		}
	}
	ids := a.TrajectoryIDs("")
	if !reflect.DeepEqual(ids, b.TrajectoryIDs("")) {
		t.Fatalf("trajectory ids: %v vs %v", ids, b.TrajectoryIDs(""))
	}
	for _, id := range ids {
		ta, _ := a.Trajectory(id)
		tb, ok := b.Trajectory(id)
		if !ok || len(ta.Records) != len(tb.Records) || ta.ObjectID != tb.ObjectID {
			t.Fatalf("trajectory %s differs", id)
		}
		for i := range ta.Records {
			if !recordsEqual(ta.Records[i], tb.Records[i]) {
				t.Fatalf("trajectory %s record %d differs", id, i)
			}
		}
		ea, eb := a.Episodes(id), b.Episodes(id)
		if len(ea) != len(eb) {
			t.Fatalf("trajectory %s: %d vs %d episodes", id, len(ea), len(eb))
		}
		for i := range ea {
			if !episodesEqual(ea[i], eb[i]) {
				t.Fatalf("trajectory %s episode %d:\n %+v\n %+v", id, i, *ea[i], *eb[i])
			}
		}
		if !reflect.DeepEqual(a.Interpretations(id), b.Interpretations(id)) {
			t.Fatalf("trajectory %s interpretations: %v vs %v", id, a.Interpretations(id), b.Interpretations(id))
		}
		for _, interp := range a.Interpretations(id) {
			oa, tua, _ := a.TupleSnapshot(id, interp)
			ob, tub, ok := b.TupleSnapshot(id, interp)
			if !ok || oa != ob || len(tua) != len(tub) {
				t.Fatalf("%s/%s: object/length mismatch", id, interp)
			}
			for i := range tua {
				if !tuplesEqualValue(&tua[i], &tub[i]) {
					t.Fatalf("%s/%s tuple %d:\n %+v\n %+v", id, interp, i, tua[i], tub[i])
				}
			}
		}
	}
}

func recordsEqual(a, b gps.Record) bool {
	return a.ObjectID == b.ObjectID && a.Position == b.Position && a.Time.Equal(b.Time)
}

func episodesEqual(a, b *episode.Episode) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.TrajectoryID == b.TrajectoryID && a.ObjectID == b.ObjectID && a.Kind == b.Kind &&
		a.StartIdx == b.StartIdx && a.EndIdx == b.EndIdx &&
		a.Start.Equal(b.Start) && a.End.Equal(b.End) &&
		a.Center == b.Center && a.Bounds == b.Bounds &&
		a.AvgSpeed == b.AvgSpeed && a.MaxSpeed == b.MaxSpeed &&
		a.Distance == b.Distance && a.RecordCount == b.RecordCount
}

func tuplesEqualValue(a, b *core.EpisodeTuple) bool {
	if a.Kind != b.Kind || !a.TimeIn.Equal(b.TimeIn) || !a.TimeOut.Equal(b.TimeOut) {
		return false
	}
	if (a.Place == nil) != (b.Place == nil) || (a.Place != nil && *a.Place != *b.Place) {
		return false
	}
	if !reflect.DeepEqual(a.Annotations.All(), b.Annotations.All()) {
		return false
	}
	return episodesEqual(a.Episode, b.Episode)
}
