//go:build linux

package wal

import (
	"os"
	"syscall"
)

// datasync flushes a segment's appended data (and the metadata needed to
// read it back, per POSIX fdatasync semantics) without forcing the full
// inode-metadata journal commit fsync pays on ext4 — the classic WAL sync
// primitive.
func datasync(f *os.File) error {
	return syscall.Fdatasync(int(f.Fd()))
}
