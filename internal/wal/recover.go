package wal

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"

	"semitri/internal/store"
)

// RecoverStats summarises one recovery.
type RecoverStats struct {
	// SnapshotLoaded reports whether a checkpoint snapshot was found and
	// loaded before replay.
	SnapshotLoaded bool
	// Segments is the number of segment files visited.
	Segments int
	// FramesApplied is the number of log frames replayed into the store.
	FramesApplied int
	// Torn reports that replay stopped before the physical end of the log:
	// a truncated, bit-flipped or otherwise corrupt frame was found and the
	// committed prefix before it was kept. A torn final frame after a crash
	// mid-flush is the expected case.
	Torn bool
	// TornSegment and TornOffset locate the first corrupt byte when Torn.
	TornSegment string
	TornOffset  int64
	// QuarantinedSegments counts intact segments found BEHIND the tear — a
	// mid-log tear, which a crash cannot produce (it points at disk
	// corruption). Their frames cannot be replayed over the gap, so they
	// are renamed aside with a ".quarantined" suffix for forensics rather
	// than deleted. Zero for the expected torn-final-frame case.
	QuarantinedSegments int
}

// Recover rebuilds a store from a log directory: the checkpoint snapshot
// (when present) plus a replay of every remaining segment in order. shards
// is the stripe count of the rebuilt store (values below 1 mean the
// default), so a recovered server keeps its configured striping.
//
// Replay stops at the first torn or corrupt frame and keeps everything
// before it; it never panics on damaged input. A detected tear is also
// repaired on disk — the damaged segment is truncated at the tear (or
// removed when nothing useful remains) and later segments are deleted — so
// the log ends cleanly and frames appended by a reopened Log are never
// stranded behind old damage at the next recovery. A missing or empty
// directory recovers to an empty store. After recovering, open the log with
// Open (which starts a fresh segment) and attach it to the returned store.
func Recover(dir string, shards int) (*store.Store, RecoverStats, error) {
	var stats RecoverStats
	if _, err := os.Stat(dir); errors.Is(err, fs.ErrNotExist) {
		return store.NewSharded(shards), stats, nil
	}
	var st *store.Store
	snapPath := filepath.Join(dir, SnapshotFile)
	if _, err := os.Stat(snapPath); err == nil {
		st, err = store.LoadSharded(snapPath, shards)
		if err != nil {
			return nil, stats, fmt.Errorf("wal: snapshot: %w", err)
		}
		stats.SnapshotLoaded = true
	} else {
		st = store.NewSharded(shards)
	}
	if err := ReplayInto(dir, st, &stats); err != nil {
		return nil, stats, err
	}
	return st, stats, nil
}

// ReplayInto replays the directory's log segments, in order, into an
// existing store, accumulating into stats. It is the log-tail half of
// Recover: the segment store (internal/segment) rebuilds its base from
// binary segments first and then calls this for the frames committed after
// the last freeze. The same torn-tail rules apply — replay stops at the
// first damaged frame, keeps the prefix and repairs the log on disk.
func ReplayInto(dir string, st *store.Store, stats *RecoverStats) error {
	if _, err := os.Stat(dir); errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	segs, err := listSegments(dir)
	if err != nil {
		return err
	}
	for i, seg := range segs {
		stats.Segments++
		applied, tornAt, err := replaySegment(seg.path, st)
		stats.FramesApplied += applied
		if err != nil {
			return err
		}
		if tornAt >= 0 {
			// The log's physical prefix ends here; frames in later segments
			// were written after the damaged one and must not be replayed
			// over the gap. Repair the log so it ends cleanly at the tear.
			stats.Torn = true
			stats.TornSegment = filepath.Base(seg.path)
			stats.TornOffset = tornAt
			stats.QuarantinedSegments = len(segs) - i - 1
			if err := repairTear(seg, tornAt, segs[i+1:]); err != nil {
				return err
			}
			syncDir(dir)
			break
		}
	}
	return nil
}

// repairTear makes the log end exactly where replay stopped: the damaged
// segment is truncated at the tear (removed entirely when even its header
// is damaged — its replayed prefix, if any, stays in the live log), and
// segments behind the tear are renamed aside with a ".quarantined" suffix.
// Those later segments hold committed frames a mid-log tear has stranded —
// they cannot be replayed over the gap, but they are evidence of disk
// corruption worth keeping, not state to silently destroy.
func repairTear(seg segmentInfo, tornAt int64, later []segmentInfo) error {
	if tornAt <= headerSize {
		if err := os.Remove(seg.path); err != nil {
			return fmt.Errorf("wal: repair: %w", err)
		}
	} else if err := os.Truncate(seg.path, tornAt); err != nil {
		return fmt.Errorf("wal: repair: %w", err)
	}
	for _, s := range later {
		if err := os.Rename(s.path, s.path+".quarantined"); err != nil {
			return fmt.Errorf("wal: repair: %w", err)
		}
	}
	return nil
}

// replaySegment applies one segment's frames to the store. It returns the
// number of frames applied and, when the segment ends in a torn or corrupt
// frame, the byte offset of the damage (-1 for a clean end). The returned
// error reports apply failures only — physical damage is a normal condition
// expressed through the offset.
func replaySegment(path string, st *store.Store) (applied int, tornAt int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, -1, fmt.Errorf("wal: open segment: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)

	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, 0, nil // truncated header: whole segment is torn
	}
	if [4]byte(hdr[0:4]) != segmentMagic || leU32(hdr[4:8]) != formatVersion {
		return 0, 0, nil // damaged header
	}
	offset := int64(headerSize)
	var frame [frameHeaderSize]byte
	var payload []byte
	interned := make(map[string]string)
	for {
		if _, err := io.ReadFull(br, frame[:]); err != nil {
			if err == io.EOF {
				return applied, -1, nil // clean end of segment
			}
			return applied, offset, nil // torn frame header
		}
		n := leU32(frame[0:4])
		want := leU32(frame[4:8])
		if n > maxFrame {
			return applied, offset, nil
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			return applied, offset, nil // torn payload
		}
		if frameCRC(payload) != want {
			return applied, offset, nil
		}
		m, err := decodeMutation(payload, interned)
		if err != nil {
			return applied, offset, nil // CRC-valid but undecodable: corrupt
		}
		if err := st.Apply(m); err != nil {
			return applied, -1, fmt.Errorf("wal: apply %s frame at %d: %w", filepath.Base(path), offset, err)
		}
		applied++
		offset += frameHeaderSize + int64(n)
	}
}

func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
