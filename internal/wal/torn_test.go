package wal

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"semitri/internal/geo"
	"semitri/internal/gps"
	"semitri/internal/store"
)

// TestTornTailProperty is the crash-damage property test: it builds a
// multi-segment log whose i-th frame appends the record with sequence
// number i, then repeatedly truncates a copy of the log at a random byte
// offset or flips a random byte, recovers, and asserts that replay kept
// exactly the fully committed frames before the damage, dropped only the
// tail behind it, and never panicked.
func TestTornTailProperty(t *testing.T) {
	const frames = 120
	src := t.TempDir()
	l, err := Open(Options{Dir: src, FlushInterval: time.Hour, SegmentSize: 2048, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	live := store.New()
	live.AttachLog(l)
	for i := 0; i < frames; i++ {
		live.PutRecords([]gps.Record{{ObjectID: "obj", Position: geo.Pt(float64(i), 0), Time: ts(i)}})
		// Per-frame sync keeps segment boundaries between frames, so every
		// frame lands whole in exactly one segment.
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("want a multi-segment log, got %d segments", len(segs))
	}

	// Map every byte of the log to the number of frames that replay intact
	// when that byte is the first damaged one: all frames of earlier
	// segments plus the frames of this segment that end strictly before it.
	type segLayout struct {
		path   string
		size   int64
		bounds []int64 // end offset of each frame in the segment
		before int     // frames in earlier segments
	}
	var layout []segLayout
	total := 0
	for _, seg := range segs {
		sl := segLayout{path: seg.path, before: total}
		data, err := os.ReadFile(seg.path)
		if err != nil {
			t.Fatal(err)
		}
		sl.size = int64(len(data))
		off := int64(headerSize)
		for off+frameHeaderSize <= sl.size {
			n := int64(leU32(data[off : off+4]))
			end := off + frameHeaderSize + n
			if end > sl.size {
				break
			}
			sl.bounds = append(sl.bounds, end)
			off = end
		}
		total += len(sl.bounds)
		layout = append(layout, sl)
	}
	if total != frames {
		t.Fatalf("layout scan found %d frames, wrote %d", total, frames)
	}

	// expectFrames returns the surviving frame count when the first damaged
	// byte of segment si sits at offset off (header bytes damage the whole
	// segment).
	expectFrames := func(si int, off int64) int {
		sl := layout[si]
		n := sl.before
		for _, end := range sl.bounds {
			if end <= off {
				n++
			} else {
				break
			}
		}
		if off < headerSize {
			n = sl.before
		}
		return n
	}

	check := func(t *testing.T, dir string, want int, mustTorn bool) {
		rec, stats, err := Recover(dir, 0)
		if err != nil {
			t.Fatalf("recover: %v", err)
		}
		recs := rec.Records("obj")
		if len(recs) != want {
			t.Fatalf("recovered %d records, want %d (stats %+v)", len(recs), want, stats)
		}
		for i, r := range recs {
			if r.Position.X != float64(i) {
				t.Fatalf("record %d out of sequence: %+v", i, r)
			}
		}
		if mustTorn && !stats.Torn {
			t.Fatalf("damage dropped frames but stats.Torn is false: %+v", stats)
		}
	}

	// frameBoundary reports whether offset off of segment si is the clean
	// end of a frame (or the segment header): a truncation there leaves a
	// cleanly-ended segment with no physically detectable tear.
	frameBoundary := func(si int, off int64) bool {
		if off == headerSize || off == layout[si].size {
			return true
		}
		for _, end := range layout[si].bounds {
			if end == off {
				return true
			}
		}
		return false
	}

	copyLog := func(t *testing.T) string {
		dir := t.TempDir()
		for _, sl := range layout {
			data, err := os.ReadFile(sl.path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, filepath.Base(sl.path)), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return dir
	}

	rng := rand.New(rand.NewSource(7))
	t.Run("truncate", func(t *testing.T) {
		for trial := 0; trial < 60; trial++ {
			si := rng.Intn(len(layout))
			cut := rng.Int63n(layout[si].size + 1)
			dir := copyLog(t)
			target := filepath.Join(dir, filepath.Base(layout[si].path))
			if err := os.Truncate(target, cut); err != nil {
				t.Fatal(err)
			}
			// Truncation keeps the frames that still end within the file;
			// anything in later segments is behind the tear and dropped.
			for _, sl := range layout[si+1:] {
				if err := os.Remove(filepath.Join(dir, filepath.Base(sl.path))); err != nil {
					t.Fatal(err)
				}
			}
			check(t, dir, expectFrames(si, cut), !frameBoundary(si, cut))
		}
	})
	t.Run("bitflip", func(t *testing.T) {
		for trial := 0; trial < 60; trial++ {
			si := rng.Intn(len(layout))
			dir := copyLog(t)
			target := filepath.Join(dir, filepath.Base(layout[si].path))
			data, err := os.ReadFile(target)
			if err != nil {
				t.Fatal(err)
			}
			off := rng.Intn(len(data))
			data[off] ^= byte(1 + rng.Intn(255))
			if err := os.WriteFile(target, data, 0o644); err != nil {
				t.Fatal(err)
			}
			// A flipped byte inside frame j stops replay at j; every frame
			// before it (in this and earlier segments) survives, everything
			// after is dropped.
			check(t, dir, expectFrames(si, int64(off)), true)
		}
	})
	t.Run("clean", func(t *testing.T) {
		check(t, copyLog(t), frames, false)
	})
}

// TestTornFinalFrameMidFlush simulates the canonical crash: the last frame
// of the last segment is half-written. Recovery must keep everything else.
func TestTornFinalFrameMidFlush(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, FlushInterval: time.Hour, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	live := store.New()
	live.AttachLog(l)
	for i := 0; i < 10; i++ {
		live.PutRecords([]gps.Record{{ObjectID: "obj", Position: geo.Pt(float64(i), 0), Time: ts(i)}})
		// Seal each record as its own frame (the writer otherwise coalesces
		// contiguous appends), so the torn tail is exactly one record.
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := segs[len(segs)-1].path
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	rec, stats, err := Recover(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Torn {
		t.Fatalf("expected torn stats, got %+v", stats)
	}
	if got := len(rec.Records("obj")); got != 9 {
		t.Fatalf("recovered %d records, want 9", got)
	}
	// Recovery repaired the tear, so a reopened log's fresh segment is not
	// stranded behind old damage: re-appending the lost record and
	// recovering again must see all 10.
	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rec.AttachLog(l2)
	rec.PutRecords([]gps.Record{{ObjectID: "obj", Position: geo.Pt(9, 0), Time: ts(9)}})
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	rec2, stats2, err := Recover(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Torn {
		t.Fatalf("second recovery still sees a tear: %+v", stats2)
	}
	if got := len(rec2.Records("obj")); got != 10 {
		t.Fatalf("post-repair recovery got %d records, want 10", got)
	}
}
