package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"time"

	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/geo"
	"semitri/internal/gps"
	"semitri/internal/store"
)

// crcTable is the frame checksum polynomial: Castagnoli, which Go computes
// with the SSE4.2/ARMv8 CRC instructions — an order of magnitude faster
// than the software IEEE table on the per-record hot path.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frameCRC is the checksum stored in every frame header.
func frameCRC(payload []byte) uint32 { return crc32.Checksum(payload, crcTable) }

// The mutation codec: a compact little-endian binary encoding of
// store.Mutation, hand-rolled so the streaming hot path pays a handful of
// byte appends per record instead of a reflective marshal. Strings are
// varint-length-prefixed, counts and non-negative integers are unsigned
// LEB128 varints (WAL volume directly prices the fsync a group commit
// pays, so every elided byte matters), floats are raw IEEE-754 bits (exact
// round trip, including ±Inf from empty rects), times are a presence byte
// plus varint Unix seconds and nanoseconds (restored in UTC — instants
// round-trip exactly, zone names are not preserved).
//
// Decoding never trusts the input: every read is bounds-checked, element
// counts are capped by the bytes remaining, and a payload that does not
// consume exactly its frame is corrupt. The torn-tail property test feeds
// random truncations and bit flips through this path.

// errCorrupt reports a payload that is not a valid mutation encoding.
var errCorrupt = errors.New("wal: corrupt frame payload")

type encoder struct{ b []byte }

func (e *encoder) reset()        { e.b = e.b[:0] }
func (e *encoder) u8(v byte)     { e.b = append(e.b, v) }
func (e *encoder) u64(v uint64)  { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *encoder) f64(v float64) { e.u64(math.Float64bits(v)) }

// uv appends an unsigned LEB128 varint.
func (e *encoder) uv(v uint64) { e.b = binary.AppendUvarint(e.b, v) }

// iv appends a zigzag-encoded signed varint.
func (e *encoder) iv(v int64) { e.b = binary.AppendVarint(e.b, v) }

func (e *encoder) str(s string) {
	e.uv(uint64(len(s)))
	e.b = append(e.b, s...)
}

func (e *encoder) time(t time.Time) {
	if t.IsZero() {
		e.u8(0)
		return
	}
	e.u8(1)
	e.iv(t.Unix())
	e.uv(uint64(t.Nanosecond()))
}

func (e *encoder) point(p geo.Point) { e.f64(p.X); e.f64(p.Y) }
func (e *encoder) rect(r geo.Rect)   { e.point(r.Min); e.point(r.Max) }

// Record time-encoding flags: batches delta-encode timestamps against the
// previous record (GPS fixes arrive seconds apart, so the delta is one or
// two varint bytes against eight-plus for an absolute stamp).
const (
	recTimeZero  = 0 // zero time
	recTimeAbs   = 1 // absolute: varint sec + varint nsec
	recTimeDelta = 2 // varint sec delta from previous record + varint nsec
)

// records encodes a record batch belonging to owner. Records virtually
// always carry the owning object's id, so it is elided per record (a flag
// byte) and only stored for the odd record that differs; timestamps after
// the first encode as deltas.
func (e *encoder) records(owner string, recs []gps.Record) {
	e.uv(uint64(len(recs)))
	var prevSec int64
	havePrev := false
	for _, r := range recs {
		if r.ObjectID == owner {
			e.u8(0)
		} else {
			e.u8(1)
			e.str(r.ObjectID)
		}
		e.point(r.Position)
		switch {
		case r.Time.IsZero():
			e.u8(recTimeZero)
		case havePrev:
			sec := r.Time.Unix()
			e.u8(recTimeDelta)
			e.iv(sec - prevSec)
			e.uv(uint64(r.Time.Nanosecond()))
			prevSec = sec
		default:
			e.u8(recTimeAbs)
			e.iv(r.Time.Unix())
			e.uv(uint64(r.Time.Nanosecond()))
			prevSec, havePrev = r.Time.Unix(), true
		}
	}
}

func (e *encoder) episode(ep *episode.Episode) {
	e.str(ep.TrajectoryID)
	e.str(ep.ObjectID)
	e.u8(byte(ep.Kind))
	e.uv(uint64(ep.StartIdx))
	e.uv(uint64(ep.EndIdx))
	e.time(ep.Start)
	e.time(ep.End)
	e.point(ep.Center)
	e.rect(ep.Bounds)
	e.f64(ep.AvgSpeed)
	e.f64(ep.MaxSpeed)
	e.f64(ep.Distance)
	e.uv(uint64(ep.RecordCount))
}

func (e *encoder) episodes(eps []*episode.Episode) {
	e.uv(uint64(len(eps)))
	for _, ep := range eps {
		e.episode(ep)
	}
}

func (e *encoder) place(p *core.Place) {
	if p == nil {
		e.u8(0)
		return
	}
	e.u8(1)
	e.str(p.ID)
	e.u8(byte(p.Kind))
	e.str(p.Name)
	e.str(p.Category)
	e.rect(p.Extent)
}

func (e *encoder) annotations(anns []core.Annotation) {
	e.uv(uint64(len(anns)))
	for _, a := range anns {
		e.str(a.Key)
		e.str(a.Value)
		e.f64(a.Confidence)
		e.str(a.Source)
	}
}

func (e *encoder) tuples(tuples []*core.EpisodeTuple) {
	e.uv(uint64(len(tuples)))
	for _, tp := range tuples {
		e.u8(byte(tp.Kind))
		e.place(tp.Place)
		e.time(tp.TimeIn)
		e.time(tp.TimeOut)
		e.annotations(tp.Annotations.All())
		if tp.Episode == nil {
			e.u8(0)
		} else {
			e.u8(1)
			e.episode(tp.Episode)
		}
	}
}

// encodeMutation appends the payload encoding of m to e.
func encodeMutation(e *encoder, m store.Mutation) {
	e.u8(byte(m.Op))
	e.str(m.ObjectID)
	e.str(m.TrajectoryID)
	e.str(m.Interpretation)
	e.uv(uint64(m.Start))
	switch m.Op {
	case store.MutPutRecords:
		e.records(m.ObjectID, m.Records)
	case store.MutPutTrajectory:
		e.str(m.Trajectory.ID)
		e.str(m.Trajectory.ObjectID)
		e.records(m.Trajectory.ObjectID, m.Trajectory.Records)
	case store.MutPutEpisodes, store.MutAppendEpisodes:
		e.episodes(m.Episodes)
	case store.MutPutStructured, store.MutAppendTuples:
		e.tuples(m.Tuples)
	case store.MutMergeTuple:
		e.place(m.Place)
		e.annotations(m.Annotations)
	}
}

type decoder struct {
	b   []byte
	off int
	err error
	// interned deduplicates decoded strings across frames (see strShared).
	// Nil disables interning.
	interned map[string]string
}

// maxInterned bounds the intern table so a log full of unique strings (or a
// crafted one) cannot grow it without limit; once full, later misses simply
// allocate as before.
const maxInterned = 1 << 16

func (d *decoder) fail() {
	if d.err == nil {
		d.err = errCorrupt
	}
}

func (d *decoder) remaining() int { return len(d.b) - d.off }

func (d *decoder) u8() byte {
	if d.err != nil || d.remaining() < 1 {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || d.remaining() < 8 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

// uv reads an unsigned LEB128 varint.
func (d *decoder) uv() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

// iv reads a zigzag-encoded signed varint.
func (d *decoder) iv() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) str() string {
	n := int(d.uv())
	if d.err != nil || n < 0 || n > d.remaining() {
		d.fail()
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

// strShared decodes a string through the intern table: the many repeats of
// low-cardinality strings in a log — object and trajectory ids,
// interpretation names, annotation keys and sources, place metadata — decode
// to one shared backing string instead of one heap copy per frame. The
// map[string(bytes)] probe compiles to a no-allocation lookup; only a miss
// pays for the copy.
func (d *decoder) strShared() string {
	n := int(d.uv())
	if d.err != nil || n < 0 || n > d.remaining() {
		d.fail()
		return ""
	}
	b := d.b[d.off : d.off+n]
	d.off += n
	if s, ok := d.interned[string(b)]; ok {
		return s
	}
	s := string(b)
	if d.interned != nil && len(d.interned) < maxInterned {
		d.interned[s] = s
	}
	return s
}

// count reads an element count and rejects values that could not possibly
// fit in the remaining bytes (elemMin is a conservative lower bound on one
// element's encoding), bounding allocations on corrupt input. The division
// form avoids the n*elemMin overflow a crafted huge count would exploit.
func (d *decoder) count(elemMin int) int {
	n := int(d.uv())
	if d.err != nil || n < 0 || n > d.remaining()/elemMin {
		d.fail()
		return 0
	}
	return n
}

func (d *decoder) time() time.Time {
	if d.u8() == 0 {
		return time.Time{}
	}
	sec := d.iv()
	nsec := d.uv()
	if d.err != nil || nsec >= 1e9 {
		d.fail()
		return time.Time{}
	}
	return time.Unix(sec, int64(nsec)).UTC()
}

func (d *decoder) point() geo.Point { return geo.Point{X: d.f64(), Y: d.f64()} }
func (d *decoder) rect() geo.Rect   { return geo.Rect{Min: d.point(), Max: d.point()} }

func (d *decoder) records(owner string) []gps.Record {
	n := d.count(1 + 16 + 1)
	if d.err != nil || n == 0 {
		return nil
	}
	recs := make([]gps.Record, 0, n)
	var prevSec int64
	havePrev := false
	for i := 0; i < n && d.err == nil; i++ {
		obj := owner
		if d.u8() == 1 {
			obj = d.str()
		}
		pos := d.point()
		var t time.Time
		switch d.u8() {
		case recTimeZero:
		case recTimeAbs:
			sec := d.iv()
			nsec := d.uv()
			if nsec >= 1e9 {
				d.fail()
				break
			}
			t = time.Unix(sec, int64(nsec)).UTC()
			prevSec, havePrev = sec, true
		case recTimeDelta:
			if !havePrev {
				d.fail()
				break
			}
			sec := prevSec + d.iv()
			nsec := d.uv()
			if nsec >= 1e9 {
				d.fail()
				break
			}
			t = time.Unix(sec, int64(nsec)).UTC()
			prevSec = sec
		default:
			d.fail()
		}
		if d.err != nil {
			break
		}
		recs = append(recs, gps.Record{ObjectID: obj, Position: pos, Time: t})
	}
	return recs
}

func (d *decoder) episode() *episode.Episode {
	ep := &episode.Episode{
		TrajectoryID: d.str(),
		ObjectID:     d.str(),
		Kind:         episode.Kind(d.u8()),
		StartIdx:     int(d.uv()),
		EndIdx:       int(d.uv()),
		Start:        d.time(),
		End:          d.time(),
		Center:       d.point(),
		Bounds:       d.rect(),
		AvgSpeed:     d.f64(),
		MaxSpeed:     d.f64(),
		Distance:     d.f64(),
		RecordCount:  int(d.uv()),
	}
	if ep.Kind != episode.Stop && ep.Kind != episode.Move {
		d.fail()
	}
	return ep
}

func (d *decoder) episodes() []*episode.Episode {
	n := d.count(8 + 8 + 1 + 16 + 2)
	if d.err != nil || n == 0 {
		return nil
	}
	eps := make([]*episode.Episode, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		eps = append(eps, d.episode())
	}
	return eps
}

func (d *decoder) place() *core.Place {
	if d.u8() == 0 {
		return nil
	}
	p := &core.Place{
		ID:       d.strShared(),
		Kind:     core.PlaceKind(d.u8()),
		Name:     d.strShared(),
		Category: d.strShared(),
		Extent:   d.rect(),
	}
	if p.Kind != core.RegionPlace && p.Kind != core.LinePlace && p.Kind != core.PointPlace {
		d.fail()
	}
	return p
}

func (d *decoder) annotations() []core.Annotation {
	n := d.count(4 + 4 + 8 + 4)
	if d.err != nil || n == 0 {
		return nil
	}
	anns := make([]core.Annotation, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		anns = append(anns, core.Annotation{Key: d.strShared(), Value: d.strShared(), Confidence: d.f64(), Source: d.strShared()})
	}
	return anns
}

func (d *decoder) tuples() []*core.EpisodeTuple {
	n := d.count(1 + 1 + 2 + 4 + 1)
	if d.err != nil || n == 0 {
		return nil
	}
	tuples := make([]*core.EpisodeTuple, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		tp := &core.EpisodeTuple{
			Kind:    episode.Kind(d.u8()),
			Place:   d.place(),
			TimeIn:  d.time(),
			TimeOut: d.time(),
		}
		if tp.Kind != episode.Stop && tp.Kind != episode.Move {
			d.fail()
			break
		}
		for _, a := range d.annotations() {
			tp.Annotations.Add(a)
		}
		if d.u8() == 1 {
			tp.Episode = d.episode()
		}
		tuples = append(tuples, tp)
	}
	return tuples
}

// decodeMutation decodes one frame payload. Any structural problem —
// truncated field, impossible count, unknown op, trailing bytes — returns
// errCorrupt; the function never panics on arbitrary input. interned, when
// non-nil, is a string table shared across calls (one per replayed segment):
// ids, interpretation names and annotation keys repeat in nearly every
// frame, and interning them keeps recovery's allocation volume proportional
// to distinct strings, not to frames.
func decodeMutation(payload []byte, interned map[string]string) (store.Mutation, error) {
	d := &decoder{b: payload, interned: interned}
	m := store.Mutation{
		Op:             store.MutationOp(d.u8()),
		ObjectID:       d.strShared(),
		TrajectoryID:   d.strShared(),
		Interpretation: d.strShared(),
	}
	start := d.uv()
	if start > uint64(math.MaxInt32)<<16 {
		d.fail()
	}
	m.Start = int(start)
	switch m.Op {
	case store.MutPutRecords:
		m.Records = d.records(m.ObjectID)
	case store.MutPutTrajectory:
		t := &gps.RawTrajectory{ID: d.str(), ObjectID: d.str()}
		t.Records = d.records(t.ObjectID)
		m.Trajectory = t
	case store.MutPutEpisodes, store.MutAppendEpisodes:
		m.Episodes = d.episodes()
	case store.MutPutStructured, store.MutAppendTuples:
		m.Tuples = d.tuples()
	case store.MutMergeTuple:
		m.Place = d.place()
		m.Annotations = d.annotations()
	default:
		d.fail()
	}
	if d.err == nil && d.off != len(d.b) {
		d.fail()
	}
	if d.err != nil {
		return store.Mutation{}, d.err
	}
	return m, nil
}
