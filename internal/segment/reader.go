package segment

import (
	"encoding/binary"
	"sync"

	"semitri/internal/obs"
	"semitri/internal/store"
	"semitri/internal/wal"
)

// Reader is one open, validated segment file. Open verifies the whole file —
// header, trailer, footer CRC and every data frame's CRC — so a torn or
// bit-flipped segment is rejected up front and later decode calls operate on
// known-good bytes. Decoding itself stays lazy: runs are materialised one
// frame at a time, on demand, through a pooled cursor.
type Reader struct {
	path string
	blob blob
	foot *Footer
}

// cursor is the pooled per-call decode state: the pread frame buffer and the
// decoder's string-interning table. Pooling keeps steady-state cold reads
// allocation-lean — repeated ids and annotation keys collapse onto shared
// strings instead of reallocating per frame.
type cursor struct {
	buf      []byte
	interned map[string]string
}

var cursorPool = sync.Pool{New: func() any {
	return &cursor{interned: make(map[string]string)}
}}

func getCursor() *cursor  { return cursorPool.Get().(*cursor) }
func putCursor(c *cursor) { cursorPool.Put(c) }

// Open opens and fully validates a segment file.
func Open(path string) (*Reader, error) {
	b, err := openBlob(path)
	if err != nil {
		return nil, err
	}
	r := &Reader{path: path, blob: b}
	if err := r.validate(); err != nil {
		b.close()
		return nil, err
	}
	return r, nil
}

// validate checks the file end to end and decodes the footer.
func (r *Reader) validate() error {
	sz := r.blob.size()
	if sz < headerSize+wal.FrameHeaderSize+trailerSize {
		return corruptf(r.path, "file too short (%d bytes)", sz)
	}
	cur := getCursor()
	defer putCursor(cur)

	// Header and trailer first: both are fixed-size probes.
	hdr, err := r.readAt(0, headerSize, cur)
	if err != nil {
		return corruptf(r.path, "unreadable header")
	}
	if [4]byte(hdr[0:4]) != fileMagic || binary.LittleEndian.Uint32(hdr[4:8]) != formatVersion {
		return corruptf(r.path, "bad magic or version")
	}
	tr, err := r.readAt(sz-trailerSize, trailerSize, cur)
	if err != nil {
		return corruptf(r.path, "unreadable trailer")
	}
	if [4]byte(tr[4:8]) != trailerMagic {
		return corruptf(r.path, "bad trailer magic")
	}
	footSize := int64(binary.LittleEndian.Uint32(tr[0:4]))
	footOff := sz - trailerSize - footSize
	if footSize < wal.FrameHeaderSize || footOff < headerSize {
		return corruptf(r.path, "impossible footer size %d", footSize)
	}
	payload, n, err := r.blob.frame(footOff, &cur.buf)
	if err != nil || int64(n) != footSize {
		return corruptf(r.path, "footer frame checksum mismatch")
	}
	foot, err := decodeFooter(payload)
	if err != nil {
		return corruptf(r.path, "%v", err)
	}

	// Scrub every data frame's CRC and check the directory lines up with the
	// physical frames one to one.
	off := int64(headerSize)
	for i := range foot.Runs {
		if foot.Runs[i].Off != off {
			return corruptf(r.path, "run %d offset %d, frame found at %d", i, foot.Runs[i].Off, off)
		}
		_, n, err := r.blob.frame(off, &cur.buf)
		if err != nil {
			return corruptf(r.path, "data frame at %d fails checksum", off)
		}
		off += int64(n)
	}
	if off != footOff {
		return corruptf(r.path, "trailing bytes between data frames and footer")
	}
	r.foot = foot
	return nil
}

// readAt returns n raw bytes at off, for the fixed header/trailer probes.
func (r *Reader) readAt(off, n int64, cur *cursor) ([]byte, error) {
	return r.blob.bytes(off, n, &cur.buf)
}

// Footer exposes the decoded footer (summary + run directory). Immutable
// after Open.
func (r *Reader) Footer() *Footer { return r.foot }

// mutationAt decodes the run frame at off. The returned mutation owns its
// memory (the decoder copies strings and payloads out of the frame buffer).
func (r *Reader) mutationAt(off int64, cur *cursor) (store.Mutation, error) {
	payload, n, err := r.blob.frame(off, &cur.buf)
	if err != nil {
		return store.Mutation{}, err
	}
	obs.SegmentColdReads.Inc()
	obs.SegmentColdBytes.Add(int64(n))
	return wal.DecodeMutation(payload, cur.interned)
}

// Close releases the mapping or file handle.
func (r *Reader) Close() error { return r.blob.close() }
