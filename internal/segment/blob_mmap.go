//go:build unix && !semitri_nommap

package segment

import (
	"os"
	"syscall"

	"semitri/internal/wal"
)

// blob abstracts how a sealed segment's bytes are read: a read-only memory
// map on unix (cold data occupies page cache, not Go heap, and unread runs
// cost nothing), or positional reads everywhere else (and under the
// semitri_nommap build tag, which forces the fallback onto unix for testing).
type blob interface {
	// frame parses the frame starting at off. The returned payload aliases
	// either the mapping or buf — valid until the next frame call with the
	// same buf or close.
	frame(off int64, buf *[]byte) (payload []byte, size int, err error)
	// bytes returns n raw bytes at off (header/trailer probes).
	bytes(off, n int64, buf *[]byte) ([]byte, error)
	size() int64
	close() error
}

// mmapBlob serves frames straight out of a read-only mapping.
type mmapBlob struct {
	data []byte
}

// openBlob maps the file read-only. The descriptor is closed immediately —
// the mapping outlives it.
func openBlob(path string) (blob, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if fi.Size() == 0 {
		return &mmapBlob{}, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(fi.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, err
	}
	return &mmapBlob{data: data}, nil
}

func (m *mmapBlob) frame(off int64, _ *[]byte) ([]byte, int, error) {
	if off < 0 || off > int64(len(m.data)) {
		return nil, 0, wal.ErrFrame
	}
	return wal.ParseFrame(m.data[off:])
}

func (m *mmapBlob) bytes(off, n int64, _ *[]byte) ([]byte, error) {
	if off < 0 || n < 0 || off+n > int64(len(m.data)) {
		return nil, wal.ErrFrame
	}
	return m.data[off : off+n], nil
}

func (m *mmapBlob) size() int64 { return int64(len(m.data)) }

func (m *mmapBlob) close() error {
	if m.data == nil {
		return nil
	}
	data := m.data
	m.data = nil
	return syscall.Munmap(data)
}
