package segment

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"semitri/internal/core"
	"semitri/internal/store"
	"semitri/internal/wal"
)

// RecoverStats summarises one segment-mode recovery.
type RecoverStats struct {
	// Segments is the number of segment files folded into the base.
	Segments int
	// SnapshotLoaded reports that no segments existed and a JSON snapshot
	// (from an earlier json-storage run) served as the base instead.
	SnapshotLoaded bool
	// WAL carries the log-tail replay stats.
	WAL wal.RecoverStats
}

// Recover rebuilds a tiered store from a directory of segment files plus the
// WAL tail committed after the last freeze. The segment footers fold —
// oldest to newest, later runs shadowing earlier ones positionally — into
// the frozen base; wal.ReplayInto then replays the tail over it. Runs from a
// freeze that never committed (a crash between segment write and eviction)
// fold in too: the WAL retains every frame that would have been truncated,
// and idempotent positional replay plus replace-supersede semantics converge
// on the exact pre-crash state.
//
// A segment file that fails validation is disk corruption, not a crash
// artifact (segments are written temp-file-then-rename, fsynced): recovery
// returns a clean error and never panics. With no segments at all, a
// snapshot.json left by an earlier json-storage run is loaded as the base,
// so switching storage modes migrates the data forward.
func Recover(dir string, shards int) (*store.Store, *Tier, RecoverStats, error) {
	var stats RecoverStats
	t := newTier(dir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, stats, err
	}
	paths, maxSeq, err := listSegmentFiles(dir)
	if err != nil {
		return nil, nil, stats, err
	}
	t.nextSeq = maxSeq + 1

	var st *store.Store
	snapPath := filepath.Join(dir, wal.SnapshotFile)
	if len(paths) == 0 {
		if _, err := os.Stat(snapPath); err == nil {
			st, err = store.LoadSharded(snapPath, shards)
			if err != nil {
				t.Close()
				return nil, nil, stats, fmt.Errorf("segment: snapshot base: %w", err)
			}
			stats.SnapshotLoaded = true
		} else {
			st = store.NewSharded(shards)
		}
		if err := st.InstallColdTier(t, store.ColdInstall{}); err != nil {
			t.Close()
			return nil, nil, stats, err
		}
	} else {
		for _, p := range paths {
			r, err := Open(p)
			if err != nil {
				t.Close()
				return nil, nil, stats, err
			}
			t.segs = append(t.segs, r)
			t.scan = append(t.scan, nil)
			stats.Segments++
		}
		inst, err := t.fold()
		if err != nil {
			t.Close()
			return nil, nil, stats, err
		}
		st = store.NewSharded(shards)
		if err := st.InstallColdTier(t, inst); err != nil {
			t.Close()
			return nil, nil, stats, err
		}
		// Segments are the base; a stale JSON snapshot must not shadow them
		// if the deployment ever flips back to json storage.
		os.Remove(snapPath)
	}

	if err := wal.ReplayInto(dir, st, &stats.WAL); err != nil {
		t.Close()
		return nil, nil, stats, err
	}
	return st, t, stats, nil
}

// HasSegments reports whether dir holds any segment files — the guard the
// json storage mode uses to refuse a directory whose base is binary
// segments (which a JSON snapshot load would silently ignore).
func HasSegments(dir string) bool {
	paths, _, err := listSegmentFiles(dir)
	return err == nil && len(paths) > 0
}

// listSegmentFiles returns the directory's segment files sorted by sequence
// number, deleting leftover temp files from an interrupted freeze along the
// way.
func listSegmentFiles(dir string) (paths []string, maxSeq uint64, err error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("segment: read dir: %w", err)
	}
	type segFile struct {
		seq  uint64
		path string
	}
	var segs []segFile
	for _, ent := range entries {
		name := ent.Name()
		if strings.HasPrefix(name, filePrefix) && strings.HasSuffix(name, fileSuffix+".tmp") {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if !strings.HasPrefix(name, filePrefix) || !strings.HasSuffix(name, fileSuffix) {
			continue
		}
		numeric := strings.TrimSuffix(strings.TrimPrefix(name, filePrefix), fileSuffix)
		seq, err := strconv.ParseUint(numeric, 10, 64)
		if err != nil {
			continue // not a segment of ours
		}
		segs = append(segs, segFile{seq: seq, path: filepath.Join(dir, name)})
		if seq > maxSeq {
			maxSeq = seq
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	for _, s := range segs {
		paths = append(paths, s.path)
	}
	return paths, maxSeq, nil
}

// fold replays the open segments' footers, oldest to newest, into the tier's
// run maps and scan lists, and derives the ColdInstall the store needs. Put
// runs reset a key's coverage, positional appends extend it and shadow any
// dead run left by a freeze that never committed (same start, re-emitted by
// the next freeze). Merge runs queue up and apply onto decoded base tuples
// at the end, in segment order.
func (t *Tier) fold() (store.ColdInstall, error) {
	inst := store.ColdInstall{
		Records:      map[string]int{},
		Episodes:     map[string]int{},
		EpisodeStops: map[string]int{},
	}
	tupObj := map[tierKey]string{}
	tupCount := map[tierKey]int{}
	var trajOrder []string
	trajSeen := map[string]bool{}
	merges := map[tierKey][]mergeRef{}

	for segIdx, r := range t.segs {
		for ent := range r.foot.Runs {
			meta := &r.foot.Runs[ent]
			rr := runRef{seg: segIdx, ent: ent}
			switch meta.Op {
			case store.MutPutRecords:
				t.recRuns[meta.Object] = shadowAppend(t.recRuns[meta.Object], rr, meta.Start, t)
				inst.Records[meta.Object] = meta.Start + meta.Count
			case store.MutPutTrajectory:
				t.trajRuns[meta.Traj] = rr
				if !trajSeen[meta.Traj] {
					trajSeen[meta.Traj] = true
					trajOrder = append(trajOrder, meta.Traj)
				}
			case store.MutPutEpisodes:
				t.epRuns[meta.Traj] = []runRef{rr}
				inst.Episodes[meta.Traj] = meta.Count
			case store.MutAppendEpisodes:
				t.epRuns[meta.Traj] = shadowAppend(t.epRuns[meta.Traj], rr, meta.Start, t)
				inst.Episodes[meta.Traj] = meta.Start + meta.Count
			case store.MutPutStructured:
				k := tierKey{meta.Traj, meta.Interp}
				t.dropScanRuns(t.tupRuns[k])
				t.tupRuns[k] = []runRef{rr}
				t.scan[segIdx] = append(t.scan[segIdx], ent)
				tupObj[k] = meta.Object
				tupCount[k] = meta.Count
				delete(merges, k) // a replace supersedes earlier merges
			case store.MutAppendTuples:
				k := tierKey{meta.Traj, meta.Interp}
				kept, dropped := splitShadowed(t.tupRuns[k], meta.Start, t)
				t.dropScanRuns(dropped)
				t.tupRuns[k] = append(kept, rr)
				t.scan[segIdx] = append(t.scan[segIdx], ent)
				tupObj[k] = meta.Object
				tupCount[k] = meta.Start + meta.Count
			case store.MutMergeTuple:
				k := tierKey{meta.Traj, meta.Interp}
				merges[k] = append(merges[k], mergeRef{rr: rr, idx: meta.Start})
			default:
				return inst, corruptf(r.path, "run %d has unknown op %d", ent, meta.Op)
			}
		}
	}

	for id, runs := range t.epRuns {
		stops := 0
		for _, rr := range runs {
			stops += t.meta(rr).Stops
		}
		inst.EpisodeStops[id] = stops
	}
	for k, count := range tupCount {
		inst.Tuples = append(inst.Tuples, store.ColdTupleKey{
			TrajectoryID: k.traj, ObjectID: tupObj[k], Interpretation: k.interp, Count: count,
		})
	}
	for _, id := range trajOrder {
		rr, ok := t.trajRuns[id]
		if !ok {
			continue
		}
		inst.Trajectories = append(inst.Trajectories, store.ColdTrajKey{
			ID: id, ObjectID: t.meta(rr).Object,
		})
	}

	overlay, err := t.foldOverlay(merges)
	if err != nil {
		return inst, err
	}
	inst.Overlay = overlay
	return inst, nil
}

// mergeRef queues one merge run for the overlay fold.
type mergeRef struct {
	rr  runRef
	idx int
}

// shadowAppend appends a positional run, dropping earlier runs whose start
// is at or past the new run's (dead runs the new one re-emits).
func shadowAppend(runs []runRef, rr runRef, start int, t *Tier) []runRef {
	kept, _ := splitShadowed(runs, start, t)
	return append(kept, rr)
}

// splitShadowed partitions runs into those before start and those shadowed
// by a new run starting there.
func splitShadowed(runs []runRef, start int, t *Tier) (kept, dropped []runRef) {
	for _, rr := range runs {
		if t.meta(rr).Start >= start {
			dropped = append(dropped, rr)
		} else {
			kept = append(kept, rr)
		}
	}
	return kept, dropped
}

// dropScanRuns removes the given tuple runs from their segments' scan lists.
func (t *Tier) dropScanRuns(runs []runRef) {
	for _, rr := range runs {
		ents := t.scan[rr.seg]
		kept := ents[:0]
		for _, e := range ents {
			if e != rr.ent {
				kept = append(kept, e)
			}
		}
		t.scan[rr.seg] = kept
	}
}

// foldOverlay materialises the recovered merge overlay: for every merged
// position still covered by a live run, decode the base tuple and apply its
// merge frames in segment order. Each frame carries the full post-merge
// annotation set, so application is an idempotent fixed point; merges whose
// position a later replace superseded were dropped during the fold.
func (t *Tier) foldOverlay(merges map[tierKey][]mergeRef) ([]store.ColdOverlayEntry, error) {
	if len(merges) == 0 {
		return nil, nil
	}
	keys := make([]tierKey, 0, len(merges))
	for k := range merges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].traj != keys[j].traj {
			return keys[i].traj < keys[j].traj
		}
		return keys[i].interp < keys[j].interp
	})
	cur := getCursor()
	defer putCursor(cur)
	var out []store.ColdOverlayEntry
	for _, k := range keys {
		// Group the key's merges by position, preserving segment order
		// within each position.
		byIdx := map[int][]runRef{}
		var idxOrder []int
		for _, mr := range merges[k] {
			if _, ok := byIdx[mr.idx]; !ok {
				idxOrder = append(idxOrder, mr.idx)
			}
			byIdx[mr.idx] = append(byIdx[mr.idx], mr.rr)
		}
		sort.Ints(idxOrder)
		for _, idx := range idxOrder {
			tp, ok, err := t.baseTupleAt(k, idx, cur)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue // position no longer covered: merge is moot
			}
			for _, rr := range byIdx[idx] {
				r := t.segs[rr.seg]
				m, err := r.mutationAt(r.foot.Runs[rr.ent].Off, cur)
				if err != nil {
					return nil, corruptf(r.path, "merge frame at %d undecodable", r.foot.Runs[rr.ent].Off)
				}
				if m.Place != nil {
					tp.Place = m.Place
				}
				for _, a := range m.Annotations {
					tp.Annotations.Add(a)
				}
			}
			out = append(out, store.ColdOverlayEntry{
				TrajectoryID: k.traj, Interpretation: k.interp, Index: idx, Tuple: tp,
			})
		}
	}
	return out, nil
}

// baseTupleAt decodes the frozen tuple at one logical position, straight
// from its covering run.
func (t *Tier) baseTupleAt(k tierKey, idx int, cur *cursor) (core.EpisodeTuple, bool, error) {
	for _, rr := range t.tupRuns[k] {
		meta := t.meta(rr)
		if idx < meta.Start || idx >= meta.Start+meta.Count {
			continue
		}
		r := t.segs[rr.seg]
		m, err := r.mutationAt(meta.Off, cur)
		if err != nil {
			return core.EpisodeTuple{}, false, corruptf(r.path, "tuple frame at %d undecodable", meta.Off)
		}
		if idx-meta.Start >= len(m.Tuples) {
			return core.EpisodeTuple{}, false, corruptf(r.path, "run at %d shorter than directory count", meta.Off)
		}
		return *m.Tuples[idx-meta.Start], true, nil
	}
	return core.EpisodeTuple{}, false, nil
}
