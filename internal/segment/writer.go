package segment

import (
	"bufio"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"

	"semitri/internal/episode"
	"semitri/internal/store"
	"semitri/internal/wal"
)

// crcTable matches the WAL's frame checksum polynomial (Castagnoli); the
// footer frame is framed here directly, data frames go through
// wal.AppendMutationFrame.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Writer streams one segment file: data frames appended mutation by
// mutation, then a footer built from the run metadata accumulated along the
// way. The file is written to a temporary name and renamed into place by
// finish, after an fsync — a crash mid-write leaves only a temp file that
// recovery ignores and deletes.
type Writer struct {
	f    *os.File
	bw   *bufio.Writer
	path string // final path
	tmp  string
	off  int64 // next frame's byte offset
	buf  []byte

	foot    Footer
	objects map[string]bool // distinct tuple-owning objects, for the bloom
}

// newWriter opens a segment writer for the given sequence number in dir.
func newWriter(dir string, seq uint64) (*Writer, error) {
	path := filepath.Join(dir, fileName(seq))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	w := &Writer{f: f, bw: bufio.NewWriterSize(f, 1<<16), path: path, tmp: tmp,
		objects: map[string]bool{}}
	var hdr [headerSize]byte
	copy(hdr[0:4], fileMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], formatVersion)
	if _, err := w.bw.Write(hdr[:]); err != nil {
		w.abort()
		return nil, err
	}
	w.off = headerSize
	return w, nil
}

// add appends one emitted run as a data frame and records its directory
// entry. It is CollectTail's emit callback: the mutation's payload slices are
// only stable until it returns, which is fine — the frame encoder serialises
// them immediately.
func (w *Writer) add(m store.Mutation) error {
	meta := RunMeta{Op: m.Op, Object: m.ObjectID, Traj: m.TrajectoryID,
		Interp: m.Interpretation, Start: m.Start, Off: w.off}
	switch m.Op {
	case store.MutPutRecords:
		meta.Count = len(m.Records)
	case store.MutPutEpisodes, store.MutAppendEpisodes:
		meta.Count = len(m.Episodes)
		for _, e := range m.Episodes {
			if e.Kind == episode.Stop {
				meta.Stops++
			}
		}
	case store.MutPutStructured, store.MutAppendTuples:
		meta.Count = len(m.Tuples)
		w.summarise(&m)
	}
	w.buf = wal.AppendMutationFrame(w.buf[:0], m)
	if _, err := w.bw.Write(w.buf); err != nil {
		return err
	}
	w.off += int64(len(w.buf))
	w.foot.Runs = append(w.foot.Runs, meta)
	return nil
}

// summarise folds one tuple run into the planner summary.
func (w *Writer) summarise(m *store.Mutation) {
	s := &w.foot.Summary
	if s.Tuples == nil {
		s.Tuples = map[string]int{}
		s.AnnKeys = map[string]int{}
	}
	s.Tuples[m.Interpretation] += len(m.Tuples)
	if len(m.Tuples) > 0 && m.ObjectID != "" {
		w.objects[m.ObjectID] = true
	}
	for _, tp := range m.Tuples {
		if tp.Kind == episode.Stop {
			s.Stops++
		} else {
			s.Moves++
		}
		// Zero TimeIns fold into TimeMin so untimed tuples keep the segment
		// unprunable by an upper time bound.
		if s.TimeMin.IsZero() || tp.TimeIn.Before(s.TimeMin) {
			s.TimeMin = tp.TimeIn
		}
		if tp.TimeOut.After(s.TimeMax) {
			s.TimeMax = tp.TimeOut
		}
		for _, a := range tp.Annotations.All() {
			s.AnnKeys[a.Key]++
		}
		if tp.Episode != nil {
			if s.GeomCount == 0 {
				s.GeomBounds = tp.Episode.Bounds
			} else {
				s.GeomBounds = s.GeomBounds.Union(tp.Episode.Bounds)
			}
			s.GeomCount++
		}
	}
}

// runs reports how many runs were added so far.
func (w *Writer) runs() int { return len(w.foot.Runs) }

// finish seals the segment: footer frame, trailer, fsync, rename into place,
// directory sync. On success the file is durable under its final name.
func (w *Writer) finish() error {
	s := &w.foot.Summary
	s.Objects = store.NewObjectFilter(len(w.objects))
	for obj := range w.objects {
		s.Objects.Add(obj)
	}
	payload := encodeFooter(&w.foot)
	var hdr [wal.FrameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.bw.Write(payload); err != nil {
		return err
	}
	var trailer [trailerSize]byte
	binary.LittleEndian.PutUint32(trailer[0:4], uint32(wal.FrameHeaderSize+len(payload)))
	copy(trailer[4:8], trailerMagic[:])
	if _, err := w.bw.Write(trailer[:]); err != nil {
		return err
	}
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	w.f = nil
	if err := os.Rename(w.tmp, w.path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(w.path))
}

// abort discards the temp file.
func (w *Writer) abort() {
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
	os.Remove(w.tmp)
}

// syncDir fsyncs a directory so a rename inside it is durable. Filesystems
// that cannot sync directories report an error we ignore, matching the WAL.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync()
	return nil
}
