// Package segment is the store's cold tier: immutable, time-partitioned
// binary segment files holding frozen heap tails, plus the Tier that serves
// them back through store.ColdTier.
//
// A segment file reuses the WAL's wire format for its body — the same varint
// mutation codec, the same [u32 length][u32 CRC-32C][payload] framing — so
// the two on-disk formats share one codec and cannot drift apart:
//
//	[8-byte header: magic "STSG" + u32 version]
//	[data frame]*          one framed Mutation per emitted run
//	[footer frame]         framed footer payload (summary + run directory)
//	[8-byte trailer: u32 footer frame size + magic "GSTS"]
//
// The fixed-size trailer makes the footer seekable in O(1): read the last 8
// bytes, step back over the footer frame, parse it like any other frame. The
// footer carries everything recovery and the query planner need without
// decoding the body — per-run directory entries (key, positional range, frame
// offset) and the planner summary (time span, kind counts, per-interpretation
// tuple counts, annotation-key cardinalities, geometry bounds, an object
// bloom filter). Data frames decode lazily, one run at a time.
package segment

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"semitri/internal/geo"
	"semitri/internal/store"
)

const (
	filePrefix = "seg-"
	fileSuffix = ".seg"
	// headerSize is the file header: 4-byte magic + u32 format version.
	headerSize = 8
	// trailerSize is the fixed tail: u32 footer frame size + 4-byte magic.
	trailerSize = 8
	// footerVersion versions the footer payload independently of the frame
	// codec.
	footerVersion = 1
)

var (
	fileMagic    = [4]byte{'S', 'T', 'S', 'G'}
	trailerMagic = [4]byte{'G', 'S', 'T', 'S'}
)

const formatVersion = 1

// ErrCorrupt reports a segment file that does not hold together — a damaged
// header, trailer, footer or data frame. Segments are written with
// temp-file-plus-rename and fsync, so unlike a torn WAL tail this is disk
// corruption, not a crash artifact: recovery fails cleanly rather than
// guessing.
var ErrCorrupt = errors.New("segment: corrupt segment file")

func corruptf(path, format string, args ...any) error {
	return fmt.Errorf("%w: %s: %s", ErrCorrupt, path, fmt.Sprintf(format, args...))
}

// fileName returns the segment file name for a sequence number.
func fileName(seq uint64) string {
	return fmt.Sprintf("%s%08d%s", filePrefix, seq, fileSuffix)
}

// RunMeta is one footer directory entry: which run the data frame at Off
// holds, without decoding it. Start/Count give the run's logical positional
// range; Stops counts stop episodes inside episode runs (so recovery installs
// exact kind totals without decoding).
type RunMeta struct {
	Op     store.MutationOp
	Object string
	Traj   string
	Interp string
	Start  int
	Count  int
	Stops  int
	Off    int64
}

// Footer is a segment's decoded footer: the planner summary plus the run
// directory, in emission (= frame) order.
type Footer struct {
	Summary store.SegmentSummary
	Runs    []RunMeta
}

// isTupleRun reports whether a run holds structured tuples a scan must visit.
func isTupleRun(op store.MutationOp) bool {
	return op == store.MutPutStructured || op == store.MutAppendTuples
}

// appendString appends a uvarint-length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendTime appends a time as a presence flag plus varint UnixNano; the
// zero time round-trips exactly.
func appendTime(b []byte, t time.Time) []byte {
	if t.IsZero() {
		return append(b, 0)
	}
	b = append(b, 1)
	return binary.AppendVarint(b, t.UnixNano())
}

// appendU64 appends a fixed-width little-endian u64 (float bits, bloom words).
func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

// appendCountMap appends a string→int map with sorted keys, so footer bytes
// are deterministic.
func appendCountMap(b []byte, m map[string]int) []byte {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b = binary.AppendUvarint(b, uint64(len(keys)))
	for _, k := range keys {
		b = appendString(b, k)
		b = binary.AppendUvarint(b, uint64(m[k]))
	}
	return b
}

// encodeFooter serialises a footer into its frame payload.
func encodeFooter(f *Footer) []byte {
	s := &f.Summary
	b := make([]byte, 0, 256+32*len(f.Runs))
	b = append(b, footerVersion)
	b = appendTime(b, s.TimeMin)
	b = appendTime(b, s.TimeMax)
	b = binary.AppendUvarint(b, uint64(s.Stops))
	b = binary.AppendUvarint(b, uint64(s.Moves))
	b = appendCountMap(b, s.Tuples)
	b = appendCountMap(b, s.AnnKeys)
	b = binary.AppendUvarint(b, uint64(s.GeomCount))
	if s.GeomCount > 0 {
		b = appendU64(b, math.Float64bits(s.GeomBounds.Min.X))
		b = appendU64(b, math.Float64bits(s.GeomBounds.Min.Y))
		b = appendU64(b, math.Float64bits(s.GeomBounds.Max.X))
		b = appendU64(b, math.Float64bits(s.GeomBounds.Max.Y))
	}
	b = binary.AppendUvarint(b, uint64(len(s.Objects.Bits)))
	for _, w := range s.Objects.Bits {
		b = appendU64(b, w)
	}
	b = binary.AppendUvarint(b, uint64(len(f.Runs)))
	for i := range f.Runs {
		r := &f.Runs[i]
		b = append(b, byte(r.Op))
		b = appendString(b, r.Object)
		b = appendString(b, r.Traj)
		b = appendString(b, r.Interp)
		b = binary.AppendUvarint(b, uint64(r.Start))
		b = binary.AppendUvarint(b, uint64(r.Count))
		b = binary.AppendUvarint(b, uint64(r.Stops))
		b = binary.AppendUvarint(b, uint64(r.Off))
	}
	return b
}

// footerDecoder cursors through a footer payload; any malformed read trips
// err and subsequent reads return zero values, so decodeFooter checks once.
type footerDecoder struct {
	b   []byte
	err bool
}

func (d *footerDecoder) uvarint() uint64 {
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.err = true
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *footerDecoder) varint() int64 {
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.err = true
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *footerDecoder) byte() byte {
	if len(d.b) < 1 {
		d.err = true
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *footerDecoder) u64() uint64 {
	if len(d.b) < 8 {
		d.err = true
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

// maxFooterSeq bounds any single decoded sequence length against the payload
// size, so a corrupt count cannot drive allocation.
func (d *footerDecoder) count() int {
	n := d.uvarint()
	if n > uint64(len(d.b))+1 {
		d.err = true
		return 0
	}
	return int(n)
}

func (d *footerDecoder) string() string {
	n := d.count()
	if d.err || len(d.b) < n {
		d.err = true
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *footerDecoder) time() time.Time {
	if d.byte() == 0 {
		return time.Time{}
	}
	return time.Unix(0, d.varint()).UTC()
}

func (d *footerDecoder) countMap() map[string]int {
	n := d.count()
	m := make(map[string]int, n)
	for i := 0; i < n && !d.err; i++ {
		k := d.string()
		m[k] = int(d.uvarint())
	}
	return m
}

// decodeFooter parses a footer frame payload. It never panics on arbitrary
// input; malformed payloads return an error.
func decodeFooter(payload []byte) (*Footer, error) {
	d := &footerDecoder{b: payload}
	if v := d.byte(); v != footerVersion {
		return nil, fmt.Errorf("segment: unsupported footer version %d", v)
	}
	f := &Footer{}
	s := &f.Summary
	s.TimeMin = d.time()
	s.TimeMax = d.time()
	s.Stops = int(d.uvarint())
	s.Moves = int(d.uvarint())
	s.Tuples = d.countMap()
	s.AnnKeys = d.countMap()
	s.GeomCount = int(d.uvarint())
	if s.GeomCount > 0 {
		s.GeomBounds = geo.Rect{
			Min: geo.Pt(math.Float64frombits(d.u64()), math.Float64frombits(d.u64())),
			Max: geo.Pt(math.Float64frombits(d.u64()), math.Float64frombits(d.u64())),
		}
	}
	nw := d.count()
	if nw > 0 {
		s.Objects.Bits = make([]uint64, nw)
		for i := 0; i < nw; i++ {
			s.Objects.Bits[i] = d.u64()
		}
	}
	nr := d.count()
	f.Runs = make([]RunMeta, 0, nr)
	for i := 0; i < nr && !d.err; i++ {
		r := RunMeta{
			Op:     store.MutationOp(d.byte()),
			Object: d.string(),
			Traj:   d.string(),
			Interp: d.string(),
			Start:  int(d.uvarint()),
			Count:  int(d.uvarint()),
			Stops:  int(d.uvarint()),
			Off:    int64(d.uvarint()),
		}
		f.Runs = append(f.Runs, r)
	}
	if d.err {
		return nil, errors.New("segment: malformed footer payload")
	}
	return f, nil
}
