//go:build !unix || semitri_nommap

package segment

import (
	"encoding/binary"
	"os"

	"semitri/internal/wal"
)

// blob abstracts how a sealed segment's bytes are read; this build uses
// positional reads against the open file. See blob_mmap.go for the mapped
// variant and the interface contract.
type blob interface {
	frame(off int64, buf *[]byte) (payload []byte, size int, err error)
	bytes(off, n int64, buf *[]byte) ([]byte, error)
	size() int64
	close() error
}

// preadBlob reads each frame with two positional reads: the 8-byte header
// for the length, then the whole frame into the caller's reusable buffer.
type preadBlob struct {
	f  *os.File
	sz int64
}

func openBlob(path string) (blob, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &preadBlob{f: f, sz: fi.Size()}, nil
}

func (p *preadBlob) frame(off int64, buf *[]byte) ([]byte, int, error) {
	if off < 0 || off+wal.FrameHeaderSize > p.sz {
		return nil, 0, wal.ErrFrame
	}
	var hdr [wal.FrameHeaderSize]byte
	if _, err := p.f.ReadAt(hdr[:], off); err != nil {
		return nil, 0, wal.ErrFrame
	}
	n := int64(binary.LittleEndian.Uint32(hdr[0:4]))
	total := wal.FrameHeaderSize + n
	if n > wal.MaxFramePayload || off+total > p.sz {
		return nil, 0, wal.ErrFrame
	}
	b := *buf
	if int64(cap(b)) < total {
		b = make([]byte, total)
		*buf = b
	}
	b = b[:total]
	if _, err := p.f.ReadAt(b, off); err != nil {
		return nil, 0, wal.ErrFrame
	}
	return wal.ParseFrame(b)
}

func (p *preadBlob) bytes(off, n int64, buf *[]byte) ([]byte, error) {
	if off < 0 || n < 0 || off+n > p.sz {
		return nil, wal.ErrFrame
	}
	b := *buf
	if int64(cap(b)) < n {
		b = make([]byte, n)
		*buf = b
	}
	b = b[:n]
	if _, err := p.f.ReadAt(b, off); err != nil {
		return nil, wal.ErrFrame
	}
	return b, nil
}

func (p *preadBlob) size() int64 { return p.sz }

func (p *preadBlob) close() error { return p.f.Close() }
