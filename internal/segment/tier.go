package segment

import (
	"os"
	"path/filepath"
	"sync"

	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/gps"
	"semitri/internal/obs"
	"semitri/internal/store"
	"semitri/internal/wal"
)

// Tier is the live cold tier: the set of open segment readers plus the
// bookkeeping that maps each frozen key to the runs holding its content. It
// implements store.ColdTier for serving and drives the freeze protocol that
// grows the set.
//
// Two views exist per segment. The keyed maps (records, episodes, tuples,
// trajectories → runs) back the base-bounded point reads and only ever hold
// committed runs, so they can never overshoot a key's frozen base. The
// per-segment scan lists back full scans and are populated *before*
// CommitFreeze evicts the matching heap prefixes — the register-before-evict
// contract: a scan racing a freeze may see a tuple twice (segment and heap,
// same logical ref) but can never miss it; the query engine's post-sort
// dedup collapses the duplicates.
type Tier struct {
	dir string

	// freezeMu serialises freezes (and the checkpoint wrapping them).
	freezeMu sync.Mutex

	mu   sync.RWMutex
	segs []*Reader // live segments, oldest first; append-only
	// scan[i] lists the entry indexes of segment i's live tuple runs.
	scan [][]int
	// keyed maps: committed runs only, in position order.
	recRuns  map[string][]runRef
	epRuns   map[string][]runRef
	tupRuns  map[tierKey][]runRef
	trajRuns map[string]runRef

	nextSeq uint64
}

// tierKey identifies one structured interpretation.
type tierKey struct{ traj, interp string }

// runRef locates one run: segment index, directory entry index.
type runRef struct{ seg, ent int }

var _ store.ColdTier = (*Tier)(nil)

// newTier builds an empty tier rooted at dir.
func newTier(dir string) *Tier {
	return &Tier{
		dir:      dir,
		recRuns:  map[string][]runRef{},
		epRuns:   map[string][]runRef{},
		tupRuns:  map[tierKey][]runRef{},
		trajRuns: map[string]runRef{},
		nextSeq:  1,
	}
}

// meta returns a run's directory entry. Caller holds mu (any mode) or owns
// the refs; footers are immutable after Open.
func (t *Tier) meta(rr runRef) *RunMeta { return &t.segs[rr.seg].foot.Runs[rr.ent] }

// runsCopy snapshots a run list under the read lock.
func (t *Tier) runsCopy(refs []runRef) []runRef {
	return append([]runRef(nil), refs...)
}

// SegmentCount reports the number of live segments (pending ones included).
func (t *Tier) SegmentCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.segs)
}

// ColdSegments implements store.ColdTier.
func (t *Tier) ColdSegments() int { return t.SegmentCount() }

// Summaries implements store.ColdTier: one footer summary per live segment.
func (t *Tier) Summaries(buf []store.SegmentSummary) []store.SegmentSummary {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, r := range t.segs {
		buf = append(buf, r.foot.Summary)
	}
	return buf
}

// ColdRecords implements store.ColdTier: the frozen records of one object in
// position order.
func (t *Tier) ColdRecords(objectID string, buf []gps.Record) []gps.Record {
	t.mu.RLock()
	refs := t.runsCopy(t.recRuns[objectID])
	segs := t.segs
	t.mu.RUnlock()
	cur := getCursor()
	defer putCursor(cur)
	for _, rr := range refs {
		m, err := segs[rr.seg].mutationAt(segs[rr.seg].foot.Runs[rr.ent].Off, cur)
		if err != nil {
			continue // CRC-verified at open; unreachable in practice
		}
		buf = append(buf, m.Records...)
	}
	return buf
}

// ColdEpisodes implements store.ColdTier.
func (t *Tier) ColdEpisodes(trajectoryID string, buf []*episode.Episode) []*episode.Episode {
	t.mu.RLock()
	refs := t.runsCopy(t.epRuns[trajectoryID])
	segs := t.segs
	t.mu.RUnlock()
	cur := getCursor()
	defer putCursor(cur)
	for _, rr := range refs {
		m, err := segs[rr.seg].mutationAt(segs[rr.seg].foot.Runs[rr.ent].Off, cur)
		if err != nil {
			continue
		}
		buf = append(buf, m.Episodes...)
	}
	return buf
}

// ColdTrajectory implements store.ColdTier.
func (t *Tier) ColdTrajectory(id string) (*gps.RawTrajectory, bool) {
	t.mu.RLock()
	rr, ok := t.trajRuns[id]
	var r *Reader
	var off int64
	if ok {
		r = t.segs[rr.seg]
		off = r.foot.Runs[rr.ent].Off
	}
	t.mu.RUnlock()
	if !ok {
		return nil, false
	}
	cur := getCursor()
	defer putCursor(cur)
	m, err := r.mutationAt(off, cur)
	if err != nil || m.Trajectory == nil {
		return nil, false
	}
	return m.Trajectory, true
}

// ColdTuples implements store.ColdTier: the frozen tuples of one structured
// interpretation in position order (the overlay is the store's concern).
func (t *Tier) ColdTuples(trajectoryID, interpretation string, buf []core.EpisodeTuple) []core.EpisodeTuple {
	t.mu.RLock()
	refs := t.runsCopy(t.tupRuns[tierKey{trajectoryID, interpretation}])
	segs := t.segs
	t.mu.RUnlock()
	cur := getCursor()
	defer putCursor(cur)
	for _, rr := range refs {
		m, err := segs[rr.seg].mutationAt(segs[rr.seg].foot.Runs[rr.ent].Off, cur)
		if err != nil {
			continue
		}
		for _, tp := range m.Tuples {
			buf = append(buf, *tp)
		}
	}
	return buf
}

// InvalidateTuples implements store.ColdTier: a whole-sequence replace
// superseded the key's frozen content. Called under the key's stripe lock,
// so it must not call back into the store; it only mutates tier maps.
func (t *Tier) InvalidateTuples(trajectoryID, interpretation string) {
	k := tierKey{trajectoryID, interpretation}
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.tupRuns, k)
	// Drop the key's scan entries everywhere — including a pending run a
	// freeze registered but has not committed yet (its commit will fail on
	// the generation bump this replace made).
	for seg, ents := range t.scan {
		kept := ents[:0]
		for _, ent := range ents {
			meta := &t.segs[seg].foot.Runs[ent]
			if meta.Traj == trajectoryID && meta.Interp == interpretation {
				continue
			}
			kept = append(kept, ent)
		}
		t.scan[seg] = kept
	}
}

// VisitSegmentTuples implements store.ColdTier: every live frozen tuple of
// one segment, decoded lazily run by run. The scan list is snapshotted under
// the read lock and the lock released before any decoding or callback — fn
// may take stripe locks.
func (t *Tier) VisitSegmentTuples(seg int, interpretation string, fn func(ref store.TupleRef, tp core.EpisodeTuple) bool) bool {
	t.mu.RLock()
	if seg < 0 || seg >= len(t.segs) {
		t.mu.RUnlock()
		return true
	}
	r := t.segs[seg]
	ents := append([]int(nil), t.scan[seg]...)
	t.mu.RUnlock()
	cur := getCursor()
	defer putCursor(cur)
	for _, ent := range ents {
		meta := &r.foot.Runs[ent]
		if interpretation != "" && meta.Interp != interpretation {
			continue
		}
		m, err := r.mutationAt(meta.Off, cur)
		if err != nil {
			continue
		}
		for i, tp := range m.Tuples {
			ref := store.TupleRef{TrajectoryID: meta.Traj, ObjectID: meta.Object,
				Interpretation: meta.Interp, Index: meta.Start + i}
			if !fn(ref, *tp) {
				return false
			}
		}
	}
	return true
}

// Freeze runs one freeze cycle: collect the store's heap tail into a new
// segment file, make it durable, register its runs for scanning, then let
// the store evict the captured prefixes and finally index the committed runs
// for keyed reads. An empty tail writes no file. Registration happens before
// eviction (see the type comment); runs whose key was written between
// collect and commit come back dead and are dropped again.
func (t *Tier) Freeze(st *store.Store) error {
	t.freezeMu.Lock()
	defer t.freezeMu.Unlock()

	t.mu.RLock()
	seq := t.nextSeq
	t.mu.RUnlock()
	w, err := newWriter(t.dir, seq)
	if err != nil {
		return err
	}
	mark, err := st.CollectTail(w.add)
	if err != nil {
		w.abort()
		return err
	}
	if mark.Runs() == 0 {
		w.abort()
		return nil
	}
	if err := w.finish(); err != nil {
		w.abort()
		return err
	}
	r, err := Open(w.path)
	if err != nil {
		return err
	}

	// Register before evict: the segment's tuple runs join the scan lists
	// first, so no scan can miss content mid-eviction.
	t.mu.Lock()
	segIdx := len(t.segs)
	t.segs = append(t.segs, r)
	ents := make([]int, 0, len(r.foot.Runs))
	for ent := range r.foot.Runs {
		if isTupleRun(r.foot.Runs[ent].Op) {
			ents = append(ents, ent)
		}
	}
	t.scan = append(t.scan, ents)
	t.nextSeq = seq + 1
	t.mu.Unlock()

	live := st.CommitFreeze(mark)

	t.mu.Lock()
	for ent := range r.foot.Runs {
		meta := &r.foot.Runs[ent]
		rr := runRef{seg: segIdx, ent: ent}
		if !live[ent] {
			if isTupleRun(meta.Op) {
				kept := t.scan[segIdx][:0]
				for _, e := range t.scan[segIdx] {
					if e != ent {
						kept = append(kept, e)
					}
				}
				t.scan[segIdx] = kept
			}
			continue
		}
		switch meta.Op {
		case store.MutPutRecords:
			t.recRuns[meta.Object] = append(t.recRuns[meta.Object], rr)
		case store.MutPutTrajectory:
			t.trajRuns[meta.Traj] = rr
		case store.MutPutEpisodes:
			t.epRuns[meta.Traj] = []runRef{rr}
		case store.MutAppendEpisodes:
			t.epRuns[meta.Traj] = append(t.epRuns[meta.Traj], rr)
		case store.MutPutStructured:
			t.tupRuns[tierKey{meta.Traj, meta.Interp}] = []runRef{rr}
		case store.MutAppendTuples:
			k := tierKey{meta.Traj, meta.Interp}
			t.tupRuns[k] = append(t.tupRuns[k], rr)
		case store.MutMergeTuple:
			// Overlay merge frames are recovery-only; the live overlay
			// already sits in the store.
		}
	}
	t.mu.Unlock()

	// Segments are the recovery base now; a JSON snapshot from an earlier
	// storage mode would shadow them at the next JSON-mode start.
	os.Remove(filepath.Join(t.dir, wal.SnapshotFile))
	obs.SegmentFreezes.Inc()
	return nil
}

// Checkpoint runs an incremental checkpoint: rotate the WAL, freeze the heap
// tail into a segment, then let the log drop everything the segment now
// covers. Its cost is proportional to the tail written since the last
// checkpoint, not to the total stored data.
func (t *Tier) Checkpoint(l *wal.Log, st *store.Store) error {
	return l.CheckpointWith(func(string) error { return t.Freeze(st) })
}

// Close releases every open segment (unmapping them where mapped). The
// caller must have stopped readers first — it belongs at process shutdown,
// after the pipeline's streams and query traffic have drained.
func (t *Tier) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	var first error
	for _, r := range t.segs {
		if err := r.Close(); err != nil && first == nil {
			first = err
		}
	}
	t.segs = nil
	t.scan = nil
	return first
}

// Dir returns the tier's directory.
func (t *Tier) Dir() string { return t.dir }
