package segment

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/geo"
	"semitri/internal/gps"
	"semitri/internal/store"
	"semitri/internal/wal"
)

func ts(i int) time.Time {
	return time.Date(2026, 7, 1, 8, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Second)
}

func testEpisode(traj string, i int) *episode.Episode {
	return &episode.Episode{
		TrajectoryID: traj,
		ObjectID:     "o-" + traj,
		Kind:         episode.Kind(i % 2),
		StartIdx:     i,
		EndIdx:       i + 5,
		Start:        ts(i),
		End:          ts(i + 60),
		Center:       geo.Pt(float64(i), float64(i)+0.5),
		Bounds:       geo.NewRect(geo.Pt(float64(i), float64(i)), geo.Pt(float64(i)+10, float64(i)+10)),
		AvgSpeed:     1.25,
		Distance:     42.75,
		RecordCount:  6,
	}
}

func testTuple(traj string, i int) *core.EpisodeTuple {
	tp := &core.EpisodeTuple{
		Kind:    episode.Kind(i % 2),
		TimeIn:  ts(i),
		TimeOut: ts(i + 30),
		Episode: testEpisode(traj, i),
	}
	tp.Annotations.Add(core.Annotation{Key: "landuse", Value: "urban", Confidence: 0.6, Source: "region"})
	if i%2 == 0 {
		tp.Annotations.Add(core.Annotation{Key: "poi_category", Value: "food", Confidence: 0.8, Source: "point"})
		tp.Place = &core.Place{ID: fmt.Sprintf("p%d", i), Kind: core.PointPlace, Name: "café",
			Category: "food", Extent: geo.NewRect(geo.Pt(1, 2), geo.Pt(3, 4))}
	}
	return tp
}

// populate fills a store with n objects worth of every table.
func populate(t *testing.T, st *store.Store, objects, perObj int) {
	t.Helper()
	for o := 0; o < objects; o++ {
		obj := fmt.Sprintf("obj-%d", o)
		recs := make([]gps.Record, 0, perObj)
		for i := 0; i < perObj; i++ {
			recs = append(recs, gps.Record{ObjectID: obj, Position: geo.Pt(float64(i), float64(o)), Time: ts(i)})
		}
		st.PutRecords(recs)
		traj := fmt.Sprintf("t-%d", o)
		if err := st.PutTrajectory(&gps.RawTrajectory{ID: traj, ObjectID: obj, Records: recs}); err != nil {
			t.Fatal(err)
		}
		eps := make([]*episode.Episode, 0, perObj/2)
		tups := make([]*core.EpisodeTuple, 0, perObj/2)
		for i := 0; i < perObj/2; i++ {
			ep := testEpisode(traj, i)
			ep.ObjectID = obj
			eps = append(eps, ep)
			tp := testTuple(traj, i)
			tp.Episode.ObjectID = obj
			tups = append(tups, tp)
		}
		if err := st.PutEpisodes(traj, eps); err != nil {
			t.Fatal(err)
		}
		if err := st.PutStructured(&core.StructuredTrajectory{
			ID: traj, ObjectID: obj, Interpretation: "merged", Tuples: tups,
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// storeState captures a store's full logical content for equality checks.
type storeState struct {
	Records    map[string][]gps.Record
	Trajs      map[string]*gps.RawTrajectory
	TrajIDs    map[string][]string
	Episodes   map[string][]*episode.Episode
	Structured map[string]*core.StructuredTrajectory
	RecordN    int
	Stops      int
	Moves      int
	TrajN      int
	StructN    int
}

func capture(st *store.Store) *storeState {
	s := &storeState{
		Records:    map[string][]gps.Record{},
		Trajs:      map[string]*gps.RawTrajectory{},
		TrajIDs:    map[string][]string{},
		Episodes:   map[string][]*episode.Episode{},
		Structured: map[string]*core.StructuredTrajectory{},
	}
	for _, obj := range st.Objects() {
		s.Records[obj] = st.Records(obj)
		s.TrajIDs[obj] = st.TrajectoryIDs(obj)
		for _, id := range s.TrajIDs[obj] {
			if tr, ok := st.Trajectory(id); ok {
				s.Trajs[id] = tr
			}
			s.Episodes[id] = st.Episodes(id)
			for _, interp := range st.Interpretations(id) {
				if sst, ok := st.Structured(id, interp); ok {
					// The all-heap fast path returns the live internal
					// struct; detach the slice header so a later freeze's
					// eviction cannot truncate this capture.
					cp := *sst
					cp.Tuples = append([]*core.EpisodeTuple(nil), sst.Tuples...)
					s.Structured[id+"/"+interp] = &cp
				}
			}
		}
	}
	s.RecordN = st.RecordCount()
	s.Stops, s.Moves = st.EpisodeCounts()
	s.TrajN = st.TrajectoryCount()
	s.StructN = st.StructuredCount()
	return s
}

func mustEqualState(t *testing.T, want, got *storeState, label string) {
	t.Helper()
	if !reflect.DeepEqual(want, got) {
		for id, w := range want.Structured {
			if g := got.Structured[id]; !reflect.DeepEqual(w, g) {
				t.Fatalf("%s: structured %s differs:\nwant %+v\ngot  %+v", label, id, w, g)
			}
		}
		t.Fatalf("%s: store state differs (records/episodes/counts)", label)
	}
}

// freezeOnce runs one freeze cycle through a fresh tiered store.
func newTiered(t *testing.T, dir string, shards int) (*store.Store, *Tier) {
	t.Helper()
	st, tier, _, err := Recover(dir, shards)
	if err != nil {
		t.Fatal(err)
	}
	return st, tier
}

func TestFreezeServesIdenticalContent(t *testing.T) {
	dir := t.TempDir()
	st, tier := newTiered(t, dir, 4)
	populate(t, st, 5, 20)
	before := capture(st)

	if err := tier.Freeze(st); err != nil {
		t.Fatal(err)
	}
	if got := tier.SegmentCount(); got != 1 {
		t.Fatalf("segments = %d, want 1", got)
	}
	mustEqualState(t, before, capture(st), "after freeze")

	// A second freeze with nothing new writes nothing.
	if err := tier.Freeze(st); err != nil {
		t.Fatal(err)
	}
	if got := tier.SegmentCount(); got != 1 {
		t.Fatalf("segments after empty freeze = %d, want 1", got)
	}

	// New data after the freeze lands in a second, delta-only segment.
	populate(t, st, 2, 10) // obj-0, obj-1 again: records append, others replace
	after := capture(st)
	if err := tier.Freeze(st); err != nil {
		t.Fatal(err)
	}
	if got := tier.SegmentCount(); got != 2 {
		t.Fatalf("segments = %d, want 2", got)
	}
	mustEqualState(t, after, capture(st), "after second freeze")
}

func TestFreezeEvictsHeap(t *testing.T) {
	dir := t.TempDir()
	st, tier := newTiered(t, dir, 4)
	populate(t, st, 3, 30)
	if err := tier.Freeze(st); err != nil {
		t.Fatal(err)
	}
	// The heap tail must be empty now: a second collect sees nothing.
	mark, err := st.CollectTail(func(store.Mutation) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if mark.Runs() != 0 {
		t.Fatalf("post-freeze heap tail has %d runs, want 0", mark.Runs())
	}
}

func TestRecoverFromSegments(t *testing.T) {
	dir := t.TempDir()
	st, tier := newTiered(t, dir, 4)
	populate(t, st, 4, 16)
	if err := tier.Freeze(st); err != nil {
		t.Fatal(err)
	}
	populate(t, st, 6, 8) // partially overlapping: replaces + fresh objects
	if err := tier.Freeze(st); err != nil {
		t.Fatal(err)
	}
	want := capture(st)
	if err := tier.Close(); err != nil {
		t.Fatal(err)
	}

	st2, tier2, stats, err := Recover(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer tier2.Close()
	if stats.Segments != 2 {
		t.Fatalf("recovered %d segments, want 2", stats.Segments)
	}
	mustEqualState(t, want, capture(st2), "after recovery")
}

func TestRecoverSegmentsPlusWALTail(t *testing.T) {
	dir := t.TempDir()
	st, tier := newTiered(t, dir, 4)
	l, err := wal.Open(wal.Options{Dir: dir, Fsync: wal.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	st.AttachLog(l)
	populate(t, st, 3, 12)
	if err := tier.Checkpoint(l, st); err != nil {
		t.Fatal(err)
	}
	populate(t, st, 5, 6) // tail beyond the checkpoint, only in the WAL
	if err := st.MergeTupleAnnotations("t-1", "merged", 0, nil,
		[]core.Annotation{{Key: "activity", Value: "eat", Confidence: 0.95, Source: "x"}}); err != nil {
		t.Fatal(err)
	}
	want := capture(st)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	tier.Close()

	st2, tier2, stats, err := Recover(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer tier2.Close()
	if stats.Segments != 1 {
		t.Fatalf("recovered %d segments, want 1", stats.Segments)
	}
	if stats.WAL.FramesApplied == 0 {
		t.Fatal("expected a WAL tail to replay over the segment base")
	}
	mustEqualState(t, want, capture(st2), "after segment+tail recovery")
}

func TestCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	st, tier := newTiered(t, dir, 4)
	l, err := wal.Open(wal.Options{Dir: dir, Fsync: wal.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	st.AttachLog(l)
	populate(t, st, 3, 40)
	if err := tier.Checkpoint(l, st); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	tier.Close()
	// Everything lives in the segment: the remaining WAL files must be
	// (nearly) empty — only headers.
	var walBytes int64
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".log" {
			fi, _ := e.Info()
			walBytes += fi.Size()
		}
	}
	if walBytes > 64 {
		t.Fatalf("post-checkpoint WAL still holds %d bytes", walBytes)
	}
}

func TestMergeOverlaySurvivesFreezeAndRecovery(t *testing.T) {
	dir := t.TempDir()
	st, tier := newTiered(t, dir, 4)
	populate(t, st, 2, 10)
	if err := tier.Freeze(st); err != nil {
		t.Fatal(err)
	}
	// Merge into a frozen tuple: lands in the overlay, not the segment.
	anns := []core.Annotation{{Key: "activity", Value: "shop", Confidence: 0.9, Source: "hmm"}}
	if err := st.MergeTupleAnnotations("t-0", "merged", 1, nil, anns); err != nil {
		t.Fatal(err)
	}
	want := capture(st)
	got, ok := st.Structured("t-0", "merged")
	if !ok || len(got.Tuples) < 2 {
		t.Fatal("merged interpretation missing after freeze")
	}
	if v := got.Tuples[1].Annotations.Value("activity"); v != "shop" {
		t.Fatalf("overlay merge not visible: activity=%q", v)
	}

	// The next freeze writes the overlay out as a merge frame; recovery
	// rebuilds the overlay from it.
	if err := tier.Freeze(st); err != nil {
		t.Fatal(err)
	}
	mustEqualState(t, want, capture(st), "after overlay freeze")
	tier.Close()

	st2, tier2, _, err := Recover(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer tier2.Close()
	mustEqualState(t, want, capture(st2), "after overlay recovery")
	if st2.OverlayCount() == 0 {
		t.Fatal("recovered store has no overlay entries")
	}
}

func TestFooterSummary(t *testing.T) {
	dir := t.TempDir()
	st, tier := newTiered(t, dir, 4)
	populate(t, st, 3, 10)
	if err := tier.Freeze(st); err != nil {
		t.Fatal(err)
	}
	sums := st.ColdSummaries(nil)
	if len(sums) != 1 {
		t.Fatalf("got %d summaries, want 1", len(sums))
	}
	s := sums[0]
	stops, moves := st.EpisodeCounts()
	_ = stops
	_ = moves
	if s.Stops+s.Moves != 15 { // 3 objects × 5 tuples
		t.Fatalf("summary counts %d tuples, want 15", s.Stops+s.Moves)
	}
	if s.Tuples["merged"] != 15 {
		t.Fatalf("summary merged count = %d, want 15", s.Tuples["merged"])
	}
	if s.AnnKeys["landuse"] != 15 {
		t.Fatalf("summary landuse cardinality = %d, want 15", s.AnnKeys["landuse"])
	}
	if !s.Objects.MayContain("obj-0") || !s.Objects.MayContain("obj-2") {
		t.Fatal("object bloom misses a present object")
	}
	if s.TimeMin.IsZero() || s.TimeMax.Before(s.TimeMin) {
		t.Fatalf("summary time span [%v, %v] malformed", s.TimeMin, s.TimeMax)
	}
	if s.GeomCount != 15 {
		t.Fatalf("summary geometry count = %d, want 15", s.GeomCount)
	}
}

func TestFooterRoundTrip(t *testing.T) {
	foot := &Footer{
		Summary: store.SegmentSummary{
			TimeMin: ts(0), TimeMax: ts(99),
			Stops: 3, Moves: 4,
			Tuples:     map[string]int{"merged": 7, "line": 2},
			AnnKeys:    map[string]int{"landuse": 7},
			GeomBounds: geo.NewRect(geo.Pt(-1, -2), geo.Pt(3, 4)),
			GeomCount:  5,
			Objects:    store.NewObjectFilter(3),
		},
		Runs: []RunMeta{
			{Op: store.MutPutRecords, Object: "o1", Start: 0, Count: 12, Off: 8},
			{Op: store.MutAppendTuples, Object: "o1", Traj: "t1", Interp: "merged",
				Start: 4, Count: 3, Off: 640},
			{Op: store.MutPutEpisodes, Traj: "t1", Count: 6, Stops: 2, Off: 99},
		},
	}
	foot.Summary.Objects.Add("o1")
	got, err := decodeFooter(encodeFooter(foot))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(foot, got) {
		t.Fatalf("footer round trip:\nwant %+v\ngot  %+v", foot, got)
	}
	// Arbitrary truncations must error, never panic.
	full := encodeFooter(foot)
	for i := 0; i < len(full); i++ {
		if _, err := decodeFooter(full[:i]); err == nil {
			t.Fatalf("truncated footer at %d decoded without error", i)
		}
	}
}

func TestCorruptSegmentFailsCleanly(t *testing.T) {
	dir := t.TempDir()
	st, tier := newTiered(t, dir, 4)
	populate(t, st, 2, 10)
	if err := tier.Freeze(st); err != nil {
		t.Fatal(err)
	}
	tier.Close()
	paths, _, err := listSegmentFiles(dir)
	if err != nil || len(paths) != 1 {
		t.Fatalf("want 1 segment, got %v (%v)", paths, err)
	}
	orig, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(name string, mutate func([]byte) []byte) {
		t.Helper()
		data := mutate(append([]byte(nil), orig...))
		if err := os.WriteFile(paths[0], data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(paths[0]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: Open err = %v, want ErrCorrupt", name, err)
		}
		if _, _, _, err := Recover(dir, 4); err == nil {
			t.Fatalf("%s: Recover succeeded on a corrupt segment", name)
		}
	}
	corrupt("bit flip in body", func(b []byte) []byte { b[headerSize+3] ^= 0x40; return b })
	corrupt("bit flip in footer", func(b []byte) []byte { b[len(b)-trailerSize-5] ^= 0x01; return b })
	corrupt("torn tail", func(b []byte) []byte { return b[:len(b)/2] })
	corrupt("bad magic", func(b []byte) []byte { b[0] = 'X'; return b })
	corrupt("empty file", func(b []byte) []byte { return nil })

	// Restore: a pristine segment still opens.
	if err := os.WriteFile(paths[0], orig, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
}

func TestSnapshotMigration(t *testing.T) {
	// A json-storage directory (snapshot + WAL) recovers through the
	// segment engine: the snapshot seeds the base, and the first freeze
	// retires it.
	dir := t.TempDir()
	st := store.NewSharded(4)
	populate(t, st, 3, 10)
	if err := st.Save(filepath.Join(dir, wal.SnapshotFile)); err != nil {
		t.Fatal(err)
	}
	want := capture(st)

	st2, tier2, stats, err := Recover(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer tier2.Close()
	if !stats.SnapshotLoaded {
		t.Fatal("snapshot base not loaded")
	}
	mustEqualState(t, want, capture(st2), "after snapshot migration")

	if err := tier2.Freeze(st2); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, wal.SnapshotFile)); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("snapshot.json still present after the first freeze")
	}
	mustEqualState(t, want, capture(st2), "after migration freeze")
}

func TestReplaceAfterFreezeSupersedes(t *testing.T) {
	dir := t.TempDir()
	st, tier := newTiered(t, dir, 4)
	populate(t, st, 2, 10)
	if err := tier.Freeze(st); err != nil {
		t.Fatal(err)
	}
	// Replace a frozen interpretation wholesale; the tier must stop serving
	// the stale run immediately.
	repl := []*core.EpisodeTuple{testTuple("t-0", 7)}
	if err := st.PutStructured(&core.StructuredTrajectory{
		ID: "t-0", ObjectID: "obj-0", Interpretation: "merged", Tuples: repl,
	}); err != nil {
		t.Fatal(err)
	}
	got, ok := st.Structured("t-0", "merged")
	if !ok || len(got.Tuples) != 1 {
		t.Fatalf("replace not visible: %d tuples", len(got.Tuples))
	}
	// Scans must not resurrect the stale frozen tuples.
	count := 0
	st.VisitStructuredTuples("merged", func(ref store.TupleRef, tp core.EpisodeTuple) bool {
		if ref.TrajectoryID == "t-0" {
			count++
		}
		return true
	})
	if count != 1 {
		t.Fatalf("scan sees %d t-0 tuples, want 1", count)
	}
	want := capture(st)
	// Re-freeze and recover: the replacement (and the dead run's shadow)
	// must persist.
	if err := tier.Freeze(st); err != nil {
		t.Fatal(err)
	}
	mustEqualState(t, want, capture(st), "after re-freeze")
	tier.Close()
	st2, tier2, _, err := Recover(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer tier2.Close()
	mustEqualState(t, want, capture(st2), "after recovery")
}
