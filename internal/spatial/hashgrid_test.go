package spatial

import (
	"math/rand"
	"testing"

	"semitri/internal/geo"
)

// TestHashGridMatchesBruteForce extends the quick-check property test to the
// incremental index: after every few insertions the hash grid must answer
// range, radius, covering and nearest queries exactly like a brute-force
// scan over the items inserted so far.
func TestHashGridMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(411))
	for round := 0; round < 12; round++ {
		rectFraction := 0.0
		if round%2 == 1 {
			rectFraction = 0.3
		}
		items := randomItems(rng, 1+rng.Intn(300), rectFraction)
		cell := 30 + rng.Float64()*400
		hg := NewHashGrid(cell)
		brute := &bruteForce{}
		for i, it := range items {
			hg.Insert(it)
			brute.items = append(brute.items, it)
			if i%17 != 0 && i != len(items)-1 {
				continue // query at a sample of prefixes, not all of them
			}
			if hg.Len() != len(brute.items) {
				t.Fatalf("Len = %d want %d", hg.Len(), len(brute.items))
			}
			for q := 0; q < 6; q++ {
				center := geo.Pt(rng.Float64()*2400-200, rng.Float64()*2400-200)
				radius := rng.Float64() * 300

				rect := geo.RectAround(center, radius)
				sameValues(t, "hashgrid Within", Within(hg, rect), Within(brute, rect))
				sameValues(t, "hashgrid WithinDistance",
					WithinDistance(hg, center, radius), WithinDistance(brute, center, radius))
				sameValues(t, "hashgrid Covering", Covering(hg, center), Covering(brute, center))

				k := 1 + rng.Intn(12)
				got := KNearest(hg, center, k)
				want := KNearest(brute, center, k)
				if len(got) != len(want) {
					t.Fatalf("hashgrid KNearest: %d items want %d", len(got), len(want))
				}
				for i := range got {
					gd := got[i].Rect.DistanceToPoint(center)
					wd := want[i].Rect.DistanceToPoint(center)
					if gd != wd {
						t.Fatalf("hashgrid KNearest[%d]: dist %v want %v", i, gd, wd)
					}
				}
			}
		}
	}
}

// TestHashGridOversize forces items across the replication budget (huge
// rectangles over a tiny cell size) into the overflow list and checks they
// are still reported exactly once.
func TestHashGridOversize(t *testing.T) {
	hg := NewHashGrid(10)
	big := Item{Rect: geo.NewRect(geo.Pt(0, 0), geo.Pt(5000, 5000)), Value: 0}
	hg.Insert(big)
	hg.Insert(pointItem(100, 100, 1))
	if len(hg.oversize) != 1 {
		t.Fatalf("big rect should overflow, oversize=%d", len(hg.oversize))
	}
	got := Within(hg, geo.RectAround(geo.Pt(100, 100), 5))
	sameValues(t, "oversize Within", got, []Item{big, pointItem(100, 100, 1)})
	near := KNearest(hg, geo.Pt(-50, 100), 2)
	if len(near) != 2 || near[0].Value.(int) != 0 {
		t.Fatalf("oversize KNearest = %v", near)
	}
}

// TestHashGridEmptyAndEstimate covers the zero-value paths and the planner
// estimate's bounds.
func TestHashGridEmptyAndEstimate(t *testing.T) {
	hg := NewHashGrid(0) // falls back to the default cell size
	if hg.CellSize() <= 0 {
		t.Fatal("default cell size")
	}
	if !hg.Bounds().IsEmpty() || hg.Len() != 0 {
		t.Fatal("empty grid should have empty bounds")
	}
	if got := Within(hg, geo.RectAround(geo.Pt(0, 0), 100)); len(got) != 0 {
		t.Fatalf("empty Within = %v", got)
	}
	if got := KNearest(hg, geo.Pt(0, 0), 3); len(got) != 0 {
		t.Fatalf("empty KNearest = %v", got)
	}
	if est := hg.EstimateWithin(geo.RectAround(geo.Pt(0, 0), 10)); est != 0 {
		t.Fatalf("empty estimate = %d", est)
	}
	rng := rand.New(rand.NewSource(5))
	for _, it := range randomItems(rng, 500, 0.1) {
		hg.Insert(it)
	}
	all := hg.EstimateWithin(hg.Bounds())
	if all <= 0 || all > hg.Len() {
		t.Fatalf("estimate over full bounds = %d (n=%d)", all, hg.Len())
	}
	small := hg.EstimateWithin(geo.RectAround(geo.Pt(1000, 1000), 30))
	if small <= 0 || small > all {
		t.Fatalf("small-window estimate = %d (all=%d)", small, all)
	}
}
