package spatial

import (
	"sort"

	"semitri/internal/geo"
)

// cursorSlackFactor sizes the inflation of a cached query relative to the
// requested radius. A query for radius d actually fetches d*(1+factor) and
// remains valid for any query point within d*factor of the cached centre:
// the annotation layers issue one candidate query per GPS record, and
// consecutive records of one object move a few metres to a few tens of
// metres, far less than half a candidate radius.
const cursorSlackFactor = 0.5

// Cursor caches the last WithinDistance query against an index to exploit
// the spatial locality of GPS streams: consecutive records of a moving
// object land near each other, so the candidate set barely changes between
// records. A hit is answered by filtering the cached (inflated) superset —
// a short slice scan — without touching the index.
//
// The cache is exact: the superset provably contains every item within the
// requested radius of any query point inside the slack disc (the rectangle
// distance is 1-Lipschitz in the query point), so cached and uncached
// answers are identical.
//
// A Cursor is not safe for concurrent use. Use one per moving object (the
// per-object streaming state of the pipeline makes this lock-free) and treat
// the returned slice as valid only until the next call.
type Cursor struct {
	ix   Index
	less func(a, b Item) bool

	valid  bool
	center geo.Point
	radius float64 // requested radius of the cached query
	slack  float64
	cached []Item // items within radius+slack of center, sorted by less
	out    []Item // scratch for the filtered answer

	hits, misses uint64
}

// NewCursor returns a locality cursor over ix.
func NewCursor(ix Index) *Cursor { return &Cursor{ix: ix} }

// NewCursorSorted returns a locality cursor whose answers are ordered by
// less. Sorting happens once per miss on the cached superset; hits inherit
// the order for free. The annotation layers use this to keep candidate
// ordering (and hence floating-point summation and tie-breaking) identical
// no matter which index structure the density heuristic picked.
func NewCursorSorted(ix Index, less func(a, b Item) bool) *Cursor {
	return &Cursor{ix: ix, less: less}
}

// Index returns the index the cursor reads through.
func (c *Cursor) Index() Index { return c.ix }

// WithinDistance returns the items whose rectangle lies within dist of p,
// equal to WithinDistance(c.Index(), p, dist) up to ordering. The returned
// slice is reused by the next call.
func (c *Cursor) WithinDistance(p geo.Point, dist float64) []Item {
	if c.valid && dist == c.radius && p.DistanceTo(c.center) <= c.slack {
		c.hits++
	} else {
		c.misses++
		c.center = p
		c.radius = dist
		c.slack = cursorSlackFactor * dist
		c.cached = AppendWithinDistance(c.cached[:0], c.ix, p, dist+c.slack)
		if c.less != nil {
			sort.Slice(c.cached, func(i, j int) bool { return c.less(c.cached[i], c.cached[j]) })
		}
		c.valid = true
	}
	c.out = c.out[:0]
	distSq := dist * dist
	for _, it := range c.cached {
		if rectDistSq(it.Rect, p) <= distSq {
			c.out = append(c.out, it)
		}
	}
	return c.out
}

// Stats returns how many queries hit and missed the cache.
func (c *Cursor) Stats() (hits, misses uint64) { return c.hits, c.misses }
