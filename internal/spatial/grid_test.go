package spatial

import (
	"math"
	"testing"
	"testing/quick"

	"semitri/internal/geo"
)

func mustGrid(t *testing.T, extent geo.Rect, cell float64) *Grid {
	t.Helper()
	g, err := NewGrid(extent, cell)
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	return g
}

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(geo.NewRect(geo.Pt(0, 0), geo.Pt(10, 10)), 0); err == nil {
		t.Fatal("expected error for zero cell size")
	}
	if _, err := NewGrid(geo.NewRect(geo.Pt(0, 0), geo.Pt(10, 10)), -5); err == nil {
		t.Fatal("expected error for negative cell size")
	}
	if _, err := NewGrid(geo.EmptyRect(), 10); err == nil {
		t.Fatal("expected error for empty extent")
	}
}

func TestGridDimensions(t *testing.T) {
	g := mustGrid(t, geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 500)), 100)
	if g.Cols != 10 || g.Rows != 5 {
		t.Fatalf("cols/rows = %d/%d", g.Cols, g.Rows)
	}
	if g.NumCells() != 50 {
		t.Fatalf("NumCells = %d", g.NumCells())
	}
	b := g.Bounds()
	if b.Min != geo.Pt(0, 0) || b.Max != geo.Pt(1000, 500) {
		t.Fatalf("Bounds = %+v", b)
	}
	// Non-integer extent expands upward.
	g2 := mustGrid(t, geo.NewRect(geo.Pt(0, 0), geo.Pt(250, 90)), 100)
	if g2.Cols != 3 || g2.Rows != 1 {
		t.Fatalf("expanded cols/rows = %d/%d", g2.Cols, g2.Rows)
	}
}

func TestCellIndexAndRect(t *testing.T) {
	g := mustGrid(t, geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000)), 100)
	col, row, ok := g.CellIndex(geo.Pt(250, 730))
	if !ok || col != 2 || row != 7 {
		t.Fatalf("CellIndex = %d,%d,%v", col, row, ok)
	}
	if _, _, ok := g.CellIndex(geo.Pt(-1, 50)); ok {
		t.Fatal("point outside grid should not be ok")
	}
	if _, _, ok := g.CellIndex(geo.Pt(50, 1001)); ok {
		t.Fatal("point outside grid should not be ok")
	}
	// Max-edge points map to last cell.
	col, row, ok = g.CellIndex(geo.Pt(1000, 1000))
	if !ok || col != 9 || row != 9 {
		t.Fatalf("max edge CellIndex = %d,%d,%v", col, row, ok)
	}
	r := g.CellRect(2, 7)
	if r.Min != geo.Pt(200, 700) || r.Max != geo.Pt(300, 800) {
		t.Fatalf("CellRect = %+v", r)
	}
	if c := g.CellCenter(0, 0); c != geo.Pt(50, 50) {
		t.Fatalf("CellCenter = %v", c)
	}
	id := g.CellAt(geo.Pt(250, 730))
	if id != g.CellID(2, 7) {
		t.Fatalf("CellAt = %d want %d", id, g.CellID(2, 7))
	}
	if g.CellAt(geo.Pt(-5, -5)) != -1 {
		t.Fatal("outside point should return -1")
	}
	if rr := g.CellRectByID(id); rr != r {
		t.Fatalf("CellRectByID = %+v want %+v", rr, r)
	}
}

// Property: every point inside the bounds maps to exactly one cell whose
// rect contains the point.
func TestCellContainsItsPoints(t *testing.T) {
	g := mustGrid(t, geo.NewRect(geo.Pt(-500, -500), geo.Pt(500, 500)), 37)
	f := func(x, y float64) bool {
		p := geo.Pt(-500+mod(x, 1000), -500+mod(y, 1000))
		col, row, ok := g.CellIndex(p)
		if !ok {
			return false
		}
		return g.CellRect(col, row).ContainsPoint(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func mod(v, m float64) float64 {
	r := math.Mod(v, m)
	if r < 0 {
		r += m
	}
	if math.IsNaN(r) || math.IsInf(r, 0) {
		return 0
	}
	return r
}

func TestCellsIntersecting(t *testing.T) {
	g := mustGrid(t, geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000)), 100)
	ids := g.CellsIntersecting(geo.NewRect(geo.Pt(150, 150), geo.Pt(350, 250)))
	// covers cols 1..3, rows 1..2 -> 3*2=6 cells
	if len(ids) != 6 {
		t.Fatalf("CellsIntersecting = %d cells, want 6", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatal("CellsIntersecting must be in ascending id order")
		}
	}
	if got := g.CellsIntersecting(geo.NewRect(geo.Pt(2000, 2000), geo.Pt(3000, 3000))); got != nil {
		t.Fatalf("disjoint rect should yield nil, got %v", got)
	}
	if got := g.CellsIntersecting(geo.EmptyRect()); got != nil {
		t.Fatal("empty rect should yield nil")
	}
	// Rect larger than grid should return all cells.
	all := g.CellsIntersecting(geo.NewRect(geo.Pt(-10000, -10000), geo.Pt(10000, 10000)))
	if len(all) != g.NumCells() {
		t.Fatalf("oversized rect = %d cells want %d", len(all), g.NumCells())
	}
}

// TestNearestCellsOrder checks the cell iterator yields every cell exactly
// once in non-decreasing distance order, from query points inside and
// outside the grid.
func TestNearestCellsOrder(t *testing.T) {
	g := mustGrid(t, geo.NewRect(geo.Pt(0, 0), geo.Pt(700, 500)), 100)
	for _, q := range []geo.Point{
		geo.Pt(350, 250), geo.Pt(10, 10), geo.Pt(-500, 250), geo.Pt(900, 900), geo.Pt(350, -1),
	} {
		it := g.NearestCells(q)
		seen := map[int]bool{}
		last := -1.0
		for {
			id, dist, ok := it.Next()
			if !ok {
				break
			}
			if seen[id] {
				t.Fatalf("cell %d yielded twice for query %v", id, q)
			}
			seen[id] = true
			if dist < last {
				t.Fatalf("distance went backwards at cell %d for query %v: %v < %v", id, q, dist, last)
			}
			last = dist
			if want := g.CellRectByID(id).DistanceToPoint(q); dist != want {
				t.Fatalf("cell %d dist = %v want %v", id, dist, want)
			}
		}
		if len(seen) != g.NumCells() {
			t.Fatalf("query %v enumerated %d cells, want %d", q, len(seen), g.NumCells())
		}
	}
}

func TestGridIndexBasics(t *testing.T) {
	g := mustGrid(t, geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000)), 50)
	ix := NewGridIndex(g, []Item{
		pointItem(100, 100, "a"),
		pointItem(105, 105, "b"),
		pointItem(900, 900, "c"),
	})
	if ix.Len() != 3 {
		t.Fatalf("Len = %d", ix.Len())
	}
	if ix.Grid() != g {
		t.Fatal("Grid accessor")
	}
	if got := Within(ix, geo.RectAround(geo.Pt(102, 102), 10)); len(got) != 2 {
		t.Fatalf("Within = %v", got)
	}
	if got := WithinDistance(ix, geo.Pt(100, 100), 8); len(got) != 2 {
		t.Fatalf("WithinDistance = %v", got)
	}
	got := WithinDistance(ix, geo.Pt(100, 100), 1)
	if len(got) != 1 || got[0].Value.(string) != "a" {
		t.Fatalf("tight WithinDistance = %v", got)
	}
	// Nearest from far away: ring expansion must still find the only close item.
	it, d, ok := Nearest(ix, geo.Pt(0, 0))
	if !ok || it.Value.(string) != "a" || d != geo.Pt(100, 100).DistanceTo(geo.Pt(0, 0)) {
		t.Fatalf("Nearest = %v, %v, %v", it, d, ok)
	}
}

func TestGridIndexOverflowAndRects(t *testing.T) {
	// Grid deliberately smaller than the data: outside items must still be
	// found by every query through the overflow list.
	g := mustGrid(t, geo.NewRect(geo.Pt(0, 0), geo.Pt(100, 100)), 10)
	items := []Item{
		pointItem(50, 50, "in"),
		pointItem(500, 500, "out"),
		{Rect: geo.NewRect(geo.Pt(20, 20), geo.Pt(45, 25)), Value: "rect-in"},
		{Rect: geo.NewRect(geo.Pt(90, 90), geo.Pt(150, 150)), Value: "rect-straddling"},
	}
	ix := NewGridIndex(g, items)
	if got := Within(ix, geo.NewRect(geo.Pt(400, 400), geo.Pt(600, 600))); len(got) != 1 || got[0].Value.(string) != "out" {
		t.Fatalf("outside query = %v", got)
	}
	// The multi-cell rect is reported once.
	n := 0
	ix.Visit(geo.NewRect(geo.Pt(0, 0), geo.Pt(100, 100)), func(it Item) bool {
		if it.Value.(string) == "rect-in" {
			n++
		}
		return true
	})
	if n != 1 {
		t.Fatalf("multi-cell rect reported %d times", n)
	}
	it, _, ok := Nearest(ix, geo.Pt(499, 499))
	if !ok || it.Value.(string) != "out" {
		t.Fatalf("Nearest should reach overflow items, got %v %v", it, ok)
	}
}

func TestGridIndexEmpty(t *testing.T) {
	g := mustGrid(t, geo.NewRect(geo.Pt(0, 0), geo.Pt(10, 10)), 1)
	ix := NewGridIndex(g, nil)
	if ix.Len() != 0 {
		t.Fatal("empty index Len")
	}
	if got := Within(ix, geo.NewRect(geo.Pt(0, 0), geo.Pt(10, 10))); got != nil {
		t.Fatalf("empty Within = %v", got)
	}
	if _, _, ok := Nearest(ix, geo.Pt(5, 5)); ok {
		t.Fatal("Nearest on empty index should be !ok")
	}
}

func pointItem(x, y float64, v any) Item {
	p := geo.Pt(x, y)
	return Item{Rect: geo.Rect{Min: p, Max: p}, Value: v}
}
