package spatial

import (
	"container/heap"
	"math"
	"sort"

	"semitri/internal/geo"
)

// strFanout is the node capacity of the packed tree. STR packs nodes full,
// so the tree is as shallow as an R-tree of this fanout can be.
const strFanout = 16

// STRTree is an immutable R-tree bulk-loaded with the Sort-Tile-Recursive
// packing of Leutenegger, Lopez and Edgington (ICDE 1997): items are sorted
// by centre x, tiled into vertical slices, each slice sorted by centre y and
// packed into full leaves; the node levels are packed the same way. Compared
// to the incremental R*-tree it replaces, the bulk load is O(n log n) with
// no reinsertion passes, and the packed nodes give near-100% space
// utilisation and tight rectangles for read-only workloads — which is what
// the annotation layers have: sources are loaded once and queried forever.
type STRTree struct {
	root *strNode
	size int
}

type strNode struct {
	rect     geo.Rect
	items    []Item     // leaf payload (nil for inner nodes)
	children []*strNode // inner payload (nil for leaves)
}

func (n *strNode) leaf() bool { return n.children == nil }

// NewSTRTree bulk-loads a packed R-tree from items. The input slice is not
// retained or modified.
func NewSTRTree(items []Item) *STRTree {
	t := &STRTree{size: len(items)}
	if len(items) == 0 {
		t.root = &strNode{rect: geo.EmptyRect(), items: []Item{}}
		return t
	}
	nodes := packLeaves(items)
	for len(nodes) > 1 {
		nodes = packInner(nodes)
	}
	t.root = nodes[0]
	return t
}

// packLeaves tiles the items into full leaves: sort by centre x, cut into
// ceil(sqrt(P)) vertical slices of whole leaves, sort each slice by centre y
// and chunk.
func packLeaves(items []Item) []*strNode {
	sorted := append([]Item(nil), items...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].Rect.Center().X < sorted[j].Rect.Center().X
	})
	leafCount := (len(sorted) + strFanout - 1) / strFanout
	sliceLeaves := int(math.Ceil(math.Sqrt(float64(leafCount))))
	sliceSize := sliceLeaves * strFanout
	out := make([]*strNode, 0, leafCount)
	for lo := 0; lo < len(sorted); lo += sliceSize {
		hi := lo + sliceSize
		if hi > len(sorted) {
			hi = len(sorted)
		}
		slice := sorted[lo:hi]
		sort.SliceStable(slice, func(i, j int) bool {
			return slice[i].Rect.Center().Y < slice[j].Rect.Center().Y
		})
		for s := 0; s < len(slice); s += strFanout {
			e := s + strFanout
			if e > len(slice) {
				e = len(slice)
			}
			leaf := &strNode{items: append([]Item(nil), slice[s:e]...)}
			r := geo.EmptyRect()
			for _, it := range leaf.items {
				r = r.Union(it.Rect)
			}
			leaf.rect = r
			out = append(out, leaf)
		}
	}
	return out
}

// packInner packs one level of nodes into parents with the same tiling.
func packInner(nodes []*strNode) []*strNode {
	sorted := append([]*strNode(nil), nodes...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].rect.Center().X < sorted[j].rect.Center().X
	})
	parentCount := (len(sorted) + strFanout - 1) / strFanout
	sliceParents := int(math.Ceil(math.Sqrt(float64(parentCount))))
	sliceSize := sliceParents * strFanout
	out := make([]*strNode, 0, parentCount)
	for lo := 0; lo < len(sorted); lo += sliceSize {
		hi := lo + sliceSize
		if hi > len(sorted) {
			hi = len(sorted)
		}
		slice := sorted[lo:hi]
		sort.SliceStable(slice, func(i, j int) bool {
			return slice[i].rect.Center().Y < slice[j].rect.Center().Y
		})
		for s := 0; s < len(slice); s += strFanout {
			e := s + strFanout
			if e > len(slice) {
				e = len(slice)
			}
			parent := &strNode{children: append([]*strNode(nil), slice[s:e]...)}
			r := geo.EmptyRect()
			for _, c := range parent.children {
				r = r.Union(c.rect)
			}
			parent.rect = r
			out = append(out, parent)
		}
	}
	return out
}

// Len implements Index.
func (t *STRTree) Len() int { return t.size }

// Bounds implements Index.
func (t *STRTree) Bounds() geo.Rect { return t.root.rect }

// Height returns the number of levels (1 for a single-leaf tree).
func (t *STRTree) Height() int {
	h := 1
	for n := t.root; !n.leaf(); n = n.children[0] {
		h++
	}
	return h
}

// Visit implements Index: depth-first range traversal.
func (t *STRTree) Visit(r geo.Rect, fn func(Item) bool) {
	t.visit(t.root, r, fn)
}

func (t *STRTree) visit(n *strNode, r geo.Rect, fn func(Item) bool) bool {
	if !n.rect.Intersects(r) {
		return true
	}
	if n.leaf() {
		for _, it := range n.items {
			if it.Rect.Intersects(r) && !fn(it) {
				return false
			}
		}
		return true
	}
	for _, c := range n.children {
		if !t.visit(c, r, fn) {
			return false
		}
	}
	return true
}

// strQueueEntry is a best-first queue element: either a node or a resolved item.
type strQueueEntry struct {
	dist float64
	node *strNode
	item *Item
}

type strQueue []strQueueEntry

func (q strQueue) Len() int           { return len(q) }
func (q strQueue) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q strQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *strQueue) Push(x any)        { *q = append(*q, x.(strQueueEntry)) }
func (q *strQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// VisitNearest implements Index: classic best-first search over the tree,
// streaming items in non-decreasing rectangle distance to p.
func (t *STRTree) VisitNearest(p geo.Point, fn func(Item, float64) bool) {
	if t.size == 0 {
		return
	}
	q := &strQueue{{dist: t.root.rect.DistanceToPoint(p), node: t.root}}
	for q.Len() > 0 {
		e := heap.Pop(q).(strQueueEntry)
		if e.item != nil {
			if !fn(*e.item, e.dist) {
				return
			}
			continue
		}
		n := e.node
		if n.leaf() {
			for i := range n.items {
				it := &n.items[i]
				heap.Push(q, strQueueEntry{dist: it.Rect.DistanceToPoint(p), item: it})
			}
			continue
		}
		for _, c := range n.children {
			heap.Push(q, strQueueEntry{dist: c.rect.DistanceToPoint(p), node: c})
		}
	}
}
