// Package spatial is the shared spatial-index layer behind SeMiTri's three
// annotation algorithms. All three layers are spatial joins between
// trajectory geometry and a 3rd-party source — land-use cells (region layer,
// Alg. 1), road segments (line layer, Alg. 2) and POIs (point layer,
// Alg. 3) — and all of them program against the same small contract, the
// Index interface, instead of each source's internals.
//
// The package provides two immutable, bulk-loaded implementations:
//
//   - STRTree, a Sort-Tile-Recursive packed R-tree (Leutenegger et al.,
//     ICDE 1997). Best for extended geometry — road-segment bounding boxes,
//     named-region polygons — and for sparse or skewed point sets.
//   - GridIndex, a uniform-grid bucket index over a Grid geometry. Best for
//     dense point sets (POIs), where a cell lookup is O(1) and beats any
//     tree descent.
//
// NewIndex selects between them per source with a density heuristic (see
// Choose). Both implementations answer every query exactly — range, point
// containment, k-nearest and refined nearest-neighbour — so callers never
// need a full-scan fallback.
//
// The query helpers (Within, WithinDistance, Covering, KNearest, NearestBy)
// are written against the interface, which keeps the two structures small:
// an index only implements rectangle traversal (Visit) and ordered
// nearest-first traversal (VisitNearest).
//
// Cursor adds a locality cache on top of any Index: GPS records arrive in
// near-sorted spatial order, so consecutive candidate queries mostly hit the
// same neighbourhood. A cursor caches the last (inflated) query result and
// answers nearby queries by filtering it, without touching the index. One
// cursor per moving object (they are not safe for concurrent use) turns the
// per-record candidate lookup of the annotation hot path into a slice scan.
package spatial

import (
	"math"

	"semitri/internal/geo"
)

// Item is a value stored in an index together with its bounding rectangle.
// Point data uses a degenerate rectangle (Min == Max).
type Item struct {
	Rect  geo.Rect
	Value any
}

// Index is the read-only contract the annotation layers program against.
// Implementations are immutable once built and safe for concurrent use.
type Index interface {
	// Len returns the number of items stored.
	Len() int
	// Bounds returns the bounding rectangle of all items (empty when Len==0).
	Bounds() geo.Rect
	// Visit calls fn for every item whose rectangle intersects r, until fn
	// returns false. Visit order is implementation-defined but deterministic.
	Visit(r geo.Rect, fn func(Item) bool)
	// VisitNearest calls fn for items in non-decreasing order of rectangle
	// distance to p (ties in implementation-defined order), until fn returns
	// false or the items run out. The traversal is exact: every item is
	// eventually visited, which is what lets NearestBy terminate without a
	// fallback scan.
	VisitNearest(p geo.Point, fn func(item Item, rectDist float64) bool)
}

// Within returns the items whose rectangle intersects r.
func Within(ix Index, r geo.Rect) []Item { return AppendWithin(nil, ix, r) }

// AppendWithin appends the items whose rectangle intersects r to dst.
func AppendWithin(dst []Item, ix Index, r geo.Rect) []Item {
	ix.Visit(r, func(it Item) bool {
		dst = append(dst, it)
		return true
	})
	return dst
}

// WithinDistance returns the items whose rectangle lies within dist of p
// (rectangle distance; exact distance for point items).
func WithinDistance(ix Index, p geo.Point, dist float64) []Item {
	return AppendWithinDistance(nil, ix, p, dist)
}

// AppendWithinDistance appends the items whose rectangle lies within dist of
// p to dst.
func AppendWithinDistance(dst []Item, ix Index, p geo.Point, dist float64) []Item {
	distSq := dist * dist
	ix.Visit(geo.RectAround(p, dist), func(it Item) bool {
		if rectDistSq(it.Rect, p) <= distSq {
			dst = append(dst, it)
		}
		return true
	})
	return dst
}

// rectDistSq is the squared rectangle-to-point distance — the hot filters
// compare against a squared radius to stay off the hypot path.
func rectDistSq(r geo.Rect, p geo.Point) float64 {
	var dx, dy float64
	if p.X < r.Min.X {
		dx = r.Min.X - p.X
	} else if p.X > r.Max.X {
		dx = p.X - r.Max.X
	}
	if p.Y < r.Min.Y {
		dy = r.Min.Y - p.Y
	} else if p.Y > r.Max.Y {
		dy = p.Y - r.Max.Y
	}
	return dx*dx + dy*dy
}

// Covering returns the items whose rectangle contains p — the candidate set
// of a point-in-polygon query (callers refine against the exact geometry).
func Covering(ix Index, p geo.Point) []Item { return AppendCovering(nil, ix, p) }

// AppendCovering appends the items whose rectangle contains p to dst.
func AppendCovering(dst []Item, ix Index, p geo.Point) []Item {
	ix.Visit(geo.Rect{Min: p, Max: p}, func(it Item) bool {
		if it.Rect.ContainsPoint(p) {
			dst = append(dst, it)
		}
		return true
	})
	return dst
}

// KNearest returns up to k items closest to p by rectangle distance, ordered
// by non-decreasing distance.
func KNearest(ix Index, p geo.Point, k int) []Item {
	if k <= 0 {
		return nil
	}
	out := make([]Item, 0, k)
	ix.VisitNearest(p, func(it Item, _ float64) bool {
		out = append(out, it)
		return len(out) < k
	})
	return out
}

// NearestBy returns the item minimising dist(item), where dist must be
// bounded below by the item's rectangle distance to p (true for any metric
// to geometry inside the bounding box, e.g. the point–segment distance of
// Eq. 1). The search walks items nearest-first and stops as soon as the
// rectangle lower bound exceeds the best refined distance, so it is exact on
// any index size — including one- and zero-item indexes — with no fallback.
func NearestBy(ix Index, p geo.Point, dist func(Item) float64) (Item, float64, bool) {
	best := math.Inf(1)
	var bestItem Item
	found := false
	ix.VisitNearest(p, func(it Item, rectDist float64) bool {
		if rectDist > best {
			return false
		}
		if d := dist(it); d < best {
			best, bestItem, found = d, it, true
		}
		return true
	})
	return bestItem, best, found
}

// Nearest returns the item closest to p by rectangle distance (exact
// distance for point items).
func Nearest(ix Index, p geo.Point) (Item, float64, bool) {
	return NearestBy(ix, p, func(it Item) float64 { return it.Rect.DistanceToPoint(p) })
}
