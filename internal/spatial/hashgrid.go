package spatial

import (
	"container/heap"
	"math"
	"sort"

	"semitri/internal/geo"
)

// HashGrid is the mutable companion of the bulk-loaded indexes: an
// incremental uniform grid whose buckets are keyed by cell coordinates in a
// hash map, so the covered domain is unbounded and grows with the data. It
// exists for the read side of live ingestion — the query engine indexes
// stop/move geometry as episodes close, long before the final extent is
// known, which rules out the immutable STRTree/GridIndex (both need the full
// item set up front).
//
// Insert appends an item to every cell its rectangle overlaps; items
// spanning more than oversizeCells cells go to a separate overflow list that
// every query scans (episode rectangles are small, so the list stays empty
// in practice — it only guards correctness against degenerate geometry).
// Queries answer exactly, like every other Index: Visit reports each
// intersecting item once (from the canonical covered cell, so no per-query
// dedup allocation), and VisitNearest sweeps occupied cells in distance
// order with an item heap, emitting items in exact non-decreasing rectangle
// distance.
//
// A HashGrid is NOT safe for concurrent use; callers guard it with their own
// lock (the query engine keeps its engine-wide grid behind an RWMutex).
type HashGrid struct {
	cellSize float64
	cells    map[hashCell][]gridEntry
	oversize []gridEntry
	n        int
	nextID   int
	bounds   geo.Rect
}

// hashCell addresses one bucket: the integer cell coordinates of the point
// (x/cellSize, y/cellSize), floor-rounded, over an unbounded domain.
type hashCell struct{ col, row int64 }

// gridEntry is an item plus its insertion id, which disambiguates duplicate
// rectangles during the nearest sweep and makes multi-cell dedup cheap.
type gridEntry struct {
	item Item
	id   int
}

// oversizeCells is the covered-cell budget above which an item is stored in
// the overflow list instead of being replicated into every covered bucket.
const oversizeCells = 64

// NewHashGrid returns an empty incremental grid with the given cell size
// (metres; values <= 0 fall back to 250m, a neighbourhood-sized bucket for
// episode geometry).
func NewHashGrid(cellSize float64) *HashGrid {
	if cellSize <= 0 {
		cellSize = 250
	}
	return &HashGrid{cellSize: cellSize, cells: map[hashCell][]gridEntry{}}
}

// CellSize returns the bucket side length in metres.
func (hg *HashGrid) CellSize() float64 { return hg.cellSize }

// Len returns the number of items inserted.
func (hg *HashGrid) Len() int { return hg.n }

// Bounds returns the bounding rectangle of all inserted items (empty when
// Len == 0).
func (hg *HashGrid) Bounds() geo.Rect {
	if hg.n == 0 {
		return geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(-1, -1)}
	}
	return hg.bounds
}

// cellOf returns the bucket containing p.
func (hg *HashGrid) cellOf(p geo.Point) hashCell {
	return hashCell{
		col: int64(math.Floor(p.X / hg.cellSize)),
		row: int64(math.Floor(p.Y / hg.cellSize)),
	}
}

// cellRange returns the inclusive bucket range covered by r.
func (hg *HashGrid) cellRange(r geo.Rect) (lo, hi hashCell) {
	return hg.cellOf(r.Min), hg.cellOf(r.Max)
}

// cellRect returns the extent of one bucket.
func (hg *HashGrid) cellRect(c hashCell) geo.Rect {
	return geo.Rect{
		Min: geo.Pt(float64(c.col)*hg.cellSize, float64(c.row)*hg.cellSize),
		Max: geo.Pt(float64(c.col+1)*hg.cellSize, float64(c.row+1)*hg.cellSize),
	}
}

// Insert adds an item. Inserting while a Visit/VisitNearest traversal is in
// progress is not allowed (no internal locking).
func (hg *HashGrid) Insert(it Item) {
	e := gridEntry{item: it, id: hg.nextID}
	hg.nextID++
	if hg.n == 0 {
		hg.bounds = it.Rect
	} else {
		hg.bounds = hg.bounds.Union(it.Rect)
	}
	hg.n++
	lo, hi := hg.cellRange(it.Rect)
	covered := (hi.col - lo.col + 1) * (hi.row - lo.row + 1)
	if covered > oversizeCells {
		hg.oversize = append(hg.oversize, e)
		return
	}
	for col := lo.col; col <= hi.col; col++ {
		for row := lo.row; row <= hi.row; row++ {
			c := hashCell{col, row}
			hg.cells[c] = append(hg.cells[c], e)
		}
	}
}

// Visit calls fn for every item whose rectangle intersects r, until fn
// returns false. An item replicated across several buckets is reported
// exactly once: from the lowest covered bucket that also lies in the query
// range (its canonical reporting cell), an O(1) test per encounter.
func (hg *HashGrid) Visit(r geo.Rect, fn func(Item) bool) {
	if r.IsEmpty() || hg.n == 0 {
		return
	}
	qlo, qhi := hg.cellRange(r)
	// A query window much larger than the data would walk mostly-empty
	// buckets; iterate the occupied buckets instead (sorted by id for a
	// deterministic order — which mode runs is a deterministic function of
	// the query, so the contract holds).
	if cols, rows := qhi.col-qlo.col+1, qhi.row-qlo.row+1; cols*rows > int64(len(hg.cells)) {
		var hits []gridEntry
		for c, entries := range hg.cells {
			for _, e := range entries {
				if !e.item.Rect.Intersects(r) {
					continue
				}
				if ilo, _ := hg.cellRange(e.item.Rect); c != (hashCell{maxInt64(ilo.col, qlo.col), maxInt64(ilo.row, qlo.row)}) {
					continue
				}
				hits = append(hits, e)
			}
		}
		sort.Slice(hits, func(i, j int) bool { return hits[i].id < hits[j].id })
		for _, e := range hits {
			if !fn(e.item) {
				return
			}
		}
	} else {
		for col := qlo.col; col <= qhi.col; col++ {
			for row := qlo.row; row <= qhi.row; row++ {
				for _, e := range hg.cells[hashCell{col, row}] {
					if !e.item.Rect.Intersects(r) {
						continue
					}
					ilo, _ := hg.cellRange(e.item.Rect)
					if col != maxInt64(ilo.col, qlo.col) || row != maxInt64(ilo.row, qlo.row) {
						continue // reported from the canonical cell instead
					}
					if !fn(e.item) {
						return
					}
				}
			}
		}
	}
	for _, e := range hg.oversize {
		if e.item.Rect.Intersects(r) && !fn(e.item) {
			return
		}
	}
}

// entryHeap orders entries by rectangle distance to the query point, ties by
// insertion id for determinism.
type entryHeap []entryDist

type entryDist struct {
	e    gridEntry
	dist float64
}

func (h entryHeap) Len() int { return len(h) }
func (h entryHeap) Less(i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist < h[j].dist
	}
	return h[i].e.id < h[j].e.id
}
func (h entryHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *entryHeap) Push(x any)   { *h = append(*h, x.(entryDist)) }
func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// VisitNearest calls fn for items in exact non-decreasing order of rectangle
// distance to p, until fn returns false or the items run out. The sweep
// sorts the occupied buckets by distance once (O(C log C) for C occupied
// buckets), then interleaves bucket expansion with an item heap: an item is
// emitted only once every unexpanded bucket is at least as far as it, which
// makes the order exact. Multi-bucket items enter the heap from their
// nearest covered bucket only.
func (hg *HashGrid) VisitNearest(p geo.Point, fn func(item Item, rectDist float64) bool) {
	if hg.n == 0 {
		return
	}
	type cellDist struct {
		c    hashCell
		dist float64
	}
	cells := make([]cellDist, 0, len(hg.cells))
	for c := range hg.cells {
		cells = append(cells, cellDist{c, hg.cellRect(c).DistanceToPoint(p)})
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].dist != cells[j].dist {
			return cells[i].dist < cells[j].dist
		}
		if cells[i].c.col != cells[j].c.col {
			return cells[i].c.col < cells[j].c.col
		}
		return cells[i].c.row < cells[j].c.row
	})
	var pending entryHeap
	for _, e := range hg.oversize {
		heap.Push(&pending, entryDist{e, e.item.Rect.DistanceToPoint(p)})
	}
	next := 0
	for {
		// Expand buckets until the nearest unexpanded bucket cannot contain
		// anything closer than the nearest pending item.
		for next < len(cells) && (len(pending) == 0 || cells[next].dist <= pending[0].dist) {
			c := cells[next].c
			for _, e := range hg.cells[c] {
				ilo, ihi := hg.cellRange(e.item.Rect)
				nearest := hashCell{
					col: clampInt64(int64(math.Floor(p.X/hg.cellSize)), ilo.col, ihi.col),
					row: clampInt64(int64(math.Floor(p.Y/hg.cellSize)), ilo.row, ihi.row),
				}
				if nearest != c {
					continue // pushed when its nearest covered bucket expands
				}
				heap.Push(&pending, entryDist{e, e.item.Rect.DistanceToPoint(p)})
			}
			next++
		}
		if len(pending) == 0 {
			return
		}
		// The heap top is exact: the expansion loop above only stops once
		// every unexpanded bucket is farther away than it.
		ed := heap.Pop(&pending).(entryDist)
		if !fn(ed.e.item, ed.dist) {
			return
		}
	}
}

// EstimateWithin returns an O(1) estimate of the number of items
// intersecting r, used by query planners to rank access paths without
// paying for the traversal: average bucket occupancy times the number of
// buckets r covers, clamped to the item count, plus the overflow list.
func (hg *HashGrid) EstimateWithin(r geo.Rect) int {
	if hg.n == 0 || r.IsEmpty() {
		return 0
	}
	if len(hg.cells) == 0 {
		return len(hg.oversize)
	}
	lo, hi := hg.cellRange(r)
	covered := float64(hi.col-lo.col+1) * float64(hi.row-lo.row+1)
	perCell := float64(hg.n-len(hg.oversize)) / float64(len(hg.cells))
	est := int(math.Ceil(perCell*covered)) + len(hg.oversize)
	if est > hg.n {
		est = hg.n
	}
	return est
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func clampInt64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
