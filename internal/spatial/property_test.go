package spatial

import (
	"math/rand"
	"sort"
	"testing"

	"semitri/internal/geo"
)

// bruteForce is the reference implementation every real index is compared
// against in the quick-check style property tests below.
type bruteForce struct{ items []Item }

func (b *bruteForce) Len() int { return len(b.items) }
func (b *bruteForce) Bounds() geo.Rect {
	return boundsOf(b.items)
}
func (b *bruteForce) Visit(r geo.Rect, fn func(Item) bool) {
	for _, it := range b.items {
		if it.Rect.Intersects(r) && !fn(it) {
			return
		}
	}
}
func (b *bruteForce) VisitNearest(p geo.Point, fn func(Item, float64) bool) {
	order := append([]Item(nil), b.items...)
	sort.SliceStable(order, func(i, j int) bool {
		return order[i].Rect.DistanceToPoint(p) < order[j].Rect.DistanceToPoint(p)
	})
	for _, it := range order {
		if !fn(it, it.Rect.DistanceToPoint(p)) {
			return
		}
	}
}

// randomItems generates a mixed geometry set: mostly points (so the grid is
// a legal choice) with some extended rectangles.
func randomItems(rng *rand.Rand, n int, rectFraction float64) []Item {
	items := make([]Item, 0, n)
	for i := 0; i < n; i++ {
		x, y := rng.Float64()*2000, rng.Float64()*2000
		if rng.Float64() < rectFraction {
			items = append(items, Item{
				Rect:  geo.NewRect(geo.Pt(x, y), geo.Pt(x+rng.Float64()*120, y+rng.Float64()*120)),
				Value: i,
			})
		} else {
			items = append(items, pointItem(x, y, i))
		}
	}
	return items
}

func valueSet(items []Item) map[int]bool {
	out := make(map[int]bool, len(items))
	for _, it := range items {
		out[it.Value.(int)] = true
	}
	return out
}

func sameValues(t *testing.T, label string, got, want []Item) {
	t.Helper()
	gs, ws := valueSet(got), valueSet(want)
	if len(gs) != len(got) {
		t.Fatalf("%s: result contains duplicates (%d items, %d distinct)", label, len(got), len(gs))
	}
	if len(gs) != len(ws) {
		t.Fatalf("%s: got %d items, want %d", label, len(gs), len(ws))
	}
	for v := range ws {
		if !gs[v] {
			t.Fatalf("%s: missing item %d", label, v)
		}
	}
}

// TestIndexImplementationsAgree is the quick-check property test of the
// spatial layer: on random geometry, the STR tree, the grid index and the
// auto-selected index must return exactly the candidate sets a brute-force
// scan returns, for range, radius, covering and nearest queries.
func TestIndexImplementationsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	for round := 0; round < 25; round++ {
		n := 1 + rng.Intn(400)
		rectFraction := 0.0
		if round%2 == 1 {
			rectFraction = 0.3
		}
		items := randomItems(rng, n, rectFraction)
		brute := &bruteForce{items: items}

		// Grid geometry deliberately misaligned with the data (and in some
		// rounds smaller than the data extent, exercising overflow).
		extent := geo.NewRect(geo.Pt(0, 0), geo.Pt(2000, 2000))
		if round%3 == 0 {
			extent = geo.NewRect(geo.Pt(300, 300), geo.Pt(1500, 1500))
		}
		cell := 50 + rng.Float64()*300
		g, err := NewGrid(extent, cell)
		if err != nil {
			t.Fatal(err)
		}
		indexes := map[string]Index{
			"str":  NewSTRTree(items),
			"grid": NewGridIndex(g, items),
			"auto": NewIndex(items),
		}
		for name, ix := range indexes {
			if ix.Len() != len(items) {
				t.Fatalf("%s: Len = %d want %d", name, ix.Len(), len(items))
			}
			for q := 0; q < 8; q++ {
				center := geo.Pt(rng.Float64()*2400-200, rng.Float64()*2400-200)
				radius := rng.Float64() * 300

				rect := geo.RectAround(center, radius)
				sameValues(t, name+" Within", Within(ix, rect), Within(brute, rect))
				sameValues(t, name+" WithinDistance",
					WithinDistance(ix, center, radius), WithinDistance(brute, center, radius))
				sameValues(t, name+" Covering", Covering(ix, center), Covering(brute, center))

				// KNearest: distances must match the brute-force prefix
				// (item identity may differ on exact ties).
				k := 1 + rng.Intn(12)
				got := KNearest(ix, center, k)
				want := KNearest(brute, center, k)
				if len(got) != len(want) {
					t.Fatalf("%s KNearest: %d items want %d", name, len(got), len(want))
				}
				for i := range got {
					gd := got[i].Rect.DistanceToPoint(center)
					wd := want[i].Rect.DistanceToPoint(center)
					if gd != wd {
						t.Fatalf("%s KNearest[%d]: dist %v want %v", name, i, gd, wd)
					}
				}

				// NearestBy with a refined metric (distance to the rect
				// centre, strictly larger than the rect distance).
				refine := func(it Item) float64 { return it.Rect.Center().DistanceTo(center) }
				_, gd, gok := NearestBy(ix, center, refine)
				_, wd, wok := NearestBy(brute, center, refine)
				if gok != wok || (gok && gd != wd) {
					t.Fatalf("%s NearestBy: (%v,%v) want (%v,%v)", name, gd, gok, wd, wok)
				}
			}
		}
	}
}

func TestChooseHeuristic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Small sets always take the tree.
	if k := Choose(randomItems(rng, 10, 0)); k != KindSTR {
		t.Fatalf("small set chose %v", k)
	}
	// Dense point sets take the grid.
	if k := Choose(randomItems(rng, 5000, 0)); k != KindGrid {
		t.Fatalf("dense point set chose %v", k)
	}
	// Rect-heavy sets take the tree.
	if k := Choose(randomItems(rng, 5000, 0.5)); k != KindSTR {
		t.Fatalf("rect-heavy set chose %v", k)
	}
	// Degenerate (collinear) point sets take the tree: a grid over a
	// zero-area extent cannot be sized.
	var line []Item
	for i := 0; i < 500; i++ {
		line = append(line, pointItem(float64(i), 0, i))
	}
	if k := Choose(line); k != KindSTR {
		t.Fatalf("degenerate set chose %v", k)
	}
	if KindGrid.String() != "grid" || KindSTR.String() != "str-rtree" {
		t.Fatal("Kind.String")
	}
	// NewIndex honours the choice.
	if _, ok := NewIndex(randomItems(rng, 5000, 0)).(*GridIndex); !ok {
		t.Fatal("NewIndex should build a grid for dense points")
	}
	if _, ok := NewIndex(line).(*STRTree); !ok {
		t.Fatal("NewIndex should build a tree for degenerate sets")
	}
}

func TestCursorMatchesUncached(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	items := randomItems(rng, 800, 0.1)
	ix := NewIndex(items)
	less := func(a, b Item) bool { return a.Value.(int) < b.Value.(int) }
	cur := NewCursorSorted(ix, less)
	// Random walk with small steps: mostly hits, occasionally teleporting.
	p := geo.Pt(1000, 1000)
	const radius = 80.0
	for i := 0; i < 500; i++ {
		if i%50 == 49 {
			p = geo.Pt(rng.Float64()*2000, rng.Float64()*2000)
		} else {
			p = geo.Pt(p.X+rng.NormFloat64()*10, p.Y+rng.NormFloat64()*10)
		}
		got := cur.WithinDistance(p, radius)
		want := WithinDistance(ix, p, radius)
		sort.Slice(want, func(i, j int) bool { return less(want[i], want[j]) })
		if len(got) != len(want) {
			t.Fatalf("step %d: cursor %d items, uncached %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j].Value.(int) != want[j].Value.(int) {
				t.Fatalf("step %d item %d: cursor %v, uncached %v", i, j, got[j].Value, want[j].Value)
			}
		}
	}
	hits, misses := cur.Stats()
	if hits+misses != 500 {
		t.Fatalf("stats %d+%d != 500", hits, misses)
	}
	if hits == 0 {
		t.Fatal("a 10m-step walk should hit the cache")
	}
	// A changed radius always misses.
	cur2 := NewCursor(ix)
	cur2.WithinDistance(geo.Pt(100, 100), 50)
	cur2.WithinDistance(geo.Pt(100, 100), 60)
	if h, m := cur2.Stats(); h != 0 || m != 2 {
		t.Fatalf("radius change should miss: hits=%d misses=%d", h, m)
	}
	if cur2.Index() != ix {
		t.Fatal("Index accessor")
	}
}
