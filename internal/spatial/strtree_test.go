package spatial

import (
	"math/rand"
	"testing"

	"semitri/internal/geo"
)

func TestSTRTreeEmptyAndSingle(t *testing.T) {
	empty := NewSTRTree(nil)
	if empty.Len() != 0 || empty.Height() != 1 {
		t.Fatalf("empty tree Len=%d Height=%d", empty.Len(), empty.Height())
	}
	if got := Within(empty, geo.NewRect(geo.Pt(-1e9, -1e9), geo.Pt(1e9, 1e9))); got != nil {
		t.Fatalf("empty Within = %v", got)
	}
	if _, _, ok := Nearest(empty, geo.Pt(0, 0)); ok {
		t.Fatal("Nearest on empty tree should be !ok")
	}

	one := NewSTRTree([]Item{pointItem(3, 4, "only")})
	if one.Len() != 1 {
		t.Fatalf("Len = %d", one.Len())
	}
	it, d, ok := Nearest(one, geo.Pt(0, 0))
	if !ok || it.Value.(string) != "only" || d != 5 {
		t.Fatalf("Nearest = %v, %v, %v", it, d, ok)
	}
	if got := Covering(one, geo.Pt(3, 4)); len(got) != 1 {
		t.Fatalf("Covering = %v", got)
	}
}

func TestSTRTreePacksShallow(t *testing.T) {
	var items []Item
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 4096; i++ {
		items = append(items, pointItem(rng.Float64()*1e4, rng.Float64()*1e4, i))
	}
	tr := NewSTRTree(items)
	if tr.Len() != 4096 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// 4096 items at fanout 16 pack into exactly 3 levels (16^3).
	if tr.Height() != 3 {
		t.Fatalf("Height = %d, want 3 for a packed tree", tr.Height())
	}
	if tr.Bounds().IsEmpty() {
		t.Fatal("Bounds should not be empty")
	}
}

func TestSTRTreeRangeAndNearestVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var items []Item
	for i := 0; i < 700; i++ {
		// Mix of points and small rects.
		x, y := rng.Float64()*1000, rng.Float64()*1000
		if i%3 == 0 {
			items = append(items, Item{
				Rect:  geo.NewRect(geo.Pt(x, y), geo.Pt(x+rng.Float64()*40, y+rng.Float64()*40)),
				Value: i,
			})
		} else {
			items = append(items, pointItem(x, y, i))
		}
	}
	tr := NewSTRTree(items)
	for trial := 0; trial < 60; trial++ {
		q := geo.RectAround(geo.Pt(rng.Float64()*1000, rng.Float64()*1000), rng.Float64()*80)
		got := map[int]bool{}
		for _, it := range Within(tr, q) {
			got[it.Value.(int)] = true
		}
		want := map[int]bool{}
		for _, it := range items {
			if it.Rect.Intersects(q) {
				want[it.Value.(int)] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("Within(%+v): got %d items want %d", q, len(got), len(want))
		}
		for v := range want {
			if !got[v] {
				t.Fatalf("Within missing item %d", v)
			}
		}
	}
	for trial := 0; trial < 60; trial++ {
		p := geo.Pt(rng.Float64()*1200-100, rng.Float64()*1200-100)
		it, d, ok := Nearest(tr, p)
		if !ok {
			t.Fatal("Nearest should find something")
		}
		best := -1.0
		for _, cand := range items {
			dd := cand.Rect.DistanceToPoint(p)
			if best < 0 || dd < best {
				best = dd
			}
		}
		if d != best {
			t.Fatalf("Nearest dist = %v want %v (item %v)", d, best, it.Value)
		}
	}
}

func TestVisitNearestOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var items []Item
	for i := 0; i < 300; i++ {
		items = append(items, pointItem(rng.Float64()*500, rng.Float64()*500, i))
	}
	tr := NewSTRTree(items)
	p := geo.Pt(250, 250)
	last := -1.0
	n := 0
	tr.VisitNearest(p, func(it Item, d float64) bool {
		if d < last {
			t.Fatalf("VisitNearest out of order: %v after %v", d, last)
		}
		last = d
		n++
		return true
	})
	if n != len(items) {
		t.Fatalf("VisitNearest visited %d of %d", n, len(items))
	}
	// KNearest matches a sorted brute force prefix by distance.
	k := 10
	got := KNearest(tr, p, k)
	if len(got) != k {
		t.Fatalf("KNearest returned %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Rect.DistanceToPoint(p) < got[i-1].Rect.DistanceToPoint(p) {
			t.Fatal("KNearest not ordered")
		}
	}
}
