package spatial

import (
	"container/heap"
	"fmt"
	"math"

	"semitri/internal/geo"
)

// Grid is a uniform partitioning of a rectangular extent into Cols x Rows
// equal square cells. It is both the geometry of SeMiTri's raster sources —
// the 100m x 100m land-use cell model (Fig. 4) and the discretization of the
// POI emission probabilities (Figs. 7/8) — and the bucket layout of
// GridIndex.
type Grid struct {
	Origin   geo.Point // lower-left corner of cell (0,0)
	CellSize float64   // side length of a square cell, in metres
	Cols     int
	Rows     int
}

// NewGrid creates a grid covering extent with square cells of the given
// size. The extent is expanded (never shrunk) so an integer number of cells
// covers it.
func NewGrid(extent geo.Rect, cellSize float64) (*Grid, error) {
	if cellSize <= 0 {
		return nil, fmt.Errorf("spatial: cell size must be positive, got %v", cellSize)
	}
	if extent.IsEmpty() {
		return nil, fmt.Errorf("spatial: empty grid extent")
	}
	cols := int(math.Ceil(extent.Width() / cellSize))
	rows := int(math.Ceil(extent.Height() / cellSize))
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	return &Grid{Origin: extent.Min, CellSize: cellSize, Cols: cols, Rows: rows}, nil
}

// NumCells returns the total number of cells in the grid.
func (g *Grid) NumCells() int { return g.Cols * g.Rows }

// Bounds returns the full extent covered by the grid.
func (g *Grid) Bounds() geo.Rect {
	return geo.Rect{
		Min: g.Origin,
		Max: geo.Pt(g.Origin.X+float64(g.Cols)*g.CellSize, g.Origin.Y+float64(g.Rows)*g.CellSize),
	}
}

// CellIndex returns the (col, row) of the cell containing p and whether p is
// inside the grid extent. Points on the max edge map to the last cell.
func (g *Grid) CellIndex(p geo.Point) (col, row int, ok bool) {
	col = int(math.Floor((p.X - g.Origin.X) / g.CellSize))
	row = int(math.Floor((p.Y - g.Origin.Y) / g.CellSize))
	if p.X == g.Origin.X+float64(g.Cols)*g.CellSize {
		col = g.Cols - 1
	}
	if p.Y == g.Origin.Y+float64(g.Rows)*g.CellSize {
		row = g.Rows - 1
	}
	if col < 0 || col >= g.Cols || row < 0 || row >= g.Rows {
		return 0, 0, false
	}
	return col, row, true
}

// CellID returns a dense integer id for the cell (col, row).
func (g *Grid) CellID(col, row int) int { return row*g.Cols + col }

// CellAt returns the id of the cell containing p, or -1 when outside.
func (g *Grid) CellAt(p geo.Point) int {
	col, row, ok := g.CellIndex(p)
	if !ok {
		return -1
	}
	return g.CellID(col, row)
}

// CellRect returns the extent of the cell (col, row).
func (g *Grid) CellRect(col, row int) geo.Rect {
	min := geo.Pt(g.Origin.X+float64(col)*g.CellSize, g.Origin.Y+float64(row)*g.CellSize)
	return geo.Rect{Min: min, Max: geo.Pt(min.X+g.CellSize, min.Y+g.CellSize)}
}

// CellRectByID returns the extent of the cell with the given dense id.
func (g *Grid) CellRectByID(id int) geo.Rect {
	return g.CellRect(id%g.Cols, id/g.Cols)
}

// CellCenter returns the centre point of the cell (col, row).
func (g *Grid) CellCenter(col, row int) geo.Point { return g.CellRect(col, row).Center() }

// cellRange returns the inclusive col/row range of cells intersecting r,
// clipped to the grid; ok is false when r misses the grid entirely.
func (g *Grid) cellRange(r geo.Rect) (minCol, maxCol, minRow, maxRow int, ok bool) {
	if r.IsEmpty() || !g.Bounds().Intersects(r) {
		return 0, 0, 0, 0, false
	}
	clipped := g.Bounds().Intersection(r)
	minCol = clampInt(int(math.Floor((clipped.Min.X-g.Origin.X)/g.CellSize)), 0, g.Cols-1)
	maxCol = clampInt(int(math.Floor((clipped.Max.X-g.Origin.X)/g.CellSize)), 0, g.Cols-1)
	minRow = clampInt(int(math.Floor((clipped.Min.Y-g.Origin.Y)/g.CellSize)), 0, g.Rows-1)
	maxRow = clampInt(int(math.Floor((clipped.Max.Y-g.Origin.Y)/g.CellSize)), 0, g.Rows-1)
	return minCol, maxCol, minRow, maxRow, true
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// CellsIntersecting returns the ids of all cells whose extent intersects r,
// in ascending (row-major) id order.
func (g *Grid) CellsIntersecting(r geo.Rect) []int {
	var out []int
	g.VisitCellsIntersecting(r, func(id int) bool {
		out = append(out, id)
		return true
	})
	return out
}

// VisitCellsIntersecting calls fn for every cell id whose extent intersects
// r, in ascending (row-major) id order, until fn returns false.
func (g *Grid) VisitCellsIntersecting(r geo.Rect, fn func(id int) bool) {
	minCol, maxCol, minRow, maxRow, ok := g.cellRange(r)
	if !ok {
		return
	}
	for row := minRow; row <= maxRow; row++ {
		for col := minCol; col <= maxCol; col++ {
			if !fn(g.CellID(col, row)) {
				return
			}
		}
	}
}

// CellIter enumerates the grid's cells in non-decreasing order of distance
// to a query point (see Grid.NearestCells).
type CellIter struct {
	g      *Grid
	p      geo.Point
	center [2]int // clamped (col, row) the rings expand from
	ring   int    // next ring to push
	maxR   int
	q      cellQueue
}

type cellEntry struct {
	dist float64
	id   int
}

type cellQueue []cellEntry

func (q cellQueue) Len() int           { return len(q) }
func (q cellQueue) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q cellQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *cellQueue) Push(x any)        { *q = append(*q, x.(cellEntry)) }
func (q *cellQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// NearestCells returns an iterator over all cells in non-decreasing order of
// distance from p to the cell rectangle. The iterator expands Chebyshev
// rings around the (clamped) cell containing p and holds only one ring in
// its heap at a time, so a nearest query on a large grid stays cheap.
func (g *Grid) NearestCells(p geo.Point) *CellIter {
	col := clampInt(int(math.Floor((p.X-g.Origin.X)/g.CellSize)), 0, g.Cols-1)
	row := clampInt(int(math.Floor((p.Y-g.Origin.Y)/g.CellSize)), 0, g.Rows-1)
	maxR := maxInt(maxInt(col, g.Cols-1-col), maxInt(row, g.Rows-1-row))
	return &CellIter{g: g, p: p, center: [2]int{col, row}, maxR: maxR}
}

// Next returns the next cell id and its rectangle distance to the query
// point; ok is false when all cells have been enumerated.
func (it *CellIter) Next() (id int, dist float64, ok bool) {
	for {
		// Safe to emit once the heap top cannot be beaten by any cell in a
		// ring not yet pushed: cells in ring k >= it.ring lie at least
		// (it.ring-1)*CellSize from the query point.
		if len(it.q) > 0 {
			bound := float64(it.ring-1) * it.g.CellSize
			if it.ring > it.maxR || it.q[0].dist <= bound {
				e := heap.Pop(&it.q).(cellEntry)
				return e.id, e.dist, true
			}
		} else if it.ring > it.maxR {
			return 0, 0, false
		}
		it.pushRing(it.ring)
		it.ring++
	}
}

// pushRing adds the cells at Chebyshev distance k from the centre cell.
func (it *CellIter) pushRing(k int) {
	g := it.g
	c, r := it.center[0], it.center[1]
	push := func(col, row int) {
		if col < 0 || col >= g.Cols || row < 0 || row >= g.Rows {
			return
		}
		id := g.CellID(col, row)
		heap.Push(&it.q, cellEntry{dist: g.CellRect(col, row).DistanceToPoint(it.p), id: id})
	}
	if k == 0 {
		push(c, r)
		return
	}
	for col := c - k; col <= c+k; col++ {
		push(col, r-k)
		push(col, r+k)
	}
	for row := r - k + 1; row <= r+k-1; row++ {
		push(c-k, row)
		push(c+k, row)
	}
}

// GridIndex is a uniform-grid bucket index over an immutable item set: each
// cell holds the indices of the items whose rectangle intersects it. For
// dense point data (POIs) a candidate lookup is a constant-time bucket read,
// which is why the density heuristic of NewIndex prefers it over the STR
// tree there. Items not fully inside the grid extent go to a small overflow
// list scanned on every query, so the index stays exact for any input.
type GridIndex struct {
	grid      *Grid
	items     []Item
	cells     [][]int32
	overflow  []int32
	bounds    geo.Rect
	multiCell bool // some item lives in more than one cell: queries dedupe
}

// NewGridIndex builds a bucket index for items over the given grid geometry.
// The input slice is not retained or modified.
func NewGridIndex(g *Grid, items []Item) *GridIndex {
	ix := &GridIndex{
		grid:   g,
		items:  append([]Item(nil), items...),
		cells:  make([][]int32, g.NumCells()),
		bounds: geo.EmptyRect(),
	}
	gb := g.Bounds()
	for i, it := range ix.items {
		ix.bounds = ix.bounds.Union(it.Rect)
		if isPointRect(it.Rect) {
			if id := g.CellAt(it.Rect.Min); id >= 0 {
				ix.cells[id] = append(ix.cells[id], int32(i))
			} else {
				ix.overflow = append(ix.overflow, int32(i))
			}
			continue
		}
		if !gb.ContainsRect(it.Rect) {
			ix.overflow = append(ix.overflow, int32(i))
			continue
		}
		n := 0
		g.VisitCellsIntersecting(it.Rect, func(id int) bool {
			ix.cells[id] = append(ix.cells[id], int32(i))
			n++
			return true
		})
		if n > 1 {
			ix.multiCell = true
		}
	}
	return ix
}

func isPointRect(r geo.Rect) bool { return r.Min == r.Max }

// Grid returns the underlying grid geometry.
func (ix *GridIndex) Grid() *Grid { return ix.grid }

// Len implements Index.
func (ix *GridIndex) Len() int { return len(ix.items) }

// Bounds implements Index.
func (ix *GridIndex) Bounds() geo.Rect { return ix.bounds }

// Visit implements Index: bucket scan over the cells intersecting r plus the
// overflow list. Items spanning several cells are reported once.
func (ix *GridIndex) Visit(r geo.Rect, fn func(Item) bool) {
	for _, i := range ix.overflow {
		if ix.items[i].Rect.Intersects(r) && !fn(ix.items[i]) {
			return
		}
	}
	var seen map[int32]struct{}
	if ix.multiCell {
		seen = make(map[int32]struct{})
	}
	ix.grid.VisitCellsIntersecting(r, func(id int) bool {
		for _, i := range ix.cells[id] {
			if seen != nil {
				if _, dup := seen[i]; dup {
					continue
				}
				seen[i] = struct{}{}
			}
			if ix.items[i].Rect.Intersects(r) && !fn(ix.items[i]) {
				return false
			}
		}
		return true
	})
}

// VisitNearest implements Index: cells are pulled in nearest-first order and
// their items merged through a heap; an item is emitted once its rectangle
// distance cannot be beaten by any cell not yet pulled.
func (ix *GridIndex) VisitNearest(p geo.Point, fn func(Item, float64) bool) {
	if len(ix.items) == 0 {
		return
	}
	var q cellQueue // reused as an item heap: dist + item index
	for _, i := range ix.overflow {
		heap.Push(&q, cellEntry{dist: ix.items[i].Rect.DistanceToPoint(p), id: int(i)})
	}
	var seen map[int32]struct{}
	if ix.multiCell {
		seen = make(map[int32]struct{})
	}
	it := ix.grid.NearestCells(p)
	cellID, cellDist, cellOK := it.Next()
	for {
		// Pull cells while one could still hold a closer item than the heap top.
		for cellOK && (len(q) == 0 || cellDist <= q[0].dist) {
			for _, i := range ix.cells[cellID] {
				if seen != nil {
					if _, dup := seen[i]; dup {
						continue
					}
					seen[i] = struct{}{}
				}
				heap.Push(&q, cellEntry{dist: ix.items[i].Rect.DistanceToPoint(p), id: int(i)})
			}
			cellID, cellDist, cellOK = it.Next()
		}
		if len(q) == 0 {
			return
		}
		e := heap.Pop(&q).(cellEntry)
		if !fn(ix.items[e.id], e.dist) {
			return
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
