package spatial

import (
	"math"

	"semitri/internal/geo"
)

// Kind names an index structure choice.
type Kind int

const (
	// KindSTR is the bulk-loaded STR-packed R-tree.
	KindSTR Kind = iota
	// KindGrid is the uniform-grid bucket index.
	KindGrid
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == KindGrid {
		return "grid"
	}
	return "str-rtree"
}

const (
	// gridMinItems is the item count below which structure choice is moot
	// and the tree (which needs no extent tuning) is used.
	gridMinItems = 64
	// gridPointFraction is the minimum fraction of point items required for
	// the grid: extended rectangles (road segments, polygons) straddle cells
	// and are better served by the tree's tight packing.
	gridPointFraction = 0.9
	// gridTargetOccupancy sizes grid cells so a bucket holds a handful of
	// items: large enough to amortise the bucket header, small enough that a
	// candidate scan stays a short slice walk.
	gridTargetOccupancy = 4.0
	// gridMaxCells caps the grid allocation for very large extents.
	gridMaxCells = 1 << 22
)

// Choose picks the index structure for an item set with a density heuristic:
// dense, point-dominated sets (POIs) get the uniform grid, everything else —
// small sets, extended geometry like road segments and region polygons,
// degenerate extents — gets the STR tree. The decision mirrors how the
// paper's sources behave: the Milan POI set is a dense urban point cloud
// where an O(1) bucket read wins, while road networks are elongated
// rectangles where a packed tree prunes better.
func Choose(items []Item) Kind {
	if len(items) < gridMinItems {
		return KindSTR
	}
	bounds := boundsOf(items)
	if bounds.IsEmpty() || bounds.Area() <= 0 {
		return KindSTR
	}
	points := 0
	for _, it := range items {
		if isPointRect(it.Rect) {
			points++
		}
	}
	if float64(points) < gridPointFraction*float64(len(items)) {
		return KindSTR
	}
	return KindGrid
}

// NewIndex builds an index over items, selecting the structure with Choose.
// The input slice is not retained or modified.
func NewIndex(items []Item) Index {
	switch Choose(items) {
	case KindGrid:
		return NewGridIndex(autoGrid(items), items)
	default:
		return NewSTRTree(items)
	}
}

// autoGrid sizes a grid over the items' bounds so the average bucket holds
// gridTargetOccupancy items, clamped to gridMaxCells.
func autoGrid(items []Item) *Grid {
	bounds := boundsOf(items)
	cellSize := math.Sqrt(bounds.Area() * gridTargetOccupancy / float64(len(items)))
	// Respect the cell-count cap (cells ~= area / cellSize^2).
	if minSize := math.Sqrt(bounds.Area() / gridMaxCells); cellSize < minSize {
		cellSize = minSize
	}
	g, err := NewGrid(bounds, cellSize)
	if err != nil {
		// Unreachable for the non-degenerate bounds Choose requires, but
		// keep a safe fallback: one cell covering everything.
		g = &Grid{Origin: bounds.Min, CellSize: math.Max(bounds.Width(), bounds.Height()), Cols: 1, Rows: 1}
	}
	return g
}

func boundsOf(items []Item) geo.Rect {
	r := geo.EmptyRect()
	for _, it := range items {
		r = r.Union(it.Rect)
	}
	return r
}
