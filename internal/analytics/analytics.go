// Package analytics implements SeMiTri's Semantic Trajectory Analytics
// Layer (Fig. 2): aggregate statistics computed over the contents of the
// semantic trajectory store, at all abstraction levels. These are the
// computations behind the evaluation artefacts of §5 — episode-size
// distributions (Fig. 12), per-user counts (Fig. 13), stop/trajectory
// category distributions (Fig. 11), land-use profiles (Figs. 9/14), storage
// compression (§5.2) and the latency breakdown of Fig. 17.
package analytics

import (
	"sort"

	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/stats"
	"semitri/internal/store"
)

// EpisodeSizeDistributions returns log-histograms of the number of GPS
// records per trajectory, per move episode and per stop episode across the
// whole store (the three series of the log-log plot in Fig. 12).
func EpisodeSizeDistributions(s *store.Store) (trajectories, moves, stops *stats.LogHistogram) {
	trajectories = stats.NewLogHistogram(2)
	moves = stats.NewLogHistogram(2)
	stops = stats.NewLogHistogram(2)
	for _, id := range s.TrajectoryIDs("") {
		if t, ok := s.Trajectory(id); ok {
			trajectories.Add(float64(len(t.Records)))
		}
		for _, ep := range s.Episodes(id) {
			if ep.Kind == episode.Stop {
				stops.Add(float64(ep.RecordCount))
			} else {
				moves.Add(float64(ep.RecordCount))
			}
		}
	}
	return trajectories, moves, stops
}

// UserCounts summarises one object's stored data: GPS records, daily
// trajectories, stops and moves (one bar group of Fig. 13).
type UserCounts struct {
	Object       string
	GPSRecords   int
	Trajectories int
	Stops        int
	Moves        int
}

// PerUserCounts computes UserCounts for every object present in the store,
// ordered by object id.
func PerUserCounts(s *store.Store, objects []string) []UserCounts {
	out := make([]UserCounts, 0, len(objects))
	for _, obj := range objects {
		uc := UserCounts{Object: obj, GPSRecords: len(s.Records(obj))}
		for _, id := range s.TrajectoryIDs(obj) {
			uc.Trajectories++
			for _, ep := range s.Episodes(id) {
				if ep.Kind == episode.Stop {
					uc.Stops++
				} else {
					uc.Moves++
				}
			}
		}
		out = append(out, uc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Object < out[j].Object })
	return out
}

// AnnotationDistribution aggregates, over every stored structured trajectory
// of the given interpretation, the share of stop time (weight = seconds) per
// value of the annotation key. With key core.AnnPOICategory this yields the
// "stop" column of Fig. 11.
func AnnotationDistribution(s *store.Store, interpretation, key string) *stats.Distribution {
	d := stats.NewDistribution()
	for _, id := range s.TrajectoryIDs("") {
		st, ok := s.Structured(id, interpretation)
		if !ok {
			continue
		}
		for _, tp := range st.Tuples {
			if tp.Kind != episode.Stop {
				continue
			}
			if v := tp.Annotations.Value(key); v != "" {
				d.Add(v, tp.Duration().Seconds())
			}
		}
	}
	return d
}

// StopCountDistribution aggregates the share of stops (unweighted counts)
// per value of the annotation key across the store.
func StopCountDistribution(s *store.Store, interpretation, key string) *stats.Distribution {
	d := stats.NewDistribution()
	for _, id := range s.TrajectoryIDs("") {
		st, ok := s.Structured(id, interpretation)
		if !ok {
			continue
		}
		for _, tp := range st.Tuples {
			if tp.Kind != episode.Stop {
				continue
			}
			if v := tp.Annotations.Value(key); v != "" {
				d.AddCount(v)
			}
		}
	}
	return d
}

// TrajectoryCategoryDistribution classifies every stored trajectory with
// Equation 8 (the annotation value accumulating the most stop time) and
// returns the share of trajectories per category (the "trajectory" column
// of Fig. 11).
func TrajectoryCategoryDistribution(s *store.Store, interpretation, key string) *stats.Distribution {
	d := stats.NewDistribution()
	for _, id := range s.TrajectoryIDs("") {
		st, ok := s.Structured(id, interpretation)
		if !ok {
			continue
		}
		if cat, ok := st.Category(key); ok {
			d.AddCount(cat)
		}
	}
	return d
}

// LanduseDistribution aggregates, across the store, the share of GPS records
// per land-use category using the region-interpretation tuples and weighting
// each tuple by the record count of its backing episode when available (and
// by its duration in seconds otherwise). With no object filter it yields the
// "trajectory" column of Fig. 9; filtering by episode kind yields the move
// and stop columns.
func LanduseDistribution(s *store.Store, objects []string, kindFilter *episode.Kind) *stats.Distribution {
	d := stats.NewDistribution()
	ids := s.TrajectoryIDs("")
	if len(objects) > 0 {
		ids = nil
		for _, obj := range objects {
			ids = append(ids, s.TrajectoryIDs(obj)...)
		}
	}
	for _, id := range ids {
		st, ok := s.Structured(id, "region-episodes")
		if !ok {
			continue
		}
		for _, tp := range st.Tuples {
			if kindFilter != nil && tp.Kind != *kindFilter {
				continue
			}
			v := tp.Annotations.Value(core.AnnLanduse)
			if v == "" {
				continue
			}
			weight := tp.Duration().Seconds()
			if tp.Episode != nil {
				weight = float64(tp.Episode.RecordCount)
			}
			d.Add(v, weight)
		}
	}
	return d
}

// CompressionSummary reports the storage saving of the region-level
// representation relative to the raw GPS records across the whole store
// (the ≈99.7% claim of §5.2, which counts the distinct annotated land-use
// cells needed to describe the whole dataset).
type CompressionSummary struct {
	GPSRecords int
	// RegionTuples is the number of merged (place, time-in, time-out) tuples.
	RegionTuples int
	// DistinctCells is the number of distinct region places referenced.
	DistinctCells int
	// Ratio is 1 - DistinctCells/GPSRecords, the figure comparable to the
	// paper's "3M records annotated with 8,385 cells".
	Ratio float64
}

// Compression computes the CompressionSummary over the store using the
// record-level region interpretation.
func Compression(s *store.Store) CompressionSummary {
	var records, tuples int
	cells := map[string]bool{}
	for _, id := range s.TrajectoryIDs("") {
		if t, ok := s.Trajectory(id); ok {
			records += len(t.Records)
		}
		if st, ok := s.Structured(id, "region"); ok {
			tuples += len(st.Tuples)
			for _, tp := range st.Tuples {
				if pid := tp.PlaceID(); pid != "" {
					cells[pid] = true
				}
			}
		}
	}
	return CompressionSummary{
		GPSRecords:    records,
		RegionTuples:  tuples,
		DistinctCells: len(cells),
		Ratio:         stats.CompressionRatio(records, len(cells)),
	}
}

// ModeDistribution aggregates, across the store's merged interpretation, the
// share of move time per transportation mode (a people-trajectory summary
// used alongside Figs. 15/16).
func ModeDistribution(s *store.Store, interpretation string) *stats.Distribution {
	d := stats.NewDistribution()
	for _, id := range s.TrajectoryIDs("") {
		st, ok := s.Structured(id, interpretation)
		if !ok {
			continue
		}
		for _, tp := range st.Tuples {
			if tp.Kind != episode.Move {
				continue
			}
			if m := tp.Annotations.Value(core.AnnTransportMode); m != "" {
				d.Add(m, tp.Duration().Seconds())
			}
		}
	}
	return d
}
