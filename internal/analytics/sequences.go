package analytics

import (
	"sort"
	"strings"

	"semitri/internal/episode"
	"semitri/internal/store"
)

// The Semantic Trajectory Analytics Layer of Fig. 2 lists "Sequential
// Mining" among its methodologies; this file implements the frequent
// stop-sequence mining used to summarise semantic behaviours (e.g. the
// home -> office -> shop -> home patterns discussed in §1.1 and §4.3's
// transition-matrix motivation).

// SequencePattern is a contiguous sequence of stop annotation values together
// with the number of trajectories in which it occurs.
type SequencePattern struct {
	Sequence []string
	// Support is the number of distinct trajectories containing the sequence.
	Support int
}

// Key renders the sequence as a single string ("a -> b -> c").
func (p SequencePattern) Key() string { return strings.Join(p.Sequence, " -> ") }

// FrequentStopSequences mines contiguous stop-annotation sequences of length
// minLen..maxLen over all stored structured trajectories of the given
// interpretation and returns those occurring in at least minSupport distinct
// trajectories, ordered by decreasing support then lexicographically.
//
// The annotation key selects the alphabet: core.AnnPOICategory yields
// activity-style patterns ("item sale -> person life"), core.AnnLanduse
// yields region transition patterns.
func FrequentStopSequences(s *store.Store, interpretation, key string, minLen, maxLen, minSupport int) []SequencePattern {
	if minLen < 1 {
		minLen = 1
	}
	if maxLen < minLen {
		maxLen = minLen
	}
	if minSupport < 1 {
		minSupport = 1
	}
	support := map[string]int{}
	sequences := map[string][]string{}
	for _, id := range s.StructuredIDs() {
		st, ok := s.Structured(id, interpretation)
		if !ok {
			continue
		}
		var symbols []string
		for _, tp := range st.Tuples {
			if tp.Kind != episode.Stop {
				continue
			}
			if v := tp.Annotations.Value(key); v != "" {
				symbols = append(symbols, v)
			}
		}
		seen := map[string]bool{}
		for length := minLen; length <= maxLen; length++ {
			for start := 0; start+length <= len(symbols); start++ {
				sub := symbols[start : start+length]
				k := strings.Join(sub, " -> ")
				if seen[k] {
					continue
				}
				seen[k] = true
				support[k]++
				if _, stored := sequences[k]; !stored {
					sequences[k] = append([]string(nil), sub...)
				}
			}
		}
	}
	var out []SequencePattern
	for k, sup := range support {
		if sup >= minSupport {
			out = append(out, SequencePattern{Sequence: sequences[k], Support: sup})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		if len(out[i].Sequence) != len(out[j].Sequence) {
			return len(out[i].Sequence) > len(out[j].Sequence)
		}
		return out[i].Key() < out[j].Key()
	})
	return out
}

// TransitionMatrix estimates the empirical stop-category transition matrix
// from the stored trajectories: entry [from][to] is the probability that a
// stop annotated `from` is followed (within the same trajectory) by a stop
// annotated `to`. The result can seed the HMM's A matrix for a personalised
// model — the "learning dynamic and personalised transition matrix" the
// paper leaves as future work (§4.3).
func TransitionMatrix(s *store.Store, interpretation, key string) (labels []string, matrix [][]float64) {
	counts := map[string]map[string]float64{}
	labelSet := map[string]bool{}
	for _, id := range s.StructuredIDs() {
		st, ok := s.Structured(id, interpretation)
		if !ok {
			continue
		}
		var prev string
		for _, tp := range st.Tuples {
			if tp.Kind != episode.Stop {
				continue
			}
			v := tp.Annotations.Value(key)
			if v == "" {
				continue
			}
			labelSet[v] = true
			if prev != "" {
				if counts[prev] == nil {
					counts[prev] = map[string]float64{}
				}
				counts[prev][v]++
			}
			prev = v
		}
	}
	for l := range labelSet {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	matrix = make([][]float64, len(labels))
	for i, from := range labels {
		matrix[i] = make([]float64, len(labels))
		var rowTotal float64
		for _, to := range labels {
			rowTotal += counts[from][to]
		}
		for j, to := range labels {
			if rowTotal > 0 {
				matrix[i][j] = counts[from][to] / rowTotal
			} else {
				matrix[i][j] = 1 / float64(len(labels))
			}
		}
	}
	return labels, matrix
}

// DailyProfile summarises, for one object, the share of time per annotation
// value in each hour of the day across all of its stored trajectories of the
// given interpretation — the "mobility analysis/statistics" use case of
// §1.1. The result maps hour (0..23) to a distribution of annotation values
// weighted by seconds spent.
func DailyProfile(s *store.Store, objectID, interpretation, key string) map[int]map[string]float64 {
	out := map[int]map[string]float64{}
	for _, id := range s.StructuredIDs() {
		st, ok := s.Structured(id, interpretation)
		if !ok {
			continue
		}
		if objectID != "" && st.ObjectID != objectID {
			continue
		}
		for _, tp := range st.Tuples {
			v := tp.Annotations.Value(key)
			if v == "" {
				continue
			}
			// Attribute the tuple's duration to the hours it overlaps.
			cur := tp.TimeIn
			for cur.Before(tp.TimeOut) {
				hourEnd := cur.Truncate(3600e9).Add(3600e9)
				if hourEnd.After(tp.TimeOut) {
					hourEnd = tp.TimeOut
				}
				h := cur.Hour()
				if out[h] == nil {
					out[h] = map[string]float64{}
				}
				out[h][v] += hourEnd.Sub(cur).Seconds()
				cur = hourEnd
			}
		}
	}
	// Normalise each hour to shares.
	for h, dist := range out {
		var total float64
		for _, v := range dist {
			total += v
		}
		if total > 0 {
			for k := range dist {
				dist[k] /= total
			}
		}
		out[h] = dist
	}
	return out
}
