package analytics

import (
	"math"
	"testing"
	"time"

	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/store"
)

// seqStore builds a store with three trajectories whose stop-category
// sequences are known:
//
//	t1: home -> shop -> home
//	t2: home -> shop -> leisure
//	t3: home -> shop -> home
func seqStore(t *testing.T) *store.Store {
	t.Helper()
	s := store.New()
	build := func(id string, cats []string, startHour int) {
		st := &core.StructuredTrajectory{ID: id, ObjectID: "u1", Interpretation: "merged"}
		cur := t0.Add(time.Duration(startHour) * time.Hour)
		for i, c := range cats {
			stop := &core.EpisodeTuple{Kind: episode.Stop, TimeIn: cur, TimeOut: cur.Add(50 * time.Minute)}
			stop.Annotations.Add(core.Annotation{Key: core.AnnPOICategory, Value: c, Confidence: 1})
			st.Tuples = append(st.Tuples, stop)
			cur = cur.Add(time.Hour)
			if i < len(cats)-1 {
				move := &core.EpisodeTuple{Kind: episode.Move, TimeIn: cur.Add(-10 * time.Minute), TimeOut: cur}
				move.Annotations.Add(core.Annotation{Key: core.AnnTransportMode, Value: "walk", Confidence: 1})
				st.Tuples = append(st.Tuples, move)
			}
		}
		if err := s.PutStructured(st); err != nil {
			t.Fatal(err)
		}
	}
	// t0 is 08:00 UTC, so offsets 0/0/1 place the first stops at 08:00,
	// 08:00 and 09:00 respectively.
	build("u1-d1", []string{"home", "shop", "home"}, 0)
	build("u1-d2", []string{"home", "shop", "leisure"}, 0)
	build("u1-d3", []string{"home", "shop", "home"}, 1)
	return s
}

func TestFrequentStopSequences(t *testing.T) {
	s := seqStore(t)
	patterns := FrequentStopSequences(s, "merged", core.AnnPOICategory, 2, 3, 2)
	if len(patterns) == 0 {
		t.Fatal("no patterns found")
	}
	bySupport := map[string]int{}
	for _, p := range patterns {
		bySupport[p.Key()] = p.Support
	}
	if bySupport["home -> shop"] != 3 {
		t.Fatalf("home->shop support = %d, want 3 (%v)", bySupport["home -> shop"], bySupport)
	}
	if bySupport["home -> shop -> home"] != 2 {
		t.Fatalf("home->shop->home support = %d, want 2", bySupport["home -> shop -> home"])
	}
	if _, ok := bySupport["shop -> leisure"]; ok {
		t.Fatal("shop->leisure occurs once and must be below minSupport=2")
	}
	// Ordering: highest support first.
	if patterns[0].Key() != "home -> shop" && patterns[0].Support != 3 {
		t.Fatalf("first pattern = %+v", patterns[0])
	}
	// Single occurrences show up when minSupport is 1.
	all := FrequentStopSequences(s, "merged", core.AnnPOICategory, 2, 2, 1)
	found := false
	for _, p := range all {
		if p.Key() == "shop -> leisure" && p.Support == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("shop->leisure missing at minSupport=1")
	}
	// Degenerate parameters are clamped rather than rejected.
	if got := FrequentStopSequences(s, "merged", core.AnnPOICategory, 0, -1, 0); len(got) == 0 {
		t.Fatal("clamped parameters should still mine length-1 patterns")
	}
	if got := FrequentStopSequences(s, "missing", core.AnnPOICategory, 1, 2, 1); len(got) != 0 {
		t.Fatal("missing interpretation should yield no patterns")
	}
}

func TestTransitionMatrix(t *testing.T) {
	s := seqStore(t)
	labels, matrix := TransitionMatrix(s, "merged", core.AnnPOICategory)
	if len(labels) != 3 {
		t.Fatalf("labels = %v", labels)
	}
	idx := map[string]int{}
	for i, l := range labels {
		idx[l] = i
	}
	// home -> shop happens after every home stop that has a successor (3 of 3).
	if got := matrix[idx["home"]][idx["shop"]]; got != 1 {
		t.Fatalf("P(shop|home) = %v", got)
	}
	// shop -> home twice, shop -> leisure once.
	if got := matrix[idx["shop"]][idx["home"]]; math.Abs(got-2.0/3.0) > 1e-9 {
		t.Fatalf("P(home|shop) = %v", got)
	}
	if got := matrix[idx["shop"]][idx["leisure"]]; math.Abs(got-1.0/3.0) > 1e-9 {
		t.Fatalf("P(leisure|shop) = %v", got)
	}
	// Rows with no outgoing transitions are uniform.
	var rowSum float64
	for _, v := range matrix[idx["leisure"]] {
		rowSum += v
	}
	if math.Abs(rowSum-1) > 1e-9 {
		t.Fatalf("leisure row sums to %v", rowSum)
	}
	// Empty store yields no labels.
	l2, m2 := TransitionMatrix(store.New(), "merged", core.AnnPOICategory)
	if len(l2) != 0 || len(m2) != 0 {
		t.Fatal("empty store should yield empty matrix")
	}
}

func TestDailyProfile(t *testing.T) {
	s := seqStore(t)
	profile := DailyProfile(s, "u1", "merged", core.AnnPOICategory)
	if len(profile) == 0 {
		t.Fatal("empty profile")
	}
	// The 8:00 hour is dominated by "home" stops (two trajectories start at
	// home at 08:00, one at 09:00).
	eight := profile[8]
	if eight["home"] <= eight["shop"] {
		t.Fatalf("08:00 profile = %v, expected home to dominate", eight)
	}
	// Shares per hour sum to 1.
	for h, dist := range profile {
		var sum float64
		for _, v := range dist {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("hour %d shares sum to %v", h, sum)
		}
	}
	// Unknown object yields an empty profile.
	if got := DailyProfile(s, "nobody", "merged", core.AnnPOICategory); len(got) != 0 {
		t.Fatal("unknown object should have empty profile")
	}
}

func TestSequencePatternKey(t *testing.T) {
	p := SequencePattern{Sequence: []string{"a", "b"}, Support: 2}
	if p.Key() != "a -> b" {
		t.Fatalf("Key = %q", p.Key())
	}
}
