package analytics

import (
	"testing"
	"time"

	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/geo"
	"semitri/internal/gps"
	"semitri/internal/store"
)

var t0 = time.Date(2010, 3, 15, 8, 0, 0, 0, time.UTC)

// seedStore populates a store with two users, two trajectories each, plus
// episodes and structured interpretations, mimicking what the pipeline
// writes.
func seedStore(t *testing.T) (*store.Store, []string) {
	t.Helper()
	s := store.New()
	objects := []string{"user-001", "user-002"}
	for ui, obj := range objects {
		for ti := 0; ti < 2; ti++ {
			id := obj + "-T" + string(rune('0'+ti))
			nRecs := 100 * (ui + 1)
			recs := make([]gps.Record, nRecs)
			for i := range recs {
				recs[i] = gps.Record{ObjectID: obj, Position: geo.Pt(float64(i), 0), Time: t0.Add(time.Duration(i) * time.Second)}
			}
			s.PutRecords(recs)
			if err := s.PutTrajectory(&gps.RawTrajectory{ID: id, ObjectID: obj, Records: recs}); err != nil {
				t.Fatal(err)
			}
			eps := []*episode.Episode{
				{TrajectoryID: id, ObjectID: obj, Kind: episode.Stop, RecordCount: 40,
					Start: t0, End: t0.Add(30 * time.Minute), Center: geo.Pt(10, 0)},
				{TrajectoryID: id, ObjectID: obj, Kind: episode.Move, RecordCount: 60,
					Start: t0.Add(30 * time.Minute), End: t0.Add(60 * time.Minute), Center: geo.Pt(50, 0)},
			}
			if err := s.PutEpisodes(id, eps); err != nil {
				t.Fatal(err)
			}
			// Region (record-level, merged) interpretation: 3 tuples.
			regionTraj := &core.StructuredTrajectory{ID: id, ObjectID: obj, Interpretation: "region"}
			for k := 0; k < 3; k++ {
				regionTraj.Tuples = append(regionTraj.Tuples, &core.EpisodeTuple{
					Kind: episode.Move, TimeIn: t0.Add(time.Duration(k) * time.Minute), TimeOut: t0.Add(time.Duration(k+1) * time.Minute)})
			}
			if err := s.PutStructured(regionTraj); err != nil {
				t.Fatal(err)
			}
			// Region-episodes interpretation with land-use annotations.
			regionEp := &core.StructuredTrajectory{ID: id, ObjectID: obj, Interpretation: "region-episodes"}
			stopTuple := &core.EpisodeTuple{Kind: episode.Stop, Episode: eps[0], TimeIn: eps[0].Start, TimeOut: eps[0].End}
			stopTuple.Annotations.Add(core.Annotation{Key: core.AnnLanduse, Value: "1.2", Confidence: 1})
			moveTuple := &core.EpisodeTuple{Kind: episode.Move, Episode: eps[1], TimeIn: eps[1].Start, TimeOut: eps[1].End}
			moveTuple.Annotations.Add(core.Annotation{Key: core.AnnLanduse, Value: "1.3", Confidence: 1})
			regionEp.Tuples = []*core.EpisodeTuple{stopTuple, moveTuple}
			if err := s.PutStructured(regionEp); err != nil {
				t.Fatal(err)
			}
			// Merged interpretation with POI category and mode annotations.
			merged := &core.StructuredTrajectory{ID: id, ObjectID: obj, Interpretation: "merged"}
			ms := &core.EpisodeTuple{Kind: episode.Stop, TimeIn: eps[0].Start, TimeOut: eps[0].End}
			cat := "item sale"
			if ui == 1 {
				cat = "person life"
			}
			ms.Annotations.Add(core.Annotation{Key: core.AnnPOICategory, Value: cat, Confidence: 0.8})
			mm := &core.EpisodeTuple{Kind: episode.Move, TimeIn: eps[1].Start, TimeOut: eps[1].End}
			mm.Annotations.Add(core.Annotation{Key: core.AnnTransportMode, Value: "metro", Confidence: 0.9})
			merged.Tuples = []*core.EpisodeTuple{ms, mm}
			if err := s.PutStructured(merged); err != nil {
				t.Fatal(err)
			}
		}
	}
	return s, objects
}

func TestEpisodeSizeDistributions(t *testing.T) {
	s, _ := seedStore(t)
	trajs, moves, stops := EpisodeSizeDistributions(s)
	if trajs.Total() != 4 {
		t.Fatalf("trajectory histogram total = %d", trajs.Total())
	}
	if moves.Total() != 4 || stops.Total() != 4 {
		t.Fatalf("episode histogram totals = %d/%d", moves.Total(), stops.Total())
	}
	if len(trajs.Bins()) == 0 {
		t.Fatal("trajectory histogram has no bins")
	}
}

func TestPerUserCounts(t *testing.T) {
	s, objects := seedStore(t)
	counts := PerUserCounts(s, objects)
	if len(counts) != 2 {
		t.Fatalf("counts = %d", len(counts))
	}
	for _, c := range counts {
		if c.Trajectories != 2 || c.Stops != 2 || c.Moves != 2 {
			t.Fatalf("user %s counts = %+v", c.Object, c)
		}
	}
	if counts[0].GPSRecords != 200 || counts[1].GPSRecords != 400 {
		t.Fatalf("GPS record counts = %d, %d", counts[0].GPSRecords, counts[1].GPSRecords)
	}
	if got := PerUserCounts(s, nil); len(got) != 0 {
		t.Fatal("no objects should give empty counts")
	}
}

func TestAnnotationAndStopCountDistributions(t *testing.T) {
	s, _ := seedStore(t)
	d := AnnotationDistribution(s, "merged", core.AnnPOICategory)
	if d.Total() == 0 {
		t.Fatal("empty annotation distribution")
	}
	// Both categories appear, equal stop time, so equal shares.
	if d.Share("item sale") != 0.5 || d.Share("person life") != 0.5 {
		t.Fatalf("shares = %v", d.Shares())
	}
	if got := AnnotationDistribution(s, "missing", core.AnnPOICategory); got.Total() != 0 {
		t.Fatal("missing interpretation should be empty")
	}
	sc := StopCountDistribution(s, "merged", core.AnnPOICategory)
	if sc.Total() != 4 {
		t.Fatalf("stop count total = %v", sc.Total())
	}
	if got := StopCountDistribution(s, "missing", core.AnnPOICategory); got.Total() != 0 {
		t.Fatal("missing interpretation should be empty")
	}
}

func TestTrajectoryCategoryDistribution(t *testing.T) {
	s, _ := seedStore(t)
	d := TrajectoryCategoryDistribution(s, "merged", core.AnnPOICategory)
	if d.Total() != 4 {
		t.Fatalf("trajectory category total = %v", d.Total())
	}
	if d.Share("item sale") != 0.5 || d.Share("person life") != 0.5 {
		t.Fatalf("trajectory category shares = %v", d.Shares())
	}
}

func TestLanduseDistribution(t *testing.T) {
	s, objects := seedStore(t)
	all := LanduseDistribution(s, nil, nil)
	if all.Total() != 400 { // 4 trajectories x (40 + 60) record weights
		t.Fatalf("landuse total = %v", all.Total())
	}
	if all.Share("1.2") != 0.4 || all.Share("1.3") != 0.6 {
		t.Fatalf("landuse shares = %v", all.Shares())
	}
	stopKind := episode.Stop
	stopsOnly := LanduseDistribution(s, nil, &stopKind)
	if stopsOnly.Share("1.2") != 1 {
		t.Fatalf("stop landuse shares = %v", stopsOnly.Shares())
	}
	oneUser := LanduseDistribution(s, objects[:1], nil)
	if oneUser.Total() != 200 {
		t.Fatalf("per-user landuse total = %v", oneUser.Total())
	}
}

func TestCompression(t *testing.T) {
	s, _ := seedStore(t)
	c := Compression(s)
	if c.GPSRecords != 600 { // 2*(100+200)
		t.Fatalf("GPSRecords = %d", c.GPSRecords)
	}
	if c.RegionTuples != 12 {
		t.Fatalf("RegionTuples = %d", c.RegionTuples)
	}
	if c.Ratio < 0.97 || c.Ratio > 1 {
		t.Fatalf("Ratio = %v", c.Ratio)
	}
	empty := Compression(store.New())
	if empty.Ratio != 0 || empty.GPSRecords != 0 {
		t.Fatalf("empty store compression = %+v", empty)
	}
}

func TestModeDistribution(t *testing.T) {
	s, _ := seedStore(t)
	d := ModeDistribution(s, "merged")
	if d.Share("metro") != 1 {
		t.Fatalf("mode shares = %v", d.Shares())
	}
	if got := ModeDistribution(s, "missing"); got.Total() != 0 {
		t.Fatal("missing interpretation should be empty")
	}
}
