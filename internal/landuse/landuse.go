// Package landuse models the semantic-region data source used by SeMiTri's
// Semantic Region Annotation Layer: a grid of land-use cells classified with
// the Swisstopo ontology of Fig. 4 (4 top-level categories, 17
// sub-categories), plus free-form named regions (campus, recreation areas)
// comparable to the OpenStreetMap polygons used in the paper.
//
// Because the original Swisstopo dataset (1,936,439 cells of 100m x 100m) is
// licensed, the package also provides a synthetic generator that produces a
// city-like land-use map with the same ontology: a dense urban core of
// building and transportation cells, commercial and recreational pockets,
// agricultural belts and wooded/unproductive periphery, including a lake.
package landuse

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"semitri/internal/geo"
	"semitri/internal/spatial"
)

// Category is a land-use sub-category code of the Swisstopo ontology
// (Fig. 4), e.g. "1.2" for building areas.
type Category string

// The 17 land-use sub-categories of Fig. 4.
const (
	IndustrialCommercial Category = "1.1"
	Building             Category = "1.2"
	Transportation       Category = "1.3"
	SpecialUrban         Category = "1.4"
	Recreational         Category = "1.5"
	Orchard              Category = "2.6"
	ArableLand           Category = "2.7"
	Meadows              Category = "2.8"
	AlpineAgriculture    Category = "2.9"
	Forest               Category = "3.10"
	BrushForest          Category = "3.11"
	Woods                Category = "3.12"
	Lakes                Category = "4.13"
	Rivers               Category = "4.14"
	UnproductiveVeg      Category = "4.15"
	BareLand             Category = "4.16"
	Glaciers             Category = "4.17"
)

// AllCategories lists the 17 sub-categories in ontology order.
var AllCategories = []Category{
	IndustrialCommercial, Building, Transportation, SpecialUrban, Recreational,
	Orchard, ArableLand, Meadows, AlpineAgriculture,
	Forest, BrushForest, Woods,
	Lakes, Rivers, UnproductiveVeg, BareLand, Glaciers,
}

// TopLevel returns the top-level class (L1..L4) of the sub-category.
func (c Category) TopLevel() string {
	if len(c) == 0 {
		return ""
	}
	switch c[0] {
	case '1':
		return "L1 settlement and urban"
	case '2':
		return "L2 agricultural"
	case '3':
		return "L3 wooded"
	case '4':
		return "L4 unproductive"
	}
	return ""
}

// Label returns the human-readable name of the sub-category (Fig. 4).
func (c Category) Label() string {
	switch c {
	case IndustrialCommercial:
		return "industrial and commercial area"
	case Building:
		return "building areas"
	case Transportation:
		return "transportation areas"
	case SpecialUrban:
		return "special urban areas"
	case Recreational:
		return "recreational areas and cemeteries"
	case Orchard:
		return "orchard, vineyard and horticulture areas"
	case ArableLand:
		return "arable land"
	case Meadows:
		return "meadows, farm pastures"
	case AlpineAgriculture:
		return "alpine agricultural areas"
	case Forest:
		return "forest"
	case BrushForest:
		return "brush forest"
	case Woods:
		return "woods"
	case Lakes:
		return "lakes"
	case Rivers:
		return "rivers"
	case UnproductiveVeg:
		return "unproductive vegetation"
	case BareLand:
		return "bare land"
	case Glaciers:
		return "glaciers, perpetual snow"
	}
	return string(c)
}

// Valid reports whether c is one of the 17 ontology sub-categories.
func (c Category) Valid() bool {
	for _, k := range AllCategories {
		if c == k {
			return true
		}
	}
	return false
}

// Cell is one land-use grid cell (100m x 100m in the Swisstopo source).
type Cell struct {
	ID       int
	Extent   geo.Rect
	Category Category
}

// Map is a land-use map: a grid of classified cells plus optional free-form
// named regions. It implements the semantic-region source (Pregion). The
// raster is backed by the shared spatial layer: point location is O(1)
// arithmetic on a spatial.Grid, rectangle joins and nearest queries go
// through the spatial.Index view returned by CellIndex, and the named
// regions sit in a bulk-loaded index over their polygon bounding boxes.
type Map struct {
	grid     *spatial.Grid
	cells    []Category // indexed by dense cell id
	regions  []NamedRegion
	cellArea float64

	// regMu guards the lazily bulk-loaded named-region index; AddNamedRegion
	// invalidates it, the first query after a mutation rebuilds it.
	regMu  sync.Mutex
	regIdx spatial.Index // over region polygon bounds; value = int index into regions
}

// NamedRegion is a free-form semantic region (e.g. "EPFL campus") with a
// polygonal extent, comparable to the OpenStreetMap regions of §4.1.
type NamedRegion struct {
	Name    string
	Kind    string // e.g. "campus", "recreation", "market"
	Polygon geo.Polygon
}

// NewMap creates a land-use map covering extent with square cells of the
// given size; every cell starts as Meadows (the most neutral class).
func NewMap(extent geo.Rect, cellSize float64) (*Map, error) {
	g, err := spatial.NewGrid(extent, cellSize)
	if err != nil {
		return nil, fmt.Errorf("landuse: %w", err)
	}
	cells := make([]Category, g.NumCells())
	for i := range cells {
		cells[i] = Meadows
	}
	return &Map{grid: g, cells: cells, cellArea: cellSize * cellSize}, nil
}

// Grid exposes the underlying grid geometry.
func (m *Map) Grid() *spatial.Grid { return m.grid }

// NumCells returns the number of land-use cells.
func (m *Map) NumCells() int { return len(m.cells) }

// Bounds returns the extent covered by the map.
func (m *Map) Bounds() geo.Rect { return m.grid.Bounds() }

// SetCategory classifies the cell containing p; it returns false when p is
// outside the map extent or the category is invalid.
func (m *Map) SetCategory(p geo.Point, c Category) bool {
	if !c.Valid() {
		return false
	}
	id := m.grid.CellAt(p)
	if id < 0 {
		return false
	}
	m.cells[id] = c
	return true
}

// SetCategoryRect classifies every cell intersecting r and returns how many
// cells were updated.
func (m *Map) SetCategoryRect(r geo.Rect, c Category) int {
	if !c.Valid() {
		return 0
	}
	ids := m.grid.CellsIntersecting(r)
	for _, id := range ids {
		m.cells[id] = c
	}
	return len(ids)
}

// CategoryAt returns the category of the cell containing p; ok is false when
// p lies outside the map.
func (m *Map) CategoryAt(p geo.Point) (Category, bool) {
	id := m.grid.CellAt(p)
	if id < 0 {
		return "", false
	}
	return m.cells[id], true
}

// CellAt returns the full cell record containing p.
func (m *Map) CellAt(p geo.Point) (Cell, bool) {
	id := m.grid.CellAt(p)
	if id < 0 {
		return Cell{}, false
	}
	return Cell{ID: id, Extent: m.grid.CellRectByID(id), Category: m.cells[id]}, true
}

// CellsIntersecting returns the cells whose extent intersects r.
func (m *Map) CellsIntersecting(r geo.Rect) []Cell {
	ids := m.grid.CellsIntersecting(r)
	out := make([]Cell, len(ids))
	for i, id := range ids {
		out[i] = Cell{ID: id, Extent: m.grid.CellRectByID(id), Category: m.cells[id]}
	}
	return out
}

// AddNamedRegion registers a free-form region. Regions are added while the
// map is being built; mutation is not safe concurrently with queries.
func (m *Map) AddNamedRegion(r NamedRegion) {
	m.regions = append(m.regions, r)
	m.regMu.Lock()
	m.regIdx = nil // rebuilt by the next query
	m.regMu.Unlock()
}

// NamedRegions returns all registered free-form regions.
func (m *Map) NamedRegions() []NamedRegion { return append([]NamedRegion(nil), m.regions...) }

// RegionIndex returns the immutable bulk-loaded spatial index over the
// named-region polygon bounding boxes (item values are indices into
// NamedRegions order), building it on first use; nil when no regions are
// registered. Candidates still need the exact polygon test.
func (m *Map) RegionIndex() spatial.Index {
	if len(m.regions) == 0 {
		return nil
	}
	m.regMu.Lock()
	defer m.regMu.Unlock()
	if m.regIdx == nil {
		items := make([]spatial.Item, len(m.regions))
		for i, reg := range m.regions {
			items[i] = spatial.Item{Rect: reg.Polygon.Bounds(), Value: i}
		}
		m.regIdx = spatial.NewIndex(items)
	}
	return m.regIdx
}

// namedRegionsWhere collects, in registration order, the regions among the
// index candidates produced by query that pass the exact geometric test.
func (m *Map) namedRegionsWhere(query func(spatial.Index) []spatial.Item, test func(NamedRegion) bool) []NamedRegion {
	ix := m.RegionIndex()
	if ix == nil {
		return nil
	}
	idxs := make([]int, 0, 4)
	for _, it := range query(ix) {
		if i := it.Value.(int); test(m.regions[i]) {
			idxs = append(idxs, i)
		}
	}
	// Registration order: annotators attach the first matching region, which
	// must not depend on index traversal order.
	sort.Ints(idxs)
	out := make([]NamedRegion, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, m.regions[i])
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// NamedRegionsAt returns the free-form regions containing the point, in
// registration order.
func (m *Map) NamedRegionsAt(p geo.Point) []NamedRegion {
	return m.namedRegionsWhere(
		func(ix spatial.Index) []spatial.Item { return spatial.Covering(ix, p) },
		func(r NamedRegion) bool { return r.Polygon.ContainsPoint(p) },
	)
}

// NamedRegionsIntersecting returns the free-form regions intersecting rect,
// in registration order.
func (m *Map) NamedRegionsIntersecting(rect geo.Rect) []NamedRegion {
	return m.namedRegionsWhere(
		func(ix spatial.Index) []spatial.Item { return spatial.Within(ix, rect) },
		func(r NamedRegion) bool { return r.Polygon.IntersectsRect(rect) },
	)
}

// CellIndex returns a spatial.Index view over the land-use raster: one item
// per cell, Rect the cell extent and Value the Cell record. The view is
// backed directly by grid arithmetic — nothing is materialised — so the
// region layer can run its spatial joins through the same interface as the
// line and point layers. Visit reports cells in ascending id order.
func (m *Map) CellIndex() spatial.Index { return cellIndex{m} }

type cellIndex struct{ m *Map }

func (ci cellIndex) Len() int         { return len(ci.m.cells) }
func (ci cellIndex) Bounds() geo.Rect { return ci.m.grid.Bounds() }

func (ci cellIndex) item(id int) spatial.Item {
	return spatial.Item{
		Rect:  ci.m.grid.CellRectByID(id),
		Value: Cell{ID: id, Extent: ci.m.grid.CellRectByID(id), Category: ci.m.cells[id]},
	}
}

func (ci cellIndex) Visit(r geo.Rect, fn func(spatial.Item) bool) {
	ci.m.grid.VisitCellsIntersecting(r, func(id int) bool { return fn(ci.item(id)) })
}

func (ci cellIndex) VisitNearest(p geo.Point, fn func(spatial.Item, float64) bool) {
	it := ci.m.grid.NearestCells(p)
	for {
		id, dist, ok := it.Next()
		if !ok {
			return
		}
		if !fn(ci.item(id), dist) {
			return
		}
	}
}

// Cursor caches the last cell lookup to exploit GPS locality: consecutive
// records of one object usually stay in the same 100 m cell, so the lookup
// degenerates to a rectangle containment test. Not safe for concurrent use;
// keep one per moving object.
type Cursor struct {
	valid        bool
	cell         Cell
	hits, misses uint64
}

// Stats returns how many lookups hit and missed the cached cell.
func (c *Cursor) Stats() (hits, misses uint64) { return c.hits, c.misses }

// CellAtCursor is CellAt with a last-cell cache; c may be nil (uncached).
// The half-open containment test matches the raster's floor arithmetic, so
// cached and uncached answers are identical.
func (m *Map) CellAtCursor(p geo.Point, c *Cursor) (Cell, bool) {
	if c == nil {
		return m.CellAt(p)
	}
	if c.valid &&
		p.X >= c.cell.Extent.Min.X && p.X < c.cell.Extent.Max.X &&
		p.Y >= c.cell.Extent.Min.Y && p.Y < c.cell.Extent.Max.Y {
		c.hits++
		return c.cell, true
	}
	c.misses++
	cell, ok := m.CellAt(p)
	if ok {
		c.cell, c.valid = cell, true
	}
	return cell, ok
}

// CategoryShares returns the fraction of cells per category (the composition
// of the map itself, useful as a baseline when reading Fig. 9/14).
func (m *Map) CategoryShares() map[Category]float64 {
	counts := map[Category]int{}
	for _, c := range m.cells {
		counts[c]++
	}
	out := make(map[Category]float64, len(counts))
	for c, n := range counts {
		out[c] = float64(n) / float64(len(m.cells))
	}
	return out
}

// GeneratorConfig controls the synthetic city land-use generator.
type GeneratorConfig struct {
	// Extent of the map in the planar frame (metres).
	Extent geo.Rect
	// CellSize is the land-use cell side (the paper's source uses 100 m).
	CellSize float64
	// Seed drives all randomness so generated maps are reproducible.
	Seed int64
	// UrbanCoreRadius is the radius of the dense urban core around the
	// extent centre; building/commercial/transport cells dominate inside.
	UrbanCoreRadius float64
	// LakeFraction is the approximate fraction of the extent covered by a
	// lake placed along the southern edge (Lausanne-like); 0 disables it.
	LakeFraction float64
}

// DefaultGeneratorConfig returns a 20 km x 20 km city with 100 m cells and a
// lakeside, roughly the Lausanne metropolitan footprint of the experiments.
func DefaultGeneratorConfig(seed int64) GeneratorConfig {
	return GeneratorConfig{
		Extent:          geo.NewRect(geo.Pt(0, 0), geo.Pt(20000, 20000)),
		CellSize:        100,
		Seed:            seed,
		UrbanCoreRadius: 6000,
		LakeFraction:    0.12,
	}
}

// Generate builds a synthetic land-use map following the configuration. The
// layout mimics a lakeside European city: a lake strip at the bottom, an
// urban core with building/commercial/transport cells, recreational pockets,
// an agricultural ring and a wooded/unproductive periphery.
func Generate(cfg GeneratorConfig) (*Map, error) {
	m, err := NewMap(cfg.Extent, cfg.CellSize)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := m.grid
	center := cfg.Extent.Center()
	maxDist := center.DistanceTo(cfg.Extent.Min)
	lakeHeight := cfg.Extent.Height() * cfg.LakeFraction
	for row := 0; row < g.Rows; row++ {
		for col := 0; col < g.Cols; col++ {
			id := g.CellID(col, row)
			c := g.CellCenter(col, row)
			// Lake strip along the southern edge.
			if cfg.LakeFraction > 0 && c.Y < cfg.Extent.Min.Y+lakeHeight {
				m.cells[id] = Lakes
				continue
			}
			d := c.DistanceTo(center)
			switch {
			case d < cfg.UrbanCoreRadius:
				// Urban core: building 50%, transport 25%, industrial 10%,
				// special urban 5%, recreational 10%.
				r := rng.Float64()
				switch {
				case r < 0.50:
					m.cells[id] = Building
				case r < 0.75:
					m.cells[id] = Transportation
				case r < 0.85:
					m.cells[id] = IndustrialCommercial
				case r < 0.90:
					m.cells[id] = SpecialUrban
				default:
					m.cells[id] = Recreational
				}
			case d < cfg.UrbanCoreRadius*1.6:
				// Suburban ring: residential pockets within agriculture.
				r := rng.Float64()
				switch {
				case r < 0.30:
					m.cells[id] = Building
				case r < 0.40:
					m.cells[id] = Transportation
				case r < 0.55:
					m.cells[id] = Meadows
				case r < 0.75:
					m.cells[id] = ArableLand
				case r < 0.85:
					m.cells[id] = Orchard
				default:
					m.cells[id] = Recreational
				}
			case d < maxDist*0.8:
				// Rural belt.
				r := rng.Float64()
				switch {
				case r < 0.35:
					m.cells[id] = ArableLand
				case r < 0.60:
					m.cells[id] = Meadows
				case r < 0.80:
					m.cells[id] = Forest
				case r < 0.88:
					m.cells[id] = Woods
				case r < 0.93:
					m.cells[id] = BrushForest
				case r < 0.96:
					m.cells[id] = Rivers
				default:
					m.cells[id] = AlpineAgriculture
				}
			default:
				// Periphery: wooded and unproductive.
				r := rng.Float64()
				switch {
				case r < 0.45:
					m.cells[id] = Forest
				case r < 0.65:
					m.cells[id] = Meadows
				case r < 0.80:
					m.cells[id] = UnproductiveVeg
				case r < 0.92:
					m.cells[id] = BareLand
				default:
					m.cells[id] = Glaciers
				}
			}
		}
	}
	// Free-form regions: a campus, a recreation centre with swimming pool
	// and a market square, the kinds of regions used in Fig. 3.
	m.AddNamedRegion(NamedRegion{
		Name:    "campus",
		Kind:    "campus",
		Polygon: geo.RegularPolygon(geo.Pt(center.X-3000, center.Y+1500), 900, 8),
	})
	m.AddNamedRegion(NamedRegion{
		Name:    "recreation-center",
		Kind:    "recreation",
		Polygon: geo.RegularPolygon(geo.Pt(center.X+2500, center.Y-2000+lakeHeight), 500, 6),
	})
	m.AddNamedRegion(NamedRegion{
		Name:    "market-square",
		Kind:    "market",
		Polygon: geo.RegularPolygon(geo.Pt(center.X+800, center.Y+600), 250, 4),
	})
	return m, nil
}
