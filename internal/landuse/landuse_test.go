package landuse

import (
	"testing"

	"semitri/internal/geo"
)

func TestCategoryOntology(t *testing.T) {
	if len(AllCategories) != 17 {
		t.Fatalf("ontology has %d sub-categories, want 17", len(AllCategories))
	}
	seen := map[Category]bool{}
	for _, c := range AllCategories {
		if seen[c] {
			t.Fatalf("duplicate category %s", c)
		}
		seen[c] = true
		if !c.Valid() {
			t.Fatalf("category %s should be valid", c)
		}
		if c.Label() == string(c) {
			t.Fatalf("category %s has no label", c)
		}
		if c.TopLevel() == "" {
			t.Fatalf("category %s has no top level", c)
		}
	}
	if Category("9.99").Valid() {
		t.Fatal("unknown category should be invalid")
	}
	if Category("").TopLevel() != "" {
		t.Fatal("empty category top level should be empty")
	}
	if Building.TopLevel() != "L1 settlement and urban" {
		t.Fatalf("Building top level = %q", Building.TopLevel())
	}
	if Lakes.TopLevel() != "L4 unproductive" {
		t.Fatalf("Lakes top level = %q", Lakes.TopLevel())
	}
	if Category("5.1").TopLevel() != "" {
		t.Fatal("out-of-ontology prefix should have empty top level")
	}
	if Category("9.99").Label() != "9.99" {
		t.Fatal("unknown label should echo the code")
	}
}

func TestNewMapAndClassification(t *testing.T) {
	m, err := NewMap(geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000)), 100)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumCells() != 100 {
		t.Fatalf("NumCells = %d", m.NumCells())
	}
	if m.Grid() == nil {
		t.Fatal("Grid accessor nil")
	}
	// Default category.
	c, ok := m.CategoryAt(geo.Pt(50, 50))
	if !ok || c != Meadows {
		t.Fatalf("default category = %v,%v", c, ok)
	}
	if !m.SetCategory(geo.Pt(50, 50), Building) {
		t.Fatal("SetCategory inside extent should succeed")
	}
	if m.SetCategory(geo.Pt(-10, 0), Building) {
		t.Fatal("SetCategory outside extent should fail")
	}
	if m.SetCategory(geo.Pt(50, 50), Category("bogus")) {
		t.Fatal("invalid category should fail")
	}
	c, _ = m.CategoryAt(geo.Pt(50, 50))
	if c != Building {
		t.Fatalf("category after set = %v", c)
	}
	if _, ok := m.CategoryAt(geo.Pt(5000, 5000)); ok {
		t.Fatal("outside point should not be ok")
	}
	cell, ok := m.CellAt(geo.Pt(50, 50))
	if !ok || cell.Category != Building || !cell.Extent.ContainsPoint(geo.Pt(50, 50)) {
		t.Fatalf("CellAt = %+v, %v", cell, ok)
	}
	if _, ok := m.CellAt(geo.Pt(-1, -1)); ok {
		t.Fatal("outside CellAt should not be ok")
	}
}

func TestSetCategoryRectAndIntersecting(t *testing.T) {
	m, err := NewMap(geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000)), 100)
	if err != nil {
		t.Fatal(err)
	}
	n := m.SetCategoryRect(geo.NewRect(geo.Pt(0, 0), geo.Pt(250, 250)), Transportation)
	if n != 9 {
		t.Fatalf("SetCategoryRect updated %d cells, want 9", n)
	}
	if m.SetCategoryRect(geo.NewRect(geo.Pt(0, 0), geo.Pt(10, 10)), Category("zzz")) != 0 {
		t.Fatal("invalid category should update nothing")
	}
	cells := m.CellsIntersecting(geo.NewRect(geo.Pt(0, 0), geo.Pt(150, 150)))
	if len(cells) != 4 {
		t.Fatalf("CellsIntersecting = %d cells", len(cells))
	}
	for _, c := range cells {
		if c.Category != Transportation {
			t.Fatalf("cell %d category = %v", c.ID, c.Category)
		}
	}
	shares := m.CategoryShares()
	if shares[Transportation] != 9.0/100.0 {
		t.Fatalf("Transportation share = %v", shares[Transportation])
	}
	if shares[Meadows] != 91.0/100.0 {
		t.Fatalf("Meadows share = %v", shares[Meadows])
	}
}

func TestNamedRegions(t *testing.T) {
	m, err := NewMap(geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000)), 100)
	if err != nil {
		t.Fatal(err)
	}
	campus := NamedRegion{Name: "campus", Kind: "campus",
		Polygon: geo.Polygon{geo.Pt(100, 100), geo.Pt(300, 100), geo.Pt(300, 300), geo.Pt(100, 300)}}
	m.AddNamedRegion(campus)
	if len(m.NamedRegions()) != 1 {
		t.Fatal("NamedRegions should have 1 entry")
	}
	at := m.NamedRegionsAt(geo.Pt(200, 200))
	if len(at) != 1 || at[0].Name != "campus" {
		t.Fatalf("NamedRegionsAt = %+v", at)
	}
	if got := m.NamedRegionsAt(geo.Pt(900, 900)); len(got) != 0 {
		t.Fatal("point outside should match no region")
	}
	hit := m.NamedRegionsIntersecting(geo.NewRect(geo.Pt(250, 250), geo.Pt(500, 500)))
	if len(hit) != 1 {
		t.Fatalf("NamedRegionsIntersecting = %+v", hit)
	}
	miss := m.NamedRegionsIntersecting(geo.NewRect(geo.Pt(800, 800), geo.Pt(900, 900)))
	if len(miss) != 0 {
		t.Fatal("disjoint rect should match no region")
	}
}

func TestNewMapErrors(t *testing.T) {
	if _, err := NewMap(geo.EmptyRect(), 100); err == nil {
		t.Fatal("empty extent should error")
	}
	if _, err := NewMap(geo.NewRect(geo.Pt(0, 0), geo.Pt(10, 10)), 0); err == nil {
		t.Fatal("zero cell size should error")
	}
}

func TestGenerateCityStructure(t *testing.T) {
	cfg := DefaultGeneratorConfig(42)
	m, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumCells() != 200*200 {
		t.Fatalf("NumCells = %d", m.NumCells())
	}
	shares := m.CategoryShares()
	// Lake strip exists.
	if shares[Lakes] < 0.05 {
		t.Fatalf("lake share = %v, want >= 5%%", shares[Lakes])
	}
	// Urban classes present but not dominant across the whole extent.
	urban := shares[Building] + shares[Transportation] + shares[IndustrialCommercial]
	if urban < 0.1 || urban > 0.6 {
		t.Fatalf("urban share = %v", urban)
	}
	// The urban core must be dominated by settlement classes.
	center := cfg.Extent.Center()
	coreCells := m.CellsIntersecting(geo.RectAround(center, 2000))
	var settlement int
	for _, c := range coreCells {
		if c.Category.TopLevel() == "L1 settlement and urban" {
			settlement++
		}
	}
	if frac := float64(settlement) / float64(len(coreCells)); frac < 0.9 {
		t.Fatalf("urban core settlement fraction = %v", frac)
	}
	// Named regions generated.
	if len(m.NamedRegions()) != 3 {
		t.Fatalf("named regions = %d", len(m.NamedRegions()))
	}
	// Determinism: same seed, same classification.
	m2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.cells {
		if m.cells[i] != m2.cells[i] {
			t.Fatalf("generation not deterministic at cell %d", i)
		}
	}
	// Different seed should differ somewhere.
	cfg3 := cfg
	cfg3.Seed = 43
	m3, err := Generate(cfg3)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range m.cells {
		if m.cells[i] != m3.cells[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical maps")
	}
}

func TestGenerateWithoutLake(t *testing.T) {
	cfg := DefaultGeneratorConfig(1)
	cfg.LakeFraction = 0
	cfg.Extent = geo.NewRect(geo.Pt(0, 0), geo.Pt(5000, 5000))
	cfg.UrbanCoreRadius = 1500
	m, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.CategoryShares()[Lakes]; got != 0 {
		t.Fatalf("lake share should be 0, got %v", got)
	}
}

func TestGenerateErrors(t *testing.T) {
	cfg := DefaultGeneratorConfig(1)
	cfg.CellSize = 0
	if _, err := Generate(cfg); err == nil {
		t.Fatal("invalid cell size should error")
	}
}
