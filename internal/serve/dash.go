package serve

import "net/http"

// handleDash answers GET /debug/dash with the embedded operations dashboard:
// one self-contained HTML page, zero external assets, that renders live
// sparklines from /metrics/stream (SSE), a health banner polled from
// /healthz, and the slow-query tail polled from /debug/queries. It is a
// debugging surface, not a product UI — everything it shows comes from the
// JSON endpoints, so anything on the page can be scripted against directly.
func (s *Server) handleDash(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Header().Set("Cache-Control", "no-cache")
	_, _ = w.Write([]byte(dashHTML))
}

const dashHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>semitri dashboard</title>
<style>
  :root { --bg:#0f1218; --panel:#171c26; --line:#2a3142; --fg:#d6dbe6; --dim:#7d8699;
          --ok:#3fb68b; --bad:#e0596b; --accent:#5b9dd9; }
  * { box-sizing:border-box; }
  body { margin:0; background:var(--bg); color:var(--fg);
         font:13px/1.5 ui-monospace,SFMono-Regular,Menlo,Consolas,monospace; }
  header { display:flex; align-items:center; gap:12px; padding:10px 16px;
           border-bottom:1px solid var(--line); }
  header h1 { font-size:14px; margin:0; font-weight:600; letter-spacing:.4px; }
  #health { padding:3px 10px; border-radius:4px; font-weight:600; }
  #health.ok  { background:rgba(63,182,139,.15); color:var(--ok); }
  #health.bad { background:rgba(224,89,107,.18); color:var(--bad); }
  #conn { color:var(--dim); margin-left:auto; }
  main { padding:14px 16px; display:grid; gap:14px; }
  .cards { display:grid; grid-template-columns:repeat(auto-fill,minmax(230px,1fr)); gap:10px; }
  .card { background:var(--panel); border:1px solid var(--line); border-radius:6px; padding:8px 10px; }
  .card .name { color:var(--dim); font-size:11px; overflow:hidden; text-overflow:ellipsis;
                white-space:nowrap; }
  .card .val { font-size:17px; font-weight:600; margin:2px 0 4px; }
  .card canvas { width:100%; height:34px; display:block; }
  section h2 { font-size:12px; color:var(--dim); text-transform:uppercase;
               letter-spacing:.8px; margin:0 0 6px; }
  table { width:100%; border-collapse:collapse; background:var(--panel);
          border:1px solid var(--line); border-radius:6px; }
  th, td { text-align:left; padding:5px 10px; border-bottom:1px solid var(--line);
           font-size:12px; }
  th { color:var(--dim); font-weight:500; }
  td.num { text-align:right; color:var(--accent); }
  tr:last-child td { border-bottom:none; }
  #reasons { color:var(--bad); padding:0 16px; }
</style>
</head>
<body>
<header>
  <h1>semitri</h1>
  <span id="health" class="ok">checking…</span>
  <span id="conn">connecting to /metrics/stream…</span>
</header>
<div id="reasons"></div>
<main>
  <section>
    <h2>metrics <span id="tickinfo" style="text-transform:none;letter-spacing:0"></span></h2>
    <div class="cards" id="cards"></div>
  </section>
  <section>
    <h2>slowest queries</h2>
    <table id="slow"><thead>
      <tr><th>source</th><th>query</th><th class="num">ms</th><th>at</th></tr>
    </thead><tbody></tbody></table>
  </section>
</main>
<script>
"use strict";
// Metric ids worth a card by default; everything else is available via
// /metrics/history but would drown the page. Prefixes match families.
var INTERESTING = [
  "semitri_store_records_total", "semitri_store_tuples_total",
  "semitri_queries_total", "semitri_query_ns_sum",
  "semitri_live_standing_queries", "semitri_live_matches_total",
  "semitri_live_events_evaluated_total",
  "semitri_bus_events_total", "semitri_bus_dropped_total",
  "semitri_health_degraded", "semitri_go_goroutines", "semitri_go_heap_bytes"
];
var HISTORY = 120;              // points per sparkline
var series = {};                 // id -> {vals:[], card, canvas, valEl}
var cards = document.getElementById("cards");

function interesting(id) {
  for (var i = 0; i < INTERESTING.length; i++)
    if (id.indexOf(INTERESTING[i]) === 0) return true;
  return false;
}
function fmt(v) {
  if (Math.abs(v) >= 1e9) return (v/1e9).toFixed(2)+"G";
  if (Math.abs(v) >= 1e6) return (v/1e6).toFixed(2)+"M";
  if (Math.abs(v) >= 1e3) return (v/1e3).toFixed(1)+"k";
  return (v === Math.round(v)) ? String(v) : v.toFixed(2);
}
function card(id) {
  var s = series[id];
  if (s) return s;
  var div = document.createElement("div");
  div.className = "card";
  div.innerHTML = '<div class="name" title="'+id+'">'+id+'</div>' +
                  '<div class="val">–</div><canvas></canvas>';
  cards.appendChild(div);
  s = series[id] = { vals: [], card: div,
                     valEl: div.querySelector(".val"),
                     canvas: div.querySelector("canvas") };
  return s;
}
function spark(s) {
  var c = s.canvas, ctx = c.getContext("2d");
  var w = c.width = c.clientWidth || 220, h = c.height = 34;
  ctx.clearRect(0, 0, w, h);
  var v = s.vals;
  if (v.length < 2) return;
  var min = Math.min.apply(null, v), max = Math.max.apply(null, v);
  var span = (max - min) || 1;
  ctx.beginPath();
  for (var i = 0; i < v.length; i++) {
    var x = i / (v.length - 1) * (w - 2) + 1;
    var y = h - 3 - (v[i] - min) / span * (h - 6);
    i ? ctx.lineTo(x, y) : ctx.moveTo(x, y);
  }
  ctx.strokeStyle = "#5b9dd9"; ctx.lineWidth = 1.25; ctx.stroke();
}
function onTick(tick) {
  var values = tick.values || {};
  Object.keys(values).sort().forEach(function (id) {
    if (!interesting(id)) return;
    var s = card(id);
    s.vals.push(values[id]);
    if (s.vals.length > HISTORY) s.vals.shift();
    s.valEl.textContent = fmt(values[id]);
    spark(s);
  });
  document.getElementById("tickinfo").textContent =
    "· " + new Date(tick.unix_nano / 1e6).toLocaleTimeString();
}

var conn = document.getElementById("conn");
function stream() {
  var es = new EventSource("/metrics/stream");
  es.addEventListener("tick", function (e) { onTick(JSON.parse(e.data)); });
  es.addEventListener("heartbeat", function (e) {
    var hb = JSON.parse(e.data);
    conn.textContent = "stream ok · delivered " + hb.delivered +
                       " · drops " + hb.drops + " · lag " + hb.lag;
  });
  es.onopen = function () { conn.textContent = "stream connected"; };
  es.onerror = function () {
    conn.textContent = "stream lost — retrying…";
    es.close();
    setTimeout(stream, 2000);
  };
}
stream();

function poll(url, every, fn) {
  function go() {
    fetch(url).then(function (r) { return r.json().then(function (b) { fn(r, b); }); })
      .catch(function () { fn(null, null); })
      .then(function () { setTimeout(go, every); });
  }
  go();
}
poll("/healthz", 3000, function (r, body) {
  var el = document.getElementById("health"), rs = document.getElementById("reasons");
  if (!body) { el.className = "bad"; el.textContent = "unreachable"; rs.textContent = ""; return; }
  if (r.ok) { el.className = "ok"; el.textContent = "healthy · " + fmt(body.records || 0) + " records"; rs.textContent = ""; }
  else { el.className = "bad"; el.textContent = "degraded";
         rs.textContent = (body.reasons || []).join(" · "); }
});
poll("/debug/queries", 5000, function (r, body) {
  if (!body || !body.queries) return;
  var tb = document.querySelector("#slow tbody");
  tb.innerHTML = "";
  body.queries.slice(0, 12).forEach(function (q) {
    var tr = document.createElement("tr");
    function td(text, cls) { var d = document.createElement("td");
      d.textContent = text; if (cls) d.className = cls; tr.appendChild(d); }
    td(q.source); td(q.query || "(none)");
    td((q.ns / 1e6).toFixed(2), "num");
    td(new Date(q.at).toLocaleTimeString());
    tb.appendChild(tr);
  });
});
</script>
</body>
</html>
`
