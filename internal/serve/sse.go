package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"semitri/internal/obs"
	"semitri/internal/query"
	"semitri/internal/query/lang"
)

// DefaultSSEHeartbeat is the idle-connection heartbeat cadence of the SSE
// endpoints (override with WithSSEHeartbeat). Heartbeats keep intermediaries
// from timing the stream out and echo the subscription's drop/lag counters
// so a client can tell when it is falling behind.
const DefaultSSEHeartbeat = 10 * time.Second

// defaultSubscribeBuffer is the per-connection notification ring size of
// /subscribe and /metrics/stream (override per request with ?buffer=N).
// Drop-oldest: a slow client loses old events, never stalls ingestion.
const defaultSubscribeBuffer = 256

// sseWriter wraps one Server-Sent-Events response stream.
type sseWriter struct {
	w http.ResponseWriter
	f http.Flusher
}

// startSSE upgrades the response to an event stream, or reports that the
// transport cannot stream.
func startSSE(w http.ResponseWriter) (*sseWriter, error) {
	f, ok := w.(http.Flusher)
	if !ok {
		return nil, errors.New("streaming unsupported by this connection")
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	h.Set("X-Accel-Buffering", "no") // tell buffering proxies to pass events through
	w.WriteHeader(http.StatusOK)
	f.Flush()
	return &sseWriter{w: w, f: f}, nil
}

// event writes one SSE frame (`event: name` + JSON `data:` line) and
// flushes. A write error means the client is gone.
func (s *sseWriter) event(name string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(s.w, "event: %s\ndata: %s\n\n", name, data); err != nil {
		return err
	}
	s.f.Flush()
	return nil
}

// sseBuffer reads the optional ?buffer= ring-size parameter.
func sseBuffer(d *decoder) (int, error) {
	buffer := d.intVal("buffer")
	if err := d.Err(); err != nil {
		return 0, err
	}
	if buffer <= 0 {
		buffer = defaultSubscribeBuffer
	}
	return buffer, nil
}

// heartbeatBody is the payload of the periodic heartbeat event on both SSE
// endpoints: delivery accounting for this subscription, so a client can see
// backpressure (drops, lag) without a second request.
type heartbeatBody struct {
	UnixNano  int64 `json:"unix_nano"`
	Delivered int64 `json:"delivered"`
	Drops     int64 `json:"drops"`
	Lag       int   `json:"lag"`
	// Matched is the standing query's current matched-set size (absent on
	// /metrics/stream).
	Matched *int `json:"matched,omitempty"`
}

// handleSubscribe answers GET /subscribe?q=<statement>: the statement —
// same grammar as /query/relational, single-table subset — is compiled into
// a standing query and its notifications are streamed as SSE events:
//
//	event: subscribed   {"query": ..., "buffer": N}       (once, first)
//	event: match        jsonMatch + {"kind": "match"}
//	event: update       jsonMatch + {"kind": "update"}
//	event: unmatch      {"kind": "unmatch", ref fields}
//	event: heartbeat    delivery accounting (drops, lag, matched size)
//
// The subscription evaluates store events only (never the indexes) and is
// released when the client disconnects. ?buffer=N sizes the per-connection
// ring (drop-oldest under backpressure).
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	if s.live == nil {
		writeError(w, http.StatusServiceUnavailable, errors.New("live subscriptions are not enabled"))
		return
	}
	d := newDecoder(r)
	src := d.str("q")
	buffer, err := sseBuffer(d)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if src == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing q parameter (a single-table statement)"))
		return
	}
	q, err := lang.ParseQuery(src)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	standing, err := s.live.Register(q, buffer)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	defer standing.Close()
	stream, err := startSSE(w)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if err := stream.event("subscribed", map[string]any{"query": src, "buffer": buffer}); err != nil {
		return
	}
	sub := standing.Sub()
	ticker := time.NewTicker(s.heartbeat)
	defer ticker.Stop()
	var delivered int64
	var buf []query.Notification
	emitHeartbeat := func() error {
		matched := standing.MatchedCount()
		return stream.event("heartbeat", heartbeatBody{
			UnixNano:  time.Now().UnixNano(),
			Delivered: delivered,
			Drops:     standing.Drops(),
			Lag:       standing.Lag(),
			Matched:   &matched,
		})
	}
	for {
		buf = sub.Drain(buf[:0])
		for _, n := range buf {
			body := map[string]any{"kind": n.Kind}
			if n.Kind == query.NotifyUnmatch {
				body["trajectory"] = n.Match.Ref.TrajectoryID
				body["object"] = n.Match.Ref.ObjectID
				body["interpretation"] = n.Match.Ref.Interpretation
				body["index"] = n.Match.Ref.Index
			} else {
				body["match"] = toJSONMatch(n.Match)
			}
			if err := stream.event(n.Kind, body); err != nil {
				return // client gone; defer releases the subscription
			}
			delivered++
		}
		select {
		case <-sub.C():
		case <-ticker.C:
			if err := emitHeartbeat(); err != nil {
				return
			}
		case <-r.Context().Done():
			return
		case <-sub.Done():
			// Dispatcher shut down (server closing): flush what remains.
			for _, n := range sub.Drain(buf[:0]) {
				_ = stream.event(n.Kind, map[string]any{"kind": n.Kind, "match": toJSONMatch(n.Match)})
			}
			_ = emitHeartbeat()
			return
		}
	}
}

// handleMetricsStream answers GET /metrics/stream: every sampler tick of the
// metrics history as an SSE event (event: tick, data: {unix_nano, values}),
// plus the same heartbeat accounting as /subscribe. One fresh sample is
// taken and delivered immediately on connect so clients render without
// waiting out the sampler interval.
func (s *Server) handleMetricsStream(w http.ResponseWriter, r *http.Request) {
	if s.history == nil {
		writeError(w, http.StatusServiceUnavailable, errors.New("metrics history is not enabled"))
		return
	}
	d := newDecoder(r)
	buffer, err := sseBuffer(d)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sub := s.history.Subscribe(buffer)
	if sub == nil {
		writeError(w, http.StatusServiceUnavailable, errors.New("metrics history is closed"))
		return
	}
	defer sub.Close()
	stream, err := startSSE(w)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if err := stream.event("tick", s.history.SampleNow()); err != nil {
		return
	}
	ticker := time.NewTicker(s.heartbeat)
	defer ticker.Stop()
	var delivered int64
	var buf []obs.MetricsTick
	for {
		buf = sub.Drain(buf[:0])
		for _, tick := range buf {
			if err := stream.event("tick", tick); err != nil {
				return
			}
			delivered++
		}
		select {
		case <-sub.C():
		case <-ticker.C:
			hb := heartbeatBody{
				UnixNano:  time.Now().UnixNano(),
				Delivered: delivered,
				Drops:     sub.Drops(),
				Lag:       sub.Lag(),
			}
			if err := stream.event("heartbeat", hb); err != nil {
				return
			}
		case <-r.Context().Done():
			return
		case <-sub.Done():
			return
		}
	}
}

// handleMetricsHistory answers GET /metrics/history?name=...&window=...:
// the in-process ring time-series of one metric id (the ids /metrics
// exposes; histograms appear as <name>_count and <name>_sum). window is a
// Go duration ("10m") bounding the trailing span; omitted or 0 returns
// everything retained. Without ?name= the response lists the known ids.
func (s *Server) handleMetricsHistory(w http.ResponseWriter, r *http.Request) {
	if s.history == nil {
		writeError(w, http.StatusServiceUnavailable, errors.New("metrics history is not enabled"))
		return
	}
	d := newDecoder(r)
	name := d.str("name")
	windowStr := d.str("window")
	if err := d.Err(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var window time.Duration
	if windowStr != "" {
		var err error
		if window, err = time.ParseDuration(windowStr); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad window %q: %w", windowStr, err))
			return
		}
	}
	if name == "" {
		writeJSON(w, http.StatusOK, map[string]any{
			"interval_ns": s.history.Interval().Nanoseconds(),
			"names":       s.history.Names(),
		})
		return
	}
	samples, ok := s.history.Window(name, window)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no history for metric %q (GET /metrics/history lists known names)", name))
		return
	}
	if samples == nil {
		samples = []obs.Sample{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"name":        name,
		"interval_ns": s.history.Interval().Nanoseconds(),
		"count":       len(samples),
		"samples":     samples,
	})
}
