package serve

import (
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"semitri/internal/episode"
	"semitri/internal/geo"
	"semitri/internal/query"
)

// decoder is the one shared query-parameter reader of the serving layer:
// every endpoint decodes through it, so parameter errors accumulate into a
// single structured 400 body instead of each handler growing its own ad-hoc
// parsing and error style. Typed getters record a zero value and an error
// on malformed input; Err returns the combined error after decoding.
type decoder struct {
	p    url.Values
	errs []string
}

func newDecoder(r *http.Request) *decoder { return &decoder{p: r.URL.Query()} }

// fail records one parameter error.
func (d *decoder) fail(format string, args ...any) {
	d.errs = append(d.errs, fmt.Sprintf(format, args...))
}

// Err returns the accumulated decoding error, nil when the request was
// well-formed.
func (d *decoder) Err() error {
	if len(d.errs) == 0 {
		return nil
	}
	return errors.New(strings.Join(d.errs, "; "))
}

// str reads a string parameter ("" when absent).
func (d *decoder) str(name string) string { return d.p.Get(name) }

// boolVal reads a flag parameter: absent, "0", "false" and "no" mean false,
// any other value (?trace=1, ?trace=true, even a bare ?trace=) means true.
func (d *decoder) boolVal(name string) bool {
	if !d.p.Has(name) {
		return false
	}
	switch strings.ToLower(d.p.Get(name)) {
	case "0", "false", "no":
		return false
	}
	return true
}

// intVal reads an integer parameter (0 when absent).
func (d *decoder) intVal(name string) int {
	v := d.p.Get(name)
	if v == "" {
		return 0
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		d.fail("%s: %v", name, err)
		return 0
	}
	return n
}

// timeVal reads an RFC 3339 timestamp parameter (zero time when absent).
func (d *decoder) timeVal(name string) time.Time {
	v := d.p.Get(name)
	if v == "" {
		return time.Time{}
	}
	ts, err := time.Parse(time.RFC3339, v)
	if err != nil {
		d.fail("%s: %v", name, err)
		return time.Time{}
	}
	return ts
}

// floatVal reads a float parameter; ok reports whether it was present and
// well-formed.
func (d *decoder) floatVal(name string) (f float64, ok bool) {
	v := d.p.Get(name)
	if v == "" {
		return 0, false
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		d.fail("%s: %v", name, err)
		return 0, false
	}
	return f, true
}

// kindVal reads the episode-kind parameter (nil when absent = both kinds).
func (d *decoder) kindVal(name string) *episode.Kind {
	switch v := d.p.Get(name); v {
	case "":
		return nil
	case "stop":
		k := episode.Stop
		return &k
	case "move":
		k := episode.Move
		return &k
	default:
		d.fail("unknown %s %q (want stop or move)", name, v)
		return nil
	}
}

// floatGroup reads a group of float parameters that must be given together
// (a partial spatial window is a malformed query, not a query with the
// missing coordinate read as zero). ok reports whether the full group was
// present.
func (d *decoder) floatGroup(names ...string) (map[string]float64, bool) {
	out := map[string]float64{}
	for _, n := range names {
		if f, ok := d.floatVal(n); ok {
			out[n] = f
		}
	}
	if len(out) == 0 {
		return nil, false
	}
	if len(out) != len(names) {
		d.fail("parameters %s must be given together", strings.Join(names, ", "))
		return nil, false
	}
	return out, true
}

// decodeQuery maps URL parameters onto a validated query.Query through the
// query package's builder:
//
//	object, trajectory, interpretation, kind=stop|move, limit
//	from, to            RFC 3339 timestamps (closed window, open sides)
//	ann=key=value       annotation equality (alias: annkey + annvalue)
//	minx,miny,maxx,maxy spatial window over episode geometry
//	nearx,neary,radius  radius (metres) around a point
func decodeQuery(d *decoder) (query.Query, error) {
	var opts []query.Option
	if v := d.str("object"); v != "" {
		opts = append(opts, query.ForObject(v))
	}
	if v := d.str("trajectory"); v != "" {
		opts = append(opts, query.ForTrajectory(v))
	}
	if v := d.str("interpretation"); v != "" {
		opts = append(opts, query.InInterpretation(v))
	}
	if k := d.kindVal("kind"); k != nil {
		opts = append(opts, query.OfKind(*k))
	}
	if ts := d.timeVal("from"); !ts.IsZero() {
		opts = append(opts, query.Since(ts))
	}
	if ts := d.timeVal("to"); !ts.IsZero() {
		opts = append(opts, query.Until(ts))
	}
	if ann := d.str("ann"); ann != "" {
		key, value, ok := strings.Cut(ann, "=")
		if !ok || key == "" {
			d.fail("ann must be key=value, got %q", ann)
		} else {
			opts = append(opts, query.WithAnnotation(key, value))
		}
	}
	if k := d.str("annkey"); k != "" {
		opts = append(opts, query.WithAnnotation(k, d.str("annvalue")))
	}
	if w, ok := d.floatGroup("minx", "miny", "maxx", "maxy"); ok {
		opts = append(opts, query.InWindow(
			geo.NewRect(geo.Pt(w["minx"], w["miny"]), geo.Pt(w["maxx"], w["maxy"]))))
	}
	if n, ok := d.floatGroup("nearx", "neary", "radius"); ok {
		opts = append(opts, query.NearPoint(geo.Pt(n["nearx"], n["neary"]), n["radius"]))
	}
	if limit := d.intVal("limit"); limit != 0 {
		opts = append(opts, query.WithLimit(limit))
	}
	if err := d.Err(); err != nil {
		return query.Query{}, err
	}
	return query.Build(opts...)
}
