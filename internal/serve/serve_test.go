package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"semitri"
	"semitri/internal/query"
	"semitri/internal/workload"
)

// newTestServer ingests one person-day through the streaming pipeline and
// serves it — the exact wiring of cmd/semitri-serve.
func newTestServer(t *testing.T) (*httptest.Server, *query.Engine) {
	t.Helper()
	city, err := workload.NewCity(workload.DefaultCityConfig(7, 2500))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := workload.GeneratePeople(city, workload.DefaultPeopleConfig(2, 1, 9))
	if err != nil {
		t.Fatal(err)
	}
	pipeline, err := semitri.New(semitri.Sources{
		Landuse: city.Landuse, Roads: city.Roads, POIs: city.POIs,
	}, semitri.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	engine := pipeline.QueryEngine()
	sp := pipeline.NewStream()
	for _, r := range ds.Records() {
		if _, err := sp.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(engine).Handler())
	t.Cleanup(srv.Close)
	return srv, engine
}

// getJSON fetches a path and decodes the JSON body.
func getJSON(t *testing.T, srv *httptest.Server, path string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", path, resp.StatusCode, wantStatus)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("GET %s: content type %q", path, ct)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("GET %s: decode: %v", path, err)
	}
	if len(body) == 0 {
		t.Fatalf("GET %s: empty JSON body", path)
	}
	return body
}

func TestEndpoints(t *testing.T) {
	srv, engine := newTestServer(t)

	health := getJSON(t, srv, "/healthz", http.StatusOK)
	if health["status"] != "ok" || health["records"].(float64) == 0 {
		t.Fatalf("healthz = %v", health)
	}

	all := getJSON(t, srv, "/query/episodes", http.StatusOK)
	if all["count"].(float64) == 0 {
		t.Fatalf("unfiltered episode query found nothing: %v", all)
	}
	if all["plan"].(string) == "" || all["path"].(string) != "full-scan" {
		t.Fatalf("plan missing: %v %v", all["plan"], all["path"])
	}

	stops := getJSON(t, srv, "/query/episodes?kind=stop&limit=5", http.StatusOK)
	matches := stops["matches"].([]any)
	if len(matches) == 0 || len(matches) > 5 {
		t.Fatalf("stop query matches = %d", len(matches))
	}
	first := matches[0].(map[string]any)
	if first["kind"] != "stop" || first["trajectory"] == "" {
		t.Fatalf("match shape: %v", first)
	}

	// An annotation + time-window + spatial query exercising parseQuery end
	// to end; correctness of the result set is the engine tests' job, here
	// the parameters must round-trip.
	params := url.Values{}
	params.Set("ann", "poi_category=item sale")
	params.Set("from", time.Date(2010, 3, 15, 0, 0, 0, 0, time.UTC).Format(time.RFC3339))
	params.Set("to", time.Date(2010, 3, 16, 0, 0, 0, 0, time.UTC).Format(time.RFC3339))
	params.Set("minx", "0")
	params.Set("miny", "0")
	params.Set("maxx", "10000")
	params.Set("maxy", "10000")
	annQ := getJSON(t, srv, "/query/episodes?"+params.Encode(), http.StatusOK)
	if annQ["path"].(string) != string(query.PathAnnotation) {
		t.Fatalf("annotation query planned %v", annQ["path"])
	}

	objs := getJSON(t, srv, "/query/objects", http.StatusOK)
	if objs["count"].(float64) < 2 {
		t.Fatalf("objects = %v", objs["count"])
	}
	oneObj := getJSON(t, srv, "/query/objects?object=user-001", http.StatusOK)
	if oneObj["count"].(float64) != 1 {
		t.Fatalf("filtered objects = %v", oneObj["count"])
	}

	trajs := getJSON(t, srv, "/query/trajectories", http.StatusOK)
	if trajs["count"].(float64) == 0 {
		t.Fatalf("trajectories = %v", trajs)
	}
	jt := trajs["trajectories"].([]any)[0].(map[string]any)
	if jt["id"] == "" || jt["records"].(float64) == 0 || len(jt["interpretations"].([]any)) == 0 {
		t.Fatalf("trajectory shape: %v", jt)
	}

	stats := getJSON(t, srv, "/stats", http.StatusOK)
	if stats["records"].(float64) == 0 || stats["index"] == nil {
		t.Fatalf("stats = %v", stats)
	}
	idx := stats["index"].(map[string]any)
	if idx["IndexedTuples"].(float64) == 0 {
		t.Fatalf("index stats = %v", idx)
	}
	if engine.IndexStats().IndexedTuples == 0 {
		t.Fatal("engine index empty")
	}
}

// TestRelationalEndpoint drives /query/relational through every statement
// shape and checks the response against the same statement executed directly
// on the engine.
func TestRelationalEndpoint(t *testing.T) {
	srv, engine := newTestServer(t)
	rel := func(stmt string) string {
		v := url.Values{}
		v.Set("q", stmt)
		return "/query/relational?" + v.Encode()
	}

	single := getJSON(t, srv, rel("stops where ann.poi_category = \"item sale\" limit 4"), http.StatusOK)
	if single["plan"].(string) == "" || single["query"].(string) == "" {
		t.Fatalf("plan/query echo missing: %v", single)
	}
	if ms := single["matches"].([]any); len(ms) == 0 || len(ms) > 4 {
		t.Fatalf("single-table statement matches = %d", len(ms))
	} else if ms[0].(map[string]any)["kind"] != "stop" {
		t.Fatalf("match shape: %v", ms[0])
	}

	coloc := "stops join stops on distance <= 200 and within 1h and distinct objects"
	pairs := getJSON(t, srv, rel(coloc), http.StatusOK)
	plan := pairs["plan"].(string)
	if !strings.Contains(plan, "build=") || !strings.Contains(plan, "probe=") {
		t.Fatalf("join plan not echoed: %q", plan)
	}
	want, err := engine.ExecuteJoin(query.Join{
		Left:  query.MustBuild(query.OnlyStops()),
		Right: query.MustBuild(query.OnlyStops()),
		On:    query.JoinOn{MaxDistance: 200, Within: time.Hour, DistinctObjects: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := pairs["pairs"].([]any) // present (possibly empty) — the join shape
	if len(got) != len(want) {
		t.Fatalf("endpoint returned %d pairs, engine %d", len(got), len(want))
	}
	for i, raw := range got {
		p := raw.(map[string]any)
		l := p["left"].(map[string]any)
		r := p["right"].(map[string]any)
		if l["object"] != want[i].Left.Ref.ObjectID || r["object"] != want[i].Right.Ref.ObjectID {
			t.Fatalf("pair %d: endpoint %v/%v, engine %v/%v",
				i, l["object"], r["object"], want[i].Left.Ref.ObjectID, want[i].Right.Ref.ObjectID)
		}
	}

	groups := getJSON(t, srv, rel(coloc+" group by object distinct objects top 3"), http.StatusOK)
	gs := groups["groups"].([]any)
	if len(gs) > 3 {
		t.Fatalf("top 3 returned %d groups", len(gs))
	}
	if len(want) > 0 && len(gs) == 0 {
		t.Fatal("join found pairs but the aggregate found no groups")
	}
	for _, raw := range gs {
		g := raw.(map[string]any)
		if g["key"] == "" || g["value"].(float64) <= 0 {
			t.Fatalf("group shape: %v", g)
		}
	}
}

func TestEndpointErrors(t *testing.T) {
	srv, _ := newTestServer(t)
	for _, path := range []string{
		"/query/relational", // missing q
		"/query/relational?q=" + url.QueryEscape("stops join stops on gravity"),
		"/query/relational?q=" + url.QueryEscape("stops join stops on same object"),
		"/query/episodes?kind=hover",
		"/query/episodes?from=yesterday",
		"/query/episodes?ann=poi_category",
		"/query/episodes?minx=a&miny=0&maxx=1&maxy=1",
		"/query/episodes?limit=-3",
		"/query/episodes?nearx=1&neary=1",            // radius missing
		"/query/episodes?miny=0&maxx=1&maxy=1",       // partial window
		"/query/episodes?radius=2000",                // centre missing
		"/query/episodes?nearx=1&neary=1&radius=-50", // negative radius
	} {
		body := getJSON(t, srv, path, http.StatusBadRequest)
		if body["error"] == "" {
			t.Fatalf("%s: no error message", path)
		}
	}
	resp, err := http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown route: %d", resp.StatusCode)
	}
}
