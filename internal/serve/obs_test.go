package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
)

// TestMetricsEndpoint asserts GET /metrics serves a well-formed Prometheus
// text exposition covering every instrumented subsystem after an ingest.
func TestMetricsEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics: content type %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(data)
	// One family per subsystem plus the runtime gauges; all registered at
	// init, so each must appear with HELP/TYPE headers.
	for _, family := range []string{
		"semitri_ingest_records_total",
		"semitri_ingest_stage_ns",
		"semitri_store_mutations_total",
		"semitri_query_total",
		"semitri_join_total",
		"semitri_wal_frames_total",
		"semitri_segment_freezes_total",
		"go_goroutines",
	} {
		if !strings.Contains(body, "# HELP "+family) || !strings.Contains(body, "# TYPE "+family) {
			t.Fatalf("/metrics: family %s missing HELP/TYPE", family)
		}
	}
	// The test server ingested records, so the ingest counter must be > 0.
	var sawIngest bool
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "semitri_ingest_records_total ") &&
			!strings.HasSuffix(line, " 0") {
			sawIngest = true
		}
	}
	if !sawIngest {
		t.Fatal("/metrics: semitri_ingest_records_total did not move after ingest")
	}
	// Minimal exposition well-formedness: every non-comment line is
	// "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Fatalf("/metrics: malformed sample line %q", line)
		}
	}
}

// TestTraceParameter asserts ?trace=1 attaches a per-stage trace to every
// query endpoint's response (and that untraced responses stay trace-free).
func TestTraceParameter(t *testing.T) {
	srv, _ := newTestServer(t)
	paths := []string{
		"/query/episodes?kind=stop&limit=3",
		"/query/relational?q=" + url.QueryEscape(`stops where ann.poi_category = "item sale" limit 3`),
		"/query/trajectories",
		"/query/objects",
	}
	for _, path := range paths {
		plain := getJSON(t, srv, path, http.StatusOK)
		if _, ok := plain["trace"]; ok {
			t.Fatalf("%s: trace present without ?trace=1", path)
		}
		sep := "?"
		if strings.Contains(path, "?") {
			sep = "&"
		}
		body := getJSON(t, srv, path+sep+"trace=1", http.StatusOK)
		tr, ok := body["trace"].(map[string]any)
		if !ok {
			t.Fatalf("%s: no trace object with ?trace=1: %v", path, body["trace"])
		}
		if tr["kind"] == "" || tr["total_ns"].(float64) <= 0 {
			t.Fatalf("%s: trace shape: %v", path, tr)
		}
		stages, ok := tr["stages"].([]any)
		if !ok || len(stages) == 0 {
			t.Fatalf("%s: trace has no stages: %v", path, tr)
		}
		st := stages[0].(map[string]any)
		if st["name"] == "" {
			t.Fatalf("%s: stage shape: %v", path, st)
		}
	}
	// A join statement carries the probe stages and the build sub-trace.
	join := "/query/relational?q=" + url.QueryEscape(
		"stops join stops on distance <= 200 and within 1h and distinct objects") + "&trace=1"
	body := getJSON(t, srv, join, http.StatusOK)
	tr := body["trace"].(map[string]any)
	if tr["kind"] != "join" || tr["build"] == nil {
		t.Fatalf("join trace shape: %v", tr)
	}
	names := map[string]bool{}
	for _, raw := range tr["stages"].([]any) {
		names[raw.(map[string]any)["name"].(string)] = true
	}
	for _, want := range []string{"build", "probe", "sort-limit"} {
		if !names[want] {
			t.Fatalf("join trace missing stage %q (have %v)", want, names)
		}
	}
}

// TestSlowQueryLog asserts served queries land in GET /debug/queries,
// slowest first.
func TestSlowQueryLog(t *testing.T) {
	srv, _ := newTestServer(t)
	for _, p := range []string{"/query/episodes", "/query/objects", "/query/trajectories?trace=1"} {
		getJSON(t, srv, p, http.StatusOK)
	}
	body := getJSON(t, srv, "/debug/queries", http.StatusOK)
	qs, ok := body["queries"].([]any)
	if !ok || len(qs) < 3 {
		t.Fatalf("/debug/queries: %v", body)
	}
	var lastNs = float64(1 << 62)
	var sawTrace bool
	for _, raw := range qs {
		q := raw.(map[string]any)
		if q["source"] == "" || q["ns"].(float64) <= 0 || q["at"] == "" {
			t.Fatalf("slow query shape: %v", q)
		}
		if q["ns"].(float64) > lastNs {
			t.Fatal("/debug/queries not sorted slowest first")
		}
		lastNs = q["ns"].(float64)
		if q["trace"] != nil {
			sawTrace = true
		}
	}
	if !sawTrace {
		t.Fatal("traced request did not retain its trace in /debug/queries")
	}
}

// TestHealthzDegraded asserts a WithHealth probe downgrades /healthz to 503
// with the reasons listed.
func TestHealthzDegraded(t *testing.T) {
	_, engine := newTestServer(t)
	reasons := []string{}
	srv := httptest.NewServer(New(engine, WithHealth(func() []string { return reasons })).Handler())
	defer srv.Close()

	if body := getJSON(t, srv, "/healthz", http.StatusOK); body["status"] != "ok" {
		t.Fatalf("healthy probe: %v", body)
	}
	reasons = []string{"wal: flusher stalled (last flush 10s ago)"}
	body := getJSON(t, srv, "/healthz", http.StatusServiceUnavailable)
	if body["status"] != "degraded" {
		t.Fatalf("degraded status: %v", body)
	}
	got := body["reasons"].([]any)
	if len(got) != 1 || got[0] != reasons[0] {
		t.Fatalf("degraded reasons: %v", got)
	}
}

// TestProfilingGate asserts the pprof and runtime-trace endpoints exist only
// with WithProfiling.
func TestProfilingGate(t *testing.T) {
	srv, engine := newTestServer(t)
	for _, p := range []string{"/debug/pprof/", "/debug/trace"} {
		resp, err := http.Get(srv.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s without WithProfiling: status %d", p, resp.StatusCode)
		}
	}
	prof := httptest.NewServer(New(engine, WithProfiling()).Handler())
	defer prof.Close()
	resp, err := http.Get(prof.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ with WithProfiling: status %d", resp.StatusCode)
	}
	tresp, err := http.Get(prof.URL + "/debug/trace?seconds=1")
	if err != nil {
		t.Fatal(err)
	}
	trace, err := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if tresp.StatusCode != http.StatusOK || len(trace) == 0 {
		t.Fatalf("/debug/trace: status %d, %d bytes", tresp.StatusCode, len(trace))
	}
}
