// Package serve is the HTTP JSON serving layer over the query engine: the
// online face of the reproduction, standing in for the application tier the
// paper puts on top of its PostgreSQL/PostGIS store (§1's "who stopped at a
// restaurant between 12:00 and 14:00 inside this region", served while the
// annotation middleware keeps ingesting).
//
// The handler is deliberately a plain net/http mux so cmd/semitri-serve,
// the examples and the tests all share one implementation:
//
//	GET /healthz             liveness + store counts
//	GET /query/episodes      episode tuples matching a Query (see parseQuery)
//	GET /query/trajectories  per-trajectory summaries (?object= filters)
//	GET /query/objects       per-object counts (?object= filters)
//	GET /stats               analytics snapshot (episode/category/mode/
//	                         compression aggregates + index state)
//
// Every endpoint answers JSON; errors answer {"error": ...} with a 4xx/5xx
// status. Queries run against live data: the engine's indexes are
// maintained from the store's append path, so results reflect ingestion up
// to the moment the request resolved.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"semitri/internal/analytics"
	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/geo"
	"semitri/internal/query"
	"semitri/internal/store"
)

// Server serves the query engine (and the store behind it) over HTTP.
type Server struct {
	engine *query.Engine
	st     *store.Store
}

// New builds a server over the engine and its store.
func New(engine *query.Engine) *Server {
	return &Server{engine: engine, st: engine.Store()}
}

// Handler returns the route mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /query/episodes", s.handleEpisodes)
	mux.HandleFunc("GET /query/trajectories", s.handleTrajectories)
	mux.HandleFunc("GET /query/objects", s.handleObjects)
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

// writeJSON writes v as the response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

// writeError writes an {"error": ...} body.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// parseQuery maps URL parameters onto a query.Query:
//
//	object, trajectory, interpretation, kind=stop|move, limit
//	from, to            RFC 3339 timestamps (closed window, open sides)
//	ann=key=value       annotation equality (alias: annkey + annvalue)
//	minx,miny,maxx,maxy spatial window over episode geometry
//	nearx,neary,radius  radius (metres) around a point
func parseQuery(r *http.Request) (query.Query, error) {
	var q query.Query
	p := r.URL.Query()
	q.ObjectID = p.Get("object")
	q.TrajectoryID = p.Get("trajectory")
	q.Interpretation = p.Get("interpretation")
	switch kind := p.Get("kind"); kind {
	case "":
	case "stop":
		k := episode.Stop
		q.Kind = &k
	case "move":
		k := episode.Move
		q.Kind = &k
	default:
		return q, fmt.Errorf("unknown kind %q (want stop or move)", kind)
	}
	for name, dst := range map[string]*time.Time{"from": &q.From, "to": &q.To} {
		if v := p.Get(name); v != "" {
			ts, err := time.Parse(time.RFC3339, v)
			if err != nil {
				return q, fmt.Errorf("%s: %w", name, err)
			}
			*dst = ts
		}
	}
	if ann := p.Get("ann"); ann != "" {
		key, value, ok := strings.Cut(ann, "=")
		if !ok || key == "" {
			return q, fmt.Errorf("ann must be key=value, got %q", ann)
		}
		q.AnnKey, q.AnnValue = key, value
	}
	if k := p.Get("annkey"); k != "" {
		q.AnnKey, q.AnnValue = k, p.Get("annvalue")
	}
	coords := map[string]float64{}
	for _, name := range []string{"minx", "miny", "maxx", "maxy", "nearx", "neary", "radius"} {
		if v := p.Get(name); v != "" {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return q, fmt.Errorf("%s: %w", name, err)
			}
			coords[name] = f
		}
	}
	// Spatial parameters come in complete groups: a partial window (or a
	// radius with no centre) is a malformed query, not a query with the
	// missing coordinate read as zero.
	if err := allOrNone(coords, "minx", "miny", "maxx", "maxy"); err != nil {
		return q, err
	}
	if err := allOrNone(coords, "nearx", "neary", "radius"); err != nil {
		return q, err
	}
	if _, ok := coords["minx"]; ok {
		w := geo.NewRect(geo.Pt(coords["minx"], coords["miny"]), geo.Pt(coords["maxx"], coords["maxy"]))
		q.Window = &w
	}
	if _, ok := coords["nearx"]; ok {
		pnt := geo.Pt(coords["nearx"], coords["neary"])
		q.Near = &pnt
		q.Radius = coords["radius"]
	}
	if v := p.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return q, fmt.Errorf("limit: %w", err)
		}
		q.Limit = n
	}
	return q, nil
}

// allOrNone rejects a parameter group that is only partially present.
func allOrNone(coords map[string]float64, names ...string) error {
	present := 0
	for _, n := range names {
		if _, ok := coords[n]; ok {
			present++
		}
	}
	if present != 0 && present != len(names) {
		return fmt.Errorf("parameters %s must be given together", strings.Join(names, ", "))
	}
	return nil
}

// jsonMatch is the wire form of one query result.
type jsonMatch struct {
	Trajectory     string            `json:"trajectory"`
	Object         string            `json:"object"`
	Interpretation string            `json:"interpretation"`
	Index          int               `json:"index"`
	Kind           string            `json:"kind"`
	Place          *jsonPlace        `json:"place,omitempty"`
	TimeIn         time.Time         `json:"time_in"`
	TimeOut        time.Time         `json:"time_out"`
	Annotations    []core.Annotation `json:"annotations,omitempty"`
	Center         *jsonPoint        `json:"center,omitempty"`
}

type jsonPlace struct {
	ID       string `json:"id"`
	Kind     string `json:"kind"`
	Name     string `json:"name,omitempty"`
	Category string `json:"category,omitempty"`
}

type jsonPoint struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

func toJSONMatch(m query.Match) jsonMatch {
	out := jsonMatch{
		Trajectory:     m.Ref.TrajectoryID,
		Object:         m.Ref.ObjectID,
		Interpretation: m.Ref.Interpretation,
		Index:          m.Ref.Index,
		Kind:           m.Tuple.Kind.String(),
		TimeIn:         m.Tuple.TimeIn,
		TimeOut:        m.Tuple.TimeOut,
		Annotations:    m.Tuple.Annotations.All(),
	}
	if pl := m.Tuple.Place; pl != nil {
		out.Place = &jsonPlace{ID: pl.ID, Kind: pl.Kind.String(), Name: pl.Name, Category: pl.Category}
	}
	if ep := m.Tuple.Episode; ep != nil {
		out.Center = &jsonPoint{X: ep.Center.X, Y: ep.Center.Y}
	}
	return out
}

// handleEpisodes answers GET /query/episodes: the tuples matching the
// parsed Query, plus the plan the engine executed (estimates per access
// path, chosen path first in the "plan" string).
func (s *Server) handleEpisodes(w http.ResponseWriter, r *http.Request) {
	q, err := parseQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ms, plan, err := s.engine.ExecuteExplained(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	matches := make([]jsonMatch, len(ms))
	for i, m := range ms {
		matches[i] = toJSONMatch(m)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"count":   len(matches),
		"plan":    plan.String(),
		"path":    plan.Path,
		"matches": matches,
	})
}

// jsonTrajectory is the wire form of one trajectory summary.
type jsonTrajectory struct {
	ID              string    `json:"id"`
	Object          string    `json:"object"`
	Records         int       `json:"records"`
	Stops           int       `json:"stops"`
	Moves           int       `json:"moves"`
	Interpretations []string  `json:"interpretations"`
	Start           time.Time `json:"start,omitzero"`
	End             time.Time `json:"end,omitzero"`
}

// handleTrajectories answers GET /query/trajectories: summaries of the
// stored trajectories, all of them or one object's (?object=).
func (s *Server) handleTrajectories(w http.ResponseWriter, r *http.Request) {
	object := r.URL.Query().Get("object")
	ids := s.st.TrajectoryIDs(object)
	out := make([]jsonTrajectory, 0, len(ids))
	for _, id := range ids {
		jt := jsonTrajectory{ID: id, Object: object, Interpretations: s.st.Interpretations(id)}
		if t, ok := s.st.Trajectory(id); ok {
			jt.Object = t.ObjectID
			jt.Records = len(t.Records)
			if len(t.Records) > 0 {
				jt.Start = t.Records[0].Time
				jt.End = t.Records[len(t.Records)-1].Time
			}
		}
		for _, ep := range s.st.Episodes(id) {
			if ep.Kind == episode.Stop {
				jt.Stops++
			} else {
				jt.Moves++
			}
		}
		out = append(out, jt)
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(out), "trajectories": out})
}

// handleObjects answers GET /query/objects: per-object counts (the Fig. 13
// aggregation), all objects or one (?object=).
func (s *Server) handleObjects(w http.ResponseWriter, r *http.Request) {
	objects := s.st.Objects()
	if filter := r.URL.Query().Get("object"); filter != "" {
		objects = []string{filter}
	}
	counts := analytics.PerUserCounts(s.st, objects)
	writeJSON(w, http.StatusOK, map[string]any{"count": len(counts), "objects": counts})
}

// handleHealthz answers GET /healthz with liveness and the store's running
// totals (all O(shards) reads, safe to poll).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	stops, moves := s.st.EpisodeCounts()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":       "ok",
		"records":      s.st.RecordCount(),
		"trajectories": s.st.TrajectoryCount(),
		"stops":        stops,
		"moves":        moves,
		"structured":   s.st.StructuredCount(),
	})
}

// handleStats answers GET /stats: the analytics-layer aggregates over the
// store's current content plus the engine's index state.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	stops, moves := s.st.EpisodeCounts()
	compression := analytics.Compression(s.st)
	writeJSON(w, http.StatusOK, map[string]any{
		"records":      s.st.RecordCount(),
		"trajectories": s.st.TrajectoryCount(),
		"stops":        stops,
		"moves":        moves,
		"structured":   s.st.StructuredCount(),
		"objects":      len(s.st.Objects()),
		"stop_time_by_category": analytics.AnnotationDistribution(
			s.st, query.DefaultInterpretation, core.AnnPOICategory).Shares(),
		"move_time_by_mode": analytics.ModeDistribution(s.st, query.DefaultInterpretation).Shares(),
		"compression": map[string]any{
			"gps_records":    compression.GPSRecords,
			"region_tuples":  compression.RegionTuples,
			"distinct_cells": compression.DistinctCells,
			"ratio":          compression.Ratio,
		},
		"index": s.engine.IndexStats(),
	})
}
