// Package serve is the HTTP JSON serving layer over the query engine: the
// online face of the reproduction, standing in for the application tier the
// paper puts on top of its PostgreSQL/PostGIS store (§1's "who stopped at a
// restaurant between 12:00 and 14:00 inside this region", served while the
// annotation middleware keeps ingesting).
//
// The handler is deliberately a plain net/http mux so cmd/semitri-serve,
// the examples and the tests all share one implementation:
//
//	GET /healthz             liveness + store counts
//	GET /query/episodes      episode tuples matching a Query (see decodeQuery)
//	GET /query/relational    a relational-language statement (?q=...): typed
//	                         joins, aggregation, the parsed one-liner of
//	                         internal/query/lang, plan echoed back
//	GET /query/trajectories  per-trajectory summaries (?object= filters)
//	GET /query/objects       per-object counts (?object= filters)
//	GET /stats               analytics snapshot (episode/category/mode/
//	                         compression aggregates + index state)
//
// Every endpoint answers JSON; errors answer {"error": ...} with a 4xx/5xx
// status (all parameters decode through one shared decoder, see decode.go).
// Queries run against live data: the engine's indexes are maintained from
// the store's append path, so results reflect ingestion up to the moment
// the request resolved.
package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"semitri/internal/analytics"
	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/query"
	"semitri/internal/query/lang"
	"semitri/internal/store"
)

// Server serves the query engine (and the store behind it) over HTTP.
type Server struct {
	engine *query.Engine
	st     *store.Store
}

// New builds a server over the engine and its store.
func New(engine *query.Engine) *Server {
	return &Server{engine: engine, st: engine.Store()}
}

// Handler returns the route mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /query/episodes", s.handleEpisodes)
	mux.HandleFunc("GET /query/relational", s.handleRelational)
	mux.HandleFunc("GET /query/trajectories", s.handleTrajectories)
	mux.HandleFunc("GET /query/objects", s.handleObjects)
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

// writeJSON writes v as the response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

// writeError writes an {"error": ...} body.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// jsonMatch is the wire form of one query result.
type jsonMatch struct {
	Trajectory     string            `json:"trajectory"`
	Object         string            `json:"object"`
	Interpretation string            `json:"interpretation"`
	Index          int               `json:"index"`
	Kind           string            `json:"kind"`
	Place          *jsonPlace        `json:"place,omitempty"`
	TimeIn         time.Time         `json:"time_in"`
	TimeOut        time.Time         `json:"time_out"`
	Annotations    []core.Annotation `json:"annotations,omitempty"`
	Center         *jsonPoint        `json:"center,omitempty"`
}

type jsonPlace struct {
	ID       string `json:"id"`
	Kind     string `json:"kind"`
	Name     string `json:"name,omitempty"`
	Category string `json:"category,omitempty"`
}

type jsonPoint struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

func toJSONMatch(m query.Match) jsonMatch {
	out := jsonMatch{
		Trajectory:     m.Ref.TrajectoryID,
		Object:         m.Ref.ObjectID,
		Interpretation: m.Ref.Interpretation,
		Index:          m.Ref.Index,
		Kind:           m.Tuple.Kind.String(),
		TimeIn:         m.Tuple.TimeIn,
		TimeOut:        m.Tuple.TimeOut,
		Annotations:    m.Tuple.Annotations.All(),
	}
	if pl := m.Tuple.Place; pl != nil {
		out.Place = &jsonPlace{ID: pl.ID, Kind: pl.Kind.String(), Name: pl.Name, Category: pl.Category}
	}
	if ep := m.Tuple.Episode; ep != nil {
		out.Center = &jsonPoint{X: ep.Center.X, Y: ep.Center.Y}
	}
	return out
}

// handleEpisodes answers GET /query/episodes: the tuples matching the
// parsed Query, plus the plan the engine executed (estimates per access
// path, chosen path first in the "plan" string).
func (s *Server) handleEpisodes(w http.ResponseWriter, r *http.Request) {
	q, err := decodeQuery(newDecoder(r))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ms, plan, err := s.engine.ExecuteExplained(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	matches := make([]jsonMatch, len(ms))
	for i, m := range ms {
		matches[i] = toJSONMatch(m)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"count":   len(matches),
		"plan":    plan.String(),
		"path":    plan.Path,
		"matches": matches,
	})
}

// jsonPair is the wire form of one join result pair.
type jsonPair struct {
	Left  jsonMatch `json:"left"`
	Right jsonMatch `json:"right"`
}

// handleRelational answers GET /query/relational: one statement of the
// relational query language (?q=..., see internal/query/lang for the
// grammar) compiled to the typed Query/Join/Aggregate structs and executed
// by the engine. The response carries the executed plan — for joins, the
// build side the planner picked, both cardinality estimates and the access
// paths the probes ran through — plus matches, pairs or groups depending on
// the statement shape.
func (s *Server) handleRelational(w http.ResponseWriter, r *http.Request) {
	d := newDecoder(r)
	src := d.str("q")
	if err := d.Err(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if src == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing q parameter (a relational query string)"))
		return
	}
	res, err := lang.Run(s.engine, src)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	body := map[string]any{"query": src, "plan": res.Plan}
	switch {
	case res.Groups != nil:
		body["count"] = len(res.Groups)
		body["groups"] = res.Groups
	case res.Pairs != nil:
		pairs := make([]jsonPair, len(res.Pairs))
		for i, p := range res.Pairs {
			pairs[i] = jsonPair{Left: toJSONMatch(p.Left), Right: toJSONMatch(p.Right)}
		}
		body["count"] = len(pairs)
		body["pairs"] = pairs
	default:
		matches := make([]jsonMatch, len(res.Matches))
		for i, m := range res.Matches {
			matches[i] = toJSONMatch(m)
		}
		body["count"] = len(matches)
		body["matches"] = matches
	}
	writeJSON(w, http.StatusOK, body)
}

// jsonTrajectory is the wire form of one trajectory summary.
type jsonTrajectory struct {
	ID              string    `json:"id"`
	Object          string    `json:"object"`
	Records         int       `json:"records"`
	Stops           int       `json:"stops"`
	Moves           int       `json:"moves"`
	Interpretations []string  `json:"interpretations"`
	Start           time.Time `json:"start,omitzero"`
	End             time.Time `json:"end,omitzero"`
}

// handleTrajectories answers GET /query/trajectories: summaries of the
// stored trajectories, all of them or one object's (?object=).
func (s *Server) handleTrajectories(w http.ResponseWriter, r *http.Request) {
	object := newDecoder(r).str("object")
	ids := s.st.TrajectoryIDs(object)
	out := make([]jsonTrajectory, 0, len(ids))
	for _, id := range ids {
		jt := jsonTrajectory{ID: id, Object: object, Interpretations: s.st.Interpretations(id)}
		if t, ok := s.st.Trajectory(id); ok {
			jt.Object = t.ObjectID
			jt.Records = len(t.Records)
			if len(t.Records) > 0 {
				jt.Start = t.Records[0].Time
				jt.End = t.Records[len(t.Records)-1].Time
			}
		}
		for _, ep := range s.st.Episodes(id) {
			if ep.Kind == episode.Stop {
				jt.Stops++
			} else {
				jt.Moves++
			}
		}
		out = append(out, jt)
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(out), "trajectories": out})
}

// handleObjects answers GET /query/objects: per-object counts (the Fig. 13
// aggregation), all objects or one (?object=).
func (s *Server) handleObjects(w http.ResponseWriter, r *http.Request) {
	objects := s.st.Objects()
	if filter := newDecoder(r).str("object"); filter != "" {
		objects = []string{filter}
	}
	counts := analytics.PerUserCounts(s.st, objects)
	writeJSON(w, http.StatusOK, map[string]any{"count": len(counts), "objects": counts})
}

// handleHealthz answers GET /healthz with liveness and the store's running
// totals (all O(shards) reads, safe to poll).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	stops, moves := s.st.EpisodeCounts()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":       "ok",
		"records":      s.st.RecordCount(),
		"trajectories": s.st.TrajectoryCount(),
		"stops":        stops,
		"moves":        moves,
		"structured":   s.st.StructuredCount(),
	})
}

// handleStats answers GET /stats: the analytics-layer aggregates over the
// store's current content plus the engine's index state.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	stops, moves := s.st.EpisodeCounts()
	compression := analytics.Compression(s.st)
	writeJSON(w, http.StatusOK, map[string]any{
		"records":      s.st.RecordCount(),
		"trajectories": s.st.TrajectoryCount(),
		"stops":        stops,
		"moves":        moves,
		"structured":   s.st.StructuredCount(),
		"objects":      len(s.st.Objects()),
		"stop_time_by_category": analytics.AnnotationDistribution(
			s.st, query.DefaultInterpretation, core.AnnPOICategory).Shares(),
		"move_time_by_mode": analytics.ModeDistribution(s.st, query.DefaultInterpretation).Shares(),
		"compression": map[string]any{
			"gps_records":    compression.GPSRecords,
			"region_tuples":  compression.RegionTuples,
			"distinct_cells": compression.DistinctCells,
			"ratio":          compression.Ratio,
		},
		"index": s.engine.IndexStats(),
	})
}
