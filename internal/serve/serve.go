// Package serve is the HTTP JSON serving layer over the query engine: the
// online face of the reproduction, standing in for the application tier the
// paper puts on top of its PostgreSQL/PostGIS store (§1's "who stopped at a
// restaurant between 12:00 and 14:00 inside this region", served while the
// annotation middleware keeps ingesting).
//
// The handler is deliberately a plain net/http mux so cmd/semitri-serve,
// the examples and the tests all share one implementation:
//
//	GET /healthz             liveness + store counts (503 when the WAL or
//	                         checkpointing is degraded, see WithHealth)
//	GET /query/episodes      episode tuples matching a Query (see decodeQuery)
//	GET /query/relational    a relational-language statement (?q=...): typed
//	                         joins, aggregation, the parsed one-liner of
//	                         internal/query/lang, plan echoed back
//	GET /query/trajectories  per-trajectory summaries (?object= filters)
//	GET /query/objects       per-object counts (?object= filters)
//	GET /stats               analytics snapshot (episode/category/mode/
//	                         compression aggregates + index state + metrics)
//	GET /metrics             Prometheus text exposition of the metric registry
//	GET /debug/queries       the N slowest queries served so far (ring buffer)
//	GET /debug/pprof/...     net/http/pprof handlers (with WithProfiling)
//	GET /debug/trace         runtime/trace capture, ?seconds=N (WithProfiling)
//
// Every query endpoint accepts ?trace=1 and then carries a "trace" object in
// the response: the EXPLAIN ANALYZE view of the request — per-stage wall
// times, rows in/out, candidates examined, and (for scans over the segment
// tier) every per-segment prune decision with the footer rule that fired.
//
// Every endpoint answers JSON; errors answer {"error": ...} with a 4xx/5xx
// status (all parameters decode through one shared decoder, see decode.go).
// Queries run against live data: the engine's indexes are maintained from
// the store's append path, so results reflect ingestion up to the moment
// the request resolved.
package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"semitri/internal/analytics"
	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/obs"
	"semitri/internal/query"
	"semitri/internal/query/lang"
	"semitri/internal/store"
)

// slowLogSize is the capacity of the slowest-queries ring buffer behind
// GET /debug/queries.
const slowLogSize = 32

// Server serves the query engine (and the store behind it) over HTTP.
type Server struct {
	engine *query.Engine
	st     *store.Store
	slow   *obs.SlowLog

	health    func() []string
	profiling bool

	live      *query.Live
	history   *obs.History
	heartbeat time.Duration
}

// Option configures optional server behaviour.
type Option func(*Server)

// WithProfiling mounts the net/http/pprof handlers under /debug/pprof/ and
// the runtime-trace capture endpoint at /debug/trace. Off by default:
// profiles expose process internals and belong behind an operator's choice.
func WithProfiling() Option { return func(s *Server) { s.profiling = true } }

// WithHealth attaches a health probe to GET /healthz: fn returns the current
// degradation reasons (a stalled WAL flusher, a failed checkpoint, ...);
// an empty slice means healthy. With reasons present the endpoint answers
// 503 with {"status": "degraded", "reasons": [...]}. Every evaluation is
// mirrored into the semitri_health_degraded gauge and the per-reason-class
// counters, so scrapers alert without parsing the JSON body.
func WithHealth(fn func() []string) Option { return func(s *Server) { s.health = fn } }

// WithLive mounts GET /subscribe: standing-query subscriptions over SSE,
// dispatched by l (see internal/query.Live).
func WithLive(l *query.Live) Option { return func(s *Server) { s.live = l } }

// WithHistory mounts GET /metrics/history (ring time-series per metric) and
// GET /metrics/stream (sampled ticks over SSE), backed by h. The caller owns
// h's sampler lifecycle (Start/Close).
func WithHistory(h *obs.History) Option { return func(s *Server) { s.history = h } }

// WithSSEHeartbeat overrides the SSE heartbeat cadence (default
// DefaultSSEHeartbeat) — the interval at which idle /subscribe and
// /metrics/stream connections emit a heartbeat event echoing the
// subscription's drop/lag counters.
func WithSSEHeartbeat(d time.Duration) Option {
	return func(s *Server) {
		if d > 0 {
			s.heartbeat = d
		}
	}
}

// New builds a server over the engine and its store.
func New(engine *query.Engine, opts ...Option) *Server {
	s := &Server{
		engine:    engine,
		st:        engine.Store(),
		slow:      obs.NewSlowLog(slowLogSize),
		heartbeat: DefaultSSEHeartbeat,
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Handler returns the route mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /query/episodes", s.handleEpisodes)
	mux.HandleFunc("GET /query/relational", s.handleRelational)
	mux.HandleFunc("GET /query/trajectories", s.handleTrajectories)
	mux.HandleFunc("GET /query/objects", s.handleObjects)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /metrics/history", s.handleMetricsHistory)
	mux.HandleFunc("GET /metrics/stream", s.handleMetricsStream)
	mux.HandleFunc("GET /subscribe", s.handleSubscribe)
	mux.HandleFunc("GET /debug/queries", s.handleSlowQueries)
	mux.HandleFunc("GET /debug/dash", s.handleDash)
	if s.profiling {
		s.registerProfiling(mux)
	}
	return mux
}

// evalHealth runs the health probe (nil-safe) and mirrors the outcome into
// the metric catalogue: the degraded gauge tracks the current state, the
// per-reason-class counters count degraded evaluations. Called from every
// endpoint that reports health, so scrapes and probes stay consistent.
func (s *Server) evalHealth() []string {
	if s.health == nil {
		return nil
	}
	reasons := s.health()
	if len(reasons) == 0 {
		obs.HealthDegraded.Set(0)
		return nil
	}
	obs.HealthDegraded.Set(1)
	for _, reason := range reasons {
		obs.HealthReasonCounter(reason).Inc()
	}
	return reasons
}

// recordSlow offers one served query to the slow-query ring buffer (with its
// trace attached when the request asked for one).
func (s *Server) recordSlow(source string, r *http.Request, elapsed time.Duration, tr *query.Trace) {
	q := obs.SlowQuery{At: time.Now(), Source: source, Query: r.URL.RawQuery, Ns: elapsed.Nanoseconds()}
	if tr != nil {
		q.Trace = tr
	}
	s.slow.Record(q)
}

// writeJSON writes v as the response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

// writeError writes an {"error": ...} body.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// jsonMatch is the wire form of one query result.
type jsonMatch struct {
	Trajectory     string            `json:"trajectory"`
	Object         string            `json:"object"`
	Interpretation string            `json:"interpretation"`
	Index          int               `json:"index"`
	Kind           string            `json:"kind"`
	Place          *jsonPlace        `json:"place,omitempty"`
	TimeIn         time.Time         `json:"time_in"`
	TimeOut        time.Time         `json:"time_out"`
	Annotations    []core.Annotation `json:"annotations,omitempty"`
	Center         *jsonPoint        `json:"center,omitempty"`
}

type jsonPlace struct {
	ID       string `json:"id"`
	Kind     string `json:"kind"`
	Name     string `json:"name,omitempty"`
	Category string `json:"category,omitempty"`
}

type jsonPoint struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

func toJSONMatch(m query.Match) jsonMatch {
	out := jsonMatch{
		Trajectory:     m.Ref.TrajectoryID,
		Object:         m.Ref.ObjectID,
		Interpretation: m.Ref.Interpretation,
		Index:          m.Ref.Index,
		Kind:           m.Tuple.Kind.String(),
		TimeIn:         m.Tuple.TimeIn,
		TimeOut:        m.Tuple.TimeOut,
		Annotations:    m.Tuple.Annotations.All(),
	}
	if pl := m.Tuple.Place; pl != nil {
		out.Place = &jsonPlace{ID: pl.ID, Kind: pl.Kind.String(), Name: pl.Name, Category: pl.Category}
	}
	if ep := m.Tuple.Episode; ep != nil {
		out.Center = &jsonPoint{X: ep.Center.X, Y: ep.Center.Y}
	}
	return out
}

// handleEpisodes answers GET /query/episodes: the tuples matching the
// parsed Query, plus the plan the engine executed (estimates per access
// path, chosen path first in the "plan" string). With ?trace=1 the response
// additionally carries the per-stage execution trace.
func (s *Server) handleEpisodes(w http.ResponseWriter, r *http.Request) {
	d := newDecoder(r)
	traced := d.boolVal("trace")
	q, err := decodeQuery(d)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var (
		ms   []query.Match
		plan query.Plan
		tr   *query.Trace
	)
	start := time.Now()
	if traced {
		ms, plan, tr, err = s.engine.ExecuteTraced(q)
	} else {
		ms, plan, err = s.engine.ExecuteExplained(q)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.recordSlow("/query/episodes", r, time.Since(start), tr)
	matches := make([]jsonMatch, len(ms))
	for i, m := range ms {
		matches[i] = toJSONMatch(m)
	}
	body := map[string]any{
		"count":   len(matches),
		"plan":    plan.String(),
		"path":    plan.Path,
		"matches": matches,
	}
	if tr != nil {
		body["trace"] = tr
	}
	writeJSON(w, http.StatusOK, body)
}

// jsonPair is the wire form of one join result pair.
type jsonPair struct {
	Left  jsonMatch `json:"left"`
	Right jsonMatch `json:"right"`
}

// handleRelational answers GET /query/relational: one statement of the
// relational query language (?q=..., see internal/query/lang for the
// grammar) compiled to the typed Query/Join/Aggregate structs and executed
// by the engine. The response carries the executed plan — for joins, the
// build side the planner picked, both cardinality estimates and the access
// paths the probes ran through — plus matches, pairs or groups depending on
// the statement shape.
func (s *Server) handleRelational(w http.ResponseWriter, r *http.Request) {
	d := newDecoder(r)
	src := d.str("q")
	traced := d.boolVal("trace")
	if err := d.Err(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if src == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing q parameter (a relational query string)"))
		return
	}
	var (
		res lang.Result
		tr  *query.Trace
		err error
	)
	start := time.Now()
	if traced {
		res, tr, err = lang.RunTraced(s.engine, src)
	} else {
		res, err = lang.Run(s.engine, src)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.recordSlow("/query/relational", r, time.Since(start), tr)
	body := map[string]any{"query": src, "plan": res.Plan}
	if tr != nil {
		body["trace"] = tr
	}
	switch {
	case res.Groups != nil:
		body["count"] = len(res.Groups)
		body["groups"] = res.Groups
	case res.Pairs != nil:
		pairs := make([]jsonPair, len(res.Pairs))
		for i, p := range res.Pairs {
			pairs[i] = jsonPair{Left: toJSONMatch(p.Left), Right: toJSONMatch(p.Right)}
		}
		body["count"] = len(pairs)
		body["pairs"] = pairs
	default:
		matches := make([]jsonMatch, len(res.Matches))
		for i, m := range res.Matches {
			matches[i] = toJSONMatch(m)
		}
		body["count"] = len(matches)
		body["matches"] = matches
	}
	writeJSON(w, http.StatusOK, body)
}

// jsonTrajectory is the wire form of one trajectory summary.
type jsonTrajectory struct {
	ID              string    `json:"id"`
	Object          string    `json:"object"`
	Records         int       `json:"records"`
	Stops           int       `json:"stops"`
	Moves           int       `json:"moves"`
	Interpretations []string  `json:"interpretations"`
	Start           time.Time `json:"start,omitzero"`
	End             time.Time `json:"end,omitzero"`
}

// handleTrajectories answers GET /query/trajectories: summaries of the
// stored trajectories, all of them or one object's (?object=).
func (s *Server) handleTrajectories(w http.ResponseWriter, r *http.Request) {
	d := newDecoder(r)
	object := d.str("object")
	start := time.Now()
	ids := s.st.TrajectoryIDs(object)
	out := make([]jsonTrajectory, 0, len(ids))
	for _, id := range ids {
		jt := jsonTrajectory{ID: id, Object: object, Interpretations: s.st.Interpretations(id)}
		if t, ok := s.st.Trajectory(id); ok {
			jt.Object = t.ObjectID
			jt.Records = len(t.Records)
			if len(t.Records) > 0 {
				jt.Start = t.Records[0].Time
				jt.End = t.Records[len(t.Records)-1].Time
			}
		}
		for _, ep := range s.st.Episodes(id) {
			if ep.Kind == episode.Stop {
				jt.Stops++
			} else {
				jt.Moves++
			}
		}
		out = append(out, jt)
	}
	tr := summaryTrace(d, "trajectory-summaries", len(out), time.Since(start))
	s.recordSlow("/query/trajectories", r, time.Since(start), tr)
	body := map[string]any{"count": len(out), "trajectories": out}
	if tr != nil {
		body["trace"] = tr
	}
	writeJSON(w, http.StatusOK, body)
}

// handleObjects answers GET /query/objects: per-object counts (the Fig. 13
// aggregation), all objects or one (?object=).
func (s *Server) handleObjects(w http.ResponseWriter, r *http.Request) {
	d := newDecoder(r)
	start := time.Now()
	objects := s.st.Objects()
	if filter := d.str("object"); filter != "" {
		objects = []string{filter}
	}
	counts := analytics.PerUserCounts(s.st, objects)
	tr := summaryTrace(d, "object-counts", len(counts), time.Since(start))
	s.recordSlow("/query/objects", r, time.Since(start), tr)
	body := map[string]any{"count": len(counts), "objects": counts}
	if tr != nil {
		body["trace"] = tr
	}
	writeJSON(w, http.StatusOK, body)
}

// summaryTrace builds the single-stage trace of a summary endpoint (the
// trajectory/object listings run one store walk, not an engine plan) when
// the request asked for one.
func summaryTrace(d *decoder, plan string, rows int, elapsed time.Duration) *query.Trace {
	if !d.boolVal("trace") {
		return nil
	}
	ns := elapsed.Nanoseconds()
	return &query.Trace{
		Kind: "summary", Plan: plan, Returned: rows, ExecNs: ns, TotalNs: ns,
		Stages: []query.TraceStage{{Name: "collect", Ns: ns, Rows: rows}},
	}
}

// handleHealthz answers GET /healthz with liveness and the store's running
// totals (all O(shards) reads, safe to poll). With a WithHealth probe
// attached, degradations — a stalled WAL flusher, a failed checkpoint —
// downgrade the answer to 503 with the reasons listed.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	stops, moves := s.st.EpisodeCounts()
	body := map[string]any{
		"status":       "ok",
		"records":      s.st.RecordCount(),
		"trajectories": s.st.TrajectoryCount(),
		"stops":        stops,
		"moves":        moves,
		"structured":   s.st.StructuredCount(),
	}
	status := http.StatusOK
	if reasons := s.evalHealth(); len(reasons) > 0 {
		status = http.StatusServiceUnavailable
		body["status"] = "degraded"
		body["reasons"] = reasons
	}
	writeJSON(w, status, body)
}

// handleStats answers GET /stats: the analytics-layer aggregates over the
// store's current content plus the engine's index state.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	stops, moves := s.st.EpisodeCounts()
	compression := analytics.Compression(s.st)
	writeJSON(w, http.StatusOK, map[string]any{
		"records":      s.st.RecordCount(),
		"trajectories": s.st.TrajectoryCount(),
		"stops":        stops,
		"moves":        moves,
		"structured":   s.st.StructuredCount(),
		"objects":      len(s.st.Objects()),
		"stop_time_by_category": analytics.AnnotationDistribution(
			s.st, query.DefaultInterpretation, core.AnnPOICategory).Shares(),
		"move_time_by_mode": analytics.ModeDistribution(s.st, query.DefaultInterpretation).Shares(),
		"compression": map[string]any{
			"gps_records":    compression.GPSRecords,
			"region_tuples":  compression.RegionTuples,
			"distinct_cells": compression.DistinctCells,
			"ratio":          compression.Ratio,
		},
		"index":   s.engine.IndexStats(),
		"metrics": obs.Default().Snapshot(),
	})
}
