package serve

import (
	"net/http"
	"net/http/pprof"
	rtrace "runtime/trace"
	"sync/atomic"
	"time"

	"semitri/internal/obs"
)

// handleMetrics answers GET /metrics with the Prometheus text exposition of
// the process-wide metric registry (the catalogue in internal/obs plus the
// Go runtime gauges).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Refresh the health gauge so a scrape never reads state staler than the
	// scrape itself (nobody has to hit /healthz first).
	s.evalHealth()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.Default().WritePrometheus(w)
}

// handleSlowQueries answers GET /debug/queries: the slowest queries served
// so far, slowest first, each with its source endpoint, raw query string,
// wall time and (when the request ran with ?trace=1) its execution trace.
func (s *Server) handleSlowQueries(w http.ResponseWriter, r *http.Request) {
	qs := s.slow.Slowest()
	writeJSON(w, http.StatusOK, map[string]any{"count": len(qs), "queries": qs})
}

// registerProfiling mounts the pprof handlers and the runtime-trace capture
// endpoint. Only called with WithProfiling: profiles and execution traces
// expose process internals, so they stay off unless the operator opts in.
func (s *Server) registerProfiling(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /debug/trace", s.handleRuntimeTrace)
}

// runtimeTraceActive serialises runtime/trace captures: the runtime supports
// one active trace per process, so a second request answers 409 instead of
// failing half-way into the response body.
var runtimeTraceActive atomic.Bool

// handleRuntimeTrace answers GET /debug/trace?seconds=N: an N-second
// runtime/trace capture of the live process (scheduler, GC, syscalls — the
// view `go tool trace` renders), streamed as the response body.
func (s *Server) handleRuntimeTrace(w http.ResponseWriter, r *http.Request) {
	d := newDecoder(r)
	seconds := d.intVal("seconds")
	if err := d.Err(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if seconds <= 0 {
		seconds = 1
	}
	if seconds > 60 {
		seconds = 60
	}
	if !runtimeTraceActive.CompareAndSwap(false, true) {
		writeJSON(w, http.StatusConflict, map[string]string{"error": "a runtime trace is already being captured"})
		return
	}
	defer runtimeTraceActive.Store(false)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="trace"`)
	if err := rtrace.Start(w); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	defer rtrace.Stop()
	select {
	case <-time.After(time.Duration(seconds) * time.Second):
	case <-r.Context().Done():
	}
}
