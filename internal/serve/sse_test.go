package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/geo"
	"semitri/internal/obs"
	"semitri/internal/query"
	"semitri/internal/store"
)

// newLiveServer wires a store + engine + live dispatcher + metrics history
// behind the HTTP handler, the way cmd/semitri-serve does when subscriptions
// are on. The heartbeat is cranked down so lifecycle tests finish fast.
func newLiveServer(t *testing.T) (*httptest.Server, *store.Store, *query.Live) {
	t.Helper()
	st := store.New()
	engine := query.NewEngine(st)
	live := query.NewLive(st, 1<<12)
	t.Cleanup(live.Close)
	st.AttachIndex(store.Tee(engine, live.Tap()))
	history := obs.NewHistory(obs.Default(), 64, time.Minute) // sampled on demand, no ticker
	t.Cleanup(history.Close)
	srv := httptest.NewServer(New(engine,
		WithLive(live), WithHistory(history), WithSSEHeartbeat(25*time.Millisecond)).Handler())
	t.Cleanup(srv.Close)
	return srv, st, live
}

func liveTuple(at time.Time, category string) *core.EpisodeTuple {
	center := geo.Pt(100, 100)
	ep := &episode.Episode{Kind: episode.Stop, Start: at, End: at.Add(time.Hour),
		Center: center, Bounds: geo.RectAround(center, 30)}
	tp := &core.EpisodeTuple{Kind: episode.Stop, TimeIn: at, TimeOut: at.Add(time.Hour), Episode: ep}
	tp.Annotations.Add(core.Annotation{Key: core.AnnPOICategory, Value: category, Confidence: 0.9, Source: "test"})
	return tp
}

// sseFrame is one parsed server-sent event.
type sseFrame struct {
	Event string
	Data  map[string]any
}

// sseReader incrementally parses an SSE response body.
type sseReader struct {
	t  *testing.T
	sc *bufio.Scanner
}

func newSSEReader(t *testing.T, body io.Reader) *sseReader {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	return &sseReader{t: t, sc: sc}
}

// next reads frames until one arrives or the stream ends (ok=false).
func (r *sseReader) next() (sseFrame, bool) {
	var f sseFrame
	for r.sc.Scan() {
		line := r.sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			f.Event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &f.Data); err != nil {
				r.t.Fatalf("bad SSE data line %q: %v", line, err)
			}
		case line == "":
			if f.Event != "" {
				return f, true
			}
		}
	}
	return sseFrame{}, false
}

// openSSE starts a cancellable SSE request and fails the test on non-200.
func openSSE(t *testing.T, url string) (*sseReader, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		cancel()
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		cancel()
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	return newSSEReader(t, resp.Body), cancel
}

func TestSubscribeRejectsMalformedQuery(t *testing.T) {
	srv, _, _ := newLiveServer(t)
	for _, path := range []string{
		"/subscribe", // missing q entirely
		"/subscribe?q=" + escape("bogus grammar here"),
		"/subscribe?q=" + escape("stops as s join moves as m on same_object"), // joins can't stand
		"/subscribe?q=" + escape("stops group by ann.poi_category count"),     // aggregates can't stand
		"/subscribe?q=" + escape("stops limit 5"),                             // limit is meaningless live
		"/subscribe?q=stops&buffer=abc",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s: status %d, want 400 (body %s)", path, resp.StatusCode, body)
		}
		var e map[string]string
		if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
			t.Fatalf("GET %s: body %s, want {\"error\": ...}", path, body)
		}
	}
}

func escape(q string) string { return strings.ReplaceAll(q, " ", "%20") }

func TestSubscribeStreamsMatches(t *testing.T) {
	srv, st, live := newLiveServer(t)
	r, cancel := openSSE(t, srv.URL+"/subscribe?q="+escape("stops where ann.poi_category = park"))
	defer cancel()

	f, ok := r.next()
	if !ok || f.Event != "subscribed" {
		t.Fatalf("first frame = %+v ok=%v, want subscribed", f, ok)
	}
	// The subscription is registered before the stream starts, so anything
	// ingested after the subscribed frame must be evaluated.
	at := time.Date(2024, 5, 1, 12, 0, 0, 0, time.UTC)
	if err := st.AppendStructuredTuples("u1-T0", "u1", query.DefaultInterpretation,
		liveTuple(at, "shop"), liveTuple(at.Add(2*time.Hour), "park")); err != nil {
		t.Fatal(err)
	}
	live.Sync()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case <-deadline:
			t.Fatal("no match frame within 5s")
		default:
		}
		f, ok = r.next()
		if !ok {
			t.Fatal("stream ended before a match arrived")
		}
		if f.Event == "heartbeat" {
			continue
		}
		break
	}
	if f.Event != "match" {
		t.Fatalf("frame = %+v, want match", f)
	}
	m, _ := f.Data["match"].(map[string]any)
	if m == nil || m["trajectory"] != "u1-T0" || m["index"] != float64(1) {
		t.Fatalf("match payload = %v, want trajectory u1-T0 index 1", f.Data)
	}
}

func TestSubscribeDisconnectFreesSubscription(t *testing.T) {
	srv, _, live := newLiveServer(t)
	base := live.BusStats().Subscribers // the dispatcher's own central sub
	_, cancel := openSSE(t, srv.URL+"/subscribe?q=stops")
	waitFor(t, "subscription registered", func() bool {
		return live.StandingCount() == 1 && live.BusStats().Subscribers == base
	})
	cancel() // client disconnects mid-stream
	waitFor(t, "subscription released", func() bool {
		return live.StandingCount() == 0
	})
}

// TestSubscribeSlowConsumerDropsOldest pushes a burst into a 2-slot delivery
// ring while the client reads nothing. Each notification is padded so the
// burst dwarfs any socket buffering: the handler's write must block, the
// dispatcher keeps publishing without ever blocking ingestion, and the ring
// sheds oldest-first. The heartbeat accounting must then add up exactly:
// delivered + dropped == everything the subscription received.
func TestSubscribeSlowConsumerDropsOldest(t *testing.T) {
	srv, st, live := newLiveServer(t)
	r, cancel := openSSE(t, srv.URL+"/subscribe?q="+escape("stops where ann.poi_category = park")+"&buffer=2")
	defer cancel()
	if f, ok := r.next(); !ok || f.Event != "subscribed" {
		t.Fatalf("first frame = %+v, want subscribed", f)
	}

	// ~24 MB of frames against a 2-slot ring and an unread TCP connection:
	// far past what loopback buffering can absorb, so drops are certain.
	at := time.Date(2024, 5, 1, 0, 0, 0, 0, time.UTC)
	filler := core.Annotation{Key: "filler", Value: strings.Repeat("x", 24<<10), Confidence: 1, Source: "test"}
	const burst = 1024
	for i := 0; i < burst; i++ {
		tp := liveTuple(at, "park")
		tp.Annotations.Add(filler)
		if err := st.AppendStructuredTuples(fmt.Sprintf("u1-T%d", i), "u1",
			query.DefaultInterpretation, tp); err != nil {
			t.Fatal(err)
		}
	}
	live.Sync()
	if live.EvalDrops() != 0 {
		t.Fatalf("central ring dropped (%d); sized to hold the whole burst", live.EvalDrops())
	}

	// Now drain the stream; heartbeats carry the subscription's accounting.
	// Frames are FIFO, so by the time the client reads a heartbeat it has
	// read every match written before it. The publisher is quiescent (Sync
	// above), so the accounting converges: keep reading until a heartbeat
	// shows delivered + drops covering the whole burst — an earlier
	// heartbeat may have been written mid-burst with a momentarily drained
	// ring, so lag alone is not a completion signal.
	var matches, drops, received int64
	deadline := time.Now().Add(20 * time.Second)
	for received != burst && time.Now().Before(deadline) {
		f, ok := r.next()
		if !ok {
			t.Fatal("stream ended early")
		}
		if f.Event == "match" {
			matches++
			continue
		}
		if f.Event != "heartbeat" {
			t.Fatalf("unexpected frame %+v", f)
		}
		delivered := int64(f.Data["delivered"].(float64))
		drops = int64(f.Data["drops"].(float64))
		if delivered != matches {
			t.Fatalf("heartbeat says %d delivered, client read %d (frames are FIFO)", delivered, matches)
		}
		received = delivered + drops
	}
	if received != burst {
		t.Fatalf("delivered+drops = %d, want the full burst %d", received, burst)
	}
	if drops == 0 {
		t.Fatalf("no drops after a %d-event burst into a 2-slot ring", burst)
	}
	if matches == 0 {
		t.Fatal("drop-oldest shed everything; the newest notifications should survive")
	}
}

func TestMetricsStreamTicksAndHistory(t *testing.T) {
	srv, _, _ := newLiveServer(t)
	r, cancel := openSSE(t, srv.URL+"/metrics/stream")
	defer cancel()
	f, ok := r.next()
	if !ok || f.Event != "tick" {
		t.Fatalf("first frame = %+v, want tick", f)
	}
	values, _ := f.Data["values"].(map[string]any)
	if len(values) == 0 {
		t.Fatal("tick carried no metric values")
	}
	if _, found := values["semitri_live_standing_queries"]; !found {
		t.Fatalf("tick missing semitri_live_standing_queries: %v", keys(values))
	}
	cancel()

	// The connect-time SampleNow seeded history: the listing and per-name
	// windows must answer.
	listing := getJSON(t, srv, "/metrics/history", http.StatusOK)
	names, _ := listing["names"].([]any)
	if len(names) == 0 {
		t.Fatal("history listing is empty")
	}
	one := getJSON(t, srv, "/metrics/history?name=semitri_live_standing_queries&window=1h", http.StatusOK)
	if int(one["count"].(float64)) < 1 {
		t.Fatalf("history window empty: %v", one)
	}
	getJSON(t, srv, "/metrics/history?name=no_such_metric", http.StatusNotFound)
	getJSON(t, srv, "/metrics/history?window=bogus", http.StatusBadRequest)
}

func TestSSEUnavailableWithoutLive(t *testing.T) {
	srv, _ := newTestServer(t) // no WithLive / WithHistory
	for _, path := range []string{"/subscribe?q=stops", "/metrics/stream", "/metrics/history"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("GET %s without live wiring: status %d, want 503", path, resp.StatusCode)
		}
	}
}

func TestDashServesEmbeddedPage(t *testing.T) {
	srv, _, _ := newLiveServer(t)
	resp, err := http.Get(srv.URL + "/debug/dash")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("Content-Type = %q", ct)
	}
	page := string(body)
	for _, want := range []string{"<!DOCTYPE html>", "/metrics/stream", "/healthz", "/debug/queries", "EventSource"} {
		if !strings.Contains(page, want) {
			t.Fatalf("dashboard page missing %q", want)
		}
	}
	// Zero-dependency: no external scripts, stylesheets or fonts.
	for _, banned := range []string{"src=\"http", "href=\"http", "@import", "cdn."} {
		if strings.Contains(page, banned) {
			t.Fatalf("dashboard page references an external asset (%q)", banned)
		}
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func keys(m map[string]any) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
