// Package line implements SeMiTri's Semantic Line Annotation Layer (§4.2,
// Algorithm 2): a global map-matching algorithm based on the point–segment
// distance (Eq. 1), the normalised localScore (Eq. 2) and the
// kernel-weighted globalScore over a context window (Eqs. 3–4), followed by
// transportation-mode inference (walking, bicycle, bus, metro) from the
// velocity/acceleration profile of each matched run of segments and the
// class of the underlying road.
//
// The paper parameterises the context window by a global view radius R and
// a kernel width σ expressed as a multiple of R (Fig. 10 sweeps R ∈ 1..5 and
// σ ∈ {0.5R, 1R, 1.5R, 2R}). Here R counts neighbouring GPS points on each
// side of the matched point, and σ converts to metres through the mean
// point spacing of the episode, which preserves the behaviour of the
// original formulation on both high-rate and low-rate trajectories.
//
// A per-point nearest-segment matcher (the classic geometric baseline
// criticised in §4.2) is included for the ablation experiments.
package line

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/geo"
	"semitri/internal/gps"
	"semitri/internal/roadnet"
	"semitri/internal/spatial"
)

// Mode is an inferred transportation mode.
type Mode string

// The transportation modes considered in the paper's experiments (§4.2).
const (
	ModeWalk    Mode = "walk"
	ModeBicycle Mode = "bicycle"
	ModeBus     Mode = "bus"
	ModeMetro   Mode = "metro"
	ModeCar     Mode = "car"
)

// Config holds the tunable parameters of the global map-matching algorithm.
type Config struct {
	// CandidateRadius (metres) bounds the candidate road segments considered
	// for each GPS point (candidateSegs(Q) in Alg. 2, served by the R*-tree).
	CandidateRadius float64
	// GlobalRadius R is the number of neighbouring points on each side of Q
	// included in the context window (window size 2R).
	GlobalRadius int
	// SigmaFactor expresses the kernel width σ as a multiple of R; the
	// effective bandwidth in metres is SigmaFactor * R * meanSpacing.
	SigmaFactor float64
	// VehicleMode, when non-empty, overrides mode inference (the paper notes
	// that the transportation mode of vehicle trajectories is trivially the
	// vehicle type).
	VehicleMode Mode
}

// DefaultConfig returns the parameters found best in the sensitivity
// analysis of Fig. 10: R = 2, σ = 0.5R, with a 60 m candidate radius.
func DefaultConfig() Config {
	return Config{CandidateRadius: 60, GlobalRadius: 2, SigmaFactor: 0.5}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.CandidateRadius <= 0 {
		return errors.New("line: CandidateRadius must be positive")
	}
	if c.GlobalRadius < 0 {
		return errors.New("line: GlobalRadius must be non-negative")
	}
	if c.SigmaFactor <= 0 {
		return errors.New("line: SigmaFactor must be positive")
	}
	return nil
}

// Annotator matches move episodes against a road network. All spatial
// queries — candidate-segment selection and the nearest-segment fallback —
// go through the spatial.Index captured from the network at construction.
// It is safe for concurrent use once constructed (the network is
// read-only); Cursors are per-goroutine.
type Annotator struct {
	net *roadnet.Network
	idx spatial.Index
	cfg Config
}

// NewAnnotator returns a line annotator over the given network. The network
// must not be mutated afterwards (its bulk-loaded index is captured here).
func NewAnnotator(net *roadnet.Network, cfg Config) (*Annotator, error) {
	if net == nil {
		return nil, errors.New("line: nil network")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Annotator{net: net, idx: net.SpatialIndex(), cfg: cfg}, nil
}

// Config returns the annotator's configuration.
func (a *Annotator) Config() Config { return a.cfg }

// Cursor is the per-object locality cache of the line layer: the last
// candidate-segment query, inflated so nearby GPS records are answered by a
// slice filter instead of an index descent. Not safe for concurrent use;
// keep one per moving object (or per trajectory in the batch path).
type Cursor struct {
	cand *spatial.Cursor
}

// NewCursor returns an empty locality cursor for the annotator.
func (a *Annotator) NewCursor() *Cursor {
	return &Cursor{cand: spatial.NewCursorSorted(a.idx, func(x, y spatial.Item) bool {
		return x.Value.(*roadnet.Segment).ID < y.Value.(*roadnet.Segment).ID
	})}
}

// Stats returns the candidate-cache hit/miss counters.
func (c *Cursor) Stats() (hits, misses uint64) { return c.cand.Stats() }

// Candidates returns the segments whose bounding box lies within radius of
// p, ordered by segment id — candidateSegs(Q) of Alg. 2, answered through
// the spatial.Index interface and, when cur is non-nil, its locality cache.
// With a cursor the returned slice is only valid until the next call.
func (a *Annotator) Candidates(p geo.Point, radius float64, cur *Cursor) []*roadnet.Segment {
	var items []spatial.Item
	if cur != nil {
		items = cur.cand.WithinDistance(p, radius) // already sorted by id
	} else {
		items = spatial.WithinDistance(a.idx, p, radius)
	}
	out := make([]*roadnet.Segment, 0, len(items))
	for _, it := range items {
		out = append(out, it.Value.(*roadnet.Segment))
	}
	if cur == nil {
		sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	}
	return out
}

// MatchPoints runs the global map-matching algorithm over a sequence of GPS
// positions and returns, for each point, the id of the matched road segment
// (-1 when no candidate lies within the candidate radius and no fallback is
// available). This is steps 1–5 of Algorithm 2.
func (a *Annotator) MatchPoints(points []geo.Point) []int {
	return a.MatchPointsCursor(points, nil)
}

// MatchPointsCursor is MatchPoints with a per-object locality cursor; cur
// may be nil. Cached and uncached results are identical.
func (a *Annotator) MatchPointsCursor(points []geo.Point, cur *Cursor) []int {
	n := len(points)
	matched := make([]int, n)
	if n == 0 {
		return matched
	}
	// Candidate sets and local scores per point.
	candidates := make([][]candidate, n)
	for i, p := range points {
		segs := a.Candidates(p, a.cfg.CandidateRadius, cur)
		if len(segs) == 0 {
			// When no candidate lies within the radius, the exact nearest
			// segment keeps the annotation total even for sparse data
			// (heterogeneous quality); the bulk-loaded index answers it with
			// no scan fallback.
			if s, _, ok := roadnet.NearestSegmentIn(a.idx, p); ok {
				segs = []*roadnet.Segment{s}
			}
		}
		if len(segs) == 0 {
			candidates[i] = nil
			continue
		}
		dmin := math.Inf(1)
		dists := make([]float64, len(segs))
		for j, s := range segs {
			d := s.Geom.DistanceToPoint(p)
			dists[j] = d
			if d < dmin {
				dmin = d
			}
		}
		cs := make([]candidate, len(segs))
		for j, s := range segs {
			// Eq. 2: localScore = dmin / d, with the convention that a point
			// lying exactly on its closest segment scores 1 for it.
			var score float64
			switch {
			case dists[j] == 0:
				score = 1
			case dmin == 0:
				score = 0
			default:
				score = dmin / dists[j]
			}
			cs[j] = candidate{seg: s, local: score}
		}
		candidates[i] = cs
	}
	// Mean spacing for converting the kernel width to metres.
	meanSpacing := 1.0
	if n > 1 {
		var total float64
		for i := 1; i < n; i++ {
			total += points[i].DistanceTo(points[i-1])
		}
		meanSpacing = total / float64(n-1)
		if meanSpacing <= 0 {
			meanSpacing = 1
		}
	}
	sigma := a.cfg.SigmaFactor * float64(maxInt(a.cfg.GlobalRadius, 1)) * meanSpacing
	radiusMeters := float64(maxInt(a.cfg.GlobalRadius, 1)) * meanSpacing * 1.5
	// Global scores (Eqs. 3-4).
	for i := range points {
		if len(candidates[i]) == 0 {
			matched[i] = -1
			continue
		}
		lo := maxInt(0, i-a.cfg.GlobalRadius)
		hi := minInt(n-1, i+a.cfg.GlobalRadius)
		bestScore := math.Inf(-1)
		bestID := -1
		for _, c := range candidates[i] {
			var num, den float64
			for k := lo; k <= hi; k++ {
				d := points[i].DistanceTo(points[k])
				var w float64
				if k == i {
					w = 1
				} else if d < radiusMeters {
					w = math.Exp(-d * d / (2 * sigma * sigma))
				} else {
					continue
				}
				num += w * localScoreFor(candidates[k], c.seg.ID)
				den += w
			}
			if den == 0 {
				continue
			}
			score := num / den
			if score > bestScore {
				bestScore = score
				bestID = c.seg.ID
			}
		}
		matched[i] = bestID
	}
	return matched
}

// candidate couples a candidate road segment with its localScore (Eq. 2)
// for one GPS point.
type candidate struct {
	seg   *roadnet.Segment
	local float64
}

func localScoreFor(cs []candidate, segID int) float64 {
	for _, c := range cs {
		if c.seg.ID == segID {
			return c.local
		}
	}
	return 0
}

// MatchPointsNearest is the geometric per-point baseline: each point is
// matched independently to its nearest segment by the Eq. 1 distance. It is
// the comparison target of ablation A1.
func (a *Annotator) MatchPointsNearest(points []geo.Point) []int {
	out := make([]int, len(points))
	for i, p := range points {
		if s, _, ok := roadnet.NearestSegmentIn(a.idx, p); ok {
			out[i] = s.ID
		} else {
			out[i] = -1
		}
	}
	return out
}

// InferMode derives the transportation mode of a run of points matched to a
// segment, from the road class and the observed speed profile (step 6 of
// Algorithm 2). The thresholds follow the speed ranges of the modes used in
// the paper's people-trajectory experiments.
func InferMode(class roadnet.Class, avgSpeed, maxSpeed float64) Mode {
	if class == roadnet.MetroRail {
		return ModeMetro
	}
	switch {
	case avgSpeed < 2.2 && maxSpeed < 4:
		return ModeWalk
	case avgSpeed < 6.5 && class != roadnet.Highway:
		return ModeBicycle
	case class == roadnet.Highway || avgSpeed >= 18:
		return ModeCar
	default:
		return ModeBus
	}
}

// SegmentRun is one maximal run of consecutive GPS records matched to the
// same road segment, with its speed profile and inferred mode.
type SegmentRun struct {
	SegmentID int
	Class     roadnet.Class
	Name      string
	StartIdx  int
	EndIdx    int
	AvgSpeed  float64
	MaxSpeed  float64
	Mode      Mode
}

// AnnotateMove matches the records of a move episode to road segments and
// returns (a) the structured tuples (segment, time-in, time-out, mode) of
// Tline and (b) the underlying segment runs for diagnostics. Records that
// could not be matched are skipped (they produce no tuple).
func (a *Annotator) AnnotateMove(t *gps.RawTrajectory, ep *episode.Episode) ([]*core.EpisodeTuple, []SegmentRun, error) {
	return a.AnnotateMoveCursor(t, ep, nil)
}

// AnnotateMoveCursor is AnnotateMove with a per-object locality cursor; cur
// may be nil. Cached and uncached results are identical.
func (a *Annotator) AnnotateMoveCursor(t *gps.RawTrajectory, ep *episode.Episode, cur *Cursor) ([]*core.EpisodeTuple, []SegmentRun, error) {
	if t == nil || ep == nil {
		return nil, nil, errors.New("line: nil trajectory or episode")
	}
	recs := ep.Records(t)
	if len(recs) == 0 {
		return nil, nil, errors.New("line: episode has no records")
	}
	points := make([]geo.Point, len(recs))
	for i, r := range recs {
		points[i] = r.Position
	}
	matched := a.MatchPointsCursor(points, cur)
	// Group consecutive records matched to the same segment.
	var runs []SegmentRun
	i := 0
	for i < len(matched) {
		if matched[i] < 0 {
			i++
			continue
		}
		j := i
		for j+1 < len(matched) && matched[j+1] == matched[i] {
			j++
		}
		seg, err := a.net.Segment(matched[i])
		if err != nil {
			return nil, nil, fmt.Errorf("line: %w", err)
		}
		avg, max := speedProfile(recs[i : j+1])
		mode := a.cfg.VehicleMode
		if mode == "" {
			mode = InferMode(seg.Class, avg, max)
		}
		runs = append(runs, SegmentRun{
			SegmentID: seg.ID,
			Class:     seg.Class,
			Name:      seg.Name,
			StartIdx:  ep.StartIdx + i,
			EndIdx:    ep.StartIdx + j,
			AvgSpeed:  avg,
			MaxSpeed:  max,
			Mode:      mode,
		})
		i = j + 1
	}
	tuples := make([]*core.EpisodeTuple, 0, len(runs))
	for _, run := range runs {
		seg, _ := a.net.Segment(run.SegmentID)
		place := &core.Place{
			ID:       fmt.Sprintf("seg-%d", seg.ID),
			Kind:     core.LinePlace,
			Name:     seg.Name,
			Category: seg.Class.String(),
			Extent:   seg.Geom.Bounds(),
		}
		tuple := &core.EpisodeTuple{
			Kind:    episode.Move,
			Place:   place,
			TimeIn:  t.Records[run.StartIdx].Time,
			TimeOut: t.Records[run.EndIdx].Time,
			Episode: ep,
		}
		tuple.Annotations.Add(core.Annotation{
			Key: core.AnnRoadClass, Value: seg.Class.String(), Confidence: 1, Source: "line"})
		tuple.Annotations.Add(core.Annotation{
			Key: core.AnnRoadName, Value: seg.Name, Confidence: 1, Source: "line"})
		tuple.Annotations.Add(core.Annotation{
			Key: core.AnnTransportMode, Value: string(run.Mode), Confidence: 0.9, Source: "line"})
		tuples = append(tuples, tuple)
	}
	return tuples, runs, nil
}

// speedProfile returns the mean and maximum instantaneous speed over a run
// of records.
func speedProfile(recs []gps.Record) (avg, max float64) {
	if len(recs) < 2 {
		return 0, 0
	}
	var dist float64
	for i := 1; i < len(recs); i++ {
		d := recs[i].Position.DistanceTo(recs[i-1].Position)
		dist += d
		dt := recs[i].Time.Sub(recs[i-1].Time).Seconds()
		if dt > 0 {
			if s := d / dt; s > max {
				max = s
			}
		}
	}
	dur := recs[len(recs)-1].Time.Sub(recs[0].Time).Seconds()
	if dur > 0 {
		avg = dist / dur
	}
	return avg, max
}

// Accuracy compares matched segment ids against ground truth and returns the
// fraction of points matched to the true segment (the metric of Fig. 10).
// Points with no ground truth (-1 entries in truth) are ignored.
func Accuracy(matched, truth []int) float64 {
	if len(matched) != len(truth) || len(matched) == 0 {
		return 0
	}
	var considered, correct int
	for i := range matched {
		if truth[i] < 0 {
			continue
		}
		considered++
		if matched[i] == truth[i] {
			correct++
		}
	}
	if considered == 0 {
		return 0
	}
	return float64(correct) / float64(considered)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
