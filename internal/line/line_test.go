package line

import (
	"math/rand"
	"testing"
	"time"

	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/geo"
	"semitri/internal/gps"
	"semitri/internal/roadnet"
)

var t0 = time.Date(2010, 3, 15, 8, 0, 0, 0, time.UTC)

// parallelNetwork builds two parallel horizontal roads 40 m apart plus a
// metro line, the configuration where per-point nearest matching is fragile.
func parallelNetwork(t *testing.T) *roadnet.Network {
	t.Helper()
	n := roadnet.NewNetwork()
	mk := func(x1, y1, x2, y2 float64, cl roadnet.Class, name string) *roadnet.Segment {
		a := n.AddNode(geo.Pt(x1, y1))
		b := n.AddNode(geo.Pt(x2, y2))
		s, err := n.AddSegment(a, b, cl, name)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	mk(0, 0, 1000, 0, roadnet.Arterial, "main-street")      // seg 0
	mk(0, 40, 1000, 40, roadnet.Residential, "back-street") // seg 1
	mk(0, 200, 1000, 200, roadnet.MetroRail, "metro-M1")    // seg 2
	mk(0, -300, 1000, -300, roadnet.Footpath, "lake-path")  // seg 3
	return n
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{CandidateRadius: 0, GlobalRadius: 2, SigmaFactor: 1},
		{CandidateRadius: 50, GlobalRadius: -1, SigmaFactor: 1},
		{CandidateRadius: 50, GlobalRadius: 2, SigmaFactor: 0},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Fatalf("config %d should be invalid", i)
		}
	}
}

func TestNewAnnotator(t *testing.T) {
	if _, err := NewAnnotator(nil, DefaultConfig()); err == nil {
		t.Fatal("nil network should error")
	}
	if _, err := NewAnnotator(parallelNetwork(t), Config{}); err == nil {
		t.Fatal("invalid config should error")
	}
	a, err := NewAnnotator(parallelNetwork(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Config().GlobalRadius != 2 {
		t.Fatal("Config accessor wrong")
	}
}

func TestMatchPointsCleanTrack(t *testing.T) {
	a, _ := NewAnnotator(parallelNetwork(t), DefaultConfig())
	// Points running exactly along main-street.
	var pts []geo.Point
	for x := 0.0; x <= 1000; x += 50 {
		pts = append(pts, geo.Pt(x, 1))
	}
	matched := a.MatchPoints(pts)
	for i, id := range matched {
		if id != 0 {
			t.Fatalf("point %d matched to segment %d, want 0", i, id)
		}
	}
	if got := a.MatchPoints(nil); len(got) != 0 {
		t.Fatal("empty input should give empty output")
	}
}

func TestGlobalMatchingSmoothsNoise(t *testing.T) {
	// A noisy track along main-street where some points are pulled closer to
	// back-street; the global algorithm should keep them on main-street while
	// the nearest baseline flips.
	net := parallelNetwork(t)
	a, _ := NewAnnotator(net, Config{CandidateRadius: 80, GlobalRadius: 3, SigmaFactor: 1})
	rng := rand.New(rand.NewSource(4))
	var pts []geo.Point
	truth := []int{}
	for x := 0.0; x <= 1000; x += 25 {
		y := rng.NormFloat64() * 8
		if int(x)%200 == 100 {
			y = 25 // occasional outlier towards the parallel road (dist 25 vs 15)
		}
		pts = append(pts, geo.Pt(x, y))
		truth = append(truth, 0)
	}
	global := a.MatchPoints(pts)
	nearest := a.MatchPointsNearest(pts)
	accGlobal := Accuracy(global, truth)
	accNearest := Accuracy(nearest, truth)
	if accGlobal < accNearest {
		t.Fatalf("global accuracy %v should be at least nearest accuracy %v", accGlobal, accNearest)
	}
	if accGlobal < 0.95 {
		t.Fatalf("global accuracy = %v, want >= 0.95", accGlobal)
	}
	if accNearest > 0.999 {
		t.Fatalf("test setup broken: nearest baseline should make mistakes, accuracy %v", accNearest)
	}
}

func TestMatchPointsFallbackOutsideCandidateRadius(t *testing.T) {
	a, _ := NewAnnotator(parallelNetwork(t), DefaultConfig())
	// A point far from every segment still gets the nearest-segment fallback.
	matched := a.MatchPoints([]geo.Point{geo.Pt(500, 5000)})
	if matched[0] != 2 { // metro at y=200 is the closest
		t.Fatalf("fallback matched %d, want 2", matched[0])
	}
	// With an empty network MatchPoints yields -1.
	empty := roadnet.NewNetwork()
	ea, _ := NewAnnotator(empty, DefaultConfig())
	if got := ea.MatchPoints([]geo.Point{geo.Pt(0, 0)}); got[0] != -1 {
		t.Fatalf("empty network match = %d, want -1", got[0])
	}
	if got := ea.MatchPointsNearest([]geo.Point{geo.Pt(0, 0)}); got[0] != -1 {
		t.Fatalf("empty network nearest = %d, want -1", got[0])
	}
}

func TestInferMode(t *testing.T) {
	cases := []struct {
		class    roadnet.Class
		avg, max float64
		want     Mode
	}{
		{roadnet.MetroRail, 10, 15, ModeMetro},
		{roadnet.Footpath, 1.2, 2.0, ModeWalk},
		{roadnet.Residential, 1.5, 3.0, ModeWalk},
		{roadnet.Footpath, 4.5, 7.0, ModeBicycle},
		{roadnet.Arterial, 5.0, 9.0, ModeBicycle},
		{roadnet.Arterial, 9.0, 14.0, ModeBus},
		{roadnet.Highway, 25.0, 33.0, ModeCar},
		{roadnet.Arterial, 20.0, 28.0, ModeCar},
	}
	for i, c := range cases {
		if got := InferMode(c.class, c.avg, c.max); got != c.want {
			t.Errorf("case %d: InferMode(%v, %v, %v) = %v, want %v", i, c.class, c.avg, c.max, got, c.want)
		}
	}
}

// commute builds a trajectory that walks along the footpath, rides the metro
// and walks again, returning the trajectory and its single move episode.
func commute(t *testing.T) (*gps.RawTrajectory, *episode.Episode) {
	t.Helper()
	var recs []gps.Record
	now := t0
	add := func(p geo.Point, step time.Duration) {
		recs = append(recs, gps.Record{ObjectID: "u4", Position: p, Time: now})
		now = now.Add(step)
	}
	// Walk along the footpath (y=-300) from x=0 to x=200 at 1.4 m/s.
	for x := 0.0; x <= 200; x += 14 {
		add(geo.Pt(x, -300), 10*time.Second)
	}
	// Metro along y=200 from x=200 to x=900 at 15 m/s.
	for x := 200.0; x <= 900; x += 75 {
		add(geo.Pt(x, 200), 5*time.Second)
	}
	// Walk along main-street (y=0) from x=900 to x=1000.
	for x := 900.0; x <= 1000; x += 14 {
		add(geo.Pt(x, 0), 10*time.Second)
	}
	tr := &gps.RawTrajectory{ID: "u4-T0", ObjectID: "u4", Records: recs}
	ep := &episode.Episode{
		TrajectoryID: tr.ID, ObjectID: tr.ObjectID, Kind: episode.Move,
		StartIdx: 0, EndIdx: len(recs) - 1,
		Start: recs[0].Time, End: recs[len(recs)-1].Time,
		Center: geo.Centroid([]geo.Point{recs[0].Position, recs[len(recs)-1].Position}),
		Bounds: tr.Bounds(), RecordCount: len(recs),
	}
	return tr, ep
}

func TestAnnotateMoveHomeOfficeCommute(t *testing.T) {
	a, _ := NewAnnotator(parallelNetwork(t), DefaultConfig())
	tr, ep := commute(t)
	tuples, runs, err := a.AnnotateMove(tr, ep)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) == 0 || len(runs) == 0 {
		t.Fatal("expected at least one tuple and run")
	}
	// The metro leg must be present with the metro mode (Fig. 15 behaviour).
	var sawMetro, sawWalk bool
	for _, tp := range tuples {
		mode := Mode(tp.Annotations.Value(core.AnnTransportMode))
		switch mode {
		case ModeMetro:
			sawMetro = true
			if tp.Annotations.Value(core.AnnRoadName) != "metro-M1" {
				t.Fatalf("metro tuple road = %q", tp.Annotations.Value(core.AnnRoadName))
			}
		case ModeWalk:
			sawWalk = true
		}
		if tp.Place == nil || tp.Place.Kind != core.LinePlace {
			t.Fatalf("tuple place = %+v", tp.Place)
		}
		if tp.Kind != episode.Move {
			t.Fatal("line tuples must be move tuples")
		}
		if tp.TimeOut.Before(tp.TimeIn) {
			t.Fatal("tuple times reversed")
		}
	}
	if !sawMetro || !sawWalk {
		t.Fatalf("expected both metro and walk legs, tuples: %d (metro=%v walk=%v)", len(tuples), sawMetro, sawWalk)
	}
	// Runs cover increasing index ranges within the episode.
	for i := 1; i < len(runs); i++ {
		if runs[i].StartIdx <= runs[i-1].EndIdx {
			t.Fatalf("runs overlap: %+v then %+v", runs[i-1], runs[i])
		}
	}
}

func TestAnnotateMoveVehicleOverride(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VehicleMode = ModeCar
	a, _ := NewAnnotator(parallelNetwork(t), cfg)
	tr, ep := commute(t)
	tuples, _, err := a.AnnotateMove(tr, ep)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range tuples {
		if tp.Annotations.Value(core.AnnTransportMode) != string(ModeCar) {
			t.Fatalf("vehicle override not applied: %q", tp.Annotations.Value(core.AnnTransportMode))
		}
	}
}

func TestAnnotateMoveErrors(t *testing.T) {
	a, _ := NewAnnotator(parallelNetwork(t), DefaultConfig())
	if _, _, err := a.AnnotateMove(nil, nil); err == nil {
		t.Fatal("nil inputs should error")
	}
	tr, _ := commute(t)
	badEp := &episode.Episode{StartIdx: 5, EndIdx: 100000}
	if _, _, err := a.AnnotateMove(tr, badEp); err == nil {
		t.Fatal("episode with out-of-range records should error")
	}
}

func TestAccuracy(t *testing.T) {
	if Accuracy([]int{1, 2, 3}, []int{1, 2, 4}) != 2.0/3.0 {
		t.Fatal("accuracy wrong")
	}
	if Accuracy([]int{1}, []int{1, 2}) != 0 {
		t.Fatal("length mismatch should give 0")
	}
	if Accuracy(nil, nil) != 0 {
		t.Fatal("empty should give 0")
	}
	// Ignored ground truth entries.
	if Accuracy([]int{1, 9}, []int{1, -1}) != 1 {
		t.Fatal("entries without ground truth must be ignored")
	}
	if Accuracy([]int{5}, []int{-1}) != 0 {
		t.Fatal("all-ignored should give 0")
	}
}

func TestSpeedProfile(t *testing.T) {
	recs := []gps.Record{
		{Position: geo.Pt(0, 0), Time: t0},
		{Position: geo.Pt(10, 0), Time: t0.Add(time.Second)},
		{Position: geo.Pt(40, 0), Time: t0.Add(2 * time.Second)},
	}
	avg, max := speedProfile(recs)
	if avg != 20 || max != 30 {
		t.Fatalf("speedProfile = %v, %v", avg, max)
	}
	if a, m := speedProfile(recs[:1]); a != 0 || m != 0 {
		t.Fatal("single record profile should be zero")
	}
}

func BenchmarkMatchPoints(b *testing.B) {
	net, err := roadnet.Generate(roadnet.DefaultGeneratorConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	a, _ := NewAnnotator(net, DefaultConfig())
	rng := rand.New(rand.NewSource(2))
	pts := make([]geo.Point, 500)
	x, y := 5000.0, 5000.0
	for i := range pts {
		x += rng.Float64()*40 - 10
		y += rng.Float64()*20 - 10
		pts[i] = geo.Pt(x, y)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MatchPoints(pts)
	}
}
