package episode

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"semitri/internal/geo"
	"semitri/internal/gps"
)

// randomTrajectory generates a trajectory alternating stationary dwells and
// travel bursts, with jitter that exercises absorption (short moving blips
// inside stops) and demotion (stationary phases too short or too spread to
// validate).
func randomTrajectory(seed int64, n int) *gps.RawTrajectory {
	rng := rand.New(rand.NewSource(seed))
	t := time.Date(2026, 5, 2, 8, 0, 0, 0, time.UTC)
	pos := geo.Pt(1000, 1000)
	recs := make([]gps.Record, 0, n)
	mode := rng.Intn(2) // 0 = dwell, 1 = travel
	left := 1 + rng.Intn(40)
	for i := 0; i < n; i++ {
		if left == 0 {
			mode = 1 - mode
			left = 1 + rng.Intn(40)
		}
		left--
		var step float64
		if mode == 0 {
			step = rng.Float64() * 8 // mostly stationary, sometimes a blip
			if rng.Float64() < 0.1 {
				step = 30 + rng.Float64()*40
			}
		} else {
			step = 60 + rng.Float64()*120
		}
		ang := rng.Float64() * 2 * math.Pi
		pos = geo.Pt(pos.X+step*math.Cos(ang), pos.Y+step*math.Sin(ang))
		t = t.Add(time.Duration(20+rng.Intn(30)) * time.Second)
		recs = append(recs, gps.Record{ObjectID: "obj", Position: pos, Time: t})
	}
	return &gps.RawTrajectory{ID: "obj-T0000", ObjectID: "obj", Records: recs}
}

func episodesEqual(t *testing.T, want, got []*Episode, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d episodes, want %d", label, len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Fatalf("%s: episode %d differs:\n got  %+v\n want %+v", label, i, *got[i], *want[i])
		}
	}
}

func runTracker(t *testing.T, tr *gps.RawTrajectory, cfg Config) []*Episode {
	t.Helper()
	tk, err := NewTracker(tr.ID, tr.ObjectID, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out []*Episode
	for _, r := range tr.Records {
		eps, err := tk.Add(r)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, eps...)
	}
	tail, err := tk.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return append(out, tail...)
}

func TestTrackerMatchesDetect(t *testing.T) {
	configs := map[string]Config{
		"default": DefaultConfig(),
		"vehicle": VehicleConfig(),
		"no-absorption": {
			SpeedThreshold: 1.0, MinStopDuration: 3 * time.Minute, StopRadius: 100, MinMoveRecords: 0,
		},
		"tight-radius": {
			SpeedThreshold: 1.0, MinStopDuration: time.Minute, StopRadius: 15, MinMoveRecords: 3,
		},
	}
	for name, cfg := range configs {
		for seed := int64(1); seed <= 25; seed++ {
			tr := randomTrajectory(seed, 200+int(seed)*17)
			want, err := Detect(tr, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := runTracker(t, tr, cfg)
			episodesEqual(t, want, got, name)
			if err := ValidateSequence(tr, got); err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
		}
	}
}

func TestTrackerTinyTrajectories(t *testing.T) {
	cfg := DefaultConfig()
	for n := 1; n <= 5; n++ {
		tr := randomTrajectory(99, n)
		want, err := Detect(tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		episodesEqual(t, want, runTracker(t, tr, cfg), "tiny")
	}
}

func TestTrackerTailCoversSuffix(t *testing.T) {
	cfg := DefaultConfig()
	tr := randomTrajectory(4, 300)
	tk, err := NewTracker(tr.ID, tr.ObjectID, cfg)
	if err != nil {
		t.Fatal(err)
	}
	covered := 0
	for i, r := range tr.Records {
		eps, err := tk.Add(r)
		if err != nil {
			t.Fatal(err)
		}
		for _, ep := range eps {
			if ep.StartIdx != covered {
				t.Fatalf("record %d: emitted episode starts at %d, want %d", i, ep.StartIdx, covered)
			}
			covered = ep.EndIdx + 1
		}
		tail := tk.Tail()
		if covered <= i { // some records not yet emitted: the tail must cover them
			if len(tail) == 0 {
				t.Fatalf("record %d: no tail despite %d unemitted records", i, i+1-covered)
			}
			if tail[0].StartIdx != covered || tail[len(tail)-1].EndIdx != i {
				t.Fatalf("record %d: tail covers [%d,%d], want [%d,%d]",
					i, tail[0].StartIdx, tail[len(tail)-1].EndIdx, covered, i)
			}
		}
	}
	if _, err := tk.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Add(tr.Records[0]); err == nil {
		t.Fatal("Add after Finish should fail")
	}
}

func TestTrackerEmitsBeforeFinish(t *testing.T) {
	// A trajectory with clear long stops must emit episodes online, not only
	// at Finish time.
	cfg := DefaultConfig()
	tr := randomTrajectory(11, 500)
	tk, err := NewTracker(tr.ID, tr.ObjectID, cfg)
	if err != nil {
		t.Fatal(err)
	}
	online := 0
	for _, r := range tr.Records {
		eps, err := tk.Add(r)
		if err != nil {
			t.Fatal(err)
		}
		online += len(eps)
	}
	if online == 0 {
		t.Fatal("tracker never emitted an episode before Finish")
	}
}
