package episode

import (
	"errors"

	"semitri/internal/gps"
)

// Tracker is the incremental counterpart of Detect: it consumes the records
// of ONE raw trajectory as they arrive and emits each episode as soon as it
// is final, i.e. as soon as no future record can change its kind or extent
// under the batch algorithm. Feeding a trajectory's records through Add and
// calling Finish yields exactly the episode sequence Detect returns on the
// full trajectory.
//
// Finality is subtle because the batch algorithm looks both ways: a short
// move run between two stationary runs is absorbed into a stop candidate,
// and a stop candidate failing the duration/radius policies is demoted and
// merged into the neighbouring moves. The tracker therefore advances its
// emission frontier only across validated stops: a stop candidate (after
// absorbing short interruptions) becomes final once it is followed by a move
// run that can no longer be absorbed (>= MinMoveRecords records with final
// labels), at which point the preceding move — everything since the last
// emitted episode — is final too.
//
// A Tracker is bound to a single trajectory and is not safe for concurrent
// use.
type Tracker struct {
	cfg          Config
	trajectoryID string
	objectID     string

	records []gps.Record
	speeds  []float64 // speeds[i]: between records i and i+1
	labels  []bool    // final stationary labels for records [0, len(labels))
	emitted int       // records [0, emitted) are covered by emitted episodes
	runs    []irun    // candidate runs over records [emitted, len(labels))

	finished bool
}

// irun is a candidate run over a contiguous record range (global indices).
type irun struct {
	kind     Kind
	from, to int
}

// NewTracker returns a tracker for one trajectory of the given object. The
// trajectory id may be unknown while the trajectory is still open; SetIDs
// backfills it on episodes emitted later (already-returned episodes are the
// caller's to fix up).
func NewTracker(trajectoryID, objectID string, cfg Config) (*Tracker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Tracker{cfg: cfg, trajectoryID: trajectoryID, objectID: objectID}, nil
}

// SetIDs updates the trajectory/object ids stamped on episodes emitted from
// now on.
func (tk *Tracker) SetIDs(trajectoryID, objectID string) {
	tk.trajectoryID = trajectoryID
	tk.objectID = objectID
}

// RecordCount returns the number of records consumed so far.
func (tk *Tracker) RecordCount() int { return len(tk.records) }

// Add consumes the trajectory's next record and returns the episodes that
// became final, in order. Records must arrive in non-decreasing time order.
func (tk *Tracker) Add(r gps.Record) ([]*Episode, error) {
	if tk.finished {
		return nil, errors.New("episode: tracker already finished")
	}
	tk.records = append(tk.records, r)
	n := len(tk.records)
	if n < 2 {
		return nil, nil
	}
	prev := tk.records[n-2]
	dt := r.Time.Sub(prev.Time).Seconds()
	speed := 0.0
	if dt > 0 {
		speed = r.Position.DistanceTo(prev.Position) / dt
	} else if dt < 0 {
		return nil, errors.New("episode: record timestamp goes backwards")
	}
	tk.speeds = append(tk.speeds, speed)
	// Record n-2's label is now final: the batch algorithm labels it with
	// speeds[n-3] alone when it is the first record, otherwise with the mean
	// of its surrounding speeds.
	tk.labels = append(tk.labels, tk.finalLabel(n-2))
	tk.extendRuns(n-2, tk.labels[n-2])
	return tk.advance(), nil
}

// finalLabel computes the batch stationary label of record i, which requires
// speeds[i] (i.e. record i+1) to exist.
func (tk *Tracker) finalLabel(i int) bool {
	var s float64
	if i == 0 {
		s = tk.speeds[0]
	} else {
		s = (tk.speeds[i-1] + tk.speeds[i]) / 2
	}
	return s < tk.cfg.SpeedThreshold
}

// extendRuns appends record index i with the given label to the candidate
// run list.
func (tk *Tracker) extendRuns(i int, stationary bool) {
	kind := Move
	if stationary {
		kind = Stop
	}
	if n := len(tk.runs); n > 0 && tk.runs[n-1].kind == kind {
		tk.runs[n-1].to = i
		return
	}
	tk.runs = append(tk.runs, irun{kind: kind, from: i, to: i})
}

// advance moves the emission frontier across every stop whose fate is now
// decided, returning the emitted episodes.
func (tk *Tracker) advance() []*Episode {
	var out []*Episode
	for {
		// Locate the first stop candidate of the unemitted suffix (index 0
		// or 1: runs alternate, and the suffix starts with at most one
		// pending move).
		si := -1
		for i := range tk.runs {
			if tk.runs[i].kind == Stop {
				si = i
				break
			}
		}
		if si < 0 {
			return out
		}
		// Walk the super-stop: stop candidates glued by absorbed short move
		// interruptions, as the batch absorption step produces.
		j := si
		for {
			if j == len(tk.runs)-1 {
				return out // the stop candidate may still grow
			}
			next := tk.runs[j+1] // a move run, by alternation
			if tk.cfg.MinMoveRecords > 1 && next.to-next.from+1 < tk.cfg.MinMoveRecords {
				if j+1 == len(tk.runs)-1 {
					return out // short move: may still grow or be absorbed
				}
				j += 2 // absorbed between two stop candidates
				continue
			}
			break // the following move can no longer be absorbed
		}
		from, to := tk.runs[si].from, tk.runs[j].to
		dur := tk.records[to].Time.Sub(tk.records[from].Time)
		if dur >= tk.cfg.MinStopDuration && recordsRadius(tk.records, from, to) <= tk.cfg.StopRadius {
			// Validated: the stop and everything before it are final.
			if si > 0 {
				out = append(out, tk.build(Move, tk.runs[0].from, tk.runs[si-1].to))
			}
			out = append(out, tk.build(Stop, from, to))
			tk.runs = append([]irun(nil), tk.runs[j+1:]...)
			tk.emitted = to + 1
		} else {
			// Demoted: the failed candidate melts into the surrounding moves
			// and the combined move stays open.
			merged := irun{kind: Move, from: tk.runs[0].from, to: tk.runs[j+1].to}
			rest := tk.runs[j+2:]
			tk.runs = append([]irun{merged}, rest...)
		}
	}
}

func (tk *Tracker) build(kind Kind, from, to int) *Episode {
	return buildEpisodeRecords(tk.trajectoryID, tk.objectID, tk.records, kind, from, to)
}

// Finish closes the trajectory and returns the remaining episodes (the open
// move and/or trailing stop candidates), completing the exact Detect
// sequence. The tracker accepts no further records.
func (tk *Tracker) Finish() ([]*Episode, error) {
	if tk.finished {
		return nil, errors.New("episode: tracker already finished")
	}
	tk.finished = true
	if len(tk.records) == 0 {
		return nil, errors.New("episode: empty trajectory")
	}
	if len(tk.records) == 1 {
		return []*Episode{tk.build(Stop, 0, 0)}, nil
	}
	runs := tk.closingRuns()
	var out []*Episode
	for _, r := range runs {
		out = append(out, tk.build(r.kind, r.from, r.to))
	}
	return out, nil
}

// Tail returns a provisional view of the not-yet-final suffix: the episodes
// Finish would emit if the trajectory ended now. It does not modify the
// tracker; the returned episodes (typically one open move and/or a forming
// stop) may still change as records arrive.
func (tk *Tracker) Tail() []*Episode {
	if tk.finished || len(tk.records) == 0 || len(tk.records) == tk.emitted {
		return nil
	}
	if len(tk.records) == 1 {
		return []*Episode{tk.build(Stop, 0, 0)}
	}
	var out []*Episode
	for _, r := range tk.closingRuns() {
		out = append(out, tk.build(r.kind, r.from, r.to))
	}
	return out
}

// closingRuns labels the last record, then applies the batch absorption,
// validation and merge steps to the unemitted suffix runs. It does not
// modify tracker state.
func (tk *Tracker) closingRuns() []irun {
	runs := append([]irun(nil), tk.runs...)
	// The last record's label is final now: the batch algorithm labels it
	// with the last speed alone.
	last := len(tk.records) - 1
	kind := Move
	if tk.speeds[len(tk.speeds)-1] < tk.cfg.SpeedThreshold {
		kind = Stop
	}
	if n := len(runs); n > 0 && runs[n-1].kind == kind {
		runs[n-1].to = last
	} else {
		runs = append(runs, irun{kind: kind, from: last, to: last})
	}
	// Batch step 1: absorb short move interruptions between two stop
	// candidates. The first suffix run is never absorbable (it either starts
	// the trajectory or follows an emitted stop across an immune move).
	if tk.cfg.MinMoveRecords > 1 {
		for i := range runs {
			r := &runs[i]
			if r.kind == Move && r.to-r.from+1 < tk.cfg.MinMoveRecords &&
				i > 0 && runs[i-1].kind == Stop &&
				i < len(runs)-1 && runs[i+1].kind == Stop {
				r.kind = Stop
			}
		}
		runs = mergeAdjacentRuns(runs)
	}
	// Batch step 2: validate stop candidates, demoting failures to moves.
	for i := range runs {
		r := &runs[i]
		if r.kind == Stop {
			dur := tk.records[r.to].Time.Sub(tk.records[r.from].Time)
			if dur < tk.cfg.MinStopDuration || recordsRadius(tk.records, r.from, r.to) > tk.cfg.StopRadius {
				r.kind = Move
			}
		}
	}
	return mergeAdjacentRuns(runs)
}

func mergeAdjacentRuns(rs []irun) []irun {
	out := rs[:0:0]
	for _, r := range rs {
		if len(out) > 0 && out[len(out)-1].kind == r.kind {
			out[len(out)-1].to = r.to
			continue
		}
		out = append(out, r)
	}
	return out
}
