// Package episode implements the stop/move computation of SeMiTri's
// Trajectory Computation Layer: segmenting a raw trajectory into a sequence
// of maximal episodes according to spatio-temporal predicates (velocity,
// density, temporal and spatial separation policies described in §3.3 and
// in the companion work [30]).
//
// A stop episode is a maximal subsequence during which the moving object
// stays (almost) stationary for at least a minimum duration; move episodes
// are the maximal subsequences between stops. The output episodes carry the
// index range into the raw trajectory so the annotation layers can access
// the underlying GPS points.
package episode

import (
	"errors"
	"fmt"
	"time"

	"semitri/internal/geo"
	"semitri/internal/gps"
)

// Kind distinguishes stop and move episodes.
type Kind int

const (
	// Move is an episode during which the object is travelling.
	Move Kind = iota
	// Stop is an episode during which the object stays within a small area.
	Stop
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == Stop {
		return "stop"
	}
	return "move"
}

// Episode is a maximal subsequence of a raw trajectory complying with the
// stop or move predicate (the trajectory-structuring unit of Definition 4).
type Episode struct {
	TrajectoryID string
	ObjectID     string
	Kind         Kind
	// StartIdx and EndIdx delimit the record range [StartIdx, EndIdx] of the
	// raw trajectory covered by this episode (inclusive).
	StartIdx int
	EndIdx   int
	Start    time.Time
	End      time.Time
	// Center is the mean position of the episode's records (used as the stop
	// location for point annotation).
	Center geo.Point
	// Bounds is the spatial bounding rectangle of the episode's records.
	Bounds geo.Rect
	// AvgSpeed is the mean instantaneous speed over the episode in m/s.
	AvgSpeed float64
	// MaxSpeed is the maximum instantaneous speed over the episode in m/s.
	MaxSpeed float64
	// Distance is the path length travelled during the episode in metres.
	Distance float64
	// RecordCount is the number of GPS records covered by the episode.
	RecordCount int
}

// Duration returns the temporal extent of the episode.
func (e *Episode) Duration() time.Duration { return e.End.Sub(e.Start) }

// Records returns the slice of raw records covered by the episode.
func (e *Episode) Records(t *gps.RawTrajectory) []gps.Record {
	if t == nil || e.StartIdx < 0 || e.EndIdx >= len(t.Records) || e.StartIdx > e.EndIdx {
		return nil
	}
	return t.Records[e.StartIdx : e.EndIdx+1]
}

// Config controls the stop/move detection policies. A record is considered
// part of a candidate stop when its speed is below SpeedThreshold; a
// candidate becomes a stop when it lasts at least MinStopDuration and its
// spatial extent stays within StopRadius (the density/spatial policy).
type Config struct {
	// SpeedThreshold in m/s below which a record counts as stationary.
	SpeedThreshold float64
	// MinStopDuration is the minimum duration of a stop episode.
	MinStopDuration time.Duration
	// StopRadius is the maximum radius of the positions within a stop.
	StopRadius float64
	// MinMoveRecords drops (merges into neighbouring stops) move episodes
	// with fewer records than this, which absorbs jitter between stops.
	MinMoveRecords int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.SpeedThreshold <= 0 {
		return errors.New("episode: SpeedThreshold must be positive")
	}
	if c.MinStopDuration <= 0 {
		return errors.New("episode: MinStopDuration must be positive")
	}
	if c.StopRadius <= 0 {
		return errors.New("episode: StopRadius must be positive")
	}
	return nil
}

// DefaultConfig mirrors the settings used for the people/vehicle experiments:
// speed below 1.0 m/s for at least 3 minutes within a 100 m radius is a stop.
func DefaultConfig() Config {
	return Config{
		SpeedThreshold:  1.0,
		MinStopDuration: 3 * time.Minute,
		StopRadius:      100,
		MinMoveRecords:  3,
	}
}

// VehicleConfig is a preset suited to car/taxi trajectories sampled at high
// frequency: stops are parking/pick-up events of at least 2 minutes.
func VehicleConfig() Config {
	return Config{
		SpeedThreshold:  1.5,
		MinStopDuration: 2 * time.Minute,
		StopRadius:      80,
		MinMoveRecords:  5,
	}
}

// Detect segments the trajectory into an alternating sequence of stop and
// move episodes. The whole trajectory is covered: every record index belongs
// to exactly one episode, and consecutive episodes of the same kind are
// merged.
func Detect(t *gps.RawTrajectory, cfg Config) ([]*Episode, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if t == nil || len(t.Records) == 0 {
		return nil, errors.New("episode: empty trajectory")
	}
	if len(t.Records) == 1 {
		ep := buildEpisode(t, Stop, 0, 0)
		return []*Episode{ep}, nil
	}
	speeds := t.Speeds() // speeds[i] is the speed between record i and i+1
	// Label each record as stationary (candidate stop) or moving.
	stationary := make([]bool, len(t.Records))
	for i := range t.Records {
		var s float64
		switch {
		case i == 0:
			s = speeds[0]
		case i == len(t.Records)-1:
			s = speeds[len(speeds)-1]
		default:
			s = (speeds[i-1] + speeds[i]) / 2
		}
		stationary[i] = s < cfg.SpeedThreshold
	}
	// Build candidate runs and validate stop candidates against duration and
	// radius policies.
	type run struct {
		kind     Kind
		from, to int
	}
	var runs []run
	start := 0
	for i := 1; i <= len(stationary); i++ {
		if i == len(stationary) || stationary[i] != stationary[start] {
			kind := Move
			if stationary[start] {
				kind = Stop
			}
			runs = append(runs, run{kind: kind, from: start, to: i - 1})
			start = i
		}
	}
	mergeAdjacent := func(rs []run) []run {
		out := rs[:0:0]
		for _, r := range rs {
			if len(out) > 0 && out[len(out)-1].kind == r.kind {
				out[len(out)-1].to = r.to
				continue
			}
			out = append(out, r)
		}
		return out
	}
	// 1) Absorb brief moving interruptions between two stationary candidates
	//    (speed jitter within a stop) so a long stop is not fragmented into
	//    short candidates that would each fail the duration policy.
	if cfg.MinMoveRecords > 1 {
		for i := range runs {
			r := &runs[i]
			if r.kind == Move && r.to-r.from+1 < cfg.MinMoveRecords {
				prevStop := i > 0 && runs[i-1].kind == Stop
				nextStop := i < len(runs)-1 && runs[i+1].kind == Stop
				if prevStop && nextStop {
					r.kind = Stop
				}
			}
		}
		runs = mergeAdjacent(runs)
	}
	// 2) Validate stop candidates against the duration and radius policies;
	//    failing candidates are demoted to moves.
	for i := range runs {
		r := &runs[i]
		if r.kind == Stop {
			dur := t.Records[r.to].Time.Sub(t.Records[r.from].Time)
			radius := runRadius(t, r.from, r.to)
			if dur < cfg.MinStopDuration || radius > cfg.StopRadius {
				r.kind = Move
			}
		}
	}
	merged := mergeAdjacent(runs)
	episodes := make([]*Episode, 0, len(merged))
	for _, r := range merged {
		episodes = append(episodes, buildEpisode(t, r.kind, r.from, r.to))
	}
	return episodes, nil
}

func runRadius(t *gps.RawTrajectory, from, to int) float64 {
	return recordsRadius(t.Records, from, to)
}

// recordsRadius is runRadius over a bare record slice (global indices).
func recordsRadius(records []gps.Record, from, to int) float64 {
	pts := make([]geo.Point, 0, to-from+1)
	for i := from; i <= to; i++ {
		pts = append(pts, records[i].Position)
	}
	c := geo.Centroid(pts)
	var max float64
	for _, p := range pts {
		if d := p.DistanceTo(c); d > max {
			max = d
		}
	}
	return max
}

func buildEpisode(t *gps.RawTrajectory, kind Kind, from, to int) *Episode {
	return buildEpisodeRecords(t.ID, t.ObjectID, t.Records, kind, from, to)
}

// buildEpisodeRecords builds an episode over records[from:to+1] of the
// trajectory's full record slice; from/to are kept as global indices.
func buildEpisodeRecords(trajectoryID, objectID string, records []gps.Record, kind Kind, from, to int) *Episode {
	recs := records[from : to+1]
	pts := make([]geo.Point, len(recs))
	for i, r := range recs {
		pts[i] = r.Position
	}
	var dist, maxSpeed float64
	for i := 1; i < len(recs); i++ {
		d := recs[i].Position.DistanceTo(recs[i-1].Position)
		dist += d
		dt := recs[i].Time.Sub(recs[i-1].Time).Seconds()
		if dt > 0 {
			if s := d / dt; s > maxSpeed {
				maxSpeed = s
			}
		}
	}
	dur := recs[len(recs)-1].Time.Sub(recs[0].Time).Seconds()
	avg := 0.0
	if dur > 0 {
		avg = dist / dur
	}
	return &Episode{
		TrajectoryID: trajectoryID,
		ObjectID:     objectID,
		Kind:         kind,
		StartIdx:     from,
		EndIdx:       to,
		Start:        recs[0].Time,
		End:          recs[len(recs)-1].Time,
		Center:       geo.Centroid(pts),
		Bounds:       geo.BoundsOf(pts),
		AvgSpeed:     avg,
		MaxSpeed:     maxSpeed,
		Distance:     dist,
		RecordCount:  len(recs),
	}
}

// Stops filters the stop episodes from a detection result.
func Stops(episodes []*Episode) []*Episode { return filterKind(episodes, Stop) }

// Moves filters the move episodes from a detection result.
func Moves(episodes []*Episode) []*Episode { return filterKind(episodes, Move) }

func filterKind(episodes []*Episode, k Kind) []*Episode {
	var out []*Episode
	for _, e := range episodes {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// ValidateSequence checks the structural invariants of a detection result:
// full coverage of the trajectory, contiguous index ranges and alternation
// of kinds after merging.
func ValidateSequence(t *gps.RawTrajectory, episodes []*Episode) error {
	if len(episodes) == 0 {
		return errors.New("episode: empty sequence")
	}
	if episodes[0].StartIdx != 0 {
		return fmt.Errorf("episode: sequence starts at index %d, want 0", episodes[0].StartIdx)
	}
	if episodes[len(episodes)-1].EndIdx != len(t.Records)-1 {
		return fmt.Errorf("episode: sequence ends at index %d, want %d",
			episodes[len(episodes)-1].EndIdx, len(t.Records)-1)
	}
	for i := 1; i < len(episodes); i++ {
		if episodes[i].StartIdx != episodes[i-1].EndIdx+1 {
			return fmt.Errorf("episode: gap between episode %d and %d", i-1, i)
		}
		if episodes[i].Kind == episodes[i-1].Kind {
			return fmt.Errorf("episode: episodes %d and %d have the same kind %v", i-1, i, episodes[i].Kind)
		}
	}
	return nil
}
