package episode

import (
	"math/rand"
	"testing"
	"time"

	"semitri/internal/geo"
	"semitri/internal/gps"
)

var t0 = time.Date(2010, 3, 15, 8, 0, 0, 0, time.UTC)

// synthTrajectory builds a trajectory alternating between stationary phases
// (at the given anchor points, with small jitter) and travel phases between
// them at the given speed. Sampling is every `step` seconds.
func synthTrajectory(anchors []geo.Point, stayDur time.Duration, speed float64, step time.Duration, seed int64) *gps.RawTrajectory {
	rng := rand.New(rand.NewSource(seed))
	var records []gps.Record
	now := t0
	add := func(p geo.Point) {
		jitter := geo.Pt(p.X+rng.NormFloat64()*2, p.Y+rng.NormFloat64()*2)
		records = append(records, gps.Record{ObjectID: "u1", Position: jitter, Time: now})
		now = now.Add(step)
	}
	for i, a := range anchors {
		// stay
		for elapsed := time.Duration(0); elapsed < stayDur; elapsed += step {
			add(a)
		}
		// travel to next anchor
		if i < len(anchors)-1 {
			b := anchors[i+1]
			dist := a.DistanceTo(b)
			steps := int(dist / (speed * step.Seconds()))
			for s := 1; s <= steps; s++ {
				add(a.Lerp(b, float64(s)/float64(steps+1)))
			}
		}
	}
	return &gps.RawTrajectory{ID: "u1-T0000", ObjectID: "u1", Records: records}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if err := VehicleConfig().Validate(); err != nil {
		t.Fatalf("vehicle config invalid: %v", err)
	}
	bad := []Config{
		{SpeedThreshold: 0, MinStopDuration: time.Minute, StopRadius: 10},
		{SpeedThreshold: 1, MinStopDuration: 0, StopRadius: 10},
		{SpeedThreshold: 1, MinStopDuration: time.Minute, StopRadius: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("config %d should be invalid", i)
		}
	}
}

func TestDetectErrors(t *testing.T) {
	if _, err := Detect(nil, DefaultConfig()); err == nil {
		t.Fatal("nil trajectory should error")
	}
	if _, err := Detect(&gps.RawTrajectory{ID: "x", ObjectID: "u"}, DefaultConfig()); err == nil {
		t.Fatal("empty trajectory should error")
	}
	if _, err := Detect(&gps.RawTrajectory{ID: "x", ObjectID: "u", Records: []gps.Record{{ObjectID: "u", Time: t0}}}, Config{}); err == nil {
		t.Fatal("invalid config should error")
	}
}

func TestDetectSingleRecord(t *testing.T) {
	tr := &gps.RawTrajectory{ID: "x", ObjectID: "u",
		Records: []gps.Record{{ObjectID: "u", Position: geo.Pt(1, 1), Time: t0}}}
	eps, err := Detect(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) != 1 || eps[0].Kind != Stop || eps[0].RecordCount != 1 {
		t.Fatalf("eps = %+v", eps[0])
	}
}

func TestDetectHomeOfficeStops(t *testing.T) {
	// Home (0,0) -> travel -> office (3000, 0) -> travel -> market (3000, 2000).
	tr := synthTrajectory(
		[]geo.Point{geo.Pt(0, 0), geo.Pt(3000, 0), geo.Pt(3000, 2000)},
		10*time.Minute, 10 /*m/s*/, 10*time.Second, 1)
	eps, err := Detect(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateSequence(tr, eps); err != nil {
		t.Fatalf("invalid episode sequence: %v", err)
	}
	stops := Stops(eps)
	moves := Moves(eps)
	if len(stops) != 3 {
		t.Fatalf("expected 3 stops, got %d (%d episodes total)", len(stops), len(eps))
	}
	if len(moves) != 2 {
		t.Fatalf("expected 2 moves, got %d", len(moves))
	}
	// Stop centres near the anchors.
	wantCenters := []geo.Point{geo.Pt(0, 0), geo.Pt(3000, 0), geo.Pt(3000, 2000)}
	for i, s := range stops {
		if s.Center.DistanceTo(wantCenters[i]) > 50 {
			t.Errorf("stop %d centre %v too far from %v", i, s.Center, wantCenters[i])
		}
		if s.Duration() < 9*time.Minute {
			t.Errorf("stop %d duration %v too short", i, s.Duration())
		}
		if s.Kind.String() != "stop" {
			t.Errorf("stop Kind.String = %q", s.Kind.String())
		}
	}
	// Moves should have a plausible average speed near 10 m/s.
	for i, m := range moves {
		if m.AvgSpeed < 5 || m.AvgSpeed > 15 {
			t.Errorf("move %d avg speed = %v", i, m.AvgSpeed)
		}
		if m.Distance < 1000 {
			t.Errorf("move %d distance = %v", i, m.Distance)
		}
		if m.MaxSpeed < m.AvgSpeed {
			t.Errorf("move %d max speed %v < avg %v", i, m.MaxSpeed, m.AvgSpeed)
		}
	}
}

func TestDetectContinuousDriveHasNoStops(t *testing.T) {
	// A vehicle driving continuously at 15 m/s for 30 minutes.
	var records []gps.Record
	now := t0
	for i := 0; i < 1800; i += 5 {
		records = append(records, gps.Record{
			ObjectID: "car", Position: geo.Pt(float64(i)*15, 0), Time: now})
		now = now.Add(5 * time.Second)
	}
	tr := &gps.RawTrajectory{ID: "car-T0", ObjectID: "car", Records: records}
	eps, err := Detect(tr, VehicleConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(Stops(eps)) != 0 {
		t.Fatalf("continuous drive produced %d stops", len(Stops(eps)))
	}
	if len(eps) != 1 || eps[0].Kind != Move {
		t.Fatalf("expected a single move episode, got %d", len(eps))
	}
}

func TestDetectStationaryOnlyIsOneStop(t *testing.T) {
	var records []gps.Record
	rng := rand.New(rand.NewSource(2))
	now := t0
	for i := 0; i < 200; i++ {
		records = append(records, gps.Record{
			ObjectID: "u", Position: geo.Pt(500+rng.NormFloat64()*3, 500+rng.NormFloat64()*3), Time: now})
		now = now.Add(10 * time.Second)
	}
	tr := &gps.RawTrajectory{ID: "u-T0", ObjectID: "u", Records: records}
	eps, err := Detect(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) != 1 || eps[0].Kind != Stop {
		t.Fatalf("expected a single stop, got %d episodes (first kind %v)", len(eps), eps[0].Kind)
	}
	if eps[0].RecordCount != 200 {
		t.Fatalf("RecordCount = %d", eps[0].RecordCount)
	}
	if eps[0].Bounds.Width() > 50 {
		t.Fatalf("stop bounds too wide: %v", eps[0].Bounds)
	}
}

func TestShortPauseIsNotAStop(t *testing.T) {
	// Travel with a 30-second pause: below MinStopDuration, should stay a move.
	var records []gps.Record
	now := t0
	x := 0.0
	for i := 0; i < 120; i++ {
		if i >= 60 && i < 66 { // 30s pause at 5s sampling
			// stay
		} else {
			x += 50 // 10 m/s at 5 s sampling
		}
		records = append(records, gps.Record{ObjectID: "u", Position: geo.Pt(x, 0), Time: now})
		now = now.Add(5 * time.Second)
	}
	tr := &gps.RawTrajectory{ID: "u-T0", ObjectID: "u", Records: records}
	eps, err := Detect(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(Stops(eps)) != 0 {
		t.Fatalf("a 30s pause should not create a stop (MinStopDuration=3m), got %d stops", len(Stops(eps)))
	}
}

func TestLargeRadiusCandidateIsDemoted(t *testing.T) {
	// Slow movement spread over a large area (e.g. slow drift over 1 km):
	// speed below threshold but radius above StopRadius -> move.
	var records []gps.Record
	now := t0
	for i := 0; i < 400; i++ {
		records = append(records, gps.Record{ObjectID: "u", Position: geo.Pt(float64(i)*5, 0), Time: now})
		now = now.Add(10 * time.Second) // 0.5 m/s
	}
	tr := &gps.RawTrajectory{ID: "u-T0", ObjectID: "u", Records: records}
	cfg := DefaultConfig() // SpeedThreshold 1.0 m/s, StopRadius 100 m
	eps, err := Detect(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(Stops(eps)) != 0 {
		t.Fatalf("slow drift over 2 km should not be a stop, got %d stops", len(Stops(eps)))
	}
}

func TestEpisodeRecordsAccessor(t *testing.T) {
	tr := synthTrajectory([]geo.Point{geo.Pt(0, 0), geo.Pt(2000, 0)}, 5*time.Minute, 10, 10*time.Second, 3)
	eps, err := Detect(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, e := range eps {
		recs := e.Records(tr)
		if len(recs) != e.RecordCount {
			t.Fatalf("Records() returned %d, RecordCount = %d", len(recs), e.RecordCount)
		}
		total += len(recs)
	}
	if total != len(tr.Records) {
		t.Fatalf("episodes cover %d records, trajectory has %d", total, len(tr.Records))
	}
	// Out-of-range accessor returns nil.
	bad := &Episode{StartIdx: 5, EndIdx: 100000}
	if bad.Records(tr) != nil {
		t.Fatal("out-of-range Records should return nil")
	}
	if bad.Records(nil) != nil {
		t.Fatal("nil trajectory Records should return nil")
	}
}

func TestValidateSequenceDetectsProblems(t *testing.T) {
	tr := synthTrajectory([]geo.Point{geo.Pt(0, 0), geo.Pt(2000, 0)}, 5*time.Minute, 10, 10*time.Second, 4)
	eps, err := Detect(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateSequence(tr, eps); err != nil {
		t.Fatalf("valid sequence flagged: %v", err)
	}
	if err := ValidateSequence(tr, nil); err == nil {
		t.Fatal("empty sequence should be invalid")
	}
	// Break coverage.
	if len(eps) >= 2 {
		broken := []*Episode{eps[0]}
		if err := ValidateSequence(tr, broken); err == nil {
			t.Fatal("truncated sequence should be invalid")
		}
	}
	// Same-kind neighbours.
	dup := []*Episode{eps[0], {Kind: eps[0].Kind, StartIdx: eps[0].EndIdx + 1, EndIdx: len(tr.Records) - 1}}
	if err := ValidateSequence(tr, dup); err == nil {
		t.Fatal("same-kind neighbours should be invalid")
	}
}

func TestStopsMovesFilters(t *testing.T) {
	eps := []*Episode{{Kind: Stop}, {Kind: Move}, {Kind: Stop}}
	if len(Stops(eps)) != 2 || len(Moves(eps)) != 1 {
		t.Fatal("filters wrong")
	}
	if Stops(nil) != nil || Moves(nil) != nil {
		t.Fatal("nil input should return nil")
	}
}

// Property-style test over random stop/travel structures: detected stop
// count equals the number of anchors when stays are long and travel is fast.
func TestDetectRecoversPlannedStops(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(4)
		anchors := make([]geo.Point, n)
		for i := range anchors {
			anchors[i] = geo.Pt(float64(i)*3000+rng.Float64()*200, rng.Float64()*500)
		}
		tr := synthTrajectory(anchors, 8*time.Minute, 12, 10*time.Second, int64(trial+100))
		eps, err := Detect(tr, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if got := len(Stops(eps)); got != n {
			t.Fatalf("trial %d: detected %d stops, want %d", trial, got, n)
		}
		if err := ValidateSequence(tr, eps); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func BenchmarkDetect(b *testing.B) {
	tr := synthTrajectory(
		[]geo.Point{geo.Pt(0, 0), geo.Pt(5000, 0), geo.Pt(5000, 5000), geo.Pt(0, 5000)},
		10*time.Minute, 10, 5*time.Second, 1)
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Detect(tr, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
