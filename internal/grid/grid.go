// Package grid provides a uniform grid over a rectangular extent. It backs
// two parts of SeMiTri: the land-use cell model (regular 100m x 100m cells of
// the Swisstopo source, Fig. 4) and the discretization used to pre-compute
// POI emission probabilities for the HMM point-annotation layer (Fig. 7/8).
package grid

import (
	"fmt"
	"math"

	"semitri/internal/geo"
)

// Grid partitions the extent into Cols x Rows equal cells of size CellSize.
type Grid struct {
	Origin   geo.Point // lower-left corner of cell (0,0)
	CellSize float64   // side length of a square cell, in metres
	Cols     int
	Rows     int
}

// New creates a grid covering extent with square cells of the given size.
// The extent is expanded (never shrunk) so an integer number of cells covers it.
func New(extent geo.Rect, cellSize float64) (*Grid, error) {
	if cellSize <= 0 {
		return nil, fmt.Errorf("grid: cell size must be positive, got %v", cellSize)
	}
	if extent.IsEmpty() {
		return nil, fmt.Errorf("grid: empty extent")
	}
	cols := int(math.Ceil(extent.Width() / cellSize))
	rows := int(math.Ceil(extent.Height() / cellSize))
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	return &Grid{Origin: extent.Min, CellSize: cellSize, Cols: cols, Rows: rows}, nil
}

// NumCells returns the total number of cells in the grid.
func (g *Grid) NumCells() int { return g.Cols * g.Rows }

// Bounds returns the full extent covered by the grid.
func (g *Grid) Bounds() geo.Rect {
	return geo.Rect{
		Min: g.Origin,
		Max: geo.Pt(g.Origin.X+float64(g.Cols)*g.CellSize, g.Origin.Y+float64(g.Rows)*g.CellSize),
	}
}

// CellIndex returns the (col, row) of the cell containing p and whether p is
// inside the grid extent. Points on the max edge map to the last cell.
func (g *Grid) CellIndex(p geo.Point) (col, row int, ok bool) {
	col = int(math.Floor((p.X - g.Origin.X) / g.CellSize))
	row = int(math.Floor((p.Y - g.Origin.Y) / g.CellSize))
	if p.X == g.Origin.X+float64(g.Cols)*g.CellSize {
		col = g.Cols - 1
	}
	if p.Y == g.Origin.Y+float64(g.Rows)*g.CellSize {
		row = g.Rows - 1
	}
	if col < 0 || col >= g.Cols || row < 0 || row >= g.Rows {
		return 0, 0, false
	}
	return col, row, true
}

// CellID returns a dense integer id for the cell (col, row).
func (g *Grid) CellID(col, row int) int { return row*g.Cols + col }

// CellAt returns the id of the cell containing p, or -1 when outside.
func (g *Grid) CellAt(p geo.Point) int {
	col, row, ok := g.CellIndex(p)
	if !ok {
		return -1
	}
	return g.CellID(col, row)
}

// CellRect returns the extent of the cell (col, row).
func (g *Grid) CellRect(col, row int) geo.Rect {
	min := geo.Pt(g.Origin.X+float64(col)*g.CellSize, g.Origin.Y+float64(row)*g.CellSize)
	return geo.Rect{Min: min, Max: geo.Pt(min.X+g.CellSize, min.Y+g.CellSize)}
}

// CellRectByID returns the extent of the cell with the given dense id.
func (g *Grid) CellRectByID(id int) geo.Rect {
	return g.CellRect(id%g.Cols, id/g.Cols)
}

// CellCenter returns the centre point of the cell (col, row).
func (g *Grid) CellCenter(col, row int) geo.Point { return g.CellRect(col, row).Center() }

// CellsIntersecting returns the ids of all cells whose extent intersects r.
func (g *Grid) CellsIntersecting(r geo.Rect) []int {
	if r.IsEmpty() || !g.Bounds().Intersects(r) {
		return nil
	}
	clipped := g.Bounds().Intersection(r)
	minCol := int(math.Floor((clipped.Min.X - g.Origin.X) / g.CellSize))
	maxCol := int(math.Floor((clipped.Max.X - g.Origin.X) / g.CellSize))
	minRow := int(math.Floor((clipped.Min.Y - g.Origin.Y) / g.CellSize))
	maxRow := int(math.Floor((clipped.Max.Y - g.Origin.Y) / g.CellSize))
	clampInt := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	minCol = clampInt(minCol, 0, g.Cols-1)
	maxCol = clampInt(maxCol, 0, g.Cols-1)
	minRow = clampInt(minRow, 0, g.Rows-1)
	maxRow = clampInt(maxRow, 0, g.Rows-1)
	out := make([]int, 0, (maxCol-minCol+1)*(maxRow-minRow+1))
	for row := minRow; row <= maxRow; row++ {
		for col := minCol; col <= maxCol; col++ {
			out = append(out, g.CellID(col, row))
		}
	}
	return out
}

// Neighborhood returns the ids of the cells within `radius` cells of the
// cell containing p (a (2r+1)x(2r+1) block clipped to the grid). It is used
// by the POI layer to restrict the Gaussian influence sum to nearby POIs.
func (g *Grid) Neighborhood(p geo.Point, radius int) []int {
	col, row, ok := g.CellIndex(p)
	if !ok {
		return nil
	}
	var out []int
	for r := row - radius; r <= row+radius; r++ {
		if r < 0 || r >= g.Rows {
			continue
		}
		for c := col - radius; c <= col+radius; c++ {
			if c < 0 || c >= g.Cols {
				continue
			}
			out = append(out, g.CellID(c, r))
		}
	}
	return out
}

// Index is a spatial bucket index over the grid: each cell holds the values
// whose position falls inside it. It offers O(1) candidate lookup for dense
// point sets (POIs) without the overhead of a tree.
type Index struct {
	grid    *Grid
	buckets [][]indexed
	size    int
}

type indexed struct {
	p     geo.Point
	value interface{}
}

// NewIndex creates an empty bucket index on top of the given grid geometry.
func NewIndex(g *Grid) *Index {
	return &Index{grid: g, buckets: make([][]indexed, g.NumCells())}
}

// Grid returns the underlying grid geometry.
func (ix *Index) Grid() *Grid { return ix.grid }

// Len returns the number of values stored.
func (ix *Index) Len() int { return ix.size }

// Insert adds a value at position p. Values outside the grid extent are
// silently dropped (callers generate sources within the extent).
func (ix *Index) Insert(p geo.Point, value interface{}) bool {
	id := ix.grid.CellAt(p)
	if id < 0 {
		return false
	}
	ix.buckets[id] = append(ix.buckets[id], indexed{p: p, value: value})
	ix.size++
	return true
}

// WithinRect returns the values whose position lies inside r.
func (ix *Index) WithinRect(r geo.Rect) []interface{} {
	var out []interface{}
	for _, id := range ix.grid.CellsIntersecting(r) {
		for _, it := range ix.buckets[id] {
			if r.ContainsPoint(it.p) {
				out = append(out, it.value)
			}
		}
	}
	return out
}

// WithinDistance returns the values within dist of p.
func (ix *Index) WithinDistance(p geo.Point, dist float64) []interface{} {
	var out []interface{}
	for _, id := range ix.grid.CellsIntersecting(geo.RectAround(p, dist)) {
		for _, it := range ix.buckets[id] {
			if it.p.DistanceTo(p) <= dist {
				out = append(out, it.value)
			}
		}
	}
	return out
}

// Nearest returns the value closest to p and its distance; ok is false when
// the index is empty. The search expands ring by ring so it remains cheap
// even on large grids.
func (ix *Index) Nearest(p geo.Point) (value interface{}, dist float64, ok bool) {
	if ix.size == 0 {
		return nil, 0, false
	}
	maxRadius := ix.grid.Cols
	if ix.grid.Rows > maxRadius {
		maxRadius = ix.grid.Rows
	}
	best := math.Inf(1)
	var bestVal interface{}
	for radius := 0; radius <= maxRadius; radius++ {
		for _, id := range ix.grid.Neighborhood(p, radius) {
			for _, it := range ix.buckets[id] {
				d := it.p.DistanceTo(p)
				if d < best {
					best = d
					bestVal = it.value
				}
			}
		}
		// Once we have a candidate and the next ring cannot contain anything
		// closer, stop. Anything in ring radius+1 is at least radius*CellSize away.
		if bestVal != nil && best <= float64(radius)*ix.grid.CellSize {
			break
		}
	}
	if bestVal == nil {
		return nil, 0, false
	}
	return bestVal, best, true
}

// CellValues returns the values stored in the cell with the given id.
func (ix *Index) CellValues(id int) []interface{} {
	if id < 0 || id >= len(ix.buckets) {
		return nil
	}
	out := make([]interface{}, len(ix.buckets[id]))
	for i, it := range ix.buckets[id] {
		out[i] = it.value
	}
	return out
}
