package grid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"semitri/internal/geo"
)

func mustGrid(t *testing.T, extent geo.Rect, cell float64) *Grid {
	t.Helper()
	g, err := New(extent, cell)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	if _, err := New(geo.NewRect(geo.Pt(0, 0), geo.Pt(10, 10)), 0); err == nil {
		t.Fatal("expected error for zero cell size")
	}
	if _, err := New(geo.NewRect(geo.Pt(0, 0), geo.Pt(10, 10)), -5); err == nil {
		t.Fatal("expected error for negative cell size")
	}
	if _, err := New(geo.EmptyRect(), 10); err == nil {
		t.Fatal("expected error for empty extent")
	}
}

func TestGridDimensions(t *testing.T) {
	g := mustGrid(t, geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 500)), 100)
	if g.Cols != 10 || g.Rows != 5 {
		t.Fatalf("cols/rows = %d/%d", g.Cols, g.Rows)
	}
	if g.NumCells() != 50 {
		t.Fatalf("NumCells = %d", g.NumCells())
	}
	b := g.Bounds()
	if b.Min != geo.Pt(0, 0) || b.Max != geo.Pt(1000, 500) {
		t.Fatalf("Bounds = %+v", b)
	}
	// Non-integer extent expands upward.
	g2 := mustGrid(t, geo.NewRect(geo.Pt(0, 0), geo.Pt(250, 90)), 100)
	if g2.Cols != 3 || g2.Rows != 1 {
		t.Fatalf("expanded cols/rows = %d/%d", g2.Cols, g2.Rows)
	}
}

func TestCellIndexAndRect(t *testing.T) {
	g := mustGrid(t, geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000)), 100)
	col, row, ok := g.CellIndex(geo.Pt(250, 730))
	if !ok || col != 2 || row != 7 {
		t.Fatalf("CellIndex = %d,%d,%v", col, row, ok)
	}
	if _, _, ok := g.CellIndex(geo.Pt(-1, 50)); ok {
		t.Fatal("point outside grid should not be ok")
	}
	if _, _, ok := g.CellIndex(geo.Pt(50, 1001)); ok {
		t.Fatal("point outside grid should not be ok")
	}
	// Max-edge points map to last cell.
	col, row, ok = g.CellIndex(geo.Pt(1000, 1000))
	if !ok || col != 9 || row != 9 {
		t.Fatalf("max edge CellIndex = %d,%d,%v", col, row, ok)
	}
	r := g.CellRect(2, 7)
	if r.Min != geo.Pt(200, 700) || r.Max != geo.Pt(300, 800) {
		t.Fatalf("CellRect = %+v", r)
	}
	if c := g.CellCenter(0, 0); c != geo.Pt(50, 50) {
		t.Fatalf("CellCenter = %v", c)
	}
	id := g.CellAt(geo.Pt(250, 730))
	if id != g.CellID(2, 7) {
		t.Fatalf("CellAt = %d want %d", id, g.CellID(2, 7))
	}
	if g.CellAt(geo.Pt(-5, -5)) != -1 {
		t.Fatal("outside point should return -1")
	}
	if rr := g.CellRectByID(id); rr != r {
		t.Fatalf("CellRectByID = %+v want %+v", rr, r)
	}
}

// Property: every point inside the bounds maps to exactly one cell whose
// rect contains the point.
func TestCellContainsItsPoints(t *testing.T) {
	g := mustGrid(t, geo.NewRect(geo.Pt(-500, -500), geo.Pt(500, 500)), 37)
	f := func(x, y float64) bool {
		p := geo.Pt(-500+mod(x, 1000), -500+mod(y, 1000))
		col, row, ok := g.CellIndex(p)
		if !ok {
			return false
		}
		return g.CellRect(col, row).ContainsPoint(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func mod(v, m float64) float64 {
	r := math.Mod(v, m)
	if r < 0 {
		r += m
	}
	if math.IsNaN(r) || math.IsInf(r, 0) {
		return 0
	}
	return r
}

func TestCellsIntersecting(t *testing.T) {
	g := mustGrid(t, geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000)), 100)
	ids := g.CellsIntersecting(geo.NewRect(geo.Pt(150, 150), geo.Pt(350, 250)))
	// covers cols 1..3, rows 1..2 -> 3*2=6 cells
	if len(ids) != 6 {
		t.Fatalf("CellsIntersecting = %d cells, want 6", len(ids))
	}
	if got := g.CellsIntersecting(geo.NewRect(geo.Pt(2000, 2000), geo.Pt(3000, 3000))); got != nil {
		t.Fatalf("disjoint rect should yield nil, got %v", got)
	}
	if got := g.CellsIntersecting(geo.EmptyRect()); got != nil {
		t.Fatal("empty rect should yield nil")
	}
	// Rect larger than grid should return all cells.
	all := g.CellsIntersecting(geo.NewRect(geo.Pt(-10000, -10000), geo.Pt(10000, 10000)))
	if len(all) != g.NumCells() {
		t.Fatalf("oversized rect = %d cells want %d", len(all), g.NumCells())
	}
}

func TestNeighborhood(t *testing.T) {
	g := mustGrid(t, geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000)), 100)
	ids := g.Neighborhood(geo.Pt(550, 550), 1)
	if len(ids) != 9 {
		t.Fatalf("interior neighborhood = %d cells want 9", len(ids))
	}
	corner := g.Neighborhood(geo.Pt(10, 10), 1)
	if len(corner) != 4 {
		t.Fatalf("corner neighborhood = %d cells want 4", len(corner))
	}
	if got := g.Neighborhood(geo.Pt(-10, 10), 1); got != nil {
		t.Fatal("outside point should return nil")
	}
	zero := g.Neighborhood(geo.Pt(550, 550), 0)
	if len(zero) != 1 || zero[0] != g.CellAt(geo.Pt(550, 550)) {
		t.Fatalf("radius 0 neighborhood = %v", zero)
	}
}

func TestIndexInsertAndQueries(t *testing.T) {
	g := mustGrid(t, geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000)), 50)
	ix := NewIndex(g)
	if ix.Len() != 0 {
		t.Fatal("empty index should have Len 0")
	}
	if ix.Grid() != g {
		t.Fatal("Grid accessor")
	}
	if !ix.Insert(geo.Pt(100, 100), "a") || !ix.Insert(geo.Pt(105, 105), "b") || !ix.Insert(geo.Pt(900, 900), "c") {
		t.Fatal("inserts inside extent should succeed")
	}
	if ix.Insert(geo.Pt(-10, 0), "out") {
		t.Fatal("insert outside extent should fail")
	}
	if ix.Len() != 3 {
		t.Fatalf("Len = %d", ix.Len())
	}
	got := ix.WithinRect(geo.RectAround(geo.Pt(102, 102), 10))
	if len(got) != 2 {
		t.Fatalf("WithinRect = %v", got)
	}
	got = ix.WithinDistance(geo.Pt(100, 100), 8)
	if len(got) != 2 {
		t.Fatalf("WithinDistance = %v", got)
	}
	got = ix.WithinDistance(geo.Pt(100, 100), 1)
	if len(got) != 1 || got[0].(string) != "a" {
		t.Fatalf("tight WithinDistance = %v", got)
	}
}

func TestIndexNearest(t *testing.T) {
	g := mustGrid(t, geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000)), 25)
	ix := NewIndex(g)
	if _, _, ok := ix.Nearest(geo.Pt(500, 500)); ok {
		t.Fatal("nearest on empty index should report !ok")
	}
	rng := rand.New(rand.NewSource(17))
	type pv struct {
		p geo.Point
		v int
	}
	var pts []pv
	for i := 0; i < 500; i++ {
		p := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		pts = append(pts, pv{p, i})
		ix.Insert(p, i)
	}
	for trial := 0; trial < 50; trial++ {
		q := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		val, dist, ok := ix.Nearest(q)
		if !ok {
			t.Fatal("expected a nearest result")
		}
		// brute force
		bestD := -1.0
		bestV := -1
		for _, it := range pts {
			d := it.p.DistanceTo(q)
			if bestD < 0 || d < bestD {
				bestD, bestV = d, it.v
			}
		}
		if val.(int) != bestV || dist != bestD {
			t.Fatalf("Nearest(%v) = %v,%v; brute force %v,%v", q, val, dist, bestV, bestD)
		}
	}
}

func TestIndexNearestFarPoint(t *testing.T) {
	// A single value far from the query: ring expansion must still find it.
	g := mustGrid(t, geo.NewRect(geo.Pt(0, 0), geo.Pt(10000, 10000)), 100)
	ix := NewIndex(g)
	ix.Insert(geo.Pt(9900, 9900), "far")
	val, dist, ok := ix.Nearest(geo.Pt(50, 50))
	if !ok || val.(string) != "far" {
		t.Fatalf("Nearest = %v, %v, %v", val, dist, ok)
	}
	want := geo.Pt(9900, 9900).DistanceTo(geo.Pt(50, 50))
	if dist != want {
		t.Fatalf("dist = %v want %v", dist, want)
	}
}

func TestCellValues(t *testing.T) {
	g := mustGrid(t, geo.NewRect(geo.Pt(0, 0), geo.Pt(100, 100)), 10)
	ix := NewIndex(g)
	ix.Insert(geo.Pt(5, 5), 1)
	ix.Insert(geo.Pt(6, 6), 2)
	ix.Insert(geo.Pt(95, 95), 3)
	id := g.CellAt(geo.Pt(5, 5))
	vals := ix.CellValues(id)
	if len(vals) != 2 {
		t.Fatalf("CellValues = %v", vals)
	}
	if got := ix.CellValues(-1); got != nil {
		t.Fatal("invalid id should return nil")
	}
	if got := ix.CellValues(10_000); got != nil {
		t.Fatal("out of range id should return nil")
	}
}
