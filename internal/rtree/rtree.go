// Package rtree implements an in-memory R*-tree (Beckmann et al., SIGMOD
// 1990), the spatial index the paper uses both for the semantic-region
// spatial join (Alg. 1) and for selecting candidate road segments in the
// semantic-line annotation layer (Alg. 2).
//
// The tree stores arbitrary values keyed by their bounding rectangle and
// supports rectangle range search, point search and k-nearest-neighbour
// search. Inserts use the R* forced-reinsertion heuristic and the
// margin/overlap-minimising split of the original paper. The tree is not
// safe for concurrent mutation; once built it may be searched from many
// goroutines concurrently, which is how the annotation layers use it.
package rtree

import (
	"container/heap"
	"math"
	"sort"

	"semitri/internal/geo"
)

const (
	defaultMaxEntries = 16
	reinsertFraction  = 0.3
)

// Entry is a value stored in the tree together with its bounding rectangle.
type Entry struct {
	Rect  geo.Rect
	Value interface{}
}

type node struct {
	leaf     bool
	level    int
	rect     geo.Rect
	entries  []Entry // populated when leaf
	children []*node // populated when !leaf
}

// Tree is an R*-tree. The zero value is not usable; use New.
type Tree struct {
	root       *node
	size       int
	maxEntries int
	minEntries int
	// reinsertedLevels guards against repeated forced reinsertion at the
	// same level during a single insert (the R* "first call on a level" rule).
	reinsertedLevels map[int]bool
}

// New returns an empty R*-tree with the default node capacity.
func New() *Tree { return NewWithCapacity(defaultMaxEntries) }

// NewWithCapacity returns an empty R*-tree whose nodes hold at most
// maxEntries entries (minimum fill is 40% as in the R* paper).
func NewWithCapacity(maxEntries int) *Tree {
	if maxEntries < 4 {
		maxEntries = 4
	}
	minEntries := maxEntries * 2 / 5
	if minEntries < 2 {
		minEntries = 2
	}
	return &Tree{
		root:       &node{leaf: true, rect: geo.EmptyRect()},
		maxEntries: maxEntries,
		minEntries: minEntries,
	}
}

// Len returns the number of entries stored in the tree.
func (t *Tree) Len() int { return t.size }

// Insert adds a value with the given bounding rectangle.
func (t *Tree) Insert(r geo.Rect, value interface{}) {
	t.reinsertedLevels = map[int]bool{}
	t.insertEntry(Entry{Rect: r, Value: value}, 0)
	t.size++
}

// InsertPoint adds a value located at a single point.
func (t *Tree) InsertPoint(p geo.Point, value interface{}) {
	t.Insert(geo.Rect{Min: p, Max: p}, value)
}

// Bounds returns the bounding rectangle of all entries (empty when Len==0).
func (t *Tree) Bounds() geo.Rect { return t.root.rect }

func (t *Tree) insertEntry(e Entry, level int) {
	leaf := t.chooseSubtree(t.root, e.Rect, level, nil)
	leaf.node.entries = append(leaf.node.entries, e)
	leaf.node.rect = leaf.node.rect.Union(e.Rect)
	t.adjustPath(leaf.path, e.Rect)
	if len(leaf.node.entries) > t.maxEntries {
		t.overflowTreatment(leaf.node, leaf.path)
	}
}

type chosen struct {
	node *node
	path []*node // ancestors from root down to (excluding) node
}

// chooseSubtree descends from n to the node at the target level that needs
// the least enlargement (least overlap enlargement for leaf parents, as in
// the R* paper).
func (t *Tree) chooseSubtree(n *node, r geo.Rect, targetLevel int, path []*node) chosen {
	if n.leaf || n.level == targetLevel {
		return chosen{node: n, path: path}
	}
	path = append(path, n)
	var best *node
	if n.children[0].leaf {
		// Minimise overlap enlargement among children.
		bestOverlap := math.Inf(1)
		bestEnlarge := math.Inf(1)
		bestArea := math.Inf(1)
		for _, c := range n.children {
			union := c.rect.Union(r)
			var overlap, overlapAfter float64
			for _, o := range n.children {
				if o == c {
					continue
				}
				overlap += c.rect.OverlapArea(o.rect)
				overlapAfter += union.OverlapArea(o.rect)
			}
			dOverlap := overlapAfter - overlap
			enlarge := c.rect.EnlargementNeeded(r)
			area := c.rect.Area()
			if dOverlap < bestOverlap ||
				(dOverlap == bestOverlap && enlarge < bestEnlarge) ||
				(dOverlap == bestOverlap && enlarge == bestEnlarge && area < bestArea) {
				best, bestOverlap, bestEnlarge, bestArea = c, dOverlap, enlarge, area
			}
		}
	} else {
		bestEnlarge := math.Inf(1)
		bestArea := math.Inf(1)
		for _, c := range n.children {
			enlarge := c.rect.EnlargementNeeded(r)
			area := c.rect.Area()
			if enlarge < bestEnlarge || (enlarge == bestEnlarge && area < bestArea) {
				best, bestEnlarge, bestArea = c, enlarge, area
			}
		}
	}
	return t.chooseSubtree(best, r, targetLevel, path)
}

func (t *Tree) adjustPath(path []*node, r geo.Rect) {
	for _, n := range path {
		n.rect = n.rect.Union(r)
	}
}

func (t *Tree) overflowTreatment(n *node, path []*node) {
	// Forced reinsert at non-root levels, once per level per insert.
	if len(path) > 0 && !t.reinsertedLevels[n.level] && n.leaf {
		t.reinsertedLevels[n.level] = true
		t.forcedReinsert(n, path)
		return
	}
	t.splitNode(n, path)
}

func (t *Tree) forcedReinsert(n *node, path []*node) {
	center := n.rect.Center()
	sort.Slice(n.entries, func(i, j int) bool {
		return n.entries[i].Rect.Center().DistanceTo(center) <
			n.entries[j].Rect.Center().DistanceTo(center)
	})
	k := int(float64(len(n.entries)) * reinsertFraction)
	if k < 1 {
		k = 1
	}
	removed := make([]Entry, k)
	copy(removed, n.entries[len(n.entries)-k:])
	n.entries = n.entries[:len(n.entries)-k]
	n.recomputeRect()
	for _, p := range path {
		p.recomputeRectShallow()
	}
	for _, e := range removed {
		t.insertEntry(e, 0)
	}
}

func (t *Tree) splitNode(n *node, path []*node) {
	var left, right *node
	if n.leaf {
		left, right = splitLeaf(n, t.minEntries)
	} else {
		left, right = splitInner(n, t.minEntries)
	}
	if len(path) == 0 {
		// n is the root: grow the tree.
		newRoot := &node{
			leaf:     false,
			level:    n.level + 1,
			children: []*node{left, right},
		}
		newRoot.recomputeRect()
		t.root = newRoot
		return
	}
	parent := path[len(path)-1]
	// Replace n with left and right in parent.
	for i, c := range parent.children {
		if c == n {
			parent.children[i] = left
			break
		}
	}
	parent.children = append(parent.children, right)
	parent.recomputeRectShallow()
	if len(parent.children) > t.maxEntries {
		t.splitNode(parent, path[:len(path)-1])
	}
}

func (n *node) recomputeRect() {
	r := geo.EmptyRect()
	if n.leaf {
		for _, e := range n.entries {
			r = r.Union(e.Rect)
		}
	} else {
		for _, c := range n.children {
			r = r.Union(c.rect)
		}
	}
	n.rect = r
}

func (n *node) recomputeRectShallow() { n.recomputeRect() }

// splitLeaf applies the R* choose-split-axis / choose-split-index heuristic
// to a leaf node's entries.
func splitLeaf(n *node, minEntries int) (*node, *node) {
	entries := n.entries
	axis := chooseSplitAxis(entries, minEntries)
	sortEntriesByAxis(entries, axis)
	idx := chooseSplitIndex(entries, minEntries)
	leftEntries := append([]Entry(nil), entries[:idx]...)
	rightEntries := append([]Entry(nil), entries[idx:]...)
	left := &node{leaf: true, level: n.level, entries: leftEntries}
	right := &node{leaf: true, level: n.level, entries: rightEntries}
	left.recomputeRect()
	right.recomputeRect()
	return left, right
}

func splitInner(n *node, minEntries int) (*node, *node) {
	children := n.children
	// Reuse the entry-based heuristics by wrapping children rects.
	wrapped := make([]Entry, len(children))
	for i, c := range children {
		wrapped[i] = Entry{Rect: c.rect, Value: c}
	}
	axis := chooseSplitAxis(wrapped, minEntries)
	sortEntriesByAxis(wrapped, axis)
	idx := chooseSplitIndex(wrapped, minEntries)
	left := &node{leaf: false, level: n.level}
	right := &node{leaf: false, level: n.level}
	for i, w := range wrapped {
		c := w.Value.(*node)
		if i < idx {
			left.children = append(left.children, c)
		} else {
			right.children = append(right.children, c)
		}
	}
	left.recomputeRect()
	right.recomputeRect()
	return left, right
}

func sortEntriesByAxis(entries []Entry, axis int) {
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i].Rect, entries[j].Rect
		if axis == 0 {
			if a.Min.X != b.Min.X {
				return a.Min.X < b.Min.X
			}
			return a.Max.X < b.Max.X
		}
		if a.Min.Y != b.Min.Y {
			return a.Min.Y < b.Min.Y
		}
		return a.Max.Y < b.Max.Y
	})
}

// chooseSplitAxis returns 0 (X) or 1 (Y), the axis with minimal total margin
// over all valid distributions.
func chooseSplitAxis(entries []Entry, minEntries int) int {
	bestAxis := 0
	bestMargin := math.Inf(1)
	for axis := 0; axis < 2; axis++ {
		tmp := append([]Entry(nil), entries...)
		sortEntriesByAxis(tmp, axis)
		margin := 0.0
		for k := minEntries; k <= len(tmp)-minEntries; k++ {
			margin += boundsOfEntries(tmp[:k]).Margin() + boundsOfEntries(tmp[k:]).Margin()
		}
		if margin < bestMargin {
			bestMargin = margin
			bestAxis = axis
		}
	}
	return bestAxis
}

// chooseSplitIndex assumes entries are sorted along the chosen axis and
// returns the split position minimising overlap, then area.
func chooseSplitIndex(entries []Entry, minEntries int) int {
	bestIdx := minEntries
	bestOverlap := math.Inf(1)
	bestArea := math.Inf(1)
	for k := minEntries; k <= len(entries)-minEntries; k++ {
		l := boundsOfEntries(entries[:k])
		r := boundsOfEntries(entries[k:])
		overlap := l.OverlapArea(r)
		area := l.Area() + r.Area()
		if overlap < bestOverlap || (overlap == bestOverlap && area < bestArea) {
			bestOverlap, bestArea, bestIdx = overlap, area, k
		}
	}
	return bestIdx
}

func boundsOfEntries(entries []Entry) geo.Rect {
	r := geo.EmptyRect()
	for _, e := range entries {
		r = r.Union(e.Rect)
	}
	return r
}

// SearchRect returns the values of all entries whose rectangle intersects r.
func (t *Tree) SearchRect(r geo.Rect) []interface{} {
	var out []interface{}
	t.searchNode(t.root, r, func(e Entry) { out = append(out, e.Value) })
	return out
}

// SearchEntries returns the entries (rect + value) intersecting r.
func (t *Tree) SearchEntries(r geo.Rect) []Entry {
	var out []Entry
	t.searchNode(t.root, r, func(e Entry) { out = append(out, e) })
	return out
}

// SearchPoint returns the values of all entries whose rectangle contains p.
func (t *Tree) SearchPoint(p geo.Point) []interface{} {
	return t.SearchRect(geo.Rect{Min: p, Max: p})
}

// Visit calls fn for every entry intersecting r; returning false stops the walk.
func (t *Tree) Visit(r geo.Rect, fn func(Entry) bool) {
	t.visitNode(t.root, r, fn)
}

func (t *Tree) visitNode(n *node, r geo.Rect, fn func(Entry) bool) bool {
	if !n.rect.Intersects(r) {
		return true
	}
	if n.leaf {
		for _, e := range n.entries {
			if e.Rect.Intersects(r) {
				if !fn(e) {
					return false
				}
			}
		}
		return true
	}
	for _, c := range n.children {
		if !t.visitNode(c, r, fn) {
			return false
		}
	}
	return true
}

func (t *Tree) searchNode(n *node, r geo.Rect, emit func(Entry)) {
	if !n.rect.Intersects(r) {
		return
	}
	if n.leaf {
		for _, e := range n.entries {
			if e.Rect.Intersects(r) {
				emit(e)
			}
		}
		return
	}
	for _, c := range n.children {
		t.searchNode(c, r, emit)
	}
}

// nnItem is a best-first search queue item for NearestNeighbors.
type nnItem struct {
	dist  float64
	node  *node
	entry *Entry
}

type nnQueue []nnItem

func (q nnQueue) Len() int            { return len(q) }
func (q nnQueue) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q nnQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nnQueue) Push(x interface{}) { *q = append(*q, x.(nnItem)) }
func (q *nnQueue) Pop() interface{} {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}

// NearestNeighbors returns up to k entries closest (by rectangle distance)
// to the point p, ordered by increasing distance. Classic best-first search.
func (t *Tree) NearestNeighbors(p geo.Point, k int) []Entry {
	if k <= 0 || t.size == 0 {
		return nil
	}
	q := &nnQueue{}
	heap.Push(q, nnItem{dist: t.root.rect.DistanceToPoint(p), node: t.root})
	out := make([]Entry, 0, k)
	for q.Len() > 0 && len(out) < k {
		item := heap.Pop(q).(nnItem)
		if item.entry != nil {
			out = append(out, *item.entry)
			continue
		}
		n := item.node
		if n.leaf {
			for i := range n.entries {
				e := &n.entries[i]
				heap.Push(q, nnItem{dist: e.Rect.DistanceToPoint(p), entry: e})
			}
		} else {
			for _, c := range n.children {
				heap.Push(q, nnItem{dist: c.rect.DistanceToPoint(p), node: c})
			}
		}
	}
	return out
}

// WithinDistance returns all entries whose rectangle lies within dist of p.
func (t *Tree) WithinDistance(p geo.Point, dist float64) []Entry {
	search := geo.RectAround(p, dist)
	var out []Entry
	t.searchNode(t.root, search, func(e Entry) {
		if e.Rect.DistanceToPoint(p) <= dist {
			out = append(out, e)
		}
	})
	return out
}

// Height returns the height of the tree (1 for a tree with only a root leaf).
func (t *Tree) Height() int {
	h := 1
	n := t.root
	for !n.leaf {
		h++
		n = n.children[0]
	}
	return h
}

// Bulk builds a tree from a slice of entries. It simply inserts every entry,
// which is sufficient for the dataset sizes of the experiments while keeping
// the code easy to verify.
func Bulk(entries []Entry) *Tree {
	t := New()
	for _, e := range entries {
		t.Insert(e.Rect, e.Value)
	}
	return t
}
