package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"semitri/internal/geo"
)

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if got := tr.SearchRect(geo.NewRect(geo.Pt(0, 0), geo.Pt(10, 10))); len(got) != 0 {
		t.Fatalf("search on empty tree returned %d results", len(got))
	}
	if got := tr.NearestNeighbors(geo.Pt(0, 0), 3); got != nil {
		t.Fatalf("NN on empty tree returned %v", got)
	}
	if !tr.Bounds().IsEmpty() {
		t.Fatal("empty tree bounds should be empty")
	}
	if tr.Height() != 1 {
		t.Fatalf("empty tree height = %d", tr.Height())
	}
}

func TestInsertAndSearchSmall(t *testing.T) {
	tr := New()
	tr.InsertPoint(geo.Pt(1, 1), "a")
	tr.InsertPoint(geo.Pt(5, 5), "b")
	tr.Insert(geo.NewRect(geo.Pt(2, 2), geo.Pt(3, 3)), "c")
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	got := tr.SearchRect(geo.NewRect(geo.Pt(0, 0), geo.Pt(2.5, 2.5)))
	if len(got) != 2 {
		t.Fatalf("expected a and c, got %v", got)
	}
	pts := tr.SearchPoint(geo.Pt(5, 5))
	if len(pts) != 1 || pts[0].(string) != "b" {
		t.Fatalf("SearchPoint = %v", pts)
	}
}

// buildRandom inserts n random small rects and returns the tree plus entries.
func buildRandom(n int, seed int64) (*Tree, []Entry) {
	rng := rand.New(rand.NewSource(seed))
	tr := New()
	entries := make([]Entry, n)
	for i := 0; i < n; i++ {
		p := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		r := geo.RectAround(p, rng.Float64()*5)
		entries[i] = Entry{Rect: r, Value: i}
		tr.Insert(r, i)
	}
	return tr, entries
}

func bruteRange(entries []Entry, r geo.Rect) map[int]bool {
	out := map[int]bool{}
	for _, e := range entries {
		if e.Rect.Intersects(r) {
			out[e.Value.(int)] = true
		}
	}
	return out
}

func TestRangeSearchMatchesBruteForce(t *testing.T) {
	tr, entries := buildRandom(2000, 42)
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 50; trial++ {
		c := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		q := geo.RectAround(c, 10+rng.Float64()*100)
		want := bruteRange(entries, q)
		got := tr.SearchRect(q)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d results want %d", trial, len(got), len(want))
		}
		for _, v := range got {
			if !want[v.(int)] {
				t.Fatalf("trial %d: unexpected value %v", trial, v)
			}
		}
	}
}

func TestAllEntriesRetrievable(t *testing.T) {
	tr, entries := buildRandom(5000, 7)
	if tr.Len() != 5000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	got := tr.SearchRect(tr.Bounds())
	if len(got) != len(entries) {
		t.Fatalf("full-extent search returned %d of %d", len(got), len(entries))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if seen[v.(int)] {
			t.Fatalf("duplicate value %v returned", v)
		}
		seen[v.(int)] = true
	}
}

func TestNearestNeighborsMatchesBruteForce(t *testing.T) {
	tr, entries := buildRandom(1500, 99)
	rng := rand.New(rand.NewSource(100))
	for trial := 0; trial < 30; trial++ {
		p := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		k := 1 + rng.Intn(10)
		got := tr.NearestNeighbors(p, k)
		if len(got) != k {
			t.Fatalf("trial %d: got %d results want %d", trial, len(got), k)
		}
		// Brute-force distances.
		dists := make([]float64, len(entries))
		for i, e := range entries {
			dists[i] = e.Rect.DistanceToPoint(p)
		}
		sort.Float64s(dists)
		for i, e := range got {
			d := e.Rect.DistanceToPoint(p)
			if math.Abs(d-dists[i]) > 1e-9 {
				t.Fatalf("trial %d: NN %d distance %v, brute force %v", trial, i, d, dists[i])
			}
		}
		// Results must be ordered by distance.
		for i := 1; i < len(got); i++ {
			if got[i].Rect.DistanceToPoint(p) < got[i-1].Rect.DistanceToPoint(p)-1e-9 {
				t.Fatalf("trial %d: NN results not ordered", trial)
			}
		}
	}
}

func TestWithinDistance(t *testing.T) {
	tr, entries := buildRandom(1000, 3)
	p := geo.Pt(500, 500)
	const dist = 50.0
	got := tr.WithinDistance(p, dist)
	want := 0
	for _, e := range entries {
		if e.Rect.DistanceToPoint(p) <= dist {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("WithinDistance returned %d, brute force %d", len(got), want)
	}
	for _, e := range got {
		if e.Rect.DistanceToPoint(p) > dist {
			t.Fatalf("entry at distance %v exceeds %v", e.Rect.DistanceToPoint(p), dist)
		}
	}
}

func TestVisitEarlyStop(t *testing.T) {
	tr, _ := buildRandom(500, 11)
	count := 0
	tr.Visit(tr.Bounds(), func(e Entry) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("Visit visited %d entries, want early stop at 10", count)
	}
	full := 0
	tr.Visit(tr.Bounds(), func(e Entry) bool { full++; return true })
	if full != 500 {
		t.Fatalf("full visit = %d", full)
	}
}

func TestSearchEntriesReturnsRects(t *testing.T) {
	tr := New()
	r := geo.NewRect(geo.Pt(1, 1), geo.Pt(2, 2))
	tr.Insert(r, "x")
	es := tr.SearchEntries(geo.RectAround(geo.Pt(1.5, 1.5), 1))
	if len(es) != 1 || es[0].Rect != r || es[0].Value.(string) != "x" {
		t.Fatalf("SearchEntries = %+v", es)
	}
}

func TestTreeGrowsInHeight(t *testing.T) {
	tr, _ := buildRandom(3000, 21)
	if tr.Height() < 3 {
		t.Fatalf("height = %d, expected the tree to have split into multiple levels", tr.Height())
	}
	// Every entry must be within the root bounds.
	b := tr.Bounds()
	tr.Visit(b, func(e Entry) bool {
		if !b.ContainsRect(e.Rect) {
			t.Fatalf("entry %v outside root bounds %v", e.Rect, b)
		}
		return true
	})
}

func TestCapacityClamping(t *testing.T) {
	tr := NewWithCapacity(1) // should clamp to a sane minimum
	for i := 0; i < 100; i++ {
		tr.InsertPoint(geo.Pt(float64(i), float64(i)), i)
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if got := tr.SearchRect(tr.Bounds()); len(got) != 100 {
		t.Fatalf("retrieved %d", len(got))
	}
}

func TestDuplicateRects(t *testing.T) {
	tr := New()
	r := geo.RectAround(geo.Pt(10, 10), 1)
	for i := 0; i < 50; i++ {
		tr.Insert(r, i)
	}
	got := tr.SearchRect(r)
	if len(got) != 50 {
		t.Fatalf("expected all 50 duplicates, got %d", len(got))
	}
}

func TestBulk(t *testing.T) {
	entries := make([]Entry, 200)
	for i := range entries {
		entries[i] = Entry{Rect: geo.RectAround(geo.Pt(float64(i%20)*10, float64(i/20)*10), 2), Value: i}
	}
	tr := Bulk(entries)
	if tr.Len() != 200 {
		t.Fatalf("Len = %d", tr.Len())
	}
	got := tr.SearchRect(geo.RectAround(geo.Pt(0, 0), 3))
	if len(got) == 0 {
		t.Fatal("expected results near origin")
	}
}

// Property-based test: every inserted rectangle is found by a query that
// equals that rectangle, regardless of insertion order.
func TestInsertedAlwaysFound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(200)
		tr := New()
		rects := make([]geo.Rect, n)
		for i := 0; i < n; i++ {
			p := geo.Pt(rng.Float64()*500, rng.Float64()*500)
			rects[i] = geo.RectAround(p, rng.Float64()*3)
			tr.Insert(rects[i], i)
		}
		for i, r := range rects {
			found := false
			for _, v := range tr.SearchRect(r) {
				if v.(int) == i {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := geo.Pt(rng.Float64()*10000, rng.Float64()*10000)
		tr.Insert(geo.RectAround(p, 5), i)
	}
}

func BenchmarkSearchRect(b *testing.B) {
	tr, _ := buildRandom(50000, 5)
	rng := rand.New(rand.NewSource(6))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		tr.SearchRect(geo.RectAround(c, 20))
	}
}

func BenchmarkNearestNeighbors(b *testing.B) {
	tr, _ := buildRandom(50000, 5)
	rng := rand.New(rand.NewSource(6))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		tr.NearestNeighbors(p, 8)
	}
}
