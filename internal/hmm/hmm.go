// Package hmm implements a discrete-state hidden Markov model with Viterbi
// decoding (Forney 1973, Rabiner 1990), the statistical machinery behind
// SeMiTri's Semantic Point Annotation Layer (§4.3, Alg. 3).
//
// The model is deliberately generic: states are identified by index, and the
// observation probabilities are supplied per observation through an emission
// matrix B (rows = observations in sequence order, columns = states). This
// matches the paper's formulation, where B is computed on the fly from the
// Gaussian influence of nearby POIs on each stop rather than from a fixed
// discrete alphabet. Decoding is done in log space to remain numerically
// stable for long stop sequences.
package hmm

import (
	"errors"
	"fmt"
	"math"
)

// Model is a hidden Markov model λ = (π, A) over N states. Emissions are
// provided per decoding call (see Viterbi), mirroring the paper where
// B(o|Ci) depends on the geometry of each observed stop.
type Model struct {
	// Pi is the initial state distribution π (length N, sums to 1).
	Pi []float64
	// A is the state transition matrix, A[i][j] = Pr(state j | state i).
	A [][]float64
}

// New validates and returns a model; the distributions are normalised so
// callers may pass raw counts.
func New(pi []float64, a [][]float64) (*Model, error) {
	n := len(pi)
	if n == 0 {
		return nil, errors.New("hmm: empty initial distribution")
	}
	if len(a) != n {
		return nil, fmt.Errorf("hmm: transition matrix has %d rows, want %d", len(a), n)
	}
	for i, row := range a {
		if len(row) != n {
			return nil, fmt.Errorf("hmm: transition row %d has %d columns, want %d", i, len(row), n)
		}
	}
	m := &Model{Pi: normalize(pi), A: make([][]float64, n)}
	for i, row := range a {
		m.A[i] = normalize(row)
	}
	for i, p := range m.Pi {
		if p < 0 || math.IsNaN(p) {
			return nil, fmt.Errorf("hmm: invalid initial probability at %d", i)
		}
	}
	return m, nil
}

// NumStates returns the number of hidden states.
func (m *Model) NumStates() int { return len(m.Pi) }

func normalize(v []float64) []float64 {
	out := make([]float64, len(v))
	var sum float64
	for _, x := range v {
		if x > 0 {
			sum += x
		}
	}
	if sum == 0 {
		// Degenerate distribution: fall back to uniform.
		for i := range out {
			out[i] = 1 / float64(len(v))
		}
		return out
	}
	for i, x := range v {
		if x < 0 {
			x = 0
		}
		out[i] = x / sum
	}
	return out
}

// UniformTransitions returns an n x n matrix with self-transition probability
// `selfProb` and the remainder spread uniformly over the other states. This
// mirrors the structured transition matrix of Fig. 6 in the paper.
func UniformTransitions(n int, selfProb float64) [][]float64 {
	if n <= 0 {
		return nil
	}
	if selfProb < 0 || selfProb > 1 {
		selfProb = 0.8
	}
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		if n == 1 {
			a[i][0] = 1
			continue
		}
		for j := range a[i] {
			if i == j {
				a[i][j] = selfProb
			} else {
				a[i][j] = (1 - selfProb) / float64(n-1)
			}
		}
	}
	return a
}

// DecodeResult is the output of Viterbi decoding.
type DecodeResult struct {
	// States is the most likely hidden state sequence (one per observation).
	States []int
	// LogProb is the log probability of the decoded sequence.
	LogProb float64
	// Delta is the final-step delta vector (log space), exposed for
	// diagnostics and for tests that verify the recursion.
	Delta []float64
}

const logZero = math.MaxFloat64 * -1

func safeLog(p float64) float64 {
	if p <= 0 {
		return logZero
	}
	return math.Log(p)
}

// Viterbi computes the most likely hidden state sequence given per
// observation emission likelihoods. emissions[t][i] is Pr(o_t | state i)
// (not necessarily normalised; only relative magnitudes matter).
// It implements equations (5)–(7) of the paper in log space with the
// backtracking step of Alg. 3.
func (m *Model) Viterbi(emissions [][]float64) (*DecodeResult, error) {
	n := m.NumStates()
	tLen := len(emissions)
	if tLen == 0 {
		return nil, errors.New("hmm: empty observation sequence")
	}
	for t, row := range emissions {
		if len(row) != n {
			return nil, fmt.Errorf("hmm: emission row %d has %d entries, want %d", t, len(row), n)
		}
	}
	logA := make([][]float64, n)
	for i := range logA {
		logA[i] = make([]float64, n)
		for j := range logA[i] {
			logA[i][j] = safeLog(m.A[i][j])
		}
	}
	delta := make([]float64, n)
	psi := make([][]int, tLen)
	for i := 0; i < n; i++ {
		delta[i] = safeLog(m.Pi[i]) + safeLog(emissions[0][i])
	}
	psi[0] = make([]int, n)
	next := make([]float64, n)
	for t := 1; t < tLen; t++ {
		psi[t] = make([]int, n)
		for j := 0; j < n; j++ {
			best := logZero
			bestI := 0
			for i := 0; i < n; i++ {
				v := delta[i] + logA[i][j]
				if v > best {
					best = v
					bestI = i
				}
			}
			next[j] = best + safeLog(emissions[t][j])
			psi[t][j] = bestI
		}
		delta, next = next, delta
	}
	// Termination.
	best := logZero
	bestState := 0
	for i := 0; i < n; i++ {
		if delta[i] > best {
			best = delta[i]
			bestState = i
		}
	}
	states := make([]int, tLen)
	states[tLen-1] = bestState
	for t := tLen - 1; t >= 1; t-- {
		states[t-1] = psi[t][states[t]]
	}
	finalDelta := make([]float64, n)
	copy(finalDelta, delta)
	return &DecodeResult{States: states, LogProb: best, Delta: finalDelta}, nil
}

// SequenceLogProb returns the log probability of a given state sequence and
// emissions under the model (used by tests to check the Viterbi optimum and
// by ablations to compare decodings).
func (m *Model) SequenceLogProb(states []int, emissions [][]float64) (float64, error) {
	if len(states) != len(emissions) {
		return 0, fmt.Errorf("hmm: %d states for %d observations", len(states), len(emissions))
	}
	if len(states) == 0 {
		return 0, errors.New("hmm: empty sequence")
	}
	n := m.NumStates()
	for t, s := range states {
		if s < 0 || s >= n {
			return 0, fmt.Errorf("hmm: state %d at position %d out of range", s, t)
		}
	}
	lp := safeLog(m.Pi[states[0]]) + safeLog(emissions[0][states[0]])
	for t := 1; t < len(states); t++ {
		lp += safeLog(m.A[states[t-1]][states[t]]) + safeLog(emissions[t][states[t]])
	}
	return lp, nil
}

// Posterior computes, with the forward algorithm, the (normalised) filtered
// probability of each state after consuming all observations. It is used by
// the point layer to attach per-category confidence values to annotations.
func (m *Model) Posterior(emissions [][]float64) ([]float64, error) {
	n := m.NumStates()
	if len(emissions) == 0 {
		return nil, errors.New("hmm: empty observation sequence")
	}
	alpha := make([]float64, n)
	for i := 0; i < n; i++ {
		alpha[i] = m.Pi[i] * emissions[0][i]
	}
	scale(alpha)
	next := make([]float64, n)
	for t := 1; t < len(emissions); t++ {
		if len(emissions[t]) != n {
			return nil, fmt.Errorf("hmm: emission row %d has %d entries, want %d", t, len(emissions[t]), n)
		}
		for j := 0; j < n; j++ {
			var s float64
			for i := 0; i < n; i++ {
				s += alpha[i] * m.A[i][j]
			}
			next[j] = s * emissions[t][j]
		}
		copy(alpha, next)
		scale(alpha)
	}
	return append([]float64(nil), alpha...), nil
}

func scale(v []float64) {
	var sum float64
	for _, x := range v {
		sum += x
	}
	if sum <= 0 {
		for i := range v {
			v[i] = 1 / float64(len(v))
		}
		return
	}
	for i := range v {
		v[i] /= sum
	}
}
