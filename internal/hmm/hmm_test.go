package hmm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Fatal("empty pi should error")
	}
	if _, err := New([]float64{1, 1}, [][]float64{{1, 0}}); err == nil {
		t.Fatal("wrong row count should error")
	}
	if _, err := New([]float64{1, 1}, [][]float64{{1}, {1, 0}}); err == nil {
		t.Fatal("wrong column count should error")
	}
	m, err := New([]float64{2, 2}, [][]float64{{3, 1}, {1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumStates() != 2 {
		t.Fatalf("NumStates = %d", m.NumStates())
	}
	if m.Pi[0] != 0.5 || m.Pi[1] != 0.5 {
		t.Fatalf("pi not normalised: %v", m.Pi)
	}
	if m.A[0][0] != 0.75 || m.A[0][1] != 0.25 {
		t.Fatalf("A not normalised: %v", m.A)
	}
}

func TestNormalizeDegenerate(t *testing.T) {
	m, err := New([]float64{0, 0, 0}, UniformTransitions(3, 0.8))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range m.Pi {
		if math.Abs(p-1.0/3.0) > 1e-12 {
			t.Fatalf("degenerate pi should become uniform, got %v", m.Pi)
		}
	}
}

func TestUniformTransitions(t *testing.T) {
	a := UniformTransitions(5, 0.8)
	if len(a) != 5 {
		t.Fatalf("rows = %d", len(a))
	}
	for i, row := range a {
		var sum float64
		for j, p := range row {
			sum += p
			if i == j && p != 0.8 {
				t.Fatalf("self transition = %v", p)
			}
			if i != j && math.Abs(p-0.05) > 1e-12 {
				t.Fatalf("off-diagonal = %v", p)
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
	if UniformTransitions(0, 0.5) != nil {
		t.Fatal("n=0 should return nil")
	}
	if got := UniformTransitions(1, 0.7); got[0][0] != 1 {
		t.Fatalf("single state self transition = %v", got[0][0])
	}
	// Invalid selfProb falls back to 0.8.
	if got := UniformTransitions(2, 1.5); got[0][0] != 0.8 {
		t.Fatalf("invalid selfProb fallback = %v", got[0][0])
	}
}

func TestViterbiErrors(t *testing.T) {
	m, _ := New([]float64{0.5, 0.5}, UniformTransitions(2, 0.8))
	if _, err := m.Viterbi(nil); err == nil {
		t.Fatal("empty emissions should error")
	}
	if _, err := m.Viterbi([][]float64{{0.5}}); err == nil {
		t.Fatal("short emission row should error")
	}
}

func TestViterbiObviousSequence(t *testing.T) {
	// Two states; emissions point unambiguously at state 0 then 1 then 1.
	m, _ := New([]float64{0.5, 0.5}, UniformTransitions(2, 0.7))
	emissions := [][]float64{
		{0.99, 0.01},
		{0.01, 0.99},
		{0.05, 0.95},
	}
	res, err := m.Viterbi(emissions)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 1}
	for i, s := range res.States {
		if s != want[i] {
			t.Fatalf("States = %v want %v", res.States, want)
		}
	}
	if res.LogProb >= 0 {
		t.Fatalf("LogProb = %v, expected negative log probability", res.LogProb)
	}
	if len(res.Delta) != 2 {
		t.Fatalf("Delta length = %d", len(res.Delta))
	}
}

func TestViterbiStickyTransitionsSmoothNoise(t *testing.T) {
	// Strong self-transitions should smooth over a single noisy observation.
	a := [][]float64{{0.95, 0.05}, {0.05, 0.95}}
	m, _ := New([]float64{0.5, 0.5}, a)
	emissions := [][]float64{
		{0.9, 0.1},
		{0.9, 0.1},
		{0.45, 0.55}, // weak evidence for state 1
		{0.9, 0.1},
		{0.9, 0.1},
	}
	res, err := m.Viterbi(emissions)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.States {
		if s != 0 {
			t.Fatalf("position %d decoded as %d; sticky prior should keep state 0 (states=%v)", i, s, res.States)
		}
	}
}

func TestViterbiMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(3) // 2..4 states
		tLen := 2 + rng.Intn(5)
		pi := make([]float64, n)
		a := make([][]float64, n)
		for i := range pi {
			pi[i] = rng.Float64() + 0.01
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = rng.Float64() + 0.01
			}
		}
		m, err := New(pi, a)
		if err != nil {
			t.Fatal(err)
		}
		emissions := make([][]float64, tLen)
		for tt := range emissions {
			emissions[tt] = make([]float64, n)
			for i := range emissions[tt] {
				emissions[tt][i] = rng.Float64() + 0.001
			}
		}
		res, err := m.Viterbi(emissions)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force over all n^tLen sequences.
		bestLP := math.Inf(-1)
		var bestSeq []int
		seq := make([]int, tLen)
		var walk func(pos int)
		walk = func(pos int) {
			if pos == tLen {
				lp, _ := m.SequenceLogProb(seq, emissions)
				if lp > bestLP {
					bestLP = lp
					bestSeq = append([]int(nil), seq...)
				}
				return
			}
			for s := 0; s < n; s++ {
				seq[pos] = s
				walk(pos + 1)
			}
		}
		walk(0)
		gotLP, err := m.SequenceLogProb(res.States, emissions)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(gotLP-bestLP) > 1e-9 {
			t.Fatalf("trial %d: viterbi seq %v (lp %v) differs from brute force %v (lp %v)",
				trial, res.States, gotLP, bestSeq, bestLP)
		}
		if math.Abs(res.LogProb-bestLP) > 1e-9 {
			t.Fatalf("trial %d: reported LogProb %v != brute force %v", trial, res.LogProb, bestLP)
		}
	}
}

func TestSequenceLogProbErrors(t *testing.T) {
	m, _ := New([]float64{0.5, 0.5}, UniformTransitions(2, 0.8))
	emissions := [][]float64{{0.5, 0.5}}
	if _, err := m.SequenceLogProb([]int{0, 1}, emissions); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := m.SequenceLogProb(nil, nil); err == nil {
		t.Fatal("empty sequence should error")
	}
	if _, err := m.SequenceLogProb([]int{5}, emissions); err == nil {
		t.Fatal("out of range state should error")
	}
}

func TestSequenceLogProbZeroEmission(t *testing.T) {
	m, _ := New([]float64{0.5, 0.5}, UniformTransitions(2, 0.8))
	lp, err := m.SequenceLogProb([]int{0}, [][]float64{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if lp > -1e100 {
		t.Fatalf("zero-probability emission should give a huge negative log prob, got %v", lp)
	}
}

func TestPosterior(t *testing.T) {
	m, _ := New([]float64{0.5, 0.5}, UniformTransitions(2, 0.9))
	post, err := m.Posterior([][]float64{{0.9, 0.1}, {0.9, 0.1}, {0.8, 0.2}})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range post {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("posterior sums to %v", sum)
	}
	if post[0] <= post[1] {
		t.Fatalf("state 0 should dominate: %v", post)
	}
	if _, err := m.Posterior(nil); err == nil {
		t.Fatal("empty emissions should error")
	}
	if _, err := m.Posterior([][]float64{{0.5, 0.5}, {0.5}}); err == nil {
		t.Fatal("bad row length should error")
	}
	// All-zero emissions fall back to uniform rather than NaN.
	post, err = m.Posterior([][]float64{{0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(post[0]) || math.Abs(post[0]-0.5) > 1e-9 {
		t.Fatalf("degenerate posterior = %v", post)
	}
}

// Property: the Viterbi path's log probability is never below that of the
// constant path through any single state.
func TestViterbiAtLeastAsGoodAsConstantPaths(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(seed%3+3)%3
		if n < 2 {
			n = 2
		}
		tLen := 3 + rng.Intn(6)
		pi := make([]float64, n)
		for i := range pi {
			pi[i] = rng.Float64() + 0.01
		}
		m, err := New(pi, UniformTransitions(n, 0.5+rng.Float64()*0.4))
		if err != nil {
			return false
		}
		emissions := make([][]float64, tLen)
		for t := range emissions {
			emissions[t] = make([]float64, n)
			for i := range emissions[t] {
				emissions[t][i] = rng.Float64() + 0.001
			}
		}
		res, err := m.Viterbi(emissions)
		if err != nil {
			return false
		}
		vlp, _ := m.SequenceLogProb(res.States, emissions)
		for s := 0; s < n; s++ {
			constSeq := make([]int, tLen)
			for i := range constSeq {
				constSeq[i] = s
			}
			clp, _ := m.SequenceLogProb(constSeq, emissions)
			if clp > vlp+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkViterbi(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n = 5
	pi := []float64{0.11, 0.18, 0.31, 0.39, 0.01}
	m, _ := New(pi, UniformTransitions(n, 0.8))
	emissions := make([][]float64, 200)
	for t := range emissions {
		emissions[t] = make([]float64, n)
		for i := range emissions[t] {
			emissions[t][i] = rng.Float64()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Viterbi(emissions); err != nil {
			b.Fatal(err)
		}
	}
}
