package point

import (
	"math"
	"testing"
	"time"

	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/geo"
	"semitri/internal/poi"
)

var t0 = time.Date(2010, 3, 15, 8, 0, 0, 0, time.UTC)

// clusteredPOIs builds a POI set with three well separated clusters of
// distinct categories: item-sale around (200,200), feedings around (800,200)
// and person-life around (500,800), plus a lone services POI far away.
func clusteredPOIs(t *testing.T) *poi.Set {
	t.Helper()
	set, err := poi.NewSet(geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000)), 50)
	if err != nil {
		t.Fatal(err)
	}
	add := func(cat poi.Category, cx, cy float64, n int) {
		for i := 0; i < n; i++ {
			dx := float64(i%5)*12 - 24
			dy := float64(i/5)*12 - 24
			if _, err := set.Add(cat.String(), cat, geo.Pt(cx+dx, cy+dy)); err != nil {
				t.Fatal(err)
			}
		}
	}
	add(poi.ItemSale, 200, 200, 25)
	add(poi.Feedings, 800, 200, 25)
	add(poi.PersonLife, 500, 800, 25)
	add(poi.Services, 50, 950, 1)
	return set
}

func stopAt(p geo.Point, startMin, endMin int) *episode.Episode {
	return &episode.Episode{
		TrajectoryID: "u1-T0", ObjectID: "u1", Kind: episode.Stop,
		Start:  t0.Add(time.Duration(startMin) * time.Minute),
		End:    t0.Add(time.Duration(endMin) * time.Minute),
		Center: p, Bounds: geo.RectAround(p, 30), RecordCount: 20,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Sigma: 0, NeighborhoodCells: 3, SelfTransition: 0.8},
		{Sigma: 60, NeighborhoodCells: 0, SelfTransition: 0.8},
		{Sigma: 60, NeighborhoodCells: 3, SelfTransition: 0},
		{Sigma: 60, NeighborhoodCells: 3, SelfTransition: 1},
		{Sigma: 60, NeighborhoodCells: 3, SelfTransition: 0.8, CategorySigma: []float64{1, 2}},
		{Sigma: 60, NeighborhoodCells: 3, SelfTransition: 0.8, Transition: [][]float64{{1}}},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Fatalf("config %d should be invalid", i)
		}
	}
}

func TestPaperTransitionMatrix(t *testing.T) {
	a := PaperTransitionMatrix(0.8)
	if len(a) != poi.NumCategories {
		t.Fatalf("rows = %d", len(a))
	}
	for i, row := range a {
		var sum float64
		for _, v := range row {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
	// Meaningful categories have a strong self transition.
	if a[int(poi.ItemSale)][int(poi.ItemSale)] != 0.8 {
		t.Fatalf("item sale self transition = %v", a[int(poi.ItemSale)][int(poi.ItemSale)])
	}
	// The unknown row is flatter (Fig. 6).
	if a[int(poi.Unknown)][int(poi.Unknown)] >= 0.8 {
		t.Fatalf("unknown self transition = %v should be smaller", a[int(poi.Unknown)][int(poi.Unknown)])
	}
	// Invalid selfProb falls back to 0.8.
	b := PaperTransitionMatrix(2)
	if b[0][0] != 0.8 {
		t.Fatalf("fallback self transition = %v", b[0][0])
	}
}

func TestNewAnnotatorValidation(t *testing.T) {
	if _, err := NewAnnotator(nil, DefaultConfig()); err == nil {
		t.Fatal("nil set should error")
	}
	if _, err := NewAnnotator(clusteredPOIs(t), Config{}); err == nil {
		t.Fatal("invalid config should error")
	}
	a, err := NewAnnotator(clusteredPOIs(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Model() == nil || a.Model().NumStates() != poi.NumCategories {
		t.Fatal("model not built correctly")
	}
}

func TestEmissionsReflectLocalDensity(t *testing.T) {
	a, _ := NewAnnotator(clusteredPOIs(t), DefaultConfig())
	em := a.Emissions([]geo.Point{geo.Pt(200, 200), geo.Pt(800, 200), geo.Pt(500, 800)})
	if len(em) != 3 {
		t.Fatalf("emissions rows = %d", len(em))
	}
	if argmax(em[0]) != int(poi.ItemSale) {
		t.Fatalf("stop near the item-sale cluster has emissions %v", em[0])
	}
	if argmax(em[1]) != int(poi.Feedings) {
		t.Fatalf("stop near the feedings cluster has emissions %v", em[1])
	}
	if argmax(em[2]) != int(poi.PersonLife) {
		t.Fatalf("stop near the person-life cluster has emissions %v", em[2])
	}
	// A stop far from every POI falls back to the global category shares.
	far := a.Emissions([]geo.Point{geo.Pt(999, 500)})
	shares := a.pois.CategoryShares()
	for i := range far[0] {
		if math.Abs(far[0][i]-shares[i]) > 1e-9 {
			t.Fatalf("far stop emissions %v should equal shares %v", far[0], shares)
		}
	}
	// Outside the grid extent: also falls back (never zero).
	outside := a.Emissions([]geo.Point{geo.Pt(-500, -500)})
	if sum(outside[0]) == 0 {
		t.Fatal("outside emissions must not be all zero")
	}
}

func argmax(v []float64) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}

func TestAnnotateStopsDecodesClusters(t *testing.T) {
	a, _ := NewAnnotator(clusteredPOIs(t), DefaultConfig())
	stops := []*episode.Episode{
		stopAt(geo.Pt(205, 195), 0, 45),
		stopAt(geo.Pt(795, 205), 60, 120),
		stopAt(geo.Pt(505, 795), 150, 300),
	}
	tuples, anns, err := a.AnnotateStops(stops)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 3 || len(anns) != 3 {
		t.Fatalf("got %d tuples, %d annotations", len(tuples), len(anns))
	}
	want := []poi.Category{poi.ItemSale, poi.Feedings, poi.PersonLife}
	for i, ann := range anns {
		if ann.Category != want[i] {
			t.Fatalf("stop %d decoded as %v, want %v", i, ann.Category, want[i])
		}
		if ann.Confidence <= 0 || ann.Confidence > 1 {
			t.Fatalf("stop %d confidence = %v", i, ann.Confidence)
		}
		if ann.NearestPOI == nil || ann.NearestPOI.Category != want[i] {
			t.Fatalf("stop %d nearest POI = %+v", i, ann.NearestPOI)
		}
	}
	wantActivity := []string{"shopping", "eating", "leisure"}
	for i, tp := range tuples {
		if tp.Annotations.Value(core.AnnPOICategory) != want[i].String() {
			t.Fatalf("tuple %d category = %q", i, tp.Annotations.Value(core.AnnPOICategory))
		}
		if tp.Annotations.Value(core.AnnActivity) != wantActivity[i] {
			t.Fatalf("tuple %d activity = %q", i, tp.Annotations.Value(core.AnnActivity))
		}
		if tp.Annotations.Value(core.AnnPOIName) == "" {
			t.Fatalf("tuple %d has no poi name", i)
		}
		if tp.Place == nil || tp.Place.Kind != core.PointPlace {
			t.Fatalf("tuple %d place = %+v", i, tp.Place)
		}
		if tp.Kind != episode.Stop || tp.Episode != stops[i] {
			t.Fatalf("tuple %d episode linkage wrong", i)
		}
	}
}

func TestAnnotateStopsErrors(t *testing.T) {
	a, _ := NewAnnotator(clusteredPOIs(t), DefaultConfig())
	if _, _, err := a.AnnotateStops(nil); err == nil {
		t.Fatal("no stops should error")
	}
	if _, _, err := a.AnnotateStops([]*episode.Episode{nil}); err == nil {
		t.Fatal("nil stop should error")
	}
	move := stopAt(geo.Pt(100, 100), 0, 10)
	move.Kind = episode.Move
	if _, _, err := a.AnnotateStops([]*episode.Episode{move}); err == nil {
		t.Fatal("move episode should error")
	}
}

func TestAnnotateStopsSequenceSmoothing(t *testing.T) {
	// A stop located midway between the item-sale and feedings clusters is
	// ambiguous; when the preceding and following stops are firmly item-sale
	// and the transition matrix is sticky, the HMM should label the whole
	// sequence item-sale, unlike the nearest-POI baseline that flips to the
	// marginally closer feedings POI.
	set, err := poi.NewSet(geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000)), 50)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		set.Add("shop", poi.ItemSale, geo.Pt(200+float64(i%5)*10, 200+float64(i/5)*10))
	}
	// One feedings POI slightly closer to the ambiguous stop location.
	set.Add("cafe", poi.Feedings, geo.Pt(305, 200))
	cfg := DefaultConfig()
	cfg.SelfTransition = 0.9
	a, err := NewAnnotator(set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stops := []*episode.Episode{
		stopAt(geo.Pt(210, 210), 0, 30),
		stopAt(geo.Pt(300, 200), 40, 70), // ambiguous: cafe at 5 m, shops at ~60+ m
		stopAt(geo.Pt(215, 205), 80, 120),
	}
	_, anns, err := a.AnnotateStops(stops)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := a.AnnotateStopsNearest(stops)
	if err != nil {
		t.Fatal(err)
	}
	if baseline[1].Category != poi.Feedings {
		t.Fatalf("baseline should pick the nearest cafe, got %v", baseline[1].Category)
	}
	if anns[0].Category != poi.ItemSale || anns[2].Category != poi.ItemSale {
		t.Fatalf("anchor stops decoded as %v/%v", anns[0].Category, anns[2].Category)
	}
	if anns[1].Category != poi.ItemSale {
		t.Fatalf("HMM should smooth the ambiguous stop to item sale, got %v", anns[1].Category)
	}
}

func TestAnnotateStopsNearestBaseline(t *testing.T) {
	a, _ := NewAnnotator(clusteredPOIs(t), DefaultConfig())
	stops := []*episode.Episode{stopAt(geo.Pt(200, 200), 0, 30)}
	anns, err := a.AnnotateStopsNearest(stops)
	if err != nil {
		t.Fatal(err)
	}
	if anns[0].Category != poi.ItemSale || anns[0].NearestPOI == nil {
		t.Fatalf("baseline annotation = %+v", anns[0])
	}
	if _, err := a.AnnotateStopsNearest(nil); err == nil {
		t.Fatal("no stops should error")
	}
	// Empty POI set: baseline degrades to unknown.
	emptySet, _ := poi.NewSet(geo.NewRect(geo.Pt(0, 0), geo.Pt(10, 10)), 5)
	ea, err := NewAnnotator(emptySet, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	anns, err = ea.AnnotateStopsNearest(stops)
	if err != nil {
		t.Fatal(err)
	}
	if anns[0].Category != poi.Unknown || anns[0].NearestPOI != nil {
		t.Fatalf("empty-set baseline = %+v", anns[0])
	}
}

func TestActivityFor(t *testing.T) {
	want := map[poi.Category]string{
		poi.Services:   "errand",
		poi.Feedings:   "eating",
		poi.ItemSale:   "shopping",
		poi.PersonLife: "leisure",
		poi.Unknown:    "unknown",
	}
	for c, w := range want {
		if got := ActivityFor(c); got != w {
			t.Fatalf("ActivityFor(%v) = %q, want %q", c, got, w)
		}
	}
	if ActivityFor(poi.Category(9)) != "unknown" {
		t.Fatal("out-of-range category should map to unknown")
	}
}

func TestCategorySigmaOverride(t *testing.T) {
	set := clusteredPOIs(t)
	cfg := DefaultConfig()
	cfg.CategorySigma = []float64{0, 0, 200, 0, 0} // wide influence for item sale only
	a, err := NewAnnotator(set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// At a point ~130 m from the item-sale cluster (and far from the others)
	// the wide item-sale sigma should dominate the emission row.
	em := a.Emissions([]geo.Point{geo.Pt(350, 200)})
	if argmax(em[0]) != int(poi.ItemSale) {
		t.Fatalf("wide sigma should dominate, emissions %v", em[0])
	}
}

func TestGaussian2D(t *testing.T) {
	if gaussian2D(0, 10) <= gaussian2D(5, 10) {
		t.Fatal("density must decrease with distance")
	}
	if gaussian2D(100, 10) > gaussian2D(10, 10) {
		t.Fatal("density must decrease with distance")
	}
	// Peak value is 1/(2*pi*sigma^2).
	if math.Abs(gaussian2D(0, 10)-1/(2*math.Pi*100)) > 1e-12 {
		t.Fatalf("peak density = %v", gaussian2D(0, 10))
	}
}

func TestConfidence(t *testing.T) {
	if got := confidence([]float64{1, 3}, 1); got != 0.75 {
		t.Fatalf("confidence = %v", got)
	}
	if got := confidence([]float64{0, 0}, 0); got != 0.5 {
		t.Fatalf("degenerate confidence = %v", got)
	}
}

func BenchmarkAnnotateStops(b *testing.B) {
	set, err := poi.Generate(poi.DefaultGeneratorConfig(5000, 3))
	if err != nil {
		b.Fatal(err)
	}
	a, err := NewAnnotator(set, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	var stops []*episode.Episode
	for i := 0; i < 50; i++ {
		stops = append(stops, stopAt(geo.Pt(4000+float64(i*30), 5000), i*10, i*10+8))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := a.AnnotateStops(stops); err != nil {
			b.Fatal(err)
		}
	}
}
