package point

import (
	"fmt"

	"semitri/internal/poi"
)

// TransitionFromLabels converts an empirical transition matrix whose rows and
// columns are labelled with POI category names (as produced by
// analytics.TransitionMatrix over annotated stops) into the 5x5 matrix
// expected by Config.Transition, enabling the "personalised transition
// matrix" the paper mentions as future work in §4.3: annotate a first batch
// of trajectories with the structured Fig. 6 matrix, learn the empirical
// transitions from the store, and re-annotate with the personalised model.
//
// Categories absent from the labels keep the structured default row
// (selfProb on the diagonal); observed rows are blended with the default by
// `smoothing` in [0,1] (0 = purely empirical, 1 = purely default), which
// prevents zero probabilities from starving the Viterbi decoder.
func TransitionFromLabels(labels []string, matrix [][]float64, selfProb, smoothing float64) ([][]float64, error) {
	if len(labels) != len(matrix) {
		return nil, fmt.Errorf("point: %d labels for %d matrix rows", len(labels), len(matrix))
	}
	if smoothing < 0 || smoothing > 1 {
		return nil, fmt.Errorf("point: smoothing %v outside [0,1]", smoothing)
	}
	indexOf := map[string]int{}
	for _, c := range poi.AllCategories {
		indexOf[c.String()] = int(c)
	}
	out := PaperTransitionMatrix(selfProb)
	for i, fromLabel := range labels {
		fromIdx, ok := indexOf[fromLabel]
		if !ok {
			return nil, fmt.Errorf("point: unknown category label %q", fromLabel)
		}
		if len(matrix[i]) != len(labels) {
			return nil, fmt.Errorf("point: row %d has %d columns, want %d", i, len(matrix[i]), len(labels))
		}
		row := make([]float64, poi.NumCategories)
		copy(row, out[fromIdx])
		// Blend the empirical transitions over the observed columns.
		for j, toLabel := range labels {
			toIdx, ok := indexOf[toLabel]
			if !ok {
				return nil, fmt.Errorf("point: unknown category label %q", toLabel)
			}
			row[toIdx] = smoothing*out[fromIdx][toIdx] + (1-smoothing)*matrix[i][j]
		}
		// Renormalise the row.
		var sum float64
		for _, v := range row {
			sum += v
		}
		if sum > 0 {
			for k := range row {
				row[k] /= sum
			}
		}
		out[fromIdx] = row
	}
	return out, nil
}
