package point

import (
	"math"
	"testing"

	"semitri/internal/episode"
	"semitri/internal/geo"
	"semitri/internal/poi"
)

func TestTransitionFromLabelsErrors(t *testing.T) {
	if _, err := TransitionFromLabels([]string{"item sale"}, nil, 0.8, 0.2); err == nil {
		t.Fatal("label/matrix length mismatch should error")
	}
	if _, err := TransitionFromLabels([]string{"item sale"}, [][]float64{{1}}, 0.8, 2); err == nil {
		t.Fatal("smoothing outside [0,1] should error")
	}
	if _, err := TransitionFromLabels([]string{"bogus"}, [][]float64{{1}}, 0.8, 0.2); err == nil {
		t.Fatal("unknown label should error")
	}
	if _, err := TransitionFromLabels([]string{"item sale"}, [][]float64{{1, 0}}, 0.8, 0.2); err == nil {
		t.Fatal("ragged matrix should error")
	}
}

func TestTransitionFromLabelsBlending(t *testing.T) {
	// Empirical matrix observed over two categories: item sale always
	// followed by person life and vice versa.
	labels := []string{"item sale", "person life"}
	empirical := [][]float64{{0, 1}, {1, 0}}
	a, err := TransitionFromLabels(labels, empirical, 0.8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != poi.NumCategories {
		t.Fatalf("matrix rows = %d", len(a))
	}
	// Rows sum to 1.
	for i, row := range a {
		var sum float64
		for _, v := range row {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
	is, pl := int(poi.ItemSale), int(poi.PersonLife)
	// With zero smoothing the observed transition dominates the row.
	if a[is][pl] <= a[is][is] {
		t.Fatalf("item sale -> person life (%v) should dominate self transition (%v)", a[is][pl], a[is][is])
	}
	// Unobserved rows keep the structured default.
	def := PaperTransitionMatrix(0.8)
	sv := int(poi.Services)
	for j := range a[sv] {
		if math.Abs(a[sv][j]-def[sv][j]) > 1e-9 {
			t.Fatalf("services row changed despite not being observed: %v vs %v", a[sv], def[sv])
		}
	}
	// Full smoothing reproduces the default everywhere.
	b, err := TransitionFromLabels(labels, empirical, 0.8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b[is][pl]-def[is][pl]) > 1e-9 {
		t.Fatalf("smoothing=1 should keep the default, got %v want %v", b[is][pl], def[is][pl])
	}
}

func TestPersonalizedMatrixUsableByAnnotator(t *testing.T) {
	set := clusteredPOIs(t)
	labels := []string{"item sale", "feedings"}
	empirical := [][]float64{{0.7, 0.3}, {0.4, 0.6}}
	trans, err := TransitionFromLabels(labels, empirical, 0.8, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Transition = trans
	a, err := NewAnnotator(set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stops := []*episode.Episode{stopAt(geo.Pt(205, 195), 0, 45), stopAt(geo.Pt(795, 205), 60, 120)}
	_, anns, err := a.AnnotateStops(stops)
	if err != nil {
		t.Fatal(err)
	}
	if anns[0].Category != poi.ItemSale || anns[1].Category != poi.Feedings {
		t.Fatalf("personalised model decoded %v, %v", anns[0].Category, anns[1].Category)
	}
}
