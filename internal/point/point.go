// Package point implements SeMiTri's Semantic Point Annotation Layer (§4.3,
// Algorithm 3): inferring the POI category (and hence the likely activity)
// behind each stop episode with a hidden Markov model.
//
// The HMM components follow the paper exactly:
//
//   - π is the per-category POI frequency of the 3rd-party source
//     ("Initial Probabilities").
//   - A is the structured transition matrix of Fig. 6 (strong
//     self-transition, a weaker uniform off-diagonal, and a distinct row for
//     the "unknown" category), unless the caller supplies its own.
//   - B, the observation probability Pr(stop | Ci), is computed from the
//     Gaussian influence of each POI on the stop location, summed per
//     category (Lemma 1), over a discretized grid with neighbourhood
//     restriction (Figs. 7–8) for efficiency.
//
// Decoding uses the Viterbi algorithm from internal/hmm. A nearest-POI
// baseline (the one-to-one matching of prior work) is provided for the
// ablation experiments.
package point

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/geo"
	"semitri/internal/hmm"
	"semitri/internal/poi"
	"semitri/internal/spatial"
)

// Config holds the tunable parameters of the point annotation layer.
type Config struct {
	// Sigma is the default standard deviation (metres) of the Gaussian
	// influence of a POI on a stop; it corresponds to σc in the paper and
	// can be overridden per category with CategorySigma.
	Sigma float64
	// CategorySigma optionally overrides Sigma per category (indexed by
	// poi.Category); zero entries fall back to Sigma.
	CategorySigma []float64
	// NeighborhoodCells is the radius, in grid cells, of the neighbourhood
	// considered when summing POI influences (the black rectangle of Fig. 7).
	NeighborhoodCells int
	// SelfTransition is the diagonal weight of the default transition matrix.
	SelfTransition float64
	// Transition optionally supplies a full transition matrix (5x5); when
	// nil the Fig. 6 style structured matrix is used.
	Transition [][]float64
}

// DefaultConfig returns the configuration used in the experiments: 60 m
// Gaussian influence, a 3-cell neighbourhood and the Fig. 6 transitions.
func DefaultConfig() Config {
	return Config{Sigma: 60, NeighborhoodCells: 3, SelfTransition: 0.8}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Sigma <= 0 {
		return errors.New("point: Sigma must be positive")
	}
	if c.NeighborhoodCells < 1 {
		return errors.New("point: NeighborhoodCells must be at least 1")
	}
	if c.SelfTransition <= 0 || c.SelfTransition >= 1 {
		return errors.New("point: SelfTransition must be in (0,1)")
	}
	if c.CategorySigma != nil && len(c.CategorySigma) != poi.NumCategories {
		return fmt.Errorf("point: CategorySigma must have %d entries", poi.NumCategories)
	}
	if c.Transition != nil && len(c.Transition) != poi.NumCategories {
		return fmt.Errorf("point: Transition must be %dx%d", poi.NumCategories, poi.NumCategories)
	}
	return nil
}

// PaperTransitionMatrix reproduces the example state transition matrix of
// Fig. 6: strong self transitions for the four meaningful categories and a
// flatter row for the unknown category.
func PaperTransitionMatrix(selfProb float64) [][]float64 {
	if selfProb <= 0 || selfProb >= 1 {
		selfProb = 0.8
	}
	n := poi.NumCategories
	a := make([][]float64, n)
	off := (1 - selfProb) / float64(n-1)
	for i := 0; i < n; i++ {
		a[i] = make([]float64, n)
		if poi.Category(i) == poi.Unknown {
			// Fig. 6 last row: 0.15 0.15 0.15 0.15 0.4 (scaled to selfProb/2).
			self := selfProb / 2
			rest := (1 - self) / float64(n-1)
			for j := 0; j < n; j++ {
				if i == j {
					a[i][j] = self
				} else {
					a[i][j] = rest
				}
			}
			continue
		}
		for j := 0; j < n; j++ {
			if i == j {
				a[i][j] = selfProb
			} else {
				a[i][j] = off
			}
		}
	}
	return a
}

// Annotator infers stop categories against a POI set. Construction
// pre-computes the discretized per-cell category influences; afterwards the
// annotator is safe for concurrent use (Cursors are per-goroutine). The HMM
// candidate generation — which POIs influence a stop — runs entirely
// through the spatial.Index captured from the set at construction.
type Annotator struct {
	pois  *poi.Set
	idx   spatial.Index
	cfg   Config
	model *hmm.Model
	// cellInfluence[cellID][cat] is the pre-computed discretized
	// Pr(grid_jk | Ci) of §4.3 (up to normalisation).
	cellInfluence [][]float64
}

// NewAnnotator builds the annotator, the HMM λ = (π, A) and the discretized
// influence grid.
func NewAnnotator(set *poi.Set, cfg Config) (*Annotator, error) {
	if set == nil {
		return nil, errors.New("point: nil POI set")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pi := set.CategoryShares()
	trans := cfg.Transition
	if trans == nil {
		trans = PaperTransitionMatrix(cfg.SelfTransition)
	}
	model, err := hmm.New(pi, trans)
	if err != nil {
		return nil, fmt.Errorf("point: building HMM: %w", err)
	}
	a := &Annotator{pois: set, idx: set.Index(), cfg: cfg, model: model}
	a.precomputeInfluence()
	return a, nil
}

// Cursor is the per-object locality cache of the point layer: the last POI
// candidate query around a stop centre. Not safe for concurrent use; keep
// one per moving object (or per trajectory in the batch path).
type Cursor struct {
	near *spatial.Cursor
}

// NewCursor returns an empty locality cursor for the annotator. The cached
// superset stays unsorted — POI candidate sets shrink a lot between the
// inflated cache query and the filtered answer, so sorting the small answer
// per call (as the uncached path does anyway) is cheaper than sorting the
// superset per miss.
func (a *Annotator) NewCursor() *Cursor {
	return &Cursor{near: spatial.NewCursor(a.idx)}
}

// Stats returns the candidate-cache hit/miss counters.
func (c *Cursor) Stats() (hits, misses uint64) { return c.near.Stats() }

// influenceRadius is the candidate radius of the HMM observation model: the
// neighbourhood restriction of Figs. 7-8 expressed in metres.
func (a *Annotator) influenceRadius() float64 {
	return float64(a.cfg.NeighborhoodCells) * a.pois.Grid().CellSize
}

// Candidates returns the POIs within the influence neighbourhood of c,
// ordered by id — the candidate set of the HMM observation model (Lemma 1),
// answered through the spatial.Index interface and, when cur is non-nil,
// its locality cache. The id ordering keeps the floating-point influence
// sums identical no matter which index structure the density heuristic
// picked.
func (a *Annotator) Candidates(c geo.Point, cur *Cursor) []*poi.POI {
	var items []spatial.Item
	if cur != nil {
		items = cur.near.WithinDistance(c, a.influenceRadius())
	} else {
		items = spatial.WithinDistance(a.idx, c, a.influenceRadius())
	}
	out := make([]*poi.POI, 0, len(items))
	for _, it := range items {
		out = append(out, it.Value.(*poi.POI))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Model exposes the underlying HMM (read-only), mainly for tests and
// diagnostics.
func (a *Annotator) Model() *hmm.Model { return a.model }

func (a *Annotator) sigmaFor(c poi.Category) float64 {
	if a.cfg.CategorySigma != nil && a.cfg.CategorySigma[int(c)] > 0 {
		return a.cfg.CategorySigma[int(c)]
	}
	return a.cfg.Sigma
}

// precomputeInfluence fills cellInfluence with, for every grid cell, the sum
// of the Gaussian densities of the POIs in the cell's neighbourhood,
// evaluated at the cell centre and grouped per category (the discretization
// of Pr(center|Ci) described in §4.3 and illustrated by Figs. 7–8).
func (a *Annotator) precomputeInfluence() {
	g := a.pois.Grid()
	n := g.NumCells()
	a.cellInfluence = make([][]float64, n)
	// Construction-time locality cursor: consecutive cell centres are one
	// cell apart, well within the cache slack of the influence radius.
	cur := a.NewCursor()
	for id := 0; id < n; id++ {
		a.cellInfluence[id] = make([]float64, poi.NumCategories)
		center := g.CellRectByID(id).Center()
		for _, p := range a.Candidates(center, cur) {
			sigma := a.sigmaFor(p.Category)
			d := p.Position.DistanceTo(center)
			a.cellInfluence[id][int(p.Category)] += gaussian2D(d, sigma)
		}
	}
}

// gaussian2D evaluates an isotropic two-dimensional Gaussian density with
// standard deviation sigma at distance d from its mean.
func gaussian2D(d, sigma float64) float64 {
	return math.Exp(-d*d/(2*sigma*sigma)) / (2 * math.Pi * sigma * sigma)
}

// Emissions returns, for each stop location, the per-category observation
// likelihood Pr(stop | Ci) (Lemma 1, up to a constant factor). A stop whose
// cell has no nearby POIs falls back to the exact (non-discretized) Gaussian
// sum, and finally to the global category frequencies so decoding never
// degenerates.
func (a *Annotator) Emissions(stopCenters []geo.Point) [][]float64 {
	return a.EmissionsCursor(stopCenters, nil)
}

// EmissionsCursor is Emissions with a per-object locality cursor; cur may
// be nil. Cached and uncached results are identical.
func (a *Annotator) EmissionsCursor(stopCenters []geo.Point, cur *Cursor) [][]float64 {
	out := make([][]float64, len(stopCenters))
	g := a.pois.Grid()
	shares := a.pois.CategoryShares()
	for i, c := range stopCenters {
		var row []float64
		if id := g.CellAt(c); id >= 0 {
			row = append([]float64(nil), a.cellInfluence[id]...)
		}
		if sum(row) == 0 {
			// Exact computation around the stop centre.
			row = make([]float64, poi.NumCategories)
			for _, p := range a.Candidates(c, cur) {
				row[int(p.Category)] += gaussian2D(p.Position.DistanceTo(c), a.sigmaFor(p.Category))
			}
		}
		if sum(row) == 0 {
			row = append([]float64(nil), shares...)
		}
		out[i] = row
	}
	return out
}

func sum(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// ActivityFor maps a POI category to the activity annotation attached to the
// stop (the "work"/"shopping" style values of §1.1).
func ActivityFor(c poi.Category) string {
	switch c {
	case poi.Services:
		return "errand"
	case poi.Feedings:
		return "eating"
	case poi.ItemSale:
		return "shopping"
	case poi.PersonLife:
		return "leisure"
	default:
		return "unknown"
	}
}

// StopAnnotation describes the inference result for one stop.
type StopAnnotation struct {
	Category   poi.Category
	Confidence float64
	// NearestPOI is the closest POI of the decoded category (nil when the
	// category has no POI near the stop).
	NearestPOI *poi.POI
}

// AnnotateStops runs Algorithm 3 over an ordered sequence of stop episodes:
// it builds the emission matrix from the POI influences, decodes the most
// likely category sequence with Viterbi and returns both the structured
// tuples of Tpoint and the per-stop annotations.
func (a *Annotator) AnnotateStops(stops []*episode.Episode) ([]*core.EpisodeTuple, []StopAnnotation, error) {
	return a.AnnotateStopsCursor(stops, nil)
}

// AnnotateStopsCursor is AnnotateStops with a per-object locality cursor;
// cur may be nil. Cached and uncached results are identical.
func (a *Annotator) AnnotateStopsCursor(stops []*episode.Episode, cur *Cursor) ([]*core.EpisodeTuple, []StopAnnotation, error) {
	if len(stops) == 0 {
		return nil, nil, errors.New("point: no stop episodes")
	}
	for i, s := range stops {
		if s == nil {
			return nil, nil, fmt.Errorf("point: stop %d is nil", i)
		}
		if s.Kind != episode.Stop {
			return nil, nil, fmt.Errorf("point: episode %d is not a stop", i)
		}
	}
	centers := make([]geo.Point, len(stops))
	for i, s := range stops {
		centers[i] = s.Center
	}
	emissions := a.EmissionsCursor(centers, cur)
	res, err := a.model.Viterbi(emissions)
	if err != nil {
		return nil, nil, fmt.Errorf("point: %w", err)
	}
	annotations := make([]StopAnnotation, len(stops))
	tuples := make([]*core.EpisodeTuple, len(stops))
	for i, stateIdx := range res.States {
		cat := poi.Category(stateIdx)
		conf := confidence(emissions[i], stateIdx)
		var nearest *poi.POI
		var bestD float64 = math.Inf(1)
		for _, p := range a.Candidates(centers[i], cur) {
			if p.Category != cat {
				continue
			}
			if d := p.Position.DistanceTo(centers[i]); d < bestD {
				bestD = d
				nearest = p
			}
		}
		annotations[i] = StopAnnotation{Category: cat, Confidence: conf, NearestPOI: nearest}
		place := &core.Place{
			ID:       fmt.Sprintf("stop-%s-%d", stops[i].TrajectoryID, i),
			Kind:     core.PointPlace,
			Category: cat.String(),
			Extent:   stops[i].Bounds,
		}
		if nearest != nil {
			place.ID = fmt.Sprintf("poi-%d", nearest.ID)
			place.Name = nearest.Name
		}
		tuple := &core.EpisodeTuple{
			Kind:    episode.Stop,
			Place:   place,
			TimeIn:  stops[i].Start,
			TimeOut: stops[i].End,
			Episode: stops[i],
		}
		tuple.Annotations.Add(core.Annotation{
			Key: core.AnnPOICategory, Value: cat.String(), Confidence: conf, Source: "point"})
		tuple.Annotations.Add(core.Annotation{
			Key: core.AnnActivity, Value: ActivityFor(cat), Confidence: conf, Source: "point"})
		if nearest != nil {
			tuple.Annotations.Add(core.Annotation{
				Key: core.AnnPOIName, Value: nearest.Name, Confidence: conf, Source: "point"})
		}
		tuples[i] = tuple
	}
	return tuples, annotations, nil
}

// confidence converts the emission row into a normalised share for the
// decoded state, a simple per-stop confidence measure.
func confidence(emissionRow []float64, state int) float64 {
	total := sum(emissionRow)
	if total <= 0 {
		return 1.0 / float64(len(emissionRow))
	}
	return emissionRow[state] / total
}

// AnnotateStopsNearest is the one-to-one baseline of prior work ([1][28]):
// each stop is assigned the category of its single nearest POI, ignoring the
// stop sequence and the local POI density. Used by ablation A2.
func (a *Annotator) AnnotateStopsNearest(stops []*episode.Episode) ([]StopAnnotation, error) {
	if len(stops) == 0 {
		return nil, errors.New("point: no stop episodes")
	}
	out := make([]StopAnnotation, len(stops))
	for i, s := range stops {
		p, _, ok := a.pois.Nearest(s.Center)
		if !ok {
			out[i] = StopAnnotation{Category: poi.Unknown, Confidence: 0}
			continue
		}
		out[i] = StopAnnotation{Category: p.Category, Confidence: 0.5, NearestPOI: p}
	}
	return out, nil
}
